package hh

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestFork2ScalarAllModes(t *testing.T) {
	var fib func(t *Task, n uint64) uint64
	fib = func(task *Task, n uint64) uint64 {
		if n < 2 {
			return n
		}
		a, b := Fork2(task, nil,
			func(task *Task, _ *Env) uint64 { return fib(task, n-1) },
			func(task *Task, _ *Env) uint64 { return fib(task, n-2) })
		return a + b
	}
	for _, mode := range Modes {
		for _, procs := range []int{1, 2} {
			if mode == Seq && procs > 1 {
				continue
			}
			r := New(WithMode(mode), WithProcs(procs))
			got := Run(r, func(task *Task) uint64 { return fib(task, 15) })
			r.Close()
			if got != 610 {
				t.Fatalf("%v procs=%d: fib(15) = %d, want 610", mode, procs, got)
			}
		}
	}
}

// buildRope builds a balanced word rope of the given depth through
// Fork2's pointer-result path, with allocation churn at the leaves.
func buildRope(task *Task, depth int, base uint64) Ptr {
	if depth == 0 {
		leaf := task.Alloc(0, 1, TagLeaf)
		task.InitWord(leaf, 0, base)
		return leaf
	}
	l, r := Fork2(task, nil,
		func(task *Task, _ *Env) Ptr { return buildRope(task, depth-1, base) },
		func(task *Task, _ *Env) Ptr { return buildRope(task, depth-1, base) })
	var out Ptr
	task.Scoped(func(s *Scope) {
		lr, rr := s.Ref(l), s.Ref(r)
		node := task.Alloc(2, 0, TagNode)
		task.InitPtr(node, 0, lr.Get())
		task.InitPtr(node, 1, rr.Get())
		out = node
	})
	return out
}

func sumRope(task *Task, p Ptr) uint64 {
	if task.TagOf(p) == TagLeaf {
		return task.ReadImmWord(p, 0)
	}
	return sumRope(task, task.ReadImmPtr(p, 0)) + sumRope(task, task.ReadImmPtr(p, 1))
}

func TestFork2PtrResultsAllModes(t *testing.T) {
	const depth = 8
	for _, mode := range Modes {
		procs := 4
		if mode == Seq {
			procs = 1
		}
		r := New(aggressive(mode, procs)...)
		got := Run(r, func(task *Task) uint64 {
			return sumRope(task, buildRope(task, depth, 1))
		})
		r.Close()
		if got != 1<<depth {
			t.Fatalf("%v: rope sum = %d, want %d", mode, got, 1<<depth)
		}
	}
}

func TestFork2MixedResultTypes(t *testing.T) {
	r := New(WithMode(ParMem), WithProcs(2))
	defer r.Close()
	got := Run(r, func(task *Task) uint64 {
		n, p := Fork2(task, nil,
			func(task *Task, _ *Env) uint64 { return 40 },
			func(task *Task, _ *Env) Ptr {
				box := task.Alloc(0, 1, TagRef)
				task.InitWord(box, 0, 2)
				return box
			})
		return n + task.ReadImmWord(p, 0)
	})
	if got != 42 {
		t.Fatalf("mixed fork = %d, want 42", got)
	}
}

func TestFork2EnvThreading(t *testing.T) {
	// Distant CAS increments through the env in every mode: the env ref
	// must resolve to a valid (possibly promoted) object on both arms.
	for _, mode := range Modes {
		procs := 4
		if mode == Seq {
			procs = 1
		}
		r := New(aggressive(mode, procs)...)
		got := Run(r, func(task *Task) uint64 {
			var out uint64
			task.Scoped(func(s *Scope) {
				counter := s.Ref(task.AllocMut(0, 1, TagRef))
				var bump func(task *Task, c Ref, d int)
				bump = func(task *Task, c Ref, d int) {
					if d == 0 {
						h := c.Get()
						for {
							old := task.ReadMutWord(h, 0)
							if task.CASWord(h, 0, old, old+1) {
								return
							}
						}
					}
					Fork2(task, Bind(c),
						func(task *Task, e *Env) uint64 { bump(task, e.Ref(0), d-1); return 0 },
						func(task *Task, e *Env) uint64 { bump(task, e.Ref(0), d-1); return 0 })
				}
				bump(task, counter, 7)
				out = task.ReadMutWord(counter.Get(), 0)
			})
			return out
		})
		r.Close()
		if got != 1<<7 {
			t.Fatalf("%v: counter = %d, want %d", mode, got, 1<<7)
		}
	}
}

func TestForkNUnderSteals(t *testing.T) {
	const arms = 8
	deadline := time.Now().Add(5 * time.Second)
	for attempt := 0; ; attempt++ {
		r := New(WithMode(ParMem), WithProcs(4), WithGCPolicy(4096, 1.5))
		var running atomic.Int64
		results := Run(r, func(task *Task) []uint64 {
			fs := make([]func(*Task, *Env) uint64, arms)
			for i := range fs {
				i := i
				fs[i] = func(task *Task, _ *Env) uint64 {
					// Hold the arm open until a second arm is running, so at
					// least one steal must have happened (arms only run
					// concurrently on distinct workers).
					running.Add(1)
					for spin := 0; running.Load() < 2 && spin < 1<<22; spin++ {
						runtime.Gosched()
					}
					var sum uint64
					task.Scoped(func(s *Scope) {
						rope := s.Ref(buildRope(task, 5, uint64(i)))
						sum = sumRope(task, rope.Get())
					})
					return sum
				}
			}
			return ForkN(task, nil, fs...)
		})
		st := r.Stats()
		r.Close()
		want := make([]uint64, arms)
		for i := range want {
			want[i] = uint64(i) << 5
		}
		for i := range results {
			if results[i] != want[i] {
				t.Fatalf("arm %d: got %d, want %d (results %v)", i, results[i], want[i], results)
			}
		}
		if st.Steals > 0 {
			return // the property held under real steals
		}
		if time.Now().After(deadline) {
			t.Skipf("no steals observed in %d attempts; ForkN correctness still validated", attempt+1)
		}
	}
}

func TestForkNPtrResultsAllModes(t *testing.T) {
	const arms = 6
	for _, mode := range Modes {
		procs := 4
		if mode == Seq {
			procs = 1
		}
		r := New(aggressive(mode, procs)...)
		got := Run(r, func(task *Task) uint64 {
			var out uint64
			task.Scoped(func(s *Scope) {
				seed := s.Ref(task.AllocMut(0, 1, TagRef))
				task.WriteWord(seed.Get(), 0, 100)
				fs := make([]func(*Task, *Env) Ptr, arms)
				for i := range fs {
					i := i
					fs[i] = func(task *Task, e *Env) Ptr {
						var box Ptr
						task.Scoped(func(s *Scope) {
							b := s.Ref(task.Alloc(0, 1, TagRef))
							// Garbage between env read and use: the env ref
							// must keep tracking.
							for j := 0; j < 3000; j++ {
								task.Alloc(0, 4, TagTuple)
							}
							task.InitWord(b.Get(), 0,
								uint64(i)*1000+task.ReadMutWord(e.Ptr(0), 0))
							box = b.Get()
						})
						return box
					}
				}
				for _, p := range ForkN(task, Bind(seed), fs...) {
					out += task.ReadImmWord(p, 0)
				}
			})
			return out
		})
		st := r.Stats()
		r.Close()
		var want uint64
		for i := 0; i < arms; i++ {
			want += uint64(i)*1000 + 100
		}
		if got != want {
			t.Fatalf("%v: ForkN sum = %d, want %d", mode, got, want)
		}
		if st.GC.Collections == 0 {
			t.Fatalf("%v: expected collections under aggressive policy", mode)
		}
	}
}

func TestBindingFromOtherTaskPanics(t *testing.T) {
	r := New(WithMode(ParMem), WithProcs(2))
	defer r.Close()
	Run(r, func(task *Task) uint64 {
		task.Scoped(func(s *Scope) {
			// A ref rooted on the root task, smuggled into an arm and used
			// in a fork binding there. On a stolen arm the tasks differ and
			// packEnv must reject it. On an inline arm the tasks coincide,
			// so no panic is expected — run many forks and require that the
			// guard fired whenever a steal made it observable.
			leaked := s.Ref(task.Alloc(0, 1, TagRef))
			var rejected atomic.Int64
			for i := 0; i < 64; i++ {
				Fork2(task, nil,
					func(at *Task, _ *Env) uint64 { return 0 },
					func(at *Task, _ *Env) uint64 {
						defer func() {
							if recover() != nil {
								rejected.Add(1)
							}
						}()
						Fork2(at, Bind(leaked),
							func(*Task, *Env) uint64 { return 0 },
							func(*Task, *Env) uint64 { return 0 })
						return 0
					})
			}
			_ = rejected.Load() // zero steals is legal; the guard is best-effort
		})
		return 0
	})
}
