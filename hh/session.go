package hh

import (
	"repro/internal/rts"
)

// Multi-root sessions: each Submit starts an independent root-level unit
// of work — its own subtree of the heap hierarchy under the process
// super-root — that runs concurrently with other sessions and with the
// caller. Inside a session all of the package's fork-join machinery works
// unchanged; across sessions the subtrees are disjoint, so their
// collections proceed concurrently (the cross-request GC concurrency
// reported in Stats().Zones.MaxConcurrentSessions).
//
// On completion an unpinned session's subtree is reclaimed WHOLESALE: its
// chunks are released in bulk, with no per-object work and no merge into
// the super-root. Every Ptr that was handed out by the session is dead the
// moment Wait returns — sessions whose pointer results must outlive them
// set Pin, which merges the subtree into the super-root instead (valid
// until Close).
//
// [Server] in package hh/serve layers admission control, backpressure, and
// latency accounting over Submit for closed-loop serving.

// SessionOpts configures one submitted session.
type SessionOpts struct {
	// Pin preserves the session's object graph past completion by merging
	// the subtree into the super-root; pointer results then stay valid
	// until the runtime closes. Unpinned sessions are reclaimed wholesale.
	Pin bool

	// BudgetWords caps the total words the session may allocate
	// (0 = unlimited). A session that exceeds it aborts with
	// ErrBudgetExceeded and is reclaimed wholesale.
	BudgetWords int64
}

// ErrBudgetExceeded aborts a session that allocated past its BudgetWords.
var ErrBudgetExceeded = rts.ErrBudgetExceeded

// PanicError wraps a panic raised inside a session; Wait returns it
// instead of letting the panic take down the process, so one bad request
// cannot crash a serving runtime.
type PanicError = rts.PanicError

// AbortError is the failure Wait returns when the session rolled itself
// back with Task.Abort — optimistic-concurrency conflicts, validation
// failures, any voluntary abandon. Result carries the aborting code's
// payload word; match with errors.As to distinguish retryable aborts from
// crashes.
type AbortError = rts.AbortError

// Session is a handle to one in-flight (or completed) unit of work.
type Session struct {
	r     *Runtime
	inner *rts.Session
}

// Submit starts fn as a new root-level session and returns immediately;
// Wait blocks for the result. Sessions run concurrently with each other:
// submit many to serve simultaneous requests. The closure must follow the
// same capture rules as fork arms (no Ptr/Ref capture; the session
// allocates everything it touches, or receives data through pinned
// super-root objects).
func (r *Runtime) Submit(opts SessionOpts, fn func(t *Task) uint64) *Session {
	inner := r.rt.Submit(rts.SessionOpts{Pin: opts.Pin, BudgetWords: opts.BudgetWords},
		func(it *rts.Task) uint64 {
			return fn(&Task{r: r, inner: it})
		})
	return &Session{r: r, inner: inner}
}

// Wait blocks until the session completes. It returns the session's
// result, or the error that aborted it: ErrBudgetExceeded, or a
// *PanicError wrapping the session's own panic value.
func (s *Session) Wait() (uint64, error) { return s.inner.Wait() }

// ID returns the session's runtime-unique identifier.
func (s *Session) ID() uint64 { return s.inner.ID() }

// WholesaleBytes reports the chunk bytes released in bulk when the
// session completed (0 while in flight, for pinned sessions, and in the
// flat STW/Manticore modes, whose sessions allocate into shared heaps).
func (s *Session) WholesaleBytes() int64 { return s.inner.WholesaleBytes() }

// MergedBytes reports the chunk bytes a pinned session merged into the
// super-root on completion.
func (s *Session) MergedBytes() int64 { return s.inner.MergedBytes() }

// GCNanos reports the time the session's tasks spent inside collections
// (zone or stop-the-world), summed across all of its tasks. Valid after
// Wait returns; 0 while the session is in flight. Together with
// BarrierNanos this is the per-request latency attribution the serving
// layer surfaces in serve.ServeStats.
func (s *Session) GCNanos() int64 { return s.inner.GCNanos() }

// BarrierNanos reports the time the session's tasks spent inside promotion
// lock climbs (lock acquisition + transitive copy + store). Valid after
// Wait returns.
func (s *Session) BarrierNanos() int64 { return s.inner.BarrierNanos() }
