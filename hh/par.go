package hh

import (
	"repro/internal/mem"
	"repro/internal/rts"
	"repro/internal/seq"
)

// Parallel combinators over index ranges, and the word-sequence (rope)
// helpers the examples and benchmarks build on. All combinators thread
// their Binding through the forks, so bodies see valid — possibly
// promoted — pointers via their Env no matter which worker runs them.
// Grain is the sequential cutoff and must be at least 1.

// ParDo runs body over [lo, hi) in parallel, splitting down to grain.
func ParDo(t *Task, env Binding, lo, hi, grain int, body func(t *Task, e *Env, lo, hi int)) {
	packed := t.packEnv(env)
	n := len(env)
	seq.ParDo(t.inner, packed, lo, hi, grain, func(inner *rts.Task, e mem.ObjPtr, blo, bhi int) {
		at := t.r.taskFor(inner)
		at.Scoped(func(s *Scope) {
			body(at, openEnv(at, s, e, n), blo, bhi)
		})
	})
}

// ParSum folds body's results over [lo, hi) with addition.
func ParSum(t *Task, env Binding, lo, hi, grain int, body func(t *Task, e *Env, lo, hi int) uint64) uint64 {
	packed := t.packEnv(env)
	n := len(env)
	return seq.ParSum(t.inner, packed, lo, hi, grain, func(inner *rts.Task, e mem.ObjPtr, blo, bhi int) uint64 {
		at := t.r.taskFor(inner)
		var sum uint64
		at.Scoped(func(s *Scope) {
			sum = body(at, openEnv(at, s, e, n), blo, bhi)
		})
		return sum
	})
}

// Tabulate builds the word sequence [f(0), …, f(n-1)] in parallel. f must
// be a pure scalar function (it runs on whichever worker owns the leaf
// and may not touch managed memory).
func Tabulate(t *Task, n, grain int, f func(i int) uint64) Ptr {
	return Ptr{seq.TabulateU64(t.inner, mem.NilPtr, n, grain,
		func(_ *rts.Task, _ mem.ObjPtr, i int) uint64 { return f(i) })}
}

// Length returns the number of elements of a word sequence (rope or flat
// array).
func Length(t *Task, s Ptr) int { return seq.Length(t.inner, s.raw) }

// At returns element i of a word sequence (O(depth)).
func At(t *Task, s Ptr, i int) uint64 { return seq.GetU64(t.inner, s.raw, i) }

// SplitMid divides a word sequence at its midpoint, sharing structure.
func SplitMid(t *Task, s Ptr) (Ptr, Ptr) {
	l, r := seq.SplitMid(t.inner, s.raw)
	return Ptr{l}, Ptr{r}
}

// ToArray flattens a word sequence into a single fresh flat array.
func ToArray(t *Task, s Ptr) Ptr { return Ptr{seq.ToFlatU64(t.inner, s.raw)} }

// SortArray sorts a flat word array in place (imperative quicksort).
func SortArray(t *Task, a Ptr) {
	seq.QuickSortInPlace(t.inner, a.raw, 0, seq.Length(t.inner, a.raw))
}

// MergeSorted merges two sorted flat word arrays into a fresh sorted
// array.
func MergeSorted(t *Task, a, b Ptr) Ptr {
	return Ptr{seq.MergeFlatSorted(t.inner, a.raw, b.raw)}
}

// Checksum folds a word sequence into an order-sensitive digest.
func Checksum(t *Task, s Ptr) uint64 { return seq.Checksum(t.inner, s.raw) }

// Hash64 mixes an index into a pseudo-random 64-bit value (the
// evaluation's input generator).
func Hash64(i uint64) uint64 { return seq.Hash64(i) }
