package hh

import (
	"errors"
	"testing"
)

// churn builds a session-local list and folds it into a checksum.
func churn(t *Task, n int) uint64 {
	var sum uint64
	t.Scoped(func(s *Scope) {
		head := s.Ref(Nil)
		for i := 0; i < n; i++ {
			c := t.Alloc(1, 1, TagCons)
			t.InitWord(c, 0, uint64(i)*0x9e3779b97f4a7c15)
			t.InitPtr(c, 0, head.Get())
			head.Set(c)
		}
		for p := head.Get(); !p.IsNil(); p = t.ReadImmPtr(p, 0) {
			sum = sum*31 + t.ReadImmWord(p, 0)
		}
	})
	return sum
}

func TestSubmitConcurrentSessions(t *testing.T) {
	for _, mode := range Modes {
		t.Run(mode.String(), func(t *testing.T) {
			r := New(WithMode(mode), WithProcs(4), WithGCPolicy(2048, 1.25))
			defer r.Close()
			base := ChunksInUse()

			const n = 10
			sessions := make([]*Session, n)
			for i := range sessions {
				size := 400 + 50*i
				sessions[i] = r.Submit(SessionOpts{}, func(task *Task) uint64 {
					return churn(task, size)
				})
			}
			for i, s := range sessions {
				got, err := s.Wait()
				if err != nil {
					t.Fatalf("session %d: %v", i, err)
				}
				want := Run(r, func(task *Task) uint64 { return churn(task, 400+50*i) })
				if got != want {
					t.Errorf("session %d checksum %x, want %x", i, got, want)
				}
			}
			if mode == ParMem || mode == Seq {
				// Unpinned sessions reclaim wholesale; only the pinned
				// reference Runs above may have grown the root.
				var wholesale int64
				for _, s := range sessions {
					wholesale += s.WholesaleBytes()
				}
				if wholesale == 0 {
					t.Error("no wholesale reclamation observed")
				}
			}
			_ = base
		})
	}
}

func TestSubmitBudgetAndPanicErrors(t *testing.T) {
	r := New(WithMode(ParMem), WithProcs(2))
	defer r.Close()

	_, err := r.Submit(SessionOpts{BudgetWords: 1024}, func(task *Task) uint64 {
		return churn(task, 1_000_000)
	}).Wait()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("budget err = %v", err)
	}

	_, err = r.Submit(SessionOpts{}, func(task *Task) uint64 {
		panic("bad request")
	}).Wait()
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != any("bad request") {
		t.Fatalf("panic err = %v", err)
	}

	// The runtime still serves after both failures.
	if got, err := r.Submit(SessionOpts{}, func(task *Task) uint64 { return churn(task, 64) }).Wait(); err != nil || got == 0 {
		t.Fatalf("post-failure session: res=%d err=%v", got, err)
	}
}
