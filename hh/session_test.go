package hh

import (
	"errors"
	"testing"
)

// churn builds a session-local list and folds it into a checksum.
func churn(t *Task, n int) uint64 {
	var sum uint64
	t.Scoped(func(s *Scope) {
		head := s.Ref(Nil)
		for i := 0; i < n; i++ {
			c := t.Alloc(1, 1, TagCons)
			t.InitWord(c, 0, uint64(i)*0x9e3779b97f4a7c15)
			t.InitPtr(c, 0, head.Get())
			head.Set(c)
		}
		for p := head.Get(); !p.IsNil(); p = t.ReadImmPtr(p, 0) {
			sum = sum*31 + t.ReadImmWord(p, 0)
		}
	})
	return sum
}

func TestSubmitConcurrentSessions(t *testing.T) {
	for _, mode := range Modes {
		t.Run(mode.String(), func(t *testing.T) {
			r := New(WithMode(mode), WithProcs(4), WithGCPolicy(2048, 1.25))
			defer r.Close()
			base := ChunksInUse()

			const n = 10
			sessions := make([]*Session, n)
			for i := range sessions {
				size := 400 + 50*i
				sessions[i] = r.Submit(SessionOpts{}, func(task *Task) uint64 {
					return churn(task, size)
				})
			}
			for i, s := range sessions {
				got, err := s.Wait()
				if err != nil {
					t.Fatalf("session %d: %v", i, err)
				}
				want := Run(r, func(task *Task) uint64 { return churn(task, 400+50*i) })
				if got != want {
					t.Errorf("session %d checksum %x, want %x", i, got, want)
				}
			}
			if mode == ParMem || mode == Seq {
				// Unpinned sessions reclaim wholesale; only the pinned
				// reference Runs above may have grown the root.
				var wholesale int64
				for _, s := range sessions {
					wholesale += s.WholesaleBytes()
				}
				if wholesale == 0 {
					t.Error("no wholesale reclamation observed")
				}
			}
			_ = base
		})
	}
}

func TestSubmitBudgetAndPanicErrors(t *testing.T) {
	r := New(WithMode(ParMem), WithProcs(2))
	defer r.Close()

	_, err := r.Submit(SessionOpts{BudgetWords: 1024}, func(task *Task) uint64 {
		return churn(task, 1_000_000)
	}).Wait()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("budget err = %v", err)
	}

	_, err = r.Submit(SessionOpts{}, func(task *Task) uint64 {
		panic("bad request")
	}).Wait()
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != any("bad request") {
		t.Fatalf("panic err = %v", err)
	}

	// The runtime still serves after both failures.
	if got, err := r.Submit(SessionOpts{}, func(task *Task) uint64 { return churn(task, 64) }).Wait(); err != nil || got == 0 {
		t.Fatalf("post-failure session: res=%d err=%v", got, err)
	}
}

// TestTaskAbort checks the voluntary-rollback path in every mode: a
// session that stages work and then calls Abort fails with an
// *AbortError carrying the application's result word and reason, its
// subtree is reclaimed wholesale in the hierarchical modes, and sibling
// sessions are untouched.
func TestTaskAbort(t *testing.T) {
	reason := errors.New("validation conflict")
	for _, mode := range Modes {
		t.Run(mode.String(), func(t *testing.T) {
			r := New(WithMode(mode), WithProcs(2), WithGCPolicy(2048, 1.25))
			defer r.Close()

			ses := r.Submit(SessionOpts{}, func(task *Task) uint64 {
				churn(task, 800) // stage some allocation, then roll back
				task.Abort(0xBEEF, reason)
				return 1 // unreachable
			})
			_, err := ses.Wait()
			var ab *AbortError
			if !errors.As(err, &ab) {
				t.Fatalf("Wait returned %v, want *AbortError", err)
			}
			if ab.Result != 0xBEEF || !errors.Is(err, reason) {
				t.Fatalf("AbortError = {Result %#x, Reason %v}, want {0xbeef, %v}",
					ab.Result, ab.Reason, reason)
			}
			if mode == ParMem || mode == Seq {
				if ses.WholesaleBytes() == 0 {
					t.Error("aborted session rolled back zero bytes")
				}
			}
			// A concurrent-era sibling still commits normally.
			if got, err := r.Submit(SessionOpts{}, func(task *Task) uint64 {
				return churn(task, 64)
			}).Wait(); err != nil || got == 0 {
				t.Fatalf("post-abort session: res=%d err=%v", got, err)
			}
		})
	}
}
