package hh

import (
	"repro/internal/mem"
	"repro/internal/rts"
)

// Ptr is a handle to a managed object. The zero value is the nil pointer.
//
// A Ptr is raw: collections move objects and update only registered root
// slots, so a Ptr held in a Go variable is guaranteed valid only until
// the task's next allocating operation. Register it in a Scope (Ref) to
// keep it live and current across allocations.
type Ptr struct {
	raw mem.ObjPtr
}

// Nil is the nil object pointer.
var Nil = Ptr{}

// IsNil reports whether p is the nil pointer.
func (p Ptr) IsNil() bool { return p.raw.IsNil() }

// String renders the handle as chunk:offset for debugging.
func (p Ptr) String() string { return p.raw.String() }

// Tag classifies an object's kind. Tags are carried for debugging, GC
// statistics, and the disentanglement checker; the runtime itself depends
// only on the pointer/non-pointer field split.
type Tag = mem.Tag

// Object kinds.
const (
	TagRef    = mem.TagRef    // single mutable cell
	TagTuple  = mem.TagTuple  // immutable record
	TagArrI64 = mem.TagArrI64 // array of raw 64-bit words
	TagArrPtr = mem.TagArrPtr // array of object pointers
	TagCons   = mem.TagCons   // list cell
	TagLeaf   = mem.TagLeaf   // tree / rope leaf
	TagNode   = mem.TagNode   // tree / rope interior node
	TagOther  = mem.TagOther
)

// Task is one user-level thread: the execution context handed to the
// closures of Run, Fork2, ForkN, and the parallel combinators. All memory
// operations and scopes go through the task.
type Task struct {
	r     *Runtime
	inner *rts.Task
	cur   *Scope // innermost open scope, nil outside Scoped
}

// Runtime returns the owning runtime.
func (t *Task) Runtime() *Runtime { return t.r }

// Alloc allocates an object with numPtr pointer fields (nil-initialized)
// and numWords raw 64-bit words (zeroed). Allocation is a GC safe point:
// any raw Ptr held only in Go variables may be stale afterwards.
func (t *Task) Alloc(numPtr, numWords int, tag Tag) Ptr {
	return Ptr{t.inner.Alloc(numPtr, numWords, tag)}
}

// AllocMut allocates an object that will be mutated and shared across
// tasks. In Manticore mode this allocates in the shared global heap (the
// DLG design's mutable-allocation cost); every other mode allocates
// task-locally.
func (t *Task) AllocMut(numPtr, numWords int, tag Tag) Ptr {
	return Ptr{t.inner.AllocMut(numPtr, numWords, tag)}
}

// InitWord performs an initializing store of raw word i of a fresh
// object (array construction; not mutation).
func (t *Task) InitWord(p Ptr, i int, v uint64) { t.inner.WriteInitWord(p.raw, i, v) }

// InitPtr performs an initializing store of pointer field i of a fresh
// object. The value must be disentangled with respect to the object
// (same heap or an ancestor).
func (t *Task) InitPtr(p Ptr, i int, q Ptr) { t.inner.WriteInitPtr(p.raw, i, q.raw) }

// ReadImmWord reads immutable raw word i (no barrier in any mode).
func (t *Task) ReadImmWord(p Ptr, i int) uint64 { return t.inner.ReadImmWord(p.raw, i) }

// ReadImmPtr reads immutable pointer field i.
func (t *Task) ReadImmPtr(p Ptr, i int) Ptr { return Ptr{t.inner.ReadImmPtr(p.raw, i)} }

// ReadMutWord reads mutable raw word i through the mode's read barrier.
func (t *Task) ReadMutWord(p Ptr, i int) uint64 { return t.inner.ReadMutWord(p.raw, i) }

// ReadMutPtr reads mutable pointer field i through the mode's read
// barrier.
func (t *Task) ReadMutPtr(p Ptr, i int) Ptr { return Ptr{t.inner.ReadMutPtr(p.raw, i)} }

// WriteWord writes mutable raw word i.
func (t *Task) WriteWord(p Ptr, i int, v uint64) { t.inner.WriteNonptr(p.raw, i, v) }

// WritePtr writes mutable pointer field i, promoting the pointee's object
// graph in the hierarchical modes when the write would entangle the
// hierarchy (the paper's central mechanism).
func (t *Task) WritePtr(p Ptr, i int, q Ptr) { t.inner.WritePtr(p.raw, i, q.raw) }

// WritePtrs writes qs[j] into the consecutive mutable pointer fields
// start+j of p — the batched pointer-write barrier for array-of-pointer
// publishes (visit lists, env packs, index slices). Each field write is
// individually linearizable, exactly as a WritePtr loop; in the
// hierarchical modes all writes that must promote share one lock climb
// per promote-buffer flush (WithPromoteBufferObjects) instead of climbing
// the heap path once per object, and pointees flushed together share one
// copy pass, so a subgraph reachable from several of them is promoted
// once.
func (t *Task) WritePtrs(p Ptr, start int, qs []Ptr) {
	var stack [16]mem.ObjPtr
	raw := stack[:0]
	if len(qs) > len(stack) {
		raw = make([]mem.ObjPtr, 0, len(qs))
	}
	for _, q := range qs {
		raw = append(raw, q.raw)
	}
	t.inner.WritePtrs(p.raw, start, raw)
}

// Abort rolls the session back and never returns: the session fails with
// an *AbortError carrying result and reason, every sibling task unwinds at
// its next allocation safe point, and the session's subtree is reclaimed
// wholesale — everything the request allocated is rolled back in bulk with
// no per-object undo, the hierarchy's free-rollback path. Outside a
// session (Run) the AbortError is re-raised as a panic.
func (t *Task) Abort(result uint64, reason error) { t.inner.Abort(result, reason) }

// CASWord atomically compares-and-swaps mutable raw word i.
func (t *Task) CASWord(p Ptr, i int, old, new uint64) bool {
	return t.inner.CASWord(p.raw, i, old, new)
}

// NumPtrFields returns the number of pointer fields of the object.
func (t *Task) NumPtrFields(p Ptr) int { return mem.NumPtrFields(p.raw) }

// NumWords returns the number of raw words of the object.
func (t *Task) NumWords(p Ptr) int { return mem.NumNonptrWords(p.raw) }

// TagOf returns the object's kind tag.
func (t *Task) TagOf(p Ptr) Tag { return mem.TagOf(p.raw) }

// taskFor wraps an engine task for an arm. The engine reuses the parent
// task when an arm runs inline and creates a fresh one when it is stolen;
// either way the arm gets its own wrapper so its scope chain is private.
func (r *Runtime) taskFor(inner *rts.Task) *Task { return &Task{r: r, inner: inner} }
