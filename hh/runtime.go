package hh

import (
	"repro/internal/mem"
	"repro/internal/rts"
)

// Runtime is one configured runtime system. Create it with New, execute
// work with Run, inspect it with Stats, and release it with Close.
type Runtime struct {
	rt *rts.Runtime
}

// Stats is a snapshot of a runtime's aggregate statistics: operation
// counters by cost class (Ops), collection totals (GC, GCNanos), steal
// counts, peak memory, and the zone-concurrency counters of the
// hierarchical collector (Zones).
type Stats = rts.Totals

// New builds and starts a runtime. With no options it runs the paper's
// hierarchical system (ParMem) on every CPU. At most one Runtime may be
// open per process — memory accounting is process-global — and New panics
// if the previous Runtime has not been Closed.
func New(opts ...Option) *Runtime {
	return &Runtime{rt: rts.New(newConfig(opts))}
}

// Mode returns the runtime system in use.
func (r *Runtime) Mode() Mode { return r.rt.Config().Mode }

// Procs returns the effective processor count.
func (r *Runtime) Procs() int { return r.rt.Procs() }

// Stats returns aggregate statistics. Call it after Run completes.
func (r *Runtime) Stats() Stats { return r.rt.Stats() }

// CheckDisentangled verifies the disentanglement invariant over the
// surviving object graph (a debugging aid; a completed Run has merged
// every task heap into the root, so this covers everything live).
func (r *Runtime) CheckDisentangled() error { return r.rt.CheckDisentangled() }

// Close stops the workers and releases every heap owned by the runtime.
// Closing twice is a no-op.
func (r *Runtime) Close() { r.rt.Close() }

// ChunksInUse reports the process-wide count of live memory chunks. After
// Close it returns to its pre-New value unless objects leaked — stress
// drivers use it as a leak check.
func ChunksInUse() int64 { return mem.ChunksInUse() }

// Run executes fn as a single PINNED session — Submit + Wait — and blocks
// for its result. The result may be any Go value; if it is (or contains) a
// Ptr, the pointed-to objects remain valid until Close, because pinning
// merges the session's subtree into the super-root, which is never
// collected. Concurrent sessions started with Submit may run alongside and
// cannot invalidate a pinned result; only unpinned sessions' own pointers
// die when their subtree is reclaimed wholesale at Wait. A panic inside fn
// is re-raised on the calling goroutine.
func Run[T any](r *Runtime, fn func(t *Task) T) T {
	var out T
	r.rt.Run(func(inner *rts.Task) uint64 {
		out = fn(&Task{r: r, inner: inner})
		return 0
	})
	return out
}
