package hh

import (
	"repro/internal/mem"
	"repro/internal/rts"
)

// Binding is the ordered set of rooted pointers a fork threads to its
// arms. Build one with Bind. A nil Binding forks with an empty
// environment (arms that need only captured scalars).
type Binding []Ref

// Bind collects refs into a Binding. All refs must be rooted on the task
// performing the fork.
func Bind(refs ...Ref) Binding { return refs }

// Env is the arm-side view of a fork's Binding: the same pointers,
// re-read on the arm's side of the fork (promoted where the mode requires
// it) and pre-registered in the arm's own root set. Env positions match
// Binding positions.
type Env struct {
	refs []Ref
}

// Len returns the number of bound pointers.
func (e *Env) Len() int { return len(e.refs) }

// Ref returns the arm-rooted handle at position i.
func (e *Env) Ref(i int) Ref { return e.refs[i] }

// Ptr returns the current value of the pointer at position i. Like any
// raw Ptr it is valid until the arm's next allocating operation; re-read
// it (or hold Ref(i)) across allocations.
func (e *Env) Ptr(i int) Ptr { return e.refs[i].Get() }

// packEnv builds the managed tuple that carries a Binding through the
// engine's fork. The refs' slots are read after the allocation, so a
// collection triggered by the tuple allocation itself is harmless.
func (t *Task) packEnv(b Binding) mem.ObjPtr {
	if len(b) == 0 {
		return mem.NilPtr
	}
	for _, r := range b {
		r.check()
		if r.s.t.inner != t.inner {
			panic("hh: Binding ref belongs to a different task")
		}
	}
	env := t.inner.Alloc(len(b), 0, mem.TagTuple)
	for i, r := range b {
		t.inner.WriteInitPtr(env, i, *r.slot)
	}
	return env
}

// openEnv unpacks the environment tuple into arm-rooted refs inside the
// given scope. The tuple's fields are read and registered before any
// allocation can occur on the arm, so no pointer is ever exposed raw.
func openEnv(at *Task, s *Scope, env mem.ObjPtr, n int) *Env {
	e := &Env{refs: make([]Ref, n)}
	for i := 0; i < n; i++ {
		e.refs[i] = s.Ref(Ptr{at.inner.ReadImmPtr(env, i)})
	}
	return e
}

// armThunk adapts a typed arm to an engine thunk. The arm's result is
// passed out through *out; if the result is a Ptr it is ALSO returned to
// the engine, which is what routes it through the mode's join machinery
// (rooting across stop-the-world relocation, promotion of stolen results
// in Manticore) — the caller must then prefer the engine's returned
// pointer over *out.
func armThunk[T any](r *Runtime, n int, f func(*Task, *Env) T, out *T) rts.Thunk {
	return func(inner *rts.Task, env mem.ObjPtr) mem.ObjPtr {
		at := r.taskFor(inner)
		var res T
		at.Scoped(func(s *Scope) {
			res = f(at, openEnv(at, s, env, n))
		})
		*out = res
		if p, ok := any(res).(Ptr); ok {
			return p.raw
		}
		return mem.NilPtr
	}
}

// finishResult replaces a Ptr result with the engine's joined pointer
// (which reflects any relocation or promotion the join performed).
func finishResult[T any](out *T, p mem.ObjPtr) {
	if _, ok := any(*out).(Ptr); ok {
		*out = any(Ptr{p}).(T)
	}
}

// Fork2 runs f and g in parallel and returns both results. The Binding's
// pointers travel through the fork as the environment; each arm receives
// them re-read and re-rooted as an Env. Arms must not capture Ptr or Ref
// values (see the package documentation); results that are managed
// pointers must be returned as Ptr.
func Fork2[A, B any](t *Task, env Binding, f func(t *Task, e *Env) A, g func(t *Task, e *Env) B) (A, B) {
	packed := t.packEnv(env)
	var ra A
	var rb B
	pa, pb := t.inner.ForkJoin(packed,
		armThunk(t.r, len(env), f, &ra),
		armThunk(t.r, len(env), g, &rb))
	finishResult(&ra, pa)
	finishResult(&rb, pb)
	return ra, rb
}

// ForkN runs every arm in parallel and returns their results in arm
// order. Unlike a binary fork tree, all arms after the first are
// published as independently stealable frames at once (the engine's
// n-ary fork-join). Environment and capture rules are as for Fork2.
func ForkN[T any](t *Task, env Binding, arms ...func(t *Task, e *Env) T) []T {
	out := make([]T, len(arms))
	if len(arms) == 0 {
		return out
	}
	packed := t.packEnv(env)
	thunks := make([]rts.Thunk, len(arms))
	for i, f := range arms {
		thunks[i] = armThunk(t.r, len(env), f, &out[i])
	}
	ps := t.inner.ForkJoinN(packed, thunks...)
	for i := range out {
		finishResult(&out[i], ps[i])
	}
	return out
}
