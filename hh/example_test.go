package hh_test

import (
	"fmt"

	"repro/hh"
)

// ExampleRuntime_Submit serves several independent units of work as
// concurrent sessions. Each session is its own subtree of the heap
// hierarchy: it allocates freely, may fork internally, and the moment
// Wait returns its entire memory has been reclaimed wholesale — chunks go
// back to the runtime's recycling pool for the next session, not to a
// garbage collector.
func ExampleRuntime_Submit() {
	r := hh.New(hh.WithMode(hh.ParMem), hh.WithProcs(2))
	defer r.Close()

	// Submit three sessions; they run concurrently with each other.
	sessions := make([]*hh.Session, 3)
	for i := range sessions {
		n := uint64(10 * (i + 1))
		sessions[i] = r.Submit(hh.SessionOpts{}, func(t *hh.Task) uint64 {
			// Sum 1..n in parallel inside the session.
			return hh.ParSum(t, nil, 1, int(n)+1, 4,
				func(t *hh.Task, _ *hh.Env, lo, hi int) uint64 {
					var s uint64
					for j := lo; j < hi; j++ {
						s += uint64(j)
					}
					return s
				})
		})
	}
	for i, s := range sessions {
		res, err := s.Wait()
		if err != nil {
			fmt.Println("session failed:", err)
			continue
		}
		fmt.Printf("session %d: %d\n", i, res)
	}
	// Output:
	// session 0: 55
	// session 1: 210
	// session 2: 465
}
