package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/hh"
)

// TestDrainConcurrentAndTwice is the SIGTERM-path contract: Drain may be
// called from several goroutines at once and again afterwards; every call
// returns only once the server is idle, and none deadlocks or panics.
func TestDrainConcurrentAndTwice(t *testing.T) {
	r := hh.New(hh.WithMode(hh.ParMem), hh.WithProcs(4), hh.WithGCPolicy(2048, 1.25))
	defer r.Close()
	srv := New(r, WithMaxInFlight(4), WithQueueDepth(32))

	release := make(chan struct{})
	var tickets []*Ticket
	for i := 0; i < 12; i++ {
		tk, err := srv.Submit(func(task *hh.Task) uint64 { <-release; return request(task, uint64(i), 10) })
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}

	const drainers = 6
	var wg sync.WaitGroup
	returned := make([]bool, drainers)
	for d := 0; d < drainers; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Drain()
			returned[d] = true
		}()
	}
	// No drainer may return while 12 requests are still blocked on release.
	time.Sleep(20 * time.Millisecond)
	for d, done := range returned {
		if done {
			t.Fatalf("drainer %d returned with requests still in flight", d)
		}
	}
	close(release)
	wg.Wait()
	for _, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// Second round: Drain again (idempotent on an idle server), then once
	// more concurrently with fresh traffic.
	srv.Drain()
	srv.Drain()
	if st := srv.Stats(); st.Completed != 12 {
		t.Fatalf("completed %d, want 12", st.Completed)
	}
}

// TestSaturatedErrorCarriesLoad checks the shedding contract: the
// rejection is matchable as ErrSaturated and carries the queue/in-flight
// occupancy observed at rejection time.
func TestSaturatedErrorCarriesLoad(t *testing.T) {
	r := hh.New(hh.WithMode(hh.ParMem), hh.WithProcs(2))
	defer r.Close()
	srv := New(r, WithMaxInFlight(1), WithQueueDepth(2))

	release := make(chan struct{})
	blocker, err := srv.Submit(func(task *hh.Task) uint64 { <-release; return 1 })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := srv.Submit(func(task *hh.Task) uint64 { return 2 }); err != nil {
			t.Fatal(err)
		}
	}
	_, err = srv.Submit(func(task *hh.Task) uint64 { return 3 })
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	var sat *SaturatedError
	if !errors.As(err, &sat) {
		t.Fatalf("err = %T, want *SaturatedError", err)
	}
	if sat.InFlight != 1 || sat.MaxInFlight != 1 || sat.Queued != 2 || sat.QueueDepth != 2 {
		t.Fatalf("saturated payload %+v, want 1/1 in flight, 2/2 queued", sat)
	}
	if inf, q := srv.Load(); inf != 1 || q != 2 {
		t.Fatalf("Load() = %d,%d, want 1,2", inf, q)
	}
	if mif, qd := srv.Caps(); mif != 1 || qd != 2 {
		t.Fatalf("Caps() = %d,%d, want 1,2", mif, qd)
	}
	close(release)
	if _, err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	srv.Drain()
}

// TestStatsP999 checks the extended quantile is populated and ordered.
func TestStatsP999(t *testing.T) {
	r := hh.New(hh.WithMode(hh.ParMem), hh.WithProcs(2))
	defer r.Close()
	srv := New(r, WithMaxInFlight(4), WithQueueDepth(64))
	for i := 0; i < 32; i++ {
		if _, err := srv.Submit(func(task *hh.Task) uint64 { return request(task, uint64(i), 10) }); err != nil {
			t.Fatal(err)
		}
	}
	srv.Drain()
	st := srv.Stats()
	if st.LatencyP999 < st.LatencyP99 || st.LatencyP999 > st.LatencyMax {
		t.Fatalf("p999 %v out of order (p99 %v, max %v)", st.LatencyP999, st.LatencyP99, st.LatencyMax)
	}
}
