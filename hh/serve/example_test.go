package serve_test

import (
	"errors"
	"fmt"

	"repro/hh"
	"repro/hh/serve"
)

// ExampleServer runs a tiny request loop: every submitted request becomes
// its own session with admission control and a bounded queue in front of
// it, and each completed request's memory is recycled wholesale into the
// chunk pool that serves the next request's allocations.
func ExampleServer() {
	r := hh.New(hh.WithMode(hh.ParMem), hh.WithProcs(2))
	defer r.Close()
	srv := serve.New(r,
		serve.WithMaxInFlight(2),     // at most 2 sessions running
		serve.WithQueueDepth(8),      // up to 8 more queued; beyond that ErrSaturated
		serve.WithSessionBudget(1e6)) // per-request allocation cap in words

	var tickets []*serve.Ticket
	for i := 0; i < 4; i++ {
		n := uint64(i + 1)
		tk, err := srv.Submit(func(t *hh.Task) uint64 { return n * n })
		if errors.Is(err, serve.ErrSaturated) {
			fmt.Println("shed request", i)
			continue
		}
		tickets = append(tickets, tk)
	}
	var sum uint64
	for _, tk := range tickets {
		res, err := tk.Wait()
		if err != nil {
			fmt.Println("request failed:", err)
			continue
		}
		sum += res
	}
	srv.Drain() // quiesce: every accepted request has completed

	st := srv.Stats()
	fmt.Printf("sum=%d completed=%d failed=%d\n", sum, st.Completed, st.Failed)
	// Output:
	// sum=30 completed=4 failed=0
}
