package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/hh"
)

// request builds a session-local linked list, hammers it with promoting
// writes into a session-shared array, and folds a checksum — enough work
// to trigger collections under the aggressive test policy.
func request(t *hh.Task, seed uint64, n int) uint64 {
	var sum uint64
	t.Scoped(func(sc *hh.Scope) {
		arr := sc.Ref(t.AllocMut(4, 0, hh.TagArrPtr))
		hh.ParDo(t, hh.Bind(arr), 0, 4, 1, func(t *hh.Task, e *hh.Env, lo, hi int) {
			for s := lo; s < hi; s++ {
				for i := 0; i < n; i++ {
					t.Scoped(func(ws *hh.Scope) {
						head := ws.Ref(t.ReadMutPtr(e.Ptr(0), s))
						c := t.Alloc(1, 1, hh.TagCons)
						t.InitWord(c, 0, seed+uint64(s)<<32+uint64(i))
						t.InitPtr(c, 0, head.Get())
						t.WritePtr(e.Ptr(0), s, c)
					})
				}
			}
		})
		for s := 0; s < 4; s++ {
			for p := t.ReadMutPtr(arr.Get(), s); !p.IsNil(); p = t.ReadImmPtr(p, 0) {
				sum = sum*31 + t.ReadImmWord(p, 0)
			}
		}
	})
	return sum
}

// TestServeStressAllModes is the serving layer's acceptance stress: at
// least 8 sessions in flight at once in every runtime mode, race-clean,
// with chunk occupancy back to baseline after Drain (wholesale
// reclamation actually releases chunks).
func TestServeStressAllModes(t *testing.T) {
	const (
		maxInFlight = 8
		clients     = 16
		perClient   = 6
	)
	for _, mode := range hh.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			r := hh.New(hh.WithMode(mode), hh.WithProcs(4), hh.WithGCPolicy(2048, 1.25))
			defer r.Close()
			base := hh.ChunksInUse()

			srv := New(r, WithMaxInFlight(maxInFlight), WithQueueDepth(2*clients))
			want := hh.Run(r, func(task *hh.Task) uint64 { return request(task, 1, 40) })

			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						var tk *Ticket
						for {
							var err error
							tk, err = srv.Submit(func(task *hh.Task) uint64 {
								return request(task, 1, 40)
							})
							if err == nil {
								break
							}
							if !errors.Is(err, ErrSaturated) {
								t.Error(err)
								return
							}
							time.Sleep(100 * time.Microsecond) // closed loop: back off and retry
						}
						got, err := tk.Wait()
						if err != nil || got != want {
							t.Errorf("request: got %x err %v, want %x", got, err, want)
							return
						}
					}
				}()
			}
			wg.Wait()
			srv.Drain()

			st := srv.Stats()
			if st.Completed != clients*perClient {
				t.Fatalf("completed %d, want %d", st.Completed, clients*perClient)
			}
			if st.PeakInFlight < maxInFlight {
				t.Errorf("peak in-flight %d, want %d (closed loop should saturate)", st.PeakInFlight, maxInFlight)
			}
			if mode == hh.ParMem || mode == hh.Seq {
				if st.WholesaleBytes == 0 {
					t.Error("no wholesale reclamation recorded")
				}
			}
			if st.LatencyP50 <= 0 || st.LatencyMax < st.LatencyP50 || st.Throughput <= 0 {
				t.Errorf("implausible latency/throughput stats: %+v", st)
			}
			// Every unpinned session's subtree must be gone; only the pinned
			// reference Run's chunks (merged into the root after `base` was
			// snapshotted, held until Close) may remain above baseline —
			// TestServeDrainReturnsToBaseline does the exact-baseline check.
			if got := hh.ChunksInUse(); got < base {
				t.Fatalf("chunk accounting underflow: %d < baseline %d", got, base)
			}
		})
	}
}

// TestLatencyAttribution checks the per-request breakdown: with more
// clients than in-flight slots the queue-wait component must be nonzero,
// the promoting workload must charge GC time, and the summary pair
// (LatencyCount/LatencySum) must agree with the completion count. The
// eager barrier must also charge barrier time; under deferred promotion a
// request's pins may all resolve without a single copy (entries die at a
// drain or elide at a join), so barrier time may legitimately be zero —
// but the breakdown phases must still sum to the latency, and the two
// barriers must agree on every request checksum.
func TestLatencyAttribution(t *testing.T) {
	const requests = 24
	var refSum uint64
	for _, tc := range []struct {
		name        string
		opts        []hh.Option
		wantBarrier bool
	}{
		{"eager", nil, true},
		{"deferred", []hh.Option{hh.WithDeferredPromotion()}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]hh.Option{hh.WithMode(hh.ParMem), hh.WithProcs(2), hh.WithGCPolicy(2048, 1.25)}, tc.opts...)
			r := hh.New(opts...)
			defer r.Close()

			srv := New(r, WithMaxInFlight(2), WithQueueDepth(requests))
			var tickets []*Ticket
			for i := 0; i < requests; i++ {
				// n=400 (not the stress's 40) so every request triggers collections
				// and the GC component of the breakdown is exercised.
				tk, err := srv.Submit(func(task *hh.Task) uint64 { return request(task, 1, 400) })
				if err != nil {
					t.Fatal(err)
				}
				tickets = append(tickets, tk)
			}
			for i, tk := range tickets {
				res, err := tk.Wait()
				if err != nil {
					t.Fatal(err)
				}
				if refSum == 0 {
					refSum = res
				}
				if res != refSum {
					t.Fatalf("request %d checksum %x, want %x (barrier modes disagree)", i, res, refSum)
				}
			}
			srv.Drain()

			st := srv.Stats()
			if st.LatencyCount != requests || st.Completed != requests {
				t.Fatalf("count %d completed %d, want %d", st.LatencyCount, st.Completed, requests)
			}
			if st.LatencySum <= 0 {
				t.Fatalf("LatencySum = %v, want > 0", st.LatencySum)
			}
			if st.QueueWaitTotal <= 0 {
				t.Fatalf("QueueWaitTotal = %v, want > 0 (24 requests through 2 slots must queue)", st.QueueWaitTotal)
			}
			if st.GCTotal <= 0 {
				t.Fatalf("GCTotal = %v, want > 0 for a collecting workload", st.GCTotal)
			}
			if tc.wantBarrier && st.BarrierTotal <= 0 {
				t.Fatalf("BarrierTotal = %v, want > 0 for an eagerly promoting workload", st.BarrierTotal)
			}
			if st.BarrierTotal < 0 {
				t.Fatalf("BarrierTotal = %v, want >= 0", st.BarrierTotal)
			}
			q, gc, bar, mut := st.Breakdown()
			if sum := q + gc + bar + mut; sum < 0.999 || sum > 1.001 {
				t.Fatalf("breakdown fractions sum to %f, want 1", sum)
			}
			if s := st.BreakdownString(); s == "-" || s == "" {
				t.Fatalf("BreakdownString = %q on a populated server", s)
			}
			if (ServeStats{}).BreakdownString() != "-" {
				t.Fatal("empty stats should format as \"-\"")
			}
		})
	}
}

// TestServeDrainReturnsToBaseline is the strict leak check: with no pinned
// work at all, ChunksInUse returns exactly to the pre-traffic baseline
// after Drain.
func TestServeDrainReturnsToBaseline(t *testing.T) {
	for _, mode := range []hh.Mode{hh.ParMem, hh.Seq} {
		t.Run(mode.String(), func(t *testing.T) {
			r := hh.New(hh.WithMode(mode), hh.WithProcs(4), hh.WithGCPolicy(2048, 1.25))
			defer r.Close()
			base := hh.ChunksInUse()

			srv := New(r, WithMaxInFlight(8))
			var tickets []*Ticket
			for i := 0; i < 24; i++ {
				tk, err := srv.SubmitRequest(Request{Fn: func(task *hh.Task) uint64 {
					return request(task, uint64(i), 60)
				}})
				if errors.Is(err, ErrSaturated) {
					continue // backpressure did its job; coverage not needed here
				}
				if err != nil {
					t.Fatal(err)
				}
				tickets = append(tickets, tk)
			}
			srv.Drain()
			for _, tk := range tickets {
				if _, err := tk.Wait(); err != nil {
					t.Fatal(err)
				}
			}
			if got := hh.ChunksInUse(); got != base {
				t.Fatalf("ChunksInUse after Drain = %d, want baseline %d", got, base)
			}
			if st := srv.Stats(); st.WholesaleBytes == 0 {
				t.Fatal("expected wholesale reclamation")
			}
		})
	}
}

func TestServeBackpressureRejects(t *testing.T) {
	r := hh.New(hh.WithMode(hh.ParMem), hh.WithProcs(2))
	defer r.Close()
	srv := New(r, WithMaxInFlight(1), WithQueueDepth(1))

	release := make(chan struct{})
	blocker, err := srv.Submit(func(task *hh.Task) uint64 { <-release; return 1 })
	if err != nil {
		t.Fatal(err)
	}
	queued, err := srv.Submit(func(task *hh.Task) uint64 { return 2 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(func(task *hh.Task) uint64 { return 3 }); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third submit: err = %v, want ErrSaturated", err)
	}
	close(release)
	if res, err := blocker.Wait(); err != nil || res != 1 {
		t.Fatalf("blocker: %d, %v", res, err)
	}
	if res, err := queued.Wait(); err != nil || res != 2 {
		t.Fatalf("queued: %d, %v", res, err)
	}
	srv.Drain()
	st := srv.Stats()
	if st.Rejected != 1 || st.Submitted != 2 || st.PeakQueued != 1 {
		t.Fatalf("stats %+v, want 2 submitted, 1 rejected, peak queue 1", st)
	}
}

func TestServeFailureIsolation(t *testing.T) {
	r := hh.New(hh.WithMode(hh.ParMem), hh.WithProcs(2), hh.WithGCPolicy(2048, 1.25))
	defer r.Close()
	srv := New(r, WithMaxInFlight(4), WithSessionBudget(64<<10))

	over, err := srv.SubmitRequest(Request{Fn: func(task *hh.Task) uint64 {
		return request(task, 9, 1_000_000) // blows the 64K-word default budget
	}})
	if err != nil {
		t.Fatal(err)
	}
	angry, err := srv.SubmitRequest(Request{Fn: func(task *hh.Task) uint64 {
		panic("malformed request")
	}})
	if err != nil {
		t.Fatal(err)
	}
	good, err := srv.SubmitRequest(Request{BudgetWords: 8 << 20, Fn: func(task *hh.Task) uint64 {
		return request(task, 3, 50)
	}})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := over.Wait(); !errors.Is(err, hh.ErrBudgetExceeded) {
		t.Fatalf("budget overrun err = %v", err)
	}
	var pe *hh.PanicError
	if _, err := angry.Wait(); !errors.As(err, &pe) {
		t.Fatalf("panic err = %v", err)
	}
	if res, err := good.Wait(); err != nil || res == 0 {
		t.Fatalf("good request disturbed: %d, %v", res, err)
	}
	srv.Drain()
	if st := srv.Stats(); st.Failed != 2 || st.Completed != 1 {
		t.Fatalf("stats %+v, want 2 failed / 1 completed", st)
	}
}

func TestServePinnedRequestSurvivesDrain(t *testing.T) {
	r := hh.New(hh.WithMode(hh.ParMem), hh.WithProcs(2))
	defer r.Close()
	srv := New(r, WithMaxInFlight(4))

	var out hh.Ptr
	tk, err := srv.SubmitRequest(Request{Pin: true, Fn: func(task *hh.Task) uint64 {
		p := task.Alloc(0, 1, hh.TagTuple)
		task.InitWord(p, 0, 0xabcdef)
		out = p
		return 0
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := srv.Submit(func(task *hh.Task) uint64 { return request(task, uint64(i), 30) }); err != nil {
			t.Fatal(err)
		}
	}
	srv.Drain()
	got := hh.Run(r, func(task *hh.Task) uint64 { return task.ReadImmWord(out, 0) })
	if got != 0xabcdef {
		t.Fatalf("pinned result corrupted: %x", got)
	}
	if st := srv.Stats(); st.MergedBytes == 0 {
		t.Fatal("pinned request recorded no merged bytes")
	}
}
