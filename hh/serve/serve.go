package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/hh"
	"repro/internal/lat"
	"repro/internal/trace"
)

// ErrSaturated rejects a Submit that found the server at MaxInFlight with
// a full backpressure queue. Callers shed the request (or retry after
// backoff); the server never buffers unboundedly. The error returned by
// SubmitRequest is a *SaturatedError carrying the load observed at
// rejection time; match it with errors.Is(err, ErrSaturated) or unwrap
// with errors.As to read the depths.
var ErrSaturated = errors.New("serve: server saturated (in-flight cap and queue both full)")

// SaturatedError is the concrete rejection returned when a submission
// finds the server saturated. It snapshots the load at the instant of
// rejection so shedding responses and metrics can report how far over
// capacity the server was (netserve's SHED replies carry these numbers to
// the client as a backoff hint).
type SaturatedError struct {
	InFlight    int // sessions running at rejection time
	MaxInFlight int // the admission cap
	Queued      int // backpressure-queue occupancy at rejection time
	QueueDepth  int // the queue bound
}

func (e *SaturatedError) Error() string {
	return fmt.Sprintf("serve: server saturated (%d/%d in flight, %d/%d queued)",
		e.InFlight, e.MaxInFlight, e.Queued, e.QueueDepth)
}

// Is reports ErrSaturated as this error's sentinel, so existing
// errors.Is(err, ErrSaturated) callers keep working.
func (e *SaturatedError) Is(target error) bool { return target == ErrSaturated }

// Option configures a Server.
type Option func(*Server)

// WithMaxInFlight caps how many sessions run simultaneously. Default: the
// runtime's processor count.
func WithMaxInFlight(n int) Option {
	return func(s *Server) { s.maxInFlight = n }
}

// WithQueueDepth bounds the backpressure queue that holds accepted
// requests waiting for an in-flight slot. 0 disables queueing (over-cap
// submissions fail immediately). Default: 4 × MaxInFlight.
func WithQueueDepth(n int) Option {
	return func(s *Server) { s.queueDepth = n }
}

// WithSessionBudget sets the default per-session allocation budget in
// words (0 = unlimited). Individual requests may override it.
func WithSessionBudget(words int64) Option {
	return func(s *Server) { s.budget = words }
}

// Request is one unit of work with its per-request policy.
type Request struct {
	// Fn is the request body, run as its own session.
	Fn func(t *hh.Task) uint64
	// Pin merges the session's subtree into the super-root instead of
	// reclaiming it wholesale (see the hh session lifetime rules).
	Pin bool
	// BudgetWords overrides the server's default session budget when > 0.
	BudgetWords int64
}

// Ticket is the caller's handle to one accepted request.
type Ticket struct {
	srv       *Server
	req       Request
	submitted time.Time
	started   time.Time // when the session launched (== submitted minus queue wait)
	qspan     uint64    // trace span covering the backpressure-queue wait
	ses       *hh.Session
	res       uint64
	err       error
	done      chan struct{}
}

// Wait blocks until the request's session completes and returns its
// result or failure (hh.ErrBudgetExceeded, *hh.PanicError, or an
// *hh.AbortError when the request rolled itself back).
func (tk *Ticket) Wait() (uint64, error) {
	<-tk.done
	return tk.res, tk.err
}

// WholesaleBytes reports the chunk bytes released in bulk when the
// request's session completed — on the abort path, the size of the
// rollback the hierarchy performed for free. Valid after Wait returns; 0
// while the request is in flight (and in the flat modes, whose sessions
// allocate into shared heaps).
func (tk *Ticket) WholesaleBytes() int64 {
	select {
	case <-tk.done:
		return tk.ses.WholesaleBytes()
	default:
		return 0
	}
}

// Server runs independent requests as concurrent root-level sessions with
// admission control, bounded backpressure, and serving statistics. All
// methods are safe for concurrent use.
type Server struct {
	r           *hh.Runtime
	maxInFlight int
	queueDepth  int
	budget      int64

	mu       sync.Mutex
	quiesced *sync.Cond
	inFlight int
	queue    []*Ticket

	stats       ServeStats
	hist        lat.Hist
	firstSubmit time.Time
	lastDone    time.Time
}

// New builds a Server over an open runtime. The runtime is shared: the
// caller may still Run/Submit on it directly, and remains responsible for
// closing it (after Drain).
func New(r *hh.Runtime, opts ...Option) *Server {
	s := &Server{r: r, maxInFlight: r.Procs(), queueDepth: -1}
	for _, opt := range opts {
		opt(s)
	}
	if s.maxInFlight < 1 {
		s.maxInFlight = 1
	}
	if s.queueDepth < 0 {
		s.queueDepth = 4 * s.maxInFlight
	}
	s.quiesced = sync.NewCond(&s.mu)
	return s
}

// Runtime returns the runtime the server serves on.
func (s *Server) Runtime() *hh.Runtime { return s.r }

// Submit offers fn as a request with the server's default policy.
func (s *Server) Submit(fn func(t *hh.Task) uint64) (*Ticket, error) {
	return s.SubmitRequest(Request{Fn: fn})
}

// SubmitRequest offers one request. It never blocks: the request is
// started immediately if an in-flight slot is free, queued if the
// backpressure queue has room, and rejected with ErrSaturated otherwise.
func (s *Server) SubmitRequest(req Request) (*Ticket, error) {
	tk := &Ticket{srv: s, req: req, submitted: time.Now(), done: make(chan struct{})}
	s.mu.Lock()
	if s.firstSubmit.IsZero() {
		s.firstSubmit = tk.submitted
	}
	if s.inFlight < s.maxInFlight {
		s.inFlight++
		if s.inFlight > s.stats.PeakInFlight {
			s.stats.PeakInFlight = s.inFlight
		}
		s.stats.Submitted++
		s.mu.Unlock()
		s.launch(tk)
		return tk, nil
	}
	if len(s.queue) < s.queueDepth {
		s.queue = append(s.queue, tk)
		if len(s.queue) > s.stats.PeakQueued {
			s.stats.PeakQueued = len(s.queue)
		}
		s.stats.Submitted++
		if trace.Enabled() {
			// Under s.mu: complete() may pop this ticket and launch it the
			// instant the lock drops, and launch reads qspan.
			tk.qspan = trace.Begin(-1, trace.EvQueue, uint32(len(s.queue)), 0)
		}
		s.mu.Unlock()
		return tk, nil
	}
	s.stats.Rejected++
	rej := &SaturatedError{
		InFlight: s.inFlight, MaxInFlight: s.maxInFlight,
		Queued: len(s.queue), QueueDepth: s.queueDepth,
	}
	s.mu.Unlock()
	if trace.Enabled() {
		trace.Emit(-1, trace.EvShed, trace.ShedSaturated, uint64(rej.Queued))
	}
	return nil, rej
}

// Load snapshots the server's instantaneous occupancy: sessions running
// and requests waiting in the backpressure queue. Front ends use it for
// proactive shedding (reject low-priority work while the queue is filling,
// before ErrSaturated) and for gauge metrics.
func (s *Server) Load() (inFlight, queued int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inFlight, len(s.queue)
}

// Caps reports the server's admission cap and queue bound.
func (s *Server) Caps() (maxInFlight, queueDepth int) {
	return s.maxInFlight, s.queueDepth
}

// launch starts the ticket's session and watches it to completion. Called
// without s.mu; the caller has already taken an in-flight slot.
func (s *Server) launch(tk *Ticket) {
	budget := tk.req.BudgetWords
	if budget == 0 {
		budget = s.budget
	}
	tk.started = time.Now()
	tk.ses = s.r.Submit(hh.SessionOpts{Pin: tk.req.Pin, BudgetWords: budget}, tk.req.Fn)
	if tk.qspan != 0 {
		trace.End(-1, trace.EvQueue, tk.qspan, 0, tk.ses.ID())
	}
	go func() {
		tk.res, tk.err = tk.ses.Wait()
		s.complete(tk)
		close(tk.done)
	}()
}

// complete records the finished request, hands its in-flight slot to the
// oldest queued request (if any), and wakes Drain when the server is idle.
func (s *Server) complete(tk *Ticket) {
	now := time.Now()

	// Latency attribution: split Submit-to-completion wall time into queue
	// wait (admission to launch), overlapped GC and promotion-climb time
	// (accumulated by the session's tasks), and mutator time (the residual,
	// clamped at zero — GC and climbs of a parallel session can overlap each
	// other, so the components may oversubscribe the wall clock).
	total := now.Sub(tk.submitted)
	queue := time.Duration(0)
	if !tk.started.IsZero() {
		queue = tk.started.Sub(tk.submitted)
	}
	gcd := time.Duration(tk.ses.GCNanos())
	barrier := time.Duration(tk.ses.BarrierNanos())
	mutator := total - queue - gcd - barrier
	if mutator < 0 {
		mutator = 0
	}

	s.mu.Lock()
	if tk.err != nil {
		s.stats.Failed++
	} else {
		s.stats.Completed++
	}
	s.hist.Record(total)
	s.stats.QueueWaitTotal += queue
	s.stats.GCTotal += gcd
	s.stats.BarrierTotal += barrier
	s.stats.MutatorTotal += mutator
	s.stats.WholesaleBytes += tk.ses.WholesaleBytes()
	s.stats.MergedBytes += tk.ses.MergedBytes()
	if now.After(s.lastDone) {
		s.lastDone = now
	}
	var next *Ticket
	if len(s.queue) > 0 {
		next = s.queue[0]
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:len(s.queue)-1]
	} else {
		s.inFlight--
		if s.inFlight == 0 {
			s.quiesced.Broadcast()
		}
	}
	s.mu.Unlock()
	if next != nil {
		s.launch(next)
	}
}

// Drain blocks until every accepted request has completed — the wholesale
// reclamation of all unpinned sessions included, so chunk occupancy is
// back to its pre-traffic baseline when Drain returns (the leak check the
// stress tests run). The server stays usable; new requests may be
// submitted afterwards (including concurrently, which simply extends the
// drain).
//
// Drain is idempotent and safe to call from any number of goroutines at
// once: every caller independently waits for the same quiescent point and
// each returns once the server is idle from its own point of view — a
// second Drain issued while a first is still waiting simply waits
// alongside it (the SIGTERM path calls Drain from the signal handler while
// a shutdown watchdog may be draining too). A Drain of a server that never
// saw traffic returns immediately.
func (s *Server) Drain() {
	var span uint64
	if trace.Enabled() {
		span = trace.Begin(-1, trace.EvDrain, trace.DrainServer, 0)
	}
	s.mu.Lock()
	for s.inFlight > 0 || len(s.queue) > 0 {
		s.quiesced.Wait()
	}
	s.mu.Unlock()
	if span != 0 {
		trace.End(-1, trace.EvDrain, span, 0, 0)
	}
}

// Stats snapshots the server's serving statistics.
func (s *Server) Stats() ServeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	if !s.firstSubmit.IsZero() && s.lastDone.After(s.firstSubmit) {
		st.Elapsed = s.lastDone.Sub(s.firstSubmit)
		st.Throughput = float64(st.Completed+st.Failed) / st.Elapsed.Seconds()
	}
	st.LatencyMean = s.hist.Mean()
	st.LatencyP50 = s.hist.Quantile(0.50)
	st.LatencyP90 = s.hist.Quantile(0.90)
	st.LatencyP99 = s.hist.Quantile(0.99)
	st.LatencyP999 = s.hist.Quantile(0.999)
	st.LatencyMax = s.hist.Max()
	st.LatencyCount = s.hist.Count()
	st.LatencySum = s.hist.Sum()
	return st
}
