package netserve

import (
	"sync"

	"repro/internal/load"
)

// LoadResolver adapts the internal/load scenario registry as a
// Config.Resolve: RUN's scenario argument is the registry name ("kv",
// "bfs", "hist", "fan", "txn", "stream", "rank"). Stateful scenarios
// (txn) are instantiated once per resolver — i.e. per server — so every
// connection's requests share the same host-side store, exactly as
// concurrent clients of one drive loop do; an optimistic conflict
// surfaces to the network client as the session's abort error, and
// retrying is the client's business. cmd/hhserved and the tests both
// wire it in.
func LoadResolver() func(string) (Runner, bool) {
	var mu sync.Mutex
	instances := map[string]load.ScenarioRun{}
	return func(name string) (Runner, bool) {
		sc, err := load.ByName(name)
		if err != nil {
			return nil, false
		}
		if sc.Run != nil {
			return Runner(sc.Run), true
		}
		mu.Lock()
		run, ok := instances[name]
		if !ok {
			// The store's sizing knobs come from Params defaults; the
			// per-request size argument still scales each transaction's
			// staged scratch.
			run = sc.NewRun(0)
			instances[name] = run
		}
		mu.Unlock()
		return Runner(run.Run), true
	}
}
