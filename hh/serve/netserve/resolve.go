package netserve

import "repro/internal/load"

// LoadResolver adapts the internal/load scenario registry as a
// Config.Resolve: RUN's scenario argument is the registry name ("kv",
// "bfs", "hist", "fan"). cmd/hhserved and the tests both wire it in.
func LoadResolver() func(string) (Runner, bool) {
	return func(name string) (Runner, bool) {
		sc, err := load.ByName(name)
		if err != nil {
			return nil, false
		}
		return Runner(sc.Run), true
	}
}
