package netserve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/hh"
	"repro/hh/serve"
	"repro/internal/trace"
)

// Runner executes one decoded request on its session's root task. The
// front end resolves the RUN command's scenario name to a Runner via
// Config.Resolve; cmd/hhserved wires in the internal/load scenarios.
type Runner func(t *hh.Task, seed uint64, size int) uint64

// Config tunes a Frontend. The zero value works (Resolve must be set for
// RUN to succeed).
type Config struct {
	// Resolve maps a RUN scenario name to its Runner.
	Resolve func(name string) (Runner, bool)

	// Tenants gates admission per tenant. Nil builds a table with only the
	// default tenant (no per-tenant caps beyond the server's own).
	Tenants *TenantTable

	// ShedQueueFrac is the queue-occupancy fraction past which best-effort
	// tenants (Priority > 0) are shed proactively. 0 selects the default
	// (0.75); 1 disables proactive shedding (everyone queues to the hard
	// bound).
	ShedQueueFrac float64

	// PerConnPipeline bounds how many replies one connection may have
	// pending (in flight or queued) at once; past it the connection's read
	// loop blocks, which surfaces to the client as TCP backpressure.
	// 0 selects the default (32).
	PerConnPipeline int

	// MaxArgs and MaxArgBytes bound one request frame; oversized frames
	// are answered with -ERR proto and the connection is closed.
	// 0 selects the defaults (16 args, 1 MiB).
	MaxArgs     int
	MaxArgBytes int

	// Logf, when set, receives connection-level diagnostics (accept and
	// protocol errors). Nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.ShedQueueFrac == 0 {
		c.ShedQueueFrac = 0.75
	}
	if c.PerConnPipeline <= 0 {
		c.PerConnPipeline = 32
	}
	if c.MaxArgs <= 0 {
		c.MaxArgs = 16
	}
	if c.MaxArgBytes <= 0 {
		c.MaxArgBytes = 1 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Counters is a snapshot of a Frontend's lifetime traffic counters.
type Counters struct {
	ConnsAccepted int64
	ConnsActive   int64
	Frames        int64 // request frames parsed
	Runs          int64 // RUN commands accepted into the server
	Sheds         map[string]int64
	ProtoErrors   int64
}

// Frontend serves the protocol over a listener, turning each accepted RUN
// into one hh/serve session. Connections are independent: each has a read
// loop (parse, admit, submit) and a write loop (complete tickets in
// arrival order, flush), so requests pipeline per connection and fan out
// across connections.
type Frontend struct {
	srv *serve.Server
	cfg Config
	lis net.Listener

	mu    sync.Mutex
	conns map[*conn]struct{}

	draining  atomic.Bool
	accepting sync.WaitGroup // the accept loop
	connWG    sync.WaitGroup // one per live connection (both loops)

	connsAccepted atomic.Int64
	connsActive   atomic.Int64
	frames        atomic.Int64
	runs          atomic.Int64
	protoErrors   atomic.Int64
	shedTotals    [shedReasons]atomic.Int64

	started time.Time
}

// Serve starts a Frontend over an already-listening socket and returns
// immediately; the accept loop runs until Drain or Close. The serve.Server
// is shared — the caller may keep submitting to it directly — and remains
// the caller's to Drain/Close after the Frontend is done.
func Serve(lis net.Listener, srv *serve.Server, cfg Config) *Frontend {
	f := &Frontend{
		srv:     srv,
		cfg:     cfg.withDefaults(),
		lis:     lis,
		conns:   map[*conn]struct{}{},
		started: time.Now(),
	}
	if f.cfg.Tenants == nil {
		mif, qd := srv.Caps()
		f.cfg.Tenants = NewTenantTable(mif+qd, nil)
	}
	f.accepting.Add(1)
	go f.acceptLoop()
	return f
}

// Addr reports the listening address (useful with ":0").
func (f *Frontend) Addr() net.Addr { return f.lis.Addr() }

// Server returns the serve.Server the front end submits into.
func (f *Frontend) Server() *serve.Server { return f.srv }

// Tenants returns the live tenant table.
func (f *Frontend) Tenants() *TenantTable { return f.cfg.Tenants }

// Counters snapshots the front end's traffic counters.
func (f *Frontend) Counters() Counters {
	c := Counters{
		ConnsAccepted: f.connsAccepted.Load(),
		ConnsActive:   f.connsActive.Load(),
		Frames:        f.frames.Load(),
		Runs:          f.runs.Load(),
		ProtoErrors:   f.protoErrors.Load(),
		Sheds:         map[string]int64{},
	}
	for i := range f.shedTotals {
		c.Sheds[shedReasonNames[i]] = f.shedTotals[i].Load()
	}
	return c
}

func (f *Frontend) acceptLoop() {
	defer f.accepting.Done()
	for {
		nc, err := f.lis.Accept()
		if err != nil {
			return // listener closed: Drain or Close
		}
		f.connsAccepted.Add(1)
		f.connsActive.Add(1)
		c := &conn{
			f:        f,
			nc:       nc,
			bw:       bufio.NewWriter(nc),
			tenant:   f.cfg.Tenants.Default(),
			pending:  make(chan pendingReply, f.cfg.PerConnPipeline),
			closeReq: make(chan struct{}),
		}
		f.mu.Lock()
		if f.draining.Load() {
			// Raced with Drain closing the listener: refuse politely.
			f.mu.Unlock()
			nc.Close()
			f.connsActive.Add(-1)
			continue
		}
		f.conns[c] = struct{}{}
		f.mu.Unlock()
		f.connWG.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

func (f *Frontend) dropConn(c *conn) {
	f.mu.Lock()
	if _, ok := f.conns[c]; ok {
		delete(f.conns, c)
		f.connsActive.Add(-1)
	}
	f.mu.Unlock()
}

// Drain is the SIGTERM path, in strict order: (1) mark draining, so new
// RUN frames on live connections are answered -SHED reason=draining
// instead of entering the server; (2) close the listener, so no new
// connections arrive; (3) wait for the serve.Server to quiesce — every
// already-accepted request completes and its session is reclaimed
// wholesale; (4) wait for every connection's write loop to flush its
// pending replies and exit, so no completed result is lost in a buffer.
// No accepted request is dropped: a client that got +queued framing (i.e.
// any non-SHED acceptance) always receives its reply before its
// connection closes.
//
// Drain returns nil once fully drained, or the context's error if it
// expires first — in which case remaining connections are force-closed
// (their in-flight sessions still run to completion inside the
// serve.Server; only their replies are lost).
//
// Drain is idempotent: concurrent and repeated calls all wait for the
// same quiescent point.
func (f *Frontend) Drain(ctx context.Context) error {
	var span uint64
	if trace.Enabled() {
		span = trace.Begin(-1, trace.EvDrain, trace.DrainFrontend, 0)
	}
	f.draining.Store(true)
	f.lis.Close()
	f.accepting.Wait()

	done := make(chan struct{})
	go func() {
		f.srv.Drain()
		// Idle connections' read loops are blocked in Read with no reply
		// owed; close them so their loops exit. Connections with pending
		// replies flush first: closeWhenFlushed defers the close to the
		// write loop's last flush.
		f.mu.Lock()
		for c := range f.conns {
			c.closeWhenFlushed()
		}
		f.mu.Unlock()
		f.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		if span != 0 {
			trace.End(-1, trace.EvDrain, span, 0, 0)
		}
		return nil
	case <-ctx.Done():
		f.forceClose()
		<-done
		if span != 0 {
			// aux=1: the deadline expired and remaining conns were forced.
			trace.End(-1, trace.EvDrain, span, 1, 0)
		}
		return ctx.Err()
	}
}

// Close force-closes the front end: listener and every connection,
// without waiting for pending replies to flush. In-flight sessions still
// complete inside the serve.Server (their replies are discarded). Prefer
// Drain.
func (f *Frontend) Close() {
	f.draining.Store(true)
	f.lis.Close()
	f.accepting.Wait()
	f.forceClose()
	f.connWG.Wait()
}

func (f *Frontend) forceClose() {
	f.mu.Lock()
	conns := make([]*conn, 0, len(f.conns))
	for c := range f.conns {
		conns = append(conns, c)
	}
	f.mu.Unlock()
	for _, c := range conns {
		c.nc.Close()
	}
}

// pendingReply is one slot in a connection's reply order: either a ticket
// whose result is still being computed, or an immediate pre-rendered
// reply.
type pendingReply struct {
	tk     *serve.Ticket
	render func(bw *bufio.Writer) // immediate replies (PING, errors, SHED)
	tenant *Tenant                // decremented when the ticket completes
}

// conn is one accepted connection.
type conn struct {
	f       *Frontend
	nc      net.Conn
	bw      *bufio.Writer
	tenant  *Tenant
	pending chan pendingReply

	closeReq     chan struct{} // closed by closeWhenFlushed
	closeReqOnce sync.Once
	closeOnce    sync.Once
	flushedClose atomic.Bool
}

func (c *conn) close() {
	c.closeOnce.Do(func() { c.nc.Close() })
}

// closeWhenFlushed asks the write loop to close the connection as soon as
// every pending reply has been written and flushed — the drain path's
// "no accepted reply is lost" guarantee. Safe to call repeatedly.
func (c *conn) closeWhenFlushed() {
	c.closeReqOnce.Do(func() { close(c.closeReq) })
}

// readLoop parses frames and dispatches commands until the connection
// drops, QUIT, or a protocol error. It is the only sender on c.pending
// and closes it on exit; the write loop owns the rest of the shutdown.
func (c *conn) readLoop() {
	defer c.f.connWG.Done()
	defer close(c.pending)
	br := bufio.NewReaderSize(c.nc, 16<<10)
	for {
		args, err := readCommand(br, c.f.cfg.MaxArgs, c.f.cfg.MaxArgBytes)
		if err != nil {
			var pe *protoError
			if errors.As(err, &pe) {
				// Malformed or oversized frame: report on the wire, then
				// close. The queued error reply flushes before the close.
				c.f.protoErrors.Add(1)
				c.f.cfg.Logf("netserve: %s: %v", c.nc.RemoteAddr(), pe)
				msg := pe.Error()
				c.enqueue(pendingReply{render: func(bw *bufio.Writer) {
					writeError(bw, "ERR", msg)
				}})
				c.flushedClose.Store(true)
			}
			return
		}
		c.f.frames.Add(1)
		if !c.dispatch(args) {
			return
		}
	}
}

// enqueue pushes one reply slot, blocking when the pipeline bound is
// reached (TCP backpressure on the peer).
func (c *conn) enqueue(p pendingReply) { c.pending <- p }

// dispatch handles one command; false ends the read loop (QUIT).
func (c *conn) dispatch(args [][]byte) bool {
	switch cmd := string(args[0]); cmd {
	case "PING", "ping":
		c.enqueue(pendingReply{render: func(bw *bufio.Writer) { writeSimple(bw, "PONG") }})
	case "HELLO", "hello":
		if len(args) != 2 {
			c.enqueue(errReply("ERR", "HELLO wants 1 argument: tenant name"))
			return true
		}
		c.tenant = c.f.cfg.Tenants.Lookup(string(args[1]))
		c.enqueue(pendingReply{render: func(bw *bufio.Writer) { writeSimple(bw, "OK tenant="+c.tenant.Name) }})
	case "RUN", "run":
		c.dispatchRun(args)
	case "STATS", "stats":
		text := c.f.metricsText()
		c.enqueue(pendingReply{render: func(bw *bufio.Writer) { writeBulk(bw, text) }})
	case "QUIT", "quit":
		c.enqueue(pendingReply{render: func(bw *bufio.Writer) { writeSimple(bw, "OK") }})
		c.flushedClose.Store(true)
		return false
	default:
		c.enqueue(errReply("ERR", "unknown command "+strconv.Quote(cmd)))
	}
	return true
}

// dispatchRun admits one RUN: tenant gate, proactive pressure shed, then
// serve.Server admission; the accepted ticket joins the reply order.
func (c *conn) dispatchRun(args [][]byte) {
	if len(args) != 4 {
		c.enqueue(errReply("ERR", "RUN wants 3 arguments: scenario seed size"))
		return
	}
	runner, ok := c.f.cfg.Resolve(string(args[1]))
	if !ok {
		c.enqueue(errReply("ERR", "unknown scenario "+strconv.Quote(string(args[1]))))
		return
	}
	seed, err1 := strconv.ParseUint(string(args[2]), 10, 64)
	size, err2 := strconv.Atoi(string(args[3]))
	if err1 != nil || err2 != nil || size < 0 {
		c.enqueue(errReply("ERR", "bad RUN seed/size"))
		return
	}
	tn := c.tenant

	if c.f.draining.Load() {
		c.shed(tn, shedDraining, 0, 0)
		return
	}
	// Tenant share gate: reserve the slot optimistically; the competing
	// submit below either consumes it or rolls it back.
	if tn.inFlight.Add(1) > tn.maxInFlight {
		tn.inFlight.Add(-1)
		c.shed(tn, shedTenant, 0, 0)
		return
	}
	// Proactive pressure shed for best-effort tenants: keep the tail of
	// the queue for priority-0 traffic.
	if tn.Priority > 0 && c.f.cfg.ShedQueueFrac < 1 {
		_, queued := c.f.srv.Load()
		_, queueDepth := c.f.srv.Caps()
		if queueDepth > 0 && float64(queued) >= c.f.cfg.ShedQueueFrac*float64(queueDepth) {
			tn.inFlight.Add(-1)
			c.shed(tn, shedPressure, queued, queueDepth)
			return
		}
	}
	tk, err := c.f.srv.SubmitRequest(serve.Request{
		BudgetWords: tn.BudgetWords,
		Fn:          func(t *hh.Task) uint64 { return runner(t, seed, size) },
	})
	if err != nil {
		tn.inFlight.Add(-1)
		var sat *serve.SaturatedError
		if errors.As(err, &sat) {
			c.shed(tn, shedSaturated, sat.Queued, sat.QueueDepth)
		} else {
			c.enqueue(errReply("ERR", err.Error()))
		}
		return
	}
	tn.accepted.Add(1)
	c.f.runs.Add(1)
	c.enqueue(pendingReply{tk: tk, tenant: tn})
}

// shed rejects one RUN with a -SHED reply carrying the reason, the load
// the server saw, and a backoff hint scaled to the queue depth.
func (c *conn) shed(tn *Tenant, reason int, queued, queueDepth int) {
	tn.shed[reason].Add(1)
	c.f.shedTotals[reason].Add(1)
	// Saturated sheds are already emitted by serve.SubmitRequest at the
	// moment of rejection; emitting the front-end gates here keeps every
	// shed in the trace exactly once.
	if reason != shedSaturated && trace.Enabled() {
		trace.Emit(-1, trace.EvShed, uint32(reason), uint64(queued))
	}
	backoff := 1 + 2*queued
	if backoff > 100 {
		backoff = 100
	}
	inFlight, q := c.f.srv.Load()
	mif, qd := c.f.srv.Caps()
	if queueDepth == 0 {
		queued, queueDepth = q, qd
	}
	msg := fmt.Sprintf("SHED reason=%s backoff_ms=%d inflight=%d/%d queued=%d/%d tenant=%s",
		shedReasonNames[reason], backoff, inFlight, mif, queued, queueDepth, tn.Name)
	c.enqueue(pendingReply{render: func(bw *bufio.Writer) {
		bw.WriteByte('-')
		bw.WriteString(msg)
		bw.WriteString("\r\n")
	}})
}

func errReply(code, msg string) pendingReply {
	return pendingReply{render: func(bw *bufio.Writer) { writeError(bw, code, msg) }}
}

// writeLoop emits replies in request order: immediate replies directly,
// tickets by Wait — so a pipelined connection's slow request blocks its
// own later replies (protocol order) but never another connection.
// Flushes batch: the buffer is pushed only when no further reply is
// immediately pending.
//
// The loop exits only once the pending channel closes (the read loop is
// its sole sender and closer), so every ticket is always Waited — tenant
// accounting and session reclamation complete even for a dropped peer,
// whose replies are simply discarded. A drain request (closeWhenFlushed)
// closes the socket at the first fully-flushed point, which unblocks the
// read loop and lets the channel close.
func (c *conn) writeLoop() {
	defer c.f.connWG.Done()
	defer c.f.dropConn(c)
	defer c.close()
	dead := false // peer unreachable: drain tickets, write nothing
	closeCh := c.closeReq
	for {
		var p pendingReply
		var ok bool
		select {
		case p, ok = <-c.pending:
		case <-closeCh:
			closeCh = nil
			c.flushedClose.Store(true)
			if len(c.pending) == 0 {
				// Idle connection: everything already flushed; close now so
				// the blocked read loop exits.
				c.bw.Flush()
				c.close()
			}
			continue
		}
		if !ok {
			break
		}
		if p.tk != nil {
			res, err := p.tk.Wait()
			p.tenant.inFlight.Add(-1)
			if !dead {
				if err != nil {
					writeError(c.bw, "ERR", "request failed: "+err.Error())
				} else {
					writeBulk(c.bw, []byte(fmt.Sprintf("%016x", res)))
				}
			}
		} else if !dead {
			p.render(c.bw)
		}
		if !dead && len(c.pending) == 0 {
			if c.bw.Flush() != nil {
				dead = true
				c.close()
				continue
			}
			if c.flushedClose.Load() {
				c.close() // flushed and draining: end the read loop
			}
		}
	}
	if !dead {
		c.bw.Flush()
	}
}
