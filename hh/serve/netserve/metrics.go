package netserve

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/hh"
)

// The metrics endpoint speaks the Prometheus text exposition format
// (text/plain; version=0.0.4): `# TYPE` headers, one `name{labels} value`
// sample per line. Every number is fed by counters the runtime already
// maintains — serve.ServeStats, rts.Totals (operations, zones, sessions,
// allocator), and the process-wide chunk gauge — so scraping costs one
// stats snapshot, no extra bookkeeping on the request path.

// WriteMetrics renders the front end's full metrics exposition.
func (f *Frontend) WriteMetrics(buf *bytes.Buffer) {
	st := f.srv.Stats()
	rt := f.srv.Runtime().Stats()
	inFlight, queued := f.srv.Load()
	maxInFlight, queueDepth := f.srv.Caps()
	c := f.Counters()
	mode := f.srv.Runtime().Mode().String()

	sec := func(d time.Duration) float64 { return d.Seconds() }

	fmt.Fprintf(buf, "# TYPE hh_up gauge\nhh_up{mode=%q} 1\n", mode)
	fmt.Fprintf(buf, "# TYPE hh_uptime_seconds gauge\nhh_uptime_seconds %.3f\n",
		time.Since(f.started).Seconds())

	// Serving outcomes and occupancy.
	fmt.Fprintf(buf, "# TYPE hh_requests_total counter\n")
	fmt.Fprintf(buf, "hh_requests_total{outcome=\"completed\"} %d\n", st.Completed)
	fmt.Fprintf(buf, "hh_requests_total{outcome=\"failed\"} %d\n", st.Failed)
	fmt.Fprintf(buf, "hh_requests_total{outcome=\"rejected\"} %d\n", st.Rejected)
	fmt.Fprintf(buf, "# TYPE hh_inflight_sessions gauge\nhh_inflight_sessions %d\n", inFlight)
	fmt.Fprintf(buf, "# TYPE hh_inflight_cap gauge\nhh_inflight_cap %d\n", maxInFlight)
	fmt.Fprintf(buf, "# TYPE hh_queue_depth gauge\nhh_queue_depth %d\n", queued)
	fmt.Fprintf(buf, "# TYPE hh_queue_cap gauge\nhh_queue_cap %d\n", queueDepth)

	// Latency quantiles (server-observed, submit-to-completion). A summary
	// needs the _sum/_count pair or rate()-based average queries silently
	// return nothing.
	fmt.Fprintf(buf, "# TYPE hh_latency_seconds summary\n")
	for _, q := range []struct {
		q string
		v time.Duration
	}{{"0.5", st.LatencyP50}, {"0.9", st.LatencyP90}, {"0.99", st.LatencyP99},
		{"0.999", st.LatencyP999}, {"1", st.LatencyMax}} {
		fmt.Fprintf(buf, "hh_latency_seconds{quantile=%q} %.6f\n", q.q, sec(q.v))
	}
	fmt.Fprintf(buf, "hh_latency_seconds_sum %.6f\n", sec(st.LatencySum))
	fmt.Fprintf(buf, "hh_latency_seconds_count %d\n", st.LatencyCount)

	// Latency attribution by phase. An attribution of work, not a disjoint
	// partition: a parallel session's GC and climb time can overlap the
	// same wall clock (see serve.ServeStats).
	fmt.Fprintf(buf, "# TYPE hh_latency_breakdown_seconds_total counter\n")
	for _, p := range []struct {
		phase string
		v     time.Duration
	}{{"queue", st.QueueWaitTotal}, {"gc", st.GCTotal},
		{"barrier", st.BarrierTotal}, {"mutator", st.MutatorTotal}} {
		fmt.Fprintf(buf, "hh_latency_breakdown_seconds_total{phase=%q} %.6f\n", p.phase, sec(p.v))
	}

	// Front-end traffic.
	fmt.Fprintf(buf, "# TYPE hh_connections_total counter\nhh_connections_total %d\n", c.ConnsAccepted)
	fmt.Fprintf(buf, "# TYPE hh_connections_active gauge\nhh_connections_active %d\n", c.ConnsActive)
	fmt.Fprintf(buf, "# TYPE hh_frames_total counter\nhh_frames_total %d\n", c.Frames)
	fmt.Fprintf(buf, "# TYPE hh_proto_errors_total counter\nhh_proto_errors_total %d\n", c.ProtoErrors)
	fmt.Fprintf(buf, "# TYPE hh_sheds_total counter\n")
	for i := range shedReasonNames {
		fmt.Fprintf(buf, "hh_sheds_total{reason=%q} %d\n", shedReasonNames[i], f.shedTotals[i].Load())
	}

	// Per-tenant accounting.
	fmt.Fprintf(buf, "# TYPE hh_tenant_inflight gauge\n")
	for _, t := range f.cfg.Tenants.All() {
		fmt.Fprintf(buf, "hh_tenant_inflight{tenant=%q} %d\n", t.Name, t.InFlight())
	}
	fmt.Fprintf(buf, "# TYPE hh_tenant_accepted_total counter\n")
	for _, t := range f.cfg.Tenants.All() {
		fmt.Fprintf(buf, "hh_tenant_accepted_total{tenant=%q} %d\n", t.Name, t.Accepted())
	}
	fmt.Fprintf(buf, "# TYPE hh_tenant_sheds_total counter\n")
	for _, t := range f.cfg.Tenants.All() {
		for i := range shedReasonNames {
			if n := t.shed[i].Load(); n > 0 {
				fmt.Fprintf(buf, "hh_tenant_sheds_total{tenant=%q,reason=%q} %d\n",
					t.Name, shedReasonNames[i], n)
			}
		}
	}

	// Runtime memory and reclamation (the paper-side counters).
	fmt.Fprintf(buf, "# TYPE hh_wholesale_bytes_total counter\nhh_wholesale_bytes_total %d\n",
		st.WholesaleBytes)
	fmt.Fprintf(buf, "# TYPE hh_merged_bytes_total counter\nhh_merged_bytes_total %d\n", st.MergedBytes)
	fmt.Fprintf(buf, "# TYPE hh_chunks_in_use gauge\nhh_chunks_in_use %d\n", hh.ChunksInUse())
	fmt.Fprintf(buf, "# TYPE hh_promotions_total counter\nhh_promotions_total %d\n", rt.Ops.Promotions)
	fmt.Fprintf(buf, "# TYPE hh_promoted_bytes_total counter\nhh_promoted_bytes_total %d\n",
		rt.Ops.PromotedBytes())
	fmt.Fprintf(buf, "# TYPE hh_zone_collections_total counter\nhh_zone_collections_total %d\n",
		rt.Zones.Zones)
	fmt.Fprintf(buf, "# TYPE hh_zone_overlap_seconds_total counter\nhh_zone_overlap_seconds_total %.6f\n",
		float64(rt.Zones.OverlapNanos)/1e9)
	fmt.Fprintf(buf, "# TYPE hh_zone_concurrent_peak gauge\nhh_zone_concurrent_peak %d\n",
		rt.Zones.MaxConcurrent)
	fmt.Fprintf(buf, "# TYPE hh_zone_sessions_peak gauge\nhh_zone_sessions_peak %d\n",
		rt.Zones.MaxConcurrentSessions)
	fmt.Fprintf(buf, "# TYPE hh_gc_seconds_total counter\nhh_gc_seconds_total %.6f\n",
		float64(rt.GCNanos)/1e9)
	fmt.Fprintf(buf, "# TYPE hh_sessions_total counter\n")
	fmt.Fprintf(buf, "hh_sessions_total{outcome=\"completed\"} %d\n", rt.Sessions.Completed)
	fmt.Fprintf(buf, "hh_sessions_total{outcome=\"failed\"} %d\n", rt.Sessions.Failed)
	fmt.Fprintf(buf, "# TYPE hh_sessions_peak gauge\nhh_sessions_peak %d\n", rt.Sessions.PeakLive)
	fmt.Fprintf(buf, "# TYPE hh_steals_total counter\nhh_steals_total %d\n", rt.Steals)

	// Barrier traffic by cost class (the Figure 8 split): the fast paths
	// never touch a heap lock, the promoting class pays a lock climb.
	fmt.Fprintf(buf, "# TYPE hh_ptr_writes_total counter\n")
	fmt.Fprintf(buf, "hh_ptr_writes_total{path=\"fast\"} %d\n", rt.Ops.WritePtrFast)
	fmt.Fprintf(buf, "hh_ptr_writes_total{path=\"ancestor\"} %d\n", rt.Ops.WritePtrAncestor)
	fmt.Fprintf(buf, "hh_ptr_writes_total{path=\"nonprom\"} %d\n", rt.Ops.WritePtrNonProm)
	fmt.Fprintf(buf, "hh_ptr_writes_total{path=\"prom\"} %d\n", rt.Ops.WritePtrProm)

	// Dead-task totals: counters merged from completed tasks into the
	// sharded runtime totals (allocation volume by the mutators).
	fmt.Fprintf(buf, "# TYPE hh_task_allocs_total counter\nhh_task_allocs_total %d\n", rt.Ops.Allocs)
	fmt.Fprintf(buf, "# TYPE hh_task_alloc_words_total counter\nhh_task_alloc_words_total %d\n",
		rt.Ops.AllocWords)

	fmt.Fprintf(buf, "# TYPE hh_chunk_acquires_total counter\n")
	fmt.Fprintf(buf, "hh_chunk_acquires_total{tier=\"cache\"} %d\n", rt.Alloc.CacheHits)
	fmt.Fprintf(buf, "hh_chunk_acquires_total{tier=\"pool\"} %d\n", rt.Alloc.PoolHits)
	fmt.Fprintf(buf, "hh_chunk_acquires_total{tier=\"fresh\"} %d\n", rt.Alloc.FreshChunks)
	fmt.Fprintf(buf, "# TYPE hh_pool_shard_steals_total counter\nhh_pool_shard_steals_total %d\n",
		rt.Alloc.ShardSteals)
	fmt.Fprintf(buf, "# TYPE hh_pooled_bytes gauge\nhh_pooled_bytes %d\n", rt.Alloc.PooledBytes)
}

// metricsText renders the exposition for the STATS command.
func (f *Frontend) metricsText() []byte {
	var buf bytes.Buffer
	f.WriteMetrics(&buf)
	return buf.Bytes()
}

// MetricsHandler returns an http.Handler serving the exposition — mount
// it at /metrics.
func (f *Frontend) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		f.WriteMetrics(&buf)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(buf.Bytes())
	})
}

// ServeMetrics starts an HTTP server on lis with /metrics (the
// exposition) and /healthz (200 "ok", 503 "draining" during drain).
// Returns the server; the caller shuts it down after Drain.
func (f *Frontend) ServeMetrics(lis net.Listener) *http.Server {
	mux := http.NewServeMux()
	mux.Handle("/metrics", f.MetricsHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if f.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(lis)
	return srv
}
