package netserve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Tenants carve the server's capacity into named shares so one client
// population cannot starve another: each tenant holds a fraction of the
// admission cap, a shedding priority, and a per-request session budget.
// A connection names its tenant with HELLO; connections that never do run
// as the default tenant.
//
// Fairness is enforced at admission: a RUN whose tenant is already at its
// in-flight share is shed immediately (reason=tenant) regardless of how
// idle the rest of the server is — the share is a guarantee for everyone
// else, not a hint. Priority is enforced under pressure: once the
// backpressure queue passes the shed threshold, best-effort tenants
// (Priority > 0) are shed proactively (reason=pressure) so the remaining
// queue capacity is kept for Priority-0 tenants.

// TenantConfig declares one tenant.
type TenantConfig struct {
	Name string
	// Priority orders shedding under queue pressure: 0 is served until the
	// queue is hard-full; higher values are shed once the queue passes the
	// front end's shed threshold.
	Priority int
	// Share is the fraction of the server's total admission capacity
	// (in-flight cap + queue depth) this tenant may hold outstanding at
	// once, (0,1]; at least one slot is always granted. A tenant's
	// outstanding count spans submit to completion, so it covers both its
	// running sessions and its queue occupancy.
	Share float64
	// BudgetWords caps each of the tenant's sessions (0 = the server
	// default).
	BudgetWords int64
}

// Tenant is one live tenant: its configuration plus in-flight and
// shedding accounting.
type Tenant struct {
	TenantConfig
	maxInFlight int64 // resolved slot count

	inFlight atomic.Int64
	accepted atomic.Int64
	shed     [shedReasons]atomic.Int64
}

// shed reasons, indexing Tenant.shed.
const (
	shedSaturated = iota // serve.Server queue hard-full
	shedTenant           // tenant over its in-flight share
	shedPressure         // queue past threshold, tenant is best-effort
	shedDraining         // front end draining (SIGTERM)
	shedReasons
)

var shedReasonNames = [shedReasons]string{"saturated", "tenant", "pressure", "draining"}

// InFlight reports the tenant's current in-flight sessions.
func (t *Tenant) InFlight() int64 { return t.inFlight.Load() }

// Accepted reports the tenant's lifetime accepted RUNs.
func (t *Tenant) Accepted() int64 { return t.accepted.Load() }

// ShedTotal reports the tenant's lifetime shed RUNs across all reasons.
func (t *Tenant) ShedTotal() int64 {
	var n int64
	for i := range t.shed {
		n += t.shed[i].Load()
	}
	return n
}

// TenantTable resolves tenant names to live tenants.
type TenantTable struct {
	mu  sync.RWMutex
	m   map[string]*Tenant
	def *Tenant
}

// DefaultTenantName is the tenant of connections that never said HELLO.
const DefaultTenantName = "default"

// NewTenantTable builds a table over the given tenants, sized against the
// server's total admission capacity (in-flight cap + queue depth). A
// "default" tenant is added if absent (Priority 1, Share 1.0 —
// best-effort, uncapped short of the server itself).
func NewTenantTable(capacity int, cfgs []TenantConfig) *TenantTable {
	tt := &TenantTable{m: map[string]*Tenant{}}
	for _, c := range cfgs {
		tt.m[c.Name] = newTenant(c, capacity)
	}
	if _, ok := tt.m[DefaultTenantName]; !ok {
		tt.m[DefaultTenantName] = newTenant(
			TenantConfig{Name: DefaultTenantName, Priority: 1, Share: 1.0}, capacity)
	}
	tt.def = tt.m[DefaultTenantName]
	return tt
}

func newTenant(c TenantConfig, capacity int) *Tenant {
	if c.Share <= 0 || c.Share > 1 {
		c.Share = 1.0
	}
	slots := int64(c.Share * float64(capacity))
	if slots < 1 {
		slots = 1
	}
	return &Tenant{TenantConfig: c, maxInFlight: slots}
}

// Lookup resolves a tenant by name; unknown names map to the default
// tenant (a connection cannot invent capacity by guessing names).
func (tt *TenantTable) Lookup(name string) *Tenant {
	tt.mu.RLock()
	defer tt.mu.RUnlock()
	if t, ok := tt.m[name]; ok {
		return t
	}
	return tt.def
}

// Default returns the default tenant.
func (tt *TenantTable) Default() *Tenant { return tt.def }

// All returns every tenant, name-sorted (stable metrics output).
func (tt *TenantTable) All() []*Tenant {
	tt.mu.RLock()
	defer tt.mu.RUnlock()
	out := make([]*Tenant, 0, len(tt.m))
	for _, t := range tt.m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ParseTenants parses the hhserved -tenants flag syntax:
//
//	name:prio=P,share=F,budget=W;name2:...
//
// e.g. "gold:prio=0,share=0.8;free:prio=1,share=0.25,budget=1048576".
// Every field is optional (defaults: prio 1, share 1.0, budget 0).
func ParseTenants(spec string) ([]TenantConfig, error) {
	var out []TenantConfig
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, fields, _ := strings.Cut(entry, ":")
		if name == "" {
			return nil, fmt.Errorf("netserve: tenant entry %q has no name", entry)
		}
		c := TenantConfig{Name: name, Priority: 1, Share: 1.0}
		if fields != "" {
			for _, f := range strings.Split(fields, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(f), "=")
				if !ok {
					return nil, fmt.Errorf("netserve: bad tenant field %q in %q", f, entry)
				}
				var err error
				switch k {
				case "prio":
					c.Priority, err = strconv.Atoi(v)
				case "share":
					c.Share, err = strconv.ParseFloat(v, 64)
				case "budget":
					c.BudgetWords, err = strconv.ParseInt(v, 10, 64)
				default:
					err = fmt.Errorf("unknown key")
				}
				if err != nil {
					return nil, fmt.Errorf("netserve: bad tenant field %q in %q", f, entry)
				}
			}
		}
		out = append(out, c)
	}
	return out, nil
}
