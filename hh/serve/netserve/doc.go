// Package netserve puts a TCP front end on the hh/serve serving layer:
// a RESP-style framed protocol in which every RUN command becomes one
// hh/serve session — its own subtree of the heap hierarchy, reclaimed
// wholesale the moment its reply is computed — so the paper's
// "memory-managed request" story crosses a real socket boundary.
//
// # Protocol
//
// Requests are RESP arrays of bulk strings (or inline lines, for telnet
// debugging); replies are simple strings, errors, integers, and bulk
// strings. Commands:
//
//	PING                      liveness           -> +PONG
//	HELLO <tenant>            bind conn tenant   -> +OK tenant=<name>
//	RUN <scenario> <seed> <size>   one request   -> $16 <hex checksum>
//	STATS                     metrics text       -> $N <exposition>
//	QUIT                      close              -> +OK
//
// Frames are self-delimiting, so clients pipeline freely; replies come
// back in request order per connection. Oversized or malformed frames are
// answered with -ERR proto and the connection is closed before any
// allocation proportional to the declared size happens.
//
// # Admission, shedding, fairness
//
// A RUN passes three gates before reaching the serve.Server: the drain
// flag (draining servers shed everything), the connection tenant's
// in-flight share, and — for best-effort tenants — the backpressure
// queue's shed threshold. Anything the serve.Server itself then rejects
// (ErrSaturated: in-flight cap and queue both full) is also shed. Every
// shed is an explicit reply:
//
//	-SHED reason=<saturated|tenant|pressure|draining> backoff_ms=<hint> ...
//
// rather than a dropped or endlessly-queued request, so an open-loop
// client can account for it honestly (cmd/hhshoot does).
//
// # Drain
//
// Drain implements the SIGTERM contract in strict order: mark draining
// (new RUNs shed), close the listener, wait for the serve.Server to
// quiesce — every accepted session completes and its subtree is reclaimed
// wholesale — then let each connection's write loop flush its last
// replies before the sockets close. After Drain, chunk occupancy is back
// at its pre-traffic baseline (the leak check cmd/hhserved performs
// before exiting).
//
// # Metrics
//
// WriteMetrics renders a Prometheus-style text exposition fed entirely by
// counters the runtime already keeps (ServeStats, rts.Totals,
// mem.AllocStats, the chunk gauge); ServeMetrics mounts it at /metrics
// next to a /healthz that flips to 503 while draining.
package netserve
