package netserve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/hh"
	"repro/hh/serve"
	"repro/internal/load"
)

// startFrontend builds runtime + server + front end on a loopback port.
func startFrontend(t *testing.T, mode hh.Mode, cfg Config, srvOpts ...serve.Option) (*hh.Runtime, *serve.Server, *Frontend) {
	t.Helper()
	r := hh.New(hh.WithMode(mode), hh.WithProcs(4), hh.WithGCPolicy(2048, 1.25))
	srv := serve.New(r, srvOpts...)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		r.Close()
		t.Fatal(err)
	}
	if cfg.Resolve == nil {
		cfg.Resolve = LoadResolver()
	}
	return r, srv, Serve(lis, srv, cfg)
}

// TestRoundTripAllModes serves the kv-churn scenario over TCP in every
// runtime mode and requires checksum parity: the value computed across
// the socket equals the in-process value, and all four modes agree.
func TestRoundTripAllModes(t *testing.T) {
	const seed, size = 7, 600
	var want uint64
	for i, mode := range hh.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			r, srv, f := startFrontend(t, mode, Config{},
				serve.WithMaxInFlight(8), serve.WithQueueDepth(16))
			defer r.Close()
			defer f.Close()

			c, err := Dial(f.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			if rep, err := c.Do("PING"); err != nil || rep.Str != "PONG" {
				t.Fatalf("PING: %+v, %v", rep, err)
			}
			sum, shed, _, err := c.Run("kv", seed, size)
			if err != nil || shed {
				t.Fatalf("RUN: shed=%v err=%v", shed, err)
			}
			inproc := hh.Run(r, func(task *hh.Task) uint64 {
				sc, _ := load.ByName("kv")
				return sc.Run(task, seed, size)
			})
			if sum != inproc {
				t.Fatalf("socket checksum %x != in-process %x", sum, inproc)
			}
			if i == 0 {
				want = sum
			} else if sum != want {
				t.Fatalf("cross-mode divergence: %x, want %x", sum, want)
			}

			// Pipelined: 8 frames written back to back, 8 replies in order.
			for j := 0; j < 8; j++ {
				c.Send("RUN", "kv", fmt.Sprint(seed), fmt.Sprint(size))
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 8; j++ {
				rep, err := c.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if v, err := rep.Checksum(); err != nil || v != want {
					t.Fatalf("pipelined reply %d: %x, %v", j, v, err)
				}
			}
			if rep, err := c.Do("STATS"); err != nil || !strings.Contains(rep.Str, "hh_requests_total") {
				t.Fatalf("STATS: %v, %.60q", err, rep.Str)
			}
			if rep, err := c.Do("QUIT"); err != nil || rep.Str != "OK" {
				t.Fatalf("QUIT: %+v, %v", rep, err)
			}
			srv.Drain()
		})
	}
}

// TestConnDropMidRequestReclaims drops the client mid-request: the
// session must still run to completion server-side and be reclaimed
// wholesale — chunk occupancy returns to the pre-traffic baseline.
func TestConnDropMidRequestReclaims(t *testing.T) {
	release := make(chan struct{})
	var started atomic.Int64
	cfg := Config{Resolve: func(name string) (Runner, bool) {
		return func(task *hh.Task, seed uint64, size int) uint64 {
			started.Add(1)
			<-release
			sc, _ := load.ByName("kv")
			return sc.Run(task, seed, size)
		}, true
	}}
	r, srv, f := startFrontend(t, hh.ParMem, cfg)
	defer r.Close()
	base := hh.ChunksInUse()

	c, err := Dial(f.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Send("RUN", "slow", "3", "400")
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	c.Close() // peer vanishes mid-request
	close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	srv.Drain()
	if st := srv.Stats(); st.Completed != 1 {
		t.Fatalf("completed %d, want 1 (dropped conn must not abort the session)", st.Completed)
	}
	if got := hh.ChunksInUse(); got != base {
		t.Fatalf("ChunksInUse = %d after drain, want baseline %d (leaked session)", got, base)
	}
}

// TestDrainUnderLoadZeroDropped drains while open-loop clients are still
// firing: every request the server accepted must deliver its reply before
// the connection closes (client-received OK count == server Completed),
// and occupancy returns to baseline.
func TestDrainUnderLoadZeroDropped(t *testing.T) {
	r, srv, f := startFrontend(t, hh.ParMem, Config{},
		serve.WithMaxInFlight(4), serve.WithQueueDepth(8))
	defer r.Close()
	base := hh.ChunksInUse()

	const clients = 6
	var oks, sheds atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(f.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for seq := uint64(1); ; seq++ {
				sum, shed, _, err := c.Run("kv", seq, 300)
				if err != nil {
					return // conn closed by drain: every accepted reply was received
				}
				if shed {
					sheds.Add(1)
					select {
					case <-stop:
						return
					case <-time.After(time.Millisecond):
					}
					continue
				}
				if sum == 0 {
					t.Error("zero checksum")
				}
				oks.Add(1)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond) // let load build
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	wg.Wait()

	st := srv.Stats()
	if oks.Load() != st.Completed {
		t.Fatalf("clients saw %d OK replies, server completed %d — replies dropped in drain",
			oks.Load(), st.Completed)
	}
	if st.Failed != 0 {
		t.Fatalf("%d requests failed", st.Failed)
	}
	if oks.Load() == 0 {
		t.Fatal("no traffic made it through before drain")
	}
	if got := hh.ChunksInUse(); got != base {
		t.Fatalf("ChunksInUse = %d after drain, want baseline %d", got, base)
	}
	c := f.Counters()
	if c.Sheds["draining"] == 0 {
		t.Log("note: no request raced the drain window (timing-dependent, not an error)")
	}
}

// TestTenantShareAndPressureShedding pins the fairness contract: a tenant
// at its in-flight share is shed with reason=tenant while the rest of the
// server is idle, and a best-effort tenant is shed with reason=pressure
// once the queue passes the threshold.
func TestTenantShareAndPressureShedding(t *testing.T) {
	release := make(chan struct{})
	cfg := Config{
		Resolve: func(name string) (Runner, bool) {
			return func(task *hh.Task, seed uint64, size int) uint64 { <-release; return seed }, true
		},
		Tenants: NewTenantTable(16, []TenantConfig{ // capacity = 8 in flight + 8 queued
			{Name: "gold", Priority: 0, Share: 1.0},
			{Name: "free", Priority: 1, Share: 0.0625}, // 1 slot of 16
		}),
		ShedQueueFrac: 0.5,
	}
	r, srv, f := startFrontend(t, hh.ParMem, cfg,
		serve.WithMaxInFlight(8), serve.WithQueueDepth(8))
	defer r.Close()
	defer srv.Drain()
	defer close(release)

	free, err := Dial(f.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer free.Close()
	if rep, err := free.Do("HELLO", "free"); err != nil || rep.IsError() {
		t.Fatalf("HELLO: %+v %v", rep, err)
	}
	// First RUN occupies free's single slot; the pipelined second must be
	// shed with reason=tenant (server itself is nearly idle).
	free.Send("RUN", "x", "1", "1")
	free.Send("RUN", "x", "2", "1")
	if err := free.Flush(); err != nil {
		t.Fatal(err)
	}
	// Replies come back in request order, so the shed reply for the second
	// RUN is not readable until the first unblocks — observe the shed via
	// the tenant's counter instead.
	deadline := time.Now().Add(5 * time.Second)
	tn := f.Tenants().Lookup("free")
	for tn.shed[shedTenant].Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("tenant-share shed never recorded")
		}
		time.Sleep(time.Millisecond)
	}

	// Pressure shedding: fill the queue past 50% with gold traffic, then a
	// fresh best-effort default-tenant connection must shed reason=pressure.
	gold, err := Dial(f.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer gold.Close()
	if _, err := gold.Do("HELLO", "gold"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ { // 7 remaining slots + >4 queued
		gold.Send("RUN", "x", fmt.Sprint(10+i), "1")
	}
	if err := gold.Flush(); err != nil {
		t.Fatal(err)
	}
	for {
		_, queued := srv.Load()
		if queued >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	be, err := Dial(f.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	_, shed, backoff, err := be.Run("x", 99, 1)
	if err != nil || !shed {
		t.Fatalf("best-effort under pressure: shed=%v err=%v, want shed", shed, err)
	}
	if backoff <= 0 {
		t.Fatalf("shed reply carried no backoff hint")
	}
	if f.Counters().Sheds["pressure"] == 0 {
		t.Fatal("pressure shed not recorded")
	}
}

// TestOversizedPayloadCleanError sends a bulk length beyond the limit:
// the server must answer -ERR proto and close, without reading the body.
func TestOversizedPayloadCleanError(t *testing.T) {
	r, _, f := startFrontend(t, hh.ParMem, Config{MaxArgBytes: 1024})
	defer r.Close()
	defer f.Close()

	nc, err := net.Dial("tcp", f.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	fmt.Fprintf(nc, "*2\r\n$4\r\nPING\r\n$1048576\r\n")
	br := bufio.NewReader(nc)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "-ERR proto:") {
		t.Fatalf("reply %q, want -ERR proto:", line)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection not closed after protocol error: %v", err)
	}
	if f.Counters().ProtoErrors != 1 {
		t.Fatalf("proto errors = %d, want 1", f.Counters().ProtoErrors)
	}
}

// TestMetricsEndpoint scrapes /metrics and /healthz over HTTP.
func TestMetricsEndpoint(t *testing.T) {
	r, srv, f := startFrontend(t, hh.ParMem, Config{})
	defer r.Close()

	mlis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	msrv := f.ServeMetrics(mlis)
	defer msrv.Close()

	c, err := Dial(f.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Run("kv", 1, 200); err != nil {
		t.Fatal(err)
	}
	c.Close()
	srv.Drain()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + mlis.Addr().String() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		`hh_up{mode="mlton-parmem"} 1`,
		`hh_requests_total{outcome="completed"} 1`,
		"hh_latency_seconds{quantile=\"0.999\"}",
		"hh_latency_seconds_sum",
		"hh_latency_seconds_count 1",
		`hh_latency_breakdown_seconds_total{phase="mutator"}`,
		`hh_ptr_writes_total{path="fast"}`,
		`hh_sessions_total{outcome="completed"} 1`,
		"hh_zone_overlap_seconds_total",
		"hh_zone_concurrent_peak",
		"hh_gc_seconds_total",
		"hh_task_allocs_total",
		"hh_pool_shard_steals_total",
		"hh_wholesale_bytes_total",
		"hh_chunks_in_use",
		"hh_connections_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if code, body := get("/healthz"); code != 200 || !strings.HasPrefix(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz during drain: %d, want 503", code)
	}
}
