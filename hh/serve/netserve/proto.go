package netserve

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// The wire format is a RESP-style frame protocol (the Redis serialization
// protocol's core subset), chosen because it pipelines trivially — frames
// are self-delimiting, so a client may write N requests back to back and
// read N replies in order — and because inline commands keep the server
// debuggable with a bare TCP client.
//
// Requests are arrays of bulk strings:
//
//	*3\r\n$3\r\nRUN\r\n$2\r\nkv\r\n$4\r\n1200\r\n
//
// or, for interactive use, a single inline line:
//
//	PING\r\n
//
// Replies are simple strings (+PONG), errors (-ERR ..., -SHED ...),
// integers (:42), or bulk strings ($16\r\n<hex checksum>\r\n).
//
// Framing limits are enforced before any allocation proportional to the
// declared size: a bulk length or element count beyond the configured
// limit is answered with a clean -ERR proto error and the connection is
// closed, so an adversarial or corrupted frame cannot balloon server
// memory.

// protoError is a client-visible framing violation: the server reports it
// on the wire (-ERR proto: ...) and closes the connection, as opposed to
// an I/O error, which is not reportable (the transport is gone).
type protoError struct{ msg string }

func (e *protoError) Error() string { return "proto: " + e.msg }

func protoErrf(format string, args ...any) error {
	return &protoError{msg: fmt.Sprintf(format, args...)}
}

// readCommand reads one request frame: a RESP array of bulk strings, or an
// inline space-separated line. It returns the argument vector (never
// empty) or an error — a *protoError for malformed/oversized frames, or
// the underlying I/O error.
func readCommand(br *bufio.Reader, maxArgs, maxArgBytes int) ([][]byte, error) {
	for {
		first, err := br.Peek(1)
		if err != nil {
			return nil, err
		}
		if first[0] != '*' {
			args, err := readInline(br, maxArgBytes)
			if err != nil {
				return nil, err
			}
			if len(args) == 0 {
				continue // blank line: tolerate and keep reading
			}
			return args, nil
		}
		return readArray(br, maxArgs, maxArgBytes)
	}
}

// readLine reads up to CRLF (or bare LF), rejecting lines beyond max bytes.
func readLine(br *bufio.Reader, max int) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return nil, protoErrf("line exceeds %d bytes", max)
	}
	if err != nil {
		return nil, err
	}
	if len(line) > max {
		return nil, protoErrf("line exceeds %d bytes", max)
	}
	n := len(line) - 1
	if n > 0 && line[n-1] == '\r' {
		n--
	}
	return line[:n], nil
}

func readInline(br *bufio.Reader, maxArgBytes int) ([][]byte, error) {
	line, err := readLine(br, maxArgBytes)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(string(line))
	args := make([][]byte, len(fields))
	for i, f := range fields {
		args[i] = []byte(f)
	}
	return args, nil
}

func readArray(br *bufio.Reader, maxArgs, maxArgBytes int) ([][]byte, error) {
	line, err := readLine(br, 32)
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(string(line[1:]))
	if err != nil || n < 1 {
		return nil, protoErrf("bad array header %q", line)
	}
	if n > maxArgs {
		return nil, protoErrf("array of %d elements exceeds limit %d", n, maxArgs)
	}
	args := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		hdr, err := readLine(br, 32)
		if err != nil {
			return nil, err
		}
		if len(hdr) < 2 || hdr[0] != '$' {
			return nil, protoErrf("bad bulk header %q", hdr)
		}
		ln, err := strconv.Atoi(string(hdr[1:]))
		if err != nil || ln < 0 {
			return nil, protoErrf("bad bulk length %q", hdr)
		}
		if ln > maxArgBytes {
			return nil, protoErrf("bulk of %d bytes exceeds limit %d", ln, maxArgBytes)
		}
		buf := make([]byte, ln+2)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		if buf[ln] != '\r' || buf[ln+1] != '\n' {
			return nil, protoErrf("bulk not CRLF-terminated")
		}
		args = append(args, buf[:ln])
	}
	return args, nil
}

// Reply writers. All take the connection's buffered writer; flushing is
// the write loop's batching decision, not the formatter's.

func writeSimple(bw *bufio.Writer, s string) {
	bw.WriteByte('+')
	bw.WriteString(s)
	bw.WriteString("\r\n")
}

func writeError(bw *bufio.Writer, code, msg string) {
	bw.WriteByte('-')
	bw.WriteString(code)
	bw.WriteByte(' ')
	bw.WriteString(msg)
	bw.WriteString("\r\n")
}

func writeInt(bw *bufio.Writer, n int64) {
	bw.WriteByte(':')
	bw.WriteString(strconv.FormatInt(n, 10))
	bw.WriteString("\r\n")
}

func writeBulk(bw *bufio.Writer, b []byte) {
	bw.WriteByte('$')
	bw.WriteString(strconv.Itoa(len(b)))
	bw.WriteString("\r\n")
	bw.Write(b)
	bw.WriteString("\r\n")
}

// Reply is one decoded server reply, as seen by the client side.
type Reply struct {
	// Kind is the RESP type byte: '+' simple, '-' error, ':' integer,
	// '$' bulk.
	Kind byte
	// Str holds the simple string, error text (code included), or bulk
	// payload.
	Str string
	// Int holds the integer reply value.
	Int int64
}

// IsShed reports whether the reply is a -SHED rejection.
func (r Reply) IsShed() bool { return r.Kind == '-' && strings.HasPrefix(r.Str, "SHED ") }

// IsError reports whether the reply is any error reply.
func (r Reply) IsError() bool { return r.Kind == '-' }

// ShedBackoff parses the backoff_ms hint out of a -SHED reply (0 if
// absent or unparsable).
func (r Reply) ShedBackoff() time.Duration {
	const key = "backoff_ms="
	i := strings.Index(r.Str, key)
	if i < 0 {
		return 0
	}
	rest := r.Str[i+len(key):]
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	ms, err := strconv.Atoi(rest)
	if err != nil {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// Checksum decodes a RUN reply's 16-hex-digit bulk payload.
func (r Reply) Checksum() (uint64, error) {
	if r.Kind != '$' {
		return 0, fmt.Errorf("netserve: reply %q is not a checksum bulk", r.Str)
	}
	return strconv.ParseUint(r.Str, 16, 64)
}

// Client is the protocol's client side: a single connection with
// pipelining support. It is not safe for concurrent use; open one Client
// per in-flight stream (hhshoot opens one per simulated connection).
type Client struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// Dial connects a Client to a netserve front end.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection.
func NewClient(nc net.Conn) *Client {
	return &Client{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.nc.Close() }

// Conn exposes the underlying connection (deadline control in tests).
func (c *Client) Conn() net.Conn { return c.nc }

// Send writes one command frame without flushing — the pipelining half.
func (c *Client) Send(args ...string) {
	c.bw.WriteByte('*')
	c.bw.WriteString(strconv.Itoa(len(args)))
	c.bw.WriteString("\r\n")
	for _, a := range args {
		writeBulk(c.bw, []byte(a))
	}
}

// Flush pushes buffered command frames to the server.
func (c *Client) Flush() error { return c.bw.Flush() }

// Recv reads one reply frame.
func (c *Client) Recv() (Reply, error) {
	line, err := readLine(c.br, 1<<20)
	if err != nil {
		return Reply{}, err
	}
	if len(line) == 0 {
		return Reply{}, protoErrf("empty reply line")
	}
	switch line[0] {
	case '+', '-':
		return Reply{Kind: line[0], Str: string(line[1:])}, nil
	case ':':
		n, err := strconv.ParseInt(string(line[1:]), 10, 64)
		if err != nil {
			return Reply{}, protoErrf("bad integer reply %q", line)
		}
		return Reply{Kind: ':', Int: n}, nil
	case '$':
		ln, err := strconv.Atoi(string(line[1:]))
		if err != nil || ln < 0 {
			return Reply{}, protoErrf("bad bulk reply header %q", line)
		}
		buf := make([]byte, ln+2)
		if _, err := io.ReadFull(c.br, buf); err != nil {
			return Reply{}, err
		}
		return Reply{Kind: '$', Str: string(buf[:ln])}, nil
	}
	return Reply{}, protoErrf("unknown reply type %q", line[0])
}

// Do writes one command, flushes, and reads its reply — the unpipelined
// convenience path.
func (c *Client) Do(args ...string) (Reply, error) {
	c.Send(args...)
	if err := c.Flush(); err != nil {
		return Reply{}, err
	}
	return c.Recv()
}

// Run submits one RUN command and decodes the outcome: the request's
// checksum, a shed rejection (shed=true, with the server's backoff hint),
// or an error. Transport failures and -ERR replies both surface as err.
func (c *Client) Run(scenario string, seed uint64, size int) (sum uint64, shed bool, backoff time.Duration, err error) {
	rep, err := c.Do("RUN", scenario, strconv.FormatUint(seed, 10), strconv.Itoa(size))
	if err != nil {
		return 0, false, 0, err
	}
	if rep.IsShed() {
		return 0, true, rep.ShedBackoff(), nil
	}
	if rep.IsError() {
		return 0, false, 0, fmt.Errorf("netserve: server error: %s", rep.Str)
	}
	sum, err = rep.Checksum()
	return sum, false, 0, err
}
