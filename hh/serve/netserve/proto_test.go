package netserve

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/iotest"
)

func cmdReader(s string) *bufio.Reader { return bufio.NewReader(strings.NewReader(s)) }

func TestReadCommandArray(t *testing.T) {
	br := cmdReader("*3\r\n$3\r\nRUN\r\n$2\r\nkv\r\n$4\r\n1200\r\n")
	args, err := readCommand(br, 16, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 3 || string(args[0]) != "RUN" || string(args[1]) != "kv" || string(args[2]) != "1200" {
		t.Fatalf("args = %q", args)
	}
}

func TestReadCommandInline(t *testing.T) {
	br := cmdReader("\r\n  \r\nPING hello\r\n") // blank lines tolerated
	args, err := readCommand(br, 16, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 2 || string(args[0]) != "PING" || string(args[1]) != "hello" {
		t.Fatalf("args = %q", args)
	}
}

// TestReadCommandPipelined parses several back-to-back frames off one
// stream — the framing property pipelining rests on.
func TestReadCommandPipelined(t *testing.T) {
	var b bytes.Buffer
	b.WriteString("*1\r\n$4\r\nPING\r\n")
	b.WriteString("*2\r\n$5\r\nHELLO\r\n$4\r\ngold\r\n")
	b.WriteString("QUIT\r\n")
	br := bufio.NewReader(&b)
	want := [][]string{{"PING"}, {"HELLO", "gold"}, {"QUIT"}}
	for _, w := range want {
		args, err := readCommand(br, 16, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if len(args) != len(w) {
			t.Fatalf("args %q, want %q", args, w)
		}
		for i := range w {
			if string(args[i]) != w[i] {
				t.Fatalf("args %q, want %q", args, w)
			}
		}
	}
}

// TestReadCommandPartialReads drips the stream one byte at a time — the
// parser must reassemble frames split at arbitrary boundaries.
func TestReadCommandPartialReads(t *testing.T) {
	src := iotest.OneByteReader(strings.NewReader(
		"*3\r\n$3\r\nRUN\r\n$3\r\nbfs\r\n$2\r\n64\r\n*1\r\n$4\r\nPING\r\n"))
	br := bufio.NewReader(src)
	args, err := readCommand(br, 16, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 3 || string(args[1]) != "bfs" {
		t.Fatalf("args = %q", args)
	}
	if args, err = readCommand(br, 16, 1<<20); err != nil || string(args[0]) != "PING" {
		t.Fatalf("second frame: %q, %v", args, err)
	}
}

func TestReadCommandOversized(t *testing.T) {
	cases := []string{
		"*2\r\n$4\r\nPING\r\n$9999999\r\nx",     // bulk beyond limit
		"*999\r\n$4\r\nPING\r\n",                // too many elements
		"*2\r\n$abc\r\n",                        // malformed bulk length
		"*x\r\n",                                // malformed array header
		"*1\r\n$4\r\nPINGxx",                    // bulk not CRLF-terminated
		strings.Repeat("y", 5000) + "\r\nPING*", // inline line beyond limit
	}
	for _, c := range cases {
		_, err := readCommand(cmdReader(c), 16, 1024)
		var pe *protoError
		if !errors.As(err, &pe) {
			t.Errorf("input %.20q: err = %v, want protoError", c, err)
		}
	}
}

// TestReadCommandEOFIsNotProtoError distinguishes transport loss (no
// reply possible) from protocol violations (clean -ERR owed).
func TestReadCommandEOFIsNotProtoError(t *testing.T) {
	_, err := readCommand(cmdReader(""), 16, 1024)
	var pe *protoError
	if errors.As(err, &pe) {
		t.Fatalf("EOF classified as protocol error: %v", err)
	}
}

func TestReplyHelpers(t *testing.T) {
	shed := Reply{Kind: '-', Str: "SHED reason=saturated backoff_ms=7 inflight=4/4 queued=16/16 tenant=default"}
	if !shed.IsShed() || !shed.IsError() {
		t.Fatal("SHED reply not recognized")
	}
	if got := shed.ShedBackoff().Milliseconds(); got != 7 {
		t.Fatalf("backoff = %dms, want 7", got)
	}
	sum := Reply{Kind: '$', Str: "00000000deadbeef"}
	v, err := sum.Checksum()
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("checksum = %x, %v", v, err)
	}
	if _, err := (Reply{Kind: '+', Str: "PONG"}).Checksum(); err == nil {
		t.Fatal("checksum of a simple reply must fail")
	}
}
