package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/hh"
)

// High-P serve stress: the all-modes closed-loop stress of serve_test.go,
// swept over P ∈ {2, 8, NumCPU} with GOMAXPROCS matched to P. At P=2 the
// striped structures degrade to near-serial use; at P=8 (oversubscribed on
// small hosts) the Go scheduler preempts aggressively, which is where the
// race detector earns its keep against the striped admission, sharded
// pool, and per-stripe child registry underneath the server.

func servePs() []int {
	ps := []int{2, 8, runtime.NumCPU()}
	seen := map[int]bool{}
	var out []int
	for _, p := range ps {
		if p >= 2 && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func TestServeStressAcrossProcs(t *testing.T) {
	const perClient = 4
	for _, p := range servePs() {
		for _, mode := range hh.Modes {
			t.Run(fmt.Sprintf("P=%d/%s", p, mode), func(t *testing.T) {
				prev := runtime.GOMAXPROCS(p)
				defer runtime.GOMAXPROCS(prev)
				clients := 2 * p
				r := hh.New(hh.WithMode(mode), hh.WithProcs(p), hh.WithGCPolicy(2048, 1.25))
				defer r.Close()
				base := hh.ChunksInUse()

				srv := New(r, WithMaxInFlight(p), WithQueueDepth(2*clients))
				want := hh.Run(r, func(task *hh.Task) uint64 { return request(task, 1, 40) })

				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < perClient; i++ {
							var tk *Ticket
							for {
								var err error
								tk, err = srv.Submit(func(task *hh.Task) uint64 {
									return request(task, 1, 40)
								})
								if err == nil {
									break
								}
								if !errors.Is(err, ErrSaturated) {
									t.Error(err)
									return
								}
								time.Sleep(100 * time.Microsecond)
							}
							got, err := tk.Wait()
							if err != nil || got != want {
								t.Errorf("request: got %x err %v, want %x", got, err, want)
								return
							}
						}
					}()
				}
				wg.Wait()
				srv.Drain()

				st := srv.Stats()
				if st.Completed != int64(clients*perClient) {
					t.Fatalf("completed %d requests, want %d", st.Completed, clients*perClient)
				}
				// Wholesale reclamation: serving must not accrete chunks. Only
				// the pinned reference Run's chunks (held until Close) may sit
				// above the baseline; underflow means double-accounting.
				if got := hh.ChunksInUse(); got < base {
					t.Fatalf("chunk accounting underflow: %d < baseline %d", got, base)
				}
				if err := r.CheckDisentangled(); err != nil {
					t.Fatalf("disentanglement violated at P=%d: %v", p, err)
				}
			})
		}
	}
}
