// Package serve is the session-per-subtree serving layer over the
// hierarchical-heaps runtime: a [Server] accepts independent requests,
// runs each as its own root-level session (an independent subtree of the
// heap hierarchy), and reclaims the request's entire memory wholesale when
// it completes.
//
// The design follows directly from the paper's hierarchy invariant:
// disjoint task subtrees are independent units of allocation AND
// collection. A request that never shares mutable state with another
// request therefore needs no global collection at all — while it runs, its
// zones collect concurrently with every other request's, and when it
// finishes its chunks are released in bulk, region-style, at cost
// proportional to the chunk count rather than the live data. The server
// adds the serving policy the runtime itself does not have:
//
//   - admission control: at most MaxInFlight sessions run at once;
//   - bounded backpressure: excess requests queue up to QueueDepth, and
//     beyond that Submit fails fast with [ErrSaturated] so callers shed
//     load instead of buffering it;
//   - per-session budgets: a request that allocates past its word budget
//     is aborted (ErrBudgetExceeded) and reclaimed, without disturbing its
//     neighbours — as is a request that panics;
//   - accounting: throughput, latency quantiles, peak concurrency, and
//     bytes reclaimed wholesale versus merged ([Server.Stats]).
//
// # Request memory is recycled, not freed
//
// Wholesale reclamation feeds the runtime's chunk lifecycle (alloc → cache
// → pool → OS, see internal/mem): a completed request's chunks land in the
// chunk cache of the worker that finished it and overflow into the global
// size-classed pool, so the NEXT request's heaps are built from the last
// request's memory — under steady load the serving hot path performs no
// chunk-directory ID operations and no fresh allocations at all. hh
// options tune the tiers (hh.WithChunkPoolLimit, hh.WithWorkerCacheChunks,
// hh.WithoutChunkPool); hhbench -table serve reports the recycle rate and
// directory operations per request, and hhbench -table alloc isolates the
// allocator with the pool on versus off. See TUNING.md for how to read
// them.
//
// Typical use (see the runnable Example on Server):
//
//	r := hh.New(hh.WithMode(hh.ParMem), hh.WithProcs(8))
//	defer r.Close()
//	srv := serve.New(r, serve.WithMaxInFlight(8), serve.WithQueueDepth(64))
//	tk, err := srv.Submit(func(t *hh.Task) uint64 { ...request work... })
//	if err != nil { ...shed load... }
//	res, err := tk.Wait()
//	...
//	srv.Drain() // quiesce: every accepted request completed
//
// Results are plain uint64 words (checksums, counts, encoded answers). A
// request whose object graph must outlive it submits with Pin, at the cost
// of growing the never-collected super-root; see the hh package's session
// documentation for the lifetime rules.
package serve
