package serve

import (
	"math/bits"
	"time"
)

// latencyHist is a log-scale latency histogram: one bucket per power of
// two of nanoseconds, with linear interpolation inside a bucket at
// quantile time. Bounded memory regardless of request count.
type latencyHist struct {
	buckets [64]int64
	count   int64
	sum     int64
	max     int64
}

func (h *latencyHist) record(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// quantile returns the approximate q-quantile (0 < q <= 1).
func (h *latencyHist) quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		if seen+n > rank {
			// Interpolate inside [2^(b-1), 2^b).
			lo := int64(0)
			if b > 0 {
				lo = int64(1) << (b - 1)
			}
			hi := int64(1) << b
			if hi > h.max {
				hi = h.max
			}
			if hi < lo {
				hi = lo
			}
			frac := float64(rank-seen) / float64(n)
			return time.Duration(lo + int64(frac*float64(hi-lo)))
		}
		seen += n
	}
	return time.Duration(h.max)
}

func (h *latencyHist) mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// ServeStats is a snapshot of a Server's lifetime serving statistics.
type ServeStats struct {
	Submitted int64 // requests accepted (running or queued)
	Rejected  int64 // requests refused with ErrSaturated
	Completed int64 // sessions finished without failure
	Failed    int64 // sessions aborted (budget, panic)

	PeakInFlight int // peak simultaneously running sessions
	PeakQueued   int // peak backpressure-queue occupancy

	// Elapsed spans the first accepted Submit to the latest completion;
	// Throughput is completions (successful or failed) per second of it.
	Elapsed    time.Duration
	Throughput float64

	// Latency is measured Submit-to-completion (queue wait included).
	LatencyMean time.Duration
	LatencyP50  time.Duration
	LatencyP90  time.Duration
	LatencyP99  time.Duration
	LatencyMax  time.Duration

	// WholesaleBytes counts chunk bytes released in bulk when sessions
	// completed; MergedBytes counts what pinned sessions spliced into the
	// super-root instead.
	WholesaleBytes int64
	MergedBytes    int64
}

// Finished returns the number of requests that ran to an outcome,
// successful or failed — the denominator for per-request rates.
func (s ServeStats) Finished() int64 { return s.Completed + s.Failed }
