package serve

import (
	"fmt"
	"time"
)

// ServeStats is a snapshot of a Server's lifetime serving statistics.
type ServeStats struct {
	Submitted int64 // requests accepted (running or queued)
	Rejected  int64 // requests refused with ErrSaturated
	Completed int64 // sessions finished without failure
	Failed    int64 // sessions aborted (budget, panic)

	PeakInFlight int // peak simultaneously running sessions
	PeakQueued   int // peak backpressure-queue occupancy

	// Elapsed spans the first accepted Submit to the latest completion;
	// Throughput is completions (successful or failed) per second of it.
	Elapsed    time.Duration
	Throughput float64

	// Latency is measured Submit-to-completion (queue wait included).
	// LatencyCount/LatencySum are the summary's sample count and total —
	// the _count/_sum pair Prometheus needs for rate()-based averages.
	LatencyMean  time.Duration
	LatencyP50   time.Duration
	LatencyP90   time.Duration
	LatencyP99   time.Duration
	LatencyP999  time.Duration
	LatencyMax   time.Duration
	LatencyCount int64
	LatencySum   time.Duration

	// Latency attribution: where completed requests' wall time went, summed
	// across requests. QueueWaitTotal is admission-to-launch; GCTotal and
	// BarrierTotal are the time the request's tasks spent inside collections
	// and promotion lock climbs; MutatorTotal is the residual. For a
	// parallel session the GC/barrier components of different tasks can
	// overlap the same wall-clock interval, so the four totals are an
	// attribution of work, not a disjoint partition of LatencySum (the
	// mutator residual is clamped at zero per request).
	QueueWaitTotal time.Duration
	GCTotal        time.Duration
	BarrierTotal   time.Duration
	MutatorTotal   time.Duration

	// WholesaleBytes counts chunk bytes released in bulk when sessions
	// completed; MergedBytes counts what pinned sessions spliced into the
	// super-root instead.
	WholesaleBytes int64
	MergedBytes    int64
}

// Finished returns the number of requests that ran to an outcome,
// successful or failed — the denominator for per-request rates.
func (s ServeStats) Finished() int64 { return s.Completed + s.Failed }

// Breakdown returns the queue/GC/barrier/mutator attribution as fractions
// of the total attributed time (each in [0,1], summing to 1). All zeros
// when nothing completed.
func (s ServeStats) Breakdown() (queue, gc, barrier, mutator float64) {
	total := s.QueueWaitTotal + s.GCTotal + s.BarrierTotal + s.MutatorTotal
	if total <= 0 {
		return 0, 0, 0, 0
	}
	d := float64(total)
	return float64(s.QueueWaitTotal) / d, float64(s.GCTotal) / d,
		float64(s.BarrierTotal) / d, float64(s.MutatorTotal) / d
}

// BreakdownString formats Breakdown as "q/gc/bar/mut" integer percentages,
// the serve table's breakdown column.
func (s ServeStats) BreakdownString() string {
	if s.QueueWaitTotal+s.GCTotal+s.BarrierTotal+s.MutatorTotal <= 0 {
		return "-"
	}
	q, g, b, m := s.Breakdown()
	return fmt.Sprintf("%d/%d/%d/%d", int(q*100+0.5), int(g*100+0.5), int(b*100+0.5), int(m*100+0.5))
}
