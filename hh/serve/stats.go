package serve

import (
	"time"
)

// ServeStats is a snapshot of a Server's lifetime serving statistics.
type ServeStats struct {
	Submitted int64 // requests accepted (running or queued)
	Rejected  int64 // requests refused with ErrSaturated
	Completed int64 // sessions finished without failure
	Failed    int64 // sessions aborted (budget, panic)

	PeakInFlight int // peak simultaneously running sessions
	PeakQueued   int // peak backpressure-queue occupancy

	// Elapsed spans the first accepted Submit to the latest completion;
	// Throughput is completions (successful or failed) per second of it.
	Elapsed    time.Duration
	Throughput float64

	// Latency is measured Submit-to-completion (queue wait included).
	LatencyMean time.Duration
	LatencyP50  time.Duration
	LatencyP90  time.Duration
	LatencyP99  time.Duration
	LatencyP999 time.Duration
	LatencyMax  time.Duration

	// WholesaleBytes counts chunk bytes released in bulk when sessions
	// completed; MergedBytes counts what pinned sessions spliced into the
	// super-root instead.
	WholesaleBytes int64
	MergedBytes    int64
}

// Finished returns the number of requests that ran to an outcome,
// successful or failed — the denominator for per-request rates.
func (s ServeStats) Finished() int64 { return s.Completed + s.Failed }
