package hh

import "repro/internal/mem"

// Scope is a lexical root-registration region. Every Ref created on the
// scope stays registered with the collectors — its slot is updated in
// place when collections move objects — until the Scoped call that opened
// the scope returns, at which point all of the scope's slots are
// unregistered at once. Scopes nest; the balancing PushRoot/PopRoots
// discipline of the engine cannot be expressed unbalanced through this
// API, including across panic unwinds.
type Scope struct {
	t      *Task
	parent *Scope
	mark   int
	closed bool
}

// Scoped runs fn inside a fresh innermost scope. On return — normal or
// panicking — every Ref the scope registered is unregistered and the
// previous scope becomes innermost again.
func (t *Task) Scoped(fn func(s *Scope)) {
	s := &Scope{t: t, parent: t.cur, mark: t.inner.RootCount()}
	t.cur = s
	defer func() {
		s.closed = true
		t.cur = s.parent
		t.inner.PopRoots(s.mark)
	}()
	fn(s)
}

// Ref is a rooted handle to a managed object: a stable slot that the
// collectors keep pointing at the object as it moves. Valid until its
// scope exits; Get and Set panic afterwards, so a stale handle fails
// loudly instead of reading reclaimed memory.
type Ref struct {
	s    *Scope
	slot *mem.ObjPtr
}

// Ref registers p in the scope and returns its rooted handle. The scope
// must be the task's innermost open scope: registering on an outer scope
// would interleave the root stack with inner scopes' regions and let an
// inner exit unregister the slot early.
func (s *Scope) Ref(p Ptr) Ref {
	if s.closed {
		panic("hh: Ref created on an exited Scope")
	}
	if s.t.cur != s {
		panic("hh: Ref created on an outer Scope while an inner Scope is open")
	}
	slot := new(mem.ObjPtr)
	*slot = p.raw
	s.t.inner.PushRoot(slot)
	return Ref{s: s, slot: slot}
}

// Get returns the pointer's current value (tracking any moves the
// collectors performed since registration).
func (r Ref) Get() Ptr {
	r.check()
	return Ptr{*r.slot}
}

// Set points the rooted slot at a different object.
func (r Ref) Set(p Ptr) {
	r.check()
	*r.slot = p.raw
}

func (r Ref) check() {
	if r.s == nil {
		panic("hh: use of zero Ref")
	}
	if r.s.closed {
		panic("hh: Ref used after its Scope exited")
	}
}
