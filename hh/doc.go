// Package hh is the public face of the hierarchical-heaps runtime: a
// typed, scope-safe API over the engine in internal/rts that reproduces
// "Hierarchical Memory Management for Mutable State" (Guatto, Westrick,
// Raghunathan, Acar, Fluet; PPoPP 2018).
//
// The engine's raw surface is deliberately low-level — untyped object
// handles, hand-packed environment tuples at every fork, and manually
// balanced PushRoot/PopRoots pairs. This package wraps it with Go
// generics and lexical scoping so that the paper's promise ("parallel
// memory management without changing how you write code") holds for Go
// callers too:
//
//	r := hh.New(hh.WithMode(hh.ParMem), hh.WithProcs(8))
//	defer r.Close()
//	sum := hh.Run(r, func(t *hh.Task) uint64 {
//		var total uint64
//		t.Scoped(func(s *hh.Scope) {
//			hist := s.Ref(t.AllocMut(0, 64, hh.TagArrI64))
//			hh.ParDo(t, hh.Bind(hist), 0, 1<<20, 4096,
//				func(t *hh.Task, e *hh.Env, lo, hi int) {
//					h := e.Ptr(0)
//					for i := lo; i < hi; i++ {
//						for {
//							b := int(hh.Hash64(uint64(i)) % 64)
//							old := t.ReadMutWord(h, b)
//							if t.CASWord(h, b, old, old+1) {
//								break
//							}
//						}
//					}
//				})
//			h := hist.Get()
//			for b := 0; b < 64; b++ {
//				total += t.ReadMutWord(h, b)
//			}
//		})
//		return total
//	})
//
// # Pointers, Refs, and Scopes
//
// A [Ptr] is a raw handle to a managed object. The collectors move
// objects, and they update only registered root slots — so a Ptr held in
// a plain Go variable is guaranteed valid only until the task's next
// allocating operation. To keep a pointer live across allocations,
// register it in the enclosing [Scope]:
//
//	t.Scoped(func(s *hh.Scope) {
//		r := s.Ref(p)        // rooted for the scope's lifetime
//		q := t.Alloc(2, 0, hh.TagTuple) // may collect and move things
//		use(r.Get())         // re-read: always the current location
//	})
//
// [Scope.Ref] registers the pointer on the task's shadow stack and
// [Task.Scoped] unregisters everything on exit — including panic unwinds —
// so root registration can no longer be unbalanced. Two rules are
// enforced at runtime: a Ref used after its scope exits panics, and Refs
// may only be created on the task's innermost open scope (creating one on
// an outer scope would let an inner scope's exit unregister it early).
//
// # Forks and environments
//
// Closures passed to [Fork2], [ForkN], [ParDo], [ParSum], or [Tabulate]
// must not capture Ptr or Ref values: a stolen arm runs as a different
// task (possibly on a different worker, against a promoted copy of the
// data), so captured handles would bypass both promotion and root
// updates. Scalars (ints, floats, bools, strings) may be captured
// freely. Managed pointers travel through the fork's environment
// instead: pass them as a [Binding] of Refs, and every arm receives an
// [Env] whose pointers have been re-read on the arm's side of the fork —
// promoted where the mode requires it — and pre-registered in the arm's
// own root set.
//
// Arms may return any Go value. A result that is (or contains) a managed
// pointer must be returned as a plain [Ptr] result — the engine then
// relocates or promotes it across the join as the mode requires; a
// pointer smuggled out inside a struct or slice is not tracked.
//
// # Runtimes
//
// [New] builds a runtime for one of the paper's four systems ([ParMem],
// [STW], [Seq], [Manticore]). Memory accounting is process-global, so at
// most one Runtime may be open at a time; New panics if the previous one
// was not closed.
//
// # Sessions and result lifetimes
//
// Every unit of work is a session: an independent root-level subtree of
// the hierarchy. [Run] executes one pinned session and blocks; [Submit]
// starts a session that runs concurrently with the caller and with other
// sessions, which is how a serving process hosts many simultaneous
// requests on one runtime (package hh/serve adds admission control and
// backpressure on top).
//
// Result lifetime follows the session's reclamation policy, not "until the
// next Run" (sessions are concurrent, so there is no next-Run boundary):
//
//   - An UNPINNED session ([SessionOpts].Pin false) is reclaimed wholesale
//     when it completes — its chunks are released in bulk and every Ptr it
//     created is dead once Wait returns. Its uint64 result (a checksum, a
//     count, a scalar answer) is the only thing that survives.
//   - A PINNED session (Run, or Pin true) merges its subtree into the
//     process super-root at completion, so a Ptr result and everything
//     reachable from it stay valid until Close. Pinned memory is never
//     collected: pin results, not scratch space.
//
// The engine layers under internal/ (mem, heap, core, gc, sched, rts,
// seq, graph, bench, report) remain the reference implementation of the
// paper's algorithms; see DESIGN.md for that inventory.
package hh
