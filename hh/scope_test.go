package hh

import "testing"

// aggressive returns options that force frequent collections so the tests
// exercise root slots actually being updated.
func aggressive(mode Mode, procs int) []Option {
	return []Option{
		WithMode(mode), WithProcs(procs),
		WithGCPolicy(2048, 1.5), WithSTWTrigger(1<<18, 2.0),
	}
}

func TestScopedBalancesRoots(t *testing.T) {
	r := New(aggressive(Seq, 1)...)
	defer r.Close()
	Run(r, func(task *Task) uint64 {
		base := task.inner.RootCount()
		task.Scoped(func(s *Scope) {
			s.Ref(task.Alloc(0, 1, TagRef))
			s.Ref(task.Alloc(0, 1, TagRef))
			task.Scoped(func(inner *Scope) {
				inner.Ref(task.Alloc(0, 1, TagRef))
				if got := task.inner.RootCount(); got != base+3 {
					t.Errorf("inner scope: %d roots, want %d", got, base+3)
				}
			})
			if got := task.inner.RootCount(); got != base+2 {
				t.Errorf("after inner exit: %d roots, want %d", got, base+2)
			}
		})
		if got := task.inner.RootCount(); got != base {
			t.Errorf("after outer exit: %d roots, want %d", got, base)
		}
		return 0
	})
}

func TestScopedBalancesRootsOnPanic(t *testing.T) {
	r := New(aggressive(Seq, 1)...)
	defer r.Close()
	Run(r, func(task *Task) uint64 {
		base := task.inner.RootCount()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected the panic to propagate")
				}
			}()
			task.Scoped(func(s *Scope) {
				s.Ref(task.Alloc(0, 1, TagRef))
				task.Scoped(func(inner *Scope) {
					inner.Ref(task.Alloc(0, 1, TagRef))
					panic("unwind through two scopes")
				})
			})
		}()
		if got := task.inner.RootCount(); got != base {
			t.Errorf("after panic unwind: %d roots, want %d", got, base)
		}
		// The task is still usable: scopes open and balance again.
		task.Scoped(func(s *Scope) {
			s.Ref(task.Alloc(0, 1, TagRef))
		})
		if got := task.inner.RootCount(); got != base {
			t.Errorf("after recovery reuse: %d roots, want %d", got, base)
		}
		return 0
	})
}

func TestRefTracksMovingObject(t *testing.T) {
	for _, mode := range Modes {
		procs := 2
		if mode == Seq {
			procs = 1
		}
		r := New(aggressive(mode, procs)...)
		ok := Run(r, func(task *Task) uint64 {
			var good uint64 = 1
			task.Scoped(func(s *Scope) {
				cell := s.Ref(task.Alloc(0, 1, TagRef))
				task.InitWord(cell.Get(), 0, 0xDEADBEEF)
				before := cell.Get()
				// Churn enough garbage to force collections; the live cell
				// must be copied and the ref slot retargeted.
				for i := 0; i < 20000; i++ {
					task.Alloc(0, 4, TagTuple)
				}
				after := cell.Get()
				if task.ReadImmWord(after, 0) != 0xDEADBEEF {
					good = 0
				}
				_ = before // the raw handle may or may not have moved; only the value matters
			})
			return good
		})
		st := r.Stats()
		r.Close()
		if ok != 1 {
			t.Fatalf("%v: rooted cell lost its value across collections", mode)
		}
		if st.GC.Collections == 0 {
			t.Fatalf("%v: churn did not trigger any collection", mode)
		}
	}
}

func TestRefAfterScopeExitPanics(t *testing.T) {
	r := New(WithMode(Seq))
	defer r.Close()
	Run(r, func(task *Task) uint64 {
		var escaped Ref
		task.Scoped(func(s *Scope) {
			escaped = s.Ref(task.Alloc(0, 1, TagRef))
		})
		defer func() {
			if recover() == nil {
				t.Error("Get on an escaped Ref did not panic")
			}
		}()
		escaped.Get()
		return 0
	})
}

func TestRefOnOuterScopePanics(t *testing.T) {
	r := New(WithMode(Seq))
	defer r.Close()
	Run(r, func(task *Task) uint64 {
		task.Scoped(func(outer *Scope) {
			task.Scoped(func(inner *Scope) {
				defer func() {
					if recover() == nil {
						t.Error("Ref on a non-innermost scope did not panic")
					}
				}()
				outer.Ref(task.Alloc(0, 1, TagRef))
			})
		})
		return 0
	})
}

func TestZeroRefPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero Ref did not panic")
		}
	}()
	var r Ref
	r.Get()
}

func TestRefSetRetargets(t *testing.T) {
	r := New(aggressive(Seq, 1)...)
	defer r.Close()
	got := Run(r, func(task *Task) uint64 {
		var out uint64
		task.Scoped(func(s *Scope) {
			cur := s.Ref(Nil)
			for i := uint64(1); i <= 3; i++ {
				cons := task.Alloc(1, 1, TagCons)
				task.InitWord(cons, 0, i)
				task.InitPtr(cons, 0, cur.Get())
				cur.Set(cons)
				// Collection pressure between links.
				for j := 0; j < 5000; j++ {
					task.Alloc(0, 4, TagTuple)
				}
			}
			for p := cur.Get(); !p.IsNil(); p = task.ReadImmPtr(p, 0) {
				out = out*10 + task.ReadImmWord(p, 0)
			}
		})
		return out
	})
	if got != 321 {
		t.Fatalf("list built through Ref.Set = %d, want 321", got)
	}
}
