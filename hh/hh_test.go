package hh

import (
	"sort"
	"testing"
)

func TestRunResultRoundTripping(t *testing.T) {
	r := New(WithMode(ParMem), WithProcs(2))
	defer r.Close()

	if got := Run(r, func(task *Task) uint64 { return 0xCAFEBABE }); got != 0xCAFEBABE {
		t.Fatalf("uint64 round trip: %x", got)
	}

	type summary struct {
		Name  string
		Procs int
		Sums  []uint64
	}
	s := Run(r, func(task *Task) summary {
		return summary{Name: "msort", Procs: task.Runtime().Procs(), Sums: []uint64{1, 2, 3}}
	})
	if s.Name != "msort" || s.Procs != 2 || len(s.Sums) != 3 {
		t.Fatalf("struct round trip: %+v", s)
	}

	p := Run(r, func(task *Task) Ptr {
		box := task.Alloc(0, 2, TagTuple)
		task.InitWord(box, 0, 11)
		task.InitWord(box, 1, 31)
		return box
	})
	// The Ptr result stays valid until the next Run/Close: read it back
	// from a fresh root task.
	got := Run(r, func(task *Task) uint64 {
		return task.ReadImmWord(p, 0) + task.ReadImmWord(p, 1)
	})
	if got != 42 {
		t.Fatalf("Ptr round trip across Runs: %d, want 42", got)
	}
}

func TestRunPtrResultAllModes(t *testing.T) {
	for _, mode := range Modes {
		procs := 2
		if mode == Seq {
			procs = 1
		}
		r := New(aggressive(mode, procs)...)
		p := Run(r, func(task *Task) Ptr {
			var out Ptr
			task.Scoped(func(s *Scope) {
				box := s.Ref(task.Alloc(0, 1, TagRef))
				task.InitWord(box.Get(), 0, 7)
				for i := 0; i < 10000; i++ {
					task.Alloc(0, 4, TagTuple)
				}
				out = box.Get()
			})
			return out
		})
		got := Run(r, func(task *Task) uint64 { return task.ReadImmWord(p, 0) })
		r.Close()
		if got != 7 {
			t.Fatalf("%v: Ptr result = %d, want 7", mode, got)
		}
	}
}

func TestOneRuntimeRuleSurfaces(t *testing.T) {
	r := New(WithMode(Seq))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("second New with an open Runtime did not panic")
			}
		}()
		New(WithMode(ParMem))
	}()
	r.Close()
	r2 := New(WithMode(ParMem), WithProcs(2))
	r2.Close()
}

func TestParDoParSumTabulate(t *testing.T) {
	const n = 50000
	for _, mode := range Modes {
		procs := 4
		if mode == Seq {
			procs = 1
		}
		r := New(aggressive(mode, procs)...)
		ok := Run(r, func(task *Task) uint64 {
			var good uint64 = 1
			task.Scoped(func(s *Scope) {
				arr := s.Ref(task.AllocMut(0, n, TagArrI64))
				ParDo(task, Bind(arr), 0, n, 512,
					func(task *Task, e *Env, lo, hi int) {
						a := e.Ptr(0)
						for i := lo; i < hi; i++ {
							task.WriteWord(a, i, uint64(i))
						}
					})
				sum := ParSum(task, Bind(arr), 0, n, 512,
					func(task *Task, e *Env, lo, hi int) uint64 {
						a := e.Ptr(0)
						var s uint64
						for i := lo; i < hi; i++ {
							s += task.ReadMutWord(a, i)
						}
						return s
					})
				if sum != uint64(n)*uint64(n-1)/2 {
					good = 0
				}
			})
			return good
		})
		r.Close()
		if ok != 1 {
			t.Fatalf("%v: ParDo/ParSum mismatch", mode)
		}
	}
}

func TestSequenceHelpersAgainstSort(t *testing.T) {
	const n = 1 << 12
	r := New(aggressive(ParMem, 4)...)
	defer r.Close()
	ok := Run(r, func(task *Task) uint64 {
		var good uint64 = 1
		task.Scoped(func(sc *Scope) {
			s := sc.Ref(Tabulate(task, n, 128, func(i int) uint64 { return Hash64(uint64(i)) }))
			if Length(task, s.Get()) != n {
				good = 0
			}
			l, r := SplitMid(task, s.Get())
			lr := sc.Ref(l)
			rr := sc.Ref(r)
			la := sc.Ref(ToArray(task, lr.Get()))
			ra := sc.Ref(ToArray(task, rr.Get()))
			SortArray(task, la.Get())
			SortArray(task, ra.Get())
			merged := sc.Ref(MergeSorted(task, la.Get(), ra.Get()))
			want := make([]uint64, n)
			for i := range want {
				want[i] = Hash64(uint64(i))
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			m := merged.Get()
			if Length(task, m) != n {
				good = 0
			}
			for i := 0; i < n; i++ {
				if task.ReadImmWord(m, i) != want[i] {
					good = 0
					break
				}
			}
		})
		return good
	})
	if ok != 1 {
		t.Fatal("sequence pipeline does not match reference sort")
	}
}

func TestStatsAndDisentanglement(t *testing.T) {
	r := New(aggressive(ParMem, 4)...)
	Run(r, func(task *Task) uint64 {
		var out uint64
		task.Scoped(func(s *Scope) {
			arr := s.Ref(task.AllocMut(8, 0, TagArrPtr))
			ParDo(task, Bind(arr), 0, 8, 1, func(task *Task, e *Env, lo, hi int) {
				for slot := lo; slot < hi; slot++ {
					task.Scoped(func(s *Scope) {
						head := s.Ref(task.ReadMutPtr(e.Ptr(0), slot))
						cons := task.Alloc(1, 1, TagCons)
						task.InitWord(cons, 0, uint64(slot))
						task.InitPtr(cons, 0, head.Get())
						task.WritePtr(e.Ptr(0), slot, cons)
					})
				}
			})
			out = 1
		})
		return out
	})
	st := r.Stats()
	if err := r.CheckDisentangled(); err != nil {
		t.Fatalf("disentanglement violated: %v", err)
	}
	r.Close()
	if st.Ops.Allocs == 0 {
		t.Fatal("no allocations recorded")
	}
	if st.Ops.WritePtrProm == 0 {
		t.Fatal("distant writes into the shared array should promote in ParMem")
	}
}

func TestParseMode(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Mode
	}{
		{"parmem", ParMem}, {"stw", STW}, {"seq", Seq}, {"manticore", Manticore},
		{"mlton-parmem", ParMem}, {"mlton-spoonhower", STW}, {"mlton", Seq},
	} {
		got, err := ParseMode(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseMode(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode accepted garbage")
	}
}
