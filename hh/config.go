package hh

import (
	"fmt"
	"runtime"

	"repro/internal/gc"
	"repro/internal/rts"
	"repro/internal/trace"
)

// Mode selects which of the paper's four runtime systems to run.
type Mode = rts.Mode

// The four systems of the paper's evaluation (§4).
const (
	// ParMem is the paper's contribution: a heap per fork-join task,
	// promotion on entangling writes, concurrent zone collection.
	ParMem = rts.ParMem
	// STW is the Spoonhower-style baseline: parallel allocation into flat
	// worker heaps, sequential stop-the-world collection.
	STW = rts.STW
	// Seq is the sequential baseline.
	Seq = rts.Seq
	// Manticore models DLG-style local heaps under a shared global heap
	// with promotion on cross-worker communication.
	Manticore = rts.Manticore
)

// Modes lists every mode, in the evaluation's order. Examples and tests
// range over it to cross-validate the systems.
var Modes = []Mode{ParMem, STW, Seq, Manticore}

// ParseMode resolves a mode name as printed by Mode.String
// ("mlton-parmem", "mlton-spoonhower", "mlton", "manticore"), or the
// short aliases "parmem", "stw", "seq", "manticore".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "parmem", ParMem.String():
		return ParMem, nil
	case "stw", STW.String():
		return STW, nil
	case "seq", Seq.String():
		return Seq, nil
	case "manticore", Manticore.String():
		return Manticore, nil
	}
	return ParMem, fmt.Errorf("hh: unknown mode %q (want parmem|stw|seq|manticore)", s)
}

// Option configures a Runtime under construction.
type Option func(*rts.Config)

// WithMode selects the runtime system. Default: ParMem.
func WithMode(m Mode) Option {
	return func(c *rts.Config) { c.Mode = m }
}

// WithProcs sets the worker count (ignored in Seq mode). Default: the
// machine's CPU count.
func WithProcs(n int) Option {
	return func(c *rts.Config) { c.Procs = n }
}

// WithGCPolicy sets the per-heap collection trigger: collect once a heap
// holds at least minWords and has grown by ratio over its last live size.
func WithGCPolicy(minWords int64, ratio float64) Option {
	return func(c *rts.Config) { c.Policy = gc.Policy{MinWords: minWords, Ratio: ratio} }
}

// WithMaxConcurrentZones caps how many zone collections may run at once
// in the hierarchical modes. 0 means one per processor; 1 serializes all
// collections (the ablation that measures what concurrency buys).
func WithMaxConcurrentZones(n int) Option {
	return func(c *rts.Config) { c.MaxConcurrentZones = n }
}

// WithZoneStripes sets how many lock stripes the zone scheduler spreads
// its admission bookkeeping over (rounded up to a power of two, at most
// 64). 0 selects the default (16). 1 reproduces a single scheduler-wide
// admission mutex — the ablation that measures what striped admission
// buys at high P. Admission stripes do not change WHAT may run
// concurrently (disjointness and the WithMaxConcurrentZones cap decide
// that), only how much the admission bookkeeping itself serializes.
func WithZoneStripes(n int) Option {
	return func(c *rts.Config) { c.ZoneStripes = n }
}

// WithChunkPoolShards sets how many free-list shards the global chunk pool
// spreads over (at most 64). 0 selects the default, one shard per worker.
// Workers overflow to and acquire from a home shard and steal batches from
// the others on a miss, so the pool's high-water limit and recycling
// behaviour are unchanged — only its lock granularity. Process-global,
// like the pool limit; applies for this runtime's lifetime.
func WithChunkPoolShards(n int) Option {
	return func(c *rts.Config) { c.PoolShards = n }
}

// WithSTWTrigger sets the stop-the-world trigger (STW mode): collect when
// global occupancy exceeds max(floorBytes, ratio × live-after-last-GC).
func WithSTWTrigger(floorBytes int64, ratio float64) Option {
	return func(c *rts.Config) {
		c.STWFloorBytes = floorBytes
		c.STWRatio = ratio
	}
}

// WithoutGC disables collection entirely (GC-overhead ablations).
func WithoutGC() Option {
	return func(c *rts.Config) { c.DisableGC = true }
}

// WithChunkPoolLimit sets the high-water mark of the global chunk pool in
// bytes: chunks released by completed sessions and zone collections are
// recycled up to this total, and past it go back to the OS. 0 selects the
// default (64 MiB). The pool is process-global; the limit applies for this
// runtime's lifetime.
func WithChunkPoolLimit(bytes int64) Option {
	return func(c *rts.Config) { c.PoolLimitBytes = bytes }
}

// WithWorkerCacheChunks bounds each worker's private chunk cache, in
// chunks per size class (0 selects the default, 8). Larger caches keep
// more allocation entirely worker-local under bursty load; smaller caches
// return memory to the shared pool sooner.
func WithWorkerCacheChunks(n int) Option {
	return func(c *rts.Config) { c.CacheChunksPerClass = n }
}

// WithoutChunkPool disables the recycling allocator: every chunk release
// is a hard free and every acquisition a fresh allocation, as in the
// pre-pool runtime. The ablation that measures what recycling buys
// (hhbench -table alloc reports both sides).
func WithoutChunkPool() Option {
	return func(c *rts.Config) { c.DisableChunkPool = true }
}

// WithoutBarrierFastPath forces every mutable pointer write through the
// master-copy lookup under the heap read lock — the paper-faithful
// baseline with neither the local-update fast path (§3.3) nor the
// optimistic ancestor-pointee path, and with promote-buffer batching
// disabled. The ablation that measures what the write-barrier fast paths
// buy (hhbench -table promote reports both sides).
func WithoutBarrierFastPath() Option {
	return func(c *rts.Config) { c.NoBarrierFastPath = true }
}

// WithoutWritePtrFastPath is the former name of WithoutBarrierFastPath,
// kept for callers of the original §3.3 ablation.
//
// Deprecated: use WithoutBarrierFastPath.
func WithoutWritePtrFastPath() Option { return WithoutBarrierFastPath() }

// WithDeferredPromotion switches the ParMem write barrier from the
// paper's eager transitive promotion to lazy pin-and-remember: an
// ancestor→descendant pointer write stores the down-pointer as-is and
// records a remembered-set entry on the pointee's heap instead of copying
// its subtree. The pointee is promoted only on a second cross-heap touch,
// or when its subtree's release finds the down-pointer slot surviving;
// zone collections evacuate pinned objects within their own heap and
// re-pin, so objects that die in their leaf heap are reclaimed wholesale
// without ever being copied. Stats().Ops
// gains WritePtrPinned and the Deferred* outcome counters, and
// Stats().Deferred summarizes the pin lifecycle (see TUNING.md for a
// promote-table reading guide). Ignored outside ParMem mode.
func WithDeferredPromotion() Option {
	return func(c *rts.Config) { c.DeferredPromotion = true }
}

// WithInvariantChecks runs the remembered-set invariant walker
// (heap.CheckInvariants) after every zone collection and at session
// reclaim, panicking on the first violation: every remembered entry's
// pinned chunk must still be registered and owned by the remembering
// heap, every slot must live in a strict-ancestor heap, and the pin index
// must balance the entry list. A debug knob for tests — the walk is
// O(remembered entries) per collection.
func WithInvariantChecks() Option {
	return func(c *rts.Config) { c.CheckInvariants = true }
}

// WithPromoteBufferObjects caps how many staged pointees one promotion
// lock climb may serve in a batched pointer write (Task.WritePtrs): the
// capacity of each task's promote buffer. 0 selects the default (32);
// 1 climbs per object — the batching ablation, equivalent to issuing the
// batch as individual WritePtr calls.
func WithPromoteBufferObjects(n int) Option {
	return func(c *rts.Config) { c.PromoteBufferObjects = n }
}

// WithTrace enables the runtime's flight recorder: per-worker lock-free
// rings of bufEvents fixed-size events each (0 selects the default, 65536 ≈
// 2.6 MB per worker) recording zone collections, promotion climbs, session
// lifecycles, STW pauses, pool traffic, and sheds. The rings are bounded
// and overwrite oldest-first, so tracing is safe to leave on in production;
// snapshot them with hhserved's /debug/trace endpoint or the -trace flag of
// hhload/hhbench/hhshoot, and load the JSON in Perfetto. Disabled (the
// default), every emit site costs one predicted-false branch.
func WithTrace(bufEvents int) Option {
	return func(c *rts.Config) {
		if bufEvents <= 0 {
			bufEvents = trace.DefaultBufEvents
		}
		c.TraceBufEvents = bufEvents
	}
}

// newConfig applies opts over the defaults.
func newConfig(opts []Option) rts.Config {
	cfg := rts.DefaultConfig(ParMem, runtime.NumCPU())
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}
