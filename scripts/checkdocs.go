//go:build ignore

// Command checkdocs validates the repository's markdown cross-references:
// every relative link target in the given files must exist, and every
// fragment (#anchor) must match a heading in the target file, using
// GitHub's heading-slug rules. CI runs it as the docs job:
//
//	go run ./scripts/checkdocs.go README.md DESIGN.md TUNING.md
//
// External links (http/https/mailto) are not fetched.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var (
	linkRe    = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	headingRe = regexp.MustCompile("(?m)^#{1,6}[ \t]+(.+?)[ \t]*$")
	codeRe    = regexp.MustCompile("(?s)```.*?```")
	inlineRe  = regexp.MustCompile("`[^`]*`")
	slugDrop  = regexp.MustCompile(`[^a-z0-9 _-]`)
)

// slug approximates GitHub's heading-anchor algorithm.
func slug(h string) string {
	h = inlineRe.ReplaceAllStringFunc(h, func(s string) string { return strings.Trim(s, "`") })
	h = strings.ToLower(h)
	h = slugDrop.ReplaceAllString(h, "")
	return strings.ReplaceAll(h, " ", "-")
}

func anchorsOf(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := codeRe.ReplaceAllString(string(data), "")
	out := map[string]bool{}
	for _, m := range headingRe.FindAllStringSubmatch(text, -1) {
		out[slug(m[1])] = true
	}
	return out, nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: checkdocs FILE.md...")
		os.Exit(2)
	}
	anchorCache := map[string]map[string]bool{}
	bad := 0
	for _, file := range os.Args[1:] {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		text := codeRe.ReplaceAllString(string(data), "")
		for _, m := range linkRe.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			resolved := file
			if path != "" {
				resolved = filepath.Join(filepath.Dir(file), path)
				if _, err := os.Stat(resolved); err != nil {
					fmt.Fprintf(os.Stderr, "%s: broken link %q: %v\n", file, target, err)
					bad++
					continue
				}
			}
			if frag == "" {
				continue
			}
			if !strings.HasSuffix(resolved, ".md") {
				continue // fragments into non-markdown files are not checkable
			}
			anchors, ok := anchorCache[resolved]
			if !ok {
				anchors, err = anchorsOf(resolved)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				anchorCache[resolved] = anchors
			}
			if !anchors[frag] {
				fmt.Fprintf(os.Stderr, "%s: broken anchor %q (no heading slug %q in %s)\n",
					file, target, frag, resolved)
				bad++
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "checkdocs: %d broken reference(s)\n", bad)
		os.Exit(1)
	}
	fmt.Println("checkdocs: all markdown links and anchors resolve")
}
