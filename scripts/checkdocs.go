//go:build ignore

// Command checkdocs validates the repository's markdown cross-references:
// every relative link target in the given files must exist, and every
// fragment (#anchor) must match a heading in the target file, using
// GitHub's heading-slug rules. Additionally, every symbol reference of the
// form [`pkg.Symbol`](path/to/file.go) — the convention of
// docs/PAPER-MAP.md — is verified against the linked Go file's AST: the
// named function, method, type, or value must still be declared there, so
// the paper-to-code map cannot silently rot. CI runs it as the docs job:
//
//	go run ./scripts/checkdocs.go README.md DESIGN.md TUNING.md docs/PAPER-MAP.md
//
// External links (http/https/mailto) are not fetched.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var (
	linkRe    = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	symLinkRe = regexp.MustCompile("\\[`([A-Za-z_][A-Za-z0-9_.]*)`\\]\\(([^)#\\s]+\\.go)\\)")
	headingRe = regexp.MustCompile("(?m)^#{1,6}[ \t]+(.+?)[ \t]*$")
	codeRe    = regexp.MustCompile("(?s)```.*?```")
	inlineRe  = regexp.MustCompile("`[^`]*`")
	slugDrop  = regexp.MustCompile(`[^a-z0-9 _-]`)
)

// declsOf parses a Go source file and returns the set of names it
// declares: "Func", "Type", "Var", "Const", and "Recv.Method" for methods
// (pointer receivers included, star stripped).
func declsOf(path string) (map[string]bool, error) {
	f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) == 1 {
				t := d.Recv.List[0].Type
				if st, ok := t.(*ast.StarExpr); ok {
					t = st.X
				}
				if gt, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
					t = gt.X
				}
				if id, ok := t.(*ast.Ident); ok {
					name = id.Name + "." + name
				}
			}
			out[name] = true
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					out[s.Name.Name] = true
				case *ast.ValueSpec:
					for _, n := range s.Names {
						out[n.Name] = true
					}
				}
			}
		}
	}
	return out, nil
}

// checkSymbol verifies one [`pkg.Symbol`](file.go) reference: the part
// after the package qualifier — "Name" or "Type.Method" — must be declared
// in the linked file.
func checkSymbol(sym, goFile string, declCache map[string]map[string]bool) error {
	decls, ok := declCache[goFile]
	if !ok {
		var err error
		decls, err = declsOf(goFile)
		if err != nil {
			return err
		}
		declCache[goFile] = decls
	}
	parts := strings.Split(sym, ".")
	if len(parts) < 2 {
		return fmt.Errorf("symbol %q is not qualified (want pkg.Name or pkg.Type.Method)", sym)
	}
	want := strings.Join(parts[1:], ".") // drop the package qualifier
	if decls[want] {
		return nil
	}
	return fmt.Errorf("symbol %q not declared in %s", want, goFile)
}

// slug approximates GitHub's heading-anchor algorithm.
func slug(h string) string {
	h = inlineRe.ReplaceAllStringFunc(h, func(s string) string { return strings.Trim(s, "`") })
	h = strings.ToLower(h)
	h = slugDrop.ReplaceAllString(h, "")
	return strings.ReplaceAll(h, " ", "-")
}

func anchorsOf(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := codeRe.ReplaceAllString(string(data), "")
	out := map[string]bool{}
	for _, m := range headingRe.FindAllStringSubmatch(text, -1) {
		out[slug(m[1])] = true
	}
	return out, nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: checkdocs FILE.md...")
		os.Exit(2)
	}
	anchorCache := map[string]map[string]bool{}
	declCache := map[string]map[string]bool{}
	bad := 0
	for _, file := range os.Args[1:] {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		text := codeRe.ReplaceAllString(string(data), "")
		for _, m := range symLinkRe.FindAllStringSubmatch(text, -1) {
			sym, target := m[1], m[2]
			goFile := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(goFile); err != nil {
				continue // broken path: the link pass below reports it
			}
			if err := checkSymbol(sym, goFile, declCache); err != nil {
				fmt.Fprintf(os.Stderr, "%s: broken symbol reference: %v\n", file, err)
				bad++
			}
		}
		for _, m := range linkRe.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			resolved := file
			if path != "" {
				resolved = filepath.Join(filepath.Dir(file), path)
				if _, err := os.Stat(resolved); err != nil {
					fmt.Fprintf(os.Stderr, "%s: broken link %q: %v\n", file, target, err)
					bad++
					continue
				}
			}
			if frag == "" {
				continue
			}
			if !strings.HasSuffix(resolved, ".md") {
				continue // fragments into non-markdown files are not checkable
			}
			anchors, ok := anchorCache[resolved]
			if !ok {
				anchors, err = anchorsOf(resolved)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				anchorCache[resolved] = anchors
			}
			if !anchors[frag] {
				fmt.Fprintf(os.Stderr, "%s: broken anchor %q (no heading slug %q in %s)\n",
					file, target, frag, resolved)
				bad++
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "checkdocs: %d broken reference(s)\n", bad)
		os.Exit(1)
	}
	fmt.Println("checkdocs: all markdown links and anchors resolve")
}
