#!/usr/bin/env bash
# e2e_net.sh — end-to-end smoke of the network serving stack over a real
# TCP socket: hhserved in all four runtime modes driven by a
# race-instrumented hhshoot. Asserts:
#
#   1. the steady leg (with -retry-shed) produces the IDENTICAL stream
#      checksum in every mode — cross-mode parity through the wire;
#   2. a burst beyond admission capacity is shed EXPLICITLY (nonzero
#      -SHED replies), never absorbed by unbounded buffering;
#   2b. /debug/trace records a flight-recorder snapshot DURING the burst
#      and checktrace validates it (well-formed trace-event JSON, balanced
#      spans, monotonic timestamps);
#   3. /metrics serves the exposition and /healthz flips during drain;
#   4. SIGTERM drains cleanly: hhserved exits 0 only if every accepted
#      request completed and chunk occupancy returned to its baseline
#      (the wholesale-reclamation property at the process boundary).
#
# Run from the repository root:  ./scripts/e2e_net.sh
set -euo pipefail

work=$(mktemp -d)
srv_pid=""
cleanup() {
  [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

echo "== build =="
go build -o "$work/hhserved" ./cmd/hhserved
go build -race -o "$work/hhshoot" ./cmd/hhshoot

# start_server <mode> [extra flags...] — launches hhserved on an
# ephemeral port and exports ADDR/MADDR (and DADDR when -debug-addr is
# among the extra flags) from its startup lines.
start_server() {
  local mode=$1; shift
  local want_debug=0
  case " $* " in *" -debug-addr "*) want_debug=1;; esac
  : >"$work/server.log"
  DADDR=""
  "$work/hhserved" -addr 127.0.0.1:0 -metrics-addr 127.0.0.1:0 \
    -mode "$mode" -procs 4 "$@" >"$work/server.log" 2>&1 &
  srv_pid=$!
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*listening on //p' "$work/server.log")
    MADDR=$(sed -n 's|.*metrics on http://\([^/]*\)/metrics|\1|p' "$work/server.log")
    DADDR=$(sed -n 's|.*debug on http://\([^/]*\)/debug|\1|p' "$work/server.log")
    if [ -n "$ADDR" ] && [ -n "$MADDR" ]; then
      [ "$want_debug" = 0 ] || [ -n "$DADDR" ] || { sleep 0.1; continue; }
      return 0
    fi
    kill -0 "$srv_pid" 2>/dev/null || { cat "$work/server.log" >&2; return 1; }
    sleep 0.1
  done
  echo "server never came up" >&2
  cat "$work/server.log" >&2
  return 1
}

# stop_server — SIGTERM, then require a clean drain (exit 0 and the
# baseline line in the log).
stop_server() {
  kill -TERM "$srv_pid"
  local code=0
  wait "$srv_pid" || code=$?
  srv_pid=""
  if [ "$code" -ne 0 ]; then
    echo "FAIL: hhserved exited $code (drain incomplete or chunk leak)" >&2
    cat "$work/server.log" >&2
    return 1
  fi
  grep -q "chunk occupancy back at baseline" "$work/server.log" || {
    echo "FAIL: no baseline confirmation in server log" >&2
    cat "$work/server.log" >&2
    return 1
  }
}

json_field() { # json_field <file> <key> — extract a scalar field
  sed -n "s/.*\"$2\": \"\{0,1\}\([^\",]*\)\"\{0,1\},\{0,1\}\$/\1/p" "$1" | head -1
}

echo "== cross-mode parity (steady leg, retry-shed) =="
ref_sum=""
for mode in seq stw manticore parmem; do
  start_server "$mode" -max-inflight 8
  "$work/hhshoot" -addr "$ADDR" -shape steady:3000 -requests 1500 -conns 8 \
    -size 600 -retry-shed -json >"$work/shoot-$mode.json"
  sum=$(json_field "$work/shoot-$mode.json" checksum)
  ok=$(json_field "$work/shoot-$mode.json" ok)
  echo "  $mode: ok=$ok checksum=$sum"
  [ "$ok" = "1500" ] || { echo "FAIL: $mode served $ok/1500" >&2; exit 1; }
  if [ -z "$ref_sum" ]; then
    ref_sum=$sum
  elif [ "$sum" != "$ref_sum" ]; then
    echo "FAIL: checksum divergence: $mode=$sum, want $ref_sum" >&2
    exit 1
  fi
  stop_server
done
echo "  parity: all four modes computed $ref_sum"

echo "== explicit shedding under burst (with live trace capture) =="
start_server parmem -max-inflight 4 -queue-depth 8 -debug-addr 127.0.0.1:0
# Record the flight recorder over a 2s window that overlaps the burst:
# the curl runs in the background while hhshoot drives the load.
curl -sf "http://$DADDR/debug/trace?sec=2" -o "$work/burst-trace.json" &
trace_pid=$!
"$work/hhshoot" -addr "$ADDR" -shape burst:500:20000:500ms:200ms \
  -requests 1500 -conns 48 -size 1200 -json >"$work/shoot-burst.json"
shed=$(json_field "$work/shoot-burst.json" shed)
echo "  burst: shed=$shed of 1500"
[ "${shed:-0}" -gt 0 ] || { echo "FAIL: burst was absorbed, not shed" >&2; exit 1; }
wait "$trace_pid" || { echo "FAIL: /debug/trace capture failed" >&2; exit 1; }
go run ./scripts/checktrace.go -min-events 100 "$work/burst-trace.json"

echo "== metrics and drain health =="
curl -sf "http://$MADDR/metrics" >"$work/metrics.txt"
for m in hh_requests_total hh_sheds_total hh_chunks_in_use hh_latency_seconds \
         hh_latency_seconds_sum hh_latency_seconds_count \
         hh_latency_breakdown_seconds_total hh_ptr_writes_total \
         hh_zone_overlap_seconds_total hh_pool_shard_steals_total; do
  grep -q "$m" "$work/metrics.txt" || { echo "FAIL: $m missing from /metrics" >&2; exit 1; }
done
health=$(curl -s -o /dev/null -w '%{http_code}' "http://$MADDR/healthz")
[ "$health" = "200" ] || { echo "FAIL: /healthz = $health before drain" >&2; exit 1; }
stop_server

echo "e2e_net: ok (parity $ref_sum, $shed burst sheds, clean drains in all four modes)"
