//go:build ignore

// Command checktrace validates a flight-recorder trace file (the Chrome
// trace-event JSON written by hhload/hhbench/hhshoot -trace or streamed
// from hhserved's /debug/trace): the file must parse, contain only the
// event phases the exporter emits (X complete spans, i instants, M
// metadata), every span must carry a non-negative duration (the balanced
// begin/end guarantee — the exporter never writes a dangling half of a
// pair), and timestamps must be non-decreasing in file order. CI runs it
// against the traces the e2e and bench-smoke jobs record:
//
//	go run ./scripts/checktrace.go -min-events 100 -min-zone-overlap 2 out.json
//
// -min-events fails the check unless the trace holds at least N non-
// metadata events; -min-zone-overlap fails it unless at least N
// zone-collect spans were in flight at one instant somewhere in the trace
// (the paper's concurrent-zone property, checked on the wire artifact);
// -min-txn fails it unless at least N resolved txn-commit spans appear,
// and every resolved txn span must carry a commit or abort outcome — a
// span with neither means a commit window closed without its paired
// resolution event.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func main() {
	minEvents := flag.Int("min-events", 1, "fail unless the trace holds at least this many non-metadata events")
	minZoneOverlap := flag.Int("min-zone-overlap", 0,
		"fail unless this many zone-collect spans were in flight at one instant (0 = off)")
	minTxn := flag.Int("min-txn", 0,
		"fail unless this many resolved txn-commit spans appear (0 = off)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: checktrace [-min-events N] [-min-zone-overlap N] TRACE.json")
		os.Exit(2)
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fatal(fmt.Errorf("%s: not trace-event JSON: %w", path, err))
	}

	events := 0
	spans := 0
	txnCommits, txnAborts := 0, 0
	lastTs := -1.0
	var zoneEdges []edge
	for i, e := range tf.TraceEvents {
		switch e.Ph {
		case "M":
			continue // metadata carries no timestamp ordering guarantee
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				fatal(fmt.Errorf("%s: event %d (%s): X span without non-negative dur (unbalanced pair)",
					path, i, e.Name))
			}
			spans++
			if e.Name == "zone-collect" {
				zoneEdges = append(zoneEdges, edge{e.Ts, +1}, edge{e.Ts + *e.Dur, -1})
			}
			if e.Name == "txn-commit" {
				// Every resolved commit window must end in exactly one of
				// the two outcomes; a span cut open mid-recording is the
				// only excuse for carrying neither.
				switch e.Args["outcome"] {
				case "commit":
					txnCommits++
				case "abort":
					txnAborts++
				default:
					if e.Args["open_at_cut"] != true {
						fatal(fmt.Errorf("%s: event %d: txn-commit span with no commit/abort outcome",
							path, i))
					}
				}
			}
		case "i":
			// instants are complete by construction
		default:
			fatal(fmt.Errorf("%s: event %d (%s): unexpected phase %q", path, i, e.Name, e.Ph))
		}
		if e.Ts < lastTs {
			fatal(fmt.Errorf("%s: event %d (%s): timestamp %f before predecessor %f",
				path, i, e.Name, e.Ts, lastTs))
		}
		lastTs = e.Ts
		events++
	}
	if events < *minEvents {
		fatal(fmt.Errorf("%s: only %d events, want >= %d", path, events, *minEvents))
	}

	// Sweep the zone-collect begin/end edges for the peak number of
	// simultaneously open spans. Ends sort before begins at equal times, so
	// back-to-back spans do not count as overlapping.
	peak, open := 0, 0
	sort.Slice(zoneEdges, func(i, j int) bool {
		if zoneEdges[i].ts != zoneEdges[j].ts {
			return zoneEdges[i].ts < zoneEdges[j].ts
		}
		return zoneEdges[i].d < zoneEdges[j].d
	})
	for _, ed := range zoneEdges {
		open += ed.d
		if open > peak {
			peak = open
		}
	}
	if *minZoneOverlap > 0 && peak < *minZoneOverlap {
		fatal(fmt.Errorf("%s: peak concurrent zone-collect spans %d, want >= %d",
			path, peak, *minZoneOverlap))
	}
	if *minTxn > 0 && txnCommits+txnAborts < *minTxn {
		fatal(fmt.Errorf("%s: only %d resolved txn spans (%d commit, %d abort), want >= %d",
			path, txnCommits+txnAborts, txnCommits, txnAborts, *minTxn))
	}

	fmt.Printf("checktrace ok: %s: %d events (%d spans), peak concurrent zone collections %d, txn %d commit / %d abort\n",
		path, events, spans, peak, txnCommits, txnAborts)
}

type edge struct {
	ts float64
	d  int
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "checktrace:", err)
	os.Exit(1)
}
