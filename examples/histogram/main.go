// Histogram example: parallel tasks bin hashed values into a shared
// mutable array at the root with compare-and-swap — the "distant
// non-pointer write" class of Figure 8. Contrast with the tournament
// example, where all mutation is local.
package main

import (
	"flag"
	"fmt"
	"runtime"

	"repro/internal/mem"
	"repro/internal/rts"
	"repro/internal/seq"
)

func main() {
	n := flag.Int("n", 1<<20, "values to bin")
	bins := flag.Int("bins", 256, "histogram bins")
	procs := flag.Int("procs", runtime.NumCPU(), "workers")
	flag.Parse()

	r := rts.New(rts.DefaultConfig(rts.ParMem, *procs))
	defer r.Close()

	total := r.Run(func(t *rts.Task) uint64 {
		hist := t.AllocMut(0, *bins, mem.TagArrI64)
		mark := t.PushRoot(&hist)
		nbins := uint64(*bins)
		seq.ParDo(t, hist, 0, *n, 4096,
			func(t *rts.Task, env mem.ObjPtr, lo, hi int) {
				for i := lo; i < hi; i++ {
					bin := int(seq.Hash64(uint64(i)) % nbins)
					for {
						old := t.ReadMutWord(env, bin)
						if t.CASWord(env, bin, old, old+1) {
							break
						}
					}
				}
			})
		var sum uint64
		for b := 0; b < *bins; b++ {
			sum += t.ReadMutWord(hist, b)
		}
		t.PopRoots(mark)
		return sum
	})

	st := r.Stats()
	fmt.Printf("binned %d values into %d bins on %d workers (all counted: %v)\n",
		*n, *bins, *procs, total == uint64(*n))
	fmt.Printf("  distant CAS operations: %d, promotions: %d\n",
		st.Ops.CASFast+st.Ops.CASSlow, st.Ops.Promotions)
	fmt.Printf("  representative operation: %s\n", st.Ops.Representative())
}
