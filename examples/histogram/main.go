// Histogram example: parallel tasks bin hashed values into a shared
// mutable array at the root with compare-and-swap — the "distant
// non-pointer write" class of Figure 8. Contrast with the tournament
// example, where all mutation is local. Runs on any of the four runtime
// systems (-mode).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/hh"
)

func main() {
	n := flag.Int("n", 1<<20, "values to bin")
	bins := flag.Int("bins", 256, "histogram bins")
	procs := flag.Int("procs", runtime.NumCPU(), "workers")
	modeName := flag.String("mode", "parmem", "parmem|stw|seq|manticore")
	flag.Parse()

	mode, err := hh.ParseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r := hh.New(hh.WithMode(mode), hh.WithProcs(*procs))
	defer r.Close()

	total := hh.Run(r, func(t *hh.Task) uint64 {
		var sum uint64
		t.Scoped(func(sc *hh.Scope) {
			hist := sc.Ref(t.AllocMut(0, *bins, hh.TagArrI64))
			nbins := uint64(*bins)
			hh.ParDo(t, hh.Bind(hist), 0, *n, 4096,
				func(t *hh.Task, e *hh.Env, lo, hi int) {
					h := e.Ptr(0)
					for i := lo; i < hi; i++ {
						bin := int(hh.Hash64(uint64(i)) % nbins)
						for {
							old := t.ReadMutWord(h, bin)
							if t.CASWord(h, bin, old, old+1) {
								break
							}
						}
					}
				})
			h := hist.Get()
			for b := 0; b < *bins; b++ {
				sum += t.ReadMutWord(h, b)
			}
		})
		return sum
	})

	st := r.Stats()
	allCounted := total == uint64(*n)
	fmt.Printf("binned %d values into %d bins on %d workers (%v, all counted: %v)\n",
		*n, *bins, r.Procs(), r.Mode(), allCounted)
	fmt.Printf("  distant CAS operations: %d, promotions: %d\n",
		st.Ops.CASFast+st.Ops.CASSlow, st.Ops.Promotions)
	fmt.Printf("  representative operation: %s\n", st.Ops.Representative())
	if !allCounted {
		os.Exit(1)
	}
}
