// Tournament example: the paper's tourney workload — a parallel tournament
// tree where every elimination performs a mutable pointer write on a
// contestant that is already local to the writing task. Shows that local
// mutation is free under hierarchical heaps: no promotions, fast-path
// writes only.
package main

import (
	"flag"
	"fmt"
	"runtime"

	"repro/internal/bench"
	"repro/internal/rts"
)

func main() {
	n := flag.Int("n", 1<<18, "contestants")
	procs := flag.Int("procs", runtime.NumCPU(), "workers")
	flag.Parse()

	b := bench.Tourney()
	sc := bench.Scale{N: *n, Grain: 1 << 10}
	res := bench.Run(b, rts.DefaultConfig(rts.ParMem, *procs), sc)

	fmt.Printf("tournament over %d contestants on %d workers: %.2fms\n",
		*n, *procs, res.Elapsed.Seconds()*1000)
	fmt.Printf("  eliminations (mutable pointer writes): %d\n",
		res.Totals.Ops.WritePtrFast+res.Totals.Ops.WritePtrNonProm+res.Totals.Ops.WritePtrProm)
	fmt.Printf("  fast-path (local) share: %d, promotions: %d\n",
		res.Totals.Ops.WritePtrFast, res.Totals.Ops.Promotions)
	fmt.Printf("  representative operation: %s\n", res.Totals.Ops.Representative())
	fmt.Printf("  checksum: %x\n", res.Checksum)
}
