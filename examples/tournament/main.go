// Tournament example: a parallel tournament tree where every elimination
// performs a mutable pointer write on data that is already local to the
// writing task. Shows the paper's headline economics: under hierarchical
// heaps local mutation is free — fast-path writes only, zero promotions —
// while the same program pays global-heap costs on the DLG-style
// configuration (-mode manticore).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/hh"
)

// contestant allocates entrant i with its hashed strength.
func contestant(t *hh.Task, i int) hh.Ptr {
	c := t.Alloc(0, 1, hh.TagTuple)
	t.InitWord(c, 0, hh.Hash64(uint64(i)))
	return c
}

// eliminate writes the winner of l vs r into match slot m — the mutable
// pointer write that the benchmark counts — and returns the winner.
func eliminate(t *hh.Task, m, l, r hh.Ptr) hh.Ptr {
	if t.ReadImmWord(l, 0) <= t.ReadImmWord(r, 0) {
		t.WritePtr(m, 0, l)
	} else {
		t.WritePtr(m, 0, r)
	}
	return t.ReadMutPtr(m, 0)
}

// play returns the winner of the bracket over contestants [lo, hi).
func play(t *hh.Task, lo, hi, grain int) hh.Ptr {
	if hi-lo == 1 {
		return contestant(t, lo)
	}
	var out hh.Ptr
	if hi-lo <= grain {
		// Sequential bracket below the grain: one match slot, one
		// elimination write per entrant.
		t.Scoped(func(s *hh.Scope) {
			slot := s.Ref(t.Alloc(1, 0, hh.TagNode))
			champ := s.Ref(contestant(t, lo))
			for i := lo + 1; i < hi; i++ {
				t.Scoped(func(inner *hh.Scope) {
					c := inner.Ref(contestant(t, i))
					champ.Set(eliminate(t, slot.Get(), champ.Get(), c.Get()))
				})
			}
			out = champ.Get()
		})
		return out
	}
	mid := lo + (hi-lo)/2
	wl, wr := hh.Fork2(t, nil,
		func(t *hh.Task, _ *hh.Env) hh.Ptr { return play(t, lo, mid, grain) },
		func(t *hh.Task, _ *hh.Env) hh.Ptr { return play(t, mid, hi, grain) })
	t.Scoped(func(s *hh.Scope) {
		l := s.Ref(wl)
		r := s.Ref(wr)
		m := s.Ref(t.Alloc(1, 0, hh.TagNode))
		out = eliminate(t, m.Get(), l.Get(), r.Get())
	})
	return out
}

func main() {
	n := flag.Int("n", 1<<18, "contestants")
	grain := flag.Int("grain", 1<<10, "sequential bracket size")
	procs := flag.Int("procs", runtime.NumCPU(), "workers")
	modeName := flag.String("mode", "parmem", "parmem|stw|seq|manticore")
	flag.Parse()

	mode, err := hh.ParseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r := hh.New(hh.WithMode(mode), hh.WithProcs(*procs))
	defer r.Close()

	champ := hh.Run(r, func(t *hh.Task) uint64 {
		return t.ReadImmWord(play(t, 0, *n, *grain), 0)
	})

	want := hh.Hash64(0)
	for i := 1; i < *n; i++ {
		if h := hh.Hash64(uint64(i)); h < want {
			want = h
		}
	}
	ok := champ == want

	st := r.Stats()
	elims := st.Ops.WritePtrFast + st.Ops.WritePtrNonProm + st.Ops.WritePtrProm
	fmt.Printf("tournament over %d contestants on %d workers (%v): champion ok=%v\n",
		*n, r.Procs(), r.Mode(), ok)
	fmt.Printf("  eliminations (mutable pointer writes): %d\n", elims)
	fmt.Printf("  fast-path (local) share: %d, promotions: %d\n",
		st.Ops.WritePtrFast, st.Ops.Promotions)
	fmt.Printf("  representative operation: %s\n", st.Ops.Representative())
	if !ok {
		os.Exit(1)
	}
}
