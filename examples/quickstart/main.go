// Quickstart: the paper's Figure 1 — parallel merge sort with an
// imperative in-place quicksort below the grain — on the hierarchical
// heaps runtime. Demonstrates the public API surface: runtimes, tasks,
// fork-join with environment threading, allocation, initializing writes,
// and GC root registration.
package main

import (
	"fmt"
	"runtime"

	"repro/internal/mem"
	"repro/internal/rts"
	"repro/internal/seq"
)

const (
	size  = 1 << 16
	grain = 1 << 9
)

// msort is Figure 1: split to the grain, quicksort leaves in place, merge
// sorted results at the joins.
func msort(t *rts.Task, s mem.ObjPtr) mem.ObjPtr {
	n := seq.Length(t, s)
	if n <= grain {
		a := seq.ToFlatU64(t, s) // Seq.toArray
		seq.QuickSortInPlace(t, a, 0, n)
		return a // Seq.fromArray
	}
	l, r := seq.SplitMid(t, s)
	mark := t.PushRoot(&l, &r)
	env := t.Alloc(2, 0, mem.TagTuple)
	t.PopRoots(mark)
	t.WriteInitPtr(env, 0, l)
	t.WriteInitPtr(env, 1, r)
	ls, rs := t.ForkJoin(env,
		func(t *rts.Task, env mem.ObjPtr) mem.ObjPtr { return msort(t, t.ReadImmPtr(env, 0)) },
		func(t *rts.Task, env mem.ObjPtr) mem.ObjPtr { return msort(t, t.ReadImmPtr(env, 1)) })
	return seq.MergeFlatSorted(t, ls, rs)
}

func main() {
	r := rts.New(rts.DefaultConfig(rts.ParMem, runtime.NumCPU()))
	defer r.Close()

	sorted := r.Run(func(t *rts.Task) uint64 {
		// Build the input: size hashed 64-bit values.
		s := seq.TabulateU64(t, mem.NilPtr, size, grain,
			func(t *rts.Task, _ mem.ObjPtr, i int) uint64 { return seq.Hash64(uint64(i)) })
		mark := t.PushRoot(&s)
		out := msort(t, s)
		t.PopRoots(mark)

		// Verify the result is sorted.
		prev := uint64(0)
		for i := 0; i < size; i++ {
			v := t.ReadImmWord(out, i)
			if v < prev {
				return 0
			}
			prev = v
		}
		return 1
	})

	st := r.Stats()
	fmt.Printf("msort of %d elements on %d workers: sorted=%v\n", size, r.Procs(), sorted == 1)
	fmt.Printf("  allocations: %d objects (%d KiB)\n", st.Ops.Allocs, st.Ops.AllocWords*8/1024)
	fmt.Printf("  steals: %d, promotions: %d (pure fork-join data flow promotes nothing)\n",
		st.Steals, st.Ops.Promotions)
	fmt.Printf("  collections: %d, copied %d KiB, GC time %.2fms\n",
		st.GC.Collections, st.GC.WordsCopied*8/1024, float64(st.GCNanos)/1e6)
}
