// Quickstart: the paper's Figure 1 — parallel merge sort with an
// imperative in-place quicksort below the grain — on the hierarchical
// heaps runtime, written against the public hh API. Demonstrates
// runtimes, generic fork-join, scope-registered roots (no manual
// PushRoot/PopRoots), and environment threading via Bind/Env.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/hh"
)

// msort is Figure 1: split to the grain, quicksort leaves in place, merge
// sorted results at the joins. Pointers cross the fork through Bind; each
// arm re-reads its half from its Env.
func msort(t *hh.Task, s hh.Ptr, grain int) hh.Ptr {
	n := hh.Length(t, s)
	if n <= grain {
		a := hh.ToArray(t, s) // Seq.toArray
		hh.SortArray(t, a)
		return a // Seq.fromArray
	}
	var out hh.Ptr
	t.Scoped(func(sc *hh.Scope) {
		l, r := hh.SplitMid(t, s)
		lr := sc.Ref(l)
		rr := sc.Ref(r)
		ls, rs := hh.Fork2(t, hh.Bind(lr, rr),
			func(t *hh.Task, e *hh.Env) hh.Ptr { return msort(t, e.Ptr(0), grain) },
			func(t *hh.Task, e *hh.Env) hh.Ptr { return msort(t, e.Ptr(1), grain) })
		out = hh.MergeSorted(t, ls, rs)
	})
	return out
}

func main() {
	size := flag.Int("size", 1<<16, "elements to sort")
	grain := flag.Int("grain", 1<<9, "sequential cutoff")
	procs := flag.Int("procs", runtime.NumCPU(), "workers")
	modeName := flag.String("mode", "parmem", "parmem|stw|seq|manticore")
	flag.Parse()

	mode, err := hh.ParseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r := hh.New(hh.WithMode(mode), hh.WithProcs(*procs))
	defer r.Close()

	sorted := hh.Run(r, func(t *hh.Task) bool {
		ok := true
		t.Scoped(func(sc *hh.Scope) {
			// Build the input: size hashed 64-bit values.
			in := sc.Ref(hh.Tabulate(t, *size, *grain,
				func(i int) uint64 { return hh.Hash64(uint64(i)) }))
			out := sc.Ref(msort(t, in.Get(), *grain))

			// Verify the result is sorted.
			prev := uint64(0)
			for i := 0; i < *size; i++ {
				v := t.ReadImmWord(out.Get(), i)
				if v < prev {
					ok = false
					return
				}
				prev = v
			}
		})
		return ok
	})

	st := r.Stats()
	fmt.Printf("msort of %d elements on %d workers (%v): sorted=%v\n",
		*size, r.Procs(), r.Mode(), sorted)
	fmt.Printf("  allocations: %d objects (%d KiB)\n", st.Ops.Allocs, st.Ops.AllocWords*8/1024)
	fmt.Printf("  steals: %d, promotions: %d (pure fork-join data flow promotes nothing)\n",
		st.Steals, st.Ops.Promotions)
	fmt.Printf("  collections: %d, copied %d KiB, GC time %.2fms\n",
		st.GC.Collections, st.GC.WordsCopied*8/1024, float64(st.GCNanos)/1e6)
	if !sorted {
		os.Exit(1)
	}
}
