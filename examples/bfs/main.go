// BFS example: the paper's usp-tree workload — every vertex visit allocates
// a cons cell locally and writes it into a shared ancestor array, forcing a
// promotion. Run it to watch the promotion machinery at work (and why §5
// calls this the pessimal case for coarse-grained promotion locking).
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/rts"
)

func main() {
	vertices := flag.Int("vertices", 1<<13, "graph size (rounded to a power of two)")
	procs := flag.Int("procs", runtime.NumCPU(), "workers")
	flag.Parse()

	b := bench.USPTree()
	sc := bench.Scale{N: *vertices, Grain: 128, Extra: 16}

	for _, mode := range []rts.Mode{rts.Seq, rts.ParMem} {
		p := *procs
		if mode == rts.Seq {
			p = 1
		}
		start := time.Now()
		res := bench.Run(b, rts.DefaultConfig(mode, p), sc)
		fmt.Printf("%-16s procs=%d  run=%8.2fms  total=%8.2fms  checksum=%x\n",
			mode, p, res.Elapsed.Seconds()*1000, time.Since(start).Seconds()*1000, res.Checksum)
		fmt.Printf("  promoting writes: %d, objects copied up: %d (%d KiB), master lookups: %d\n",
			res.Totals.Ops.WritePtrProm, res.Totals.Ops.PromotedObjects,
			res.Totals.Ops.PromotedBytes()/1024, res.Totals.Ops.ReadMutSlow)
	}
	fmt.Println("\nEvery visit promotes a cons cell to the root array's heap; the")
	fmt.Println("path locks serialize otherwise-parallel visits (paper §4.4, §5).")
}
