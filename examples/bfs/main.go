// BFS example: the paper's usp-tree pattern — a parallel search over an
// implicit tree in which every visit allocates a record locally and
// writes it into a shared ancestor array, forcing a promotion. Run it to
// watch the promotion machinery at work (and why §5 calls this the
// pessimal case for coarse-grained promotion locking). Compare -mode
// parmem (promoting writes) with -mode seq (the same writes, no
// hierarchy to entangle).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/hh"
)

func main() {
	buckets := flag.Int("buckets", 64, "frontier buckets (parallel grain is one bucket)")
	visits := flag.Int("visits", 256, "vertices visited per bucket")
	procs := flag.Int("procs", runtime.NumCPU(), "workers")
	modeName := flag.String("mode", "parmem", "parmem|stw|seq|manticore")
	flag.Parse()

	mode, err := hh.ParseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r := hh.New(hh.WithMode(mode), hh.WithProcs(*procs))
	defer r.Close()

	nb, nv := *buckets, *visits
	ok := hh.Run(r, func(t *hh.Task) bool {
		good := true
		t.Scoped(func(sc *hh.Scope) {
			// The shared ancestor: one visit-list head per bucket, living at
			// the root of the hierarchy.
			lists := sc.Ref(t.AllocMut(nb, 0, hh.TagArrPtr))

			// Visit every vertex in parallel, one bucket per leaf task. Each
			// visit allocates its record in the visiting task's leaf heap and
			// links it into the bucket's list — a distant pointer write that
			// entangles the hierarchy and must promote (ParMem), or reaches
			// the shared heap directly (STW/Manticore/Seq).
			hh.ParDo(t, hh.Bind(lists), 0, nb, 1,
				func(t *hh.Task, e *hh.Env, lo, hi int) {
					for b := lo; b < hi; b++ {
						for v := 0; v < nv; v++ {
							t.Scoped(func(s *hh.Scope) {
								head := s.Ref(t.ReadMutPtr(e.Ptr(0), b))
								rec := t.Alloc(1, 1, hh.TagCons)
								t.InitWord(rec, 0, uint64(b)<<32|uint64(v))
								t.InitPtr(rec, 0, head.Get())
								t.WritePtr(e.Ptr(0), b, rec)
							})
						}
					}
				})

			// Validate: every bucket holds its visits in reverse order.
			for b := 0; b < nb; b++ {
				p := t.ReadMutPtr(lists.Get(), b)
				for v := nv - 1; v >= 0; v-- {
					if p.IsNil() || t.ReadImmWord(p, 0) != uint64(b)<<32|uint64(v) {
						good = false
						return
					}
					p = t.ReadImmPtr(p, 0)
				}
				if !p.IsNil() {
					good = false
					return
				}
			}
		})
		return good
	})

	if err := r.CheckDisentangled(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := r.Stats()
	fmt.Printf("visited %d vertices into %d shared lists on %d workers (%v): lists ok=%v\n",
		nb*nv, nb, r.Procs(), r.Mode(), ok)
	fmt.Printf("  promoting writes: %d, objects copied up: %d (%d KiB), master lookups: %d\n",
		st.Ops.WritePtrProm, st.Ops.PromotedObjects,
		st.Ops.PromotedBytes()/1024, st.Ops.ReadMutSlow)
	fmt.Printf("  representative operation: %s\n", st.Ops.Representative())
	if !ok {
		os.Exit(1)
	}
}
