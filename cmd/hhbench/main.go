// Command hhbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	hhbench -table fig10              # pure benchmarks (Figure 10)
//	hhbench -table fig11              # imperative benchmarks (Figure 11)
//	hhbench -table fig12 -procs 2     # speedup series (Figure 12)
//	hhbench -table fig13              # memory consumption (Figure 13)
//	hhbench -table fig9               # representative operations
//	hhbench -table fig8               # operation cost matrix
//	hhbench -table zones              # zone-collection concurrency (parmem)
//	hhbench -table serve              # serving-layer throughput/latency (all systems)
//	hhbench -table net                # open-loop TCP serving via hhserved's front end
//	hhbench -table alloc              # chunk-pool/cache recycling, pool on vs off
//	hhbench -table promote            # write-barrier mix + promotion cost, fast paths on vs off
//	hhbench -table scale -procs 8     # serve throughput and lock tell-tales vs P (parmem)
//	hhbench -table txn                # OCC transactions: abort%/rollback/retries + mixed-criticality p99
//	hhbench -table all                # everything
//	hhbench -bench msort,usp-tree ... # subset of benchmarks
//	hhbench -paper                    # the paper's original problem sizes
//	hhbench -table fig10 -json > BENCH_fig10.json   # machine-readable output
//	hhbench -table all -json -out .   # one BENCH_<table>.json file per table
//
// With -json each table is emitted as one JSON object per line (JSON
// Lines): {"schema","commit","table","title","procs","header","rows",...},
// with the same formatted cells as the text rendering — the stable
// interface for tracking the performance trajectory across commits. With
// -out DIR each table is additionally written to DIR/BENCH_<table>.json
// (the perf-trajectory artifacts CI uploads); "schema" names the layout
// version and "commit" the VCS revision that produced the numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"

	"repro/internal/report"
	"repro/internal/trace"
)

// resolveCommit finds the VCS revision to stamp into emitted tables: the
// binary's embedded build info when present, then git, then "unknown".
func resolveCommit() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		return strings.TrimSpace(string(out))
	}
	return "unknown"
}

func main() {
	table := flag.String("table", "all", "fig8|fig9|fig10|fig11|fig12|fig13|zones|serve|net|alloc|promote|scale|txn|all")
	procs := flag.Int("procs", runtime.NumCPU(), "processor count for the T_P columns")
	reps := flag.Int("reps", 3, "repetitions per measurement (median reported)")
	names := flag.String("bench", "", "comma-separated benchmark subset")
	paper := flag.Bool("paper", false, "use the paper's original problem sizes (slow)")
	iters := flag.Int("fig8-iters", 200_000, "iterations per figure-8 cell")
	jsonOut := flag.Bool("json", false, "emit one JSON object per table (JSON Lines) instead of text")
	outDir := flag.String("out", "", "also write each table to DIR/BENCH_<table>.json")
	commit := flag.String("commit", "", "commit id stamped into tables (default: build info, then git)")
	traceFile := flag.String("trace", "",
		"record a flight-recorder trace of the whole run and write Chrome trace-event JSON here")
	flag.Parse()

	if *traceFile != "" {
		trace.Start(*procs, trace.DefaultBufEvents)
		defer func() {
			if err := trace.WriteFile(*traceFile); err != nil {
				fmt.Fprintf(os.Stderr, "hhbench: writing trace: %v\n", err)
			}
			trace.Stop()
		}()
	}

	opts := report.Options{Procs: *procs, Reps: *reps, Paper: *paper, JSON: *jsonOut,
		OutDir: *outDir, Commit: *commit}
	if opts.Commit == "" {
		opts.Commit = resolveCommit()
	}
	if *names != "" {
		opts.Names = strings.Split(*names, ",")
	}

	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Println()
		}
	}

	w := os.Stdout
	tables := strings.Split(*table, ",")
	for _, tb := range tables {
		switch tb {
		case "fig8":
			run(tb, func() error { return report.Fig8(w, opts, *iters) })
		case "fig9":
			run(tb, func() error { return report.Fig9(w, opts) })
		case "fig10":
			run(tb, func() error { return report.Fig10(w, opts) })
		case "fig11":
			run(tb, func() error { return report.Fig11(w, opts) })
		case "fig12":
			run(tb, func() error { return report.Fig12(w, opts) })
		case "fig13":
			run(tb, func() error { return report.Fig13(w, opts) })
		case "zones":
			run(tb, func() error { return report.ZoneTable(w, opts) })
		case "serve":
			run(tb, func() error { return report.ServeTable(w, opts) })
		case "net":
			run(tb, func() error { return report.NetTable(w, opts) })
		case "alloc":
			run(tb, func() error { return report.AllocTable(w, opts) })
		case "promote":
			run(tb, func() error { return report.PromoteTable(w, opts) })
		case "scale":
			run(tb, func() error { return report.ScaleTable(w, opts) })
		case "txn":
			run(tb, func() error { return report.TxnTable(w, opts) })
		case "all":
			run("fig8", func() error { return report.Fig8(w, opts, *iters) })
			run("fig9", func() error { return report.Fig9(w, opts) })
			run("fig10", func() error { return report.Fig10(w, opts) })
			run("fig11", func() error { return report.Fig11(w, opts) })
			run("fig12", func() error { return report.Fig12(w, opts) })
			run("fig13", func() error { return report.Fig13(w, opts) })
			run("zones", func() error { return report.ZoneTable(w, opts) })
			run("serve", func() error { return report.ServeTable(w, opts) })
			run("net", func() error { return report.NetTable(w, opts) })
			run("alloc", func() error { return report.AllocTable(w, opts) })
			run("promote", func() error { return report.PromoteTable(w, opts) })
			run("scale", func() error { return report.ScaleTable(w, opts) })
			run("txn", func() error { return report.TxnTable(w, opts) })
		default:
			fmt.Fprintf(os.Stderr, "unknown table %q\n", tb)
			os.Exit(2)
		}
	}
}
