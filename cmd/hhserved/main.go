// Command hhserved exposes the hh serving layer over TCP: each RUN
// request a client sends becomes one hh/serve session — a private
// subtree of the heap hierarchy that is reclaimed wholesale the moment
// the request completes — so the server's memory footprint tracks its
// in-flight work, not its history.
//
//	hhserved -addr :7711 -mode parmem -procs 8
//	hhserved -tenants 'gold:prio=0,share=0.8;free:prio=1,share=0.25'
//	hhserved -metrics-addr :7712          # Prometheus /metrics + /healthz
//	hhserved -debug-addr :7713            # net/http/pprof + /debug/trace
//
// With -debug-addr the server exposes Go's pprof endpoints
// (/debug/pprof/...) and the runtime flight recorder: GET
// /debug/trace?sec=N records for N seconds and streams a Perfetto-ready
// Chrome trace-event JSON snapshot of the per-worker event rings
// (tracing is on by default; size the rings with -trace-buf, 0 disables).
//
// The wire protocol is a RESP subset (see hh/serve/netserve): PING,
// HELLO <tenant>, RUN <scenario> <seed> <size>, STATS, QUIT. Overload is
// explicit: a RUN past capacity gets -SHED with a backoff hint instead
// of unbounded queueing.
//
// SIGTERM and SIGINT drain gracefully: new work is shed, accepted
// requests complete and their replies flush, sessions are reclaimed, and
// the process exits 0 only if chunk occupancy returned to its
// post-startup baseline (the wholesale-reclamation property, checked on
// hierarchical modes).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/hh"
	"repro/hh/serve"
	"repro/hh/serve/netserve"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7711", "TCP listen address for the request protocol")
	metricsAddr := flag.String("metrics-addr", "", "HTTP listen address for /metrics and /healthz (empty = disabled)")
	debugAddr := flag.String("debug-addr", "", "HTTP listen address for /debug/pprof and /debug/trace (empty = disabled)")
	traceBuf := flag.Int("trace-buf", trace.DefaultBufEvents, "flight-recorder ring size in events per worker (0 = tracing off)")
	modeName := flag.String("mode", "parmem", "runtime mode: parmem|stw|seq|manticore")
	procs := flag.Int("procs", runtime.NumCPU(), "runtime workers")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent request sessions (0 = procs)")
	queueDepth := flag.Int("queue-depth", -1, "backpressure queue bound (-1 = 4 x max-inflight)")
	budget := flag.Int64("budget", 0, "default per-request allocation budget in words (0 = unlimited)")
	gcMin := flag.Int64("gc-min", 2048, "collection trigger: minimum heap words")
	gcRatio := flag.Float64("gc-ratio", 1.25, "collection trigger: growth ratio")
	tenantSpec := flag.String("tenants", "", "tenant table, e.g. 'gold:prio=0,share=0.8;free:prio=1,share=0.25,budget=1048576'")
	shedFrac := flag.Float64("shed-queue-frac", 0, "queue fraction past which best-effort tenants shed (0 = default 0.75)")
	pipeline := flag.Int("pipeline", 0, "per-connection pending-reply bound (0 = default 32)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM before force-close")
	quiet := flag.Bool("quiet", false, "suppress per-connection diagnostics")
	flag.Parse()

	mode, err := hh.ParseMode(*modeName)
	if err != nil {
		fatal(err)
	}
	var tenants []netserve.TenantConfig
	if *tenantSpec != "" {
		if tenants, err = netserve.ParseTenants(*tenantSpec); err != nil {
			fatal(err)
		}
	}

	if runtime.GOMAXPROCS(0) < *procs {
		runtime.GOMAXPROCS(*procs)
	}
	rtOpts := []hh.Option{hh.WithMode(mode), hh.WithProcs(*procs), hh.WithGCPolicy(*gcMin, *gcRatio)}
	if *traceBuf > 0 {
		rtOpts = append(rtOpts, hh.WithTrace(*traceBuf))
	}
	r := hh.New(rtOpts...)
	baseline := hh.ChunksInUse()
	hierarchical := mode == hh.ParMem || mode == hh.Seq

	srvOpts := []serve.Option{serve.WithSessionBudget(*budget)}
	if *maxInFlight > 0 {
		srvOpts = append(srvOpts, serve.WithMaxInFlight(*maxInFlight))
	}
	if *queueDepth >= 0 {
		srvOpts = append(srvOpts, serve.WithQueueDepth(*queueDepth))
	}
	srv := serve.New(r, srvOpts...)
	mif, qd := srv.Caps()

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	cfg := netserve.Config{
		Resolve:         netserve.LoadResolver(),
		Tenants:         netserve.NewTenantTable(mif+qd, tenants),
		ShedQueueFrac:   *shedFrac,
		PerConnPipeline: *pipeline,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	f := netserve.Serve(lis, srv, cfg)
	fmt.Printf("hhserved: mode=%s procs=%d inflight=%d queue=%d listening on %s\n",
		mode, *procs, mif, qd, f.Addr())

	var msrv interface{ Close() error }
	if *metricsAddr != "" {
		mlis, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			f.Close()
			fatal(err)
		}
		// Stays up through the drain so /healthz flips to 503 "draining"
		// while accepted work finishes; closed just before exit.
		msrv = f.ServeMetrics(mlis)
		fmt.Printf("hhserved: metrics on http://%s/metrics\n", mlis.Addr())
	}

	var dsrv interface{ Close() error }
	if *debugAddr != "" {
		dlis, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			f.Close()
			fatal(err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/trace", trace.Handler())
		hsrv := &http.Server{Handler: mux}
		go hsrv.Serve(dlis)
		dsrv = hsrv
		fmt.Printf("hhserved: debug on http://%s/debug\n", dlis.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	s := <-sig
	fmt.Printf("hhserved: %s, draining (budget %s)\n", s, *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	start := time.Now()
	drainErr := f.Drain(ctx)
	elapsed := time.Since(start).Round(time.Millisecond)

	st := srv.Stats()
	fmt.Printf("hhserved: drained in %s: %d completed, %d failed, %d rejected; p50 %s p99 %s p999 %s\n",
		elapsed, st.Completed, st.Failed, st.Rejected,
		st.LatencyP50.Round(time.Microsecond), st.LatencyP99.Round(time.Microsecond),
		st.LatencyP999.Round(time.Microsecond))

	code := 0
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "hhserved: drain incomplete: %v\n", drainErr)
		code = 1
	}
	// The wholesale-reclamation check: with every session drained, the
	// hierarchy must be back at its post-startup chunk occupancy.
	if got := hh.ChunksInUse(); hierarchical && got != baseline {
		fmt.Fprintf(os.Stderr, "hhserved: LEAK: %d chunks in use after drain, want baseline %d\n",
			got, baseline)
		code = 1
	} else {
		fmt.Printf("hhserved: chunk occupancy back at baseline (%d)\n", baseline)
	}
	if msrv != nil {
		msrv.Close()
	}
	if dsrv != nil {
		dsrv.Close()
	}
	r.Close()
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hhserved:", err)
	os.Exit(2)
}
