// Command hhstress is a failure-injection stress driver: it hammers the
// promotion machinery with concurrent entangling writes under an
// aggressive collection policy, then verifies the disentanglement
// invariant and the published data structures. A clean exit means the
// hierarchy survived; any violation panics with a diagnostic.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/gc"
	"repro/internal/mem"
	"repro/internal/rts"
	"repro/internal/seq"
)

func main() {
	rounds := flag.Int("rounds", 20, "stress rounds")
	slots := flag.Int("slots", 64, "shared list-head slots")
	writes := flag.Int("writes", 400, "writes per slot per round")
	live := flag.Int("live", 1000, "task-local live cells kept across the writes (leaf-zone copy work)")
	procs := flag.Int("procs", runtime.NumCPU(), "workers")
	maxZones := flag.Int("max-zones", 0, "cap on concurrent zone collections (0 = one per worker, 1 = serialized ablation)")
	flag.Parse()
	// The pool simulates *procs processors; give the Go scheduler as many,
	// so disjoint zone collections can actually overlap in wall time.
	runtime.GOMAXPROCS(*procs)

	cfg := rts.DefaultConfig(rts.ParMem, *procs)
	// Failure injection: collect constantly so promotions, collections,
	// and forwarding-chain maintenance interleave as much as possible.
	cfg.Policy = gc.Policy{MinWords: 2048, Ratio: 1.25}
	cfg.MaxConcurrentZones = *maxZones

	var peakZones int64
	for round := 0; round < *rounds; round++ {
		r := rts.New(cfg)
		ok := r.Run(func(t *rts.Task) uint64 {
			arr := t.AllocMut(*slots, 0, mem.TagArrPtr)
			mark := t.PushRoot(&arr)
			nw, nl := *writes, *live
			seq.ParDo(t, arr, 0, *slots, 1,
				func(t *rts.Task, env mem.ObjPtr, lo, hi int) {
					for s := lo; s < hi; s++ {
						// A task-local live list: it is copied by every
						// leaf-zone collection of this task's heap, so
						// collections are substantial enough to overlap
						// with sibling zones and with promotions.
						local := mem.NilPtr
						m := t.PushRoot(&env, &local)
						for i := 0; i < nl; i++ {
							cons := t.Alloc(1, 1, mem.TagCons)
							t.WriteInitWord(cons, 0, uint64(i))
							t.WriteInitPtr(cons, 0, local)
							local = cons
						}
						for i := 0; i < nw; i++ {
							head := t.ReadMutPtr(env, s)
							m2 := t.PushRoot(&head)
							cons := t.Alloc(1, 1, mem.TagCons)
							t.PopRoots(m2)
							t.WriteInitWord(cons, 0, uint64(s)<<32|uint64(i))
							t.WriteInitPtr(cons, 0, head)
							t.WritePtr(env, s, cons)
						}
						for i, p := nl-1, local; i >= 0; i-- {
							if p.IsNil() || t.ReadImmWord(p, 0) != uint64(i) {
								panic("hhstress: task-local live list corrupted")
							}
							p = t.ReadImmPtr(p, 0)
						}
						t.PopRoots(m)
					}
				})
			// Validate every list: full length, descending insertion order.
			for s := 0; s < *slots; s++ {
				p := t.ReadMutPtr(arr, s)
				for i := nw - 1; i >= 0; i-- {
					if p.IsNil() || t.ReadImmWord(p, 0) != uint64(s)<<32|uint64(i) {
						return 0
					}
					p = t.ReadImmPtr(p, 0)
				}
				if !p.IsNil() {
					return 0
				}
			}
			t.PopRoots(mark)
			return 1
		})
		if ok != 1 {
			fmt.Fprintf(os.Stderr, "round %d: DATA CORRUPTION DETECTED\n", round)
			os.Exit(1)
		}
		if err := r.CheckDisentangled(); err != nil {
			fmt.Fprintf(os.Stderr, "round %d: %v\n", round, err)
			os.Exit(1)
		}
		st := r.Stats()
		r.Close()
		if mem.ChunksInUse() != 0 {
			fmt.Fprintf(os.Stderr, "round %d: %d chunks leaked\n", round, mem.ChunksInUse())
			os.Exit(1)
		}
		if st.Zones.MaxConcurrent > peakZones {
			peakZones = st.Zones.MaxConcurrent
		}
		fmt.Printf("round %2d ok: %6d promotions, %4d collections (%d leaf + %d join zones, max %d concurrent, %s overlap), %3d steals, %5d master retries\n",
			round, st.Ops.Promotions, st.GC.Collections,
			st.Zones.LeafZones, st.Zones.JoinZones, st.Zones.MaxConcurrent,
			time.Duration(st.Zones.OverlapNanos).Round(time.Microsecond),
			st.Steals, st.Ops.FindMasterRetries)
	}
	fmt.Printf("stress complete: disentanglement and data integrity held; peak concurrent zones %d\n", peakZones)
}
