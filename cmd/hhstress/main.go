// Command hhstress is a failure-injection stress driver: it hammers the
// promotion machinery with concurrent entangling writes under an
// aggressive collection policy, then verifies the disentanglement
// invariant and the published data structures. A clean exit means the
// hierarchy survived; any violation panics with a diagnostic. Written
// against the public hh API, it doubles as that surface's end-to-end
// acceptance test.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/hh"
)

func main() {
	rounds := flag.Int("rounds", 20, "stress rounds")
	slots := flag.Int("slots", 64, "shared list-head slots")
	writes := flag.Int("writes", 400, "writes per slot per round")
	live := flag.Int("live", 1000, "task-local live cells kept across the writes (leaf-zone copy work)")
	procs := flag.Int("procs", runtime.NumCPU(), "workers")
	maxZones := flag.Int("max-zones", 0, "cap on concurrent zone collections (0 = one per worker, 1 = serialized ablation)")
	flag.Parse()
	// The pool simulates *procs processors; give the Go scheduler as many,
	// so disjoint zone collections can actually overlap in wall time.
	runtime.GOMAXPROCS(*procs)

	// Failure injection: collect constantly so promotions, collections,
	// and forwarding-chain maintenance interleave as much as possible.
	opts := []hh.Option{
		hh.WithMode(hh.ParMem),
		hh.WithProcs(*procs),
		hh.WithGCPolicy(2048, 1.25),
		hh.WithMaxConcurrentZones(*maxZones),
	}

	var peakZones int64
	for round := 0; round < *rounds; round++ {
		r := hh.New(opts...)
		ok := hh.Run(r, func(t *hh.Task) uint64 {
			var good uint64 = 1
			t.Scoped(func(sc *hh.Scope) {
				arr := sc.Ref(t.AllocMut(*slots, 0, hh.TagArrPtr))
				nw, nl := *writes, *live
				hh.ParDo(t, hh.Bind(arr), 0, *slots, 1,
					func(t *hh.Task, e *hh.Env, lo, hi int) {
						for s := lo; s < hi; s++ {
							t.Scoped(func(ls *hh.Scope) {
								// A task-local live list: it is copied by every
								// leaf-zone collection of this task's heap, so
								// collections are substantial enough to overlap
								// with sibling zones and with promotions.
								local := ls.Ref(hh.Nil)
								for i := 0; i < nl; i++ {
									cons := t.Alloc(1, 1, hh.TagCons)
									t.InitWord(cons, 0, uint64(i))
									t.InitPtr(cons, 0, local.Get())
									local.Set(cons)
								}
								for i := 0; i < nw; i++ {
									t.Scoped(func(ws *hh.Scope) {
										head := ws.Ref(t.ReadMutPtr(e.Ptr(0), s))
										cons := t.Alloc(1, 1, hh.TagCons)
										t.InitWord(cons, 0, uint64(s)<<32|uint64(i))
										t.InitPtr(cons, 0, head.Get())
										t.WritePtr(e.Ptr(0), s, cons)
									})
								}
								for i, p := nl-1, local.Get(); i >= 0; i-- {
									if p.IsNil() || t.ReadImmWord(p, 0) != uint64(i) {
										panic("hhstress: task-local live list corrupted")
									}
									p = t.ReadImmPtr(p, 0)
								}
							})
						}
					})
				// Validate every list: full length, descending insertion order.
				for s := 0; s < *slots; s++ {
					p := t.ReadMutPtr(arr.Get(), s)
					for i := nw - 1; i >= 0; i-- {
						if p.IsNil() || t.ReadImmWord(p, 0) != uint64(s)<<32|uint64(i) {
							good = 0
							return
						}
						p = t.ReadImmPtr(p, 0)
					}
					if !p.IsNil() {
						good = 0
						return
					}
				}
			})
			return good
		})
		if ok != 1 {
			fmt.Fprintf(os.Stderr, "round %d: DATA CORRUPTION DETECTED\n", round)
			os.Exit(1)
		}
		if err := r.CheckDisentangled(); err != nil {
			fmt.Fprintf(os.Stderr, "round %d: %v\n", round, err)
			os.Exit(1)
		}
		st := r.Stats()
		r.Close()
		if hh.ChunksInUse() != 0 {
			fmt.Fprintf(os.Stderr, "round %d: %d chunks leaked\n", round, hh.ChunksInUse())
			os.Exit(1)
		}
		if st.Zones.MaxConcurrent > peakZones {
			peakZones = st.Zones.MaxConcurrent
		}
		fmt.Printf("round %2d ok: %6d promotions, %4d collections (%d leaf + %d join zones, max %d concurrent, %s overlap), %3d steals, %5d master retries\n",
			round, st.Ops.Promotions, st.GC.Collections,
			st.Zones.LeafZones, st.Zones.JoinZones, st.Zones.MaxConcurrent,
			time.Duration(st.Zones.OverlapNanos).Round(time.Microsecond),
			st.Steals, st.Ops.FindMasterRetries)
	}
	fmt.Printf("stress complete: disentanglement and data integrity held; peak concurrent zones %d\n", peakZones)
}
