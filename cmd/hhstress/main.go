// Command hhstress is a failure-injection stress driver: it hammers the
// promotion machinery with concurrent entangling writes under an
// aggressive collection policy, then verifies the disentanglement
// invariant and the published data structures. A clean exit means the
// hierarchy survived; any violation panics with a diagnostic.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/gc"
	"repro/internal/mem"
	"repro/internal/rts"
	"repro/internal/seq"
)

func main() {
	rounds := flag.Int("rounds", 20, "stress rounds")
	slots := flag.Int("slots", 64, "shared list-head slots")
	writes := flag.Int("writes", 400, "writes per slot per round")
	procs := flag.Int("procs", runtime.NumCPU(), "workers")
	flag.Parse()

	cfg := rts.DefaultConfig(rts.ParMem, *procs)
	// Failure injection: collect constantly so promotions, collections,
	// and forwarding-chain maintenance interleave as much as possible.
	cfg.Policy = gc.Policy{MinWords: 2048, Ratio: 1.25}

	for round := 0; round < *rounds; round++ {
		r := rts.New(cfg)
		ok := r.Run(func(t *rts.Task) uint64 {
			arr := t.AllocMut(*slots, 0, mem.TagArrPtr)
			mark := t.PushRoot(&arr)
			nw := *writes
			seq.ParDo(t, arr, 0, *slots, 1,
				func(t *rts.Task, env mem.ObjPtr, lo, hi int) {
					for s := lo; s < hi; s++ {
						for i := 0; i < nw; i++ {
							head := t.ReadMutPtr(env, s)
							m := t.PushRoot(&env, &head)
							cons := t.Alloc(1, 1, mem.TagCons)
							t.PopRoots(m)
							t.WriteInitWord(cons, 0, uint64(s)<<32|uint64(i))
							t.WriteInitPtr(cons, 0, head)
							t.WritePtr(env, s, cons)
						}
					}
				})
			// Validate every list: full length, descending insertion order.
			for s := 0; s < *slots; s++ {
				p := t.ReadMutPtr(arr, s)
				for i := nw - 1; i >= 0; i-- {
					if p.IsNil() || t.ReadImmWord(p, 0) != uint64(s)<<32|uint64(i) {
						return 0
					}
					p = t.ReadImmPtr(p, 0)
				}
				if !p.IsNil() {
					return 0
				}
			}
			t.PopRoots(mark)
			return 1
		})
		if ok != 1 {
			fmt.Fprintf(os.Stderr, "round %d: DATA CORRUPTION DETECTED\n", round)
			os.Exit(1)
		}
		if err := r.CheckDisentangled(); err != nil {
			fmt.Fprintf(os.Stderr, "round %d: %v\n", round, err)
			os.Exit(1)
		}
		st := r.Stats()
		r.Close()
		if mem.ChunksInUse() != 0 {
			fmt.Fprintf(os.Stderr, "round %d: %d chunks leaked\n", round, mem.ChunksInUse())
			os.Exit(1)
		}
		fmt.Printf("round %2d ok: %6d promotions, %4d collections, %3d steals, %5d master retries\n",
			round, st.Ops.Promotions, st.GC.Collections, st.Steals, st.Ops.FindMasterRetries)
	}
	fmt.Println("stress complete: disentanglement and data integrity held")
}
