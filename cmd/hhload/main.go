// Command hhload is the closed-loop load generator for the serving layer:
// N client goroutines drive a weighted scenario mix (kv-churn, bfs query,
// histogram, fan-out publish, OCC transactions, stream windows, rank
// analytics) through an hh/serve.Server, each request running as its own
// root-level session that is reclaimed wholesale at completion.
//
//	hhload -mode all -procs 4 -sessions 8 -requests 96
//	hhload -mode parmem -mix fan=1 -promote-buffer 1   # batching ablation
//	hhload -mode all -nofastpath                       # barrier ablation
//	hhload -mode all -deferred                         # lazy-promotion barrier
//	hhload -mode all -mix txn=2,stream=1,rank=1 -txn-keys 16
//	                                                   # transactional/streaming/analytics mix
//	hhload -mode all -procs-sweep 2,8 -mix kv=2,bfs=1,hist=1,fan=1
//	                                                   # high-P cross-validation
//
// For every runtime mode it reports serving statistics (throughput,
// latency quantiles, peak concurrency), the runtime's session,
// zone-concurrency, allocator, and write-barrier counters, plus — when the
// mix includes transactions — the abort rate, wholesale-rollback bytes,
// and retry latency. It FAILS (exit 1) if any request
// miscomputes, if the per-request checksum stream diverges between modes
// (or, with -procs-sweep, between any mode at any P and the first run),
// if chunk occupancy does not return to baseline after Drain, if the txn
// serializability oracle rejects a committed schedule, or if parmem
// never collected two session subtrees concurrently (disable with
// -min-zone-sessions 0).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/hh"
	"repro/hh/serve"
	"repro/internal/load"
	"repro/internal/trace"
)

func main() {
	modeName := flag.String("mode", "all", "parmem|stw|seq|manticore|all")
	procs := flag.Int("procs", runtime.NumCPU(), "workers per runtime")
	sessions := flag.Int("sessions", 8, "concurrent client sessions (served in-flight cap)")
	requests := flag.Int("requests", 96, "total requests per mode")
	size := flag.Int("size", 1200, "work per request (elements)")
	mixSpec := flag.String("mix", "kv=2,bfs=1,hist=1",
		"weighted scenario mix (kv|bfs|hist|fan|txn|stream|rank)")
	txnKeys := flag.Int("txn-keys", 0, "txn scenario: shared-store key count (0 = default 64; smaller = more conflicts)")
	streamWindow := flag.Int("stream-window", 0, "stream scenario: ring slots per partition window (0 = default 8)")
	rankIters := flag.Int("rank-iters", 0, "rank scenario: PageRank sweeps per request (0 = default 4)")
	budget := flag.Int64("budget", 0, "per-session allocation budget in words (0 = unlimited)")
	gcMin := flag.Int64("gc-min", 2048, "collection trigger: minimum heap words")
	gcRatio := flag.Float64("gc-ratio", 1.25, "collection trigger: growth ratio")
	minZoneSessions := flag.Int64("min-zone-sessions", 2,
		"fail unless parmem observes this many sessions collecting concurrently (0 = off)")
	noPool := flag.Bool("nopool", false, "disable the chunk pool / worker caches (recycling ablation)")
	noFast := flag.Bool("nofastpath", false,
		"force every pointer write through the master-copy lookup (barrier fast-path ablation)")
	deferred := flag.Bool("deferred", false,
		"pin-and-remember instead of eager promotion (parmem only; the checksum must match the eager modes)")
	promoteBuf := flag.Int("promote-buffer", 0,
		"staged pointees per promotion lock climb (0 = default 32, 1 = no batching)")
	procsSweep := flag.String("procs-sweep", "",
		"comma-separated worker counts; run every mode at each P and require one checksum (overrides -procs)")
	traceFile := flag.String("trace", "",
		"record a flight-recorder trace of the whole run and write Chrome trace-event JSON here (load in Perfetto)")
	flag.Parse()

	// With -procs-sweep the request stream is fixed while P varies, so the
	// checksum comparison proves the systems compute the same answers at
	// high P as at the P=2 baseline.
	sweep := []int{*procs}
	if *procsSweep != "" {
		sweep = sweep[:0]
		for _, f := range strings.Split(*procsSweep, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || p < 1 {
				fmt.Fprintf(os.Stderr, "bad -procs-sweep entry %q\n", f)
				os.Exit(2)
			}
			sweep = append(sweep, p)
		}
	}
	maxP := 0
	for _, p := range sweep {
		if p > maxP {
			maxP = p
		}
	}

	// The pool simulates up to maxP processors; give the Go scheduler at
	// least as many, so disjoint session collections can overlap in wall
	// time even when the host has fewer cores.
	if runtime.GOMAXPROCS(0) < maxP {
		runtime.GOMAXPROCS(maxP)
	}

	params := load.Params{TxnKeys: *txnKeys, StreamWindow: *streamWindow, RankIters: *rankIters}
	mix, err := load.ParseMixWith(params, *mixSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var modes []hh.Mode
	if *modeName == "all" {
		modes = hh.Modes
	} else {
		m, err := hh.ParseMode(*modeName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		modes = []hh.Mode{m}
	}

	// The command owns the recorder (not each short-lived runtime), so one
	// trace spans every mode and P of the run.
	if *traceFile != "" {
		trace.Start(maxP, trace.DefaultBufEvents)
	}

	failed := false
	var refSum uint64
	var refRun string
	for _, p := range sweep {
		if len(sweep) > 1 {
			fmt.Printf("== P=%d ==\n", p)
		}
		for _, mode := range modes {
			sum, ok := driveMode(mode, p, *sessions, *requests, *size, mix, *budget,
				*gcMin, *gcRatio, *minZoneSessions, *noPool, *noFast, *deferred, *promoteBuf)
			if !ok {
				failed = true
			}
			// Every mode must hand all chunks back once its runtime closes.
			if got := hh.ChunksInUse(); got != 0 {
				fmt.Fprintf(os.Stderr, "%s: LEAK: %d chunks in use after Close\n", mode, got)
				failed = true
			}
			run := fmt.Sprintf("%s@P=%d", mode, p)
			if refRun == "" {
				refSum, refRun = sum, run
			} else if sum != refSum {
				fmt.Fprintf(os.Stderr, "CHECKSUM DIVERGENCE: %s total %x, %s total %x\n",
					run, sum, refRun, refSum)
				failed = true
			}
		}
	}
	if *traceFile != "" {
		if err := trace.WriteFile(*traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "hhload: writing trace: %v\n", err)
			failed = true
		} else {
			fmt.Printf("hhload: trace written to %s\n", *traceFile)
		}
		trace.Stop()
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("hhload ok: %d requests x %d mode(s) x %d proc count(s), stream checksum %x\n",
		*requests, len(modes), len(sweep), refSum)
}

// driveMode runs one closed loop against one runtime mode and returns the
// order-independent checksum of the whole request stream.
func driveMode(mode hh.Mode, procs, sessions, requests, size int, mix load.Mix,
	budget, gcMin int64, gcRatio float64, minZoneSessions int64,
	noPool, noFast, deferred bool, promoteBuf int) (uint64, bool) {

	opts := []hh.Option{hh.WithMode(mode), hh.WithProcs(procs), hh.WithGCPolicy(gcMin, gcRatio)}
	if noPool {
		opts = append(opts, hh.WithoutChunkPool())
	}
	if noFast {
		opts = append(opts, hh.WithoutBarrierFastPath())
	}
	if deferred {
		opts = append(opts, hh.WithDeferredPromotion()) // ignored outside ParMem
	}
	if promoteBuf != 0 {
		opts = append(opts, hh.WithPromoteBufferObjects(promoteBuf))
	}
	r := hh.New(opts...)
	defer r.Close()
	base := hh.ChunksInUse()
	hierarchical := mode == hh.ParMem || mode == hh.Seq

	srv := serve.New(r,
		serve.WithMaxInFlight(sessions),
		serve.WithQueueDepth(2*sessions),
		serve.WithSessionBudget(budget))

	ok := true
	res := load.Drive(srv, mix, sessions, requests, size,
		func(idx int64, scenario string, err error) {
			fmt.Fprintf(os.Stderr, "%s: request %d (%s) failed: %v\n", mode, idx, scenario, err)
		})

	st := srv.Stats()
	rt := r.Stats()
	fmt.Printf("%-18s %5d req in %8s  %7.1f req/s  p50 %-9s p99 %-9s max %-9s peak %d inflight\n",
		mode.String()+":", st.Completed, res.Elapsed.Round(time.Millisecond), st.Throughput,
		st.LatencyP50.Round(time.Microsecond), st.LatencyP99.Round(time.Microsecond),
		st.LatencyMax.Round(time.Microsecond), st.PeakInFlight)
	fmt.Printf("    sessions: peak %d live, %d KiB reclaimed wholesale, %d KiB merged; %d steals, %d promotions\n",
		rt.Sessions.PeakLive, rt.Sessions.WholesaleBytes>>10, rt.Sessions.MergedBytes>>10,
		rt.Steals, rt.Ops.Promotions)
	fmt.Printf("    zones: %d total (%d session-tagged), peak %d concurrent, peak %d sessions collecting, %s overlap\n",
		rt.Zones.Zones, rt.Zones.SessionZones, rt.Zones.MaxConcurrent,
		rt.Zones.MaxConcurrentSessions, time.Duration(rt.Zones.OverlapNanos).Round(time.Microsecond))
	done := st.Finished()
	if done == 0 {
		done = 1
	}
	fmt.Printf("    alloc: %d chunks (%.0f%% cache, %.0f%% pool, %d fresh), %d dirops (%.2f/req), %d KiB pooled\n",
		rt.Alloc.Acquires+rt.Alloc.Oversize, 100*rt.Alloc.CacheHitRate(), 100*rt.Alloc.PoolHitRate(),
		rt.Alloc.FreshChunks+rt.Alloc.Oversize, rt.Alloc.DirIDOps,
		float64(rt.Alloc.DirIDOps)/float64(done), rt.Alloc.PooledBytes>>10)
	ops := rt.Ops
	if pw := ops.PtrWrites(); pw > 0 {
		wPerClimb := 0.0
		if ops.PromoteClimbs > 0 {
			wPerClimb = float64(ops.WritePtrProm) / float64(ops.PromoteClimbs)
		}
		fmt.Printf("    barrier: %d ptr writes (%.0f%% fast, %.0f%% anc, %.0f%% find, %.0f%% prom); "+
			"%d KiB promoted in %d climbs (%.2f writes/climb, lock depth %.2f)\n",
			pw,
			100*float64(ops.WritePtrFast)/float64(pw),
			100*float64(ops.WritePtrAncestor)/float64(pw),
			100*float64(ops.WritePtrNonProm)/float64(pw),
			100*float64(ops.WritePtrProm)/float64(pw),
			ops.PromotedBytes()>>10, ops.PromoteClimbs, wPerClimb, ops.MeanClimbDepth())
	}
	if res.Commits+res.Aborts > 0 {
		rollbackPerTxn := int64(0)
		if res.Aborts > 0 {
			rollbackPerTxn = res.RolledBackBytes / res.Aborts
		}
		retryLat := time.Duration(0)
		if res.Retries > 0 {
			retryLat = time.Duration(res.RetryNanos / res.Retries)
		}
		fmt.Printf("    txn: %d commits, %d aborts (%.1f%%), %d retries, %d B/txn rolled back wholesale, %s mean retry latency\n",
			res.Commits, res.Aborts, 100*res.AbortRate(), res.Retries,
			rollbackPerTxn, retryLat.Round(time.Microsecond))
	}
	if d := rt.Deferred; d.Pins > 0 {
		died := d.DrainDied + d.JoinElided + d.ReleaseDrop + d.GCResolved
		fmt.Printf("    deferred: %d pins (%d refreshed, %d second-touch); %d died uncopied (%.0f%%), %d drain-promoted, %d live\n",
			d.Pins, d.Refreshed, d.SecondTouch, died, 100*float64(died)/float64(d.Pins),
			d.DrainPromoted, d.Live)
		// Every pin must be resolved exactly once by the time the loop drains;
		// a live entry here would pin a chunk of a completed session.
		if !d.Balanced() || d.Live != 0 {
			fmt.Fprintf(os.Stderr, "%s: pin accounting does not balance after drain: %+v\n", mode, d)
			ok = false
		}
	}

	if res.Failures > 0 {
		ok = false
	}
	if res.OracleErr != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", mode, res.OracleErr)
		ok = false
	}
	if err := r.CheckDisentangled(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", mode, err)
		ok = false
	}
	// Post-drain baseline is the wholesale-reclamation property, so it is a
	// hierarchical-mode check: flat-mode sessions leave their garbage in the
	// shared worker heaps until the next collection or Close (main re-checks
	// every mode for zero chunks after Close).
	if got := hh.ChunksInUse(); hierarchical && got != base {
		fmt.Fprintf(os.Stderr, "%s: LEAK: %d chunks in use after drain, want baseline %d\n", mode, got, base)
		ok = false
	}
	if st.PeakInFlight < sessions && st.Completed >= int64(2*sessions) {
		// Advisory only: with clients == MaxInFlight a slot frees between a
		// completion and that client's next submit, so a heavily serialized
		// host (1 core, race detector) can legitimately never catch all
		// clients in flight at one instant.
		fmt.Fprintf(os.Stderr, "%s: note: closed loop did not saturate: peak in-flight %d < %d\n",
			mode, st.PeakInFlight, sessions)
	}
	if mode == hh.ParMem && minZoneSessions > 0 && rt.Zones.MaxConcurrentSessions < minZoneSessions {
		fmt.Fprintf(os.Stderr, "parmem: only %d session(s) observed collecting concurrently, want >= %d\n",
			rt.Zones.MaxConcurrentSessions, minZoneSessions)
		ok = false
	}
	return res.Checksum, ok
}
