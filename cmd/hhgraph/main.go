// Command hhgraph inspects the synthetic graph generator that stands in
// for the paper's orkut dataset: vertex/edge counts, degree distribution
// skew, connectivity, and the BFS round structure (diameter).
package main

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/graph"
)

func main() {
	n := flag.Int("n", 1<<16, "vertices (rounded to a power of two)")
	deg := flag.Int("deg", 16, "average RMAT degree")
	seed := flag.Uint64("seed", 9, "generator seed")
	flag.Parse()

	g := graph.Generate(graph.Spec{N: *n, AvgDeg: *deg, Seed: *seed})
	fmt.Printf("graph: %d vertices, %d directed edges (avg degree %.1f)\n",
		g.N, g.Edges(), float64(g.Edges())/float64(g.N))

	degrees := make([]int, g.N)
	for v, adj := range g.Adj {
		degrees[v] = len(adj)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degrees)))
	fmt.Printf("degree skew: max=%d p99=%d median=%d\n",
		degrees[0], degrees[g.N/100], degrees[g.N/2])

	dist := graph.RefBFS(g, 0)
	reached := 0
	rounds := map[int32]int{}
	maxD := int32(0)
	for _, d := range dist {
		if d >= 0 {
			reached++
			rounds[d]++
			if d > maxD {
				maxD = d
			}
		}
	}
	fmt.Printf("reachable from 0: %d/%d, eccentricity(0) = %d (orkut's diameter is 9)\n",
		reached, g.N, maxD)
	fmt.Println("frontier sizes per BFS round:")
	for d := int32(0); d <= maxD; d++ {
		fmt.Printf("  round %2d: %d\n", d, rounds[d])
	}
}
