// Command hhshoot is the open-loop load generator for hhserved. Unlike
// hhload's closed loop (which waits for each reply before sending the
// next request, letting a slow server quietly throttle its own load),
// hhshoot fixes every request's send time in advance from an arrival
// shape and charges latency from that INTENDED time — the
// coordinated-omission-safe measurement: server queueing delay shows up
// in the percentiles instead of silently thinning the arrival stream.
//
//	hhshoot -addr 127.0.0.1:7711 -shape steady:2000 -requests 10000
//	hhshoot -shape burst:500:8000:1s:200ms      # force shedding
//	hhshoot -shape diurnal:200:4000:10s
//	hhshoot -retry-shed -requests 5000          # checksum-parity runs
//
// Shed requests are reported (count + rate), not retried, unless
// -retry-shed is set — parity runs need the full request set served, so
// there each shed request backs off as the server hinted and retries
// until accepted, with the wait still charged from its intended time.
//
// Exit status: 0 on success, 1 if any request errored (or, with
// -max-shed-rate, if too many were shed).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/hh/serve/netserve"
	"repro/internal/load"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7711", "hhserved address")
	shapeSpec := flag.String("shape", "steady:2000",
		"arrival shape: steady:<rate> | burst:<base>:<peak>:<period>:<burstlen> | diurnal:<min>:<max>:<period>")
	requests := flag.Int("requests", 10000, "total requests")
	conns := flag.Int("conns", 16, "client connections (streams)")
	scenario := flag.String("scenario", "kv", "scenario name (kv|bfs|hist|fan)")
	size := flag.Int("size", 600, "work per request (elements)")
	tenant := flag.String("tenant", "", "tenant name sent via HELLO (empty = default tenant)")
	retryShed := flag.Bool("retry-shed", false,
		"retry shed requests after the server's backoff hint until accepted (for checksum parity)")
	maxShedRate := flag.Float64("max-shed-rate", -1,
		"fail if the shed fraction exceeds this (-1 = never fail on sheds)")
	jsonOut := flag.Bool("json", false, "emit the result as JSON on stdout")
	traceFile := flag.String("trace", "",
		"record client-side request spans (one track per connection) and write Chrome trace-event JSON here")
	flag.Parse()

	shape, err := load.ParseShape(*shapeSpec)
	if err != nil {
		fatal(err)
	}

	// One connection per stream, dialed up front so dial latency is not
	// charged to the first requests.
	clients := make([]*netserve.Client, *conns)
	for i := range clients {
		c, err := netserve.Dial(*addr)
		if err != nil {
			fatal(fmt.Errorf("dial %s: %w", *addr, err))
		}
		defer c.Close()
		if *tenant != "" {
			if rep, err := c.Do("HELLO", *tenant); err != nil || rep.IsError() {
				fatal(fmt.Errorf("HELLO %s: %v %s", *tenant, err, rep.Str))
			}
		}
		clients[i] = c
	}

	if *traceFile != "" {
		trace.Start(*conns, trace.DefaultBufEvents)
	}

	res := load.OpenLoop(*requests, *conns, shape, func(stream int, i uint64) load.OpenOutcome {
		c := clients[stream]
		// One client-side request span per attempt chain, on the stream's
		// track: end aux encodes the outcome (0 ok, 1 shed, 2 error).
		span := trace.Begin(stream, trace.EvRequest, 0, i)
		for {
			sum, shed, backoff, err := c.Run(*scenario, i+1, *size)
			if err != nil {
				trace.End(stream, trace.EvRequest, span, 2, i)
				return load.OpenOutcome{Err: err}
			}
			if !shed {
				trace.End(stream, trace.EvRequest, span, 0, i)
				return load.OpenOutcome{OK: true, Checksum: sum}
			}
			if !*retryShed {
				trace.End(stream, trace.EvRequest, span, 1, i)
				return load.OpenOutcome{Shed: true}
			}
			if backoff <= 0 {
				backoff = time.Millisecond
			}
			time.Sleep(backoff)
		}
	})

	if *traceFile != "" {
		if err := trace.WriteFile(*traceFile); err != nil {
			fatal(fmt.Errorf("writing trace: %w", err))
		}
		trace.Stop()
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"shape":      shape.String(),
			"requests":   res.Sent,
			"ok":         res.OK,
			"shed":       res.Shed,
			"errors":     res.Errors,
			"shed_rate":  res.ShedRate(),
			"checksum":   fmt.Sprintf("%016x", res.Checksum),
			"elapsed_s":  res.Elapsed.Seconds(),
			"rps":        res.Throughput(),
			"p50_ms":     ms(res.Hist.Quantile(0.50)),
			"p99_ms":     ms(res.Hist.Quantile(0.99)),
			"p999_ms":    ms(res.Hist.Quantile(0.999)),
			"max_ms":     ms(res.Hist.Max()),
			"late_sends": res.LateStarts,
		})
	} else {
		fmt.Printf("hhshoot %s: %d req in %s (%.1f req/s achieved), %d ok, %d shed (%.1f%%), %d errors\n",
			shape, res.Sent, res.Elapsed.Round(time.Millisecond), res.Throughput(),
			res.OK, res.Shed, 100*res.ShedRate(), res.Errors)
		fmt.Printf("  intended-time latency: p50 %s  p99 %s  p999 %s  max %s\n",
			res.Hist.Quantile(0.50).Round(time.Microsecond),
			res.Hist.Quantile(0.99).Round(time.Microsecond),
			res.Hist.Quantile(0.999).Round(time.Microsecond),
			res.Hist.Max().Round(time.Microsecond))
		fmt.Printf("  stream checksum %016x", res.Checksum)
		if res.LateStarts > 0 {
			fmt.Printf("  (%d late sends: generator behind schedule, add -conns)", res.LateStarts)
		}
		fmt.Println()
	}

	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "hhshoot: %d request errors\n", res.Errors)
		os.Exit(1)
	}
	if *maxShedRate >= 0 && res.ShedRate() > *maxShedRate {
		fmt.Fprintf(os.Stderr, "hhshoot: shed rate %.3f exceeds -max-shed-rate %.3f\n",
			res.ShedRate(), *maxShedRate)
		os.Exit(1)
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hhshoot:", err)
	os.Exit(2)
}
