// Package repro is a Go reproduction of "Hierarchical Memory Management
// for Mutable State" (Guatto, Westrick, Raghunathan, Acar, Fluet;
// PPoPP 2018).
//
// The public API is package hh: a typed, scope-safe façade — generic
// Run/Fork2/ForkN, functional-option runtimes, lexically scoped GC roots
// (Ref/Scope), and concurrent root-level sessions (Submit/Wait with
// wholesale reclamation) — over the engine layers. Package hh/serve adds
// the serving policy (admission control, backpressure, budgets, latency
// stats) for running many simultaneous requests on one runtime. Start
// there; the examples/ programs are written against hh and double as its
// acceptance tests.
//
// The engine lives under internal/: the simulated managed-memory
// substrate (mem), hierarchical heaps (heap), the paper's promotion
// algorithms (core), promotion-aware semispace collection with the
// concurrent zone scheduler (gc), the work-stealing scheduler (sched),
// the four runtime systems of the evaluation (rts), the sequence and
// graph substrates (seq, graph), the 17-benchmark suite (bench), and the
// table/figure regeneration layer (report). See README.md for a guided
// tour and DESIGN.md for the system inventory.
//
// The root package holds the testing.B benchmarks that regenerate the
// paper's tables (bench_test.go) and the example smoke tests; run them
// with
//
//	go test -bench=. -benchmem .
package repro
