// Package repro is a Go reproduction of "Hierarchical Memory Management
// for Mutable State" (Guatto, Westrick, Raghunathan, Acar, Fluet;
// PPoPP 2018).
//
// The library lives under internal/: the simulated managed-memory
// substrate (mem), hierarchical heaps (heap), the paper's promotion
// algorithms (core), promotion-aware semispace collection (gc), the
// work-stealing scheduler (sched), the four runtime systems of the
// evaluation (rts), the sequence and graph substrates (seq, graph), the
// 17-benchmark suite (bench), and the table/figure regeneration layer
// (report). See README.md for a guided tour and DESIGN.md for the system
// inventory and experiment index.
//
// The root package holds the testing.B benchmarks that regenerate the
// paper's tables (bench_test.go); run them with
//
//	go test -bench=. -benchmem .
package repro
