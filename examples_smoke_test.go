package repro

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesSmoke builds every example program once and executes it
// against all four runtime systems at small problem sizes, asserting its
// success marker. The examples are the public hh API's acceptance tests:
// drift in that surface fails this test (and CI) instead of silently
// rotting the documentation.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test compiles and runs subprocesses")
	}
	examples := []struct {
		dir    string
		args   []string
		expect string
	}{
		{"quickstart", []string{"-size", "16384", "-grain", "256"}, "sorted=true"},
		{"histogram", []string{"-n", "65536", "-bins", "64"}, "all counted: true"},
		{"tournament", []string{"-n", "8192", "-grain", "128"}, "champion ok=true"},
		{"bfs", []string{"-buckets", "16", "-visits", "64"}, "lists ok=true"},
	}
	modes := []string{"parmem", "stw", "seq", "manticore"}
	tmp := t.TempDir()
	for _, ex := range examples {
		bin := filepath.Join(tmp, ex.dir)
		if out, err := exec.Command("go", "build", "-o", bin, "./examples/"+ex.dir).CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", ex.dir, err, out)
		}
		for _, mode := range modes {
			t.Run(ex.dir+"/"+mode, func(t *testing.T) {
				args := append([]string{"-mode", mode, "-procs", "2"}, ex.args...)
				out, err := exec.Command(bin, args...).CombinedOutput()
				if err != nil {
					t.Fatalf("%s %v: %v\n%s", ex.dir, args, err, out)
				}
				if !strings.Contains(string(out), ex.expect) {
					t.Fatalf("%s %v: output missing %q:\n%s", ex.dir, args, ex.expect, out)
				}
			})
		}
	}
}
