package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/mem"
	"repro/internal/rts"
)

// Benchmark scales: smaller than the hhbench defaults so a full
// `go test -bench=.` sweep stays tractable, large enough that the paper's
// relative shape is visible.
func benchScale(name string) bench.Scale {
	switch name {
	case "fib":
		return bench.Scale{N: 32, Grain: 20}
	case "tabulate", "map", "reduce", "filter":
		return bench.Scale{N: 1 << 19, Grain: 1 << 10}
	case "msort-pure", "msort":
		return bench.Scale{N: 1 << 16, Grain: 1 << 10}
	case "dedup":
		return bench.Scale{N: 1 << 16, Grain: 1 << 10, Extra: 10}
	case "dmm":
		return bench.Scale{N: 96, Grain: 1}
	case "smvm":
		return bench.Scale{N: 1000, Grain: 1, Extra: 100}
	case "strassen":
		return bench.Scale{N: 128, Grain: 32}
	case "raytracer":
		return bench.Scale{N: 128, Grain: 300}
	case "tourney":
		return bench.Scale{N: 1 << 17, Grain: 1 << 10}
	case "reachability", "usp":
		return bench.Scale{N: 1 << 14, Grain: 128, Extra: 16}
	case "usp-tree":
		return bench.Scale{N: 1 << 12, Grain: 128, Extra: 16}
	case "multi-usp-tree":
		return bench.Scale{N: 1 << 11, Grain: 128, Extra: 4}
	default:
		return bench.Scale{N: 1 << 14, Grain: 256}
	}
}

// runTableBenchmarks drives one paper table: every benchmark × system ×
// processor count, reporting GC share and promoted bytes as metrics.
func runTableBenchmarks(b *testing.B, pure bool) {
	maxProcs := runtime.NumCPU()
	for _, bm := range bench.All() {
		if bm.Pure != pure {
			continue
		}
		systems := []rts.Mode{rts.Seq, rts.STW, rts.ParMem}
		if bm.Pure {
			systems = []rts.Mode{rts.Seq, rts.STW, rts.Manticore, rts.ParMem}
		}
		for _, mode := range systems {
			procsList := []int{1, maxProcs}
			if mode == rts.Seq || maxProcs == 1 {
				procsList = []int{1}
			}
			for _, procs := range procsList {
				name := fmt.Sprintf("%s/%s/p%d", bm.Name, mode, procs)
				b.Run(name, func(b *testing.B) {
					sc := benchScale(bm.Name)
					var last bench.Result
					for i := 0; i < b.N; i++ {
						last = bench.Run(bm, rts.DefaultConfig(mode, procs), sc)
					}
					b.ReportMetric(100*last.GCFraction(), "gc%")
					b.ReportMetric(float64(last.Totals.Ops.PromotedBytes()), "promoted-B")
					b.ReportMetric(float64(last.Totals.PeakMem)/(1<<20), "peak-MB")
				})
			}
		}
	}
}

// BenchmarkFig10 regenerates the pure-benchmark table (paper Figure 10).
func BenchmarkFig10(b *testing.B) { runTableBenchmarks(b, true) }

// BenchmarkFig11 regenerates the imperative-benchmark table (Figure 11).
func BenchmarkFig11(b *testing.B) { runTableBenchmarks(b, false) }

// BenchmarkFig12 regenerates the parmem speedup-versus-processors series.
func BenchmarkFig12(b *testing.B) {
	for _, name := range []string{"fib", "reduce", "msort", "tourney", "usp", "usp-tree"} {
		bm, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for procs := 1; procs <= runtime.NumCPU(); procs++ {
			b.Run(fmt.Sprintf("%s/p%d", name, procs), func(b *testing.B) {
				sc := benchScale(name)
				for i := 0; i < b.N; i++ {
					bench.Run(bm, rts.DefaultConfig(rts.ParMem, procs), sc)
				}
			})
		}
	}
}

// BenchmarkFig13 regenerates the memory-consumption comparison: the
// reported metric of interest is peak-MB per system.
func BenchmarkFig13(b *testing.B) {
	for _, name := range []string{"map", "msort", "tourney", "usp-tree"} {
		bm, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		systems := []rts.Mode{rts.Seq, rts.STW, rts.ParMem}
		for _, mode := range systems {
			procs := runtime.NumCPU()
			if mode == rts.Seq {
				procs = 1
			}
			b.Run(fmt.Sprintf("%s/%s", name, mode), func(b *testing.B) {
				sc := benchScale(name)
				var last bench.Result
				for i := 0; i < b.N; i++ {
					last = bench.Run(bm, rts.DefaultConfig(mode, procs), sc)
				}
				b.ReportMetric(float64(last.Totals.PeakMem)/(1<<20), "peak-MB")
			})
		}
	}
}

// BenchmarkFig8Ops measures the individual memory operations of the cost
// matrix directly under the Go benchmark harness (complementing
// hhbench -table fig8).
func BenchmarkFig8Ops(b *testing.B) {
	cfg := rts.DefaultConfig(rts.ParMem, 1)
	cfg.DisableGC = true

	type opCase struct {
		name string
		run  func(t *rts.Task, env mem.ObjPtr, n int) uint64
	}
	cases := []opCase{
		{"local/read-imm", func(t *rts.Task, env mem.ObjPtr, n int) uint64 {
			local := t.Alloc(0, 1, mem.TagRef)
			var s uint64
			for i := 0; i < n; i++ {
				s += t.ReadImmWord(local, 0)
			}
			return s
		}},
		{"local/write-nonptr", func(t *rts.Task, env mem.ObjPtr, n int) uint64 {
			local := t.Alloc(0, 1, mem.TagRef)
			for i := 0; i < n; i++ {
				t.WriteNonptr(local, 0, uint64(i))
			}
			return 0
		}},
		{"distant/write-nonptr", func(t *rts.Task, env mem.ObjPtr, n int) uint64 {
			for i := 0; i < n; i++ {
				t.WriteNonptr(env, 0, uint64(i))
			}
			return 0
		}},
		{"distant/write-ptr-promoting", func(t *rts.Task, env mem.ObjPtr, n int) uint64 {
			for i := 0; i < n; i++ {
				fresh := t.Alloc(0, 1, mem.TagRef)
				t.WritePtr(env, 1, fresh)
			}
			return 0
		}},
	}

	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			r := rts.New(cfg)
			defer r.Close()
			r.Run(func(t *rts.Task) uint64 {
				// Distant env: word cell (field 0) and pointer cell (field 1)
				// at the root; measurement happens one fork level down.
				env := t.Alloc(2, 1, mem.TagTuple)
				res, _ := t.ForkJoinScalar(env,
					func(t *rts.Task, env mem.ObjPtr) uint64 {
						return c.run(t, env, b.N)
					},
					func(t *rts.Task, _ mem.ObjPtr) uint64 { return 0 })
				return res
			})
		})
	}
}

// BenchmarkAblationWritePtrFastPath quantifies the write-barrier fast
// paths the paper's implementation prioritizes (§3.3): tourney performs
// one mutable pointer write per contestant, all local.
func BenchmarkAblationWritePtrFastPath(b *testing.B) {
	bm, err := bench.ByName("tourney")
	if err != nil {
		b.Fatal(err)
	}
	for _, off := range []bool{false, true} {
		name := "fast-path-on"
		if off {
			name = "fast-path-off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := rts.DefaultConfig(rts.ParMem, runtime.NumCPU())
			cfg.NoBarrierFastPath = off
			sc := benchScale("tourney")
			for i := 0; i < b.N; i++ {
				bench.Run(bm, cfg, sc)
			}
		})
	}
}

// BenchmarkAblationGC isolates collection overhead on an allocation-heavy
// pure workload.
func BenchmarkAblationGC(b *testing.B) {
	bm, err := bench.ByName("msort-pure")
	if err != nil {
		b.Fatal(err)
	}
	for _, off := range []bool{false, true} {
		name := "gc-on"
		if off {
			name = "gc-off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := rts.DefaultConfig(rts.ParMem, runtime.NumCPU())
			cfg.DisableGC = off
			sc := benchScale("msort-pure")
			for i := 0; i < b.N; i++ {
				bench.Run(bm, cfg, sc)
			}
		})
	}
}
