// Package graph provides the directed-graph substrate for the BFS
// benchmarks (§4.2). The paper uses the orkut social network (≈3M
// vertices, 117M edges, diameter 9); that dataset is proprietary-hosted
// and far beyond this machine, so Generate produces a synthetic stand-in
// with the properties BFS behaviour depends on: a skewed (RMAT-style)
// degree distribution, guaranteed connectivity, and a small diameter.
// Graphs are generated in plain Go during benchmark setup (untimed) and
// loaded into the managed heap in the compact adjacency-sequence (CSR)
// format the paper describes.
package graph

import (
	"repro/internal/mem"
	"repro/internal/rts"
)

// Spec parameterizes the generator.
type Spec struct {
	N      int // vertices (rounded up to a power of two internally)
	AvgDeg int // average out-degree contributed by RMAT edges
	Seed   uint64
}

// Raw is a host-side adjacency-list graph.
type Raw struct {
	N   int
	Adj [][]int32
}

// splitmix64 is the deterministic generator used throughout.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Generate builds the synthetic graph: a random-attachment backbone (each
// vertex links to one random earlier vertex, giving connectivity and a
// logarithmic diameter like orkut's) plus RMAT-sampled edges (quadrant
// probabilities 0.57/0.19/0.19/0.05) for the power-law degree skew. All
// edges are added in both directions.
func Generate(spec Spec) *Raw {
	n := 1
	for n < spec.N {
		n <<= 1
	}
	logN := 0
	for 1<<logN < n {
		logN++
	}
	g := &Raw{N: n, Adj: make([][]int32, n)}
	state := spec.Seed*2 + 1

	addEdge := func(u, v int32) {
		if u == v {
			return
		}
		g.Adj[u] = append(g.Adj[u], v)
		g.Adj[v] = append(g.Adj[v], u)
	}

	// Backbone: connectivity with O(log n) diameter.
	for v := 1; v < n; v++ {
		u := int32(splitmix64(&state) % uint64(v))
		addEdge(u, int32(v))
	}
	// RMAT edges.
	edges := n * spec.AvgDeg / 2
	for e := 0; e < edges; e++ {
		var u, v int32
		for bit := 0; bit < logN; bit++ {
			r := splitmix64(&state) % 100
			switch {
			case r < 57: // quadrant a: (0,0)
			case r < 76: // b: (0,1)
				v |= 1 << bit
			case r < 95: // c: (1,0)
				u |= 1 << bit
			default: // d: (1,1)
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		addEdge(u, v)
	}
	return g
}

// Edges returns the total directed edge count.
func (g *Raw) Edges() int {
	m := 0
	for _, adj := range g.Adj {
		m += len(adj)
	}
	return m
}

// MaxDegree returns the largest out-degree (degree-skew sanity checks).
func (g *Raw) MaxDegree() int {
	best := 0
	for _, adj := range g.Adj {
		if len(adj) > best {
			best = len(adj)
		}
	}
	return best
}

// RefBFS computes single-source shortest hop counts in plain Go, for
// validating the managed-heap BFS variants. Unreached vertices get -1.
func RefBFS(g *Raw, src int32) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int32{src}
	for round := int32(1); len(frontier) > 0; round++ {
		var next []int32
		for _, u := range frontier {
			for _, v := range g.Adj[u] {
				if dist[v] < 0 {
					dist[v] = round
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// Diameter returns the eccentricity of vertex 0 (a diameter lower bound;
// used by the hhgraph tool to confirm the orkut-like small diameter).
func Diameter(g *Raw) int {
	dist := RefBFS(g, 0)
	best := int32(0)
	for _, d := range dist {
		if d > best {
			best = d
		}
	}
	return int(best)
}

// CSR field layout of the managed graph tuple:
//
//	ptr 0: offsets array (N+1 words)
//	ptr 1: targets array (M words)
//	word 0: N, word 1: M
const (
	fieldOffsets = 0
	fieldTargets = 1
	fieldN       = 0
	fieldM       = 1
)

// Load copies the graph into the managed heap as a CSR tuple. Run it in
// the benchmark's setup phase.
func Load(t *rts.Task, g *Raw) mem.ObjPtr {
	n, m := g.N, g.Edges()
	offs := t.Alloc(0, n+1, mem.TagArrI64)
	mark := t.PushRoot(&offs)
	tgts := t.Alloc(0, m, mem.TagArrI64)
	t.PushRoot(&tgts)

	total := 0
	for v := 0; v < n; v++ {
		t.WriteInitWord(offs, v, uint64(total))
		for _, w := range g.Adj[v] {
			t.WriteInitWord(tgts, total, uint64(w))
			total++
		}
	}
	t.WriteInitWord(offs, n, uint64(total))

	tup := t.Alloc(2, 2, mem.TagTuple)
	t.PopRoots(mark)
	t.WriteInitPtr(tup, fieldOffsets, offs)
	t.WriteInitPtr(tup, fieldTargets, tgts)
	t.WriteInitWord(tup, fieldN, uint64(n))
	t.WriteInitWord(tup, fieldM, uint64(m))
	return tup
}

// N returns the vertex count of a loaded graph.
func N(t *rts.Task, g mem.ObjPtr) int { return int(t.ReadImmWord(g, fieldN)) }

// M returns the directed edge count of a loaded graph.
func M(t *rts.Task, g mem.ObjPtr) int { return int(t.ReadImmWord(g, fieldM)) }

// Offsets returns the CSR offsets array.
func Offsets(t *rts.Task, g mem.ObjPtr) mem.ObjPtr { return t.ReadImmPtr(g, fieldOffsets) }

// Targets returns the CSR targets array.
func Targets(t *rts.Task, g mem.ObjPtr) mem.ObjPtr { return t.ReadImmPtr(g, fieldTargets) }
