package graph

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/rts"
)

func TestGenerateShape(t *testing.T) {
	g := Generate(Spec{N: 4096, AvgDeg: 8, Seed: 42})
	if g.N != 4096 {
		t.Fatalf("N = %d", g.N)
	}
	if g.Edges() < g.N*8 {
		t.Fatalf("too few edges: %d", g.Edges())
	}
	// Power-law-ish skew: the max degree should far exceed the average.
	avg := g.Edges() / g.N
	if g.MaxDegree() < 4*avg {
		t.Fatalf("degree distribution not skewed: max %d, avg %d", g.MaxDegree(), avg)
	}
}

func TestGenerateConnectedSmallDiameter(t *testing.T) {
	g := Generate(Spec{N: 8192, AvgDeg: 8, Seed: 7})
	dist := RefBFS(g, 0)
	for v, d := range dist {
		if d < 0 {
			t.Fatalf("vertex %d unreachable", v)
		}
	}
	if d := Diameter(g); d > 20 {
		t.Fatalf("diameter %d too large for an orkut-like graph", d)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Spec{N: 1024, AvgDeg: 4, Seed: 5})
	b := Generate(Spec{N: 1024, AvgDeg: 4, Seed: 5})
	if a.Edges() != b.Edges() {
		t.Fatal("generator not deterministic")
	}
	for v := range a.Adj {
		for i := range a.Adj[v] {
			if a.Adj[v][i] != b.Adj[v][i] {
				t.Fatal("adjacency mismatch")
			}
		}
	}
}

func TestLoadCSR(t *testing.T) {
	g := Generate(Spec{N: 512, AvgDeg: 4, Seed: 3})
	r := rts.New(rts.DefaultConfig(rts.Seq, 1))
	defer r.Close()
	ok := r.Run(func(task *rts.Task) uint64 {
		cg := Load(task, g)
		if N(task, cg) != g.N || M(task, cg) != g.Edges() {
			return 0
		}
		offs, tgts := Offsets(task, cg), Targets(task, cg)
		// Spot-check adjacency round trip.
		for v := 0; v < g.N; v += 37 {
			lo := int(task.ReadImmWord(offs, v))
			hi := int(task.ReadImmWord(offs, v+1))
			if hi-lo != len(g.Adj[v]) {
				return 0
			}
			for i, w := range g.Adj[v] {
				if task.ReadImmWord(tgts, lo+i) != uint64(w) {
					return 0
				}
			}
		}
		return 1
	})
	if ok != 1 {
		t.Fatal("CSR load mismatch")
	}
	_ = mem.NilPtr
}
