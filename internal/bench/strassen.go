package bench

import (
	"repro/internal/mem"
	"repro/internal/rts"
	"repro/internal/seq"
)

// Strassen's matrix multiplication on quadtree matrices (§4.1): interior
// nodes hold four quadrant pointers, leaves are flat row-major float64
// blocks processed sequentially (paper: n=1024, 64×64 leaves).

const qtNField = 0 // node word 0: dimension

func qtIsLeaf(p mem.ObjPtr) bool { return mem.TagOf(p) == mem.TagArrI64 }

// qtBuild constructs an n×n quadtree with values f(i,j).
func qtBuild(t *rts.Task, n, leafN, bi, bj int, f func(i, j int) float64) mem.ObjPtr {
	if n == leafN {
		leaf := seq.NewLeafU64(t, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				t.WriteInitWord(leaf, i*n+j, mem.F2W(f(bi+i, bj+j)))
			}
		}
		return leaf
	}
	node := t.Alloc(4, 1, mem.TagOther)
	t.WriteInitWord(node, qtNField, uint64(n))
	mark := t.PushRoot(&node)
	h := n / 2
	offs := [4][2]int{{0, 0}, {0, h}, {h, 0}, {h, h}}
	for q := 0; q < 4; q++ {
		c := qtBuild(t, h, leafN, bi+offs[q][0], bj+offs[q][1], f)
		t.WriteInitPtr(node, q, c)
	}
	t.PopRoots(mark)
	return node
}

// qtAdd returns a ± b elementwise.
func qtAdd(t *rts.Task, a, b mem.ObjPtr, sub bool) mem.ObjPtr {
	if qtIsLeaf(a) {
		n2 := seq.Length(t, a)
		mark := t.PushRoot(&a, &b)
		dst := seq.NewLeafU64(t, n2)
		t.PopRoots(mark)
		for i := 0; i < n2; i++ {
			va, vb := mem.W2F(t.ReadImmWord(a, i)), mem.W2F(t.ReadImmWord(b, i))
			if sub {
				t.WriteInitWord(dst, i, mem.F2W(va-vb))
			} else {
				t.WriteInitWord(dst, i, mem.F2W(va+vb))
			}
		}
		return dst
	}
	n := t.ReadImmWord(a, qtNField)
	mark := t.PushRoot(&a, &b)
	node := t.Alloc(4, 1, mem.TagOther)
	t.PushRoot(&node)
	t.WriteInitWord(node, qtNField, n)
	for q := 0; q < 4; q++ {
		c := qtAdd(t, t.ReadImmPtr(a, q), t.ReadImmPtr(b, q), sub)
		t.WriteInitPtr(node, q, c)
	}
	t.PopRoots(mark)
	return node
}

// qtMulLeaf multiplies two leaf blocks with the classic triple loop.
func qtMulLeaf(t *rts.Task, a, b mem.ObjPtr) mem.ObjPtr {
	n2 := seq.Length(t, a)
	n := 1
	for n*n < n2 {
		n *= 2
	}
	mark := t.PushRoot(&a, &b)
	dst := seq.NewLeafU64(t, n2)
	t.PopRoots(mark)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				sum += mem.W2F(t.ReadImmWord(a, i*n+k)) * mem.W2F(t.ReadImmWord(b, k*n+j))
			}
			t.WriteInitWord(dst, i*n+j, mem.F2W(sum))
		}
	}
	return dst
}

// strassenMul multiplies two quadtrees, forking the seven products.
func strassenMul(t *rts.Task, a, b mem.ObjPtr) mem.ObjPtr {
	if qtIsLeaf(a) {
		return qtMulLeaf(t, a, b)
	}
	n := t.ReadImmWord(a, qtNField)
	mark := t.PushRoot(&a, &b)
	ops := t.Alloc(14, 0, mem.TagArrPtr) // operand pairs for M1..M7
	t.PushRoot(&ops)

	// Quadrants are re-read from the rooted a/b before each use.
	q := func(m mem.ObjPtr, i int) mem.ObjPtr { return t.ReadImmPtr(m, i) }
	set := func(slot int, p mem.ObjPtr) { t.WriteInitPtr(ops, slot, p) }

	set(0, qtAdd(t, q(a, 0), q(a, 3), false)) // M1 = (A11+A22)(B11+B22)
	set(1, qtAdd(t, q(b, 0), q(b, 3), false))
	set(2, qtAdd(t, q(a, 2), q(a, 3), false)) // M2 = (A21+A22) B11
	set(3, q(b, 0))
	set(4, q(a, 0)) // M3 = A11 (B12−B22)
	set(5, qtAdd(t, q(b, 1), q(b, 3), true))
	set(6, q(a, 3)) // M4 = A22 (B21−B11)
	set(7, qtAdd(t, q(b, 2), q(b, 0), true))
	set(8, qtAdd(t, q(a, 0), q(a, 1), false)) // M5 = (A11+A12) B22
	set(9, q(b, 3))
	set(10, qtAdd(t, q(a, 2), q(a, 0), true)) // M6 = (A21−A11)(B11+B12)
	set(11, qtAdd(t, q(b, 0), q(b, 1), false))
	set(12, qtAdd(t, q(a, 1), q(a, 3), true)) // M7 = (A12−A22)(B21+B22)
	set(13, qtAdd(t, q(b, 2), q(b, 3), false))

	products := seq.TabulatePtr(t, ops, 7, 1,
		func(t *rts.Task, env mem.ObjPtr, i int) mem.ObjPtr {
			return strassenMul(t, t.ReadImmPtr(env, 2*i), t.ReadImmPtr(env, 2*i+1))
		})
	t.PushRoot(&products)

	res := t.Alloc(4, 1, mem.TagOther)
	t.PushRoot(&res)
	t.WriteInitWord(res, qtNField, n)
	t.WriteInitPtr(res, 0, qtCombo(t, products, []int{0, 3, 6}, []int{4})) // C11 = M1+M4−M5+M7
	t.WriteInitPtr(res, 1, qtCombo(t, products, []int{2, 4}, nil))         // C12 = M3+M5
	t.WriteInitPtr(res, 2, qtCombo(t, products, []int{1, 3}, nil))         // C21 = M2+M4
	t.WriteInitPtr(res, 3, qtCombo(t, products, []int{0, 2, 5}, []int{1})) // C22 = M1−M2+M3+M6
	t.PopRoots(mark)
	return res
}

// qtCombo sums/differences the listed products.
func qtCombo(t *rts.Task, products mem.ObjPtr, plus, minus []int) mem.ObjPtr {
	mark := t.PushRoot(&products)
	acc := seq.GetPtr(t, products, plus[0])
	t.PushRoot(&acc)
	for _, i := range plus[1:] {
		acc = qtAdd(t, acc, seq.GetPtr(t, products, i), false)
	}
	for _, i := range minus {
		acc = qtAdd(t, acc, seq.GetPtr(t, products, i), true)
	}
	t.PopRoots(mark)
	return acc
}

// qtChecksum folds a quadtree's values.
func qtChecksum(t *rts.Task, m mem.ObjPtr, sum *uint64) {
	if qtIsLeaf(m) {
		for i, n := 0, seq.Length(t, m); i < n; i++ {
			*sum = (*sum ^ t.ReadImmWord(m, i)) * 1099511628211
		}
		return
	}
	for q := 0; q < 4; q++ {
		qtChecksum(t, t.ReadImmPtr(m, q), sum)
	}
}

// Strassen multiplies two N×N quadtree matrices (paper: 1024, leaf 64).
// Scale.Grain is the leaf block dimension.
func Strassen() *Benchmark {
	return &Benchmark{
		Name:    "strassen",
		Pure:    true,
		Default: Scale{N: 128, Grain: 32},
		Paper:   Scale{N: 1024, Grain: 64},
		Setup: func(t *rts.Task, sc Scale) mem.ObjPtr {
			a := qtBuild(t, sc.N, sc.Grain, 0, 0, matVal)
			mark := t.PushRoot(&a)
			b := qtBuild(t, sc.N, sc.Grain, 0, 0, func(i, j int) float64 { return matVal(j+3, i) })
			t.PushRoot(&b)
			env := t.Alloc(2, 0, mem.TagTuple)
			t.PopRoots(mark)
			t.WriteInitPtr(env, 0, a)
			t.WriteInitPtr(env, 1, b)
			return env
		},
		Run: func(t *rts.Task, env mem.ObjPtr, sc Scale) mem.ObjPtr {
			return strassenMul(t, t.ReadImmPtr(env, 0), t.ReadImmPtr(env, 1))
		},
		Check: func(t *rts.Task, _, out mem.ObjPtr, sc Scale) uint64 {
			var sum uint64 = 14695981039346656037
			qtChecksum(t, out, &sum)
			return sum
		},
	}
}
