package bench

import (
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/rts"
)

// Figure 8 cost microbenchmark: measures each memory-operation class on
// local, distant, and promoted objects from a task one level below the
// root, on the hierarchical-heaps runtime with collection disabled.

// CostRow is one measured cell of Figure 8.
type CostRow struct {
	Object  string // local / distant / promoted
	Op      string
	NsPerOp float64
}

// Fig8Costs measures the cost matrix with the given per-cell iteration
// count.
func Fig8Costs(iters int) []CostRow {
	if iters < 1 {
		iters = 1
	}
	cfg := rts.DefaultConfig(rts.ParMem, 1)
	cfg.DisableGC = true
	r := rts.New(cfg)
	defer r.Close()

	var rows []CostRow
	add := func(object, op string, d time.Duration) {
		rows = append(rows, CostRow{object, op, float64(d.Nanoseconds()) / float64(iters)})
	}

	r.Run(func(t *rts.Task) uint64 {
		// Distant objects: allocated at the root before forking.
		distRef := t.Alloc(0, 1, mem.TagRef)  // mutable word cell
		distCell := t.Alloc(1, 0, mem.TagRef) // mutable pointer cell
		rootVal := t.Alloc(0, 1, mem.TagRef)  // shallow value for non-promoting writes

		env := t.Alloc(3, 0, mem.TagTuple)
		t.WriteInitPtr(env, 0, distRef)
		t.WriteInitPtr(env, 1, distCell)
		t.WriteInitPtr(env, 2, rootVal)

		// Fork so the measuring arm runs one level deep.
		t.ForkJoinScalar(env,
			func(t *rts.Task, env mem.ObjPtr) uint64 {
				distRef := t.ReadImmPtr(env, 0)
				distCell := t.ReadImmPtr(env, 1)
				rootVal := t.ReadImmPtr(env, 2)

				local := t.Alloc(0, 1, mem.TagRef)
				localCell := t.Alloc(1, 0, mem.TagRef)
				localVal := t.Alloc(0, 1, mem.TagRef)

				var sink uint64

				// --- local ---
				start := time.Now()
				for i := 0; i < iters; i++ {
					sink += t.ReadImmWord(local, 0)
				}
				add("local", "read-imm", time.Since(start))
				start = time.Now()
				for i := 0; i < iters; i++ {
					sink += t.ReadMutWord(local, 0)
				}
				add("local", "read-mut", time.Since(start))
				start = time.Now()
				for i := 0; i < iters; i++ {
					t.WriteNonptr(local, 0, uint64(i))
				}
				add("local", "write-nonptr", time.Since(start))
				start = time.Now()
				for i := 0; i < iters; i++ {
					t.WritePtr(localCell, 0, localVal)
				}
				add("local", "write-ptr", time.Since(start))

				// --- distant (no forwarding pointers) ---
				start = time.Now()
				for i := 0; i < iters; i++ {
					sink += t.ReadImmWord(distRef, 0)
				}
				add("distant", "read-imm", time.Since(start))
				start = time.Now()
				for i := 0; i < iters; i++ {
					sink += t.ReadMutWord(distRef, 0)
				}
				add("distant", "read-mut", time.Since(start))
				start = time.Now()
				for i := 0; i < iters; i++ {
					t.WriteNonptr(distRef, 0, uint64(i))
				}
				add("distant", "write-nonptr", time.Since(start))
				start = time.Now()
				for i := 0; i < iters; i++ {
					t.WritePtr(distCell, 0, rootVal)
				}
				add("distant", "write-ptr-nonpromoting", time.Since(start))
				// The same write with the barrier fast paths ablated: every
				// store goes through FindMaster under the heap read lock.
				// The gap between this cell and the previous one is what the
				// ancestor-pointee fast path buys per operation.
				var slowOps core.Counters
				start = time.Now()
				for i := 0; i < iters; i++ {
					core.WritePtrSlow(nil, nil, &slowOps, distCell, 0, rootVal)
				}
				add("distant", "write-ptr-nonpromoting-nofastpath", time.Since(start))
				start = time.Now()
				for i := 0; i < iters; i++ {
					fresh := t.Alloc(0, 1, mem.TagRef)
					t.WritePtr(distCell, 0, fresh) // promotes fresh to the root
				}
				add("distant", "write-ptr-promoting", time.Since(start))

				// --- promoted (object with a forwarding chain) ---
				promoted := t.Alloc(0, 1, mem.TagRef)
				t.WritePtr(distCell, 0, promoted) // installs the chain
				start = time.Now()
				for i := 0; i < iters; i++ {
					sink += t.ReadImmWord(promoted, 0)
				}
				add("promoted", "read-imm", time.Since(start))
				start = time.Now()
				for i := 0; i < iters; i++ {
					sink += t.ReadMutWord(promoted, 0)
				}
				add("promoted", "read-mut", time.Since(start))
				start = time.Now()
				for i := 0; i < iters; i++ {
					t.WriteNonptr(promoted, 0, uint64(i))
				}
				add("promoted", "write-nonptr", time.Since(start))

				return sink
			},
			func(t *rts.Task, _ mem.ObjPtr) uint64 { return 0 })
		return 0
	})
	return rows
}
