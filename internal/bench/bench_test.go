package bench

import (
	"math"
	"testing"

	"repro/internal/gc"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/rts"
	"repro/internal/seq"
)

// tinyScale returns a fast test size for each benchmark.
func tinyScale(name string) Scale {
	switch name {
	case "fib":
		return Scale{N: 18, Grain: 10}
	case "tabulate", "map", "reduce", "filter":
		return Scale{N: 30_000, Grain: 256}
	case "msort-pure", "msort":
		return Scale{N: 5_000, Grain: 128}
	case "dedup":
		return Scale{N: 5_000, Grain: 128, Extra: 10}
	case "dmm":
		return Scale{N: 32, Grain: 1}
	case "smvm":
		return Scale{N: 200, Grain: 1, Extra: 20}
	case "strassen":
		return Scale{N: 64, Grain: 16}
	case "raytracer":
		return Scale{N: 32, Grain: 64}
	case "tourney":
		return Scale{N: 5_000, Grain: 64}
	case "reachability", "usp":
		return Scale{N: 1 << 10, Grain: 32, Extra: 8}
	case "usp-tree":
		return Scale{N: 1 << 9, Grain: 32, Extra: 8}
	case "multi-usp-tree":
		return Scale{N: 1 << 8, Grain: 32, Extra: 3}
	default:
		return Scale{N: 1000, Grain: 64}
	}
}

func gcHeavy(cfg rts.Config) rts.Config {
	cfg.Policy = gc.Policy{MinWords: 8 * 1024, Ratio: 1.5}
	cfg.STWFloorBytes = 1 << 19
	return cfg
}

// TestChecksumsAgreeAcrossSystems is the suite's core validation: every
// benchmark must produce an identical checksum on every runtime system it
// supports, under GC pressure and parallel execution.
func TestChecksumsAgreeAcrossSystems(t *testing.T) {
	for _, b := range All() {
		sc := tinyScale(b.Name)
		ref := Run(b, gcHeavy(rts.DefaultConfig(rts.Seq, 1)), sc)
		if ref.Checksum == 0xBAD {
			t.Fatalf("%s: sequential run failed validation", b.Name)
		}
		modes := []rts.Mode{rts.ParMem, rts.STW}
		if b.Pure {
			modes = append(modes, rts.Manticore)
		}
		for _, mode := range modes {
			for _, procs := range []int{1, 2} {
				got := Run(b, gcHeavy(rts.DefaultConfig(mode, procs)), sc)
				if got.Checksum != ref.Checksum {
					t.Errorf("%s on %v procs=%d: checksum %x, want %x",
						b.Name, mode, procs, got.Checksum, ref.Checksum)
				}
			}
		}
	}
}

func TestFibValue(t *testing.T) {
	b := Fib()
	res := Run(b, rts.DefaultConfig(rts.Seq, 1), Scale{N: 20, Grain: 5})
	if res.Checksum != 6765 {
		t.Fatalf("fib(20) = %d", res.Checksum)
	}
}

func TestUSPDistancesMatchReference(t *testing.T) {
	sc := Scale{N: 1 << 10, Grain: 32, Extra: 8}
	raw := graph.Generate(graph.Spec{N: sc.N, AvgDeg: sc.Extra, Seed: 9})
	ref := graph.RefBFS(raw, 0)

	b := USP()
	r := rts.New(gcHeavy(rts.DefaultConfig(rts.ParMem, 2)))
	defer r.Close()
	ok := r.Run(func(task *rts.Task) uint64 {
		g := b.Setup(task, sc)
		mark := task.PushRoot(&g)
		dist := b.Run(task, g, sc)
		task.PopRoots(mark)
		for v := 0; v < raw.N; v++ {
			got := task.ReadMutWord(dist, v)
			want := uint64(ref[v])
			if ref[v] < 0 {
				want = notVisited
			}
			if got != want {
				return 0
			}
		}
		return 1
	})
	if ok != 1 {
		t.Fatal("usp distances disagree with reference BFS")
	}
}

func TestUSPTreeListsAreShortestPaths(t *testing.T) {
	sc := Scale{N: 1 << 9, Grain: 32, Extra: 8}
	raw := graph.Generate(graph.Spec{N: sc.N, AvgDeg: sc.Extra, Seed: 9})
	ref := graph.RefBFS(raw, 0)

	b := USPTree()
	r := rts.New(gcHeavy(rts.DefaultConfig(rts.ParMem, 2)))
	defer r.Close()
	ok := r.Run(func(task *rts.Task) uint64 {
		g := b.Setup(task, sc)
		mark := task.PushRoot(&g)
		anc := b.Run(task, g, sc)
		task.PopRoots(mark)
		for v := 0; v < raw.N; v++ {
			depth := uint64(0)
			prev := uint64(v)
			for p := task.ReadMutPtr(anc, v); !p.IsNil(); p = task.ReadImmPtr(p, 0) {
				u := task.ReadImmWord(p, 0)
				// Each ancestor step must follow a real edge.
				found := false
				for _, w := range raw.Adj[u] {
					if uint64(w) == prev {
						found = true
						break
					}
				}
				if !found {
					return 0
				}
				prev = u
				depth++
			}
			if prev != 0 { // every chain ends at the source
				return 0
			}
			if depth != uint64(ref[v]) {
				return 0
			}
		}
		return 1
	})
	if ok != 1 {
		t.Fatal("usp-tree ancestor lists are not valid shortest paths")
	}
}

func TestStrassenMatchesNaive(t *testing.T) {
	const n, leaf = 16, 4
	r := rts.New(gcHeavy(rts.DefaultConfig(rts.Seq, 1)))
	defer r.Close()
	ok := r.Run(func(task *rts.Task) uint64 {
		fa := func(i, j int) float64 { return float64((i*7+j*3)%5) - 2 }
		fb := func(i, j int) float64 { return float64((i*5+j*11)%7) - 3 }
		a := qtBuild(task, n, leaf, 0, 0, fa)
		mark := task.PushRoot(&a)
		b := qtBuild(task, n, leaf, 0, 0, fb)
		task.PushRoot(&b)
		c := strassenMul(task, a, b)
		task.PopRoots(mark)

		// Reference: dense multiply in Go.
		var want [n][n]float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					want[i][j] += fa(i, k) * fb(k, j)
				}
			}
		}
		var read func(m mem.ObjPtr, size, bi, bj int) bool
		read = func(m mem.ObjPtr, size, bi, bj int) bool {
			if qtIsLeaf(m) {
				for i := 0; i < size; i++ {
					for j := 0; j < size; j++ {
						got := mem.W2F(task.ReadImmWord(m, i*size+j))
						if math.Abs(got-want[bi+i][bj+j]) > 1e-9 {
							return false
						}
					}
				}
				return true
			}
			h := size / 2
			offs := [4][2]int{{0, 0}, {0, h}, {h, 0}, {h, h}}
			for q := 0; q < 4; q++ {
				if !read(task.ReadImmPtr(m, q), h, bi+offs[q][0], bj+offs[q][1]) {
					return false
				}
			}
			return true
		}
		if !read(c, n, 0, 0) {
			return 0
		}
		return 1
	})
	if ok != 1 {
		t.Fatal("strassen result disagrees with naive multiply")
	}
}

func TestTourneyChampionIsMaxFitness(t *testing.T) {
	sc := Scale{N: 2000, Grain: 32}
	var maxFit uint64
	for i := 0; i < sc.N; i++ {
		if f := seq.Hash64(uint64(i)); f > maxFit {
			maxFit = f
		}
	}
	b := Tourney()
	r := rts.New(gcHeavy(rts.DefaultConfig(rts.ParMem, 2)))
	defer r.Close()
	got := r.Run(func(task *rts.Task) uint64 {
		out := b.Run(task, mem.NilPtr, sc)
		winner := task.ReadImmPtr(out, 0)
		return task.ReadMutWord(winner, 0)
	})
	if got != maxFit {
		t.Fatalf("champion fitness %x, want %x", got, maxFit)
	}
}

func TestParMemBenchmarkPromotionProfile(t *testing.T) {
	// The paper's Figure 9 shape: pure benchmarks promote nothing under
	// hierarchical heaps; usp-tree promotes on (almost) every visit.
	pure := Run(Map(), rts.DefaultConfig(rts.ParMem, 2), tinyScale("map"))
	if pure.Totals.Ops.Promotions != 0 {
		t.Fatalf("map promoted %d times under parmem", pure.Totals.Ops.Promotions)
	}
	tree := Run(USPTree(), rts.DefaultConfig(rts.ParMem, 2), tinyScale("usp-tree"))
	if tree.Totals.Ops.WritePtrProm == 0 {
		t.Fatal("usp-tree executed no promoting writes")
	}
}

func TestRepresentativeOps(t *testing.T) {
	// Figure 9's classification, regenerated from operation counters.
	cases := map[string]string{
		"map":      "immutable reads",
		"msort":    "local non-pointer writes",
		"usp":      "distant non-pointer writes",
		"usp-tree": "distant promoting writes",
	}
	for name, want := range cases {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res := Run(b, rts.DefaultConfig(rts.ParMem, 2), tinyScale(name))
		if got := res.Totals.Ops.Representative(); got != want {
			t.Errorf("%s: representative %q, want %q", name, got, want)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name must error")
	}
	b, err := ByName("fib")
	if err != nil || b.Name != "fib" {
		t.Fatal("fib lookup failed")
	}
	if len(All()) != 17 {
		t.Fatalf("suite has %d benchmarks, want 17", len(All()))
	}
}
