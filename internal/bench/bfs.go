package bench

import (
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/rts"
	"repro/internal/seq"
)

// The BFS benchmark family (§4.2): round-based parallel breadth-first
// search over a CSR graph. Each round processes the frontier in parallel
// grain-sized chunks; discovered vertices are collected into leaf arrays
// (vertex IDs are scalars, so chunk buffers need no rooting), combined into
// a rope, and flattened into the next frontier. The variants differ only
// in the mutable per-vertex state updated on each visit — which is exactly
// what places them in different rows of Figure 9.

const notVisited = ^uint64(0)

// bfsVariant is the per-visit behaviour: it observes edge (u,v) at the
// given round and reports whether v enters the next frontier.
type bfsVariant func(t *rts.Task, env mem.ObjPtr, u, v, round uint64) bool

// Round environment layout: ptr 0 graph, ptr 1 state1, ptr 2 state2,
// ptr 3 frontier; word 0 round number.
func bfsRun(t *rts.Task, g, s1, s2 mem.ObjPtr, grain int, visit bfsVariant) uint64 {
	mark := t.PushRoot(&g, &s1, &s2)
	frontier := seq.NewLeafU64(t, 1)
	t.PushRoot(&frontier)
	t.WriteInitWord(frontier, 0, 0) // source vertex 0

	rounds := uint64(0)
	for seq.Length(t, frontier) > 0 {
		rounds++
		env := t.Alloc(4, 1, mem.TagTuple)
		t.WriteInitPtr(env, 0, g)
		t.WriteInitPtr(env, 1, s1)
		t.WriteInitPtr(env, 2, s2)
		t.WriteInitPtr(env, 3, frontier)
		t.WriteInitWord(env, 0, rounds)
		m2 := t.PushRoot(&env)
		found := seq.ParCollect(t, env, 0, seq.Length(t, frontier), grain,
			func(t *rts.Task, env mem.ObjPtr, lo, hi int) mem.ObjPtr {
				return bfsLeaf(t, env, lo, hi, visit)
			})
		t.PushRoot(&found)
		frontier = seq.ToFlatU64(t, found)
		t.PopRoots(m2)
	}
	t.PopRoots(mark)
	return rounds
}

// bfsLeaf scans frontier[lo:hi), applying the variant's visit to each
// edge and returning the discovered vertices as a fresh leaf.
func bfsLeaf(t *rts.Task, env mem.ObjPtr, lo, hi int, visit bfsVariant) mem.ObjPtr {
	mark := t.PushRoot(&env)
	g := t.ReadImmPtr(env, 0)
	frontier := t.ReadImmPtr(env, 3)
	offs := graph.Offsets(t, g)
	tgts := graph.Targets(t, g)
	round := t.ReadImmWord(env, 0)
	// The CSR arrays and frontier live at the root (or an instance root),
	// but under stop-the-world collection any allocation inside visit may
	// move them, so keep every local pointer rooted while scanning.
	t.PushRoot(&g, &frontier, &offs, &tgts)

	var buf []uint64 // vertex IDs: scalars, no rooting needed
	for i := lo; i < hi; i++ {
		u := t.ReadImmWord(frontier, i)
		eLo := t.ReadImmWord(offs, int(u))
		eHi := t.ReadImmWord(offs, int(u)+1)
		for e := eLo; e < eHi; e++ {
			v := t.ReadImmWord(tgts, int(e))
			if visit(t, env, u, v, round) {
				buf = append(buf, v)
			}
		}
	}
	out := seq.NewLeafU64(t, len(buf))
	t.PopRoots(mark)
	for i, v := range buf {
		t.WriteInitWord(out, i, v)
	}
	return out
}

// bfsGraphSetup generates and loads the synthetic orkut stand-in.
func bfsGraphSetup(t *rts.Task, sc Scale) mem.ObjPtr {
	raw := graph.Generate(graph.Spec{N: sc.N, AvgDeg: sc.Extra, Seed: 9})
	return graph.Load(t, raw)
}

// distChecksum folds the distance array (deterministic across systems and
// schedules: BFS round structure fixes every distance).
func distChecksum(t *rts.Task, dist mem.ObjPtr) uint64 {
	n := seq.Length(t, dist)
	var sum uint64 = 14695981039346656037
	for v := 0; v < n; v++ {
		sum = (sum ^ t.ReadMutWord(dist, v)) * 1099511628211
	}
	return sum
}

// Reachability marks reachable vertices with plain (racy-by-design) reads
// and writes of a shared flag array: distant non-pointer writes. A vertex
// may be visited up to P times, but the final flag set is deterministic.
func Reachability() *Benchmark {
	return &Benchmark{
		Name:    "reachability",
		Default: Scale{N: 1 << 16, Grain: 128, Extra: 16},
		Paper:   Scale{N: 3_000_000, Grain: 128, Extra: 39},
		Setup:   bfsGraphSetup,
		Run: func(t *rts.Task, g mem.ObjPtr, sc Scale) mem.ObjPtr {
			n := graph.N(t, g)
			mark := t.PushRoot(&g)
			flags := t.AllocMut(0, n, mem.TagArrI64)
			t.PushRoot(&flags)
			t.WriteNonptr(flags, 0, 1) // source visited
			bfsRun(t, g, flags, mem.NilPtr, sc.Grain, reachVisit)
			t.PopRoots(mark)
			return flags
		},
		Check: func(t *rts.Task, _, out mem.ObjPtr, sc Scale) uint64 {
			return distChecksum(t, out)
		},
	}
}

func reachVisit(t *rts.Task, env mem.ObjPtr, u, v, round uint64) bool {
	flags := t.ReadImmPtr(env, 1)
	if t.ReadMutWord(flags, int(v)) == 0 {
		t.WriteNonptr(flags, int(v), 1)
		return true
	}
	return false
}

// USP computes unweighted single-source shortest path lengths; visits are
// claimed exactly once with compare-and-swap and the round number is the
// distance (distant non-pointer writes).
func USP() *Benchmark {
	return &Benchmark{
		Name:    "usp",
		Default: Scale{N: 1 << 16, Grain: 128, Extra: 16},
		Paper:   Scale{N: 3_000_000, Grain: 128, Extra: 39},
		Setup:   bfsGraphSetup,
		Run:     uspRun,
		Check: func(t *rts.Task, _, out mem.ObjPtr, sc Scale) uint64 {
			return distChecksum(t, out)
		},
	}
}

func uspRun(t *rts.Task, g mem.ObjPtr, sc Scale) mem.ObjPtr {
	n := graph.N(t, g)
	mark := t.PushRoot(&g)
	dist := t.AllocMut(0, n, mem.TagArrI64)
	t.PushRoot(&dist)
	for v := 0; v < n; v++ {
		t.WriteInitWord(dist, v, notVisited)
	}
	t.WriteNonptr(dist, 0, 0)
	bfsRun(t, g, dist, mem.NilPtr, sc.Grain, uspVisit)
	t.PopRoots(mark)
	return dist
}

func uspVisit(t *rts.Task, env mem.ObjPtr, u, v, round uint64) bool {
	dist := t.ReadImmPtr(env, 1)
	return t.CASWord(dist, int(v), notVisited, round)
}

// USPTree computes all shortest paths as ancestor lists: visiting v along
// (u,v) records A[v] := u :: A[u]. The cons cell is allocated in the
// visiting task's leaf heap and immediately written into the distant
// ancestor array — a distant promoting write on every visit, the paper's
// near-pessimal case for coarse-grained promotion locking.
func USPTree() *Benchmark {
	return &Benchmark{
		Name:    "usp-tree",
		Default: Scale{N: 1 << 14, Grain: 128, Extra: 16},
		Paper:   Scale{N: 3_000_000, Grain: 128, Extra: 39},
		Setup:   bfsGraphSetup,
		Run: func(t *rts.Task, g mem.ObjPtr, sc Scale) mem.ObjPtr {
			return uspTreeRun(t, g, sc)
		},
		Check: func(t *rts.Task, env, out mem.ObjPtr, sc Scale) uint64 {
			return uspTreeChecksum(t, out)
		},
	}
}

// uspTreeRun executes one usp-tree instance; the state arrays are
// allocated by the calling task, so in multi-instance runs each instance's
// promotions target its own subtree of the hierarchy.
func uspTreeRun(t *rts.Task, g mem.ObjPtr, sc Scale) mem.ObjPtr {
	n := graph.N(t, g)
	mark := t.PushRoot(&g)
	visited := t.AllocMut(0, n, mem.TagArrI64)
	t.PushRoot(&visited)
	ancestors := t.AllocMut(n, 0, mem.TagArrPtr)
	t.PushRoot(&ancestors)
	t.WriteNonptr(visited, 0, 1)
	bfsRun(t, g, visited, ancestors, sc.Grain, uspTreeVisit)
	t.PopRoots(mark)
	return ancestors
}

func uspTreeVisit(t *rts.Task, env mem.ObjPtr, u, v, round uint64) bool {
	visited := t.ReadImmPtr(env, 1)
	if !t.CASWord(visited, int(v), 0, 1) {
		return false
	}
	ancestors := t.ReadImmPtr(env, 2)
	head := t.ReadMutPtr(ancestors, int(u)) // A[u]
	m := t.PushRoot(&ancestors, &head)
	cons := t.Alloc(1, 1, mem.TagCons)
	t.PopRoots(m)
	t.WriteInitWord(cons, 0, u)
	t.WriteInitPtr(cons, 0, head) // head is at or above the cons's heap
	t.WritePtr(ancestors, int(v), cons)
	return true
}

// uspTreeChecksum folds each vertex's ancestor-list length — the shortest
// path length, which is deterministic even though the lists themselves
// depend on visit order.
func uspTreeChecksum(t *rts.Task, ancestors mem.ObjPtr) uint64 {
	n := seq.Length(t, ancestors)
	var sum uint64 = 14695981039346656037
	for v := 0; v < n; v++ {
		depth := uint64(0)
		for p := t.ReadMutPtr(ancestors, v); !p.IsNil(); p = t.ReadImmPtr(p, 0) {
			depth++
		}
		sum = (sum ^ depth) * 1099511628211
	}
	return sum
}

// MultiUSPTree runs Extra copies of usp-tree in parallel on the same graph
// (paper: 36 copies). Each instance allocates its own state inside its
// subtask, so promotions in different instances lock disjoint heaps and
// can proceed in parallel — the paper's explanation for the recovered
// speedup.
func MultiUSPTree() *Benchmark {
	return &Benchmark{
		Name:    "multi-usp-tree",
		Default: Scale{N: 1 << 13, Grain: 128, Extra: 4},
		Paper:   Scale{N: 3_000_000, Grain: 128, Extra: 36},
		Setup: func(t *rts.Task, sc Scale) mem.ObjPtr {
			raw := graph.Generate(graph.Spec{N: sc.N, AvgDeg: 16, Seed: 9})
			return graph.Load(t, raw)
		},
		Run: func(t *rts.Task, g mem.ObjPtr, sc Scale) mem.ObjPtr {
			return multiUSPTree(t, g, 0, sc.Extra, sc)
		},
		Check: func(t *rts.Task, env, out mem.ObjPtr, sc Scale) uint64 {
			// out is a rope of per-instance ancestor arrays.
			var sum uint64
			for i := 0; i < sc.Extra; i++ {
				sum = sum*31 ^ uspTreeChecksum(t, seq.GetPtr(t, out, i))
			}
			return sum
		},
	}
}

// multiUSPTree fans the instances out as a balanced fork tree and collects
// the per-instance ancestor arrays.
func multiUSPTree(t *rts.Task, g mem.ObjPtr, lo, hi int, sc Scale) mem.ObjPtr {
	if hi-lo == 1 {
		mark := t.PushRoot(&g)
		arr := uspTreeRun(t, g, sc)
		t.PushRoot(&arr)
		leaf := seq.NewLeafPtr(t, 1)
		t.PopRoots(mark)
		t.WriteInitPtr(leaf, 0, arr)
		return leaf
	}
	mid := lo + (hi-lo)/2
	l, r := t.ForkJoin(g,
		func(t *rts.Task, env mem.ObjPtr) mem.ObjPtr { return multiUSPTree(t, env, lo, mid, sc) },
		func(t *rts.Task, env mem.ObjPtr) mem.ObjPtr { return multiUSPTree(t, env, mid, hi, sc) })
	return seq.NewNode(t, l, r)
}
