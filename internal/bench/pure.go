package bench

import (
	"repro/internal/mem"
	"repro/internal/rts"
	"repro/internal/seq"
)

// The purely functional benchmarks of §4.1. All of them are classified as
// "immutable reads" in Figure 9 and must execute zero promotions under
// hierarchical heaps.

func seqFib(n uint64) uint64 {
	if n < 2 {
		return n
	}
	return seqFib(n-1) + seqFib(n-2)
}

func parFib(t *rts.Task, n, grain uint64) uint64 {
	if n <= grain {
		return seqFib(n)
	}
	a, b := t.ForkJoinScalar(mem.NilPtr,
		func(t *rts.Task, _ mem.ObjPtr) uint64 { return parFib(t, n-1, grain) },
		func(t *rts.Task, _ mem.ObjPtr) uint64 { return parFib(t, n-2, grain) })
	return a + b
}

// Fib computes F(N) with sequential threshold Grain (paper: F(42), 25).
func Fib() *Benchmark {
	return &Benchmark{
		Name:    "fib",
		Pure:    true,
		Default: Scale{N: 35, Grain: 20},
		Paper:   Scale{N: 42, Grain: 25},
		Setup:   func(t *rts.Task, sc Scale) mem.ObjPtr { return mem.NilPtr },
		Run: func(t *rts.Task, _ mem.ObjPtr, sc Scale) mem.ObjPtr {
			return boxWord(t, parFib(t, uint64(sc.N), uint64(sc.Grain)))
		},
		Check: func(t *rts.Task, _, out mem.ObjPtr, sc Scale) uint64 {
			return t.ReadImmWord(out, 0)
		},
	}
}

// tabulateInput builds the standard input sequence of hashed 64-bit values.
func tabulateInput(t *rts.Task, n, grain int) mem.ObjPtr {
	return seq.TabulateU64(t, mem.NilPtr, n, grain,
		func(t *rts.Task, _ mem.ObjPtr, i int) uint64 { return seq.Hash64(uint64(i)) })
}

// Tabulate builds a sequence of N hashed values (paper: 1e8, grain 1e4).
func Tabulate() *Benchmark {
	return &Benchmark{
		Name:    "tabulate",
		Pure:    true,
		Default: Scale{N: 1 << 21, Grain: 1 << 10},
		Paper:   Scale{N: 100_000_000, Grain: 10_000},
		Setup:   func(t *rts.Task, sc Scale) mem.ObjPtr { return mem.NilPtr },
		Run: func(t *rts.Task, _ mem.ObjPtr, sc Scale) mem.ObjPtr {
			return tabulateInput(t, sc.N, sc.Grain)
		},
		Check: func(t *rts.Task, _, out mem.ObjPtr, sc Scale) uint64 {
			return seq.Checksum(t, out)
		},
	}
}

// Map applies a simple function to each element of a prebuilt sequence.
func Map() *Benchmark {
	return &Benchmark{
		Name:    "map",
		Pure:    true,
		Default: Scale{N: 1 << 21, Grain: 1 << 10},
		Paper:   Scale{N: 100_000_000, Grain: 10_000},
		Setup: func(t *rts.Task, sc Scale) mem.ObjPtr {
			return tabulateInput(t, sc.N, sc.Grain)
		},
		Run: func(t *rts.Task, env mem.ObjPtr, sc Scale) mem.ObjPtr {
			return seq.MapU64(t, env, func(v uint64) uint64 { return v*2654435761 + 1 })
		},
		Check: func(t *rts.Task, _, out mem.ObjPtr, sc Scale) uint64 {
			return seq.Checksum(t, out)
		},
	}
}

// Reduce sums the elements of a prebuilt sequence.
func Reduce() *Benchmark {
	return &Benchmark{
		Name:    "reduce",
		Pure:    true,
		Default: Scale{N: 1 << 21, Grain: 1 << 10},
		Paper:   Scale{N: 100_000_000, Grain: 10_000},
		Setup: func(t *rts.Task, sc Scale) mem.ObjPtr {
			return tabulateInput(t, sc.N, sc.Grain)
		},
		Run: func(t *rts.Task, env mem.ObjPtr, sc Scale) mem.ObjPtr {
			sum := seq.ReduceU64(t, env, 0, func(a, b uint64) uint64 { return a + b })
			return boxWord(t, sum)
		},
		Check: func(t *rts.Task, _, out mem.ObjPtr, sc Scale) uint64 {
			return t.ReadImmWord(out, 0)
		},
	}
}

// Filter keeps the even-hash elements of a prebuilt sequence.
func Filter() *Benchmark {
	return &Benchmark{
		Name:    "filter",
		Pure:    true,
		Default: Scale{N: 1 << 21, Grain: 1 << 10},
		Paper:   Scale{N: 100_000_000, Grain: 10_000},
		Setup: func(t *rts.Task, sc Scale) mem.ObjPtr {
			return tabulateInput(t, sc.N, sc.Grain)
		},
		Run: func(t *rts.Task, env mem.ObjPtr, sc Scale) mem.ObjPtr {
			return seq.FilterU64(t, env, func(v uint64) bool { return v&1 == 0 })
		},
		Check: func(t *rts.Task, _, out mem.ObjPtr, sc Scale) uint64 {
			return seq.Checksum(t, out)
		},
	}
}

// msortRope is Figure 1's msort: split to the grain, sort leaves (in-place
// imperative quicksort, or the allocating pure quicksort for msort-pure),
// and merge sorted flat arrays at the joins.
func msortRope(t *rts.Task, s mem.ObjPtr, grain int, pure bool) mem.ObjPtr {
	n := seq.Length(t, s)
	if n <= grain {
		flat := seq.ToFlatU64(t, s)
		if pure {
			return seq.PureQSortFlat(t, flat)
		}
		seq.QuickSortInPlace(t, flat, 0, n)
		return flat
	}
	l, r := seq.SplitMid(t, s)
	mark := t.PushRoot(&l, &r)
	pair := t.Alloc(2, 0, mem.TagTuple)
	t.PopRoots(mark)
	t.WriteInitPtr(pair, 0, l)
	t.WriteInitPtr(pair, 1, r)
	ls, rs := t.ForkJoin(pair,
		func(t *rts.Task, env mem.ObjPtr) mem.ObjPtr {
			return msortRope(t, t.ReadImmPtr(env, 0), grain, pure)
		},
		func(t *rts.Task, env mem.ObjPtr) mem.ObjPtr {
			return msortRope(t, t.ReadImmPtr(env, 1), grain, pure)
		})
	return seq.MergeFlatSorted(t, ls, rs)
}

// checkSorted folds a flat array into a checksum, verifying ascending
// order along the way (a violation poisons the checksum).
func checkSorted(t *rts.Task, out mem.ObjPtr) uint64 {
	n := seq.Length(t, out)
	var sum uint64 = 14695981039346656037
	prev := uint64(0)
	for i := 0; i < n; i++ {
		v := t.ReadImmWord(out, i)
		if v < prev {
			sum = 0xBAD
		}
		sum = (sum ^ v) * 1099511628211
		prev = v
	}
	return sum
}

// MSortPure sorts with a purely functional quicksort base case
// (paper: 1e7 elements, grain 1e4).
func MSortPure() *Benchmark {
	return &Benchmark{
		Name:    "msort-pure",
		Pure:    true,
		Default: Scale{N: 1 << 18, Grain: 1 << 10},
		Paper:   Scale{N: 10_000_000, Grain: 10_000},
		Setup: func(t *rts.Task, sc Scale) mem.ObjPtr {
			return tabulateInput(t, sc.N, sc.Grain)
		},
		Run: func(t *rts.Task, env mem.ObjPtr, sc Scale) mem.ObjPtr {
			return msortRope(t, env, sc.Grain, true)
		},
		Check: func(t *rts.Task, _, out mem.ObjPtr, sc Scale) uint64 {
			return checkSorted(t, out)
		},
	}
}

// matrix helpers for dmm: a dense matrix is a pointer sequence of flat
// float64 rows.

func denseMatrix(t *rts.Task, n int, f func(i, j int) float64) mem.ObjPtr {
	return seq.TabulatePtr(t, mem.NilPtr, n, 8,
		func(t *rts.Task, _ mem.ObjPtr, i int) mem.ObjPtr {
			row := seq.NewLeafU64(t, n)
			for j := 0; j < n; j++ {
				t.WriteInitWord(row, j, mem.F2W(f(i, j)))
			}
			return row
		})
}

func matVal(i, j int) float64 {
	return float64(int64(seq.Hash64(uint64(i*131071+j)))%2048) / 256.0
}

// DMM multiplies two dense n×n matrices with the naive O(n³) algorithm,
// one task per result row (paper: n=600, one-row threshold).
func DMM() *Benchmark {
	return &Benchmark{
		Name:    "dmm",
		Pure:    true,
		Default: Scale{N: 128, Grain: 1},
		Paper:   Scale{N: 600, Grain: 1},
		Setup: func(t *rts.Task, sc Scale) mem.ObjPtr {
			n := sc.N
			a := denseMatrix(t, n, matVal)
			mark := t.PushRoot(&a)
			// B stored transposed so the inner loop runs over flat rows.
			bt := denseMatrix(t, n, func(i, j int) float64 { return matVal(j, i+7) })
			t.PushRoot(&bt)
			env := t.Alloc(2, 0, mem.TagTuple)
			t.PopRoots(mark)
			t.WriteInitPtr(env, 0, a)
			t.WriteInitPtr(env, 1, bt)
			return env
		},
		Run: func(t *rts.Task, env mem.ObjPtr, sc Scale) mem.ObjPtr {
			n := sc.N
			return seq.TabulatePtr(t, env, n, sc.Grain,
				func(t *rts.Task, env mem.ObjPtr, i int) mem.ObjPtr {
					a := t.ReadImmPtr(env, 0)
					bt := t.ReadImmPtr(env, 1)
					ai := seq.GetPtr(t, a, i)
					mark := t.PushRoot(&ai, &bt)
					row := seq.NewLeafU64(t, n)
					t.PopRoots(mark)
					for j := 0; j < n; j++ {
						btj := seq.GetPtr(t, bt, j)
						var sum float64
						for k := 0; k < n; k++ {
							sum += mem.W2F(t.ReadImmWord(ai, k)) * mem.W2F(t.ReadImmWord(btj, k))
						}
						t.WriteInitWord(row, j, mem.F2W(sum))
					}
					return row
				})
		},
		Check: func(t *rts.Task, _, out mem.ObjPtr, sc Scale) uint64 {
			var sum uint64 = 14695981039346656037
			for i := 0; i < sc.N; i++ {
				row := seq.GetPtr(t, out, i)
				for j := 0; j < sc.N; j++ {
					sum = (sum ^ t.ReadImmWord(row, j)) * 1099511628211
				}
			}
			return sum
		},
	}
}

// SMVM multiplies a sparse matrix (rows of index-value pairs) by a dense
// vector (paper: n=20000 rows, ~2000 nonzeros per row, one-row threshold).
// Scale.N is the row/column count; Scale.Extra the nonzeros per row.
func SMVM() *Benchmark {
	return &Benchmark{
		Name:    "smvm",
		Pure:    true,
		Default: Scale{N: 2000, Grain: 1, Extra: 200},
		Paper:   Scale{N: 20_000, Grain: 1, Extra: 2000},
		Setup: func(t *rts.Task, sc Scale) mem.ObjPtr {
			n, nnz := sc.N, sc.Extra
			// Sparse rows: nnz (index, value-bits) pairs, indices arbitrary.
			matrix := seq.TabulatePtr(t, mem.NilPtr, n, 4,
				func(t *rts.Task, _ mem.ObjPtr, i int) mem.ObjPtr {
					row := seq.NewLeafU64(t, 2*nnz)
					for k := 0; k < nnz; k++ {
						idx := seq.Hash64(uint64(i*nnz+k)) % uint64(n)
						val := matVal(i, k)
						t.WriteInitWord(row, 2*k, idx)
						t.WriteInitWord(row, 2*k+1, mem.F2W(val))
					}
					return row
				})
			mark := t.PushRoot(&matrix)
			x := seq.NewLeafU64(t, n) // dense vector, flat for O(1) access
			t.PushRoot(&x)
			for i := 0; i < n; i++ {
				t.WriteInitWord(x, i, mem.F2W(matVal(i, i)))
			}
			env := t.Alloc(2, 0, mem.TagTuple)
			t.PopRoots(mark)
			t.WriteInitPtr(env, 0, matrix)
			t.WriteInitPtr(env, 1, x)
			return env
		},
		Run: func(t *rts.Task, env mem.ObjPtr, sc Scale) mem.ObjPtr {
			return seq.TabulateU64(t, env, sc.N, sc.Grain,
				func(t *rts.Task, env mem.ObjPtr, i int) uint64 {
					matrix := t.ReadImmPtr(env, 0)
					x := t.ReadImmPtr(env, 1)
					row := seq.GetPtr(t, matrix, i)
					var sum float64
					for k, nnz := 0, seq.Length(t, row)/2; k < nnz; k++ {
						idx := int(t.ReadImmWord(row, 2*k))
						val := mem.W2F(t.ReadImmWord(row, 2*k+1))
						sum += val * mem.W2F(t.ReadImmWord(x, idx))
					}
					return mem.F2W(sum)
				})
		},
		Check: func(t *rts.Task, _, out mem.ObjPtr, sc Scale) uint64 {
			return seq.Checksum(t, out)
		},
	}
}
