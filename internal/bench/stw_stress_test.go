package bench

import (
	"testing"

	"repro/internal/rts"
)

// TestSTWForkSafePointRooting is a regression test for a rooting bug: the
// fork path parked at its stop-the-world safe point before registering the
// frame environment, so a collection triggered by another worker at that
// exact moment reclaimed (or moved) the env tuple out from under the fork.
// An extremely low STW floor makes collections near-continuous, hitting
// the window with high probability across iterations.
func TestSTWForkSafePointRooting(t *testing.T) {
	b := MSortPure()
	sc := Scale{N: 1 << 14, Grain: 1 << 7}
	cfg := rts.DefaultConfig(rts.STW, 2)
	cfg.STWFloorBytes = 1 << 16 // collect constantly
	want := Run(b, rts.DefaultConfig(rts.Seq, 1), sc).Checksum
	for i := 0; i < 8; i++ {
		res := Run(b, cfg, sc)
		if res.Checksum != want {
			t.Fatalf("iter %d: checksum %x, want %x", i, res.Checksum, want)
		}
		if res.Totals.GC.Collections == 0 {
			t.Fatal("stress config did not trigger collections")
		}
	}
}
