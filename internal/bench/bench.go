// Package bench implements the paper's 17-benchmark evaluation suite
// (§4.1–4.2) against the runtime API, with the setup/run split the paper
// uses ("when taking timing measurements, we exclude initialization
// times") and a deterministic checksum per benchmark so that all four
// runtime systems can be cross-validated against each other.
package bench

import (
	"fmt"
	"time"

	"repro/internal/mem"
	"repro/internal/rts"
)

// Scale sets a benchmark's problem size. The meaning of each field is
// benchmark-specific and documented in its constructor.
type Scale struct {
	N     int // main problem size
	Grain int // sequential threshold
	Extra int // benchmark-specific secondary parameter
}

// Benchmark is one workload: untimed Setup building inputs, timed Run
// producing an output object, and untimed Check folding the output (and
// inputs) into a checksum used for cross-system validation.
type Benchmark struct {
	Name string
	Pure bool // pure benchmarks also run on the manticore configuration

	Default Scale // scaled to this machine
	Paper   Scale // the paper's parameters

	Setup func(t *rts.Task, sc Scale) mem.ObjPtr
	Run   func(t *rts.Task, env mem.ObjPtr, sc Scale) mem.ObjPtr
	Check func(t *rts.Task, env, out mem.ObjPtr, sc Scale) uint64
}

// Result is one measured benchmark execution.
type Result struct {
	Elapsed  time.Duration
	Checksum uint64
	Totals   rts.Totals
	// GCNanos is collection time attributable to the timed run phase
	// (total GC time minus what the setup phase spent).
	GCNanos int64
}

// GCFraction returns run-phase GC time as a fraction of total processor
// time (the paper's GC_s / GC_72 statistic).
func (r Result) GCFraction() float64 {
	denom := float64(r.Totals.Procs) * float64(r.Elapsed.Nanoseconds())
	if denom == 0 {
		return 0
	}
	f := float64(r.GCNanos) / denom
	if f < 0 {
		return 0
	}
	return f
}

// Run executes the benchmark once on a fresh runtime built from cfg.
func Run(b *Benchmark, cfg rts.Config, sc Scale) Result {
	r := rts.New(cfg)
	var res Result
	var gcSetup int64
	r.Run(func(t *rts.Task) uint64 {
		env := b.Setup(t, sc)
		mark := t.PushRoot(&env)
		gcSetup = t.GCNanosSoFar()
		start := time.Now()
		out := b.Run(t, env, sc)
		res.Elapsed = time.Since(start)
		t.PushRoot(&out)
		res.Checksum = b.Check(t, env, out, sc)
		t.PopRoots(mark)
		return res.Checksum
	})
	res.Totals = r.Stats()
	res.GCNanos = res.Totals.GCNanos - gcSetup
	r.Close()
	return res
}

// Measure runs the benchmark reps times and returns the median-elapsed
// result (the paper reports medians of five runs).
func Measure(b *Benchmark, cfg rts.Config, sc Scale, reps int) Result {
	if reps < 1 {
		reps = 1
	}
	results := make([]Result, reps)
	for i := range results {
		results[i] = Run(b, cfg, sc)
	}
	// Select the median by elapsed time.
	order := make([]int, reps)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < reps; i++ {
		for j := i; j > 0 && results[order[j]].Elapsed < results[order[j-1]].Elapsed; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return results[order[reps/2]]
}

// constructors lists every benchmark in the paper's table order.
var constructors = []func() *Benchmark{
	Fib, Tabulate, Map, Reduce, Filter, MSortPure, DMM, SMVM, Strassen, Raytracer,
	MSort, Dedup, Tourney, Reachability, USP, USPTree, MultiUSPTree,
}

// All returns fresh instances of the full suite in table order.
func All() []*Benchmark {
	out := make([]*Benchmark, len(constructors))
	for i, mk := range constructors {
		out[i] = mk()
	}
	return out
}

// ByName returns a fresh instance of the named benchmark.
func ByName(name string) (*Benchmark, error) {
	for _, mk := range constructors {
		if b := mk(); b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", name)
}

// boxWord wraps a scalar result as an object so Run can return it.
func boxWord(t *rts.Task, v uint64) mem.ObjPtr {
	p := t.Alloc(0, 1, mem.TagRef)
	t.WriteInitWord(p, 0, v)
	return p
}
