package bench

import (
	"repro/internal/mem"
	"repro/internal/rts"
	"repro/internal/seq"
)

// The imperative benchmarks of §4.2 (not implementable in Manticore).

// MSort is Figure 1's merge sort: imperative in-place quicksort below the
// grain (paper: 1e7 elements, grain 1e4; representative operation: local
// non-pointer writes).
func MSort() *Benchmark {
	return &Benchmark{
		Name:    "msort",
		Default: Scale{N: 1 << 18, Grain: 1 << 10},
		Paper:   Scale{N: 10_000_000, Grain: 10_000},
		Setup: func(t *rts.Task, sc Scale) mem.ObjPtr {
			return tabulateInput(t, sc.N, sc.Grain)
		},
		Run: func(t *rts.Task, env mem.ObjPtr, sc Scale) mem.ObjPtr {
			return msortRope(t, env, sc.Grain, false)
		},
		Check: func(t *rts.Task, _, out mem.ObjPtr, sc Scale) uint64 {
			return checkSorted(t, out)
		},
	}
}

// dedupRope sorts and deduplicates: hash-set insertion plus in-place sort
// below the grain, duplicate-dropping merges at the joins.
func dedupRope(t *rts.Task, s mem.ObjPtr, grain int) mem.ObjPtr {
	n := seq.Length(t, s)
	if n <= grain {
		flat := seq.ToFlatU64(t, s)
		return seq.HashDedupSortFlat(t, flat)
	}
	l, r := seq.SplitMid(t, s)
	mark := t.PushRoot(&l, &r)
	pair := t.Alloc(2, 0, mem.TagTuple)
	t.PopRoots(mark)
	t.WriteInitPtr(pair, 0, l)
	t.WriteInitPtr(pair, 1, r)
	ls, rs := t.ForkJoin(pair,
		func(t *rts.Task, env mem.ObjPtr) mem.ObjPtr {
			return dedupRope(t, t.ReadImmPtr(env, 0), grain)
		},
		func(t *rts.Task, env mem.ObjPtr) mem.ObjPtr {
			return dedupRope(t, t.ReadImmPtr(env, 1), grain)
		})
	return seq.MergeDedupFlat(t, ls, rs)
}

// Dedup removes duplicate keys while sorting (paper: 1e7 elements with
// ~1e6 unique keys — Extra is the duplication factor).
func Dedup() *Benchmark {
	return &Benchmark{
		Name:    "dedup",
		Default: Scale{N: 1 << 18, Grain: 1 << 10, Extra: 10},
		Paper:   Scale{N: 10_000_000, Grain: 10_000, Extra: 10},
		Setup: func(t *rts.Task, sc Scale) mem.ObjPtr {
			unique := uint64(sc.N / sc.Extra)
			return seq.TabulateU64(t, mem.NilPtr, sc.N, sc.Grain,
				func(t *rts.Task, _ mem.ObjPtr, i int) uint64 {
					return seq.Hash64(seq.Hash64(uint64(i)) % unique)
				})
		},
		Run: func(t *rts.Task, env mem.ObjPtr, sc Scale) mem.ObjPtr {
			return dedupRope(t, env, sc.Grain)
		},
		Check: func(t *rts.Task, _, out mem.ObjPtr, sc Scale) uint64 {
			// Strictly ascending implies both sorted and duplicate-free.
			n := seq.Length(t, out)
			var sum uint64 = 14695981039346656037
			prev := uint64(0)
			for i := 0; i < n; i++ {
				v := t.ReadImmWord(out, i)
				if i > 0 && v <= prev {
					sum = 0xBAD
				}
				sum = (sum ^ v) * 1099511628211
				prev = v
			}
			return sum + uint64(n)<<32
		},
	}
}

// Tourney contestant layout: ptr 0 = parent (the contestant that
// eliminated this one), word 0 = fitness, word 1 = index.
//
// Construction and tournament are fused in one divide-and-conquer pass, so
// every elimination write targets a contestant already merged into the
// writing task's heap: the paper's "local non-promoting writes" class.
// Each subtree returns a pair {winner, digest}.

func tourneyLeaf(t *rts.Task, lo, hi int) mem.ObjPtr {
	var winner mem.ObjPtr
	var digest uint64
	mark := t.PushRoot(&winner)
	for i := lo; i < hi; i++ {
		c := t.Alloc(1, 2, mem.TagOther)
		t.WriteInitWord(c, 0, seq.Hash64(uint64(i)))
		t.WriteInitWord(c, 1, uint64(i))
		if winner.IsNil() {
			winner = c
			continue
		}
		winner, digest = playMatch(t, winner, c, digest)
	}
	t.PushRoot(&winner) // keep the winner alive across the pair allocation
	pair := t.Alloc(1, 1, mem.TagTuple)
	t.PopRoots(mark)
	t.WriteInitPtr(pair, 0, winner)
	t.WriteInitWord(pair, 0, digest)
	return pair
}

// playMatch records the loser's eliminator via a mutable pointer write and
// extends the digest deterministically.
func playMatch(t *rts.Task, a, b mem.ObjPtr, digest uint64) (mem.ObjPtr, uint64) {
	fa, fb := t.ReadMutWord(a, 0), t.ReadMutWord(b, 0)
	winner, loser := a, b
	if fb > fa || (fb == fa && t.ReadImmWord(b, 1) < t.ReadImmWord(a, 1)) {
		winner, loser = b, a
	}
	t.WritePtr(loser, 0, winner)
	digest = (digest ^ t.ReadImmWord(loser, 1)) * 1099511628211
	return winner, digest
}

func tourneyRec(t *rts.Task, lo, hi, grain int) mem.ObjPtr {
	if hi-lo <= grain {
		return tourneyLeaf(t, lo, hi)
	}
	mid := lo + (hi-lo)/2
	l, r := t.ForkJoin(mem.NilPtr,
		func(t *rts.Task, _ mem.ObjPtr) mem.ObjPtr { return tourneyRec(t, lo, mid, grain) },
		func(t *rts.Task, _ mem.ObjPtr) mem.ObjPtr { return tourneyRec(t, mid, hi, grain) })
	lw, rw := t.ReadImmPtr(l, 0), t.ReadImmPtr(r, 0)
	digest := t.ReadImmWord(l, 0)*31 ^ t.ReadImmWord(r, 0)
	winner, digest := playMatch(t, lw, rw, digest)
	mark := t.PushRoot(&winner)
	pair := t.Alloc(1, 1, mem.TagTuple)
	t.PopRoots(mark)
	t.WriteInitPtr(pair, 0, winner)
	t.WriteInitWord(pair, 0, digest)
	return pair
}

// Tourney computes a tournament tree over N contestants, mutating a parent
// pointer at every elimination (paper: 1e8 contestants).
func Tourney() *Benchmark {
	return &Benchmark{
		Name:    "tourney",
		Default: Scale{N: 1 << 19, Grain: 1 << 10},
		Paper:   Scale{N: 100_000_000, Grain: 10_000},
		Setup:   func(t *rts.Task, sc Scale) mem.ObjPtr { return mem.NilPtr },
		Run: func(t *rts.Task, _ mem.ObjPtr, sc Scale) mem.ObjPtr {
			return tourneyRec(t, 0, sc.N, sc.Grain)
		},
		Check: func(t *rts.Task, _, out mem.ObjPtr, sc Scale) uint64 {
			winner := t.ReadImmPtr(out, 0)
			// The champion was never eliminated; everyone else points up a
			// chain of increasing fitness ending at the champion.
			if !t.ReadMutPtr(winner, 0).IsNil() {
				return 0xBAD
			}
			return t.ReadImmWord(out, 0) ^ t.ReadMutWord(winner, 0)
		},
	}
}
