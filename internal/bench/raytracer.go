package bench

import (
	"math"

	"repro/internal/mem"
	"repro/internal/rts"
	"repro/internal/seq"
)

// A small Whitted-style ray tracer (§4.1's raytracer, adapted in the paper
// from Manticore's port of an Id program): spheres over a checkered floor,
// one directional light with hard shadows, rendered by tabulating the
// pixel sequence in parallel. The scene is static configuration data; all
// per-pixel work is pure floating-point computation.

type vec3 struct{ x, y, z float64 }

func vadd(a, b vec3) vec3           { return vec3{a.x + b.x, a.y + b.y, a.z + b.z} }
func vsub(a, b vec3) vec3           { return vec3{a.x - b.x, a.y - b.y, a.z - b.z} }
func vscale(a vec3, s float64) vec3 { return vec3{a.x * s, a.y * s, a.z * s} }
func vdot(a, b vec3) float64        { return a.x*b.x + a.y*b.y + a.z*b.z }
func vnorm(a vec3) vec3             { return vscale(a, 1/math.Sqrt(vdot(a, a))) }

type sphereObj struct {
	center vec3
	radius float64
	color  vec3
}

var rtScene = []sphereObj{
	{vec3{0, 1.0, 4.0}, 1.0, vec3{0.9, 0.2, 0.2}},
	{vec3{-2.2, 0.8, 5.0}, 0.8, vec3{0.2, 0.9, 0.2}},
	{vec3{2.1, 0.6, 3.2}, 0.6, vec3{0.2, 0.3, 0.9}},
	{vec3{-0.9, 0.4, 2.6}, 0.4, vec3{0.9, 0.8, 0.1}},
	{vec3{1.1, 1.6, 6.0}, 1.2, vec3{0.7, 0.2, 0.8}},
}

var rtLight = vec3{-0.5772, 0.5772, -0.5772} // toward the light

// intersectSphere returns the nearest positive hit distance or +Inf.
func intersectSphere(o, d vec3, s sphereObj) float64 {
	oc := vsub(o, s.center)
	b := vdot(oc, d)
	c := vdot(oc, oc) - s.radius*s.radius
	disc := b*b - c
	if disc < 0 {
		return math.Inf(1)
	}
	sq := math.Sqrt(disc)
	if t := -b - sq; t > 1e-4 {
		return t
	}
	if t := -b + sq; t > 1e-4 {
		return t
	}
	return math.Inf(1)
}

// traceRay shades one primary ray.
func traceRay(o, d vec3) vec3 {
	best := math.Inf(1)
	hit := -1
	for i, s := range rtScene {
		if t := intersectSphere(o, d, s); t < best {
			best, hit = t, i
		}
	}
	// Floor plane y = 0.
	var floorT = math.Inf(1)
	if d.y < -1e-6 {
		floorT = -o.y / d.y
	}

	switch {
	case hit >= 0 && best < floorT:
		s := rtScene[hit]
		p := vadd(o, vscale(d, best))
		n := vnorm(vsub(p, s.center))
		return shade(p, n, s.color)
	case !math.IsInf(floorT, 1):
		p := vadd(o, vscale(d, floorT))
		c := vec3{0.8, 0.8, 0.8}
		if (int(math.Floor(p.x))+int(math.Floor(p.z)))&1 == 0 {
			c = vec3{0.25, 0.25, 0.3}
		}
		return shade(p, vec3{0, 1, 0}, c)
	default: // sky gradient
		k := 0.5 * (d.y + 1)
		return vec3{0.5 + 0.3*k, 0.7 + 0.2*k, 1.0}
	}
}

func shade(p, n, color vec3) vec3 {
	lambert := vdot(n, rtLight)
	if lambert < 0 {
		lambert = 0
	}
	// Hard shadow: march toward the light.
	shadowO := vadd(p, vscale(n, 1e-3))
	for _, s := range rtScene {
		if !math.IsInf(intersectSphere(shadowO, rtLight, s), 1) {
			lambert = 0
			break
		}
	}
	k := 0.15 + 0.85*lambert
	return vscale(color, k)
}

func packRGB(c vec3) uint64 {
	clamp := func(v float64) uint64 {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		return uint64(v * 255)
	}
	return clamp(c.x)<<16 | clamp(c.y)<<8 | clamp(c.z)
}

// renderPixel computes pixel i of a side×side image.
func renderPixel(i, side int) uint64 {
	x, y := i%side, i/side
	fx := (float64(x)/float64(side))*2 - 1
	fy := 1 - (float64(y)/float64(side))*2
	o := vec3{0, 1.2, -1.5}
	d := vnorm(vec3{fx, fy * 0.9, 1.4})
	return packRGB(traceRay(o, d))
}

// Raytracer renders an N×N scene with pixel-range granularity Grain
// (paper: 600×600, 300 pixels).
func Raytracer() *Benchmark {
	return &Benchmark{
		Name:    "raytracer",
		Pure:    true,
		Default: Scale{N: 256, Grain: 300},
		Paper:   Scale{N: 600, Grain: 300},
		Setup:   func(t *rts.Task, sc Scale) mem.ObjPtr { return mem.NilPtr },
		Run: func(t *rts.Task, _ mem.ObjPtr, sc Scale) mem.ObjPtr {
			side := sc.N
			return seq.TabulateU64(t, mem.NilPtr, side*side, sc.Grain,
				func(t *rts.Task, _ mem.ObjPtr, i int) uint64 {
					return renderPixel(i, side)
				})
		},
		Check: func(t *rts.Task, _, out mem.ObjPtr, sc Scale) uint64 {
			return seq.Checksum(t, out)
		},
	}
}
