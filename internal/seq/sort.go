package seq

import (
	"repro/internal/mem"
	"repro/internal/rts"
)

// Sorting kernels for the msort family (§2, §4.1–4.2). The imperative
// quicksort works in place on a flat array through the runtime's mutable
// operations — the "fast sequential algorithm on small inputs" idiom whose
// efficiency the paper's design protects (local non-pointer writes). The
// pure quicksort allocates fresh arrays at every partition, which is why
// msort-pure trades speed for purity.

// InsertionSortFlat sorts arr[lo:hi) in place (used below a small cutoff).
func InsertionSortFlat(t *rts.Task, arr mem.ObjPtr, lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		v := t.ReadMutWord(arr, i)
		j := i - 1
		for j >= lo && t.ReadMutWord(arr, j) > v {
			t.WriteNonptr(arr, j+1, t.ReadMutWord(arr, j))
			j--
		}
		t.WriteNonptr(arr, j+1, v)
	}
}

// QuickSortInPlace sorts the flat word array arr[lo:hi) in place.
func QuickSortInPlace(t *rts.Task, arr mem.ObjPtr, lo, hi int) {
	for hi-lo > 16 {
		// median-of-three pivot
		a := t.ReadMutWord(arr, lo)
		b := t.ReadMutWord(arr, (lo+hi)/2)
		c := t.ReadMutWord(arr, hi-1)
		pivot := medianOf3(a, b, c)

		i, j := lo, hi-1
		for i <= j {
			for t.ReadMutWord(arr, i) < pivot {
				i++
			}
			for t.ReadMutWord(arr, j) > pivot {
				j--
			}
			if i <= j {
				vi, vj := t.ReadMutWord(arr, i), t.ReadMutWord(arr, j)
				t.WriteNonptr(arr, i, vj)
				t.WriteNonptr(arr, j, vi)
				i++
				j--
			}
		}
		// Recurse into the smaller side, loop on the larger.
		if j-lo < hi-i {
			QuickSortInPlace(t, arr, lo, j+1)
			lo = i
		} else {
			QuickSortInPlace(t, arr, i, hi)
			hi = j + 1
		}
	}
	InsertionSortFlat(t, arr, lo, hi)
}

func medianOf3(a, b, c uint64) uint64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// PureQSortFlat functionally sorts a flat array: every partition allocates
// fresh arrays (msort-pure's sequential base case).
func PureQSortFlat(t *rts.Task, s mem.ObjPtr) mem.ObjPtr {
	n := Length(t, s)
	if n <= 1 {
		return s
	}
	pivot := t.ReadImmWord(s, n/2)
	mark := t.PushRoot(&s) // callee copies are rooted independently
	lt := filterFlat(t, s, func(v uint64) bool { return v < pivot })
	t.PushRoot(&lt)
	gt := filterFlat(t, s, func(v uint64) bool { return v > pivot })
	t.PushRoot(&gt)
	ltS := PureQSortFlat(t, lt)
	t.PushRoot(&ltS)
	gtS := PureQSortFlat(t, gt)
	t.PushRoot(&gtS)
	dst := NewLeafU64(t, n)
	// Concatenate ltS ++ pivots ++ gtS.
	k := 0
	for i, m := 0, Length(t, ltS); i < m; i++ {
		t.WriteInitWord(dst, k, t.ReadImmWord(ltS, i))
		k++
	}
	for i := 0; i < n; i++ {
		if t.ReadImmWord(s, i) == pivot {
			t.WriteInitWord(dst, k, pivot)
			k++
		}
	}
	for i, m := 0, Length(t, gtS); i < m; i++ {
		t.WriteInitWord(dst, k, t.ReadImmWord(gtS, i))
		k++
	}
	t.PopRoots(mark)
	return dst
}

func filterFlat(t *rts.Task, s mem.ObjPtr, pred func(uint64) bool) mem.ObjPtr {
	n := Length(t, s)
	kept := 0
	for i := 0; i < n; i++ {
		if pred(t.ReadImmWord(s, i)) {
			kept++
		}
	}
	mark := t.PushRoot(&s)
	dst := NewLeafU64(t, kept)
	t.PopRoots(mark)
	j := 0
	for i := 0; i < n; i++ {
		if v := t.ReadImmWord(s, i); pred(v) {
			t.WriteInitWord(dst, j, v)
			j++
		}
	}
	return dst
}

// MergeFlatSorted merges two sorted flat arrays into a fresh sorted array
// (Figure 1's Seq.merge at the joins of msort).
func MergeFlatSorted(t *rts.Task, a, b mem.ObjPtr) mem.ObjPtr {
	na, nb := Length(t, a), Length(t, b)
	mark := t.PushRoot(&a, &b)
	dst := NewLeafU64(t, na+nb)
	t.PopRoots(mark)
	i, j, k := 0, 0, 0
	for i < na && j < nb {
		va, vb := t.ReadImmWord(a, i), t.ReadImmWord(b, j)
		if va <= vb {
			t.WriteInitWord(dst, k, va)
			i++
		} else {
			t.WriteInitWord(dst, k, vb)
			j++
		}
		k++
	}
	for ; i < na; i++ {
		t.WriteInitWord(dst, k, t.ReadImmWord(a, i))
		k++
	}
	for ; j < nb; j++ {
		t.WriteInitWord(dst, k, t.ReadImmWord(b, j))
		k++
	}
	return dst
}

// MergeDedupFlat merges two sorted duplicate-free flat arrays, dropping
// cross-array duplicates (dedup's join step).
func MergeDedupFlat(t *rts.Task, a, b mem.ObjPtr) mem.ObjPtr {
	na, nb := Length(t, a), Length(t, b)
	// Counting pass for the exact output size.
	n := 0
	i, j := 0, 0
	for i < na && j < nb {
		va, vb := t.ReadImmWord(a, i), t.ReadImmWord(b, j)
		switch {
		case va < vb:
			i++
		case vb < va:
			j++
		default:
			i++
			j++
		}
		n++
	}
	n += (na - i) + (nb - j)

	mark := t.PushRoot(&a, &b)
	dst := NewLeafU64(t, n)
	t.PopRoots(mark)
	i, j = 0, 0
	k := 0
	for i < na && j < nb {
		va, vb := t.ReadImmWord(a, i), t.ReadImmWord(b, j)
		switch {
		case va < vb:
			t.WriteInitWord(dst, k, va)
			i++
		case vb < va:
			t.WriteInitWord(dst, k, vb)
			j++
		default:
			t.WriteInitWord(dst, k, va)
			i++
			j++
		}
		k++
	}
	for ; i < na; i++ {
		t.WriteInitWord(dst, k, t.ReadImmWord(a, i))
		k++
	}
	for ; j < nb; j++ {
		t.WriteInitWord(dst, k, t.ReadImmWord(b, j))
		k++
	}
	return dst
}

// HashDedupSortFlat returns the sorted unique elements of a flat array by
// inserting into a local open-addressing hash set and sorting the survivors
// in place (dedup's sequential base case: imperative local writes).
func HashDedupSortFlat(t *rts.Task, s mem.ObjPtr) mem.ObjPtr {
	n := Length(t, s)
	capacity := 16
	for capacity < 2*n {
		capacity *= 2
	}
	mark := t.PushRoot(&s)
	tbl := NewLeafU64(t, capacity)
	t.PushRoot(&tbl)
	flags := NewLeafU64(t, capacity)
	t.PushRoot(&flags)

	unique := 0
	maskBits := capacity - 1
	for i := 0; i < n; i++ {
		v := t.ReadImmWord(s, i)
		j := int(Hash64(v)) & maskBits
		for {
			if t.ReadMutWord(flags, j) == 0 {
				t.WriteNonptr(flags, j, 1)
				t.WriteNonptr(tbl, j, v)
				unique++
				break
			}
			if t.ReadMutWord(tbl, j) == v {
				break
			}
			j = (j + 1) & maskBits
		}
	}
	dst := NewLeafU64(t, unique)
	t.PopRoots(mark)
	k := 0
	for j := 0; j < capacity; j++ {
		if t.ReadMutWord(flags, j) == 1 {
			t.WriteInitWord(dst, k, t.ReadMutWord(tbl, j))
			k++
		}
	}
	QuickSortInPlace(t, dst, 0, unique)
	return dst
}
