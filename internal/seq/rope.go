package seq

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/rts"
)

// DefaultGrain is the default leaf size (elements per leaf).
const DefaultGrain = 1024

// NewLeafU64 allocates a word leaf of length n (uninitialized).
func NewLeafU64(t *rts.Task, n int) mem.ObjPtr {
	return t.Alloc(0, n, mem.TagArrI64)
}

// NewLeafPtr allocates a pointer leaf of length n (nil-initialized).
func NewLeafPtr(t *rts.Task, n int) mem.ObjPtr {
	return t.Alloc(n, 0, mem.TagArrPtr)
}

// NewNode allocates an interior node over l and r, which must both live in
// the current task's heap or an ancestor (the post-join discipline).
func NewNode(t *rts.Task, l, r mem.ObjPtr) mem.ObjPtr {
	llen, rlen := Length(t, l), Length(t, r)
	mark := t.PushRoot(&l, &r)
	n := t.Alloc(2, 1, mem.TagNode)
	t.PopRoots(mark)
	t.WriteInitPtr(n, 0, l)
	t.WriteInitPtr(n, 1, r)
	t.WriteInitWord(n, 0, uint64(llen+rlen))
	return n
}

// IsNode reports whether s is an interior rope node.
func IsNode(s mem.ObjPtr) bool { return mem.TagOf(s) == mem.TagNode }

// Left returns a node's left child.
func Left(t *rts.Task, s mem.ObjPtr) mem.ObjPtr { return t.ReadImmPtr(s, 0) }

// Right returns a node's right child.
func Right(t *rts.Task, s mem.ObjPtr) mem.ObjPtr { return t.ReadImmPtr(s, 1) }

// Length returns the number of elements in a sequence (rope or leaf).
func Length(t *rts.Task, s mem.ObjPtr) int {
	switch mem.TagOf(s) {
	case mem.TagNode:
		return int(t.ReadImmWord(s, 0))
	case mem.TagArrPtr:
		return mem.NumPtrFields(s)
	case mem.TagArrI64:
		return mem.NumNonptrWords(s)
	default:
		panic(fmt.Sprintf("seq: not a sequence: %v tag %v", s, mem.TagOf(s)))
	}
}

// GetU64 returns element i of a word sequence (O(depth)).
func GetU64(t *rts.Task, s mem.ObjPtr, i int) uint64 {
	for IsNode(s) {
		l := Left(t, s)
		if ll := Length(t, l); i < ll {
			s = l
		} else {
			i -= ll
			s = Right(t, s)
		}
	}
	return t.ReadImmWord(s, i)
}

// GetPtr returns element i of a pointer sequence (O(depth)).
func GetPtr(t *rts.Task, s mem.ObjPtr, i int) mem.ObjPtr {
	for IsNode(s) {
		l := Left(t, s)
		if ll := Length(t, l); i < ll {
			s = l
		} else {
			i -= ll
			s = Right(t, s)
		}
	}
	return t.ReadImmPtr(s, i)
}

// ToFlatU64 flattens a word sequence into a single fresh leaf array.
func ToFlatU64(t *rts.Task, s mem.ObjPtr) mem.ObjPtr {
	n := Length(t, s)
	mark := t.PushRoot(&s)
	dst := NewLeafU64(t, n)
	t.PopRoots(mark)
	off := 0
	copyLeavesU64(t, s, dst, &off)
	return dst
}

// copyLeavesU64 walks the rope left to right copying elements into dst
// starting at *off. It allocates nothing.
func copyLeavesU64(t *rts.Task, s, dst mem.ObjPtr, off *int) {
	if IsNode(s) {
		copyLeavesU64(t, Left(t, s), dst, off)
		copyLeavesU64(t, Right(t, s), dst, off)
		return
	}
	n := Length(t, s)
	for i := 0; i < n; i++ {
		t.WriteInitWord(dst, *off+i, t.ReadImmWord(s, i))
	}
	*off += n
}

// subLeafU64 copies [lo,hi) of a word leaf into a fresh leaf.
func subLeafU64(t *rts.Task, s mem.ObjPtr, lo, hi int) mem.ObjPtr {
	mark := t.PushRoot(&s)
	dst := NewLeafU64(t, hi-lo)
	t.PopRoots(mark)
	for i := lo; i < hi; i++ {
		t.WriteInitWord(dst, i-lo, t.ReadImmWord(s, i))
	}
	return dst
}

// Split divides a word sequence at k: the result sequences cover [0,k) and
// [k,n). Interior structure is shared; at most one leaf per side is copied.
func Split(t *rts.Task, s mem.ObjPtr, k int) (mem.ObjPtr, mem.ObjPtr) {
	n := Length(t, s)
	if k < 0 || k > n {
		panic(fmt.Sprintf("seq: split index %d out of range %d", k, n))
	}
	return splitRec(t, s, k)
}

func splitRec(t *rts.Task, s mem.ObjPtr, k int) (mem.ObjPtr, mem.ObjPtr) {
	if !IsNode(s) {
		n := Length(t, s)
		switch k {
		case 0:
			mark := t.PushRoot(&s)
			empty := NewLeafU64(t, 0)
			t.PopRoots(mark)
			return empty, s
		case n:
			mark := t.PushRoot(&s)
			empty := NewLeafU64(t, 0)
			t.PopRoots(mark)
			return s, empty
		default:
			l := subLeafU64(t, s, 0, k)
			mark := t.PushRoot(&l, &s)
			r := subLeafU64(t, s, k, n)
			t.PopRoots(mark)
			return l, r
		}
	}
	l, r := Left(t, s), Right(t, s)
	ll := Length(t, l)
	switch {
	case k == ll:
		return l, r
	case k < ll:
		mark := t.PushRoot(&r) // live across the allocating recursion
		a, b := splitRec(t, l, k)
		t.PushRoot(&a)
		rest := NewNode(t, b, r)
		t.PopRoots(mark)
		return a, rest
	default:
		mark := t.PushRoot(&l)
		a, b := splitRec(t, r, k-ll)
		t.PushRoot(&b)
		front := NewNode(t, l, a)
		t.PopRoots(mark)
		return front, b
	}
}

// SplitMid divides a sequence at its midpoint (Figure 1's Seq.splitMid).
func SplitMid(t *rts.Task, s mem.ObjPtr) (mem.ObjPtr, mem.ObjPtr) {
	return Split(t, s, Length(t, s)/2)
}

// Checksum folds a word sequence into an order-sensitive digest, for
// validating benchmark outputs.
func Checksum(t *rts.Task, s mem.ObjPtr) uint64 {
	var sum uint64 = 14695981039346656037
	foldLeaves(t, s, &sum)
	return sum
}

func foldLeaves(t *rts.Task, s mem.ObjPtr, sum *uint64) {
	if IsNode(s) {
		foldLeaves(t, Left(t, s), sum)
		foldLeaves(t, Right(t, s), sum)
		return
	}
	n := Length(t, s)
	for i := 0; i < n; i++ {
		*sum = (*sum ^ t.ReadImmWord(s, i)) * 1099511628211
	}
}

// Hash64 is the suite's input generator: a 64-bit mix of the index
// (the "elements generated randomly with a hash function" of §4).
func Hash64(i uint64) uint64 {
	x := i + 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
