package seq

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/rts"
)

// Parallel combinators. All of them thread env — a single managed object
// carrying every object pointer the leaves need — through the forks, so
// stolen work always sees valid (possibly promoted) pointers. Callback
// functions must not capture mem.ObjPtr values; pointers travel in env.

// checkGrain rejects non-positive grains. A grain of zero or less used to
// be clamped silently, hiding scale bugs (a miscomputed grain collapses
// the combinator to maximum fork depth or, worse, makes the caller believe
// it chose a sequential cutoff it never got).
func checkGrain(op string, grain int) {
	if grain < 1 {
		panic(fmt.Sprintf("seq: %s grain must be >= 1, got %d", op, grain))
	}
}

// ParDo runs body over [lo,hi) in parallel, splitting down to grain.
func ParDo(t *rts.Task, env mem.ObjPtr, lo, hi, grain int, body func(t *rts.Task, env mem.ObjPtr, lo, hi int)) {
	checkGrain("ParDo", grain)
	if hi-lo <= grain {
		if hi > lo {
			body(t, env, lo, hi)
		}
		return
	}
	mid := lo + (hi-lo)/2
	t.ForkJoinScalar(env,
		func(t *rts.Task, env mem.ObjPtr) uint64 { ParDo(t, env, lo, mid, grain, body); return 0 },
		func(t *rts.Task, env mem.ObjPtr) uint64 { ParDo(t, env, mid, hi, grain, body); return 0 })
}

// ParSum folds body's results over [lo,hi) with addition.
func ParSum(t *rts.Task, env mem.ObjPtr, lo, hi, grain int, body func(t *rts.Task, env mem.ObjPtr, lo, hi int) uint64) uint64 {
	checkGrain("ParSum", grain)
	if hi-lo <= grain {
		if hi <= lo {
			return 0
		}
		return body(t, env, lo, hi)
	}
	mid := lo + (hi-lo)/2
	a, b := t.ForkJoinScalar(env,
		func(t *rts.Task, env mem.ObjPtr) uint64 { return ParSum(t, env, lo, mid, grain, body) },
		func(t *rts.Task, env mem.ObjPtr) uint64 { return ParSum(t, env, mid, hi, grain, body) })
	return a + b
}

// ParCollect builds a rope whose leaves are produced by leaf over grain-
// sized ranges. Leaves are allocated by the task that computes them; the
// interior nodes are allocated after the children join.
func ParCollect(t *rts.Task, env mem.ObjPtr, lo, hi, grain int, leaf func(t *rts.Task, env mem.ObjPtr, lo, hi int) mem.ObjPtr) mem.ObjPtr {
	checkGrain("ParCollect", grain)
	if hi-lo <= grain {
		return leaf(t, env, lo, hi)
	}
	mid := lo + (hi-lo)/2
	l, r := t.ForkJoin(env,
		func(t *rts.Task, env mem.ObjPtr) mem.ObjPtr { return ParCollect(t, env, lo, mid, grain, leaf) },
		func(t *rts.Task, env mem.ObjPtr) mem.ObjPtr { return ParCollect(t, env, mid, hi, grain, leaf) })
	return NewNode(t, l, r)
}

// TabulateU64 builds the sequence [f(env,0), …, f(env,n-1)] in parallel.
// f must not allocate (scalar computation over env's data).
func TabulateU64(t *rts.Task, env mem.ObjPtr, n, grain int, f func(t *rts.Task, env mem.ObjPtr, i int) uint64) mem.ObjPtr {
	return ParCollect(t, env, 0, n, grain,
		func(t *rts.Task, env mem.ObjPtr, lo, hi int) mem.ObjPtr {
			mark := t.PushRoot(&env)
			a := NewLeafU64(t, hi-lo)
			t.PopRoots(mark)
			for i := lo; i < hi; i++ {
				t.WriteInitWord(a, i-lo, f(t, env, i))
			}
			return a
		})
}

// TabulatePtr builds a pointer sequence in parallel; f may allocate (it
// typically builds one element object), so the leaf array and env stay
// rooted across each call.
func TabulatePtr(t *rts.Task, env mem.ObjPtr, n, grain int, f func(t *rts.Task, env mem.ObjPtr, i int) mem.ObjPtr) mem.ObjPtr {
	return ParCollect(t, env, 0, n, grain,
		func(t *rts.Task, env mem.ObjPtr, lo, hi int) mem.ObjPtr {
			mark := t.PushRoot(&env)
			a := NewLeafPtr(t, hi-lo)
			t.PushRoot(&a)
			for i := lo; i < hi; i++ {
				p := f(t, env, i)
				t.WriteInitPtr(a, i-lo, p)
			}
			t.PopRoots(mark)
			return a
		})
}

// MapU64 applies a scalar function to every element, preserving shape.
func MapU64(t *rts.Task, s mem.ObjPtr, f func(uint64) uint64) mem.ObjPtr {
	if !IsNode(s) {
		n := Length(t, s)
		mark := t.PushRoot(&s)
		dst := NewLeafU64(t, n)
		t.PopRoots(mark)
		for i := 0; i < n; i++ {
			t.WriteInitWord(dst, i, f(t.ReadImmWord(s, i)))
		}
		return dst
	}
	l, r := t.ForkJoin(s,
		func(t *rts.Task, env mem.ObjPtr) mem.ObjPtr { return MapU64(t, Left(t, env), f) },
		func(t *rts.Task, env mem.ObjPtr) mem.ObjPtr { return MapU64(t, Right(t, env), f) })
	return NewNode(t, l, r)
}

// ReduceU64 folds the sequence with an associative scalar combine.
func ReduceU64(t *rts.Task, s mem.ObjPtr, id uint64, combine func(a, b uint64) uint64) uint64 {
	if !IsNode(s) {
		acc := id
		for i, n := 0, Length(t, s); i < n; i++ {
			acc = combine(acc, t.ReadImmWord(s, i))
		}
		return acc
	}
	a, b := t.ForkJoinScalar(s,
		func(t *rts.Task, env mem.ObjPtr) uint64 { return ReduceU64(t, Left(t, env), id, combine) },
		func(t *rts.Task, env mem.ObjPtr) uint64 { return ReduceU64(t, Right(t, env), id, combine) })
	return combine(a, b)
}

// FilterU64 keeps the elements satisfying a scalar predicate.
func FilterU64(t *rts.Task, s mem.ObjPtr, pred func(uint64) bool) mem.ObjPtr {
	if !IsNode(s) {
		n := Length(t, s)
		kept := 0
		for i := 0; i < n; i++ {
			if pred(t.ReadImmWord(s, i)) {
				kept++
			}
		}
		mark := t.PushRoot(&s)
		dst := NewLeafU64(t, kept)
		t.PopRoots(mark)
		j := 0
		for i := 0; i < n; i++ {
			if v := t.ReadImmWord(s, i); pred(v) {
				t.WriteInitWord(dst, j, v)
				j++
			}
		}
		return dst
	}
	l, r := t.ForkJoin(s,
		func(t *rts.Task, env mem.ObjPtr) mem.ObjPtr { return FilterU64(t, Left(t, env), pred) },
		func(t *rts.Task, env mem.ObjPtr) mem.ObjPtr { return FilterU64(t, Right(t, env), pred) })
	return NewNode(t, l, r)
}
