// Package seq implements the immutable sequence library the paper's
// benchmarks are written against (the Seq module of §2), plus the flat
// mutable arrays used by the imperative benchmarks.
//
// A sequence is a rope: a balanced binary tree whose leaves are flat
// arrays of up to a grain's worth of elements. Ropes make the benchmark
// suite's functional operations allocation-friendly and fork-join shaped:
// tabulate/map/filter build leaves inside the task that computes them, and
// interior nodes are allocated after the children join — so under
// hierarchical heaps the entire construction is disentangled and promotes
// nothing, while under a DLG-style runtime every steal communicates (and
// therefore promotes) whole subtrees.
//
// Rooting discipline: every function that allocates registers the object
// pointers it holds across the allocation on the task's shadow stack, so
// any operation may trigger a collection safely.
package seq
