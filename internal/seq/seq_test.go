package seq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gc"
	"repro/internal/mem"
	"repro/internal/rts"
)

// runOn executes fn on a fresh runtime with an aggressive GC policy.
func runOn(t *testing.T, mode rts.Mode, procs int, fn func(task *rts.Task) uint64) uint64 {
	t.Helper()
	cfg := rts.DefaultConfig(mode, procs)
	cfg.Policy = gc.Policy{MinWords: 4096, Ratio: 1.5}
	cfg.STWFloorBytes = 1 << 18
	r := rts.New(cfg)
	defer r.Close()
	return r.Run(fn)
}

// toGo reads a word sequence into a Go slice.
func toGo(t *rts.Task, s mem.ObjPtr) []uint64 {
	n := Length(t, s)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = GetU64(t, s, i)
	}
	return out
}

func goChecksum(vals []uint64) uint64 {
	var sum uint64 = 14695981039346656037
	for _, v := range vals {
		sum = (sum ^ v) * 1099511628211
	}
	return sum
}

var testModes = []rts.Mode{rts.ParMem, rts.STW, rts.Seq, rts.Manticore}

func TestTabulateMatchesReference(t *testing.T) {
	const n, grain = 5000, 64
	want := make([]uint64, n)
	for i := range want {
		want[i] = Hash64(uint64(i))
	}
	for _, mode := range testModes {
		procs := 2
		if mode == rts.Seq {
			procs = 1
		}
		got := runOn(t, mode, procs, func(task *rts.Task) uint64 {
			s := TabulateU64(task, mem.NilPtr, n, grain,
				func(t *rts.Task, _ mem.ObjPtr, i int) uint64 { return Hash64(uint64(i)) })
			if Length(task, s) != n {
				return 0
			}
			return Checksum(task, s)
		})
		if got != goChecksum(want) {
			t.Fatalf("%v: tabulate checksum mismatch", mode)
		}
	}
}

func TestMapReduceFilter(t *testing.T) {
	const n, grain = 4000, 32
	ref := make([]uint64, n)
	for i := range ref {
		ref[i] = Hash64(uint64(i))
	}
	var refSum uint64
	var refKept []uint64
	for _, v := range ref {
		refSum += v*2 + 1
		if v%3 == 0 {
			refKept = append(refKept, v)
		}
	}
	for _, mode := range testModes {
		procs := 2
		if mode == rts.Seq {
			procs = 1
		}
		ok := runOn(t, mode, procs, func(task *rts.Task) uint64 {
			s := TabulateU64(task, mem.NilPtr, n, grain,
				func(t *rts.Task, _ mem.ObjPtr, i int) uint64 { return Hash64(uint64(i)) })
			mark := task.PushRoot(&s)
			m := MapU64(task, s, func(v uint64) uint64 { return v*2 + 1 })
			task.PushRoot(&m)
			if got := ReduceU64(task, m, 0, func(a, b uint64) uint64 { return a + b }); got != refSum {
				return 0
			}
			kept := FilterU64(task, s, func(v uint64) bool { return v%3 == 0 })
			task.PushRoot(&kept)
			okC := Checksum(task, kept) == goChecksum(refKept)
			task.PopRoots(mark)
			if !okC {
				return 0
			}
			return 1
		})
		if ok != 1 {
			t.Fatalf("%v: map/reduce/filter mismatch", mode)
		}
	}
}

func TestSplitProperties(t *testing.T) {
	f := func(seed int64, szRaw, kRaw uint16) bool {
		n := int(szRaw)%3000 + 1
		k := int(kRaw) % (n + 1)
		rng := rand.New(rand.NewSource(seed))
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64()
		}
		ok := runOn(t, rts.ParMem, 2, func(task *rts.Task) uint64 {
			s := TabulateU64(task, mem.NilPtr, n, 37,
				func(t *rts.Task, _ mem.ObjPtr, i int) uint64 { return vals[i] })
			mark := task.PushRoot(&s)
			l, r := Split(task, s, k)
			task.PopRoots(mark)
			if Length(task, l) != k || Length(task, r) != n-k {
				return 0
			}
			if goChecksum(vals[:k]) != Checksum(task, l) {
				return 0
			}
			if goChecksum(vals[k:]) != Checksum(task, r) {
				return 0
			}
			return 1
		})
		return ok == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestToFlatAndGet(t *testing.T) {
	const n = 2500
	ok := runOn(t, rts.ParMem, 2, func(task *rts.Task) uint64 {
		s := TabulateU64(task, mem.NilPtr, n, 100,
			func(t *rts.Task, _ mem.ObjPtr, i int) uint64 { return uint64(i) * 7 })
		mark := task.PushRoot(&s)
		flat := ToFlatU64(task, s)
		task.PopRoots(mark)
		if Length(task, flat) != n || IsNode(flat) {
			return 0
		}
		for i := 0; i < n; i += 97 {
			if task.ReadImmWord(flat, i) != uint64(i)*7 || GetU64(task, s, i) != uint64(i)*7 {
				return 0
			}
		}
		return 1
	})
	if ok != 1 {
		t.Fatal("flatten/get mismatch")
	}
}

func TestQuickSortInPlace(t *testing.T) {
	f := func(seed int64, szRaw uint16) bool {
		n := int(szRaw)%2000 + 1
		rng := rand.New(rand.NewSource(seed))
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() % 500 // duplicates likely
		}
		sorted := append([]uint64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		ok := runOn(t, rts.Seq, 1, func(task *rts.Task) uint64 {
			arr := NewLeafU64(task, n)
			for i, v := range vals {
				task.WriteInitWord(arr, i, v)
			}
			QuickSortInPlace(task, arr, 0, n)
			if goChecksum(sorted) != Checksum(task, arr) {
				return 0
			}
			return 1
		})
		return ok == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPureQSort(t *testing.T) {
	f := func(seed int64, szRaw uint16) bool {
		n := int(szRaw) % 800
		rng := rand.New(rand.NewSource(seed))
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() % 300
		}
		sorted := append([]uint64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		ok := runOn(t, rts.Seq, 1, func(task *rts.Task) uint64 {
			arr := NewLeafU64(task, n)
			for i, v := range vals {
				task.WriteInitWord(arr, i, v)
			}
			mark := task.PushRoot(&arr)
			res := PureQSortFlat(task, arr)
			task.PopRoots(mark)
			if goChecksum(sorted) != Checksum(task, res) {
				return 0
			}
			return 1
		})
		return ok == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeFlatSorted(t *testing.T) {
	f := func(seed int64, naRaw, nbRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		na, nb := int(naRaw)%200, int(nbRaw)%200
		a := make([]uint64, na)
		b := make([]uint64, nb)
		for i := range a {
			a[i] = rng.Uint64() % 1000
		}
		for i := range b {
			b[i] = rng.Uint64() % 1000
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		merged := append(append([]uint64(nil), a...), b...)
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		ok := runOn(t, rts.Seq, 1, func(task *rts.Task) uint64 {
			pa := NewLeafU64(task, na)
			for i, v := range a {
				task.WriteInitWord(pa, i, v)
			}
			mark := task.PushRoot(&pa)
			pb := NewLeafU64(task, nb)
			task.PushRoot(&pb)
			for i, v := range b {
				task.WriteInitWord(pb, i, v)
			}
			res := MergeFlatSorted(task, pa, pb)
			task.PopRoots(mark)
			if Checksum(task, res) != goChecksum(merged) {
				return 0
			}
			return 1
		})
		return ok == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHashDedupAndMergeDedup(t *testing.T) {
	f := func(seed int64, szRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw)%600 + 1
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() % 50 // heavy duplication
		}
		uniq := map[uint64]bool{}
		for _, v := range vals {
			uniq[v] = true
		}
		var want []uint64
		for v := range uniq {
			want = append(want, v)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		ok := runOn(t, rts.Seq, 1, func(task *rts.Task) uint64 {
			arr := NewLeafU64(task, n)
			for i, v := range vals {
				task.WriteInitWord(arr, i, v)
			}
			mark := task.PushRoot(&arr)
			half := n / 2
			a := subLeafU64(task, arr, 0, half)
			task.PushRoot(&a)
			b := subLeafU64(task, arr, half, n)
			task.PushRoot(&b)
			da := HashDedupSortFlat(task, a)
			task.PushRoot(&da)
			db := HashDedupSortFlat(task, b)
			task.PushRoot(&db)
			res := MergeDedupFlat(task, da, db)
			task.PopRoots(mark)
			if Checksum(task, res) != goChecksum(want) {
				return 0
			}
			return 1
		})
		return ok == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTabulatePtr(t *testing.T) {
	const n = 600
	ok := runOn(t, rts.ParMem, 2, func(task *rts.Task) uint64 {
		s := TabulatePtr(task, mem.NilPtr, n, 16,
			func(t *rts.Task, _ mem.ObjPtr, i int) mem.ObjPtr {
				p := t.Alloc(0, 1, mem.TagRef)
				t.WriteInitWord(p, 0, uint64(i)*3)
				return p
			})
		for i := 0; i < n; i += 17 {
			p := GetPtr(task, s, i)
			if task.ReadImmWord(p, 0) != uint64(i)*3 {
				return 0
			}
		}
		return 1
	})
	if ok != 1 {
		t.Fatal("tabulate-ptr mismatch")
	}
}

func TestParDoAndParSum(t *testing.T) {
	const n = 3000
	got := runOn(t, rts.ParMem, 2, func(task *rts.Task) uint64 {
		arr := task.AllocMut(0, n, mem.TagArrI64)
		mark := task.PushRoot(&arr)
		ParDo(task, arr, 0, n, 64, func(t *rts.Task, env mem.ObjPtr, lo, hi int) {
			for i := lo; i < hi; i++ {
				t.WriteNonptr(env, i, uint64(i))
			}
		})
		sum := ParSum(task, arr, 0, n, 64, func(t *rts.Task, env mem.ObjPtr, lo, hi int) uint64 {
			var s uint64
			for i := lo; i < hi; i++ {
				s += t.ReadMutWord(env, i)
			}
			return s
		})
		task.PopRoots(mark)
		return sum
	})
	if got != uint64(n*(n-1)/2) {
		t.Fatalf("parsum = %d", got)
	}
}

func TestNonPositiveGrainPanics(t *testing.T) {
	mustPanic := func(name string, fn func(task *rts.Task)) {
		t.Helper()
		runOn(t, rts.Seq, 1, func(task *rts.Task) uint64 {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with non-positive grain did not panic", name)
				}
			}()
			fn(task)
			return 0
		})
	}
	noop := func(t *rts.Task, env mem.ObjPtr, lo, hi int) {}
	zero := func(t *rts.Task, env mem.ObjPtr, lo, hi int) uint64 { return 0 }
	leaf := func(t *rts.Task, env mem.ObjPtr, lo, hi int) mem.ObjPtr { return NewLeafU64(t, hi-lo) }
	mustPanic("ParDo", func(task *rts.Task) { ParDo(task, mem.NilPtr, 0, 10, 0, noop) })
	mustPanic("ParSum", func(task *rts.Task) { ParSum(task, mem.NilPtr, 0, 10, -3, zero) })
	mustPanic("ParCollect", func(task *rts.Task) { ParCollect(task, mem.NilPtr, 0, 10, 0, leaf) })
	mustPanic("TabulateU64", func(task *rts.Task) {
		TabulateU64(task, mem.NilPtr, 10, 0, func(t *rts.Task, _ mem.ObjPtr, i int) uint64 { return 0 })
	})
}
