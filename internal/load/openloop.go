package load

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lat"
)

// Open-loop load generation. The closed loop (Drive) hides queueing
// delay: each client waits for its previous reply before sending again,
// so a slow server quietly slows the offered load and latency percentiles
// look flat — the coordinated-omission trap. The open loop severs that
// feedback: arrival times are fixed in advance by an arrival Shape, each
// request's latency is measured from its INTENDED send time (not the
// moment a connection finally got free to send it), and a server that
// cannot keep up accumulates visibly late requests instead of silently
// receiving fewer.

// Shape is a deterministic arrival process: Offsets(n) returns the
// intended send time of each of n requests as offsets from the start of
// the run.
type Shape interface {
	Offsets(n int) []time.Duration
	String() string
}

// SteadyShape issues requests at a constant rate.
type SteadyShape struct{ Rate float64 } // requests per second

func (s SteadyShape) Offsets(n int) []time.Duration {
	out := make([]time.Duration, n)
	per := float64(time.Second) / s.Rate
	for i := range out {
		out[i] = time.Duration(float64(i) * per)
	}
	return out
}

func (s SteadyShape) String() string { return fmt.Sprintf("steady:%g", s.Rate) }

// BurstShape alternates a base rate with burst-rate windows: every
// Period, the first Burst of it runs at PeakRate, the rest at BaseRate —
// the overload pattern that forces shedding.
type BurstShape struct {
	BaseRate, PeakRate float64
	Period, Burst      time.Duration
}

func (s BurstShape) rate(t time.Duration) float64 {
	if s.Period <= 0 {
		return s.BaseRate
	}
	if t%s.Period < s.Burst {
		return s.PeakRate
	}
	return s.BaseRate
}

func (s BurstShape) Offsets(n int) []time.Duration { return integrate(n, s.rate) }

func (s BurstShape) String() string {
	return fmt.Sprintf("burst:%g:%g:%s:%s", s.BaseRate, s.PeakRate, s.Period, s.Burst)
}

// DiurnalShape sweeps the rate sinusoidally between MinRate and MaxRate
// over Period — a compressed day/night traffic curve.
type DiurnalShape struct {
	MinRate, MaxRate float64
	Period           time.Duration
}

func (s DiurnalShape) rate(t time.Duration) float64 {
	if s.Period <= 0 {
		return s.MinRate
	}
	mid := (s.MinRate + s.MaxRate) / 2
	amp := (s.MaxRate - s.MinRate) / 2
	return mid + amp*math.Sin(2*math.Pi*float64(t)/float64(s.Period))
}

func (s DiurnalShape) Offsets(n int) []time.Duration { return integrate(n, s.rate) }

func (s DiurnalShape) String() string {
	return fmt.Sprintf("diurnal:%g:%g:%s", s.MinRate, s.MaxRate, s.Period)
}

// integrate walks a time-varying rate function: each interarrival gap is
// 1/rate at the current offset. Rates below 1 req/s clamp the gap at 1s
// so a zero-rate trough cannot stall the schedule forever.
func integrate(n int, rate func(time.Duration) float64) []time.Duration {
	out := make([]time.Duration, n)
	var t time.Duration
	for i := range out {
		out[i] = t
		r := rate(t)
		if r < 1 {
			r = 1
		}
		t += time.Duration(float64(time.Second) / r)
	}
	return out
}

// ParseShape parses the hhshoot -shape syntax:
//
//	steady:<rate>
//	burst:<base>:<peak>:<period>:<burstlen>
//	diurnal:<min>:<max>:<period>
//
// Rates are req/s; durations use Go syntax ("500ms").
func ParseShape(spec string) (Shape, error) {
	parts := strings.Split(spec, ":")
	bad := func() (Shape, error) {
		return nil, fmt.Errorf("load: bad shape %q (want steady:<rate> | burst:<base>:<peak>:<period>:<burstlen> | diurnal:<min>:<max>:<period>)", spec)
	}
	num := func(s string) (float64, bool) {
		v, err := strconv.ParseFloat(s, 64)
		return v, err == nil && v > 0
	}
	dur := func(s string) (time.Duration, bool) {
		d, err := time.ParseDuration(s)
		return d, err == nil && d > 0
	}
	switch parts[0] {
	case "steady":
		if len(parts) != 2 {
			return bad()
		}
		r, ok := num(parts[1])
		if !ok {
			return bad()
		}
		return SteadyShape{Rate: r}, nil
	case "burst":
		if len(parts) != 5 {
			return bad()
		}
		base, ok1 := num(parts[1])
		peak, ok2 := num(parts[2])
		period, ok3 := dur(parts[3])
		burst, ok4 := dur(parts[4])
		if !ok1 || !ok2 || !ok3 || !ok4 || burst > period {
			return bad()
		}
		return BurstShape{BaseRate: base, PeakRate: peak, Period: period, Burst: burst}, nil
	case "diurnal":
		if len(parts) != 4 {
			return bad()
		}
		min, ok1 := num(parts[1])
		max, ok2 := num(parts[2])
		period, ok3 := dur(parts[3])
		if !ok1 || !ok2 || !ok3 || max < min {
			return bad()
		}
		return DiurnalShape{MinRate: min, MaxRate: max, Period: period}, nil
	}
	return bad()
}

// OpenOutcome is one request's result as reported by the transport layer.
type OpenOutcome struct {
	Checksum uint64 // valid when OK
	OK       bool   // completed with a checksum
	Shed     bool   // explicitly rejected by the server (counted, not latency-recorded)
	Err      error  // transport or server error
}

// OpenDo issues request i (seed = i+1 by the cross-mode convention) on
// the given stream and blocks until its outcome. Implementations retry
// internally if they want shed requests eventually served
// (checksum-parity runs do).
type OpenDo func(stream int, i uint64) OpenOutcome

// OpenResult summarizes one open-loop run.
type OpenResult struct {
	Sent     int64 // requests issued (includes those later shed)
	OK       int64
	Shed     int64 // requests whose final outcome was a shed rejection
	Errors   int64
	Checksum uint64 // order-independent sum over OK requests
	Elapsed  time.Duration

	// Hist holds intended-time latency: completion minus INTENDED send
	// time, so queueing delay both client- and server-side is charged to
	// the request (coordinated-omission safe). Only OK requests record.
	Hist lat.Hist

	// LateStarts counts requests whose actual send lagged their intended
	// time by over a millisecond — the generator falling behind (too few
	// connections for the offered rate). The latency numbers remain
	// honest (they charge from intended time); this is the tell that the
	// offered load, not the server, was the bottleneck.
	LateStarts int64
}

// Throughput returns completed requests per second of the run.
func (r OpenResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.OK) / r.Elapsed.Seconds()
}

// ShedRate returns the fraction of issued requests that were shed.
func (r OpenResult) ShedRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Sent)
}

// OpenLoop runs n requests against do on conns concurrent streams with
// arrival times fixed by shape. Request i is dispatched no earlier than
// its intended offset; if every stream is busy at that moment it goes out
// late and the delay is charged to its latency. Streams correspond to
// client connections: do is called concurrently from at most conns
// goroutines, each pinned to one stream index (stream = i % conns), so a
// transport can pre-open one connection per stream.
func OpenLoop(n, conns int, shape Shape, do OpenDo) OpenResult {
	if conns < 1 {
		conns = 1
	}
	offsets := shape.Offsets(n)
	var res OpenResult
	var mu sync.Mutex // guards res.Hist and checksum fold
	var sent, oks, sheds, errs, late atomic.Int64
	var sum atomic.Uint64

	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < conns; s++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			for i := stream; i < n; i += conns {
				intended := start.Add(offsets[i])
				if d := time.Until(intended); d > 0 {
					time.Sleep(d)
				} else if -d > time.Millisecond {
					late.Add(1)
				}
				sent.Add(1)
				out := do(stream, uint64(i))
				switch {
				case out.Err != nil:
					errs.Add(1)
				case out.Shed:
					sheds.Add(1)
				case out.OK:
					oks.Add(1)
					sum.Add(out.Checksum)
					d := time.Since(intended)
					mu.Lock()
					res.Hist.Record(d)
					mu.Unlock()
				}
			}
		}(s)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Sent = sent.Load()
	res.OK = oks.Load()
	res.Shed = sheds.Load()
	res.Errors = errs.Load()
	res.Checksum = sum.Load()
	res.LateStarts = late.Load()
	return res
}
