package load

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/hh"
	"repro/internal/trace"
)

// The txn scenario: an MVCC-style transactional KV under optimistic
// concurrency control, built to exercise the hierarchy's free-rollback
// claim. Each transaction is one session subtree. It STAGES its write
// intents (plus scratch proportional to the request size) in managed
// memory inside that subtree, reads a snapshot of its read set, then
// try-locks its write keys and validates the snapshot. A conflict calls
// Task.Abort: the session unwinds through the panic-isolation path and
// everything the transaction staged is reclaimed wholesale — rollback is
// a bulk chunk release, with no per-object undo log. The drive loop
// observes the *hh.AbortError and retries the same request.
//
// The store itself — versions, values, the committed schedule — lives in
// plain Go: cross-session state cannot be rooted in the managed hierarchy
// in the flat modes (and an unpinned session's objects die with it), so
// the shared side is host-side by design, exactly like graph.Raw. Only
// the per-transaction working state is managed, which is precisely the
// state a rollback must discard.

const (
	txnReads  = 4 // keys read (and validated) per transaction
	txnWrites = 4 // keys written per transaction
)

// ErrTxnConflict is the reason txn requests pass to Task.Abort when
// optimistic validation fails; the drive loop matches the resulting
// *hh.AbortError and retries.
var ErrTxnConflict = errors.New("load: txn optimistic validation failed")

// txnCommitRec is one entry of the committed schedule: the log is
// appended while the transaction holds its write locks, so log order is a
// valid serialization order and replaying it single-threaded must
// reproduce the store's final state (Verify).
type txnCommitRec struct {
	seed uint64
	keys [txnWrites]int32
	vals [txnWrites]uint64
}

// txnStore is one drive loop's shared transactional KV.
type txnStore struct {
	nkeys    int
	versions []atomic.Uint64 // per-key seqlock: even = stable, odd = commit in progress
	values   []atomic.Uint64

	// forceConflict makes every validation fail — the abort-storm tests'
	// 100% conflict knob. The transaction still stages, reads, and locks
	// normally; only the commit decision is forced.
	forceConflict atomic.Bool

	mu  sync.Mutex
	log []txnCommitRec
}

func newTxnStore(nkeys int) *txnStore {
	if nkeys < txnWrites {
		nkeys = txnWrites
	}
	return &txnStore{
		nkeys:    nkeys,
		versions: make([]atomic.Uint64, nkeys),
		values:   make([]atomic.Uint64, nkeys),
	}
}

// Committed reports how many transactions have committed.
func (s *txnStore) Committed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.log)
}

// read snapshots one key through its seqlock: retry while a commit holds
// the key (odd version) or the version moved under the read.
func (s *txnStore) read(k int32) (val, ver uint64) {
	for {
		v1 := s.versions[k].Load()
		if v1&1 != 0 {
			runtime.Gosched()
			continue
		}
		val = s.values[k].Load()
		if s.versions[k].Load() == v1 {
			return val, v1
		}
	}
}

// lockOrder returns the write set's distinct keys in ascending order —
// the global try-lock order, so two transactions can deadlock only by
// both failing fast, never by waiting.
func lockOrder(wkeys [txnWrites]int32) []int32 {
	order := append([]int32(nil), wkeys[:]...)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := order[:0]
	for _, k := range order {
		if len(out) == 0 || out[len(out)-1] != k {
			out = append(out, k)
		}
	}
	return out
}

func (s *txnStore) unlock(locked []int32) {
	for _, k := range locked {
		s.versions[k].Add(1) // odd -> next even: version advances
	}
}

// tryCommit runs OCC validation and commit: try-lock the write keys in
// sorted order (CAS even -> odd; a contended key fails immediately),
// validate every read key's version is unchanged since the snapshot, then
// publish the write values, append the schedule entry under the locks,
// and unlock. Returns false — with no store mutation visible — on any
// conflict.
func (s *txnStore) tryCommit(seed uint64, wkeys [txnWrites]int32, wvals [txnWrites]uint64,
	rkeys [txnReads]int32, rvers [txnReads]uint64) bool {

	order := lockOrder(wkeys)
	locked := make([]int32, 0, len(order))
	for _, k := range order {
		ver := s.versions[k].Load()
		if ver&1 != 0 || !s.versions[k].CompareAndSwap(ver, ver+1) {
			s.unlock(locked)
			return false
		}
		locked = append(locked, k)
	}
	if s.forceConflict.Load() {
		s.unlock(locked)
		return false
	}
	for i, k := range rkeys {
		want := rvers[i]
		for _, lk := range locked {
			if lk == k { // we locked our own read key: its even version moved to odd
				want++
				break
			}
		}
		if s.versions[k].Load() != want {
			s.unlock(locked)
			return false
		}
	}
	// Publish in index order (duplicate write keys: last intent wins, and
	// Verify's model replay applies the same order).
	for i := 0; i < txnWrites; i++ {
		s.values[wkeys[i]].Store(wvals[i])
	}
	rec := txnCommitRec{seed: seed, keys: wkeys, vals: wvals}
	s.mu.Lock()
	s.log = append(s.log, rec)
	s.mu.Unlock()
	s.unlock(locked)
	return true
}

// Run executes one transaction. The checksum folds only the write intents
// and staged scratch — pure functions of (seed, size) — never the read
// snapshot, so committed checksums are identical in every mode regardless
// of how the schedule interleaved.
func (s *txnStore) Run(t *hh.Task, seed uint64, size int) uint64 {
	var wkeys [txnWrites]int32
	var wvals [txnWrites]uint64
	for i := range wkeys {
		wkeys[i] = int32(hh.Hash64(seed^uint64(i+1)<<40) % uint64(s.nkeys))
		wvals[i] = hh.Hash64(seed + uint64(i)*0x9E3779B9)
	}
	var rkeys [txnReads]int32
	for i := range rkeys {
		rkeys[i] = int32(hh.Hash64(seed^uint64(i+1)<<52^0xC0FFEE) % uint64(s.nkeys))
	}
	scratch := size / txnWrites
	if scratch < 4 {
		scratch = 4
	}

	var sum uint64
	t.Scoped(func(sc *hh.Scope) {
		// Read phase: snapshot the read set (host-side seqlock reads) into
		// a managed cell array — the transaction's private view, discarded
		// with the rest of the subtree on abort. Validation at commit
		// checks these versions are still current, so everything between
		// here and tryCommit is the optimistic window.
		snap := sc.Ref(t.AllocMut(0, txnReads*2, hh.TagArrI64))
		var rvers [txnReads]uint64
		for i, k := range rkeys {
			val, ver := s.read(k)
			t.WriteWord(snap.Get(), i*2, val)
			t.WriteWord(snap.Get(), i*2+1, ver)
			rvers[i] = ver
		}

		// Stage the write intents in managed memory: a session-shared
		// directory of records, each carrying its key, value, and scratch
		// words — the bytes an abort rolls back wholesale. The publish into
		// the directory is a promoting (or, deferred, pinning) write. This
		// is the transaction's "work", and it all happens inside the
		// optimistic window.
		dir := sc.Ref(t.AllocMut(txnWrites, 0, hh.TagArrPtr))
		hh.ParDo(t, hh.Bind(dir), 0, txnWrites, 1, func(t *hh.Task, e *hh.Env, lo, hi int) {
			for i := lo; i < hi; i++ {
				t.Scoped(func(ws *hh.Scope) {
					rec := t.Alloc(0, scratch+2, hh.TagTuple)
					t.InitWord(rec, 0, uint64(wkeys[i]))
					t.InitWord(rec, 1, wvals[i])
					for j := 2; j < scratch+2; j++ {
						t.InitWord(rec, j, hh.Hash64(seed^uint64(i)<<16^uint64(j)))
					}
					t.WritePtr(e.Ptr(0), i, rec)
				})
			}
		})

		// Commit window, under a flight-recorder span: Perfetto shows each
		// decision with its outcome and how many staged words an abort
		// threw away.
		staged := uint64(txnWrites * (scratch + 2))
		span := uint64(0)
		if trace.Enabled() {
			span = trace.Begin(-1, trace.EvTxn, 0, seed)
		}
		if !s.tryCommit(seed, wkeys, wvals, rkeys, rvers) {
			trace.End(-1, trace.EvTxn, span, 1, staged)
			t.Abort(uint64(wkeys[0]), ErrTxnConflict)
		}
		trace.End(-1, trace.EvTxn, span, 0, staged)

		sum = seed
		for i := 0; i < txnWrites; i++ {
			rec := t.ReadMutPtr(dir.Get(), i)
			sum = sum*31 + t.ReadImmWord(rec, 0) + t.ReadImmWord(rec, 1)
			sum = sum*31 + t.ReadImmWord(rec, 2) + t.ReadImmWord(rec, scratch+1)
		}
	})
	return sum
}

// Verify is the serializability oracle: replay the committed schedule —
// whose order was fixed under the write locks — through a single-threaded
// model and compare the model's final state with the store's. Any
// torn/lost write, or a commit that slipped past validation, diverges.
func (s *txnStore) Verify() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	model := make([]uint64, s.nkeys)
	for _, c := range s.log {
		for i := range c.keys {
			model[c.keys[i]] = c.vals[i]
		}
	}
	for k := 0; k < s.nkeys; k++ {
		if ver := s.versions[k].Load(); ver&1 != 0 {
			return fmt.Errorf("txn oracle: key %d still locked (version %d) after drain", k, ver)
		}
		if got, want := s.values[k].Load(), model[k]; got != want {
			return fmt.Errorf("txn oracle: key %d = %#x, single-threaded replay of %d commits says %#x",
				k, got, len(s.log), want)
		}
	}
	return nil
}
