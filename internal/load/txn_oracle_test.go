package load

import (
	"errors"
	"fmt"
	"testing"

	"repro/hh"
	"repro/hh/serve"
)

// TestTxnSerializabilityOracle is the txn scenario's correctness anchor:
// a txn-only closed loop with concurrent clients contending on a small
// key space, in every runtime mode at P ∈ {2, 8}. After the drain, Drive
// replays each run's committed schedule — whose order was fixed under the
// per-key write locks — through a single-threaded map model and compares
// the model's final state with the store's (txnStore.Verify); any lost or
// torn write, or a commit that slipped past optimistic validation,
// diverges. Across all eight runs the order-independent checksum must
// also agree, since every request retries its aborts until it commits and
// a committed request's checksum is a pure function of its seed. CI runs
// this under -race.
func TestTxnSerializabilityOracle(t *testing.T) {
	const (
		clients  = 8
		requests = 96
		size     = 240
	)
	p := Params{TxnKeys: 16} // small key space: real conflicts at P=8
	mix, err := ParseMixWith(p, "txn")
	if err != nil {
		t.Fatal(err)
	}
	var refSum uint64
	var refLabel string
	var sawAborts int64
	for _, mode := range hh.Modes {
		for _, procs := range []int{2, 8} {
			label := fmt.Sprintf("%s/P=%d", mode, procs)
			r := hh.New(hh.WithMode(mode), hh.WithProcs(procs), hh.WithGCPolicy(2048, 1.25))
			srv := serve.New(r, serve.WithMaxInFlight(clients), serve.WithQueueDepth(2*clients))
			res := Drive(srv, mix, clients, requests, size,
				func(idx int64, scenario string, err error) {
					t.Errorf("%s: request %d (%s) failed for good: %v", label, idx, scenario, err)
				})
			r.Close()

			if res.OracleErr != nil {
				t.Fatalf("%s: serializability oracle: %v", label, res.OracleErr)
			}
			if res.Commits != requests {
				t.Errorf("%s: %d commits, want %d (aborts %d, failures %d)",
					label, res.Commits, requests, res.Aborts, res.Failures)
			}
			if res.Aborts != res.Retries {
				t.Errorf("%s: %d aborts but %d retries; every abort under the cap must retry",
					label, res.Aborts, res.Retries)
			}
			sawAborts += res.Aborts
			if refLabel == "" {
				refSum, refLabel = res.Checksum, label
			} else if res.Checksum != refSum {
				t.Errorf("%s: checksum %x, want %x (%s): committed work is not mode-invariant",
					label, res.Checksum, refSum, refLabel)
			}
		}
	}
	// Not asserted per-run (a P=2 run may serialize cleanly), but across
	// 8 contended runs the storm should have produced at least one real
	// conflict; zero suggests the validation path is dead code.
	if sawAborts == 0 {
		t.Log("note: no optimistic conflicts observed across any run")
	}
}

// TestTxnVerifyCatchesDivergence proves the oracle is live: corrupt one
// committed value behind the log's back and Verify must object.
func TestTxnVerifyCatchesDivergence(t *testing.T) {
	s := newTxnStore(8)
	var wk [txnWrites]int32
	var wv [txnWrites]uint64
	for i := range wk {
		wk[i] = int32(i)
		wv[i] = uint64(100 + i)
	}
	var rk [txnReads]int32
	var rv [txnReads]uint64
	if !s.tryCommit(1, wk, wv, rk, rv) {
		t.Fatal("uncontended commit failed")
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("clean store: %v", err)
	}
	s.values[wk[0]].Store(0xDEAD)
	if err := s.Verify(); err == nil {
		t.Fatal("oracle accepted a corrupted store")
	}
}

// TestTxnAbortErrorPlumbing drives one guaranteed conflict end to end and
// checks the failure surfaces as *hh.AbortError wrapping ErrTxnConflict,
// with the session's staging rolled back wholesale.
func TestTxnAbortErrorPlumbing(t *testing.T) {
	s := newTxnStore(8)
	s.forceConflict.Store(true)
	r := hh.New(hh.WithMode(hh.ParMem), hh.WithProcs(2), hh.WithGCPolicy(2048, 1.25))
	defer r.Close()
	ses := r.Submit(hh.SessionOpts{}, func(task *hh.Task) uint64 {
		return s.Run(task, 7, 400)
	})
	_, err := ses.Wait()
	var ab *hh.AbortError
	if !errors.As(err, &ab) {
		t.Fatalf("conflict returned %v, want *hh.AbortError", err)
	}
	if !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("abort reason = %v, want ErrTxnConflict", ab.Reason)
	}
	if ses.WholesaleBytes() == 0 {
		t.Fatal("aborted session rolled back zero bytes; staging was not session-local")
	}
	if s.Committed() != 0 {
		t.Fatal("conflicted transaction reached the commit log")
	}
}
