package load

import (
	"errors"
	"testing"
	"time"
)

func TestShapeOffsetsMonotonic(t *testing.T) {
	shapes := []Shape{
		SteadyShape{Rate: 1000},
		BurstShape{BaseRate: 100, PeakRate: 5000, Period: 100 * time.Millisecond, Burst: 20 * time.Millisecond},
		DiurnalShape{MinRate: 100, MaxRate: 2000, Period: 200 * time.Millisecond},
	}
	for _, s := range shapes {
		offs := s.Offsets(500)
		if len(offs) != 500 || offs[0] != 0 {
			t.Fatalf("%s: len=%d first=%s", s, len(offs), offs[0])
		}
		for i := 1; i < len(offs); i++ {
			if offs[i] <= offs[i-1] {
				t.Fatalf("%s: offsets not strictly increasing at %d: %s <= %s", s, i, offs[i], offs[i-1])
			}
		}
	}
}

func TestBurstShapeDensity(t *testing.T) {
	// With a 10x rate in the burst window, the burst window must hold
	// many more arrivals per unit time than the baseline.
	s := BurstShape{BaseRate: 100, PeakRate: 1000, Period: 100 * time.Millisecond, Burst: 50 * time.Millisecond}
	offs := s.Offsets(200)
	var inBurst, inBase int
	for _, o := range offs {
		if o%s.Period < s.Burst {
			inBurst++
		} else {
			inBase++
		}
	}
	if inBurst <= 2*inBase {
		t.Fatalf("burst window not denser: burst=%d base=%d", inBurst, inBase)
	}
}

func TestParseShape(t *testing.T) {
	good := map[string]string{
		"steady:2000":             "steady:2000",
		"burst:500:4000:1s:200ms": "burst:500:4000:1s:200ms",
		"diurnal:100:3000:2s":     "diurnal:100:3000:2s",
		"burst:1:2:100ms:100ms":   "burst:1:2:100ms:100ms", // burst == period allowed
		"diurnal:1000:1000:1s":    "diurnal:1000:1000:1s",  // flat diurnal allowed
	}
	for spec, want := range good {
		s, err := ParseShape(spec)
		if err != nil {
			t.Fatalf("ParseShape(%q): %v", spec, err)
		}
		if s.String() != want {
			t.Fatalf("ParseShape(%q).String() = %q, want %q", spec, s.String(), want)
		}
	}
	bad := []string{
		"", "steady", "steady:0", "steady:-5", "steady:abc",
		"burst:100:200:1s", "burst:100:200:1s:2s", // burst > period
		"diurnal:200:100:1s", // max < min
		"poisson:100",
	}
	for _, spec := range bad {
		if _, err := ParseShape(spec); err == nil {
			t.Fatalf("ParseShape(%q) accepted", spec)
		}
	}
}

func TestOpenLoopCounts(t *testing.T) {
	boom := errors.New("boom")
	res := OpenLoop(100, 4, SteadyShape{Rate: 1e6}, func(stream int, i uint64) OpenOutcome {
		switch {
		case i%10 == 3:
			return OpenOutcome{Shed: true}
		case i%25 == 7:
			return OpenOutcome{Err: boom}
		default:
			return OpenOutcome{OK: true, Checksum: i + 1}
		}
	})
	if res.Sent != 100 {
		t.Fatalf("Sent = %d", res.Sent)
	}
	if res.OK+res.Shed+res.Errors != 100 {
		t.Fatalf("outcomes don't sum: ok=%d shed=%d err=%d", res.OK, res.Shed, res.Errors)
	}
	if res.Shed != 10 || res.Errors != 4 {
		t.Fatalf("shed=%d (want 10) err=%d (want 4)", res.Shed, res.Errors)
	}
	// Order-independent checksum: sum of i+1 over OK requests.
	var want uint64
	for i := uint64(0); i < 100; i++ {
		if i%10 != 3 && i%25 != 7 {
			want += i + 1
		}
	}
	if res.Checksum != want {
		t.Fatalf("checksum = %d, want %d", res.Checksum, want)
	}
	if res.Hist.Count() != res.OK {
		t.Fatalf("hist count %d != ok %d", res.Hist.Count(), res.OK)
	}
	if res.ShedRate() != 0.1 {
		t.Fatalf("shed rate = %g", res.ShedRate())
	}
}

// TestOpenLoopChargesIntendedTime is the coordinated-omission check: one
// stream, instant handler, but a schedule that front-loads all arrivals
// at t=0 means request i waits for i predecessors — its latency must
// include that queueing delay even though the handler itself is instant.
func TestOpenLoopChargesIntendedTime(t *testing.T) {
	const n = 10
	const step = 5 * time.Millisecond
	res := OpenLoop(n, 1, SteadyShape{Rate: 1e9}, func(stream int, i uint64) OpenOutcome {
		time.Sleep(step)
		return OpenOutcome{OK: true, Checksum: 1}
	})
	// The last request's intended time is ~0 but it completes after
	// n*step of predecessors; max latency must reflect that.
	if max := res.Hist.Max(); max < time.Duration(n-1)*step {
		t.Fatalf("max latency %s too small; queueing delay not charged (want >= %s)",
			max, time.Duration(n-1)*step)
	}
	if res.LateStarts < n/2 {
		t.Fatalf("late starts = %d, want most of %d", res.LateStarts, n)
	}
}
