package load

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/hh"
	"repro/hh/serve"
)

// DriveResult summarizes one closed loop.
type DriveResult struct {
	// Checksum is the order-independent sum of every successful request's
	// checksum; identical across runtime modes for the same request stream.
	Checksum uint64
	// Failures counts requests whose session aborted.
	Failures int64
	// Elapsed is the loop's wall time, submission to drain.
	Elapsed time.Duration
}

// Drive runs a closed loop: clients goroutines pull request indices from a
// shared dispenser, submit them to srv (backing off while saturated), and
// wait for each result before taking the next. It drains the server before
// returning. onError, if non-nil, is called for each failed request.
func Drive(srv *serve.Server, mix Mix, clients, requests, size int,
	onError func(idx int64, scenario string, err error)) DriveResult {

	var next atomic.Int64
	var sum atomic.Uint64
	var failures atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := next.Add(1) - 1
				if idx >= int64(requests) {
					return
				}
				sc := mix.Pick(uint64(idx))
				var tk *serve.Ticket
				for {
					var err error
					tk, err = srv.Submit(func(t *hh.Task) uint64 {
						return sc.Run(t, uint64(idx)+1, size)
					})
					if err == nil {
						break
					}
					time.Sleep(200 * time.Microsecond) // saturated: back off, retry
				}
				res, err := tk.Wait()
				if err != nil {
					failures.Add(1)
					if onError != nil {
						onError(idx, sc.Name, err)
					}
					continue
				}
				sum.Add(res)
			}
		}()
	}
	wg.Wait()
	srv.Drain()
	return DriveResult{Checksum: sum.Load(), Failures: failures.Load(), Elapsed: time.Since(start)}
}
