package load

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/hh"
	"repro/hh/serve"
)

// txnMaxRetries caps how many times one request is resubmitted after
// voluntary aborts before it is counted as a failure. Retries back off
// linearly, so the cap is effectively unreachable for real conflict
// rates; it exists to bound the loop if a scenario aborts unconditionally.
const txnMaxRetries = 1000

// DriveResult summarizes one closed loop.
type DriveResult struct {
	// Checksum is the order-independent sum of every successful request's
	// checksum; identical across runtime modes for the same request stream.
	Checksum uint64
	// Failures counts requests whose session failed for good (a crash, or
	// an abort past the retry cap).
	Failures int64
	// Elapsed is the loop's wall time, submission to drain.
	Elapsed time.Duration

	// Transactional accounting, all zero when the mix has no stateful
	// scenario. Aborts counts attempts that rolled back (each a wholesale
	// reclamation); Commits counts requests that eventually committed;
	// Retries counts resubmissions; RolledBackBytes is the chunk bytes the
	// aborted attempts released in bulk (0 in the flat modes, whose
	// sessions have no private subtree); RetryNanos is the wall time the
	// aborted attempts and their backoffs consumed.
	Commits         int64
	Aborts          int64
	Retries         int64
	RolledBackBytes int64
	RetryNanos      int64

	// OracleErr is the post-drain Verify verdict of the mix's stateful
	// scenarios (the txn serializability oracle); nil when consistent.
	OracleErr error
}

// AbortRate returns aborted attempts over all commit attempts.
func (d DriveResult) AbortRate() float64 {
	if d.Aborts+d.Commits == 0 {
		return 0
	}
	return float64(d.Aborts) / float64(d.Aborts+d.Commits)
}

// Drive runs a closed loop: clients goroutines pull request indices from a
// shared dispenser, submit them to srv (backing off while saturated), and
// wait for each result before taking the next. A request that aborts
// voluntarily (*hh.AbortError — a txn conflict) is retried with linear
// backoff and its rollback is accounted; other failures are final. Drive
// drains the server, then runs every stateful scenario's Verify oracle.
// onError, if non-nil, is called for each request that failed for good.
func Drive(srv *serve.Server, mix Mix, clients, requests, size int,
	onError func(idx int64, scenario string, err error)) DriveResult {

	// One shared instance per stateful scenario in the mix: concurrent
	// requests contend on it, which is the point.
	runs := map[string]ScenarioRun{}
	for _, sc := range mix.entries {
		if sc.NewRun != nil && runs[sc.Name] == nil {
			runs[sc.Name] = sc.NewRun(size)
		}
	}

	var next atomic.Int64
	var sum atomic.Uint64
	var failures atomic.Int64
	var commits, aborts, retries atomic.Int64
	var rolledBack, retryNanos atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := next.Add(1) - 1
				if idx >= int64(requests) {
					return
				}
				sc := mix.Pick(uint64(idx))
				runner := sc.Run
				if sc.NewRun != nil {
					runner = runs[sc.Name].Run
				}
				for attempt := 0; ; attempt++ {
					attemptStart := time.Now()
					var tk *serve.Ticket
					for {
						var err error
						tk, err = srv.Submit(func(t *hh.Task) uint64 {
							return runner(t, uint64(idx)+1, size)
						})
						if err == nil {
							break
						}
						time.Sleep(200 * time.Microsecond) // saturated: back off, retry
					}
					res, err := tk.Wait()
					if err == nil {
						sum.Add(res)
						if sc.NewRun != nil {
							commits.Add(1)
						}
						break
					}
					var ab *hh.AbortError
					if errors.As(err, &ab) && attempt < txnMaxRetries {
						// Voluntary rollback: the session's staging was
						// reclaimed wholesale; account it and rerun the same
						// request (same seed, same eventual checksum).
						aborts.Add(1)
						retries.Add(1)
						rolledBack.Add(tk.WholesaleBytes())
						backoff := time.Duration(attempt+1) * 20 * time.Microsecond
						time.Sleep(backoff)
						retryNanos.Add(int64(time.Since(attemptStart)))
						continue
					}
					failures.Add(1)
					if onError != nil {
						onError(idx, sc.Name, err)
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	srv.Drain()
	res := DriveResult{
		Checksum: sum.Load(), Failures: failures.Load(), Elapsed: time.Since(start),
		Commits: commits.Load(), Aborts: aborts.Load(), Retries: retries.Load(),
		RolledBackBytes: rolledBack.Load(), RetryNanos: retryNanos.Load(),
	}
	names := make([]string, 0, len(runs))
	for name := range runs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := runs[name].Verify(); err != nil && res.OracleErr == nil {
			res.OracleErr = fmt.Errorf("%s: %w", name, err)
		}
	}
	return res
}
