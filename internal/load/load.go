// Package load defines the request scenarios driven by the closed-loop
// load generator (cmd/hhload) and the serving benchmark tables (internal/
// report, hhbench -table serve/alloc/promote/txn). Each scenario is one
// self-contained request: given a seed and a size it builds, mutates, and
// folds session-local data into a deterministic checksum, so the same
// request stream can be replayed against every runtime mode — and against
// every barrier/allocator ablation — and cross-validated. The stateful
// txn scenario shares a host-side store across requests and keeps the
// same discipline by making each committed request's checksum a pure
// function of its seed; the drive loop retries its optimistic-conflict
// aborts (each one a wholesale rollback) until the request commits.
package load

import (
	"fmt"
	"strconv"
	"strings"

	"repro/hh"
)

// Scenario is one request archetype. Stateless scenarios provide Run;
// stateful ones (txn) provide NewRun instead and are instantiated once per
// drive loop, so concurrent requests share (host-side) state and the
// instance can be oracle-checked after the loop drains.
type Scenario struct {
	Name string
	// Run executes one request on the session's root task. The checksum is
	// a pure function of (seed, size) in every runtime mode. nil for
	// stateful scenarios.
	Run func(t *hh.Task, seed uint64, size int) uint64
	// NewRun instantiates a stateful scenario's shared state for one drive
	// loop. nil for stateless scenarios.
	NewRun func(size int) ScenarioRun
}

// ScenarioRun is one instantiated stateful scenario. Its Run method keeps
// the same contract as Scenario.Run — each successful request's checksum
// is a pure function of (seed, size), so the drive loop's order-
// independent sum stays mode-invariant no matter how concurrent requests
// interleave on the shared state.
type ScenarioRun interface {
	Run(t *hh.Task, seed uint64, size int) uint64
	// Verify cross-checks the instance's final state after the drive loop
	// has drained (the serializability oracle for txn: replay the committed
	// schedule through a single-threaded model and compare). nil when
	// consistent.
	Verify() error
}

// Params tunes the parameterized scenarios; zero values select defaults.
type Params struct {
	TxnKeys      int // txn: keys in the shared store (smaller = more conflicts); default 64
	StreamWindow int // stream: ring slots per partition window; default 8
	RankIters    int // rank: PageRank sweeps per request; default 4
}

func (p Params) withDefaults() Params {
	if p.TxnKeys <= 0 {
		p.TxnKeys = 64
	}
	if p.StreamWindow <= 0 {
		p.StreamWindow = 8
	}
	if p.RankIters <= 0 {
		p.RankIters = 4
	}
	return p
}

const kvSlots = 16

// kvChurn models a key-value store's write-heavy churn: size keys hash
// into a session-shared bucket array (a distant, promoting write per
// insert in ParMem), each bucket's chain is then compacted — reversed in
// place, the access-order rewrite of an LRU — and every bucket is scanned
// back. The archetypal mutable-state request: the insert phase is all
// promoting writes, the compaction phase is all ancestor-pointee writes
// (promoted cell to promoted cell), the barrier fast path's home turf.
func kvChurn(t *hh.Task, seed uint64, size int) uint64 {
	var sum uint64
	t.Scoped(func(sc *hh.Scope) {
		buckets := sc.Ref(t.AllocMut(kvSlots, 0, hh.TagArrPtr))
		hh.ParDo(t, hh.Bind(buckets), 0, kvSlots, 1, func(t *hh.Task, e *hh.Env, lo, hi int) {
			for b := lo; b < hi; b++ {
				n := size / kvSlots
				for i := 0; i < n; i++ {
					t.Scoped(func(ws *hh.Scope) {
						key := hh.Hash64(seed + uint64(b*n+i))
						head := ws.Ref(t.ReadMutPtr(e.Ptr(0), b))
						cell := t.Alloc(1, 2, hh.TagCons)
						t.InitWord(cell, 0, key)
						t.InitWord(cell, 1, key^seed)
						t.InitPtr(cell, 0, head.Get())
						t.WritePtr(e.Ptr(0), b, cell)
					})
				}
				// Compaction: reverse the chain in place. Every write is
				// cell -> cell within the bucket array's heap (the session
				// root; the global heap in Manticore), so none can promote
				// and none allocates — raw pointers stay valid throughout.
				prev := hh.Nil
				cur := t.ReadMutPtr(e.Ptr(0), b)
				for !cur.IsNil() {
					next := t.ReadMutPtr(cur, 0)
					t.WritePtr(cur, 0, prev)
					prev = cur
					cur = next
				}
				t.WritePtr(e.Ptr(0), b, prev)
			}
		})
		for b := 0; b < kvSlots; b++ {
			for p := t.ReadMutPtr(buckets.Get(), b); !p.IsNil(); p = t.ReadMutPtr(p, 0) {
				sum = sum*31 + t.ReadImmWord(p, 0) + t.ReadImmWord(p, 1)
			}
		}
	})
	return sum
}

// bfsQuery models a graph query: a parallel visit over an implicit
// frontier in which every visit allocates a record task-locally and links
// it into a shared per-bucket visit list (the paper's usp-tree pattern —
// the pessimal promotion case).
func bfsQuery(t *hh.Task, seed uint64, size int) uint64 {
	const nb = 8
	var sum uint64
	t.Scoped(func(sc *hh.Scope) {
		lists := sc.Ref(t.AllocMut(nb, 0, hh.TagArrPtr))
		hh.ParDo(t, hh.Bind(lists), 0, nb, 1, func(t *hh.Task, e *hh.Env, lo, hi int) {
			for b := lo; b < hi; b++ {
				nv := size / nb
				for v := 0; v < nv; v++ {
					t.Scoped(func(s *hh.Scope) {
						head := s.Ref(t.ReadMutPtr(e.Ptr(0), b))
						rec := t.Alloc(1, 1, hh.TagCons)
						t.InitWord(rec, 0, hh.Hash64(seed^uint64(b)<<32^uint64(v)))
						t.InitPtr(rec, 0, head.Get())
						t.WritePtr(e.Ptr(0), b, rec)
					})
				}
			}
		})
		for b := 0; b < nb; b++ {
			for p := t.ReadMutPtr(lists.Get(), b); !p.IsNil(); p = t.ReadImmPtr(p, 0) {
				sum = sum*1099511628211 + t.ReadImmWord(p, 0)
			}
		}
	})
	return sum
}

// fanPublish models an index build: the request shares a directory array
// of slots, and each partition materializes its records locally — a chain,
// so one scope ref keeps the whole batch alive — then publishes them into
// its slice of the directory with a single batched pointer write
// (Task.WritePtrs). In the hierarchical modes that is the promote buffer's
// showcase: one lock climb promotes every record of the batch, and the
// chain links between them mean the batch shares one copy pass instead of
// re-copying the tail per record.
func fanPublish(t *hh.Task, seed uint64, size int) uint64 {
	const parts = 8
	slots := size / 4
	if slots < parts {
		slots = parts
	}
	grain := slots / parts
	var sum uint64
	t.Scoped(func(sc *hh.Scope) {
		dir := sc.Ref(t.AllocMut(slots, 0, hh.TagArrPtr))
		hh.ParDo(t, hh.Bind(dir), 0, slots, grain, func(t *hh.Task, e *hh.Env, lo, hi int) {
			t.Scoped(func(s *hh.Scope) {
				// Materialize the partition's records as a local chain:
				// record j links to record j-1, so registering the head
				// keeps every batch member live across allocations.
				head := s.Ref(hh.Nil)
				for j := lo; j < hi; j++ {
					rec := t.Alloc(1, 1, hh.TagCons)
					t.InitWord(rec, 0, hh.Hash64(seed^uint64(j)<<24))
					t.InitPtr(rec, 0, head.Get())
					head.Set(rec)
				}
				// Collect the chain into the batch (no allocation from here
				// on, so the raw pointers stay valid). Walking from the head
				// yields newest first, so reverse: after the swap loop,
				// batch[i] is record lo+i, published at slot lo+i.
				batch := make([]hh.Ptr, 0, hi-lo)
				for p := head.Get(); !p.IsNil(); p = t.ReadImmPtr(p, 0) {
					batch = append(batch, p)
				}
				for i, j := 0, len(batch)-1; i < j; i, j = i+1, j-1 {
					batch[i], batch[j] = batch[j], batch[i]
				}
				t.WritePtrs(e.Ptr(0), lo, batch)
			})
		})
		for i := 0; i < slots; i++ {
			rec := t.ReadMutPtr(dir.Get(), i)
			sum = sum*1099511628211 + t.ReadImmWord(rec, 0)
		}
	})
	return sum
}

// histogram models an analytics request: tabulate size hashed samples in
// parallel (a rope of leaves across the session's subtree), then count
// them into a shared 64-bucket histogram with CAS increments.
func histogram(t *hh.Task, seed uint64, size int) uint64 {
	var sum uint64
	t.Scoped(func(sc *hh.Scope) {
		grain := size / 8
		if grain < 64 {
			grain = 64
		}
		samples := sc.Ref(hh.Tabulate(t, size, grain, func(i int) uint64 {
			return hh.Hash64(seed + uint64(i))
		}))
		hist := sc.Ref(t.AllocMut(0, 64, hh.TagArrI64))
		hh.ParDo(t, hh.Bind(samples, hist), 0, size, grain,
			func(t *hh.Task, e *hh.Env, lo, hi int) {
				for i := lo; i < hi; i++ {
					v := hh.At(t, e.Ptr(0), i)
					b := int(v % 64)
					for {
						old := t.ReadMutWord(e.Ptr(1), b)
						if t.CASWord(e.Ptr(1), b, old, old+v) {
							break
						}
					}
				}
			})
		for b := 0; b < 64; b++ {
			sum = sum*31 + t.ReadMutWord(hist.Get(), b)
		}
	})
	return sum
}

// All returns every scenario with default Params, in canonical order.
func All() []Scenario { return AllWith(Params{}) }

// AllWith returns every scenario, in canonical order, with the
// parameterized ones bound to p.
func AllWith(p Params) []Scenario {
	p = p.withDefaults()
	return []Scenario{
		{Name: "kv", Run: kvChurn},
		{Name: "bfs", Run: bfsQuery},
		{Name: "hist", Run: histogram},
		{Name: "fan", Run: fanPublish},
		{Name: "txn", NewRun: func(size int) ScenarioRun { return newTxnStore(p.TxnKeys) }},
		{Name: "stream", Run: func(t *hh.Task, seed uint64, size int) uint64 {
			return streamWindow(t, seed, size, p.StreamWindow)
		}},
		{Name: "rank", Run: func(t *hh.Task, seed uint64, size int) uint64 {
			return rankRequest(t, seed, size, p.RankIters)
		}},
	}
}

// ByName resolves one scenario with default Params.
func ByName(name string) (Scenario, error) { return ByNameWith(Params{}, name) }

// ByNameWith resolves one scenario with p bound.
func ByNameWith(p Params, name string) (Scenario, error) {
	for _, s := range AllWith(p) {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("load: unknown scenario %q (want kv|bfs|hist|fan|txn|stream|rank)", name)
}

// Mix is a weighted scenario mix; requests are assigned deterministically
// by request index, so every runtime mode replays the identical stream.
type Mix struct {
	entries []Scenario
}

// ParseMix parses "kv=4,bfs=1,hist=1" (or "kv,bfs" with weight 1 each)
// into a mix with default Params.
func ParseMix(spec string) (Mix, error) { return ParseMixWith(Params{}, spec) }

// ParseMixWith parses a mix spec with p bound into the parameterized
// scenarios.
func ParseMixWith(p Params, spec string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weight := part, 1
		if i := strings.IndexByte(part, '='); i >= 0 {
			name = part[:i]
			w, err := strconv.Atoi(part[i+1:])
			if err != nil || w < 1 {
				return Mix{}, fmt.Errorf("load: bad weight in %q", part)
			}
			weight = w
		}
		s, err := ByNameWith(p, name)
		if err != nil {
			return Mix{}, err
		}
		for i := 0; i < weight; i++ {
			m.entries = append(m.entries, s)
		}
	}
	if len(m.entries) == 0 {
		return Mix{}, fmt.Errorf("load: empty mix %q", spec)
	}
	return m, nil
}

// Pick returns the scenario for request i. Striding by a hash keeps the
// scenarios interleaved rather than phased while staying deterministic.
func (m Mix) Pick(i uint64) Scenario {
	return m.entries[hh.Hash64(i)%uint64(len(m.entries))]
}

// Len reports the mix's (weight-expanded) entry count.
func (m Mix) Len() int { return len(m.entries) }
