package load

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/hh"
	"repro/hh/serve"
)

// MixedStats compares latency-sensitive kv serving with and without
// resident rank analytics on the same runtime — the mixed-criticality
// question: what does sharing the chunk pool, the zone scheduler, and the
// workers with long-occupancy low-priority sessions cost the p99?
type MixedStats struct {
	P99Alone      time.Duration // kv-only serve p99
	P99Mixed      time.Duration // kv serve p99 with analytics resident
	AnalyticsOps  int64         // rank sessions completed during the mixed phase
	ChecksumAlone uint64        // kv request-stream checksum, alone phase
	ChecksumMixed uint64        // same stream, mixed phase (must match)
	Failures      int64
}

// RunMixed measures the two phases on fresh runtimes: first a kv-only
// closed loop, then the identical loop while background goroutines keep
// long-running rank sessions resident (submitted directly on the runtime,
// not through the server — analytics is a separate tenant that bypasses
// the kv admission queue but shares everything below it). The kv stream
// is identical in both phases, so the checksums must match; the p99 delta
// is the interference.
func RunMixed(mode hh.Mode, procs int, p Params, extra []hh.Option,
	clients, requests, size int) (MixedStats, error) {

	p = p.withDefaults()
	mix, err := ParseMixWith(p, "kv")
	if err != nil {
		return MixedStats{}, err
	}
	ranker, err := ByNameWith(p, "rank")
	if err != nil {
		return MixedStats{}, err
	}

	phase := func(analytics bool) (serve.ServeStats, DriveResult, int64) {
		opts := append([]hh.Option{hh.WithMode(mode), hh.WithProcs(procs),
			hh.WithGCPolicy(2048, 1.25)}, extra...)
		r := hh.New(opts...)
		defer r.Close()
		srv := serve.New(r, serve.WithMaxInFlight(clients), serve.WithQueueDepth(2*clients))

		var ops atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if analytics {
			// Two resident analytics workers: each keeps one rank session in
			// flight at a time, several times the kv request size, for the
			// whole phase.
			for a := 0; a < 2; a++ {
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					for seq := 0; ; seq++ {
						select {
						case <-stop:
							return
						default:
						}
						seed := uint64(worker)<<32 + uint64(seq) + 1
						ses := r.Submit(hh.SessionOpts{}, func(t *hh.Task) uint64 {
							return ranker.Run(t, seed, 4*size)
						})
						if _, err := ses.Wait(); err == nil {
							ops.Add(1)
						}
					}
				}(a)
			}
		}
		res := Drive(srv, mix, clients, requests, size, nil)
		close(stop)
		wg.Wait()
		srv.Drain()
		return srv.Stats(), res, ops.Load()
	}

	stAlone, resAlone, _ := phase(false)
	stMixed, resMixed, ops := phase(true)
	return MixedStats{
		P99Alone:      stAlone.LatencyP99,
		P99Mixed:      stMixed.LatencyP99,
		AnalyticsOps:  ops,
		ChecksumAlone: resAlone.Checksum,
		ChecksumMixed: resMixed.Checksum,
		Failures:      resAlone.Failures + resMixed.Failures,
	}, nil
}
