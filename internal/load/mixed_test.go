package load

import (
	"testing"
	"time"

	"repro/hh"
)

// TestMixedCriticality runs the kv-vs-kv+rank comparison: analytics must
// make progress while kv serves, the kv request stream must checksum
// identically with and without the resident analytics, and the serve p99
// must degrade boundedly (a generous envelope — the assertion is that
// sharing the pool with long-occupancy sessions cannot wedge the
// latency-sensitive traffic, not a tight SLO).
func TestMixedCriticality(t *testing.T) {
	if testing.Short() {
		t.Skip("two full drive phases per run")
	}
	st, err := RunMixed(hh.ParMem, 4, Params{}, nil, 6, 48, 400)
	if err != nil {
		t.Fatal(err)
	}
	if st.Failures > 0 {
		t.Fatalf("%d requests failed", st.Failures)
	}
	if st.AnalyticsOps == 0 {
		t.Fatal("analytics made no progress while kv served")
	}
	if st.ChecksumMixed != st.ChecksumAlone {
		t.Fatalf("kv checksum changed under analytics: %x vs %x alone",
			st.ChecksumMixed, st.ChecksumAlone)
	}
	if bound := 100*st.P99Alone + 500*time.Millisecond; st.P99Mixed > bound {
		t.Errorf("p99 with analytics %s, alone %s: degradation unbounded", st.P99Mixed, st.P99Alone)
	}
	t.Logf("p99 alone %s, with analytics %s (%d rank sessions completed)",
		st.P99Alone, st.P99Mixed, st.AnalyticsOps)
}
