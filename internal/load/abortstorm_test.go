package load

import (
	"errors"
	"fmt"
	"testing"

	"repro/hh"
	"repro/hh/serve"
)

// TestAbortStormNoLeak drives a 100% conflict rate — every key of the
// store pre-locked, so every transaction stages its managed state, fails
// validation, and unwinds through Task.Abort — for several rounds, and
// asserts the rollback really is wholesale: chunk occupancy returns to
// the pre-storm baseline after every round's drain, and with deferred
// promotion enabled the PR 9 pin-balance identity holds (every pin the
// staging writes created was resolved by the abort path's release sweep,
// none left live pinning a dead session's chunks).
func TestAbortStormNoLeak(t *testing.T) {
	const (
		rounds   = 4
		perRound = 24
		clients  = 6
		size     = 400
	)
	for _, cfg := range []struct {
		label string
		opts  []hh.Option
	}{
		{"parmem", nil},
		{"parmem+deferred", []hh.Option{hh.WithDeferredPromotion()}},
	} {
		t.Run(cfg.label, func(t *testing.T) {
			opts := append([]hh.Option{hh.WithMode(hh.ParMem), hh.WithProcs(4),
				hh.WithGCPolicy(2048, 1.25), hh.WithInvariantChecks()}, cfg.opts...)
			r := hh.New(opts...)
			defer r.Close()
			base := hh.ChunksInUse()
			srv := serve.New(r, serve.WithMaxInFlight(clients), serve.WithQueueDepth(2*clients))

			store := newTxnStore(8)
			store.forceConflict.Store(true) // 100% conflict: every validation fails
			var aborts int
			for round := 0; round < rounds; round++ {
				tickets := make([]*serve.Ticket, 0, perRound)
				for i := 0; i < perRound; i++ {
					seed := uint64(round*perRound+i) + 1
					for {
						tk, err := srv.Submit(func(task *hh.Task) uint64 {
							return store.Run(task, seed, size)
						})
						if err == nil {
							tickets = append(tickets, tk)
							break
						}
						if !errors.Is(err, serve.ErrSaturated) {
							t.Fatal(err)
						}
						// Saturated: wait out the oldest in-flight abort.
						if len(tickets) > 0 {
							tickets[0].Wait()
						}
					}
				}
				for _, tk := range tickets {
					_, err := tk.Wait()
					var ab *hh.AbortError
					if !errors.As(err, &ab) {
						t.Fatalf("round %d: storm request returned %v, want *hh.AbortError", round, err)
					}
					aborts++
				}
				srv.Drain()
				if got := hh.ChunksInUse(); got != base {
					t.Fatalf("round %d: %d chunks in use after drain, want baseline %d — abort leaked",
						round, got, base)
				}
			}
			if aborts != rounds*perRound {
				t.Fatalf("%d aborts, want %d", aborts, rounds*perRound)
			}
			if store.Committed() != 0 {
				t.Fatalf("%d commits slipped through a fully locked store", store.Committed())
			}
			if d := r.Stats().Deferred; d.Pins > 0 {
				if !d.Balanced() || d.Live != 0 {
					t.Fatalf("pin accounting does not balance after the storm: %+v", d)
				}
			} else if len(cfg.opts) > 0 {
				t.Error("deferred run recorded no pins; the staging writes should pin")
			}
		})
	}
}

// TestDriveRetriesConflicts checks the closed loop's retry path end to
// end: a txn mix under real contention completes every request, counts
// its aborts and rollback bytes, and passes the oracle.
func TestDriveRetriesConflicts(t *testing.T) {
	p := Params{TxnKeys: 8} // tiny key space: near-certain conflicts
	mix, err := ParseMixWith(p, "txn")
	if err != nil {
		t.Fatal(err)
	}
	r := hh.New(hh.WithMode(hh.ParMem), hh.WithProcs(4), hh.WithGCPolicy(2048, 1.25))
	defer r.Close()
	srv := serve.New(r, serve.WithMaxInFlight(8), serve.WithQueueDepth(16))
	res := Drive(srv, mix, 8, 64, 400, func(idx int64, sc string, err error) {
		t.Errorf("request %d (%s): %v", idx, sc, err)
	})
	if res.OracleErr != nil {
		t.Fatalf("oracle: %v", res.OracleErr)
	}
	if res.Commits != 64 {
		t.Errorf("%d commits, want 64", res.Commits)
	}
	if res.Aborts > 0 && res.RolledBackBytes == 0 {
		t.Errorf("%d aborts rolled back zero bytes in a hierarchical mode", res.Aborts)
	}
	if res.Aborts > 0 && res.RetryNanos == 0 {
		t.Errorf("%d aborts with zero retry latency accounted", res.Aborts)
	}
	t.Logf("aborts %d (%.1f%%), rolled back %d B, retry %s", res.Aborts, 100*res.AbortRate(),
		res.RolledBackBytes, fmt.Sprint(res.RetryNanos))
}
