package load

import (
	"repro/hh"
)

const streamParts = 4 // window partitions per request

// streamWindow models sliding-window stream aggregation: each partition
// owns a ring of window slots in a session-shared index. Every step
// builds the step's batch as a task-local record chain, publishes its
// head into the ring slot — expiring (discarding) the slot's previous
// occupant — and folds an aggregate over the live window. The publish is
// a promoting write in the eager modes and a pin in the deferred mode;
// the expiry overwrite kills the pinned slot a window later. That
// repeated promote-then-discard churn is the PR 9 pin lifecycle's worst
// case: pins whose slots die before any release sweep, re-publishes that
// hit the distinct-slot second-touch promotion, and window state that
// never survives the session.
//
// Partitions touch disjoint slots and fold in fixed order, so the
// checksum is a pure function of (seed, size, window) in every mode.
func streamWindow(t *hh.Task, seed uint64, size, window int) uint64 {
	steps := size / (streamParts * 4)
	if steps < 2*window {
		steps = 2 * window
	}
	const recs = 3 // records per step batch
	var sum uint64
	t.Scoped(func(sc *hh.Scope) {
		index := sc.Ref(t.AllocMut(streamParts*window, 0, hh.TagArrPtr))
		aggs := sc.Ref(t.AllocMut(0, streamParts, hh.TagArrI64))
		hh.ParDo(t, hh.Bind(index, aggs), 0, streamParts, 1,
			func(t *hh.Task, e *hh.Env, lo, hi int) {
				for p := lo; p < hi; p++ {
					var acc uint64
					for step := 0; step < steps; step++ {
						slot := p*window + step%window
						t.Scoped(func(ws *hh.Scope) {
							head := ws.Ref(hh.Nil)
							for j := 0; j < recs; j++ {
								rec := t.Alloc(1, 1, hh.TagCons)
								t.InitWord(rec, 0,
									hh.Hash64(seed^uint64(p)<<40^uint64(step)<<8^uint64(j)))
								t.InitPtr(rec, 0, head.Get())
								head.Set(rec)
							}
							t.WritePtr(e.Ptr(0), slot, head.Get())
						})
						for w := 0; w < window; w++ {
							for q := t.ReadMutPtr(e.Ptr(0), p*window+w); !q.IsNil(); q = t.ReadImmPtr(q, 0) {
								acc = acc*31 + t.ReadImmWord(q, 0)
							}
						}
					}
					t.WriteWord(e.Ptr(1), p, acc)
				}
			})
		for p := 0; p < streamParts; p++ {
			sum = sum*1099511628211 + t.ReadMutWord(aggs.Get(), p)
		}
	})
	return sum
}
