package load

import (
	"repro/hh"
	"repro/internal/graph"
)

// rankRequest models long-running analytics sharing the runtime with
// latency-sensitive serving: generate a small RMAT-style graph host-side
// (deterministic in seed, like every graph.Generate use), load its CSR
// into the session subtree, run iters integer PageRank sweeps, and
// checksum the final rank vector. Fixed-point arithmetic keeps the result
// bit-exact across modes and partitionings; the pull-style sweep (each
// vertex reads its neighbors' current ranks, writes only its own next
// rank) makes the parallel update race-free without CAS.
//
// As a mix component this is the low-priority, long-occupancy tenant of
// the mixed-criticality story: its sessions hold chunks and schedule
// zones for much longer than a kv request, and the serve table's
// p99-kv-vs-p99-kv+rank columns quantify how much the latency-sensitive
// traffic pays for sharing the pool with it.
func rankRequest(t *hh.Task, seed uint64, size, iters int) uint64 {
	nv := size / 8
	if nv < 16 {
		nv = 16
	}
	g := graph.Generate(graph.Spec{N: nv, AvgDeg: 4, Seed: seed})
	n, m := g.N, g.Edges()

	const scale = 1 << 16 // fixed-point unit
	var sum uint64
	t.Scoped(func(sc *hh.Scope) {
		offs := sc.Ref(t.Alloc(0, n+1, hh.TagArrI64))
		tgts := sc.Ref(t.Alloc(0, m, hh.TagArrI64))
		total := 0
		for v := 0; v < n; v++ {
			t.InitWord(offs.Get(), v, uint64(total))
			for _, w := range g.Adj[v] {
				t.InitWord(tgts.Get(), total, uint64(w))
				total++
			}
		}
		t.InitWord(offs.Get(), n, uint64(total))

		ranks := sc.Ref(t.AllocMut(0, n, hh.TagArrI64))
		next := sc.Ref(t.AllocMut(0, n, hh.TagArrI64))
		for v := 0; v < n; v++ {
			t.WriteWord(ranks.Get(), v, scale)
		}
		grain := n / 8
		if grain < 16 {
			grain = 16
		}
		for it := 0; it < iters; it++ {
			hh.ParDo(t, hh.Bind(offs, tgts, ranks, next), 0, n, grain,
				func(t *hh.Task, e *hh.Env, lo, hi int) {
					for v := lo; v < hi; v++ {
						var gather uint64
						vlo := int(t.ReadImmWord(e.Ptr(0), v))
						vhi := int(t.ReadImmWord(e.Ptr(0), v+1))
						for i := vlo; i < vhi; i++ {
							u := int(t.ReadImmWord(e.Ptr(1), i))
							ulo := t.ReadImmWord(e.Ptr(0), u)
							uhi := t.ReadImmWord(e.Ptr(0), u+1)
							// Every vertex has backbone edges, so uhi > ulo.
							gather += t.ReadMutWord(e.Ptr(2), u) / (uhi - ulo)
						}
						t.WriteWord(e.Ptr(3), v, scale*15/100+gather*85/100)
					}
				})
			r := ranks.Get()
			ranks.Set(next.Get())
			next.Set(r)
		}
		for v := 0; v < n; v++ {
			sum = sum*31 + t.ReadMutWord(ranks.Get(), v)
		}
	})
	return sum
}
