package load

import (
	"testing"

	"repro/hh"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("kv=2,bfs=1,hist=1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 4 {
		t.Fatalf("mix len %d, want 4 weight-expanded entries", m.Len())
	}
	if m.Pick(3).Name != m.Pick(3).Name {
		t.Fatal("Pick must be deterministic")
	}
	if _, err := ParseMix("nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := ParseMix("kv=0"); err == nil {
		t.Fatal("zero weight accepted")
	}
	m, err = ParseMixWith(Params{TxnKeys: 32}, "txn=2,stream=1,rank=1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 4 {
		t.Fatalf("mix len %d, want 4", m.Len())
	}
}

// runnerFor returns a request runner for sc, instantiating stateful
// scenarios fresh — a sequential replay has no concurrent conflicts, so
// every transaction commits and the checksum stays a pure function of
// (seed, size).
func runnerFor(sc Scenario, size int) func(*hh.Task, uint64, int) uint64 {
	if sc.NewRun != nil {
		return sc.NewRun(size).Run
	}
	return sc.Run
}

// TestScenariosAgreeUnderBarrierAblations replays every scenario with the
// write-barrier knobs at their extremes — fast paths ablated, promote
// buffer reduced to per-object climbs — and checks the checksums match the
// default configuration in both hierarchical modes. The fast paths and the
// batching are implementation details: they must never change a result.
func TestScenariosAgreeUnderBarrierAblations(t *testing.T) {
	type key struct {
		name string
		seed uint64
	}
	configs := []struct {
		label string
		opts  []hh.Option
	}{
		{"default", nil},
		{"nofastpath", []hh.Option{hh.WithoutBarrierFastPath()}},
		{"promote-buffer-1", []hh.Option{hh.WithPromoteBufferObjects(1)}},
	}
	for _, mode := range []hh.Mode{hh.ParMem, hh.Manticore} {
		want := map[key]uint64{}
		for _, cfg := range configs {
			opts := append([]hh.Option{hh.WithMode(mode), hh.WithProcs(2),
				hh.WithGCPolicy(2048, 1.25)}, cfg.opts...)
			r := hh.New(opts...)
			for _, sc := range All() {
				run := runnerFor(sc, 300)
				for seed := uint64(1); seed <= 2; seed++ {
					s := r.Submit(hh.SessionOpts{}, func(task *hh.Task) uint64 {
						return run(task, seed, 300)
					})
					got, err := s.Wait()
					if err != nil {
						t.Fatalf("%s/%s/%s seed %d: %v", mode, cfg.label, sc.Name, seed, err)
					}
					k := key{sc.Name, seed}
					if w, seen := want[k]; !seen {
						want[k] = got
					} else if got != w {
						t.Errorf("%s/%s/%s seed %d: checksum %x, want %x",
							mode, cfg.label, sc.Name, seed, got, w)
					}
				}
			}
			r.Close()
		}
	}
}

// TestScenariosDeterministicAcrossModes replays the same requests in every
// runtime mode and checks the checksums agree — the property hhload's
// cross-mode validation relies on.
func TestScenariosDeterministicAcrossModes(t *testing.T) {
	type key struct {
		name string
		seed uint64
	}
	want := map[key]uint64{}
	for _, mode := range hh.Modes {
		r := hh.New(hh.WithMode(mode), hh.WithProcs(2), hh.WithGCPolicy(2048, 1.25))
		for _, sc := range All() {
			run := runnerFor(sc, 300)
			for seed := uint64(1); seed <= 2; seed++ {
				s := r.Submit(hh.SessionOpts{}, func(task *hh.Task) uint64 {
					return run(task, seed, 300)
				})
				got, err := s.Wait()
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", mode, sc.Name, seed, err)
				}
				k := key{sc.Name, seed}
				if w, seen := want[k]; !seen {
					want[k] = got
				} else if got != w {
					t.Errorf("%s/%s seed %d: checksum %x, want %x", mode, sc.Name, seed, got, w)
				}
			}
		}
		r.Close()
	}
}
