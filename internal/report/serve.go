package report

import (
	"fmt"
	"io"
	"runtime"

	"repro/hh"
	"repro/hh/serve"
	"repro/internal/load"
	"repro/internal/mem"
)

// ServeTable benchmarks the serving layer: a closed loop of mixed requests
// (kv-churn, bfs query, histogram) drives an hh/serve.Server in every
// runtime mode, each request an independent session reclaimed wholesale at
// completion. The table reports throughput, latency quantiles, the
// queue/gc/barrier/mutator latency breakdown, peak concurrency,
// wholesale-versus-merged reclamation, and the cross-request GC concurrency
// (peak distinct sessions collecting at once) — the serving numbers the
// paper's single-program tables cannot show. A final mlton-parmem+trace row
// repeats the parmem run with the flight recorder enabled; its req/s delta
// is the measured cost of tracing.
func ServeTable(w io.Writer, o Options) error {
	o = o.normalize()
	mix, err := load.ParseMix("kv=2,bfs=1,hist=1")
	if err != nil {
		return err
	}
	sessions := 2 * o.Procs
	if sessions < 8 {
		sessions = 8
	}
	requests, size := 24*sessions, 1200
	if o.Paper {
		requests *= 4
	}
	if runtime.GOMAXPROCS(0) < o.Procs {
		runtime.GOMAXPROCS(o.Procs) // let disjoint session collections overlap in wall time
	}
	// Start from a cold chunk pool so the table does not depend on what
	// earlier tables left pooled; within the table, later systems running
	// against the pool warmed by earlier ones is the steady-state story the
	// recycle% column tells.
	mem.DrainChunkPool()

	header := []string{"system", "req", "elapsed(s)", "req/s", "p50(ms)", "p99(ms)",
		"breakdown", "peak-sess", "wholesale(MB)", "merged(MB)", "sess-zones", "cc-sess",
		"recycle%", "dirops/req"}
	systems := []struct {
		name string
		mode hh.Mode
		opts []hh.Option
	}{
		{hh.Seq.String(), hh.Seq, nil},
		{hh.STW.String(), hh.STW, nil},
		{hh.Manticore.String(), hh.Manticore, nil},
		{hh.ParMem.String(), hh.ParMem, nil},
		// The flight-recorder ablation: the same parmem run with per-worker
		// event rings recording every zone, climb, and session event. The
		// req/s delta against the row above is the cost of enabled tracing.
		{hh.ParMem.String() + "+trace", hh.ParMem, []hh.Option{hh.WithTrace(0)}},
		// The lazy-promotion ablation: the same parmem run with the write
		// barrier pinning entangling pointees instead of copying them
		// (promotion happens at second touch or drain, or never). The
		// checksum validation below proves the request stream identical;
		// the promote table quantifies the copied-bytes reduction.
		{hh.ParMem.String() + "+deferred", hh.ParMem, []hh.Option{hh.WithDeferredPromotion()}},
	}
	var rows [][]string
	var failures []string
	var refSum uint64
	var refMode string
	for _, sys := range systems {
		opts := append([]hh.Option{hh.WithMode(sys.mode), hh.WithProcs(o.Procs),
			hh.WithGCPolicy(2048, 1.25)}, sys.opts...)
		r := hh.New(opts...)
		srv := serve.New(r, serve.WithMaxInFlight(sessions), serve.WithQueueDepth(2*sessions))
		res := load.Drive(srv, mix, sessions, requests, size, nil)
		st := srv.Stats()
		rt := r.Stats()
		r.Close()

		if res.Failures > 0 {
			failures = append(failures, fmt.Sprintf(
				"VALIDATION FAILURE: %d request(s) failed on %s", res.Failures, sys.name))
		}
		if refMode == "" {
			refSum, refMode = res.Checksum, sys.name
		} else if res.Checksum != refSum {
			failures = append(failures, fmt.Sprintf(
				"VALIDATION FAILURE: request stream on %s: checksum %x, want %x (%s)",
				sys.name, res.Checksum, refSum, refMode))
		}
		rows = append(rows, []string{
			sys.name,
			fmt.Sprintf("%d", st.Completed),
			fmt.Sprintf("%.3f", res.Elapsed.Seconds()),
			fmt.Sprintf("%.0f", st.Throughput),
			fmt.Sprintf("%.2f", float64(st.LatencyP50.Microseconds())/1e3),
			fmt.Sprintf("%.2f", float64(st.LatencyP99.Microseconds())/1e3),
			st.BreakdownString(),
			fmt.Sprintf("%d", st.PeakInFlight),
			fmt.Sprintf("%.1f", float64(st.WholesaleBytes)/(1<<20)),
			fmt.Sprintf("%.1f", float64(st.MergedBytes)/(1<<20)),
			fmt.Sprintf("%d", rt.Zones.SessionZones),
			fmt.Sprintf("%d", rt.Zones.MaxConcurrentSessions),
			fmtPct(rt.Alloc.RecycleRate()),
			fmtPerReq(rt.Alloc.DirIDOps, st.Finished()),
		})
	}
	tab := Table{Table: "serve", Procs: o.Procs, Header: header, Rows: rows, Failures: failures,
		Title: fmt.Sprintf(
			"Serving: closed-loop session throughput at P=%d (%d in-flight, kv=2,bfs=1,hist=1 mix)",
			o.Procs, sessions)}
	if err := o.emit(w, tab); err != nil {
		return err
	}
	if !o.JSON && len(failures) == 0 {
		fmt.Fprintln(w, "validation: all systems agree on the request-stream checksum")
	}
	return nil
}
