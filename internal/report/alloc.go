package report

import (
	"fmt"
	"io"
	"runtime"

	"repro/hh"
	"repro/hh/serve"
	"repro/internal/load"
	"repro/internal/mem"
)

// AllocTable benchmarks the recycling allocator under serving load: the
// same closed-loop request mix as ServeTable, driven twice per runtime
// system — once with the size-classed chunk pool and per-worker caches
// enabled (the default) and once with recycling disabled (every chunk
// release a hard free, every acquisition a fresh allocation). For each run
// it reports where chunk acquisitions were served (worker cache, global
// pool, fresh memory), where releases landed, and the chunk-directory ID
// operations — the idMu-serialized global work the pool exists to avoid —
// in total and per request.
//
// Reading it: "cache%" + "pool%" is the recycle rate; with pooling on it
// should approach 100% once the pool warms up, and "dirops/req" should be
// a small fraction of the pooling-off row, which pays two directory ID
// operations for every chunk it ever allocates.
func AllocTable(w io.Writer, o Options) error {
	o = o.normalize()
	mix, err := load.ParseMix("kv=2,bfs=1,hist=1")
	if err != nil {
		return err
	}
	sessions := 2 * o.Procs
	if sessions < 8 {
		sessions = 8
	}
	requests, size := 24*sessions, 1200
	if o.Paper {
		requests *= 4
	}
	if runtime.GOMAXPROCS(0) < o.Procs {
		runtime.GOMAXPROCS(o.Procs) // let in-flight sessions overlap in wall time
	}

	header := []string{"system", "pool", "req/s", "chunks", "cache%", "pool%",
		"fresh", "to-OS", "dirops", "dirops/req"}
	var rows [][]string
	var failures []string
	for _, mode := range []hh.Mode{hh.Seq, hh.STW, hh.Manticore, hh.ParMem} {
		for _, pooled := range []bool{true, false} {
			opts := []hh.Option{hh.WithMode(mode), hh.WithProcs(o.Procs),
				hh.WithGCPolicy(2048, 1.25)}
			label := "on"
			if !pooled {
				opts = append(opts, hh.WithoutChunkPool())
				label = "off"
			}
			// Every measured run starts from a cold pool, so rows are
			// comparable to each other and the table is reproducible
			// regardless of what ran before it.
			mem.DrainChunkPool()
			r := hh.New(opts...)
			srv := serve.New(r, serve.WithMaxInFlight(sessions), serve.WithQueueDepth(2*sessions))
			res := load.Drive(srv, mix, sessions, requests, size, nil)
			st := srv.Stats()
			al := r.Stats().Alloc
			r.Close()

			if res.Failures > 0 {
				failures = append(failures, fmt.Sprintf(
					"VALIDATION FAILURE: %d request(s) failed on %s (pool %s)",
					res.Failures, mode, label))
			}
			rows = append(rows, []string{
				mode.String(), label,
				fmt.Sprintf("%.0f", st.Throughput),
				fmt.Sprintf("%d", al.Acquires+al.Oversize),
				fmtPct(al.CacheHitRate()),
				fmtPct(al.PoolHitRate()),
				fmt.Sprintf("%d", al.FreshChunks+al.Oversize),
				fmt.Sprintf("%d", al.ToOS),
				fmt.Sprintf("%d", al.DirIDOps),
				fmtPerReq(al.DirIDOps, st.Finished()),
			})
		}
	}
	tab := Table{Table: "alloc", Procs: o.Procs, Header: header, Rows: rows, Failures: failures,
		Title: fmt.Sprintf(
			"Allocator: chunk recycling under serving load at P=%d (%d in-flight, pool on vs off)",
			o.Procs, sessions)}
	return o.emit(w, tab)
}
