package report

import (
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"time"

	"repro/hh"
	"repro/hh/serve"
	"repro/hh/serve/netserve"
	"repro/internal/load"
	"repro/internal/mem"
)

// netLeg is one arrival shape driven against one runtime mode.
type netLeg struct {
	name     string
	shape    load.Shape
	requests int
	// conns is the stream count as a multiple of the server's admission
	// capacity: <=1x cannot saturate (each stream holds one outstanding
	// request), >1x guarantees explicit shedding once streams pile up.
	connsPerCap float64
	// retryShed re-submits shed requests after the hinted backoff, so the
	// leg completes the full request set — required on the parity leg,
	// where all modes must compute the identical checksum.
	retryShed bool
}

// NetTable benchmarks the network front end: hhserved's serving path
// (RESP framing -> admission -> one hh/serve session per request ->
// wholesale reclamation) driven end-to-end over loopback TCP by the
// open-loop generator, per runtime mode and arrival shape. Latency is
// charged from each request's INTENDED send time (coordinated-omission
// safe), so server queueing shows up in p99/p999 instead of thinning the
// arrival stream. The steady leg retries sheds and must produce the same
// checksum in every mode; the burst leg oversubscribes the admission
// capacity and must shed explicitly; the drain column times the SIGTERM
// path (flush replies, reclaim sessions) after each mode's legs.
func NetTable(w io.Writer, o Options) error {
	o = o.normalize()
	sessions := o.Procs
	if sessions < 2 {
		sessions = 2
	}
	queue := 2 * sessions
	capacity := sessions + queue
	scale := 1
	if o.Paper {
		scale = 4
	}
	legs := []netLeg{
		{"steady", load.SteadyShape{Rate: 2000}, 1200 * scale, 1.0, true},
		{"burst", load.BurstShape{BaseRate: 500, PeakRate: 50000,
			Period: 300 * time.Millisecond, Burst: 120 * time.Millisecond}, 1000 * scale, 4.0, false},
		{"diurnal", load.DiurnalShape{MinRate: 500, MaxRate: 4000,
			Period: 600 * time.Millisecond}, 800 * scale, 1.0, false},
	}
	if runtime.GOMAXPROCS(0) < o.Procs {
		runtime.GOMAXPROCS(o.Procs)
	}
	mem.DrainChunkPool()

	header := []string{"system", "shape", "req", "ok", "shed%", "req/s",
		"p50(ms)", "p99(ms)", "p999(ms)", "drain(ms)"}
	var rows [][]string
	var failures []string
	var refSum uint64
	var refMode string
	for _, mode := range []hh.Mode{hh.Seq, hh.STW, hh.Manticore, hh.ParMem} {
		r := hh.New(hh.WithMode(mode), hh.WithProcs(o.Procs), hh.WithGCPolicy(2048, 1.25))
		baseline := hh.ChunksInUse()
		srv := serve.New(r, serve.WithMaxInFlight(sessions), serve.WithQueueDepth(queue))
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			r.Close()
			return err
		}
		f := netserve.Serve(lis, srv, netserve.Config{Resolve: netserve.LoadResolver()})
		addr := f.Addr().String()

		var modeRows [][]string
		for _, leg := range legs {
			res, err := runNetLeg(addr, leg, capacity)
			if err != nil {
				f.Close()
				r.Close()
				return fmt.Errorf("net %s/%s: %w", mode, leg.name, err)
			}
			if res.Errors > 0 {
				failures = append(failures, fmt.Sprintf(
					"VALIDATION FAILURE: %d request error(s) on %s/%s", res.Errors, mode, leg.name))
			}
			switch leg.name {
			case "steady":
				// The parity leg: retried sheds mean the full request set was
				// served, so every mode must compute the identical stream.
				if refMode == "" {
					refSum, refMode = res.Checksum, mode.String()
				} else if res.Checksum != refSum {
					failures = append(failures, fmt.Sprintf(
						"VALIDATION FAILURE: net stream on %s: checksum %x, want %x (%s)",
						mode, res.Checksum, refSum, refMode))
				}
			case "burst":
				if res.Shed == 0 {
					failures = append(failures, fmt.Sprintf(
						"VALIDATION FAILURE: burst leg on %s shed nothing (overload was not explicit)", mode))
				}
			}
			modeRows = append(modeRows, []string{
				mode.String(), leg.shape.String(),
				fmt.Sprintf("%d", res.Sent),
				fmt.Sprintf("%d", res.OK),
				fmtPct(res.ShedRate()),
				fmt.Sprintf("%.0f", res.Throughput()),
				fmtMs(res.Hist.Quantile(0.50)),
				fmtMs(res.Hist.Quantile(0.99)),
				fmtMs(res.Hist.Quantile(0.999)),
				"-",
			})
		}

		drainStart := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		drainErr := f.Drain(ctx)
		cancel()
		drain := time.Since(drainStart)
		if drainErr != nil {
			failures = append(failures, fmt.Sprintf(
				"VALIDATION FAILURE: drain on %s: %v", mode, drainErr))
		}
		if got := hh.ChunksInUse(); (mode == hh.ParMem || mode == hh.Seq) && got != baseline {
			failures = append(failures, fmt.Sprintf(
				"VALIDATION FAILURE: %s: %d chunks in use after drain, want baseline %d",
				mode, got, baseline))
		}
		modeRows[len(modeRows)-1][len(header)-1] = fmt.Sprintf("%.1f", float64(drain.Microseconds())/1e3)
		rows = append(rows, modeRows...)
		r.Close()
	}

	tab := Table{Table: "net", Procs: o.Procs, Header: header, Rows: rows, Failures: failures,
		Title: fmt.Sprintf(
			"Network serving: open-loop TCP load at P=%d (%d in-flight, %d queued; intended-time latency)",
			o.Procs, sessions, queue)}
	if err := o.emit(w, tab); err != nil {
		return err
	}
	if !o.JSON && len(failures) == 0 {
		fmt.Fprintln(w, "validation: all systems agree on the request-stream checksum; bursts shed explicitly")
	}
	return nil
}

// runNetLeg drives one open loop against a live front end over loopback,
// one pre-dialed connection per stream — the same do-loop hhshoot uses.
func runNetLeg(addr string, leg netLeg, capacity int) (load.OpenResult, error) {
	conns := int(leg.connsPerCap * float64(capacity))
	if conns < 2 {
		conns = 2
	}
	clients := make([]*netserve.Client, conns)
	for i := range clients {
		c, err := netserve.Dial(addr)
		if err != nil {
			return load.OpenResult{}, err
		}
		defer c.Close()
		clients[i] = c
	}
	res := load.OpenLoop(leg.requests, conns, leg.shape, func(stream int, i uint64) load.OpenOutcome {
		c := clients[stream]
		for {
			sum, shed, backoff, err := c.Run("kv", i+1, 600)
			if err != nil {
				return load.OpenOutcome{Err: err}
			}
			if !shed {
				return load.OpenOutcome{OK: true, Checksum: sum}
			}
			if !leg.retryShed {
				return load.OpenOutcome{Shed: true}
			}
			if backoff <= 0 {
				backoff = time.Millisecond
			}
			time.Sleep(backoff)
		}
	})
	return res, nil
}

func fmtMs(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1e3)
}
