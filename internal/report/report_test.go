package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/rts"
)

func TestRenderTableAlignment(t *testing.T) {
	var sb strings.Builder
	renderTable(&sb, []string{"a", "long-header"}, [][]string{
		{"x", "1"},
		{"longer-cell", "2"},
	})
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a            long-header") {
		t.Fatalf("header misaligned: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator missing: %q", lines[1])
	}
}

func TestOptionsSelection(t *testing.T) {
	o := Options{}.normalize()
	if o.Procs < 1 || o.Reps < 1 {
		t.Fatal("normalize must set defaults")
	}
	pure := o.selected(true, false)
	for _, b := range pure {
		if !b.Pure {
			t.Fatalf("%s is not pure", b.Name)
		}
	}
	imp := o.selected(false, true)
	for _, b := range imp {
		if b.Pure {
			t.Fatalf("%s is pure", b.Name)
		}
	}
	if len(pure)+len(imp) != 17 {
		t.Fatalf("pure %d + imperative %d != 17", len(pure), len(imp))
	}
	named := Options{Names: []string{"fib", "usp"}}.normalize().selected(false, false)
	if len(named) != 2 {
		t.Fatalf("name filter returned %d benchmarks", len(named))
	}
}

func TestOptionsScale(t *testing.T) {
	b, _ := bench.ByName("fib")
	if (Options{Paper: true}).scale(b) != b.Paper {
		t.Fatal("paper flag must select paper sizes")
	}
	if (Options{}).scale(b) != b.Default {
		t.Fatal("default sizes expected")
	}
}

func TestFig8Smoke(t *testing.T) {
	var sb strings.Builder
	if err := Fig8(&sb, Options{}, 500); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"local", "distant", "promoted", "write-ptr-promoting"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure 8 output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONEmission(t *testing.T) {
	var sb strings.Builder
	if err := Fig8(&sb, Options{JSON: true}, 500); err != nil {
		t.Fatal(err)
	}
	var tab Table
	if err := json.Unmarshal([]byte(sb.String()), &tab); err != nil {
		t.Fatalf("fig8 -json is not valid JSON: %v\n%s", err, sb.String())
	}
	if tab.Table != "fig8" || len(tab.Header) != 3 || len(tab.Rows) == 0 {
		t.Fatalf("unexpected payload: %+v", tab)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row/header width mismatch: %v vs %v", row, tab.Header)
		}
	}

	sb.Reset()
	o := Options{Procs: 2, Names: []string{"fib"}, JSON: true}
	if err := Fig9(&sb, o); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(sb.String()), &tab); err != nil {
		t.Fatalf("fig9 -json is not valid JSON: %v\n%s", err, sb.String())
	}
	if tab.Table != "fig9" || tab.Procs != 2 {
		t.Fatalf("unexpected payload: %+v", tab)
	}
}

func TestFig9Smoke(t *testing.T) {
	var sb strings.Builder
	o := Options{Procs: 2, Names: []string{"fib", "usp-tree"}}
	if err := Fig9(&sb, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "immutable reads") {
		t.Fatalf("fib row wrong:\n%s", out)
	}
	if !strings.Contains(out, "distant promoting writes") {
		t.Fatalf("usp-tree row wrong:\n%s", out)
	}
}

func TestZoneTableSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var sb strings.Builder
	o := Options{Procs: 2, Reps: 1, Names: []string{"msort-pure"}}
	if err := ZoneTable(&sb, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"zones", "leaf", "join", "maxcc", "mut-cpu(s)", "gc-cpu(s)", "msort-pure"} {
		if !strings.Contains(out, want) {
			t.Fatalf("zone table missing %q:\n%s", want, out)
		}
	}
}

func TestFig10SmokeValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var sb strings.Builder
	o := Options{Procs: 2, Reps: 1, Names: []string{"fib"}}
	if err := Fig10(&sb, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "all systems agree") {
		t.Fatalf("validation line missing:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), rts.ParMem.String()) {
		t.Fatal("parmem column missing")
	}
}

func TestServeTableSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serving benchmark")
	}
	var sb strings.Builder
	if err := ServeTable(&sb, Options{Procs: 2, Reps: 1}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Serving:", "mlton-parmem", "wholesale(MB)", "cc-sess"} {
		if !strings.Contains(out, want) {
			t.Fatalf("serve table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VALIDATION FAILURE") {
		t.Fatalf("serve table failed validation:\n%s", out)
	}
}

func TestEmitStampsSchemaAndWritesOutDir(t *testing.T) {
	dir := t.TempDir()
	o := Options{JSON: true, OutDir: dir, Commit: "deadbeef"}
	var sb strings.Builder
	tab := Table{Table: "example", Title: "Example", Header: []string{"h"}, Rows: [][]string{{"v"}}}
	if err := o.emit(&sb, tab); err != nil {
		t.Fatal(err)
	}

	check := func(data []byte, where string) {
		var got Table
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%s: %v", where, err)
		}
		if got.Schema != TableSchema {
			t.Fatalf("%s schema = %q, want %q", where, got.Schema, TableSchema)
		}
		if got.Commit != "deadbeef" {
			t.Fatalf("%s commit = %q", where, got.Commit)
		}
		if got.Table != "example" || len(got.Rows) != 1 {
			t.Fatalf("%s round-trip mangled: %+v", where, got)
		}
	}
	check([]byte(sb.String()), "stdout")
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_example.json"))
	if err != nil {
		t.Fatal(err)
	}
	check(data, "out file")
}

func TestEmitTextModeStillWritesOutDir(t *testing.T) {
	dir := t.TempDir()
	o := Options{OutDir: dir}
	var sb strings.Builder
	if err := o.emit(&sb, Table{Table: "t2", Title: "T2", Header: []string{"h"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "T2") {
		t.Fatal("text rendering suppressed by OutDir")
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_t2.json")); err != nil {
		t.Fatal(err)
	}
}
