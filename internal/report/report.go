// Package report regenerates every table and figure of the paper's
// evaluation section (§4) from fresh measurements: Figure 8 (operation
// costs), Figure 9 (representative operations), Figures 10–11 (pure and
// imperative benchmark tables), Figure 12 (speedup versus processors), and
// Figure 13 (memory consumption and inflation). Checksums are compared
// across all runtime systems on every row; a mismatch is reported loudly.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
	"repro/internal/rts"
)

// Options configures a report run.
type Options struct {
	Procs  int      // processor count for the T_P columns (>=1)
	Reps   int      // runs per measurement; the median is reported
	Paper  bool     // use the paper's original problem sizes
	Names  []string // subset of benchmarks; empty = all
	JSON   bool     // emit one JSON object per table instead of aligned text
	OutDir string   // also write each table as OutDir/BENCH_<table>.json
	Commit string   // commit identifier stamped into emitted tables
}

// TableSchema identifies the JSON layout emitted for a Table; bump it when
// the field set or cell conventions change so perf-trajectory tooling can
// refuse tables it does not understand.
const TableSchema = "hhbench/v1"

// Table is the machine-readable form of one emitted table (the -json
// output of cmd/hhbench). Rows carry the same formatted cells as the text
// rendering, keyed positionally by Header, so perf-trajectory tooling can
// diff tables across commits without scraping aligned text. Schema and
// Commit make a saved table self-describing: which layout it uses and
// which commit produced it.
type Table struct {
	Schema   string     `json:"schema"`
	Commit   string     `json:"commit,omitempty"`
	Table    string     `json:"table"`
	Title    string     `json:"title"`
	Procs    int        `json:"procs,omitempty"`
	Header   []string   `json:"header"`
	Rows     [][]string `json:"rows"`
	Failures []string   `json:"validation_failures,omitempty"`
}

// emit renders a table as JSON (one object per line) or as the titled
// aligned-text layout, per Options.JSON; with OutDir set it additionally
// writes the table to OutDir/BENCH_<table>.json, one file per table.
func (o Options) emit(w io.Writer, t Table) error {
	t.Schema = TableSchema
	t.Commit = o.Commit
	if o.OutDir != "" {
		data, err := json.Marshal(t)
		if err != nil {
			return err
		}
		path := filepath.Join(o.OutDir, "BENCH_"+t.Table+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if o.JSON {
		return json.NewEncoder(w).Encode(t)
	}
	fmt.Fprintln(w, t.Title)
	renderTable(w, t.Header, t.Rows)
	for _, f := range t.Failures {
		fmt.Fprintln(w, f)
	}
	return nil
}

func (o Options) normalize() Options {
	if o.Procs < 1 {
		o.Procs = 2
	}
	if o.Reps < 1 {
		o.Reps = 3
	}
	return o
}

func (o Options) scale(b *bench.Benchmark) bench.Scale {
	if o.Paper {
		return b.Paper
	}
	return b.Default
}

func (o Options) selected(pureOnly, impOnly bool) []*bench.Benchmark {
	var out []*bench.Benchmark
	for _, b := range bench.All() {
		if pureOnly && !b.Pure {
			continue
		}
		if impOnly && b.Pure {
			continue
		}
		if len(o.Names) > 0 {
			found := false
			for _, n := range o.Names {
				if n == b.Name {
					found = true
				}
			}
			if !found {
				continue
			}
		}
		out = append(out, b)
	}
	return out
}

// renderTable prints an aligned text table.
func renderTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

func fmtSec(r bench.Result) string {
	return fmt.Sprintf("%.3f", r.Elapsed.Seconds())
}

func fmtRatio(num, den float64) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", num/den)
}

func fmtPct(f float64) string {
	return fmt.Sprintf("%.1f%%", 100*f)
}

// fmtPerReq formats a per-request rate, guarding the idle-server case.
func fmtPerReq(n, requests int64) string {
	if requests == 0 {
		requests = 1
	}
	return fmt.Sprintf("%.2f", float64(n)/float64(requests))
}

type mismatch struct {
	bench  string
	system string
	got    uint64
	want   uint64
}

// systemsFor returns the parallel systems compared against the sequential
// baseline for a benchmark (Figure 10 vs Figure 11 column sets).
func systemsFor(b *bench.Benchmark) []rts.Mode {
	if b.Pure {
		return []rts.Mode{rts.STW, rts.Manticore, rts.ParMem}
	}
	return []rts.Mode{rts.STW, rts.ParMem}
}

// benchTable renders the Figure 10 / Figure 11 layout for the given
// benchmark subset.
func benchTable(w io.Writer, o Options, name, title string, pureOnly bool) error {
	o = o.normalize()
	benches := o.selected(pureOnly, !pureOnly)
	var miss []mismatch

	header := []string{"benchmark", "Ts", "GCs"}
	var systems []rts.Mode
	if pureOnly {
		systems = []rts.Mode{rts.STW, rts.Manticore, rts.ParMem}
	} else {
		systems = []rts.Mode{rts.STW, rts.ParMem}
	}
	for _, m := range systems {
		p := fmt.Sprintf("%d", o.Procs)
		header = append(header,
			m.String()+":T1", "ovh", "T"+p, "spd")
		if m != rts.Manticore {
			header = append(header, "GC"+p)
		}
	}

	var rows [][]string
	for _, b := range benches {
		sc := o.scale(b)
		seqRes := bench.Measure(b, rts.DefaultConfig(rts.Seq, 1), sc, o.Reps)
		ts := seqRes.Elapsed.Seconds()
		row := []string{b.Name, fmtSec(seqRes), fmtPct(seqRes.GCFraction())}
		for _, m := range systems {
			r1 := bench.Measure(b, rts.DefaultConfig(m, 1), sc, o.Reps)
			rp := bench.Measure(b, rts.DefaultConfig(m, o.Procs), sc, o.Reps)
			for _, r := range []bench.Result{r1, rp} {
				if r.Checksum != seqRes.Checksum {
					miss = append(miss, mismatch{b.Name, m.String(), r.Checksum, seqRes.Checksum})
				}
			}
			row = append(row,
				fmtSec(r1), fmtRatio(r1.Elapsed.Seconds(), ts),
				fmtSec(rp), fmtRatio(ts, rp.Elapsed.Seconds()))
			if m != rts.Manticore {
				row = append(row, fmtPct(rp.GCFraction()))
			}
		}
		rows = append(rows, row)
	}
	tab := Table{Table: name, Title: title, Procs: o.Procs, Header: header, Rows: rows}
	for _, m := range miss {
		tab.Failures = append(tab.Failures, fmt.Sprintf(
			"VALIDATION FAILURE: %s on %s: checksum %x, want %x", m.bench, m.system, m.got, m.want))
	}
	if err := o.emit(w, tab); err != nil {
		return err
	}
	if !o.JSON && len(miss) == 0 {
		fmt.Fprintln(w, "validation: all systems agree on every checksum")
	}
	return nil
}

// Fig10 regenerates the pure-benchmark table.
func Fig10(w io.Writer, o Options) error {
	return benchTable(w, o, "fig10",
		"Figure 10: execution times, overheads, and speedups of purely functional benchmarks", true)
}

// Fig11 regenerates the imperative-benchmark table.
func Fig11(w io.Writer, o Options) error {
	return benchTable(w, o, "fig11",
		"Figure 11: execution times, overheads, and speedups of imperative benchmarks", false)
}

// Fig12 regenerates the speedup-versus-processors series for mlton-parmem.
func Fig12(w io.Writer, o Options) error {
	o = o.normalize()
	benches := o.selected(false, false)
	header := []string{"benchmark"}
	for p := 1; p <= o.Procs; p++ {
		header = append(header, fmt.Sprintf("P=%d", p))
	}
	var rows [][]string
	for _, b := range benches {
		sc := o.scale(b)
		seqRes := bench.Measure(b, rts.DefaultConfig(rts.Seq, 1), sc, o.Reps)
		ts := seqRes.Elapsed.Seconds()
		row := []string{b.Name}
		for p := 1; p <= o.Procs; p++ {
			rp := bench.Measure(b, rts.DefaultConfig(rts.ParMem, p), sc, o.Reps)
			row = append(row, fmtRatio(ts, rp.Elapsed.Seconds()))
		}
		rows = append(rows, row)
	}
	return o.emit(w, Table{Table: "fig12", Procs: o.Procs, Header: header, Rows: rows,
		Title: "Figure 12: speedups of mlton-parmem (series per benchmark)"})
}

// Fig13 regenerates the memory consumption and inflation table.
func Fig13(w io.Writer, o Options) error {
	o = o.normalize()
	benches := o.selected(false, false)
	header := []string{"benchmark", "Ms(MB)",
		"spoonhower:I1", fmt.Sprintf("I%d", o.Procs),
		"parmem:I1", fmt.Sprintf("I%d", o.Procs)}
	var rows [][]string
	for _, b := range benches {
		sc := o.scale(b)
		seqRes := bench.Measure(b, rts.DefaultConfig(rts.Seq, 1), sc, o.Reps)
		ms := float64(seqRes.Totals.PeakMem)
		row := []string{b.Name, fmt.Sprintf("%.1f", ms/(1<<20))}
		for _, m := range []rts.Mode{rts.STW, rts.ParMem} {
			r1 := bench.Measure(b, rts.DefaultConfig(m, 1), sc, o.Reps)
			rp := bench.Measure(b, rts.DefaultConfig(m, o.Procs), sc, o.Reps)
			row = append(row,
				fmtRatio(float64(r1.Totals.PeakMem), ms),
				fmtRatio(float64(rp.Totals.PeakMem), ms))
		}
		rows = append(rows, row)
	}
	return o.emit(w, Table{Table: "fig13", Procs: o.Procs, Header: header, Rows: rows,
		Title: "Figure 13: memory consumption (MB) and inflations"})
}

// Fig9 regenerates the representative-operations table from the actual
// operation counters of a hierarchical-heaps run.
func Fig9(w io.Writer, o Options) error {
	o = o.normalize()
	header := []string{"benchmark", "representative operation", "promotions", "promoted-bytes"}
	var rows [][]string
	for _, b := range o.selected(false, false) {
		res := bench.Run(b, rts.DefaultConfig(rts.ParMem, o.Procs), o.scale(b))
		rows = append(rows, []string{
			b.Name,
			res.Totals.Ops.Representative(),
			fmt.Sprintf("%d", res.Totals.Ops.Promotions),
			fmt.Sprintf("%d", res.Totals.Ops.PromotedBytes()),
		})
	}
	return o.emit(w, Table{Table: "fig9", Procs: o.Procs, Header: header, Rows: rows,
		Title: "Figure 9: representative operations (from mlton-parmem op counters)"})
}

// ZoneTable reports the hierarchical collector's concurrency, the
// repository's extension beyond the paper's tables: for each benchmark a
// mlton-parmem run at P processors, with run-phase GC pause time separated
// from mutator processor time, and the zone-collection counters — total
// zones split into leaf (allocation safe point) and join (internal-node)
// collections, the peak number of zones in flight at once, and the wall
// time during which two or more zones overlapped.
func ZoneTable(w io.Writer, o Options) error {
	o = o.normalize()
	header := []string{"benchmark", "T_P", "mut-cpu(s)", "gc-cpu(s)", "gc%",
		"zones", "leaf", "join", "maxcc", "ovl(ms)"}
	var rows [][]string
	for _, b := range o.selected(false, false) {
		sc := o.scale(b)
		rp := bench.Measure(b, rts.DefaultConfig(rts.ParMem, o.Procs), sc, o.Reps)
		gcCPU := float64(rp.GCNanos) / 1e9
		mutCPU := float64(rp.Totals.Procs)*rp.Elapsed.Seconds() - gcCPU
		if mutCPU < 0 {
			mutCPU = 0
		}
		z := rp.Totals.Zones
		rows = append(rows, []string{
			b.Name, fmtSec(rp),
			fmt.Sprintf("%.3f", mutCPU),
			fmt.Sprintf("%.3f", gcCPU),
			fmtPct(rp.GCFraction()),
			fmt.Sprintf("%d", z.Zones),
			fmt.Sprintf("%d", z.LeafZones),
			fmt.Sprintf("%d", z.JoinZones),
			fmt.Sprintf("%d", z.MaxConcurrent),
			fmt.Sprintf("%.1f", float64(z.OverlapNanos)/1e6),
		})
	}
	return o.emit(w, Table{Table: "zones", Procs: o.Procs, Header: header, Rows: rows,
		Title: fmt.Sprintf("Zone concurrency: mlton-parmem collections at P=%d (pause vs mutator time)", o.Procs)})
}

// Fig8 regenerates the operation-cost matrix.
func Fig8(w io.Writer, o Options, iters int) error {
	if iters < 1 {
		iters = 200_000
	}
	rows := bench.Fig8Costs(iters)
	header := []string{"object", "operation", "ns/op"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Object, r.Op, fmt.Sprintf("%.1f", r.NsPerOp)})
	}
	return o.emit(w, Table{Table: "fig8", Header: header, Rows: cells,
		Title: "Figure 8: costs of memory operations (ns/op, mlton-parmem, GC off)"})
}
