package report

import (
	"fmt"
	"io"
	"runtime"

	"repro/hh"
	"repro/hh/serve"
	"repro/internal/load"
	"repro/internal/mem"
)

// TxnTable benchmarks the transactional and mixed-criticality workloads:
// a txn-only closed loop per runtime mode (optimistic transactions whose
// conflicts abort through the panic-isolation path, so rollback is a
// wholesale chunk release), then a kv-alone versus kv+rank comparison on
// the same mode (what the latency-sensitive p99 pays for sharing the pool
// and zone scheduler with long-occupancy analytics sessions). The abort%,
// rollback-bytes-per-transaction, and retry-latency columns quantify the
// free-rollback claim; the serializability oracle replays every run's
// committed schedule and any divergence fails the table, as does a
// checksum mismatch across rows.
func TxnTable(w io.Writer, o Options) error {
	o = o.normalize()
	params := load.Params{TxnKeys: 24} // small enough to see real conflicts
	mix, err := load.ParseMixWith(params, "txn")
	if err != nil {
		return err
	}
	clients := 2 * o.Procs
	if clients < 8 {
		clients = 8
	}
	requests, size := 16*clients, 800
	if o.Paper {
		requests *= 4
	}
	if runtime.GOMAXPROCS(0) < o.Procs {
		runtime.GOMAXPROCS(o.Procs)
	}
	mem.DrainChunkPool()

	header := []string{"system", "txns", "req/s", "abort%", "rollback(B/txn)", "retries",
		"retry-lat(ms)", "p99-kv(ms)", "p99-kv+rank(ms)", "rank-ops"}
	systems := []struct {
		name string
		mode hh.Mode
		opts []hh.Option
	}{
		{hh.Seq.String(), hh.Seq, nil},
		{hh.STW.String(), hh.STW, nil},
		{hh.Manticore.String(), hh.Manticore, nil},
		{hh.ParMem.String(), hh.ParMem, nil},
		// The lazy-promotion ablation: staging writes pin instead of copy,
		// and the abort path's release sweep must still resolve every pin.
		{hh.ParMem.String() + "+deferred", hh.ParMem, []hh.Option{hh.WithDeferredPromotion()}},
	}
	var rows [][]string
	var failures []string
	var refSum uint64
	var refMode string
	for _, sys := range systems {
		opts := append([]hh.Option{hh.WithMode(sys.mode), hh.WithProcs(o.Procs),
			hh.WithGCPolicy(2048, 1.25)}, sys.opts...)
		r := hh.New(opts...)
		srv := serve.New(r, serve.WithMaxInFlight(clients), serve.WithQueueDepth(2*clients))
		res := load.Drive(srv, mix, clients, requests, size, nil)
		st := srv.Stats()
		r.Close()

		if res.Failures > 0 {
			failures = append(failures, fmt.Sprintf(
				"VALIDATION FAILURE: %d request(s) failed on %s", res.Failures, sys.name))
		}
		if res.OracleErr != nil {
			failures = append(failures, fmt.Sprintf(
				"VALIDATION FAILURE: serializability oracle on %s: %v", sys.name, res.OracleErr))
		}
		if refMode == "" {
			refSum, refMode = res.Checksum, sys.name
		} else if res.Checksum != refSum {
			failures = append(failures, fmt.Sprintf(
				"VALIDATION FAILURE: request stream on %s: checksum %x, want %x (%s)",
				sys.name, res.Checksum, refSum, refMode))
		}

		mx, err := load.RunMixed(sys.mode, o.Procs, params, sys.opts, clients, requests/2, 400)
		if err != nil {
			return err
		}
		if mx.Failures > 0 {
			failures = append(failures, fmt.Sprintf(
				"VALIDATION FAILURE: %d mixed-phase request(s) failed on %s", mx.Failures, sys.name))
		}
		if mx.ChecksumMixed != mx.ChecksumAlone {
			failures = append(failures, fmt.Sprintf(
				"VALIDATION FAILURE: kv checksum on %s changed under analytics: %x vs %x",
				sys.name, mx.ChecksumMixed, mx.ChecksumAlone))
		}

		rollbackPerTxn := float64(0)
		if res.Aborts > 0 {
			rollbackPerTxn = float64(res.RolledBackBytes) / float64(res.Aborts)
		}
		retryMs := float64(0)
		if res.Retries > 0 {
			retryMs = float64(res.RetryNanos) / float64(res.Retries) / 1e6
		}
		rows = append(rows, []string{
			sys.name,
			fmt.Sprintf("%d", res.Commits),
			fmt.Sprintf("%.0f", st.Throughput),
			fmt.Sprintf("%.1f", 100*res.AbortRate()),
			fmt.Sprintf("%.0f", rollbackPerTxn),
			fmt.Sprintf("%d", res.Retries),
			fmt.Sprintf("%.3f", retryMs),
			fmt.Sprintf("%.2f", float64(mx.P99Alone.Microseconds())/1e3),
			fmt.Sprintf("%.2f", float64(mx.P99Mixed.Microseconds())/1e3),
			fmt.Sprintf("%d", mx.AnalyticsOps),
		})
	}
	tab := Table{Table: "txn", Procs: o.Procs, Header: header, Rows: rows, Failures: failures,
		Title: fmt.Sprintf(
			"Transactions: OCC commit/abort over %d keys at P=%d (%d clients), plus kv p99 with resident rank analytics",
			params.TxnKeys, o.Procs, clients)}
	if err := o.emit(w, tab); err != nil {
		return err
	}
	if !o.JSON && len(failures) == 0 {
		fmt.Fprintln(w, "validation: all systems agree on the request-stream checksum; oracle replay matches every schedule")
	}
	return nil
}
