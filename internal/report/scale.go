package report

import (
	"fmt"
	"io"
	"runtime"

	"repro/hh"
	"repro/hh/serve"
	"repro/internal/load"
	"repro/internal/mem"
)

// ScaleTable sweeps worker count for the hierarchical system: the same
// closed-loop request stream (kv-churn, bfs, histogram, fan-out — fixed
// request count and sizes, so every row must produce the same checksum)
// drives an hh/serve.Server on mlton-parmem at P = 2, 4, 8, ... up to
// Options.Procs. Each row reports throughput and the serialization
// tell-tales: GC share of processor time, peak concurrent zones and
// distinct sessions collecting at once (do they actually grow with P?),
// the write-barrier fast-path rate, chunk recycling, cross-shard pool
// steals, and directory-lock operations per request. This is the table
// that motivated sharding the admission, child-registry, pool, and
// accounting locks; rerun it when touching any shared structure on the
// serving path.
//
// The in-flight session cap scales with P (2P, floor 8) while the request
// stream stays fixed, so req/s is comparable across rows and speedup is
// reported against the P=2 row.
func ScaleTable(w io.Writer, o Options) error {
	o = o.normalize()
	maxP := o.Procs
	if maxP < 2 {
		maxP = 2
	}
	var sweep []int
	for p := 2; p < maxP; p *= 2 {
		sweep = append(sweep, p)
	}
	sweep = append(sweep, maxP)

	mix, err := load.ParseMix("kv=2,bfs=1,hist=1,fan=1")
	if err != nil {
		return err
	}
	requests, size := 24*maxSessions(maxP), 1000
	if o.Paper {
		requests *= 4
	}
	if runtime.GOMAXPROCS(0) < maxP {
		runtime.GOMAXPROCS(maxP) // the sweep is about parallel wall time
	}
	mem.DrainChunkPool() // cold pool: rows tell a consistent recycle story

	header := []string{"P", "sess", "req/s", "spd-vs-P2", "gc%",
		"peak-cc-zones", "cc-sess", "barrier-fast%", "recycle%",
		"pool-steals", "dirops/req"}
	var rows [][]string
	var failures []string
	var refSum uint64
	var baseRate float64
	for _, p := range sweep {
		sessions := maxSessions(p)
		r := hh.New(hh.WithMode(hh.ParMem), hh.WithProcs(p), hh.WithGCPolicy(2048, 1.25))
		srv := serve.New(r, serve.WithMaxInFlight(sessions), serve.WithQueueDepth(2*sessions))
		res := load.Drive(srv, mix, sessions, requests, size, nil)
		st := srv.Stats()
		rt := r.Stats()
		r.Close()

		if res.Failures > 0 {
			failures = append(failures, fmt.Sprintf(
				"VALIDATION FAILURE: %d request(s) failed at P=%d", res.Failures, p))
		}
		if refSum == 0 {
			refSum = res.Checksum
		} else if res.Checksum != refSum {
			failures = append(failures, fmt.Sprintf(
				"VALIDATION FAILURE: request stream at P=%d: checksum %x, want %x (P=%d baseline)",
				p, res.Checksum, refSum, sweep[0]))
		}
		gcFrac := 0.0
		if cpu := float64(p) * res.Elapsed.Seconds(); cpu > 0 {
			gcFrac = float64(rt.GCNanos) / 1e9 / cpu
		}
		if baseRate == 0 {
			baseRate = st.Throughput
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%d", sessions),
			fmt.Sprintf("%.0f", st.Throughput),
			fmtRatio(st.Throughput, baseRate),
			fmtPct(gcFrac),
			fmt.Sprintf("%d", rt.Zones.MaxConcurrent),
			fmt.Sprintf("%d", rt.Zones.MaxConcurrentSessions),
			fmtPct(rt.Ops.BarrierFastRate()),
			fmtPct(rt.Alloc.RecycleRate()),
			fmt.Sprintf("%d", rt.Alloc.ShardSteals),
			fmtPerReq(rt.Alloc.DirIDOps, st.Finished()),
		})
	}
	tab := Table{Table: "scale", Procs: maxP, Header: header, Rows: rows, Failures: failures,
		Title: fmt.Sprintf(
			"Scaling: mlton-parmem serve throughput vs P (fixed %d-request kv/bfs/hist/fan stream, host GOMAXPROCS cap %d)",
			requests, runtime.NumCPU())}
	if err := o.emit(w, tab); err != nil {
		return err
	}
	if !o.JSON && len(failures) == 0 {
		fmt.Fprintln(w, "validation: every P produces the baseline checksum")
	}
	return nil
}

// maxSessions is the in-flight session cap the scale sweep uses at P
// workers: two per worker with a floor of eight, matching the serve table.
func maxSessions(p int) int {
	if s := 2 * p; s > 8 {
		return s
	}
	return 8
}
