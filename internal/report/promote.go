package report

import (
	"fmt"
	"io"
	"runtime"

	"repro/hh"
	"repro/hh/serve"
	"repro/internal/load"
	"repro/internal/mem"
)

// PromoteTable benchmarks the write barrier under serving load: the
// kv-churn serve mix (kv=2,bfs=1,hist=1 plus the batched fan publish)
// drives the closed loop through the barrier variants of each runtime
// system — the default eager barrier with the fast paths and promote
// buffer enabled ("on"), every pointer write forced through the
// master-copy lookup under the heap read lock (hh.WithoutBarrierFastPath,
// "off" — the paper-faithful eager baseline), and, for mlton-parmem,
// deferred promotion (hh.WithDeferredPromotion, "deferred"). For each run
// it reports the barrier mix of Figure 9's write classes, the promotion
// volume, the pin outcomes, and the lock-climb amortization the promote
// buffer provides.
//
// Reading it: "fast%" (local) + "anc%" (ancestor-pointee) is the share of
// pointer writes that never touched a heap lock; with the fast paths off
// both columns read 0 and every write lands in "find%" or "prom%". The
// promoting share is a property of the workload, so "prom%" and
// "promB/req" should match between the eager rows — what changes is
// req/s. The deferred row moves most of "prom%" into "pin%" (writes that
// recorded a remembered-set entry instead of copying) and shrinks
// "promB/req": only second touches and drain survivors are ever copied.
// "die%" is the share of pins resolved WITHOUT an upward copy — the entry
// died at a drain, elided at a join, dropped with a wholesale release, or
// was consumed by the collector's stale-slot pass; it is the deferral's
// win rate, and "-" on eager rows. "w/climb" is promoting
// writes per lock climb (above 1.0 means the promote buffer shared climbs
// across a batch) and "lockdepth" the mean number of heaps write-locked
// per climb.
func PromoteTable(w io.Writer, o Options) error {
	o = o.normalize()
	mix, err := load.ParseMix("kv=2,bfs=1,hist=1,fan=1")
	if err != nil {
		return err
	}
	sessions := 2 * o.Procs
	if sessions < 8 {
		sessions = 8
	}
	requests, size := 16*sessions, 1200
	if o.Paper {
		requests *= 4
	}
	if runtime.GOMAXPROCS(0) < o.Procs {
		runtime.GOMAXPROCS(o.Procs) // let in-flight sessions overlap in wall time
	}

	header := []string{"system", "barrier", "req/s", "ptr-writes", "fast%", "anc%",
		"find%", "prom%", "pin%", "promB/req", "die%", "climbs", "w/climb", "lockdepth"}
	type variant struct {
		label string
		opts  []hh.Option
	}
	variantsOf := func(mode hh.Mode) []variant {
		v := []variant{
			{"on", nil},
			{"off", []hh.Option{hh.WithoutBarrierFastPath()}},
		}
		if mode == hh.ParMem {
			v = append(v, variant{"deferred", []hh.Option{hh.WithDeferredPromotion()}})
		}
		return v
	}
	var rows [][]string
	var failures []string
	var refSum uint64
	var refRow string
	for _, mode := range []hh.Mode{hh.Seq, hh.STW, hh.Manticore, hh.ParMem} {
		for _, v := range variantsOf(mode) {
			opts := append([]hh.Option{hh.WithMode(mode), hh.WithProcs(o.Procs),
				hh.WithGCPolicy(2048, 1.25)}, v.opts...)
			// Cold chunk pool per run, as in AllocTable: rows are comparable
			// regardless of what ran before them.
			mem.DrainChunkPool()
			r := hh.New(opts...)
			srv := serve.New(r, serve.WithMaxInFlight(sessions), serve.WithQueueDepth(2*sessions))
			res := load.Drive(srv, mix, sessions, requests, size, nil)
			st := srv.Stats()
			rt := r.Stats()
			ops := rt.Ops
			r.Close()

			rowID := fmt.Sprintf("%s (barrier %s)", mode, v.label)
			if res.Failures > 0 {
				failures = append(failures, fmt.Sprintf(
					"VALIDATION FAILURE: %d request(s) failed on %s", res.Failures, rowID))
			}
			// The barrier is an implementation detail: every row must compute
			// the identical request stream, deferred included.
			if refRow == "" {
				refSum, refRow = res.Checksum, rowID
			} else if res.Checksum != refSum {
				failures = append(failures, fmt.Sprintf(
					"VALIDATION FAILURE: request stream on %s: checksum %x, want %x (%s)",
					rowID, res.Checksum, refSum, refRow))
			}
			if v.label == "deferred" {
				if d := rt.Deferred; !d.Balanced() || d.Live != 0 {
					failures = append(failures, fmt.Sprintf(
						"VALIDATION FAILURE: pin accounting on %s: %+v", rowID, d))
				}
			}

			total := ops.PtrWrites()
			pct := func(n int64) string {
				if total == 0 {
					return "-"
				}
				return fmtPct(float64(n) / float64(total))
			}
			wPerClimb := "-"
			if ops.PromoteClimbs > 0 {
				wPerClimb = fmt.Sprintf("%.2f", float64(ops.WritePtrProm)/float64(ops.PromoteClimbs))
			}
			diePct := "-"
			if d := rt.Deferred; d.Pins > 0 {
				// Every resolution that never copied the pointee upward: dead
				// at a drain, elided at a join, dropped with a wholesale
				// release, or consumed by the collector's stale-slot pass.
				diePct = fmtPct(float64(d.DrainDied+d.JoinElided+d.ReleaseDrop+d.GCResolved) / float64(d.Pins))
			}
			rows = append(rows, []string{
				mode.String(), v.label,
				fmt.Sprintf("%.0f", st.Throughput),
				fmt.Sprintf("%d", total),
				pct(ops.WritePtrFast),
				pct(ops.WritePtrAncestor),
				pct(ops.WritePtrNonProm),
				pct(ops.WritePtrProm),
				pct(ops.WritePtrPinned),
				fmtPerReq(ops.PromotedBytes(), st.Finished()),
				diePct,
				fmt.Sprintf("%d", ops.PromoteClimbs),
				wPerClimb,
				fmt.Sprintf("%.2f", ops.MeanClimbDepth()),
			})
		}
	}
	tab := Table{Table: "promote", Procs: o.Procs, Header: header, Rows: rows, Failures: failures,
		Title: fmt.Sprintf(
			"Write barrier: fast-path mix, promotion cost, and deferred pins under serving load at P=%d (%d in-flight)",
			o.Procs, sessions)}
	if err := o.emit(w, tab); err != nil {
		return err
	}
	if !o.JSON && len(failures) == 0 {
		fmt.Fprintln(w, "validation: all rows agree on the request-stream checksum")
	}
	return nil
}
