package report

import (
	"fmt"
	"io"
	"runtime"

	"repro/hh"
	"repro/hh/serve"
	"repro/internal/load"
	"repro/internal/mem"
)

// PromoteTable benchmarks the write barrier under serving load: the
// kv-churn serve mix (kv=2,bfs=1,hist=1 plus the batched fan publish)
// drives the closed loop twice per runtime system — once with the barrier
// fast paths and the promote buffer enabled (the default) and once with
// every pointer write forced through the master-copy lookup under the heap
// read lock (hh.WithoutBarrierFastPath, the paper-faithful baseline). For
// each run it reports the barrier mix of Figure 9's write classes, the
// promotion volume, and the lock-climb amortization the promote buffer
// provides.
//
// Reading it: "fast%" (local) + "anc%" (ancestor-pointee) is the share of
// pointer writes that never touched a heap lock; with the fast paths off
// both columns read 0 and every write lands in "find%" or "prom%". The
// promoting share is a property of the workload, so "prom%" and
// "promB/req" should match between the on and off rows — what changes is
// req/s. "w/climb" is promoting writes per lock climb (above 1.0 means the
// promote buffer shared climbs across a batch) and "lockdepth" the mean
// number of heaps write-locked per climb.
func PromoteTable(w io.Writer, o Options) error {
	o = o.normalize()
	mix, err := load.ParseMix("kv=2,bfs=1,hist=1,fan=1")
	if err != nil {
		return err
	}
	sessions := 2 * o.Procs
	if sessions < 8 {
		sessions = 8
	}
	requests, size := 16*sessions, 1200
	if o.Paper {
		requests *= 4
	}
	if runtime.GOMAXPROCS(0) < o.Procs {
		runtime.GOMAXPROCS(o.Procs) // let in-flight sessions overlap in wall time
	}

	header := []string{"system", "fastpath", "req/s", "ptr-writes", "fast%", "anc%",
		"find%", "prom%", "promB/req", "climbs", "w/climb", "lockdepth"}
	var rows [][]string
	var failures []string
	var refSum uint64
	var refRow string
	for _, mode := range []hh.Mode{hh.Seq, hh.STW, hh.Manticore, hh.ParMem} {
		for _, fast := range []bool{true, false} {
			opts := []hh.Option{hh.WithMode(mode), hh.WithProcs(o.Procs),
				hh.WithGCPolicy(2048, 1.25)}
			label := "on"
			if !fast {
				opts = append(opts, hh.WithoutBarrierFastPath())
				label = "off"
			}
			// Cold chunk pool per run, as in AllocTable: rows are comparable
			// regardless of what ran before them.
			mem.DrainChunkPool()
			r := hh.New(opts...)
			srv := serve.New(r, serve.WithMaxInFlight(sessions), serve.WithQueueDepth(2*sessions))
			res := load.Drive(srv, mix, sessions, requests, size, nil)
			st := srv.Stats()
			ops := r.Stats().Ops
			r.Close()

			rowID := fmt.Sprintf("%s (fastpath %s)", mode, label)
			if res.Failures > 0 {
				failures = append(failures, fmt.Sprintf(
					"VALIDATION FAILURE: %d request(s) failed on %s", res.Failures, rowID))
			}
			// The fast paths are an implementation detail: every row must
			// compute the identical request stream.
			if refRow == "" {
				refSum, refRow = res.Checksum, rowID
			} else if res.Checksum != refSum {
				failures = append(failures, fmt.Sprintf(
					"VALIDATION FAILURE: request stream on %s: checksum %x, want %x (%s)",
					rowID, res.Checksum, refSum, refRow))
			}

			total := ops.PtrWrites()
			pct := func(n int64) string {
				if total == 0 {
					return "-"
				}
				return fmtPct(float64(n) / float64(total))
			}
			wPerClimb := "-"
			if ops.PromoteClimbs > 0 {
				wPerClimb = fmt.Sprintf("%.2f", float64(ops.WritePtrProm)/float64(ops.PromoteClimbs))
			}
			rows = append(rows, []string{
				mode.String(), label,
				fmt.Sprintf("%.0f", st.Throughput),
				fmt.Sprintf("%d", total),
				pct(ops.WritePtrFast),
				pct(ops.WritePtrAncestor),
				pct(ops.WritePtrNonProm),
				pct(ops.WritePtrProm),
				fmtPerReq(ops.PromotedBytes(), st.Finished()),
				fmt.Sprintf("%d", ops.PromoteClimbs),
				wPerClimb,
				fmt.Sprintf("%.2f", ops.MeanClimbDepth()),
			})
		}
	}
	tab := Table{Table: "promote", Procs: o.Procs, Header: header, Rows: rows, Failures: failures,
		Title: fmt.Sprintf(
			"Write barrier: fast-path mix and promotion cost under serving load at P=%d (%d in-flight, fast paths on vs off)",
			o.Procs, sessions)}
	if err := o.emit(w, tab); err != nil {
		return err
	}
	if !o.JSON && len(failures) == 0 {
		fmt.Fprintln(w, "validation: all rows agree on the request-stream checksum")
	}
	return nil
}
