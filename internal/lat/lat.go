// Package lat provides the runtime's log-scale latency histogram: one
// bucket per power of two of nanoseconds, with linear interpolation inside
// a bucket at quantile time. Bounded memory regardless of sample count,
// cheap enough to sit on a request hot path, and accurate to within the
// bucket's resolution (a factor of two at worst, far less after
// interpolation) — the fidelity the serving tables need for p50…p999.
//
// The zero Hist is ready to use. Hist is not synchronized; callers either
// own one per goroutine and Merge, or record under their own lock (as
// hh/serve does).
package lat

import (
	"math/bits"
	"time"
)

// Hist is a log-bucketed latency histogram. The zero value is empty.
type Hist struct {
	buckets [64]int64
	count   int64
	sum     int64
	max     int64
}

// Record adds one sample. Negative durations clamp to zero.
func (h *Hist) Record(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Merge folds other's samples into h.
func (h *Hist) Merge(other *Hist) {
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count reports the number of recorded samples.
func (h *Hist) Count() int64 { return h.count }

// Sum reports the total of all recorded samples. Together with Count it
// gives exporters the _sum/_count pair a Prometheus summary needs for
// rate()-based averages.
func (h *Hist) Sum() time.Duration { return time.Duration(h.sum) }

// Max reports the largest recorded sample.
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Mean reports the arithmetic mean of the recorded samples.
func (h *Hist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Quantile returns the approximate q-quantile (0 < q <= 1).
func (h *Hist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		if seen+n > rank {
			// Interpolate inside [2^(b-1), 2^b).
			lo := int64(0)
			if b > 0 {
				lo = int64(1) << (b - 1)
			}
			hi := int64(1) << b
			if hi > h.max {
				hi = h.max
			}
			if hi < lo {
				hi = lo
			}
			frac := float64(rank-seen) / float64(n)
			return time.Duration(lo + int64(frac*float64(hi-lo)))
		}
		seen += n
	}
	return time.Duration(h.max)
}
