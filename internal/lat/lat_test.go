package lat

import (
	"testing"
	"time"
)

func TestQuantilesOrderedAndBounded(t *testing.T) {
	var h Hist
	for i := 1; i <= 10_000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	p999 := h.Quantile(0.999)
	if !(p50 <= p99 && p99 <= p999 && p999 <= h.Max()) {
		t.Fatalf("quantiles out of order: p50=%v p99=%v p999=%v max=%v", p50, p99, p999, h.Max())
	}
	// Log buckets are exact to a factor of two; with interpolation the
	// uniform ramp should land well inside that envelope.
	if p50 < 2500*time.Microsecond || p50 > 10*time.Millisecond {
		t.Fatalf("p50 %v implausible for uniform 1µs..10ms ramp", p50)
	}
	if h.Max() != 10_000*time.Microsecond {
		t.Fatalf("max %v, want 10ms", h.Max())
	}
	if m := h.Mean(); m < 4*time.Millisecond || m > 6*time.Millisecond {
		t.Fatalf("mean %v, want ~5ms", m)
	}
}

func TestZeroAndNegative(t *testing.T) {
	var h Hist
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("zero hist must report zeros")
	}
	h.Record(-time.Second) // clamps
	if h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample: max=%v count=%d, want 0/1", h.Max(), h.Count())
	}
}

func TestMerge(t *testing.T) {
	var a, b Hist
	for i := 0; i < 100; i++ {
		a.Record(time.Millisecond)
		b.Record(time.Second)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("count %d, want 200", a.Count())
	}
	if a.Max() != time.Second {
		t.Fatalf("max %v, want 1s", a.Max())
	}
	if p := a.Quantile(0.25); p > 2*time.Millisecond {
		t.Fatalf("p25 %v, want ~1ms", p)
	}
	if p := a.Quantile(0.9); p < 500*time.Millisecond {
		t.Fatalf("p90 %v, want ~1s", p)
	}
}
