package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestDisabledIsInert: with no recorder installed, every entry point is a
// no-op — Begin hands back the 0 sentinel, snapshots are nil.
func TestDisabledIsInert(t *testing.T) {
	if Enabled() {
		t.Fatal("tracing enabled at test start")
	}
	if span := Begin(0, EvZone, 0, 0); span != 0 {
		t.Fatalf("Begin while disabled returned %d, want 0", span)
	}
	Emit(0, EvShed, 0, 0)
	End(0, EvZone, 0, 0, 0)
	Complete(0, EvClimb, time.Now(), time.Microsecond, 0, 0)
	if s := TakeSnapshot(); s != nil {
		t.Fatalf("TakeSnapshot while disabled returned %v, want nil", s)
	}
}

// TestStartIsExclusive: the first Start wins; a second caller must not
// install (and must not later Stop the first owner's recorder).
func TestStartIsExclusive(t *testing.T) {
	if !Start(2, 64) {
		t.Fatal("first Start refused")
	}
	t.Cleanup(Stop)
	if Start(2, 64) {
		t.Fatal("second Start succeeded; recorder must be exclusive")
	}
	if !Enabled() {
		t.Fatal("not enabled after Start")
	}
}

// TestRingWraparoundConcurrent hammers a deliberately tiny ring from many
// goroutines so slots are overwritten thousands of times mid-read, then
// checks that every event a snapshot returns is intact: a valid type, a
// plausible track, a timestamp within the cut. Run under -race this also
// proves the seqlock publish/drain protocol is data-race-free.
func TestRingWraparoundConcurrent(t *testing.T) {
	const (
		workers   = 8
		perWorker = 5000
		ringSize  = 64 // perWorker >> ringSize: guaranteed wraparound
	)
	if !Start(workers, ringSize) {
		t.Fatal("Start refused")
	}
	t.Cleanup(Stop)

	var producers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshots while producers wrap the rings.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := TakeSnapshot()
			for _, e := range s.Events {
				if e.Type == EvNone || e.Type >= evCount {
					t.Errorf("torn event: type %d", e.Type)
				}
				if e.Nanos > s.CutNanos {
					t.Errorf("event at %d published after cut %d", e.Nanos, s.CutNanos)
				}
				if e.Track < -1 || e.Track >= workers {
					t.Errorf("bad track %d", e.Track)
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		producers.Add(1)
		go func(w int) {
			defer producers.Done()
			for i := 0; i < perWorker; i++ {
				switch i % 3 {
				case 0:
					Emit(w, EvPoolRefill, uint32(i), uint64(i))
				case 1:
					span := Begin(w, EvZone, 0, uint64(i))
					End(w, EvZone, span, 0, uint64(i))
				default:
					Emit(-1, EvShed, ShedSaturated, uint64(i))
				}
			}
		}(w)
	}
	producers.Wait()
	close(stop)
	readers.Wait()

	s := TakeSnapshot()
	if len(s.Events) == 0 {
		t.Fatal("empty snapshot after heavy emit")
	}
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].Nanos < s.Events[i-1].Nanos {
			t.Fatalf("snapshot not time-sorted at %d", i)
		}
	}
}

// TestExportBalancedSpans snapshots WHILE span emitters are live and
// asserts the exported Chrome events are balanced by construction: only
// "X"/"i"/"M" phases, every X fully inside [0, cut], never a dangling
// begin or end.
func TestExportBalancedSpans(t *testing.T) {
	if !Start(4, 256) {
		t.Fatal("Start refused")
	}
	t.Cleanup(Stop)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				span := Begin(w, EvZone, uint32(i%2), uint64(i))
				Emit(w, EvPoolRefill, 3, 0)
				start := time.Now()
				Complete(w, EvClimb, start, time.Since(start), 0, 1<<32|2)
				End(w, EvZone, span, 0, uint64(i*10))
			}
		}(w)
	}

	for round := 0; round < 20; round++ {
		s := TakeSnapshot()
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		var doc struct {
			TraceEvents []struct {
				Ph  string   `json:"ph"`
				Ts  float64  `json:"ts"`
				Dur *float64 `json:"dur"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("export is not valid JSON: %v", err)
		}
		cutUs := float64(s.CutNanos) / 1e3
		for _, e := range doc.TraceEvents {
			switch e.Ph {
			case "M":
			case "i":
				if e.Ts < 0 || e.Ts > cutUs {
					t.Fatalf("instant at %v outside [0, %v]", e.Ts, cutUs)
				}
			case "X":
				if e.Dur == nil || *e.Dur < 0 {
					t.Fatalf("X event with missing/negative dur")
				}
				if e.Ts < 0 || e.Ts+*e.Dur > cutUs+0.001 {
					t.Fatalf("span [%v, %v] escapes the cut %v", e.Ts, e.Ts+*e.Dur, cutUs)
				}
			default:
				t.Fatalf("unbalanced phase %q in export (only X/i/M may appear)", e.Ph)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestEmitDoesNotAllocate: the enabled emit paths must be allocation-free —
// a flight recorder that allocates per event distorts the heap it is
// watching.
func TestEmitDoesNotAllocate(t *testing.T) {
	if !Start(2, 1024) {
		t.Fatal("Start refused")
	}
	t.Cleanup(Stop)
	if n := testing.AllocsPerRun(1000, func() {
		Emit(1, EvPoolSteal, 7, 42)
	}); n != 0 {
		t.Fatalf("Emit allocates %v per call, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		span := Begin(0, EvZone, 0, 8)
		End(0, EvZone, span, 0, 3)
	}); n != 0 {
		t.Fatalf("Begin/End allocate %v per call, want 0", n)
	}
	begin := time.Now()
	if n := testing.AllocsPerRun(1000, func() {
		Complete(0, EvClimb, begin, time.Microsecond, 0, 1<<32|4)
	}); n != 0 {
		t.Fatalf("Complete allocates %v per call, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if Enabled() {
			Emit(-1, EvShed, ShedTenant, 1)
		}
	}); n != 0 {
		t.Fatalf("guarded emit allocates %v per call, want 0", n)
	}
}
