package trace

import (
	"net/http"
	"strconv"
	"time"
)

// Handler serves the flight recorder over HTTP: GET /debug/trace?sec=N
// sleeps N seconds (so the rings fill with the window the caller wants to
// look at), snapshots, and streams Chrome trace-event JSON. With the
// recorder disabled it answers 503. sec is clamped to [0, 60]; 0 snapshots
// immediately — the rings already hold the recent past, which is the point
// of a flight recorder.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !Enabled() {
			http.Error(w, "tracing disabled (start hhserved with -trace-buf > 0)", http.StatusServiceUnavailable)
			return
		}
		sec := 0
		if v := r.URL.Query().Get("sec"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad sec parameter", http.StatusBadRequest)
				return
			}
			sec = min(n, 60)
		}
		if sec > 0 {
			select {
			case <-time.After(time.Duration(sec) * time.Second):
			case <-r.Context().Done():
				return
			}
		}
		s := TakeSnapshot()
		if s == nil { // recorder stopped while we slept
			http.Error(w, "tracing disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="hh-trace.json"`)
		_ = s.WriteJSON(w)
	})
}
