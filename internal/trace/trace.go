// Package trace is the runtime's flight recorder: always-on, bounded,
// lock-free event rings that can be snapshotted at any moment and exported
// as Chrome trace-event JSON for Perfetto.
//
// The design goals, in order:
//
//  1. Disabled cost is one predicted-false branch per emit site
//     (Enabled() is a single atomic.Bool load).
//  2. Enabled cost is a handful of atomic stores into a per-worker ring —
//     no locks, no allocation, no channel sends on any emit path.
//  3. A snapshot is a consistent cut: it captures the cut time first, then
//     drains every ring and discards events published after the cut, so a
//     span can never end before it begins within one snapshot.
//
// Events are fixed-size (five 64-bit words, see ring.go). Spans are paired
// by an explicit span ID drawn from a global counter — Begin returns the ID,
// End carries it back — so overlapping spans on one track (work stealing,
// Seq-mode sessions sharing the off-worker track) pair correctly no matter
// how they interleave. The exporter turns matched pairs into Chrome "X"
// complete events and unmatched Begins into spans closed at the cut.
package trace

import (
	"sync/atomic"
	"time"
)

// Type identifies what an event describes. Values are stable: they appear
// in exported traces and in scripts/checktrace.
type Type uint8

const (
	EvNone       Type = iota
	EvZone            // zone collection (span): aux = kind|stripe<<8, beg arg = base heap ID, end arg = words copied
	EvClimb           // promotion lock climb. Complete span (climbs >= 1us): arg = batch<<32 | depth, span word = duration. Instant (coalesced sub-us climbs): aux = count<<8 | max depth, arg = total nanos<<32 | objects
	EvSession         // session lifetime (span): arg = session ID, end aux = outcome (0 ok, 1 failed)
	EvSubmit          // session submitted (instant): arg = session ID
	EvSTW             // stop-the-world collection (span): end arg = words copied
	EvPoolRefill      // worker cache refilled from a pool shard (instant): aux = size class
	EvPoolSteal       // pool refill crossed to another shard (instant): aux = size class
	EvShed            // request shed (instant): aux = shed reason, arg = queue depth
	EvDrain           // drain phase (span): aux = drain scope
	EvQueue           // request queued behind admission (span): end arg = session ID
	EvRequest         // client-side request (span): arg = request seq, end aux = outcome
	EvTxn             // transaction commit window (span): beg arg = txn seed, end aux = outcome (0 commit, 1 abort), end arg = staged words
	evCount
)

// Shed reasons carried in EvShed aux. Order matches netserve's shed replies.
const (
	ShedSaturated uint32 = iota
	ShedTenant
	ShedPressure
	ShedDraining
)

// Drain scopes carried in EvDrain aux.
const (
	DrainServer   uint32 = iota // serve.Server.Drain: quiesce in-flight + queued work
	DrainFrontend               // netserve.Frontend.Drain: listener + server + connection flush
)

// DefaultBufEvents is the per-ring capacity used when a caller enables
// tracing without choosing a size (hh.WithTrace(0), hhserved default).
// At 40 B/event this is ~2.6 MB per ring.
const DefaultBufEvents = 1 << 16

// Phase distinguishes instants from span boundaries, packed next to the
// Type in the meta word.
type Phase uint8

const (
	PhaseInstant Phase = iota
	PhaseBegin
	PhaseEnd
	// PhaseComplete is a self-contained span published once, at its end,
	// with the duration in the span word. Used by emit sites too hot for a
	// Begin/End pair (promotion climbs): one ring publish, and the caller
	// supplies timestamps it already took for its own accounting, so the
	// trace adds no clock reads. A snapshot cannot see such a span while it
	// is open — acceptable for climbs, which run a few microseconds at most.
	PhaseComplete
)

// Recorder owns one ring per worker track plus a shared ring for off-worker
// emitters (track -1: client goroutines, the serve admission path, Seq-mode
// sessions). At most one Recorder is installed process-wide, mirroring the
// one-active-Runtime rule.
type Recorder struct {
	start  time.Time // wall-clock epoch; event timestamps are nanos since this
	tracks int
	rings  []*ring // len tracks+1; rings[tracks] is the shared off-worker ring
}

var (
	enabled atomic.Bool
	active  atomic.Pointer[Recorder]
	spanSeq atomic.Uint64
)

// Enabled reports whether a recorder is installed. This is THE fast path:
// every emit site is `if trace.Enabled() { ... }` and the disabled cost is
// this one atomic load and a predicted-false branch.
func Enabled() bool {
	return enabled.Load()
}

// Start installs a recorder with one ring of perRing events per track
// (worker) plus a shared off-worker ring. It returns false if a recorder is
// already installed — the first owner wins and keeps it; callers that get
// false must not Stop.
func Start(tracks, perRing int) bool {
	if tracks < 1 {
		tracks = 1
	}
	if perRing <= 0 {
		perRing = DefaultBufEvents
	}
	r := &Recorder{start: time.Now(), tracks: tracks}
	r.rings = make([]*ring, tracks+1)
	for i := range r.rings {
		r.rings[i] = newRing(perRing)
	}
	if !active.CompareAndSwap(nil, r) {
		return false
	}
	enabled.Store(true)
	return true
}

// Stop uninstalls the recorder. Emits racing with Stop are dropped (they see
// a nil recorder); none block or crash.
func Stop() {
	enabled.Store(false)
	active.Store(nil)
}

// Emit records an instant event on track (worker ID, or <0 for the shared
// off-worker ring). No-op when disabled; callers still guard with Enabled()
// so the disabled path never loads the recorder pointer.
func Emit(track int, t Type, aux uint32, arg uint64) {
	emit(track, t, PhaseInstant, aux, 0, arg)
}

// Begin opens a span and returns its ID, or 0 when tracing is disabled.
// Pass the ID to End; a zero ID makes End a no-op, so call sites can do
//
//	span := trace.Begin(track, trace.EvZone, aux, arg) // 0 when disabled
//	...
//	trace.End(track, trace.EvZone, span, aux2, arg2)
//
// without re-checking Enabled (though checking avoids the argument setup).
func Begin(track int, t Type, aux uint32, arg uint64) uint64 {
	if !enabled.Load() {
		return 0
	}
	id := spanSeq.Add(1)
	emit(track, t, PhaseBegin, aux, id, arg)
	return id
}

// End closes the span opened by Begin. span==0 (disabled at Begin) is a
// no-op; if tracing stopped in between, the event is silently dropped.
func End(track int, t Type, span uint64, aux uint32, arg uint64) {
	if span == 0 {
		return
	}
	emit(track, t, PhaseEnd, aux, span, arg)
}

// Complete records a whole span in one event: it started at begin, ran for
// dur, and is published now (at its end). begin and dur come from the
// caller's own timing, so an emit site that already measures itself (the
// promotion climb, for PromoteNanos) pays only the ring publish. No-op when
// disabled.
func Complete(track int, t Type, begin time.Time, dur time.Duration, aux uint32, arg uint64) {
	r := active.Load()
	if r == nil {
		return
	}
	ts := begin.Sub(r.start)
	if ts < 0 {
		return // began before the recorder started: outside its epoch
	}
	rg := r.rings[r.tracks]
	if track >= 0 {
		rg = r.rings[track%r.tracks]
	}
	meta := uint64(t)<<56 | uint64(PhaseComplete)<<48 | uint64(uint16(track+1))<<32 | uint64(aux)
	rg.publish(uint64(ts), meta, uint64(dur), arg)
}

// emit packs and publishes one event:
//
//	w0 = nanos since recorder start
//	w1 = Type<<56 | phase<<48 | uint16(track+1)<<32 | aux
//	w2 = span ID (0 for instants)
//	w3 = arg
func emit(track int, t Type, ph Phase, aux uint32, span, arg uint64) {
	r := active.Load()
	if r == nil {
		return
	}
	ts := uint64(time.Since(r.start))
	rg := r.rings[r.tracks] // shared off-worker ring
	if track >= 0 {
		rg = r.rings[track%r.tracks]
	}
	meta := uint64(t)<<56 | uint64(ph)<<48 | uint64(uint16(track+1))<<32 | uint64(aux)
	rg.publish(ts, meta, span, arg)
}

func (e rawEvent) nanos() int64 { return int64(e.w[0]) }
func (e rawEvent) typ() Type    { return Type(e.w[1] >> 56) }
func (e rawEvent) phase() Phase { return Phase(uint8(e.w[1] >> 48)) }
func (e rawEvent) track() int   { return int(uint16(e.w[1]>>32)) - 1 }
func (e rawEvent) aux() uint32  { return uint32(e.w[1]) }
func (e rawEvent) span() uint64 { return e.w[2] }
func (e rawEvent) arg() uint64  { return e.w[3] }
