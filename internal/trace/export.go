package trace

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"strconv"
	"time"
)

// Event is one decoded ring event in a Snapshot.
type Event struct {
	Nanos int64 // since Snapshot.Start
	Type  Type
	Phase Phase
	Track int // worker ID, or -1 for off-worker emitters
	Aux   uint32
	Span  uint64 // span ID pairing Begin/End; duration nanos for PhaseComplete
	Arg   uint64
}

// Snapshot is a consistent cut of the recorder: every event it contains was
// published at or before CutNanos, and within it no span ends before it
// begins. Events are sorted by timestamp.
type Snapshot struct {
	Start    time.Time // recorder epoch (wall clock)
	CutNanos int64     // cut time, nanos since Start
	Tracks   int       // worker track count (off-worker events have Track -1)
	Events   []Event
}

// TakeSnapshot drains every ring into a consistent cut. It returns nil when
// tracing is disabled. The recorder keeps running; producers are never
// blocked (events published during the drain are excluded by the cut
// filter, which is what makes the cut consistent: the cut time is captured
// BEFORE any ring is read, so an event is included iff it was published
// before the cut, regardless of drain order).
func TakeSnapshot() *Snapshot {
	r := active.Load()
	if r == nil {
		return nil
	}
	cut := int64(time.Since(r.start))
	var raw []rawEvent
	for _, rg := range r.rings {
		raw = rg.drain(raw)
	}
	s := &Snapshot{Start: r.start, CutNanos: cut, Tracks: r.tracks}
	s.Events = make([]Event, 0, len(raw))
	for _, e := range raw {
		if e.nanos() > cut {
			continue
		}
		// A complete span is published at its END; one that began before the
		// cut but ended after it would poke past the cut, so it is excluded.
		if e.phase() == PhaseComplete && e.nanos()+int64(e.span()) > cut {
			continue
		}
		s.Events = append(s.Events, Event{
			Nanos: e.nanos(), Type: e.typ(), Phase: e.phase(),
			Track: e.track(), Aux: e.aux(), Span: e.span(), Arg: e.arg(),
		})
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].Nanos < s.Events[j].Nanos })
	return s
}

// evInfo names each event type for export. cat groups tracks in Perfetto's
// search/filter UI.
var evInfo = [evCount]struct{ name, cat string }{
	EvZone:       {"zone-collect", "gc"},
	EvClimb:      {"promote-climb", "barrier"},
	EvSession:    {"session", "serve"},
	EvSubmit:     {"session-submit", "serve"},
	EvSTW:        {"stw-collect", "gc"},
	EvPoolRefill: {"pool-refill", "alloc"},
	EvPoolSteal:  {"pool-steal", "alloc"},
	EvShed:       {"shed", "serve"},
	EvDrain:      {"drain", "net"},
	EvQueue:      {"queue-wait", "serve"},
	EvRequest:    {"request", "client"},
	EvTxn:        {"txn-commit", "txn"},
}

var shedReasonNames = [...]string{"saturated", "tenant", "pressure", "draining"}
var drainScopeNames = [...]string{"server", "frontend"}
var zoneKindNames = [...]string{"leaf", "join"}

// chromeEvent is one entry of the Chrome trace-event format's traceEvents
// array (the subset Perfetto renders: X complete spans, i instants, M
// metadata). Timestamps and durations are in microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// tid maps a track to a Chrome thread ID: workers get 1..tracks, the shared
// off-worker track gets 0.
func tid(track int) int {
	if track < 0 {
		return 0
	}
	return track + 1
}

func micros(nanos int64) float64 { return float64(nanos) / 1e3 }

// spanArgs merges the begin- and end-side payloads of one span into the
// exported args map, named per event type.
func spanArgs(typ Type, begAux uint32, begArg uint64, endAux uint32, endArg uint64, closedAtCut bool) map[string]any {
	a := map[string]any{}
	switch typ {
	case EvZone:
		kind := int(begAux & 0xff)
		if kind < len(zoneKindNames) {
			a["kind"] = zoneKindNames[kind]
		} else {
			a["kind"] = kind
		}
		a["stripe"] = begAux >> 8
		a["heap"] = begArg
		a["words"] = endArg
	case EvClimb: // complete event: batch and depth packed in one arg
		a["batch"] = begArg >> 32
		a["depth"] = begArg & 0xffffffff
	case EvSession:
		a["session"] = begArg
		if endAux == 0 {
			a["outcome"] = "ok"
		} else {
			a["outcome"] = "failed"
		}
	case EvSTW:
		a["words"] = endArg
	case EvDrain:
		if int(begAux) < len(drainScopeNames) {
			a["scope"] = drainScopeNames[begAux]
		}
		if endAux != 0 {
			a["forced"] = true
		}
	case EvQueue:
		a["session"] = endArg
	case EvRequest:
		a["seq"] = begArg
		switch endAux {
		case 0:
			a["outcome"] = "ok"
		case 1:
			a["outcome"] = "shed"
		default:
			a["outcome"] = "error"
		}
	case EvTxn:
		a["seed"] = begArg
		if !closedAtCut {
			if endAux == 0 {
				a["outcome"] = "commit"
			} else {
				a["outcome"] = "abort"
			}
			a["staged_words"] = endArg
		}
	}
	if closedAtCut {
		a["open_at_cut"] = true
	}
	return a
}

func instantArgs(e Event) map[string]any {
	switch e.Type {
	case EvPoolRefill, EvPoolSteal:
		return map[string]any{"class": e.Aux}
	case EvClimb: // coalesced sub-microsecond climbs (core.PromoteBuf)
		return map[string]any{
			"climbs":    e.Aux >> 8,
			"max_depth": e.Aux & 0xff,
			"total_ns":  e.Arg >> 32,
			"objects":   e.Arg & 0xffffffff,
		}
	case EvShed:
		a := map[string]any{"queued": e.Arg}
		if int(e.Aux) < len(shedReasonNames) {
			a["reason"] = shedReasonNames[e.Aux]
		} else {
			a["reason"] = e.Aux
		}
		return a
	case EvSubmit:
		return map[string]any{"session": e.Arg}
	}
	return nil
}

// ChromeEvents converts the snapshot into trace-event entries. Span pairs
// become "X" complete events placed on the BEGIN side's track (the End may
// run on a different goroutine). Begins whose End lies beyond the cut are
// closed at the cut and tagged open_at_cut; Ends whose Begin was overwritten
// in the ring are dropped. Both rules guarantee the output contains only
// balanced, fully-contained spans.
func (s *Snapshot) ChromeEvents() []chromeEvent {
	out := make([]chromeEvent, 0, len(s.Events)+s.Tracks+2)

	// Metadata: name the process and every track that carries events.
	seen := map[int]bool{}
	for _, e := range s.Events {
		seen[e.Track] = true
	}
	out = append(out, chromeEvent{Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "hh runtime"}})
	tracks := make([]int, 0, len(seen))
	for t := range seen {
		tracks = append(tracks, t)
	}
	sort.Ints(tracks)
	for _, t := range tracks {
		name := "off-worker"
		if t >= 0 {
			name = "worker " + strconv.Itoa(t)
		}
		out = append(out, chromeEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: tid(t),
			Args: map[string]any{"name": name}})
	}

	begins := map[uint64]Event{}
	var spans []chromeEvent
	for _, e := range s.Events {
		switch e.Phase {
		case PhaseBegin:
			begins[e.Span] = e
		case PhaseEnd:
			b, ok := begins[e.Span]
			if !ok {
				continue // begin overwritten: drop the orphan end
			}
			delete(begins, e.Span)
			dur := micros(e.Nanos - b.Nanos)
			spans = append(spans, chromeEvent{
				Name: evInfo[b.Type].name, Cat: evInfo[b.Type].cat, Ph: "X",
				Ts: micros(b.Nanos), Dur: &dur, Pid: 1, Tid: tid(b.Track),
				Args: spanArgs(b.Type, b.Aux, b.Arg, e.Aux, e.Arg, false),
			})
		case PhaseComplete:
			dur := micros(int64(e.Span)) // span word carries the duration
			spans = append(spans, chromeEvent{
				Name: evInfo[e.Type].name, Cat: evInfo[e.Type].cat, Ph: "X",
				Ts: micros(e.Nanos), Dur: &dur, Pid: 1, Tid: tid(e.Track),
				Args: spanArgs(e.Type, e.Aux, e.Arg, 0, 0, false),
			})
		default:
			spans = append(spans, chromeEvent{
				Name: evInfo[e.Type].name, Cat: evInfo[e.Type].cat, Ph: "i",
				Ts: micros(e.Nanos), Pid: 1, Tid: tid(e.Track), S: "t",
				Args: instantArgs(e),
			})
		}
	}
	// Spans still open at the cut: close them at the cut time.
	for _, b := range begins {
		dur := micros(s.CutNanos - b.Nanos)
		spans = append(spans, chromeEvent{
			Name: evInfo[b.Type].name, Cat: evInfo[b.Type].cat, Ph: "X",
			Ts: micros(b.Nanos), Dur: &dur, Pid: 1, Tid: tid(b.Track),
			Args: spanArgs(b.Type, b.Aux, b.Arg, 0, 0, true),
		})
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Ts < spans[j].Ts })
	return append(out, spans...)
}

// WriteJSON writes the snapshot as a Chrome trace-event JSON object
// ({"traceEvents": [...]}), loadable directly in Perfetto or
// chrome://tracing.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     s.ChromeEvents(),
		"displayTimeUnit": "ms",
	})
}

// WriteFile snapshots the active recorder and writes it to path. It is the
// shared exit-path helper behind every -trace FILE flag. Returns without
// error (and without creating the file) when tracing is disabled.
func WriteFile(path string) error {
	s := TakeSnapshot()
	if s == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
