package trace

import "sync/atomic"

// A ring is a fixed-size multi-producer event buffer. Each slot holds one
// event: a sequence word plus four payload words. Producers claim a ticket
// from next with a single atomic add, then publish into slot ticket%size
// seqlock-style:
//
//	seq.Store(0)          // invalidate: readers must discard the old event
//	w[0..3].Store(...)    // payload
//	seq.Store(ticket+1)   // publish: seq encodes WHICH lap wrote the slot
//
// A reader snapshots next, then for each live ticket loads seq, the payload,
// and seq again; the event is accepted only if both loads returned ticket+1.
// Two producers a full lap apart can race on one slot — the loser's event is
// torn and the seq check rejects it. That is the flight-recorder trade: under
// overwrite pressure an event may be dropped, but a torn event is never
// observed. All five words are atomics so the race detector agrees.
//
// The +1 bias keeps seq==0 as "never published / mid-write", so the zero
// value of a slot is self-describingly empty.
type ring struct {
	next  atomic.Uint64
	_     [7]uint64 // keep the hot ticket counter off the slots' cache lines
	slots []slot
}

type slot struct {
	seq atomic.Uint64
	w   [4]atomic.Uint64
}

func newRing(size int) *ring {
	if size < 1 {
		size = 1
	}
	return &ring{slots: make([]slot, size)}
}

// publish claims the next ticket and writes one event. Safe for any number
// of concurrent producers; never blocks, never allocates.
func (r *ring) publish(w0, w1, w2, w3 uint64) {
	t := r.next.Add(1) - 1
	s := &r.slots[t%uint64(len(r.slots))]
	s.seq.Store(0)
	s.w[0].Store(w0)
	s.w[1].Store(w1)
	s.w[2].Store(w2)
	s.w[3].Store(w3)
	s.seq.Store(t + 1)
}

// drain reads every currently-live event into out, skipping slots that are
// mid-write or that were overwritten while being read. Producers may keep
// publishing concurrently; drain only returns seq-consistent events.
func (r *ring) drain(out []rawEvent) []rawEvent {
	n := r.next.Load()
	size := uint64(len(r.slots))
	lo := uint64(0)
	if n > size {
		lo = n - size
	}
	for t := lo; t < n; t++ {
		s := &r.slots[t%size]
		if s.seq.Load() != t+1 {
			continue
		}
		var e rawEvent
		e.w[0] = s.w[0].Load()
		e.w[1] = s.w[1].Load()
		e.w[2] = s.w[2].Load()
		e.w[3] = s.w[3].Load()
		if s.seq.Load() != t+1 {
			continue // overwritten under us: discard the torn read
		}
		out = append(out, e)
	}
	return out
}

type rawEvent struct {
	w [4]uint64
}
