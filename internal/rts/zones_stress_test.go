package rts

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/gc"
	"repro/internal/mem"
)

// zoneStressArm is one sibling task of the concurrent-collection stress:
// it keeps a sizable live list (so every leaf collection copies real
// work), churns garbage (so the policy trips constantly), performs
// entangling writes into a shared root-level array (so promotions
// interleave with in-flight collections elsewhere), and verifies its data
// after every round. Returns 1 on success, 0 on corruption.
func zoneStressArm(t *Task, shared mem.ObjPtr, slot, rounds, listLen int) uint64 {
	var list mem.ObjPtr
	mark := t.PushRoot(&shared, &list)
	defer t.PopRoots(mark)
	for round := 0; round < rounds; round++ {
		list = mem.NilPtr
		for i := 0; i < listLen; i++ {
			cons := t.Alloc(1, 1, mem.TagCons)
			t.WriteInitWord(cons, 0, uint64(slot)<<32|uint64(i))
			t.WriteInitPtr(cons, 0, list)
			list = cons
		}
		for i := 0; i < 2000; i++ {
			t.Alloc(0, 6, mem.TagTuple) // garbage
		}
		// Entangling write: promotes the fresh cell into the root heap
		// while sibling zones may be mid-collection.
		cell := t.Alloc(0, 1, mem.TagRef)
		t.WriteInitWord(cell, 0, uint64(slot)<<32|uint64(round))
		t.WritePtr(shared, slot, cell)

		p := list
		for i := listLen - 1; i >= 0; i-- {
			if p.IsNil() || t.ReadImmWord(p, 0) != uint64(slot)<<32|uint64(i) {
				return 0
			}
			p = t.ReadImmPtr(p, 0)
		}
		if !p.IsNil() {
			return 0
		}
	}
	return 1
}

// runZoneStress executes one 4-sibling stress run and returns the
// checksum (1 = data intact) and the runtime totals.
func runZoneStress(tb testing.TB, cfg Config, rounds, listLen int) (uint64, Totals) {
	tb.Helper()
	arm := func(slot int) ScalarThunk {
		return func(t *Task, env mem.ObjPtr) uint64 {
			return zoneStressArm(t, env, slot, rounds, listLen)
		}
	}
	r := New(cfg)
	ok := r.Run(func(t *Task) uint64 {
		shared := t.AllocMut(4, 0, mem.TagArrPtr)
		mark := t.PushRoot(&shared)
		a, b := t.ForkJoinScalar(shared,
			func(t *Task, env mem.ObjPtr) uint64 {
				x, y := t.ForkJoinScalar(env, arm(0), arm(1))
				return x & y
			},
			func(t *Task, env mem.ObjPtr) uint64 {
				x, y := t.ForkJoinScalar(env, arm(2), arm(3))
				return x & y
			})
		res := a & b
		for slot := 0; slot < 4; slot++ {
			cell := t.ReadMutPtr(shared, slot)
			if cell.IsNil() || t.ReadImmWord(cell, 0) != uint64(slot)<<32|uint64(rounds-1) {
				res = 0
			}
		}
		t.PopRoots(mark)
		return res
	})
	st := r.Stats()
	if err := r.CheckDisentangled(); err != nil {
		tb.Fatalf("disentanglement violated: %v", err)
	}
	r.Close()
	return ok, st
}

// TestConcurrentZoneCollections is the headline stress for the zone
// scheduler: at least two leaf zones must be observed in flight at once
// (MaxConcurrent > 1) while sibling tasks keep mutating and promoting.
// Overlap depends on scheduling, so the test retries fresh runtimes under
// a deadline; each run performs hundreds of collections, so on any box
// with preemption it converges almost immediately. Run under -race it
// also serves as the data-race check for the whole concurrent path.
func TestConcurrentZoneCollections(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	cfg := DefaultConfig(ParMem, 4)
	cfg.Policy = gc.Policy{MinWords: 4096, Ratio: 1.2}

	deadline := time.Now().Add(90 * time.Second)
	var last Totals
	for attempt := 0; ; attempt++ {
		if time.Now().After(deadline) {
			t.Fatalf("after %d attempts no two zones overlapped (last: %+v)", attempt, last.Zones)
		}
		ok, st := runZoneStress(t, cfg, 6, 2500)
		if ok != 1 {
			t.Fatal("data corruption under concurrent zone collection")
		}
		if st.Zones.Zones == 0 || st.Ops.Promotions == 0 {
			t.Fatalf("stress did not stress: %+v / %d promotions", st.Zones, st.Ops.Promotions)
		}
		last = st
		if st.Zones.MaxConcurrent > 1 {
			if st.Zones.OverlapNanos <= 0 {
				t.Fatalf("concurrent zones recorded no overlap time: %+v", st.Zones)
			}
			t.Logf("attempt %d: %d zone collections, max %d concurrent, %v overlap, %d promotions",
				attempt, st.Zones.Zones, st.Zones.MaxConcurrent,
				time.Duration(st.Zones.OverlapNanos), st.Ops.Promotions)
			return
		}
	}
}

// TestMaxConcurrentZonesSerializes checks the ablation knob: with the cap
// at 1 the same workload must never overlap two collections. This is a
// deterministic property of admission, not of scheduling.
func TestMaxConcurrentZonesSerializes(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	cfg := DefaultConfig(ParMem, 4)
	cfg.Policy = gc.Policy{MinWords: 4096, Ratio: 1.2}
	cfg.MaxConcurrentZones = 1

	ok, st := runZoneStress(t, cfg, 4, 1500)
	if ok != 1 {
		t.Fatal("data corruption with serialized collections")
	}
	if st.Zones.Zones == 0 {
		t.Fatal("no zone collections ran")
	}
	if st.Zones.MaxConcurrent > 1 {
		t.Fatalf("cap of 1 violated: MaxConcurrent = %d", st.Zones.MaxConcurrent)
	}
	if st.Zones.OverlapNanos != 0 {
		t.Fatalf("serialized run recorded overlap: %+v", st.Zones)
	}
}

// TestJoinZoneCollectionRuns checks internal-node collection: on a single
// worker (deterministic inline execution) a parallel tree build with a
// tiny policy must trigger collections of merged ancestors at join
// points, and every ParMem collection must be accounted as a zone.
func TestJoinZoneCollectionRuns(t *testing.T) {
	cfg := DefaultConfig(ParMem, 1)
	cfg.Policy = gc.Policy{MinWords: 512, Ratio: 1.2}
	r := New(cfg)
	got := r.Run(func(task *Task) uint64 {
		root := buildTree(task, 9)
		mark := task.PushRoot(&root)
		// Garbage churn at the (now merged, leaf-like) root heap so an
		// allocation safe point also triggers a leaf-zone collection.
		for i := 0; i < 500; i++ {
			task.Alloc(0, 8, mem.TagTuple)
		}
		s := sumTree(task, root)
		task.PopRoots(mark)
		return s
	})
	st := r.Stats()
	r.Close()
	if got != 1<<9 {
		t.Fatalf("tree sum = %d, want %d", got, 1<<9)
	}
	if st.Zones.JoinZones == 0 {
		t.Fatalf("no internal-node collections at joins: %+v", st.Zones)
	}
	if st.Zones.LeafZones == 0 {
		t.Fatalf("no leaf collections: %+v", st.Zones)
	}
	if st.Zones.Zones != st.GC.Collections {
		t.Fatalf("zone accounting disagrees with GC stats: %d zones, %d collections",
			st.Zones.Zones, st.GC.Collections)
	}
}
