package rts

import (
	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/heap"
	"repro/internal/mem"
)

// The high-level memory operations of Figure 3, dispatched per mode. The
// ParMem and Manticore paths run the paper's algorithms (package core);
// the Seq path compiles to plain loads and stores; the STW path uses
// atomics for mutable data (parallel mutators) but needs no barriers.

// Alloc allocates an object with numPtr pointer fields and numNonptr raw
// words, running the mode's collection trigger first (allocation points are
// the GC safe points). Allocation is also the session safe point: an
// aborted session's tasks unwind here, and the session allocation budget
// is charged here (session.go allocGate).
func (t *Task) Alloc(numPtr, numNonptr int, tag mem.Tag) mem.ObjPtr {
	t.allocGate(mem.ObjectWords(numPtr, numNonptr))
	r := t.rt
	switch r.cfg.Mode {
	case ParMem, Seq:
		h := t.sh.Current()
		if !r.cfg.DisableGC && r.cfg.Policy.ShouldCollect(h) {
			t.collectZone([]*heap.Heap{h}, gc.LeafZone)
		}
		return core.Alloc(t.chunkCache(), h, &t.Ops, numPtr, numNonptr, tag)
	case STW:
		if r.gcFlag.Load() {
			t.stopForGCTask()
		}
		if !r.cfg.DisableGC && r.stwShouldCollect() {
			r.triggerSTW(t)
		}
		return core.Alloc(t.chunkCache(), t.ws.heap, &t.Ops, numPtr, numNonptr, tag)
	default: // Manticore
		h := t.ws.heap
		if !r.cfg.DisableGC && r.cfg.Policy.ShouldCollect(h) {
			t.collectLocal()
		}
		return core.Alloc(t.chunkCache(), h, &t.Ops, numPtr, numNonptr, tag)
	}
}

// AllocMut allocates an object that will be mutated and shared. In the
// Manticore (DLG) mode, mutable objects must live in the shared global
// heap — the invariant forbids pointers from the global heap into local
// heaps, so a locally allocated mutable object would entangle on its first
// shared update. The global allocation synchronizes on the global heap's
// lock: exactly the "increased cost of mutable allocations" the paper's
// related-work section attributes to DLG designs. Every other mode
// allocates task-locally (the paper's advantage).
func (t *Task) AllocMut(numPtr, numNonptr int, tag mem.Tag) mem.ObjPtr {
	r := t.rt
	if r.cfg.Mode == Manticore {
		t.allocGate(mem.ObjectWords(numPtr, numNonptr))
		g := r.rootHeap
		g.Lock(heap.WRITE)
		p := core.Alloc(t.chunkCache(), g, &t.Ops, numPtr, numNonptr, tag)
		g.Unlock()
		return p
	}
	return t.Alloc(numPtr, numNonptr, tag)
}

// ReadImmWord reads an immutable raw word field (no barrier in any mode).
func (t *Task) ReadImmWord(p mem.ObjPtr, i int) uint64 {
	return core.ReadImmWord(&t.Ops, p, i)
}

// ReadImmPtr reads an immutable pointer field.
func (t *Task) ReadImmPtr(p mem.ObjPtr, i int) mem.ObjPtr {
	return core.ReadImmPtr(&t.Ops, p, i)
}

// ReadMutWord reads a mutable raw word field.
func (t *Task) ReadMutWord(p mem.ObjPtr, i int) uint64 {
	switch t.rt.cfg.Mode {
	case ParMem, Manticore:
		return core.ReadMutWord(&t.Ops, p, i)
	case Seq:
		t.Ops.ReadMutFast++
		return mem.LoadWordField(p, i)
	default: // STW
		t.Ops.ReadMutFast++
		return mem.LoadWordFieldAtomic(p, i)
	}
}

// ReadMutPtr reads a mutable pointer field.
func (t *Task) ReadMutPtr(p mem.ObjPtr, i int) mem.ObjPtr {
	switch t.rt.cfg.Mode {
	case ParMem, Manticore:
		return core.ReadMutPtr(&t.Ops, p, i)
	case Seq:
		t.Ops.ReadMutFast++
		return mem.LoadPtrField(p, i)
	default: // STW
		t.Ops.ReadMutFast++
		return mem.LoadPtrFieldAtomic(p, i)
	}
}

// WriteNonptr writes a mutable raw word field.
func (t *Task) WriteNonptr(p mem.ObjPtr, i int, v uint64) {
	switch t.rt.cfg.Mode {
	case ParMem:
		core.WriteNonptr(t.sh.Current(), &t.Ops, p, i, v)
	case Manticore:
		core.WriteNonptr(t.ws.heap, &t.Ops, p, i, v)
	case Seq:
		t.Ops.WriteNonptrLocal++
		mem.StoreWordField(p, i, v)
	default: // STW
		t.Ops.WriteNonptrLocal++
		mem.StoreWordFieldAtomic(p, i, v)
	}
}

// CASWord compare-and-swaps a mutable raw word field.
func (t *Task) CASWord(p mem.ObjPtr, i int, old, new uint64) bool {
	switch t.rt.cfg.Mode {
	case ParMem, Manticore:
		return core.CASWord(&t.Ops, p, i, old, new)
	default:
		t.Ops.CASFast++
		return mem.CASWordField(p, i, old, new)
	}
}

// WritePtr writes a mutable pointer field, promoting in the hierarchical
// modes when the write would entangle the hierarchy.
func (t *Task) WritePtr(p mem.ObjPtr, i int, q mem.ObjPtr) {
	switch t.rt.cfg.Mode {
	case ParMem:
		if t.rt.cfg.DeferredPromotion {
			core.WritePtrDeferred(t.chunkCache(), t.sh.Current(), &t.pbuf, &t.Ops, p, i, q)
			return
		}
		if t.rt.cfg.NoBarrierFastPath {
			core.WritePtrSlow(t.chunkCache(), &t.pbuf, &t.Ops, p, i, q)
			return
		}
		core.WritePtr(t.chunkCache(), t.sh.Current(), &t.pbuf, &t.Ops, p, i, q)
	case Manticore:
		if t.rt.cfg.NoBarrierFastPath {
			core.WritePtrSlow(t.chunkCache(), &t.pbuf, &t.Ops, p, i, q)
			return
		}
		core.WritePtr(t.chunkCache(), t.ws.heap, &t.pbuf, &t.Ops, p, i, q)
	case Seq:
		t.Ops.WritePtrFast++
		mem.StorePtrField(p, i, q)
	default: // STW
		t.Ops.WritePtrFast++
		mem.StorePtrFieldAtomic(p, i, q)
	}
}

// WritePtrs writes qs[j] into the consecutive mutable pointer fields
// i+j of p — the batched pointer-write barrier. In the hierarchical modes
// every write that must promote shares one lock climb per promote-buffer
// flush (Config.PromoteBufferObjects staged pointees per climb) instead of
// climbing per object; in the flat modes it is a plain store loop. Each
// field write is individually linearizable, exactly as a WritePtr loop.
func (t *Task) WritePtrs(p mem.ObjPtr, i int, qs []mem.ObjPtr) {
	switch t.rt.cfg.Mode {
	case ParMem, Manticore:
		if t.rt.cfg.Mode == ParMem && t.rt.cfg.DeferredPromotion {
			// Deferred mode pins instead of climbing, so there is no climb
			// to amortize: a plain per-field loop is the batched barrier.
			for j, q := range qs {
				core.WritePtrDeferred(t.chunkCache(), t.sh.Current(), &t.pbuf, &t.Ops, p, i+j, q)
			}
			return
		}
		if t.rt.cfg.NoBarrierFastPath {
			// Paper-faithful baseline: per-object master lookup, no
			// batching, no fast paths.
			for j, q := range qs {
				core.WritePtrSlow(t.chunkCache(), &t.pbuf, &t.Ops, p, i+j, q)
			}
			return
		}
		core.WritePtrBatch(t.chunkCache(), t.CurrentHeap(), &t.pbuf, &t.Ops, p, i, qs)
	case Seq:
		t.Ops.WritePtrFast += int64(len(qs))
		for j, q := range qs {
			mem.StorePtrField(p, i+j, q)
		}
	default: // STW
		t.Ops.WritePtrFast += int64(len(qs))
		mem.StorePtrFieldsAtomic(p, i, qs)
	}
}

// WriteInitWord performs an initializing raw-word store into a fresh
// object (array construction; not mutation).
func (t *Task) WriteInitWord(p mem.ObjPtr, i int, v uint64) {
	core.WriteInitWord(&t.Ops, p, i, v)
}

// WriteInitPtr performs an initializing pointer store into a fresh object.
// The value must be disentangled with respect to the object (same heap or
// an ancestor), which the tests verify with the checker.
func (t *Task) WriteInitPtr(p mem.ObjPtr, i int, q mem.ObjPtr) {
	core.WriteInitPtr(&t.Ops, p, i, q)
}

// HeapOf exposes heapOf for examples and tests.
func HeapOf(p mem.ObjPtr) *heap.Heap { return heap.Of(p) }
