package rts

import (
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/sched"
)

// Thunk is one forkjoin arm (Figure 3's thunk). It receives the task
// context and an environment pointer and returns an object pointer (NilPtr
// for unit results).
//
// The environment is how object pointers cross a fork: closures must not
// capture mem.ObjPtr values directly, because collectors only update
// registered root slots and promoted environments must reach the stolen
// side. Pack pointers into env (a single object or a small tuple) and
// re-read them inside the thunk. Scalars may be captured freely.
type Thunk func(t *Task, env mem.ObjPtr) mem.ObjPtr

// ScalarThunk is a forkjoin arm returning a raw word (fib-style results);
// the result is never treated as a pointer.
type ScalarThunk func(t *Task, env mem.ObjPtr) uint64

// frame carries a forkjoin's stealable half and its join state.
type frame struct {
	sf       *sched.Frame
	ses      *Session // session the fork belongs to
	env      mem.ObjPtr
	result   mem.ObjPtr
	scalar   uint64
	childSH  *heap.Superheap // ParMem: the thief's superheap, adopted at join
	forkHeap *heap.Heap      // ParMem: heap at the fork point
	ownerWS  *workerState    // Manticore: victim's worker state
}

// publish makes fr stealable: it charges the frame to the session's
// outstanding count (reclamation must not run under a live thief), pushes
// it on the worker deque, and records it on the task's pending list for
// the abort-time drain.
func (t *Task) publish(fr *frame) {
	fr.ses = t.ses
	if t.ses != nil {
		t.ses.outstanding.Add(1)
	}
	t.w.Push(fr.sf)
	t.pending = append(t.pending, fr.sf)
}

// joined removes the newest pending frame at its join point. inline
// reports whether the parent consumed the frame itself (a stolen frame's
// outstanding count is consumed by its thief instead).
func (t *Task) joined(fr *frame, inline bool) {
	if t.pending[len(t.pending)-1] != fr.sf {
		panic("rts: pending-frame stack out of sync at join")
	}
	t.pending = t.pending[:len(t.pending)-1]
	if inline && t.ses != nil {
		t.ses.frameDone()
	}
}

// pushHeap pushes a fresh superheap level for a fork and records it for
// session reclamation; popHeap drops the record once the level has been
// joined away on the normal path, keeping the registry O(live heaps)
// instead of O(lifetime forks) — only a panic unwind (which skips the
// PopJoin) leaves entries behind for the session's reclaimer.
func (t *Task) pushHeap() {
	h := t.sh.Push()
	t.madeHeaps = append(t.madeHeaps, h)
}

func (t *Task) popHeap() {
	// The just-popped level is necessarily this task's newest recorded
	// heap: nested forks push and pop in LIFO order on the same task, and
	// stolen arms record their heaps on the thief's task instead.
	t.madeHeaps = t.madeHeaps[:len(t.madeHeaps)-1]
}

// ForkJoin runs f and g in parallel (Figure 5) and returns both results.
// Heap management per Appendix B: the superheap gains a level for the fork;
// if g is stolen the thief builds a child superheap that the parent adopts
// and joins at the join point. env is passed to both arms — the stolen arm
// may receive a promoted copy (Manticore mode).
func (t *Task) ForkJoin(env mem.ObjPtr, f, g Thunk) (mem.ObjPtr, mem.ObjPtr) {
	r := t.rt
	if r.cfg.Mode == Seq {
		mark := t.PushRoot(&env)
		rf := f(t, env)
		t.PushRoot(&rf)
		rg := g(t, env)
		t.PopRoots(mark)
		return rf, rg
	}
	fr := &frame{env: env, ownerWS: t.ws}
	mark := t.PushRoot(&fr.env)
	if r.cfg.Mode == STW {
		// Only the stop-the-world collector may need to relocate a stolen
		// result (everything is parked when it runs). In ParMem the result
		// sits in the thief's heap, which is never collected before the
		// join; in Manticore it is promoted to the global heap first.
		t.PushRoot(&fr.result)
	}
	if r.gcFlag.Load() {
		// Fork safe point. This must come after fr.env is rooted: parking
		// here hands the collector a window to move (or reclaim) anything
		// unregistered, and env would otherwise be held only in Go locals.
		t.stopForGCTask()
	}
	if r.cfg.Mode == ParMem {
		fr.forkHeap = t.sh.Current()
		t.pushHeap()
	}
	fr.sf = sched.NewFrame(func(thief *sched.Worker) {
		r.runStolen(fr, g, thief)
	})
	t.publish(fr)
	rf := f(t, fr.env)
	t.PushRoot(&rf)
	var rg mem.ObjPtr
	if popped := t.w.PopBottom(); popped == fr.sf {
		t.joined(fr, true)
		rg = g(t, fr.env)
	} else {
		if popped != nil {
			panic("rts: foreign frame popped at join")
		}
		t.joined(fr, false)
		t.w.WaitHelp(fr.sf)
		rg = fr.result
		if r.cfg.Mode == ParMem {
			t.sh.AdoptJoin(fr.childSH)
		}
	}
	if r.cfg.Mode == ParMem {
		t.sh.PopJoin()
		t.popHeap()
		// Internal-node collection: the merged ancestor has no live
		// descendants left, so it is a valid zone. rf is already rooted;
		// rg is not yet.
		t.maybeCollectJoin(&rg)
	}
	t.PopRoots(mark)
	return rf, rg
}

// ForkJoinScalar is ForkJoin for raw-word results.
func (t *Task) ForkJoinScalar(env mem.ObjPtr, f, g ScalarThunk) (uint64, uint64) {
	r := t.rt
	if r.cfg.Mode == Seq {
		mark := t.PushRoot(&env)
		rf := f(t, env)
		rg := g(t, env)
		t.PopRoots(mark)
		return rf, rg
	}
	fr := &frame{env: env, ownerWS: t.ws}
	mark := t.PushRoot(&fr.env)
	if r.gcFlag.Load() {
		t.stopForGCTask() // fork safe point; env is rooted above
	}
	if r.cfg.Mode == ParMem {
		fr.forkHeap = t.sh.Current()
		t.pushHeap()
	}
	fr.sf = sched.NewFrame(func(thief *sched.Worker) {
		r.runStolenScalar(fr, g, thief)
	})
	t.publish(fr)
	rf := f(t, fr.env)
	var rg uint64
	if popped := t.w.PopBottom(); popped == fr.sf {
		t.joined(fr, true)
		rg = g(t, fr.env)
	} else {
		if popped != nil {
			panic("rts: foreign frame popped at join")
		}
		t.joined(fr, false)
		t.w.WaitHelp(fr.sf)
		rg = fr.scalar
		if r.cfg.Mode == ParMem {
			t.sh.AdoptJoin(fr.childSH)
		}
	}
	if r.cfg.Mode == ParMem {
		t.sh.PopJoin()
		t.popHeap()
		t.maybeCollectJoin() // scalar results need no extra roots
	}
	t.PopRoots(mark)
	return rf, rg
}

// ForkJoinN runs n thunks in parallel and returns all n results. Unlike a
// binary fork tree, every arm after the first is published as its own
// stealable frame before any arm runs, so up to n-1 thieves can start
// immediately instead of waiting for the right spine to unfold.
//
// Heap management follows the same Appendix B discipline as ForkJoin: the
// superheap gains one level for the whole fork, every stolen arm bases a
// child superheap at the fork-point heap (making the arms siblings in the
// hierarchy), and each join adopts the thief's superheap back. After the
// last arm joins, the level pops and the merged ancestor is considered for
// internal-node collection.
func (t *Task) ForkJoinN(env mem.ObjPtr, fs ...Thunk) []mem.ObjPtr {
	n := len(fs)
	res := make([]mem.ObjPtr, n)
	if n == 0 {
		return res
	}
	r := t.rt
	if n == 1 || r.cfg.Mode == Seq {
		mark := t.PushRoot(&env)
		for i, f := range fs {
			res[i] = f(t, env)
			t.PushRoot(&res[i]) // earlier results stay rooted across later arms
		}
		t.PopRoots(mark)
		return res
	}
	frames := make([]*frame, n) // frames[0] stays nil: arm 0 runs inline
	mark := t.PushRoot(&env)
	for i := 1; i < n; i++ {
		fr := &frame{env: env, ownerWS: t.ws}
		frames[i] = fr
		t.PushRoot(&fr.env)
		if r.cfg.Mode == STW {
			// See ForkJoin: only the stop-the-world collector may need to
			// relocate a stolen result before the join observes it.
			t.PushRoot(&fr.result)
		}
	}
	if r.gcFlag.Load() {
		t.stopForGCTask() // fork safe point; every frame env is rooted above
	}
	if r.cfg.Mode == ParMem {
		forkHeap := t.sh.Current()
		for i := 1; i < n; i++ {
			frames[i].forkHeap = forkHeap
		}
		t.pushHeap()
	}
	for i := 1; i < n; i++ {
		fr, g := frames[i], fs[i]
		fr.sf = sched.NewFrame(func(thief *sched.Worker) {
			r.runStolen(fr, g, thief)
		})
		t.publish(fr)
	}
	res[0] = fs[0](t, env)
	t.PushRoot(&res[0])
	// Join in LIFO order: the deque pops the most recently published frame
	// first, so un-stolen arms run inline in publish-reverse order while
	// thieves drain the earlier arms from the top.
	for i := n - 1; i >= 1; i-- {
		fr := frames[i]
		if popped := t.w.PopBottom(); popped == fr.sf {
			t.joined(fr, true)
			res[i] = fs[i](t, fr.env)
		} else {
			if popped != nil {
				panic("rts: foreign frame popped at join")
			}
			t.joined(fr, false)
			t.w.WaitHelp(fr.sf)
			res[i] = fr.result
			if r.cfg.Mode == ParMem {
				t.sh.AdoptJoin(fr.childSH)
			}
		}
		t.PushRoot(&res[i]) // rooted across the remaining inline arms
	}
	if r.cfg.Mode == ParMem {
		t.sh.PopJoin()
		t.popHeap()
		t.maybeCollectJoin() // all results are rooted above
	}
	t.PopRoots(mark)
	return res
}

// runStolenFrame is the shell shared by both stolen-frame runners: it
// builds the stolen task in the victim's session, wires the thief's
// superheap into the frame for the join, and applies the session harness
// — abort fast path, panic containment (Session.guard), and the strict
// teardown order: guard's recover/drain, then task finish, then the
// frame's outstanding count (which is what finally lets reclamation
// proceed).
func (r *Runtime) runStolenFrame(fr *frame, thief *sched.Worker, body func(st *Task)) {
	ses := fr.ses
	if ses != nil {
		defer ses.frameDone() // last: runs after st.finish
	}
	st := r.newStolenTask(thief, fr.forkHeap, ses)
	if r.cfg.Mode == ParMem {
		fr.childSH = st.sh
	}
	defer st.finish()
	if ses != nil {
		if ses.aborted.Load() {
			return // session already failed; leave the arm unrun
		}
		ses.guard(st, func() { body(st) })
		return
	}
	body(st)
}

// runStolen executes a stolen pointer-result frame on the thief. The
// stolen task joins the victim's session: it counts against the session's
// outstanding frames (consumed here, not at the victim's join), checks the
// session's abort flag, and converts its own panics into the session's
// failure instead of crashing the worker.
func (r *Runtime) runStolen(fr *frame, g Thunk, thief *sched.Worker) {
	r.runStolenFrame(fr, thief, func(st *Task) {
		env := r.stolenEnv(fr, st)
		mark := st.PushRoot(&env)
		res := g(st, env)
		st.PopRoots(mark)
		if r.cfg.Mode == Manticore && !res.IsNil() && heap.Of(res).Depth() > 0 {
			// Result communication to another worker promotes the result's
			// object graph to the shared global heap (DLG invariant).
			res = core.PromoteTo(st.chunkCache(), &st.Ops, r.rootHeap, res)
		}
		fr.result = res
	})
}

// runStolenScalar executes a stolen scalar-result frame on the thief.
func (r *Runtime) runStolenScalar(fr *frame, g ScalarThunk, thief *sched.Worker) {
	r.runStolenFrame(fr, thief, func(st *Task) {
		env := r.stolenEnv(fr, st)
		mark := st.PushRoot(&env)
		fr.scalar = g(st, env)
		st.PopRoots(mark)
	})
}

// stolenEnv resolves the environment seen by a stolen frame. In Manticore
// mode the environment is promoted to the global heap under the victim's
// local-heap lock (steal-time communication); the lock also orders the read
// of fr.env against the victim's local collections, which update the
// frame's rooted env slot in place.
func (r *Runtime) stolenEnv(fr *frame, st *Task) mem.ObjPtr {
	if r.cfg.Mode != Manticore {
		return fr.env
	}
	ws := fr.ownerWS
	ws.localMu.Lock()
	env := fr.env
	if !env.IsNil() && heap.Of(env).Depth() > 0 {
		// The thief works on the promoted copy; the victim's inline arm
		// keeps using the original (fr.env is not written back — the
		// parent reads it concurrently for the left arm).
		env = core.PromoteTo(st.chunkCache(), &st.Ops, r.rootHeap, env)
	}
	ws.localMu.Unlock()
	return env
}
