package rts

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Runtime is one configured runtime system. Create with New, execute with
// Run, inspect with Stats, and release with Close. Exactly one Runtime may
// be active at a time (memory accounting is process-global); New panics if
// the previous Runtime has not been Closed.
type Runtime struct {
	cfg    Config
	pool   *sched.Pool
	closed atomic.Bool

	// rootHeap is the hierarchy root (ParMem, Seq) or the shared global
	// heap (Manticore). Unused in STW mode.
	rootHeap *heap.Heap
	states   []*workerState

	// zones schedules concurrent zone collections in the hierarchical
	// modes (ParMem, Seq, Manticore). Nil in STW mode, whose collections
	// are a whole-world rendezvous instead (gcdrive.go).
	zones *gc.ZoneScheduler

	// totals are the merged per-task counters, striped by worker so a task
	// finishing on one worker never contends with a task finishing on
	// another. Before striping every task completion — the hot path of a
	// fine-grained fork tree — serialized on one runtime-wide mutex, and
	// the same mutex guarded a global task registry whose only reader was
	// the STW rendezvous (which now walks the per-worker task sets it
	// already had).
	totals [totalsShardCount]totalsShard

	gcNanos        atomic.Int64
	baselineBytes  int64
	baselineAlloc  mem.AllocStats
	baselineRem    heap.RemSnapshot
	prevPoolLimit  int64 // pool limit before New overrode it; Close restores
	prevPoolShards int   // pool shard count before New overrode it
	traceOwner     bool  // this runtime started the flight recorder; Close stops it

	// Session accounting (session.go): every unit of work — including a
	// plain Run — executes as a root-level session.
	sessionIDs   atomic.Uint64
	liveSessions atomic.Int64
	peakSessions atomic.Int64
	sessTotals   sessionCounters

	// stop-the-world rendezvous state (STW mode)
	gcFlag       atomic.Bool // mirrors gcInProgress for cheap checks
	gcMu         sync.Mutex
	gcCond       *sync.Cond
	gcInProgress bool
	gcStopped    int
	stwLastLive  atomic.Int64
}

// totalsShardCount stripes the merged task counters; a power of two so the
// worker-ID mask is cheap. Sixteen covers the worker counts the benchmarks
// sweep; beyond that finishes just share stripes.
const totalsShardCount = 16

// totalsShard is one lock's worth of merged task counters, padded so
// neighbouring shards' mutexes do not share a cache line.
type totalsShard struct {
	mu  sync.Mutex
	ops core.Counters
	gc  gc.Stats
	_   [64]byte
}

// totalsShardFor picks the stripe tasks of worker w merge into (shard 0
// for Seq-mode tasks, which have no worker).
func (r *Runtime) totalsShardFor(w *sched.Worker) *totalsShard {
	if w == nil {
		return &r.totals[0]
	}
	return &r.totals[w.ID&(totalsShardCount-1)]
}

// workerState is the per-worker runtime state used by the STW and
// Manticore modes.
type workerState struct {
	heap *heap.Heap
	// localMu orders local-heap collection against cross-worker promotion
	// out of this heap (Manticore's steal-time environment copy).
	localMu sync.Mutex
	// tasks hosted on this worker; touched only by the worker's goroutine.
	tasks map[*Task]struct{}
}

// activeRuntime enforces the one-active-Runtime rule. The peak-memory and
// live-byte accounting in package mem is process-global: two overlapping
// runtimes would silently attribute each other's allocations to their own
// baselines and high-water marks.
var activeRuntime atomic.Bool

// New builds and starts a runtime for the given configuration. It panics
// if another Runtime is still open: memory accounting is process-global,
// so overlapping runtimes would corrupt each other's statistics.
func New(cfg Config) *Runtime {
	if !activeRuntime.CompareAndSwap(false, true) {
		panic("rts: another Runtime is active; Close it before calling New (memory accounting is process-global)")
	}
	if cfg.Procs < 1 {
		cfg.Procs = 1
	}
	if cfg.Policy == (gc.Policy{}) {
		cfg.Policy = gc.DefaultPolicy()
	}
	if cfg.STWRatio == 0 {
		cfg.STWRatio = 2.0
	}
	if cfg.STWFloorBytes == 0 {
		cfg.STWFloorBytes = 8 << 20
	}
	r := &Runtime{cfg: cfg}
	r.gcCond = sync.NewCond(&r.gcMu)
	r.baselineBytes = mem.LiveBytes()
	mem.ResetHighWater()

	// Flight recorder: one event ring per worker plus the shared off-worker
	// ring. If a driving command already owns a recorder, keep emitting into
	// that one (Start refuses) and leave its lifetime to the owner.
	if cfg.TraceBufEvents > 0 {
		r.traceOwner = trace.Start(cfg.Procs, cfg.TraceBufEvents)
	}

	// Recycling allocator: configure the process-global pool (safe — only
	// one Runtime is ever active) and remember the counter baseline so
	// Stats reports this runtime's allocator traffic, not the process's.
	// The limit and shard count apply for this runtime's lifetime: Close
	// restores the previous ones, so an ablation runtime cannot leak
	// pooling-off state.
	r.prevPoolLimit = mem.ChunkPoolLimit()
	if cfg.DisableChunkPool {
		mem.SetChunkPoolLimit(0)
	} else if cfg.PoolLimitBytes > 0 {
		mem.SetChunkPoolLimit(cfg.PoolLimitBytes)
	} else {
		mem.SetChunkPoolLimit(mem.DefaultPoolLimitBytes)
	}
	poolShards := cfg.PoolShards
	if poolShards <= 0 {
		poolShards = cfg.Procs // one free-list shard per worker
	}
	r.prevPoolShards = mem.SetChunkPoolShards(poolShards)
	r.baselineAlloc = mem.AllocSnapshot()
	r.baselineRem = heap.RemCounters()

	if cfg.Mode != STW {
		maxZones := cfg.MaxConcurrentZones
		if maxZones <= 0 {
			maxZones = cfg.Procs
			if cfg.Mode == Seq {
				maxZones = 1
			}
		}
		stripes := cfg.ZoneStripes
		if stripes <= 0 {
			stripes = gc.DefaultZoneStripes
		}
		r.zones = gc.NewZoneSchedulerWithStripes(maxZones, stripes)
	}

	switch cfg.Mode {
	case Seq:
		r.rootHeap = heap.NewRoot()
		return r // no worker pool
	case ParMem:
		r.rootHeap = heap.NewRoot()
	case Manticore:
		r.rootHeap = heap.NewRoot() // the shared global heap, depth 0
	case STW:
		// worker heaps only
	}

	var poolOpts []sched.PoolOption
	if !cfg.DisableChunkPool {
		poolOpts = append(poolOpts, sched.WithChunkCaches(cfg.CacheChunksPerClass))
	}
	r.pool = sched.NewPool(cfg.Procs, poolOpts...)
	r.states = make([]*workerState, cfg.Procs)
	for i, w := range r.pool.Workers() {
		ws := &workerState{tasks: make(map[*Task]struct{})}
		switch cfg.Mode {
		case STW:
			ws.heap = heap.NewRoot()
		case Manticore:
			ws.heap = heap.NewChild(r.rootHeap)
		}
		r.states[i] = ws
		w.Local = ws
	}
	if cfg.Mode == STW {
		r.stwLastLive.Store(mem.LiveBytes() - r.baselineBytes)
		r.pool.SetSafePoint(func(w *sched.Worker) {
			if r.gcFlag.Load() {
				r.stopForGC()
			}
		})
	}
	return r
}

// Config returns the runtime's configuration.
func (r *Runtime) Config() Config { return r.cfg }

// Procs returns the effective processor count.
func (r *Runtime) Procs() int {
	if r.cfg.Mode == Seq {
		return 1
	}
	return r.cfg.Procs
}

// Run executes fn as a single pinned session and blocks for its result:
// Submit + Wait, with the subtree merged into the super-root so pointer
// results stay valid until Close. A panic inside fn is re-raised on the
// calling goroutine instead of crashing a worker.
func (r *Runtime) Run(fn func(*Task) uint64) uint64 {
	res, err := r.Submit(SessionOpts{Pin: true}, fn).Wait()
	if err != nil {
		if pe, ok := err.(*PanicError); ok {
			panic(pe.Value)
		}
		panic(err)
	}
	return res
}

// newSessionTask creates the root task of a session, hosted on worker w
// (nil in Seq mode). In the hierarchical modes its superheap is based at
// the session's subtree heap, one level under the process super-root.
func (r *Runtime) newSessionTask(w *sched.Worker, s *Session) *Task {
	t := &Task{rt: r, w: w, ses: s}
	t.pbuf.SetCapacity(r.cfg.PromoteBufferObjects)
	if w != nil {
		t.pbuf.SetTrack(w.ID)
	}
	switch r.cfg.Mode {
	case ParMem, Seq:
		t.sh = heap.NewSuperheap(s.heap)
	case STW, Manticore:
		t.ws = w.Local.(*workerState)
	}
	if t.ws != nil {
		t.ws.tasks[t] = struct{}{}
	}
	return t
}

// newStolenTask creates the context for a stolen frame, in the same
// session as the victim.
func (r *Runtime) newStolenTask(w *sched.Worker, forkHeap *heap.Heap, s *Session) *Task {
	t := &Task{rt: r, w: w, ses: s}
	t.pbuf.SetCapacity(r.cfg.PromoteBufferObjects)
	if w != nil {
		t.pbuf.SetTrack(w.ID)
	}
	switch r.cfg.Mode {
	case ParMem:
		base := heap.NewChild(forkHeap)
		t.sh = heap.NewSuperheap(base)
		t.madeHeaps = append(t.madeHeaps, base)
	case STW, Manticore:
		t.ws = w.Local.(*workerState)
	}
	if t.ws != nil {
		t.ws.tasks[t] = struct{}{}
	}
	return t
}

// Totals is a snapshot of a runtime's aggregate statistics.
type Totals struct {
	Ops     core.Counters
	GC      gc.Stats
	GCNanos int64
	Steals  int64
	PeakMem int64 // peak chunk occupancy in bytes since New
	Procs   int

	// Zones describes the concurrent zone collections of the hierarchical
	// modes: counts by kind, peak concurrency, and overlap time. Zero in
	// STW mode.
	Zones gc.ZoneStats

	// Sessions describes the runtime's root-level session activity: counts,
	// peak concurrency, and bytes reclaimed wholesale versus merged into
	// the super-root by pinned sessions.
	Sessions SessionTotals

	// Alloc describes the recycling allocator's traffic during this
	// runtime's lifetime: chunk acquisitions by tier (worker cache, global
	// pool, fresh), releases by destination, and the idMu-serialized
	// directory ID operations the pool avoided. The pool gauges
	// (PooledChunks/PooledBytes) are point-in-time.
	Alloc mem.AllocStats

	// Deferred describes the deferred-promotion remembered-set activity
	// (zero unless Config.DeferredPromotion). Every pin is resolved exactly
	// once, so at quiescence Pins equals the sum of the resolution columns
	// plus Live — the balance the race tests assert.
	Deferred DeferredTotals
}

// DeferredTotals is the Stats snapshot of deferred-promotion activity.
type DeferredTotals struct {
	Pins          int64 // down-pointer writes deferred (remembered-set entries registered)
	SecondTouch   int64 // pinned pointees promoted eagerly by a second, distinct-slot touch (entry not consumed)
	Refreshed     int64 // same-slot re-writes of a pinned pointee (no new entry, no copy)
	DrainPromoted int64 // entries promoted or slot-repaired by a drain (zone collection or release sweep)
	DrainDied     int64 // entries dead at a drain: slot overwritten, or slot dying with the subtree
	JoinElided    int64 // entries elided at joins: the depth change dissolved the entanglement
	JoinMigrated  int64 // entries carried to the surviving heap at joins (still pinned)
	ReleaseDrop   int64 // entries dropped by wholesale release: pinned objects died uncopied
	GCResolved    int64 // entries consumed by gc's extra-roots pass (direct collector callers)
	Live          int64 // entries still registered at snapshot time
}

// Balanced reports whether every pin has been resolved exactly once:
// Pins == DrainPromoted + DrainDied + JoinElided + ReleaseDrop +
// GCResolved + Live. (SecondTouch, Refreshed, and JoinMigrated do not
// consume entries.) Meaningful at quiescent points — after sessions drain.
func (d DeferredTotals) Balanced() bool {
	return d.Pins == d.DrainPromoted+d.DrainDied+d.JoinElided+d.ReleaseDrop+d.GCResolved+d.Live
}

// Stats returns aggregate statistics. Call after Run completes.
func (r *Runtime) Stats() Totals {
	t := Totals{
		GCNanos: r.gcNanos.Load(),
		PeakMem: mem.HighWaterBytes() - r.baselineBytes,
		Procs:   r.Procs(),
	}
	for i := range r.totals {
		sh := &r.totals[i]
		sh.mu.Lock()
		t.Ops.Add(&sh.ops)
		t.GC.Add(sh.gc)
		sh.mu.Unlock()
	}
	if r.pool != nil {
		t.Steals = r.pool.TotalSteals()
	}
	if r.zones != nil {
		t.Zones = r.zones.Snapshot()
	}
	t.Alloc = mem.AllocSnapshot().Sub(r.baselineAlloc)
	rem := heap.RemCounters()
	t.Deferred = DeferredTotals{
		Pins:          t.Ops.WritePtrPinned,
		SecondTouch:   t.Ops.DeferredSecondTouch,
		Refreshed:     t.Ops.DeferredRefresh,
		DrainPromoted: t.Ops.DeferredDrainPromoted,
		DrainDied:     t.Ops.DeferredDrainDied,
		JoinElided:    rem.JoinElided - r.baselineRem.JoinElided,
		JoinMigrated:  rem.JoinMigrated - r.baselineRem.JoinMigrated,
		ReleaseDrop:   rem.ReleaseDropped - r.baselineRem.ReleaseDropped,
		GCResolved:    rem.GCResolved - r.baselineRem.GCResolved,
		Live:          rem.Live,
	}
	t.Sessions = SessionTotals{
		Submitted:      r.sessTotals.Submitted.Load(),
		Completed:      r.sessTotals.Completed.Load(),
		Failed:         r.sessTotals.Failed.Load(),
		PeakLive:       r.peakSessions.Load(),
		WholesaleBytes: r.sessTotals.WholesaleBytes.Load(),
		MergedBytes:    r.sessTotals.MergedBytes.Load(),
	}
	return t
}

// CheckDisentangled verifies the disentanglement invariant over the root
// heap. After a completed Run every task heap has been joined into the
// root, so this checks the entire surviving object graph. Debugging aid.
func (r *Runtime) CheckDisentangled() error {
	if r.rootHeap == nil {
		return nil
	}
	return core.CheckHeap(r.rootHeap)
}

// Close stops the workers, releases every heap owned by the runtime, and
// allows a new Runtime to be created. Closing twice is a no-op; only the
// first caller releases (concurrent Closes must not double-free the
// chunk lists or re-arm the exclusivity flag under a newer Runtime).
//
// Close first waits for every submitted session to complete: releasing a
// subtree under a live mutator would corrupt it, and a session still
// queued in the pool's inbox must get to run (and its Wait to return)
// before the workers stop. Callers wanting a prompt Close drain their
// sessions first; Close must not be called from inside a session.
func (r *Runtime) Close() {
	if !r.closed.CompareAndSwap(false, true) {
		return
	}
	for r.liveSessions.Load() > 0 {
		time.Sleep(50 * time.Microsecond)
	}
	if r.pool != nil {
		r.pool.Close()
		// The workers have exited (Close waited on them), so their chunk
		// caches are safe to flush from here: a closed runtime must not sit
		// on warm chunks the next runtime's workers cannot reach.
		for _, w := range r.pool.Workers() {
			if w.Chunks != nil {
				w.Chunks.Flush()
			}
		}
	}
	for _, ws := range r.states {
		if ws.heap != nil && ws.heap.IsAlive() {
			heap.FreeChunkList(ws.heap.TakeChunks())
		}
	}
	if r.rootHeap != nil {
		// Subtrees of sessions that were never waited out (callers should
		// drain first; this is the backstop against chunk leaks).
		for _, c := range r.rootHeap.AttachedChildren() {
			r.rootHeap.DetachChild(c)
			heap.ReleaseWholesale(nil, r.rootHeap, c)
		}
		if r.rootHeap.IsAlive() {
			heap.FreeChunkList(r.rootHeap.TakeChunks())
		}
	}
	mem.SetChunkPoolLimit(r.prevPoolLimit)
	mem.SetChunkPoolShards(r.prevPoolShards)
	if r.traceOwner {
		trace.Stop()
	}
	activeRuntime.Store(false)
}
