package rts

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/sched"
)

// Runtime is one configured runtime system. Create with New, execute with
// Run, inspect with Stats, and release with Close. Exactly one Runtime may
// be active at a time (memory accounting is process-global); New panics if
// the previous Runtime has not been Closed.
type Runtime struct {
	cfg    Config
	pool   *sched.Pool
	closed atomic.Bool

	// rootHeap is the hierarchy root (ParMem, Seq) or the shared global
	// heap (Manticore). Unused in STW mode.
	rootHeap *heap.Heap
	states   []*workerState

	// zones schedules concurrent zone collections in the hierarchical
	// modes (ParMem, Seq, Manticore). Nil in STW mode, whose collections
	// are a whole-world rendezvous instead (gcdrive.go).
	zones *gc.ZoneScheduler

	mu       sync.Mutex
	tasks    map[*Task]struct{}
	totals   core.Counters
	gcTotals gc.Stats

	gcNanos       atomic.Int64
	baselineBytes int64

	// stop-the-world rendezvous state (STW mode)
	gcFlag       atomic.Bool // mirrors gcInProgress for cheap checks
	gcMu         sync.Mutex
	gcCond       *sync.Cond
	gcInProgress bool
	gcStopped    int
	stwLastLive  atomic.Int64
}

// workerState is the per-worker runtime state used by the STW and
// Manticore modes.
type workerState struct {
	heap *heap.Heap
	// localMu orders local-heap collection against cross-worker promotion
	// out of this heap (Manticore's steal-time environment copy).
	localMu sync.Mutex
	// tasks hosted on this worker; touched only by the worker's goroutine.
	tasks map[*Task]struct{}
}

// activeRuntime enforces the one-active-Runtime rule. The peak-memory and
// live-byte accounting in package mem is process-global: two overlapping
// runtimes would silently attribute each other's allocations to their own
// baselines and high-water marks.
var activeRuntime atomic.Bool

// New builds and starts a runtime for the given configuration. It panics
// if another Runtime is still open: memory accounting is process-global,
// so overlapping runtimes would corrupt each other's statistics.
func New(cfg Config) *Runtime {
	if !activeRuntime.CompareAndSwap(false, true) {
		panic("rts: another Runtime is active; Close it before calling New (memory accounting is process-global)")
	}
	if cfg.Procs < 1 {
		cfg.Procs = 1
	}
	if cfg.Policy == (gc.Policy{}) {
		cfg.Policy = gc.DefaultPolicy()
	}
	if cfg.STWRatio == 0 {
		cfg.STWRatio = 2.0
	}
	if cfg.STWFloorBytes == 0 {
		cfg.STWFloorBytes = 8 << 20
	}
	r := &Runtime{cfg: cfg, tasks: make(map[*Task]struct{})}
	r.gcCond = sync.NewCond(&r.gcMu)
	r.baselineBytes = mem.LiveBytes()
	mem.ResetHighWater()

	if cfg.Mode != STW {
		maxZones := cfg.MaxConcurrentZones
		if maxZones <= 0 {
			maxZones = cfg.Procs
			if cfg.Mode == Seq {
				maxZones = 1
			}
		}
		r.zones = gc.NewZoneScheduler(maxZones)
	}

	switch cfg.Mode {
	case Seq:
		r.rootHeap = heap.NewRoot()
		return r // no worker pool
	case ParMem:
		r.rootHeap = heap.NewRoot()
	case Manticore:
		r.rootHeap = heap.NewRoot() // the shared global heap, depth 0
	case STW:
		// worker heaps only
	}

	r.pool = sched.NewPool(cfg.Procs)
	r.states = make([]*workerState, cfg.Procs)
	for i, w := range r.pool.Workers() {
		ws := &workerState{tasks: make(map[*Task]struct{})}
		switch cfg.Mode {
		case STW:
			ws.heap = heap.NewRoot()
		case Manticore:
			ws.heap = heap.NewChild(r.rootHeap)
		}
		r.states[i] = ws
		w.Local = ws
	}
	if cfg.Mode == STW {
		r.stwLastLive.Store(mem.LiveBytes() - r.baselineBytes)
		r.pool.SetSafePoint(func(w *sched.Worker) {
			if r.gcFlag.Load() {
				r.stopForGC()
			}
		})
	}
	return r
}

// Config returns the runtime's configuration.
func (r *Runtime) Config() Config { return r.cfg }

// Procs returns the effective processor count.
func (r *Runtime) Procs() int {
	if r.cfg.Mode == Seq {
		return 1
	}
	return r.cfg.Procs
}

// Run executes fn as the root task and returns its result. The root task
// runs on a worker (or on the calling goroutine in Seq mode).
func (r *Runtime) Run(fn func(*Task) uint64) uint64 {
	if r.cfg.Mode == Seq {
		t := r.newTask(nil)
		res := fn(t)
		t.finish()
		return res
	}
	var res uint64
	r.pool.RunRoot(func(w *sched.Worker) {
		t := r.newTask(w)
		res = fn(t)
		t.finish()
	})
	return res
}

// newTask creates a task hosted on worker w (nil in Seq mode) with a fresh
// execution context for the mode.
func (r *Runtime) newTask(w *sched.Worker) *Task {
	t := &Task{rt: r, w: w}
	switch r.cfg.Mode {
	case ParMem, Seq:
		t.sh = heap.NewSuperheap(r.rootHeap)
	case STW, Manticore:
		t.ws = w.Local.(*workerState)
	}
	r.mu.Lock()
	r.tasks[t] = struct{}{}
	r.mu.Unlock()
	if t.ws != nil {
		t.ws.tasks[t] = struct{}{}
	}
	return t
}

// newStolenTask creates the context for a stolen frame.
func (r *Runtime) newStolenTask(w *sched.Worker, forkHeap *heap.Heap) *Task {
	t := &Task{rt: r, w: w}
	switch r.cfg.Mode {
	case ParMem:
		t.sh = heap.NewSuperheap(heap.NewChild(forkHeap))
	case STW, Manticore:
		t.ws = w.Local.(*workerState)
	}
	r.mu.Lock()
	r.tasks[t] = struct{}{}
	r.mu.Unlock()
	if t.ws != nil {
		t.ws.tasks[t] = struct{}{}
	}
	return t
}

// Totals is a snapshot of a runtime's aggregate statistics.
type Totals struct {
	Ops     core.Counters
	GC      gc.Stats
	GCNanos int64
	Steals  int64
	PeakMem int64 // peak chunk occupancy in bytes since New
	Procs   int

	// Zones describes the concurrent zone collections of the hierarchical
	// modes: counts by kind, peak concurrency, and overlap time. Zero in
	// STW mode.
	Zones gc.ZoneStats
}

// Stats returns aggregate statistics. Call after Run completes.
func (r *Runtime) Stats() Totals {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := Totals{
		Ops:     r.totals,
		GC:      r.gcTotals,
		GCNanos: r.gcNanos.Load(),
		PeakMem: mem.HighWaterBytes() - r.baselineBytes,
		Procs:   r.Procs(),
	}
	if r.pool != nil {
		t.Steals = r.pool.TotalSteals()
	}
	if r.zones != nil {
		t.Zones = r.zones.Snapshot()
	}
	return t
}

// CheckDisentangled verifies the disentanglement invariant over the root
// heap. After a completed Run every task heap has been joined into the
// root, so this checks the entire surviving object graph. Debugging aid.
func (r *Runtime) CheckDisentangled() error {
	if r.rootHeap == nil {
		return nil
	}
	return core.CheckHeap(r.rootHeap)
}

// Close stops the workers, releases every heap owned by the runtime, and
// allows a new Runtime to be created. Closing twice is a no-op; only the
// first caller releases (concurrent Closes must not double-free the
// chunk lists or re-arm the exclusivity flag under a newer Runtime).
func (r *Runtime) Close() {
	if !r.closed.CompareAndSwap(false, true) {
		return
	}
	if r.pool != nil {
		r.pool.Close()
	}
	for _, ws := range r.states {
		if ws.heap != nil && ws.heap.IsAlive() {
			heap.FreeChunkList(ws.heap.TakeChunks())
		}
	}
	if r.rootHeap != nil && r.rootHeap.IsAlive() {
		heap.FreeChunkList(r.rootHeap.TakeChunks())
	}
	activeRuntime.Store(false)
}
