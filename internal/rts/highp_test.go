package rts

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/gc"
	"repro/internal/mem"
)

// High-P coverage: the zone-collection and session stress paths run at
// P ∈ {2, 8, NumCPU} with GOMAXPROCS matched to P, so the race detector
// sees both the tightly serialized interleavings of a small P and the
// wide ones of an oversubscribed scheduler. These are the tests that
// exercise the striped admission, striped child registry, sharded pool,
// and striped totals together under real mutator traffic.

// highPs returns the deduplicated sweep {2, 8, NumCPU}, smallest first.
func highPs() []int {
	ps := []int{2, 8, runtime.NumCPU()}
	seen := map[int]bool{}
	var out []int
	for _, p := range ps {
		if p >= 2 && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// setProcs pins GOMAXPROCS for the duration of the (sub)test.
func setProcs(t *testing.T, p int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(p)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// TestZoneStressAcrossProcs runs the concurrent-collection stress at every
// sweep point: live lists survive, promotions interleave with in-flight
// collections, and disentanglement holds, at 2 workers and at worker
// counts well past the stripe-collision regime. Unlike the retrying
// headline test (TestConcurrentZoneCollections) this asserts correctness,
// not observed overlap, so one run per P suffices.
func TestZoneStressAcrossProcs(t *testing.T) {
	for _, p := range highPs() {
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			setProcs(t, p)
			cfg := DefaultConfig(ParMem, p)
			cfg.Policy = gc.Policy{MinWords: 4096, Ratio: 1.2}
			ok, st := runZoneStress(t, cfg, 4, 1200)
			if ok != 1 {
				t.Fatalf("data corruption at P=%d", p)
			}
			if st.Zones.Zones == 0 || st.Ops.Promotions == 0 {
				t.Fatalf("stress did not stress at P=%d: %+v / %d promotions",
					p, st.Zones, st.Ops.Promotions)
			}
		})
	}
}

// TestZoneStressSerializedCapAcrossProcs: the cap=1 ablation property —
// never two overlapping collections — must hold at high P too, where the
// striped admission has the most chances to get it wrong.
func TestZoneStressSerializedCapAcrossProcs(t *testing.T) {
	for _, p := range highPs() {
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			setProcs(t, p)
			cfg := DefaultConfig(ParMem, p)
			cfg.Policy = gc.Policy{MinWords: 4096, Ratio: 1.2}
			cfg.MaxConcurrentZones = 1
			ok, st := runZoneStress(t, cfg, 3, 800)
			if ok != 1 {
				t.Fatalf("data corruption at P=%d", p)
			}
			if st.Zones.MaxConcurrent > 1 {
				t.Fatalf("cap of 1 violated at P=%d: MaxConcurrent = %d", p, st.Zones.MaxConcurrent)
			}
		})
	}
}

// sessionChurn is one session's work for the attach/detach stress: build
// and verify a list while churning enough garbage that the session's
// subtree keeps collecting. Returns 1 on success.
func sessionChurn(t *Task, seed uint64, listLen int) uint64 {
	var list mem.ObjPtr
	mark := t.PushRoot(&list)
	defer t.PopRoots(mark)
	for round := 0; round < 3; round++ {
		list = mem.NilPtr
		for i := 0; i < listLen; i++ {
			cons := t.Alloc(1, 1, mem.TagCons)
			t.WriteInitWord(cons, 0, seed+uint64(i))
			t.WriteInitPtr(cons, 0, list)
			list = cons
		}
		for i := 0; i < 1500; i++ {
			t.Alloc(0, 6, mem.TagTuple) // garbage
		}
		p := list
		for i := listLen - 1; i >= 0; i-- {
			if p.IsNil() || t.ReadImmWord(p, 0) != seed+uint64(i) {
				return 0
			}
			p = t.ReadImmPtr(p, 0)
		}
	}
	return 1
}

// TestAttachDetachDuringZoneCollections races the super-root child
// registry against in-flight zone collections: waves of short unpinned
// sessions attach at submit and detach at wholesale reclaim, WHILE their
// siblings' subtrees are mid-collection (the aggressive policy keeps
// every live session collecting). The striped registry must neither lose
// a child (leak: AttachedCount != 0 after the waves) nor corrupt a
// session another stripe is reclaiming.
func TestAttachDetachDuringZoneCollections(t *testing.T) {
	for _, p := range highPs() {
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			setProcs(t, p)
			cfg := DefaultConfig(ParMem, p)
			cfg.Policy = gc.Policy{MinWords: 4096, Ratio: 1.2}
			r := New(cfg)
			defer r.Close()
			base := mem.ChunksInUse()

			const waves, perWave = 4, 12
			for w := 0; w < waves; w++ {
				var wg sync.WaitGroup
				results := make([]uint64, perWave)
				for i := 0; i < perWave; i++ {
					seed := uint64(w*perWave + i + 1)
					ses := r.Submit(SessionOpts{}, func(task *Task) uint64 {
						return sessionChurn(task, seed<<20, 400)
					})
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						res, err := ses.Wait()
						if err != nil {
							t.Errorf("session failed: %v", err)
							return
						}
						results[i] = res
					}(i)
				}
				wg.Wait()
				for i, res := range results {
					if res != 1 {
						t.Fatalf("wave %d session %d corrupted its data", w, i)
					}
				}
			}

			if got := r.rootHeap.AttachedCount(); got != 0 {
				t.Fatalf("child registry leaked %d sessions", got)
			}
			// Unpinned sessions reclaim wholesale; occupancy returns to the
			// pre-traffic baseline once every wave has drained.
			deadline := time.Now().Add(10 * time.Second)
			for mem.ChunksInUse() != base && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if got := mem.ChunksInUse(); got != base {
				t.Fatalf("chunks in use = %d after drain, want baseline %d", got, base)
			}
			st := r.Stats()
			if st.Sessions.Completed != waves*perWave {
				t.Fatalf("completed %d sessions, want %d", st.Sessions.Completed, waves*perWave)
			}
			if st.Zones.SessionZones == 0 {
				t.Fatal("no session-tagged zone collections: the stress never stressed the registry")
			}
			if err := r.CheckDisentangled(); err != nil {
				t.Fatalf("disentanglement violated: %v", err)
			}
		})
	}
}
