package rts

import (
	"time"

	"repro/internal/gc"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/trace"
)

// The stop-the-world driver, used ONLY by the Spoonhower-style baseline
// (STW mode): any worker whose allocation trips the global trigger becomes
// the collector; all other workers park at safe points (allocations,
// forks, and the scheduler's idle/wait loops); the collector then runs a
// sequential semispace collection over every worker heap, rooted by every
// live task. Parked time is charged to GC, which is how the paper reports
// GC_72 for mlton-spoonhower ("processor time spent blocked during a
// stop-the-world collection").
//
// The hierarchical modes never use this rendezvous: their collections go
// through the concurrent zone driver (zonedrive.go), which parks nobody —
// the scheduler's safe-point hook is not even installed for them, so leaf
// and join collections proceed while every other worker keeps running.

// stwShouldCollect checks the global occupancy trigger.
func (r *Runtime) stwShouldCollect() bool {
	live := mem.LiveBytes() - r.baselineBytes
	threshold := int64(r.cfg.STWRatio * float64(r.stwLastLive.Load()))
	if threshold < r.cfg.STWFloorBytes {
		threshold = r.cfg.STWFloorBytes
	}
	return live >= threshold
}

// parkForGC blocks until no collection is in progress. Must be called with
// gcMu held; temporarily joins the stopped set.
func (r *Runtime) parkForGC() {
	for r.gcInProgress {
		r.gcStopped++
		r.gcCond.Broadcast() // let the collector recount
		r.gcCond.Wait()
		r.gcStopped--
	}
}

// stopForGC is the safe-point hook for workers with no task context
// (idle or waiting in the scheduler). Blocked time is charged to GC.
func (r *Runtime) stopForGC() {
	start := time.Now()
	r.gcMu.Lock()
	r.parkForGC()
	r.gcMu.Unlock()
	if d := time.Since(start); d > time.Microsecond {
		r.gcNanos.Add(d.Nanoseconds())
	}
}

// stopForGCTask is the safe-point check on allocation and fork paths.
func (t *Task) stopForGCTask() {
	start := time.Now()
	r := t.rt
	r.gcMu.Lock()
	r.parkForGC()
	r.gcMu.Unlock()
	if d := time.Since(start); d > time.Microsecond {
		t.gcNanos += d.Nanoseconds()
	}
}

// triggerSTW makes the calling task the collector: raise the flag, wait for
// the other P-1 workers to park, collect everything sequentially, release.
func (r *Runtime) triggerSTW(t *Task) {
	r.gcMu.Lock()
	if r.gcInProgress {
		// Someone else is collecting; park like everyone else, then let the
		// caller re-test its trigger.
		r.parkForGC()
		r.gcMu.Unlock()
		return
	}
	r.gcInProgress = true
	r.gcFlag.Store(true)
	// The span opens before the rendezvous wait so the trace shows the full
	// pause — flag raise to release — not just the copy phase.
	track := -1
	if t.w != nil {
		track = t.w.ID
	}
	var span uint64
	if trace.Enabled() {
		span = trace.Begin(track, trace.EvSTW, 0, 0)
	}
	for r.gcStopped < r.pool.NumWorkers()-1 {
		r.gcCond.Wait()
	}

	start := time.Now()
	zone := make([]*heap.Heap, 0, len(r.states))
	for _, ws := range r.states {
		zone = append(zone, ws.heap)
	}
	// Gather roots from the per-worker task sets. Safe without any lock on
	// the sets themselves: every other worker is parked in parkForGC (the
	// rendezvous above counted them), and a parked worker's last writes to
	// its ws.tasks happen-before this read via gcMu, which the collector
	// holds and every parker acquired on its way in. The caller's own task
	// set is touched only by this goroutine.
	var roots []*mem.ObjPtr
	for _, ws := range r.states {
		for task := range ws.tasks {
			roots = append(roots, task.roots...)
		}
	}
	stats := gc.CollectWith(t.chunkCache(), zone, roots)
	r.stwLastLive.Store(mem.LiveBytes() - r.baselineBytes)
	t.gcStats.Add(stats)
	t.gcNanos += time.Since(start).Nanoseconds()

	r.gcInProgress = false
	r.gcFlag.Store(false)
	r.gcCond.Broadcast()
	r.gcMu.Unlock()
	if span != 0 {
		trace.End(track, trace.EvSTW, span, 0, uint64(stats.WordsCopied))
	}
}
