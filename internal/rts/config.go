package rts

import "repro/internal/gc"

// Mode selects which of the paper's runtime systems to run.
type Mode int

// The four systems of the evaluation (§4).
const (
	ParMem    Mode = iota // hierarchical heaps + promotion (mlton-parmem)
	STW                   // parallel alloc, stop-the-world sequential GC (mlton-spoonhower)
	Seq                   // sequential baseline (mlton)
	Manticore             // DLG-style local heaps + promote-on-communication (manticore)
)

func (m Mode) String() string {
	switch m {
	case ParMem:
		return "mlton-parmem"
	case STW:
		return "mlton-spoonhower"
	case Seq:
		return "mlton"
	case Manticore:
		return "manticore"
	default:
		return "unknown-mode"
	}
}

// Config parameterizes a Runtime.
type Config struct {
	Mode  Mode
	Procs int // worker count; ignored in Seq mode

	// Policy triggers collection of a task-local (ParMem), single (Seq), or
	// worker-local (Manticore) heap.
	Policy gc.Policy

	// MaxConcurrentZones caps how many hierarchical zone collections may be
	// in flight at once (ParMem leaf/join zones, Manticore local heaps).
	// 0 means one per processor. Setting 1 serializes all collections — the
	// ablation that measures what concurrent collection buys.
	MaxConcurrentZones int

	// ZoneStripes sets how many lock stripes the zone scheduler spreads its
	// admission bookkeeping over (rounded up to a power of two, clamped to
	// gc.MaxZoneStripes). 0 means gc.DefaultZoneStripes. 1 reproduces the
	// fully serialized admission of a single scheduler mutex — the ablation
	// that measures what striped admission buys at high P.
	ZoneStripes int

	// PoolShards sets how many free-list shards the global chunk pool
	// spreads over (clamped to mem.MaxChunkPoolShards). 0 means one shard
	// per worker. Like the pool limit this is process-global state: New
	// applies it and Close restores the previous value.
	PoolShards int

	// STWFloorBytes and STWRatio drive the stop-the-world trigger: collect
	// when global occupancy exceeds max(floor, ratio * live-after-last-GC).
	STWFloorBytes int64
	STWRatio      float64

	// DisableGC turns collection off entirely (for GC-overhead ablations).
	DisableGC bool

	// DisableChunkPool turns the recycling allocator off: released chunks
	// go back to the Go allocator, every acquisition is a fresh make, and
	// workers get no chunk caches. The ablation that measures what
	// recycling buys (hhbench -table alloc reports both sides).
	DisableChunkPool bool

	// PoolLimitBytes is the global chunk pool's high-water mark: recycled
	// chunks past it are released to the OS. 0 means
	// mem.DefaultPoolLimitBytes. Process-global, like the chunk directory.
	PoolLimitBytes int64

	// CacheChunksPerClass bounds each worker's private chunk cache, in
	// chunks per size class. 0 means mem.DefaultCacheChunksPerClass.
	CacheChunksPerClass int

	// NoBarrierFastPath forces every pointer write through the master-copy
	// lookup under the heap read lock — the paper-faithful baseline, with
	// neither the local-update fast path (§3.3) nor the optimistic
	// ancestor-pointee path, and with promote-buffer batching disabled.
	// The ablation that measures what the write-barrier fast paths buy
	// (hhbench -table promote reports both sides).
	NoBarrierFastPath bool

	// DeferredPromotion switches the ParMem write barrier from the paper's
	// eager transitive promotion to lazy pin-and-remember
	// (core.WritePtrDeferred): an ancestor→descendant pointer write records
	// a remembered-set entry on the pointee's heap instead of copying its
	// subtree; the pointee is promoted on a second cross-heap touch or at
	// the next zone collection of its heap, and dies uncopied if its
	// subtree is reclaimed wholesale first. Ignored outside ParMem mode
	// (Seq never promotes; Manticore's promote-on-communication and STW's
	// barrier-free writes are different designs).
	DeferredPromotion bool

	// CheckInvariants runs the remembered-set invariant walker
	// (heap.CheckInvariants) after every zone collection and at session
	// reclaim, panicking on the first violation. Debug knob for tests; the
	// walk is O(remembered entries) per collection.
	CheckInvariants bool

	// PromoteBufferObjects caps how many staged pointees one promotion lock
	// climb may serve in a batched pointer write (Task.WritePtrs). 0 means
	// core.DefaultPromoteBufferObjects; 1 climbs per object (the batching
	// ablation).
	PromoteBufferObjects int

	// TraceBufEvents enables the flight recorder (internal/trace) with one
	// ring of this many events per worker. 0 leaves tracing off: every emit
	// site then costs a single predicted-false branch. The recorder is
	// process-global like the memory accounting; if another owner (a -trace
	// flag in a driving command) already started it, the runtime leaves it
	// in place and emits into it.
	TraceBufEvents int
}

// DefaultConfig returns a workable configuration for the given mode.
func DefaultConfig(mode Mode, procs int) Config {
	return Config{
		Mode:          mode,
		Procs:         procs,
		Policy:        gc.DefaultPolicy(),
		STWFloorBytes: 8 << 20,
		STWRatio:      2.0,
	}
}
