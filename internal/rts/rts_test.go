package rts

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/mem"
)

var allModes = []Mode{ParMem, STW, Seq, Manticore}

func testConfig(mode Mode, procs int) Config {
	cfg := DefaultConfig(mode, procs)
	// Small thresholds so tests exercise collection aggressively.
	cfg.Policy = gc.Policy{MinWords: 2048, Ratio: 1.5}
	cfg.STWFloorBytes = 1 << 18
	return cfg
}

// fib computes Fibonacci with ForkJoinScalar below no threshold.
func fibTask(t *Task, n uint64) uint64 {
	if n < 2 {
		return n
	}
	a, b := t.ForkJoinScalar(mem.NilPtr,
		func(t *Task, _ mem.ObjPtr) uint64 { return fibTask(t, n-1) },
		func(t *Task, _ mem.ObjPtr) uint64 { return fibTask(t, n-2) })
	return a + b
}

func TestFibAllModes(t *testing.T) {
	for _, mode := range allModes {
		for _, procs := range []int{1, 2} {
			r := New(testConfig(mode, procs))
			got := r.Run(func(task *Task) uint64 { return fibTask(task, 15) })
			r.Close()
			if got != 610 {
				t.Fatalf("%v procs=%d: fib(15) = %d, want 610", mode, procs, got)
			}
		}
	}
}

// buildTree builds a balanced tree of the given depth in parallel: leaves
// carry value 1, interior nodes are allocated after their children join.
func buildTree(t *Task, depth int) mem.ObjPtr {
	if depth == 0 {
		leaf := t.Alloc(0, 1, mem.TagLeaf)
		t.WriteInitWord(leaf, 0, 1)
		return leaf
	}
	l, r := t.ForkJoin(mem.NilPtr,
		func(t *Task, _ mem.ObjPtr) mem.ObjPtr { return buildTree(t, depth-1) },
		func(t *Task, _ mem.ObjPtr) mem.ObjPtr { return buildTree(t, depth-1) })
	mark := t.PushRoot(&l, &r)
	n := t.Alloc(2, 0, mem.TagNode)
	t.PopRoots(mark)
	t.WriteInitPtr(n, 0, l)
	t.WriteInitPtr(n, 1, r)
	return n
}

func sumTree(t *Task, p mem.ObjPtr) uint64 {
	if mem.TagOf(p) == mem.TagLeaf {
		return t.ReadImmWord(p, 0)
	}
	return sumTree(t, t.ReadImmPtr(p, 0)) + sumTree(t, t.ReadImmPtr(p, 1))
}

func TestParallelTreeBuildAllModes(t *testing.T) {
	const depth = 9
	for _, mode := range allModes {
		for _, procs := range []int{1, 2, 4} {
			if mode == Seq && procs > 1 {
				continue
			}
			r := New(testConfig(mode, procs))
			got := r.Run(func(task *Task) uint64 {
				root := buildTree(task, depth)
				return sumTree(task, root)
			})
			st := r.Stats()
			r.Close()
			if got != 1<<depth {
				t.Fatalf("%v procs=%d: tree sum = %d, want %d", mode, procs, got, 1<<depth)
			}
			if st.Ops.Allocs == 0 {
				t.Fatalf("%v: no allocations recorded", mode)
			}
		}
	}
}

func TestGCActuallyRuns(t *testing.T) {
	// The tiny policy must force collections during the tree build, and
	// the tree must survive them.
	for _, mode := range allModes {
		procs := 2
		if mode == Seq {
			procs = 1
		}
		r := New(testConfig(mode, procs))
		got := r.Run(func(task *Task) uint64 {
			var sum uint64
			for round := 0; round < 4; round++ {
				root := buildTree(task, 8)
				mark := task.PushRoot(&root)
				// churn: garbage to provoke collection
				for i := 0; i < 3000; i++ {
					task.Alloc(0, 4, mem.TagTuple)
				}
				sum += sumTree(task, root)
				task.PopRoots(mark)
			}
			return sum
		})
		st := r.Stats()
		r.Close()
		if got != 4*(1<<8) {
			t.Fatalf("%v: sum = %d, want %d", mode, got, 4*(1<<8))
		}
		if st.GC.Collections == 0 {
			t.Fatalf("%v: expected collections with tiny policy, got none", mode)
		}
		if st.GCNanos == 0 {
			t.Fatalf("%v: GC ran but no GC time recorded", mode)
		}
	}
}

func TestSharedCounterCAS(t *testing.T) {
	// A mutable counter at the root incremented by every leaf via CAS.
	const depth = 7
	var casAdd func(t *Task, env mem.ObjPtr, d int)
	casAdd = func(t *Task, env mem.ObjPtr, d int) {
		if d == 0 {
			for {
				old := t.ReadMutWord(env, 0)
				if t.CASWord(env, 0, old, old+1) {
					return
				}
			}
		}
		t.ForkJoinScalar(env,
			func(t *Task, env mem.ObjPtr) uint64 { casAdd(t, env, d-1); return 0 },
			func(t *Task, env mem.ObjPtr) uint64 { casAdd(t, env, d-1); return 0 })
	}
	for _, mode := range allModes {
		procs := 4
		if mode == Seq {
			procs = 1
		}
		r := New(testConfig(mode, procs))
		got := r.Run(func(task *Task) uint64 {
			counter := task.AllocMut(0, 1, mem.TagRef)
			mark := task.PushRoot(&counter)
			casAdd(task, counter, depth)
			task.PopRoots(mark)
			return task.ReadMutWord(counter, 0)
		})
		r.Close()
		if got != 1<<depth {
			t.Fatalf("%v: counter = %d, want %d", mode, got, 1<<depth)
		}
	}
}

func TestPromotionThroughRuntime(t *testing.T) {
	// usp-tree in miniature: leaves cons onto dedicated slots of a root
	// array of lists, forcing distant promoting writes in ParMem.
	const slots = 8
	const perSlot = 25
	var fill func(t *Task, env mem.ObjPtr, lo, hi int)
	fill = func(t *Task, env mem.ObjPtr, lo, hi int) {
		if hi-lo == 1 {
			slot := lo
			for i := 0; i < perSlot; i++ {
				head := t.ReadMutPtr(env, slot)
				mark := t.PushRoot(&head, &env)
				cons := t.Alloc(1, 1, mem.TagCons)
				t.PopRoots(mark)
				t.WriteInitWord(cons, 0, uint64(slot*1000+i))
				// The tail may live above the cons (promoted master): the
				// initializing store is still disentangled.
				t.WriteInitPtr(cons, 0, head)
				t.WritePtr(env, slot, cons)
			}
			return
		}
		mid := (lo + hi) / 2
		t.ForkJoinScalar(env,
			func(t *Task, env mem.ObjPtr) uint64 { fill(t, env, lo, mid); return 0 },
			func(t *Task, env mem.ObjPtr) uint64 { fill(t, env, mid, hi); return 0 })
	}

	for _, mode := range allModes {
		procs := 4
		if mode == Seq {
			procs = 1
		}
		r := New(testConfig(mode, procs))
		ok := r.Run(func(task *Task) uint64 {
			arr := task.AllocMut(slots, 0, mem.TagArrPtr)
			mark := task.PushRoot(&arr)
			fill(task, arr, 0, slots)
			task.PopRoots(mark)
			// Validate: each slot holds a list of perSlot cells in
			// descending insertion order.
			for s := 0; s < slots; s++ {
				p := task.ReadMutPtr(arr, s)
				for i := perSlot - 1; i >= 0; i-- {
					if p.IsNil() {
						return 0
					}
					if task.ReadImmWord(p, 0) != uint64(s*1000+i) {
						return 0
					}
					p = task.ReadImmPtr(p, 0)
				}
				if !p.IsNil() {
					return 0
				}
			}
			return 1
		})
		st := r.Stats()
		r.Close()
		if ok != 1 {
			t.Fatalf("%v: lists corrupted", mode)
		}
		if mode == ParMem && st.Ops.WritePtrProm == 0 {
			t.Fatal("ParMem: expected promoting writes in the usp-tree pattern")
		}
	}
}

func TestParMemDisentanglementMaintained(t *testing.T) {
	cfg := testConfig(ParMem, 4)
	r := New(cfg)
	r.Run(func(task *Task) uint64 {
		arr := task.AllocMut(4, 0, mem.TagArrPtr)
		mark := task.PushRoot(&arr)
		var fill func(t *Task, env mem.ObjPtr, lo, hi int)
		fill = func(t *Task, env mem.ObjPtr, lo, hi int) {
			if hi-lo == 1 {
				c := t.Alloc(0, 1, mem.TagRef)
				t.WriteInitWord(c, 0, uint64(lo))
				t.WritePtr(env, lo, c)
				return
			}
			mid := (lo + hi) / 2
			t.ForkJoinScalar(env,
				func(t *Task, env mem.ObjPtr) uint64 { fill(t, env, lo, mid); return 0 },
				func(t *Task, env mem.ObjPtr) uint64 { fill(t, env, mid, hi); return 0 })
		}
		fill(task, arr, 0, 4)
		task.PopRoots(mark)
		return 0
	})
	// After the run everything has merged into the root heap.
	if err := core.CheckHeap(r.rootHeap); err != nil {
		t.Fatal(err)
	}
	r.Close()
}

func TestManticorePromotesOnSteal(t *testing.T) {
	// With multiple workers and a tree build, steals must occur and the
	// stolen results must be promoted to the global heap.
	cfg := testConfig(Manticore, 4)
	r := New(cfg)
	got := r.Run(func(task *Task) uint64 {
		root := buildTree(task, 10)
		return sumTree(task, root)
	})
	st := r.Stats()
	r.Close()
	if got != 1<<10 {
		t.Fatalf("sum = %d", got)
	}
	if st.Steals == 0 {
		t.Skip("no steals happened on this run; promotion unobservable")
	}
	if st.Ops.PromotedWords == 0 {
		t.Fatal("manticore: steals without promotion")
	}
}

func TestParMemNoPromotionOnPureCode(t *testing.T) {
	// The paper's headline observation: purely functional code never
	// promotes under hierarchical heaps.
	cfg := testConfig(ParMem, 4)
	r := New(cfg)
	r.Run(func(task *Task) uint64 {
		root := buildTree(task, 10)
		return sumTree(task, root)
	})
	st := r.Stats()
	r.Close()
	if st.Ops.PromotedWords != 0 || st.Ops.Promotions != 0 {
		t.Fatalf("pure code promoted %d words", st.Ops.PromotedWords)
	}
}

func TestMemoryReleasedOnClose(t *testing.T) {
	base := mem.ChunksInUse()
	for _, mode := range allModes {
		procs := 2
		if mode == Seq {
			procs = 1
		}
		r := New(testConfig(mode, procs))
		r.Run(func(task *Task) uint64 {
			root := buildTree(task, 8)
			return sumTree(task, root)
		})
		r.Close()
		if got := mem.ChunksInUse(); got != base {
			t.Fatalf("%v: %d chunks leaked", mode, got-base)
		}
	}
}

func TestPeakMemoryTracked(t *testing.T) {
	r := New(testConfig(Seq, 1))
	r.Run(func(task *Task) uint64 {
		p := task.Alloc(0, 1<<20, mem.TagArrI64) // 8 MiB array
		return task.ReadImmWord(p, 0)
	})
	st := r.Stats()
	r.Close()
	if st.PeakMem < 8<<20 {
		t.Fatalf("peak memory %d, want >= 8MiB", st.PeakMem)
	}
}

func TestRootsPushPop(t *testing.T) {
	r := New(testConfig(Seq, 1))
	defer r.Close()
	r.Run(func(task *Task) uint64 {
		var a, b mem.ObjPtr
		m1 := task.PushRoot(&a)
		m2 := task.PushRoot(&b)
		if len(task.roots) != 2 {
			t.Error("roots not pushed")
		}
		task.PopRoots(m2)
		if len(task.roots) != 1 {
			t.Error("inner pop wrong")
		}
		task.PopRoots(m1)
		if len(task.roots) != 0 {
			t.Error("outer pop wrong")
		}
		return 0
	})
}

func TestOneActiveRuntimeEnforced(t *testing.T) {
	r1 := New(testConfig(Seq, 1))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("second New with an open Runtime did not panic")
			}
		}()
		New(testConfig(ParMem, 2))
	}()
	// The failed New must not have poisoned the active flag.
	if got := r1.Run(func(task *Task) uint64 { return 42 }); got != 42 {
		t.Fatalf("first runtime broken after rejected New: got %d", got)
	}
	r1.Close()
	r1.Close() // double Close is a no-op, not a flag corruption
	r2 := New(testConfig(ParMem, 2))
	if got := r2.Run(func(task *Task) uint64 { return 7 }); got != 7 {
		t.Fatalf("runtime after Close broken: got %d", got)
	}
	r2.Close()
}

func TestForkJoinNAllModes(t *testing.T) {
	const arms = 5
	for _, mode := range allModes {
		for _, procs := range []int{1, 4} {
			if mode == Seq && procs > 1 {
				continue
			}
			r := New(testConfig(mode, procs))
			got := r.Run(func(task *Task) uint64 {
				env := task.AllocMut(0, 1, mem.TagRef)
				mark := task.PushRoot(&env)
				task.WriteNonptr(env, 0, 100)
				fs := make([]Thunk, arms)
				for i := range fs {
					i := i
					fs[i] = func(t *Task, env mem.ObjPtr) mem.ObjPtr {
						// Each arm builds its own tree (allocation pressure,
						// stealable sub-forks) and boxes a derived value. env
						// is re-rooted because the arm allocates.
						m := t.PushRoot(&env)
						root := buildTree(t, 6)
						t.PushRoot(&root)
						box := t.Alloc(0, 1, mem.TagRef)
						t.WriteInitWord(box, 0, uint64(i)*1000+sumTree(t, root)+t.ReadMutWord(env, 0))
						t.PopRoots(m)
						return box
					}
				}
				res := task.ForkJoinN(env, fs...)
				task.PopRoots(mark)
				var sum uint64
				for _, p := range res {
					sum += task.ReadImmWord(p, 0)
				}
				return sum
			})
			st := r.Stats()
			r.Close()
			want := uint64(0)
			for i := 0; i < arms; i++ {
				want += uint64(i)*1000 + (1 << 6) + 100
			}
			if got != want {
				t.Fatalf("%v procs=%d: ForkJoinN sum = %d, want %d", mode, procs, got, want)
			}
			if st.Ops.Allocs == 0 {
				t.Fatalf("%v: no allocations recorded", mode)
			}
		}
	}
}

func TestForkJoinNCollectsUnderPressure(t *testing.T) {
	// Aggressive policy + garbage churn inside every arm: results and envs
	// must survive leaf and join collections in every mode.
	for _, mode := range allModes {
		procs := 4
		if mode == Seq {
			procs = 1
		}
		r := New(testConfig(mode, procs))
		got := r.Run(func(task *Task) uint64 {
			fs := make([]Thunk, 6)
			for i := range fs {
				i := i
				fs[i] = func(t *Task, _ mem.ObjPtr) mem.ObjPtr {
					keep := t.Alloc(0, 1, mem.TagRef)
					t.WriteInitWord(keep, 0, uint64(i+1))
					m := t.PushRoot(&keep)
					for j := 0; j < 4000; j++ {
						t.Alloc(0, 4, mem.TagTuple) // garbage
					}
					t.PopRoots(m)
					return keep
				}
			}
			res := task.ForkJoinN(mem.NilPtr, fs...)
			var sum uint64
			for _, p := range res {
				sum += task.ReadImmWord(p, 0)
			}
			return sum
		})
		st := r.Stats()
		r.Close()
		if got != 21 {
			t.Fatalf("%v: sum = %d, want 21", mode, got)
		}
		if st.GC.Collections == 0 {
			t.Fatalf("%v: expected collections under the tiny policy", mode)
		}
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{
		ParMem:    "mlton-parmem",
		STW:       "mlton-spoonhower",
		Seq:       "mlton",
		Manticore: "manticore",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%d: %q", m, m.String())
		}
	}
}
