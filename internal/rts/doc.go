// Package rts assembles the complete runtime systems compared in the
// paper's evaluation (§4). One benchmark codebase runs against four
// runtime configurations:
//
//   - ParMem — the paper's contribution: hierarchical heaps mirroring the
//     fork-join task tree, promotion on entangling pointer writes, and
//     concurrent zone collection (labelled mlton-parmem). Collections are
//     scheduled by gc.ZoneScheduler and never park the world: a leaf zone
//     (the task's current heap) collects at an allocation safe point, and
//     a join zone (the merged ancestor, free of live descendants once the
//     join completes) collects at the join — at a top-level join that
//     ancestor is the hierarchy root, so whole-hierarchy collection also
//     needs no rendezvous. Disjoint zones collect concurrently, bounded
//     by Config.MaxConcurrentZones (0 = one per processor; 1 = the
//     serialized-collection ablation).
//   - STW — Spoonhower-style parallel ML: the same scheduler, per-worker
//     allocation into flat heaps, and sequential stop-the-world semispace
//     collection with a safe-point rendezvous (labelled mlton-spoonhower).
//     This is the only mode that installs the scheduler's parking
//     safe-point hook.
//   - Seq — the sequential baseline: direct execution of both forkjoin
//     arms, plain loads and stores, one heap (labelled mlton).
//   - Manticore — a DLG-style design: per-worker local heaps under a shared
//     global heap; data is promoted (copied) to the global heap whenever the
//     runtime communicates it across workers (stolen-task environments and
//     stolen-task results), and local heaps are collected independently —
//     routed through the same zone scheduler so their concurrency shows up
//     in the same counters.
//
// Tasks carry a shadow stack of root slots (registered *mem.ObjPtr Go
// locals); collections update the slots in place. The rooting contract for
// code running on a Task: any object pointer that must survive a call that
// may allocate (or fork) is registered for the duration of that call.
// Zone collections honor a second, subtler contract with the scheduler: a
// published frame's env slot may be read lock-free by a thief, which is
// safe because pending frames always live at depths strictly above any
// zone this task can collect, and the collector never writes a root slot
// whose pointer did not move.
//
// Execution is organized as SESSIONS (session.go): every unit of work —
// Run included — is a root-level subtree under the process super-root
// heap, concurrent with other sessions, tagged through the zone scheduler
// so cross-session collection concurrency is measured, and reclaimed
// wholesale (bulk chunk release, no merge) on completion unless pinned.
// Sessions are also the failure domain: budget overruns and panics abort
// one session, drain its frames, and surface as errors from Wait.
package rts
