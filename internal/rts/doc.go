// Package rts assembles the complete runtime systems compared in the
// paper's evaluation (§4). One benchmark codebase runs against four
// runtime configurations:
//
//   - ParMem — the paper's contribution: hierarchical heaps mirroring the
//     fork-join task tree, promotion on entangling pointer writes, leaf-heap
//     collection at allocation safe points (labelled mlton-parmem).
//   - STW — Spoonhower-style parallel ML: the same scheduler, per-worker
//     allocation into flat heaps, and sequential stop-the-world semispace
//     collection with a safe-point rendezvous (labelled mlton-spoonhower).
//   - Seq — the sequential baseline: direct execution of both forkjoin
//     arms, plain loads and stores, one heap (labelled mlton).
//   - Manticore — a DLG-style design: per-worker local heaps under a shared
//     global heap; data is promoted (copied) to the global heap whenever the
//     runtime communicates it across workers (stolen-task environments and
//     stolen-task results), and local heaps are collected independently.
//
// Tasks carry a shadow stack of root slots (registered *mem.ObjPtr Go
// locals); collections update the slots in place. The rooting contract for
// code running on a Task: any object pointer that must survive a call that
// may allocate (or fork) is registered for the duration of that call.
package rts
