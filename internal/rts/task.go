package rts

import (
	"time"

	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/sched"
)

// Task is one user-level thread: the execution context for a path of
// forkjoin tasks (Appendix B). It owns a superheap in ParMem mode, points
// at its worker's allocation heap in the flat modes, carries per-task
// operation counters, and holds the shadow stack of GC root slots.
type Task struct {
	rt  *Runtime
	w   *sched.Worker
	sh  *heap.Superheap // ParMem / Seq
	ws  *workerState    // STW / Manticore
	ses *Session        // owning session (every task belongs to one)

	// Ops tallies this task's memory operations (merged at completion).
	Ops     core.Counters
	gcStats gc.Stats
	gcNanos int64

	// pbuf is the task's promote buffer: the staging area and reusable
	// scratch for promotion lock climbs (core.PromoteBuf). Task-private, so
	// the write barrier's slow path allocates nothing in steady state.
	pbuf core.PromoteBuf

	roots []*mem.ObjPtr

	// pending tracks the frames this task published but has not yet
	// joined, newest last; the session abort path drains it (session.go).
	pending []*sched.Frame

	// madeHeaps records the hierarchy heaps this task created (superheap
	// pushes, stolen bases), task-locally to keep the fork path lock-free;
	// finish merges it into the session's reclamation registry.
	madeHeaps []*heap.Heap
}

// Session returns the session the task belongs to.
func (t *Task) Session() *Session { return t.ses }

// Runtime returns the owning runtime.
func (t *Task) Runtime() *Runtime { return t.rt }

// GCNanosSoFar reports GC time observed so far: this task's own (not yet
// merged) plus everything already merged or charged at the runtime level.
// The benchmark harness snapshots it to separate setup-phase from
// run-phase collection time.
func (t *Task) GCNanosSoFar() int64 { return t.gcNanos + t.rt.gcNanos.Load() }

// PushRoot registers object-pointer slots on the task's shadow stack and
// returns a mark for PopRoots. Collections update registered slots in
// place, so any pointer held in a Go local across an allocating call must
// be registered for the duration of that call.
func (t *Task) PushRoot(slots ...*mem.ObjPtr) int {
	mark := len(t.roots)
	t.roots = append(t.roots, slots...)
	return mark
}

// RootCount reports how many root slots are currently registered. The
// public façade's scope tests use it to verify push/pop balance.
func (t *Task) RootCount() int { return len(t.roots) }

// PopRoots unregisters every slot pushed since the mark.
func (t *Task) PopRoots(mark int) {
	for i := mark; i < len(t.roots); i++ {
		t.roots[i] = nil
	}
	t.roots = t.roots[:mark]
}

// finish merges the task's statistics into the runtime, hands its created
// heaps to the session's reclamation registry, and deregisters it. The
// counter merge goes to the runtime's totals stripe for this task's
// worker, so completions on different workers never contend.
func (t *Task) finish() {
	r := t.rt
	if t.ws != nil {
		delete(t.ws.tasks, t)
	}
	// Publish the tail of coalesced sub-microsecond climbs (no-op when
	// tracing is off or nothing accumulated).
	t.pbuf.FlushClimbTrace()
	if t.ses != nil {
		t.ses.addHeaps(t.madeHeaps)
		t.madeHeaps = nil
		// Latency attribution: how much of this task's wall time went to
		// collections and to promotion climbs. Summed per session so the
		// serving layer can split a request's latency into queue / GC /
		// barrier / mutator (serve.ServeStats).
		t.ses.gcAttrNanos.Add(t.gcNanos)
		t.ses.barrierAttrNanos.Add(t.Ops.PromoteNanos)
	}
	sh := r.totalsShardFor(t.w)
	sh.mu.Lock()
	sh.ops.Add(&t.Ops)
	sh.gc.Add(t.gcStats)
	sh.mu.Unlock()
	r.gcNanos.Add(t.gcNanos)
}

// CurrentHeap returns the heap the task is allocating into.
func (t *Task) CurrentHeap() *heap.Heap {
	if t.sh != nil {
		return t.sh.Current()
	}
	return t.ws.heap
}

// chunkCache returns the chunk cache of the worker this task is currently
// executing on (nil in Seq mode, whose sessions run on plain goroutines).
// Allocation, collection, and release paths thread it down so chunk
// traffic stays worker-local; because it is resolved per call from t.w,
// the cache is only ever touched by its owning worker's goroutine.
func (t *Task) chunkCache() *mem.ChunkCache {
	if t.w == nil {
		return nil
	}
	return t.w.Chunks
}

// collectLocal collects the worker-local heap in Manticore mode, rooted by
// every task hosted on this worker (all suspended except the caller). The
// local lock excludes cross-worker promotions out of this heap; routing
// through the zone scheduler makes the local heaps' natural concurrency
// (disjoint per-worker zones under the shared global heap) show up in the
// same counters as ParMem's.
func (t *Task) collectLocal() {
	start := time.Now()
	ws := t.ws
	ws.localMu.Lock()
	var roots []*mem.ObjPtr
	for ht := range ws.tasks {
		roots = append(roots, ht.roots...)
	}
	stats := t.rt.zones.CollectZone(t.chunkCache(), []*heap.Heap{ws.heap}, roots, gc.LeafZone)
	ws.localMu.Unlock()
	t.gcNanos += time.Since(start).Nanoseconds()
	t.gcStats.Add(stats)
}
