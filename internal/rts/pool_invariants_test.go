package rts

import (
	"testing"

	"repro/internal/mem"
)

// poolTestConfig is testConfig with small recycling tiers, so tests
// exercise the cache-overflow and pool high-water paths, not just the
// cache fast path.
func poolTestConfig(mode Mode, procs int) Config {
	cfg := testConfig(mode, procs)
	cfg.CacheChunksPerClass = 2
	cfg.PoolLimitBytes = 256 << 10
	return cfg
}

// TestPooledAllocatorAllModes runs a fork-heavy, collection-heavy workload
// in all four systems with tiny cache and pool bounds, checking that the
// recycling allocator actually recycled, that every chunk is handed back
// at Close (pooled slabs are unregistered, so ChunksInUse must return to
// its baseline), and that cross-mode results agree. Run under -race this
// is also the allocator's concurrency test: chunks migrate worker → cache
// → pool → other worker throughout.
func TestPooledAllocatorAllModes(t *testing.T) {
	base := mem.ChunksInUse()
	for _, mode := range allModes {
		before := mem.AllocSnapshot()
		r := New(poolTestConfig(mode, 4))
		got := r.Run(func(task *Task) uint64 {
			root := buildTree(task, 8)
			return sumTree(task, root)
		})
		r.Close()
		al := mem.AllocSnapshot().Sub(before)
		if got != 256 {
			t.Fatalf("%v: tree sum = %d, want 256", mode, got)
		}
		if al.Acquires == 0 {
			t.Fatalf("%v: no chunk acquisitions went through the recycling allocator", mode)
		}
		if al.Recycles == 0 {
			// Close releases every heap through the recycle path even when
			// the run itself never collected.
			t.Fatalf("%v: no chunks were recycled across the run (%+v)", mode, al)
		}
		if got := mem.ChunksInUse(); got != base {
			t.Fatalf("%v: %d chunks in use after Close, want baseline %d", mode, got, base)
		}
	}
}

// TestWorkerCachesServeAllocations checks the tentpole's point: with warm
// caches, leaf-heap allocation is served worker-locally. After a couple of
// rounds the cache+pool hit rate must dominate fresh allocation.
func TestWorkerCachesServeAllocations(t *testing.T) {
	r := New(poolTestConfig(ParMem, 4))
	defer r.Close()
	// Earlier tests leave their slabs parked in the process-global pool; at
	// this test's tiny 256 KiB limit that leftover stock (often the wrong
	// size classes) would eat the headroom and skew the hit-rate assertion.
	mem.DrainChunkPool()
	before := r.Stats().Alloc
	for round := 0; round < 6; round++ {
		res, err := r.Submit(SessionOpts{}, func(task *Task) uint64 {
			root := buildTree(task, 8)
			return sumTree(task, root)
		}).Wait()
		if err != nil || res != 256 {
			t.Fatalf("round %d: res=%d err=%v", round, res, err)
		}
	}
	al := r.Stats().Alloc.Sub(before)
	if al.CacheHits == 0 {
		t.Fatalf("worker caches never served an acquisition: %+v", al)
	}
	if al.RecycleRate() < 0.5 {
		t.Fatalf("recycle rate %.2f, want >= 0.5 once warm (%+v)", al.RecycleRate(), al)
	}
}

// TestChunksReturnToBaselineAfterSessionsWithPooling is the serving-layer
// leak check with pooling on: after every unpinned session completes, the
// wholesale releases route through caches and pool, yet registered-chunk
// occupancy must return to the pre-traffic baseline (parked slabs are
// unregistered and bounded).
func TestChunksReturnToBaselineAfterSessionsWithPooling(t *testing.T) {
	for _, mode := range []Mode{ParMem, Seq} {
		r := New(poolTestConfig(mode, 4))
		base := mem.ChunksInUse()
		sessions := make([]*Session, 0, 16)
		for i := 0; i < 16; i++ {
			sessions = append(sessions, r.Submit(SessionOpts{}, func(task *Task) uint64 {
				root := buildTree(task, 6)
				return sumTree(task, root)
			}))
		}
		for _, s := range sessions {
			if res, err := s.Wait(); err != nil || res != 64 {
				t.Fatalf("%v: session res=%d err=%v", mode, res, err)
			}
		}
		if got := mem.ChunksInUse(); got != base {
			t.Fatalf("%v: %d chunks in use after sessions drained, want baseline %d", mode, got, base)
		}
		r.Close()
	}
}

// TestPoolingDisabledStillCorrect is the ablation path: with the pool off
// every release is a hard free and no caches exist, and everything still
// computes and hands chunks back.
func TestPoolingDisabledStillCorrect(t *testing.T) {
	base := mem.ChunksInUse()
	for _, mode := range allModes {
		cfg := testConfig(mode, 2)
		cfg.DisableChunkPool = true
		r := New(cfg)
		got := r.Run(func(task *Task) uint64 {
			root := buildTree(task, 7)
			return sumTree(task, root)
		})
		al := r.Stats().Alloc
		r.Close()
		if got != 128 {
			t.Fatalf("%v: tree sum = %d, want 128", mode, got)
		}
		if al.CacheHits != 0 {
			t.Fatalf("%v: cache hits with pooling disabled: %+v", mode, al)
		}
		if got := mem.ChunksInUse(); got != base {
			t.Fatalf("%v: %d chunks in use after Close, want baseline %d", mode, got, base)
		}
	}
	// Close must have restored the pre-New pool limit: the pooling-off
	// ablation is scoped to the runtime's lifetime, not the process's.
	if got := mem.ChunkPoolLimit(); got == 0 {
		t.Fatal("pool limit still zero after the ablation runtime closed")
	}
}
