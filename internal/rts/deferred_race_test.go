package rts

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/gc"
	"repro/internal/mem"
)

// Race tests for deferred promotion: promote-on-second-touch racing
// concurrent zone collections (whose drains climb the same locks), and
// session abort with non-empty remembered sets (wholesale reclaim must
// neither leak nor double-free pins). Run under -race by the CI race
// matrix at GOMAXPROCS 2 and 16; the procs sweep here exercises the same
// schedules at P=2 and P=8 on the runtime's own pool.

// deferredConfig is an aggressive-GC deferred-promotion config with the
// invariant walker armed after every zone collection.
func deferredConfig(mode Mode, procs int) Config {
	cfg := DefaultConfig(mode, procs)
	cfg.Policy = gc.Policy{MinWords: 2048, Ratio: 1.25}
	cfg.DeferredPromotion = true
	cfg.CheckInvariants = true
	return cfg
}

// buildEntangled is the deferred barrier's worst-case-and-best-case mix:
// forked children publish session-local cells into a session-heap array
// (a pin per publish), re-publish some cells into the same slot (a
// refresh) and into a distinct slot (a second touch, promoting eagerly),
// and churn enough to trigger leaf zone collections whose drains race the
// promotions of sibling tasks in other sessions. The result is a
// deterministic checksum read back through the published pointers, so
// eager and deferred modes — and all four systems — must agree on it.
func buildEntangled(task *Task, n int) uint64 {
	const k = 8
	// AllocMut: the array is mutated from concurrent forked tasks, which the
	// Manticore (DLG) model only permits for global-heap objects. In ParMem
	// it is an ordinary session-heap allocation, so the publishes below are
	// ancestor→descendant writes — the deferred barrier's pin path.
	arr := task.AllocMut(k, 0, mem.TagTuple)
	mark := task.PushRoot(&arr)
	for round := 0; round < 2; round++ {
		fill := func(start int) func(*Task, mem.ObjPtr) uint64 {
			return func(t *Task, _ mem.ObjPtr) uint64 {
				for j := start; j < k; j += 2 {
					cell := t.Alloc(1, 1, mem.TagCons)
					t.WriteInitWord(cell, 0, uint64(round*k+j)*2654435761+1)
					t.WriteInitPtr(cell, 0, mem.NilPtr)
					t.WritePtr(arr, j, cell) // ancestor→descendant: pin (deferred) or promote (eager)
					if j%4 == start%4 {
						t.WritePtr(arr, j, cell)       // same slot again: refresh, nothing copied
						t.WritePtr(arr, (j+2)%k, cell) // distinct slot: second touch, eager promotion
					}
				}
				return buildChurn(t, n) // force leaf zone collections → drains
			}
		}
		task.ForkJoinScalar(mem.NilPtr, fill(0), fill(1))
	}
	var sum uint64
	for j := 0; j < k; j++ {
		cell := task.ReadMutPtr(arr, j)
		if !cell.IsNil() {
			sum = sum*31 + task.ReadImmWord(cell, 0)
		}
	}
	task.PopRoots(mark)
	// Churn on the session heap afterwards so its own collections drain
	// whatever the joins migrated up.
	return sum*7 + buildChurn(task, n/2)
}

func TestDeferredParityAllModes(t *testing.T) {
	const nSessions = 8
	const n = 1200
	for _, procs := range []int{2, 8} {
		var want []uint64 // Seq-mode reference, filled on the first procs pass
		for _, mode := range []Mode{Seq, ParMem, STW, Manticore} {
			t.Run(fmt.Sprintf("%s/procs=%d", mode, procs), func(t *testing.T) {
				r := New(deferredConfig(mode, procs))
				defer r.Close()

				sessions := make([]*Session, nSessions)
				for i := range sessions {
					sessions[i] = r.Submit(SessionOpts{}, func(task *Task) uint64 {
						return buildEntangled(task, n)
					})
				}
				got := make([]uint64, nSessions)
				for i, s := range sessions {
					res, err := s.Wait()
					if err != nil {
						t.Fatalf("session %d failed: %v", i, err)
					}
					got[i] = res
				}
				if want == nil {
					want = got
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("session %d checksum %x, want %x (mode disagreement)", i, got[i], want[i])
					}
				}

				st := r.Stats()
				if mode == ParMem {
					d := st.Deferred
					if d.Pins == 0 {
						t.Fatal("deferred ParMem run recorded no pins")
					}
					if d.SecondTouch == 0 {
						t.Fatal("no second-touch promotions despite distinct-slot re-publishes")
					}
					if d.Refreshed == 0 {
						t.Fatal("no refreshes despite same-slot re-publishes")
					}
					if d.Live != 0 {
						t.Fatalf("live remembered entries after quiescence: %+v", d)
					}
					if !d.Balanced() {
						t.Fatalf("pin accounting does not balance: %+v", d)
					}
				} else if st.Deferred.Pins != 0 {
					t.Fatalf("%v mode recorded %d pins; deferral is ParMem-only", mode, st.Deferred.Pins)
				}
			})
		}
	}
}

func TestDeferredAbortReclaimsPinnedSets(t *testing.T) {
	errBoom := errors.New("boom")
	for _, procs := range []int{2, 8} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			r := New(deferredConfig(ParMem, procs))
			defer r.Close()
			base := mem.ChunksInUse()

			const nSessions = 8
			sessions := make([]*Session, nSessions)
			for i := range sessions {
				sessions[i] = r.Submit(SessionOpts{}, func(task *Task) uint64 {
					arr := task.Alloc(4, 0, mem.TagTuple)
					mark := task.PushRoot(&arr)
					defer task.PopRoots(mark)
					task.ForkJoinScalar(mem.NilPtr,
						func(t *Task, _ mem.ObjPtr) uint64 {
							// Pin without ever draining, then die: the
							// session unwinds with this heap's remembered
							// set non-empty.
							for j := 0; j < 4; j++ {
								cell := t.Alloc(1, 1, mem.TagCons)
								t.WriteInitWord(cell, 0, uint64(j))
								t.WriteInitPtr(cell, 0, mem.NilPtr)
								t.WritePtr(arr, j, cell)
							}
							panic(errBoom)
						},
						func(t *Task, _ mem.ObjPtr) uint64 {
							// Churn so sibling zone collections (and their
							// drains) race the abort's unwind.
							return buildChurn(t, 3000)
						})
					return 0
				})
			}
			for i, s := range sessions {
				_, err := s.Wait()
				var pe *PanicError
				if !errors.As(err, &pe) || pe.Value != errBoom {
					t.Fatalf("session %d: err = %v, want PanicError{%v}", i, err, errBoom)
				}
			}
			// Wholesale reclaim of the aborted subtrees must return chunk
			// occupancy to baseline: a leaked pin would keep a chunk
			// registered, a double-free would corrupt the accounting (and
			// trip the armed invariant checker before that).
			if got := mem.ChunksInUse(); got != base {
				t.Fatalf("chunks in use after aborts = %d, want baseline %d", got, base)
			}
			st := r.Stats()
			d := st.Deferred
			if d.Pins == 0 {
				t.Fatal("aborting sessions recorded no pins")
			}
			if d.Live != 0 {
				t.Fatalf("live remembered entries after aborts: %+v", d)
			}
			if !d.Balanced() {
				t.Fatalf("pin accounting does not balance after aborts: %+v", d)
			}
			if st.Sessions.Failed != nSessions {
				t.Fatalf("failed sessions = %d, want %d", st.Sessions.Failed, nSessions)
			}
		})
	}
}
