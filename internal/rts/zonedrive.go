package rts

import (
	"time"

	"repro/internal/gc"
	"repro/internal/heap"
	"repro/internal/mem"
)

// The hierarchical (ParMem) collection driver. Unlike the stop-the-world
// rendezvous in gcdrive.go, nothing here parks other workers: a collection
// targets a zone — a heap with no live descendants — and runs inline on
// the task that owns it, holding only the zone's write locks through the
// runtime's ZoneScheduler. Workers in other subtrees keep allocating,
// mutating, promoting, and stealing; disjoint zones collect concurrently.
//
// Two triggers produce zones:
//
//   - Leaf zones: an allocation safe point finds the task's current heap
//     past policy. The current heap is always a leaf of the live
//     hierarchy, and only this task can reference into it, so the task's
//     own shadow stack is the complete root set.
//   - Join zones (internal-node collection): a ForkJoin's join merges the
//     child heap into its parent, and the merged ancestor — which now has
//     no live descendants either, since fork-join discipline completed
//     every task below it — is collected if it has grown past policy. At
//     a top-level join the merged ancestor is the hierarchy root itself,
//     so this subsumes whole-hierarchy collection without any rendezvous.
//
// Root-set safety against concurrent readers: a thief reads a published
// frame's env slot without locks (ParMem stolenEnv). Every published
// frame was forked at a depth strictly shallower than the collecting
// task's current heap — the fork pushed a deeper heap before publishing —
// so pending frames' envs always point outside the zone, and the
// collector never writes a slot whose pointer did not move (gc.CopyRoot).

// collectZone collects the given zone through the runtime's scheduler,
// rooted by the task's shadow stack, charging the elapsed time (admission
// wait included) to this task's GC account. The zone is tagged with the
// task's session, so the scheduler can report how many distinct sessions
// collected concurrently (the serving layer's cross-request GC
// concurrency).
func (t *Task) collectZone(zone []*heap.Heap, kind gc.ZoneKind) {
	// Deferred promotion needs no pre-collection work here: the collector's
	// remembered pass (gc.Collector.drainRemembered) treats each zone heap's
	// entries as extra roots, evacuates still-pinned pointees WITHIN the
	// zone, repairs their slots, and re-pins — deliberately NOT promoting,
	// so an object's copies stay in its own heap until a second touch
	// genuinely shares it or the release sweep finds its slot outliving the
	// subtree. That in-zone evacuation is ordinary collection work and is
	// charged to the GC account below, not to the barrier.
	start := time.Now()
	var fam uint64
	if t.ses != nil {
		fam = t.ses.id
	}
	stats := t.rt.zones.CollectSessionZone(t.chunkCache(), fam, zone, t.roots, kind)
	t.gcNanos += time.Since(start).Nanoseconds()
	t.gcStats.Add(stats)
	if t.rt.cfg.CheckInvariants {
		checked := append(append([]*heap.Heap{}, zone...), t.rt.rootHeap)
		if err := heap.CheckInvariants(checked...); err != nil {
			panic(err)
		}
	}
}

// maybeCollectJoin runs the internal-node collection at a join point: the
// superheap has just popped, so the current heap is the merged ancestor.
// extra roots (the join's result pointers, not yet registered) are pushed
// for the duration. Policy is evaluated on the merged heap, whose
// allocation and live accounting were accumulated by heap.Join.
func (t *Task) maybeCollectJoin(extra ...*mem.ObjPtr) {
	r := t.rt
	if r.cfg.DisableGC || !r.cfg.Policy.ShouldCollect(t.sh.Current()) {
		return
	}
	mark := t.PushRoot(extra...)
	t.collectZone([]*heap.Heap{t.sh.Current()}, gc.JoinZone)
	t.PopRoots(mark)
}
