package rts

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/gc"
	"repro/internal/mem"
)

// sessionConfig is an aggressive-GC config so session tests exercise
// collection, promotion, and reclamation together.
func sessionConfig(mode Mode, procs int) Config {
	cfg := DefaultConfig(mode, procs)
	cfg.Policy = gc.Policy{MinWords: 2048, Ratio: 1.25}
	return cfg
}

// buildChurn allocates a list of n cells, forces collections, and returns
// an order-sensitive checksum.
func buildChurn(task *Task, n int) uint64 {
	var sum uint64
	list := mem.NilPtr
	mark := task.PushRoot(&list)
	for i := 0; i < n; i++ {
		cell := task.Alloc(1, 1, mem.TagCons)
		task.WriteInitWord(cell, 0, uint64(i)*2654435761)
		task.WriteInitPtr(cell, 0, list)
		list = cell
	}
	for p := list; !p.IsNil(); p = task.ReadImmPtr(p, 0) {
		sum = sum*31 + task.ReadImmWord(p, 0)
	}
	task.PopRoots(mark)
	return sum
}

func TestConcurrentSessionsAllModes(t *testing.T) {
	const nSessions = 12
	for _, mode := range []Mode{ParMem, STW, Seq, Manticore} {
		t.Run(mode.String(), func(t *testing.T) {
			r := New(sessionConfig(mode, 4))
			defer r.Close()

			want := make([]uint64, nSessions)
			sessions := make([]*Session, nSessions)
			for i := range sessions {
				n := 500 + 100*i
				sessions[i] = r.Submit(SessionOpts{}, func(task *Task) uint64 {
					a, b := task.ForkJoinScalar(mem.NilPtr,
						func(task *Task, _ mem.ObjPtr) uint64 { return buildChurn(task, n) },
						func(task *Task, _ mem.ObjPtr) uint64 { return buildChurn(task, n/2) })
					return a*3 + b
				})
			}
			// Sequential reference for each size, computed after submission
			// so the reference sessions overlap the measured ones too.
			for i := range want {
				n := 500 + 100*i
				want[i] = r.Run(func(task *Task) uint64 {
					a := buildChurn(task, n)
					return a*3 + buildChurn(task, n/2)
				})
			}
			for i, s := range sessions {
				got, err := s.Wait()
				if err != nil {
					t.Fatalf("session %d failed: %v", i, err)
				}
				if got != want[i] {
					t.Errorf("session %d checksum %x, want %x", i, got, want[i])
				}
			}
			st := r.Stats()
			if st.Sessions.Submitted < nSessions || st.Sessions.Completed < nSessions {
				t.Fatalf("session totals %+v, want >= %d submitted+completed", st.Sessions, nSessions)
			}
			if st.Sessions.Failed != 0 {
				t.Fatalf("unexpected failed sessions: %+v", st.Sessions)
			}
		})
	}
}

func TestWholesaleReclamationReleasesChunks(t *testing.T) {
	for _, mode := range []Mode{ParMem, Seq} {
		t.Run(mode.String(), func(t *testing.T) {
			r := New(sessionConfig(mode, 2))
			base := mem.ChunksInUse()
			var sessions []*Session
			for i := 0; i < 8; i++ {
				sessions = append(sessions, r.Submit(SessionOpts{}, func(task *Task) uint64 {
					return buildChurn(task, 4000)
				}))
			}
			var wholesale int64
			for _, s := range sessions {
				if _, err := s.Wait(); err != nil {
					t.Fatal(err)
				}
				wholesale += s.WholesaleBytes()
				if s.MergedBytes() != 0 {
					t.Fatalf("unpinned session merged %d bytes", s.MergedBytes())
				}
			}
			if wholesale == 0 {
				t.Fatal("no bytes reclaimed wholesale")
			}
			// Wholesale reclamation must return chunk occupancy to the
			// pre-submission baseline without waiting for Close.
			if got := mem.ChunksInUse(); got != base {
				t.Fatalf("chunks in use after drain = %d, want baseline %d", got, base)
			}
			if st := r.Stats(); st.Sessions.WholesaleBytes != wholesale {
				t.Fatalf("runtime wholesale bytes %d, want %d", st.Sessions.WholesaleBytes, wholesale)
			}
			r.Close()
		})
	}
}

func TestPinnedSessionResultSurvivesOtherSessions(t *testing.T) {
	r := New(sessionConfig(ParMem, 2))
	defer r.Close()

	var out mem.ObjPtr
	s := r.Submit(SessionOpts{Pin: true}, func(task *Task) uint64 {
		cell := task.Alloc(0, 2, mem.TagTuple)
		task.WriteInitWord(cell, 0, 0xfeedface)
		task.WriteInitWord(cell, 1, 42)
		out = cell
		return 0
	})
	if _, err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if s.MergedBytes() == 0 {
		t.Fatal("pinned session reported no merged bytes")
	}
	// Churn other sessions; the pinned result must stay readable.
	for i := 0; i < 4; i++ {
		if _, err := r.Submit(SessionOpts{}, func(task *Task) uint64 {
			return buildChurn(task, 3000)
		}).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Run(func(task *Task) uint64 { return task.ReadImmWord(out, 0) }); got != 0xfeedface {
		t.Fatalf("pinned result corrupted: %x", got)
	}
}

func TestSessionBudgetAborts(t *testing.T) {
	for _, mode := range []Mode{ParMem, STW, Seq, Manticore} {
		t.Run(mode.String(), func(t *testing.T) {
			r := New(sessionConfig(mode, 2))
			defer r.Close()
			base := mem.ChunksInUse()

			s := r.Submit(SessionOpts{BudgetWords: 4096}, func(task *Task) uint64 {
				return buildChurn(task, 1_000_000) // far past the budget
			})
			if _, err := s.Wait(); !errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("err = %v, want ErrBudgetExceeded", err)
			}
			if mode == ParMem || mode == Seq {
				if got := mem.ChunksInUse(); got != base {
					t.Fatalf("aborted session leaked: %d chunks, want %d", got, base)
				}
			}
			// The runtime must keep serving after an abort.
			if got := r.Run(func(task *Task) uint64 { return buildChurn(task, 100) }); got == 0 {
				t.Fatal("post-abort run returned zero checksum")
			}
			if st := r.Stats(); st.Sessions.Failed != 1 {
				t.Fatalf("Failed = %d, want 1", st.Sessions.Failed)
			}
		})
	}
}

func TestSessionBudgetAbortsForkedArms(t *testing.T) {
	// The budget must also stop allocation performed by stolen subtasks,
	// and the abort must drain cleanly with frames in flight.
	for _, mode := range []Mode{ParMem, STW, Manticore} {
		t.Run(mode.String(), func(t *testing.T) {
			r := New(sessionConfig(mode, 4))
			defer r.Close()
			base := mem.ChunksInUse()
			s := r.Submit(SessionOpts{BudgetWords: 8192}, func(task *Task) uint64 {
				var arms []Thunk
				for i := 0; i < 8; i++ {
					arms = append(arms, func(task *Task, _ mem.ObjPtr) mem.ObjPtr {
						buildChurn(task, 200_000)
						return mem.NilPtr
					})
				}
				task.ForkJoinN(mem.NilPtr, arms...)
				return 1
			})
			if _, err := s.Wait(); !errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("err = %v, want ErrBudgetExceeded", err)
			}
			if mode == ParMem {
				if got := mem.ChunksInUse(); got != base {
					t.Fatalf("aborted forked session leaked: %d chunks, want %d", got, base)
				}
			}
		})
	}
}

func TestSessionPanicIsolated(t *testing.T) {
	for _, mode := range []Mode{ParMem, STW, Seq, Manticore} {
		t.Run(mode.String(), func(t *testing.T) {
			r := New(sessionConfig(mode, 2))
			defer r.Close()
			base := mem.ChunksInUse()

			boom := fmt.Errorf("request blew up")
			bad := r.Submit(SessionOpts{}, func(task *Task) uint64 {
				buildChurn(task, 100)
				panic(boom)
			})
			good := r.Submit(SessionOpts{}, func(task *Task) uint64 {
				return buildChurn(task, 2000)
			})

			_, err := bad.Wait()
			var pe *PanicError
			if !errors.As(err, &pe) || pe.Value != any(boom) {
				t.Fatalf("err = %v, want PanicError wrapping %v", err, boom)
			}
			if got, err := good.Wait(); err != nil || got == 0 {
				t.Fatalf("sibling session disturbed: res=%d err=%v", got, err)
			}
			if mode == ParMem || mode == Seq {
				if got := mem.ChunksInUse(); got != base {
					t.Fatalf("panicked session leaked: %d chunks, want %d", got, base)
				}
			}
		})
	}
}

func TestRunRepanicsSessionPanic(t *testing.T) {
	r := New(DefaultConfig(ParMem, 2))
	defer r.Close()
	defer func() {
		if p := recover(); p != "through-run" {
			t.Fatalf("recovered %v, want the original panic value", p)
		}
	}()
	r.Run(func(task *Task) uint64 { panic("through-run") })
}

func TestConcurrentSessionZoneCollections(t *testing.T) {
	// Two independent sessions with heavy allocation must be observed
	// collecting their (disjoint) zones at the same time — the serving
	// layer's cross-request GC concurrency. Timing-dependent, so retry.
	if testing.Short() {
		t.Skip("timing-dependent concurrency measurement")
	}
	const nSessions = 8
	for attempt := 0; attempt < 5; attempt++ {
		r := New(sessionConfig(ParMem, 4))
		var wg sync.WaitGroup
		sessions := make([]*Session, nSessions)
		for i := range sessions {
			sessions[i] = r.Submit(SessionOpts{}, func(task *Task) uint64 {
				var sum uint64
				for round := 0; round < 6; round++ {
					sum += buildChurn(task, 6000)
				}
				return sum
			})
		}
		wg.Wait()
		for _, s := range sessions {
			if _, err := s.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		st := r.Stats()
		r.Close()
		if st.Zones.SessionZones == 0 {
			t.Fatal("no session-tagged zone collections recorded")
		}
		if st.Zones.MaxConcurrentSessions >= 2 {
			t.Logf("attempt %d: %d session zones, %d distinct sessions collecting at peak",
				attempt, st.Zones.SessionZones, st.Zones.MaxConcurrentSessions)
			return
		}
	}
	t.Fatal("no two sessions ever collected concurrently")
}

func TestCloseWaitsForLiveSessions(t *testing.T) {
	// Close must wait submitted sessions out (wholesale release under a
	// live mutator would corrupt the subtree; a session still queued in
	// the pool inbox must get to run so its Wait returns).
	for _, mode := range []Mode{ParMem, Seq, STW} {
		t.Run(mode.String(), func(t *testing.T) {
			r := New(sessionConfig(mode, 2))
			var sessions []*Session
			for i := 0; i < 6; i++ {
				sessions = append(sessions, r.Submit(SessionOpts{}, func(task *Task) uint64 {
					return buildChurn(task, 5000)
				}))
			}
			r.Close() // no explicit Wait: Close itself must quiesce
			for i, s := range sessions {
				select {
				case <-s.done:
				default:
					t.Fatalf("session %d still unfinished after Close", i)
				}
				if _, err := s.Wait(); err != nil {
					t.Fatalf("session %d: %v", i, err)
				}
			}
			if got := mem.ChunksInUse(); got != 0 {
				t.Fatalf("%d chunks in use after Close", got)
			}
		})
	}
}
