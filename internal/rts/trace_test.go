package rts

import (
	"bytes"
	"encoding/json"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gc"
	"repro/internal/trace"
)

// TestTraceSnapshotDuringZoneCollections runs the zone stress with the
// flight recorder enabled and takes snapshots WHILE collections are in
// flight: every snapshot must be a consistent cut (no event past the cut,
// paired zone begin/end in order), and the exported JSON must contain only
// balanced complete spans. The final snapshot must actually contain zone
// and climb events — the emit points are wired, not just compiled.
func TestTraceSnapshotDuringZoneCollections(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	cfg := DefaultConfig(ParMem, 4)
	cfg.Policy = gc.Policy{MinWords: 4096, Ratio: 1.2}
	cfg.TraceBufEvents = 1 << 12

	var running atomic.Bool
	running.Store(true)
	snaps := make(chan *trace.Snapshot, 64)
	go func() {
		defer close(snaps)
		for running.Load() {
			if s := trace.TakeSnapshot(); s != nil {
				select {
				case snaps <- s:
				default: // keep draining even if the checker lags
				}
			}
			time.Sleep(time.Millisecond)
		}
		snaps <- trace.TakeSnapshot() // the final, full snapshot
	}()

	ok, st := runZoneStress(t, cfg, 6, 2500)
	running.Store(false)
	if ok != 1 {
		t.Fatal("data corruption under traced zone collection")
	}
	if st.Zones.Zones == 0 {
		t.Fatal("stress ran no zone collections")
	}

	var last *trace.Snapshot
	checked := 0
	for s := range snaps {
		if s == nil {
			continue
		}
		last = s
		checked++
		begins := map[uint64]trace.Event{}
		for _, e := range s.Events {
			if e.Nanos > s.CutNanos {
				t.Fatalf("event at %d past the cut %d", e.Nanos, s.CutNanos)
			}
			switch e.Phase {
			case trace.PhaseBegin:
				begins[e.Span] = e
			case trace.PhaseEnd:
				// A begin may have been overwritten in the ring (the export
				// layer drops such orphans); when it survives it must not
				// follow its end.
				if b, found := begins[e.Span]; found && b.Nanos > e.Nanos {
					t.Fatalf("span %d begins at %d after its end at %d", e.Span, b.Nanos, e.Nanos)
				}
			}
		}
	}
	if checked == 0 || last == nil {
		t.Fatal("no snapshots taken during the run")
	}

	zones, climbs := 0, 0
	for _, e := range last.Events {
		switch {
		case e.Type == trace.EvZone && e.Phase == trace.PhaseBegin:
			zones++
		case e.Type == trace.EvClimb:
			// Individual spans (>= 1us) or coalesced sub-us summaries — the
			// emit point is wired either way.
			climbs++
		}
	}
	if zones == 0 || climbs == 0 {
		t.Fatalf("final snapshot missing runtime events: %d zone begins, %d climb begins (of %d events)",
			zones, climbs, len(last.Events))
	}

	// The exported form must hold only balanced spans: every X carries a
	// non-negative duration and lies inside the cut; no B/E halves leak.
	var buf bytes.Buffer
	if err := last.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   float64  `json:"ts"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	cutUs := float64(last.CutNanos) / 1e3
	sawZone := false
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "M", "i":
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				t.Fatalf("unbalanced span %q in export", e.Name)
			}
			if e.Ts < 0 || e.Ts+*e.Dur > cutUs+0.001 {
				t.Fatalf("span %q [%f, %f] outside cut %f", e.Name, e.Ts, e.Ts+*e.Dur, cutUs)
			}
			if e.Name == "zone-collect" {
				sawZone = true
			}
		default:
			t.Fatalf("unexpected phase %q in export", e.Ph)
		}
	}
	if !sawZone {
		t.Fatal("export contains no zone-collect spans")
	}
}
