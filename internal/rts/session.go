package rts

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Multi-root sessions: the serving layer's unit of work. Each submitted
// session becomes an independent root-level subtree of the hierarchy — a
// child of the process super-root heap — published to the scheduler pool as
// a stealable root frame and executed concurrently with every other
// session. Inside a session the usual fork-join discipline applies
// unchanged; across sessions the subtrees are disjoint, so their zone
// collections admit concurrently (the ZoneScheduler tags them with the
// session id and reports how many distinct sessions it saw collecting at
// once).
//
// Completion reclaims the subtree WHOLESALE: every chunk the session
// allocated — however many tasks and heaps it forked — is released in bulk
// without a merge into the super-root and without per-object work. This is
// the region-style payoff of the hierarchy: request memory whose lifetime
// is the request. A session submitted with Pin instead joins its subtree
// into the super-root, keeping its result's object graph valid until the
// runtime closes.
//
// Failure isolation: a panic in any of the session's tasks (including a
// blown chunk budget) aborts only that session. The panicking task drains
// the frames it published but that were never stolen, sibling tasks of the
// same session stop at their next allocation safe point, and the subtree is
// reclaimed wholesale once every outstanding frame has drained. Other
// sessions never notice.

// SessionOpts configures one submitted session.
type SessionOpts struct {
	// Pin preserves the session's object graph: on completion the subtree
	// is joined into the super-root instead of being released, so pointer
	// results stay valid until the runtime closes. Failed sessions are
	// never pinned.
	Pin bool

	// BudgetWords caps the words the session's tasks may allocate in total
	// (0 = unlimited). Exceeding the budget aborts the session with
	// ErrBudgetExceeded at an allocation safe point; the partially built
	// subtree is reclaimed wholesale.
	BudgetWords int64
}

// ErrBudgetExceeded aborts a session whose tasks allocated past the
// session's BudgetWords.
var ErrBudgetExceeded = errors.New("rts: session allocation budget exceeded")

// PanicError wraps a panic raised by a session's own code; Session.Wait
// returns it instead of crashing the worker, and Runtime.Run re-raises the
// original value.
type PanicError struct{ Value any }

func (e *PanicError) Error() string { return fmt.Sprintf("rts: session panicked: %v", e.Value) }

// AbortError is a voluntary rollback raised by Task.Abort: the session's
// own code decided to abandon the request (a transaction that failed
// optimistic validation, say) and unwound through the same panic-isolation
// path a crash would take, so the subtree is reclaimed wholesale — the
// hierarchy's free rollback. Result carries an application word (e.g. the
// conflicting key) and Reason the application's why; callers distinguish
// voluntary aborts from crashes with errors.As and decide whether to
// retry.
type AbortError struct {
	Reason error  // application-supplied cause (may be nil)
	Result uint64 // application payload, e.g. a conflict discriminator
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("rts: session aborted by its own code: %v", e.Reason)
}

// Unwrap exposes the application's cause to errors.Is/As chains.
func (e *AbortError) Unwrap() error { return e.Reason }

// Abort rolls the calling session back: it records an *AbortError as the
// session's failure and unwinds through the panic-isolation machinery, so
// every sibling task stops at its next allocation safe point and the
// subtree — all memory the request staged — is reclaimed wholesale exactly
// as a crash would be, with no per-object undo. Abort never returns.
// Session.Wait returns the *AbortError. Outside a session (Runtime.Run)
// the AbortError itself is panicked.
func (t *Task) Abort(result uint64, reason error) {
	err := &AbortError{Reason: reason, Result: result}
	if t.ses == nil {
		panic(err)
	}
	t.ses.fail(err)
	panic(sessionAbort{})
}

// sessionAbort is the internal panic raised at safe points of a session
// that has already failed; boundaries translate it back to the recorded
// first failure.
type sessionAbort struct{}

// asSessionError translates a recovered panic value into the session error.
func (s *Session) asSessionError(p any) error {
	if _, ok := p.(sessionAbort); ok {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.err != nil {
			return s.err
		}
		return &PanicError{Value: p} // unreachable: fail precedes the panic
	}
	return &PanicError{Value: p}
}

// Session is one in-flight (or completed) root-level unit of work.
type Session struct {
	r   *Runtime
	id  uint64
	pin bool

	budgetWords int64
	allocWords  atomic.Int64

	// heap is the session subtree's base, a child of the process super-root
	// (hierarchical modes only; nil in STW and Manticore, whose sessions
	// allocate into worker heaps).
	heap *heap.Heap

	// outstanding counts published-but-unconsumed frames, the root frame
	// included. Reclamation waits for it to reach zero so that no stolen
	// task of an aborted session can touch the subtree after its chunks are
	// released.
	outstanding atomic.Int64

	aborted atomic.Bool

	mu    sync.Mutex
	err   error        // first failure
	heaps []*heap.Heap // every heap the session's tasks created (for reclamation)

	// Latency attribution, accumulated by Task.finish as the session's tasks
	// complete: nanoseconds its tasks spent inside zone/STW collections and
	// inside promotion lock climbs. Atomic because stolen tasks finish on
	// other workers; all adds happen-before done closes (reclamation waits
	// out every outstanding frame).
	gcAttrNanos      atomic.Int64
	barrierAttrNanos atomic.Int64

	res            uint64
	wholesaleBytes int64
	mergedBytes    int64
	done           chan struct{}
}

// ID returns the session's runtime-unique identifier (also its zone-family
// tag in the collector's statistics).
func (s *Session) ID() uint64 { return s.id }

// Submit starts fn as a new root-level session and returns immediately.
// The session runs concurrently with other sessions (and with the caller);
// Wait blocks for its completion. In the hierarchical modes the session's
// subtree is reclaimed wholesale on completion unless opts.Pin is set.
func (r *Runtime) Submit(opts SessionOpts, fn func(*Task) uint64) *Session {
	// Counter before flag: Close stores the flag and then waits for the
	// counter, so every Submit either registers before Close's wait loop
	// reads zero (Close waits the session out) or observes the flag here.
	live := r.liveSessions.Add(1)
	if r.closed.Load() {
		r.liveSessions.Add(-1)
		panic("rts: Submit on a closed Runtime")
	}
	s := &Session{
		r:           r,
		id:          r.sessionIDs.Add(1),
		pin:         opts.Pin,
		budgetWords: opts.BudgetWords,
		done:        make(chan struct{}),
	}
	if r.cfg.Mode == ParMem || r.cfg.Mode == Seq {
		s.heap = r.rootHeap.AttachChild()
		s.heaps = append(s.heaps, s.heap)
	}
	r.sessTotals.Submitted.Add(1)
	if trace.Enabled() {
		trace.Emit(-1, trace.EvSubmit, 0, s.id)
	}
	for {
		peak := r.peakSessions.Load()
		if live <= peak || r.peakSessions.CompareAndSwap(peak, live) {
			break
		}
	}
	s.outstanding.Add(1) // the root frame
	if r.pool == nil {
		// Seq mode has no worker pool: the session body runs on its own
		// goroutine (the mode is sequential WITHIN a session; independent
		// sessions still serve concurrently).
		go s.runRoot(nil, fn)
	} else {
		r.pool.Submit(sched.NewFrame(func(w *sched.Worker) { s.runRoot(w, fn) }))
	}
	return s
}

// Wait blocks until the session completes and returns its result, or the
// error that aborted it (ErrBudgetExceeded, or a *PanicError wrapping the
// session's own panic).
func (s *Session) Wait() (uint64, error) {
	<-s.done
	return s.res, s.err
}

// GCNanos reports the time the session's tasks spent inside collections
// (zone or STW), summed across tasks. Valid after Wait; 0 while in flight.
func (s *Session) GCNanos() int64 {
	select {
	case <-s.done:
		return s.gcAttrNanos.Load()
	default:
		return 0
	}
}

// BarrierNanos reports the time the session's tasks spent inside promotion
// lock climbs (lock + copy + store), summed across tasks. Valid after Wait.
func (s *Session) BarrierNanos() int64 {
	select {
	case <-s.done:
		return s.barrierAttrNanos.Load()
	default:
		return 0
	}
}

// WholesaleBytes reports the chunk bytes released in bulk when the session
// completed (0 while in flight, for pinned sessions, and in the flat
// modes).
func (s *Session) WholesaleBytes() int64 {
	select {
	case <-s.done:
		return s.wholesaleBytes
	default:
		return 0
	}
}

// MergedBytes reports the chunk bytes a pinned session merged into the
// super-root on completion.
func (s *Session) MergedBytes() int64 {
	select {
	case <-s.done:
		return s.mergedBytes
	default:
		return 0
	}
}

// fail records the session's first failure and flips it to aborted; every
// task of the session observes the flag at its next allocation safe point
// and unwinds.
func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.aborted.Store(true)
}

// addHeaps merges a finished task's created-heap list into the session's
// reclamation registry.
func (s *Session) addHeaps(hs []*heap.Heap) {
	if len(hs) == 0 {
		return
	}
	s.mu.Lock()
	s.heaps = append(s.heaps, hs...)
	s.mu.Unlock()
}

// frameDone consumes one outstanding frame.
func (s *Session) frameDone() { s.outstanding.Add(-1) }

// runRoot executes the session body as the root task (on worker w, or on a
// plain goroutine in Seq mode), waits out any orphaned frames, and
// reclaims the subtree.
func (s *Session) runRoot(w *sched.Worker, fn func(*Task) uint64) {
	r := s.r
	track := -1
	if w != nil {
		track = w.ID
	}
	var span uint64
	if trace.Enabled() {
		span = trace.Begin(track, trace.EvSession, 0, s.id)
	}
	t := r.newSessionTask(w, s)
	res := s.protect(t, fn)
	t.finish()
	s.frameDone()

	// After an abort, frames this session published may have been stolen
	// and still be running on other workers; the subtree cannot be released
	// under them. Spin at the scheduler's safe point (an STW rendezvous
	// must be able to park this worker while it waits).
	for s.outstanding.Load() > 0 {
		if w != nil {
			w.SafePoint()
		}
		time.Sleep(20 * time.Microsecond)
	}
	s.reclaim(w, res)
	if span != 0 {
		outcome := uint32(0)
		if s.err != nil {
			outcome = 1
		}
		trace.End(track, trace.EvSession, span, outcome, s.id)
	}
}

// guard runs body on task t, converting a panic — the session's own code,
// or the abort signal raised at a safe point — into the session's failure
// state and unwinding t's published-but-unstolen frames. The defer
// ordering matters everywhere guard is used: the recover (and its drain)
// must complete before t is finished, and t must be finished before the
// frame's outstanding count is consumed, or reclamation could race the
// task's heap handoff.
func (s *Session) guard(t *Task, body func()) {
	defer func() {
		if p := recover(); p != nil {
			s.fail(s.asSessionError(p))
			t.drainPending()
		}
	}()
	body()
}

// protect is guard for the session's root body.
func (s *Session) protect(t *Task, fn func(*Task) uint64) (res uint64) {
	s.guard(t, func() { res = fn(t) })
	return res
}

// reclaim releases (or, pinned, merges) the session subtree and publishes
// the session's completion. It runs on worker w (nil in Seq mode), whose
// chunk cache receives the released chunks first — the per-request reuse
// path: the chunks of the request that just finished become the chunks of
// whatever this worker runs next, with no directory traffic at all.
func (s *Session) reclaim(w *sched.Worker, res uint64) {
	r := s.r
	var cc *mem.ChunkCache
	if w != nil {
		cc = w.Chunks
	}
	s.mu.Lock()
	err := s.err
	heaps := s.heaps
	s.heaps = nil
	s.mu.Unlock()

	if s.heap != nil {
		pinJoin := s.pin && err == nil && s.heap.IsAlive()
		if r.cfg.DeferredPromotion && !pinJoin {
			// Deferred promotion's release-time sweep, covering the abort
			// path too: every remembered entry of EVERY session heap is
			// resolved before the first chunk is recycled. Entries whose
			// slot dies with the subtree are dropped (the pinned objects
			// were never copied — the deferral's payoff); entries whose
			// slot lives on above the session base promote out now, so no
			// surviving slot is left pointing into released chunks. Pinned
			// sessions skip this: their Join migrates or elides the
			// entries instead. The sweep's counters merge into the totals
			// stripe and its climb time into the session's barrier
			// attribution, like any task's.
			var dops core.Counters
			var dbuf core.PromoteBuf
			core.DrainForRelease(cc, &dbuf, &dops, s.heap.Depth(), heaps)
			if dops != (core.Counters{}) {
				sh := r.totalsShardFor(w)
				sh.mu.Lock()
				sh.ops.Add(&dops)
				sh.mu.Unlock()
				s.barrierAttrNanos.Add(dops.PromoteNanos)
			}
		}
		r.rootHeap.DetachChild(s.heap)
		if pinJoin {
			// Pinned: splice the subtree's chunks into the super-root in
			// O(1). The write lock orders the splice against promotions
			// into the super-root by concurrent sessions.
			bytes := s.heap.CapWords() * 8
			r.rootHeap.Lock(heap.WRITE)
			heap.Join(r.rootHeap, s.heap)
			r.rootHeap.Unlock()
			s.mergedBytes = bytes
		}
		// Wholesale release of everything still alive. On a normal unpinned
		// completion that is exactly the session base (every forked heap
		// was joined back into it); after an abort it also covers heaps
		// orphaned mid-unwind. Heaps already merged away free nothing.
		var freed int64
		for _, h := range heaps {
			freed += heap.ReleaseWholesale(cc, r.rootHeap, h)
		}
		s.wholesaleBytes = freed
		if r.cfg.CheckInvariants {
			if ierr := heap.CheckInvariants(append(heaps, r.rootHeap)...); ierr != nil {
				panic(ierr)
			}
		}
	}

	s.res, s.err = res, err
	r.liveSessions.Add(-1)
	if err != nil {
		r.sessTotals.Failed.Add(1)
	} else {
		r.sessTotals.Completed.Add(1)
	}
	r.sessTotals.WholesaleBytes.Add(s.wholesaleBytes)
	r.sessTotals.MergedBytes.Add(s.mergedBytes)
	close(s.done)
}

// allocGate is the session hook on every allocation safe point: it aborts
// the calling task if the session has failed, and enforces the session's
// allocation budget.
func (t *Task) allocGate(words int) {
	s := t.ses
	if s == nil {
		return
	}
	if s.aborted.Load() {
		panic(sessionAbort{})
	}
	if s.budgetWords > 0 && s.allocWords.Add(int64(words)) > s.budgetWords {
		s.fail(ErrBudgetExceeded)
		panic(sessionAbort{})
	}
}

// drainPending unwinds the frames this task published but never joined:
// frames still in the worker's deque are popped and cancelled (they are
// the newest entries — thieves steal oldest-first, so anything below the
// first nil pop was stolen and will be consumed by its thief). Called only
// on the panic path, on the task's own worker.
func (t *Task) drainPending() {
	if t.w == nil {
		t.pending = nil
		return
	}
	for len(t.pending) > 0 {
		top := t.pending[len(t.pending)-1]
		popped := t.w.PopBottom()
		if popped == nil {
			// Deque empty: every remaining pending frame was stolen; each
			// thief consumes its own frame's outstanding count.
			t.pending = nil
			return
		}
		if popped != top {
			panic("rts: foreign frame popped while unwinding a session abort")
		}
		t.pending = t.pending[:len(t.pending)-1]
		if t.ses != nil {
			t.ses.frameDone()
		}
	}
}

// sessionCounters aggregates the runtime's lifetime session statistics.
type sessionCounters struct {
	Submitted      atomic.Int64
	Completed      atomic.Int64
	Failed         atomic.Int64
	WholesaleBytes atomic.Int64
	MergedBytes    atomic.Int64
}

// SessionTotals is the Stats snapshot of the runtime's session activity.
type SessionTotals struct {
	Submitted      int64 // sessions submitted
	Completed      int64 // sessions completed without failure
	Failed         int64 // sessions aborted (budget, panic)
	PeakLive       int64 // peak simultaneously in-flight sessions
	WholesaleBytes int64 // chunk bytes released in bulk at session completion
	MergedBytes    int64 // chunk bytes pinned sessions merged into the super-root
}
