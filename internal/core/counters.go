package core

// Counters tallies memory operations by the cost classes of Figure 8.
// Each task owns a Counters and merges it into the runtime total when it
// completes, so hot paths never touch shared cache lines.
type Counters struct {
	Allocs     int64
	AllocWords int64

	ReadImm int64 // immutable reads: single instruction, no barrier

	ReadMutFast int64 // mutable reads that hit the no-forwarding fast path
	ReadMutSlow int64 // mutable reads redirected to a master copy

	WriteNonptrLocal   int64 // optimistic non-pointer writes to the task's own heap
	WriteNonptrDistant int64 // optimistic non-pointer writes to ancestor heaps
	WriteNonptrSlow    int64 // non-pointer writes redirected to a master copy

	WriteInit int64 // initializing writes into fresh objects

	WritePtrFast     int64 // pointer writes to local, unforwarded objects
	WritePtrAncestor int64 // optimistic ancestor-pointee writes (no FindMaster lock)
	WritePtrNonProm  int64 // non-promoting writes that went through FindMaster
	WritePtrProm     int64 // pointer writes that triggered promotion
	WritePtrBatched  int64 // promoting writes committed by a shared (batched) climb
	WritePtrPinned   int64 // deferred-mode down-pointer writes that pinned instead of promoting

	CASFast int64 // compare-and-swap on unforwarded objects
	CASSlow int64 // compare-and-swap redirected to a master copy

	Promotions        int64 // promoting pointer writes committed
	PromotedObjects   int64 // objects copied upward
	PromotedWords     int64 // words copied upward
	PromoteClimbs     int64 // promotion lock climbs (≤ Promotions when batching)
	ClimbLockedHeaps  int64 // heaps write-locked across all climbs
	PromoteNanos      int64 // wall time inside promotion climbs (lock + copy + store)
	FindMasterRetries int64 // double-checked locking retries

	// Deferred-promotion outcomes (WritePtrDeferred and the drains). A pin
	// (WritePtrPinned) is resolved exactly once: by a drain here, by a join
	// elision / wholesale drop / collector resolution counted in package
	// heap's globals — or not yet (live). Zone collections re-pin surviving
	// entries, so these drain counters move only at release sweeps, second
	// touches, and explicit DrainRemembered calls.
	DeferredSecondTouch   int64 // pinned pointees promoted eagerly by a second, distinct-slot touch
	DeferredRefresh       int64 // same-slot re-writes of a pinned pointee: no new entry, no copy
	DeferredDrainPromoted int64 // entries promoted (or slot-repaired) by a drain
	DeferredDrainDied     int64 // entries dead at drain: slot overwritten, or subtree dying
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	c.Allocs += o.Allocs
	c.AllocWords += o.AllocWords
	c.ReadImm += o.ReadImm
	c.ReadMutFast += o.ReadMutFast
	c.ReadMutSlow += o.ReadMutSlow
	c.WriteNonptrLocal += o.WriteNonptrLocal
	c.WriteNonptrDistant += o.WriteNonptrDistant
	c.WriteNonptrSlow += o.WriteNonptrSlow
	c.WriteInit += o.WriteInit
	c.WritePtrFast += o.WritePtrFast
	c.WritePtrAncestor += o.WritePtrAncestor
	c.WritePtrNonProm += o.WritePtrNonProm
	c.WritePtrProm += o.WritePtrProm
	c.WritePtrBatched += o.WritePtrBatched
	c.WritePtrPinned += o.WritePtrPinned
	c.CASFast += o.CASFast
	c.CASSlow += o.CASSlow
	c.Promotions += o.Promotions
	c.PromotedObjects += o.PromotedObjects
	c.PromotedWords += o.PromotedWords
	c.PromoteClimbs += o.PromoteClimbs
	c.ClimbLockedHeaps += o.ClimbLockedHeaps
	c.PromoteNanos += o.PromoteNanos
	c.FindMasterRetries += o.FindMasterRetries
	c.DeferredSecondTouch += o.DeferredSecondTouch
	c.DeferredRefresh += o.DeferredRefresh
	c.DeferredDrainPromoted += o.DeferredDrainPromoted
	c.DeferredDrainDied += o.DeferredDrainDied
}

// PromotedBytes reports the bytes copied by promotions.
func (c *Counters) PromotedBytes() int64 { return c.PromotedWords * 8 }

// PtrWrites reports the total number of mutable pointer writes, across
// every barrier class.
func (c *Counters) PtrWrites() int64 {
	return c.WritePtrFast + c.WritePtrAncestor + c.WritePtrNonProm + c.WritePtrProm + c.WritePtrPinned
}

// BarrierFastRate reports the fraction of mutable pointer writes that
// completed without touching any heap lock (the local and ancestor fast
// paths). Zero when no pointer writes happened.
func (c *Counters) BarrierFastRate() float64 {
	total := c.PtrWrites()
	if total == 0 {
		return 0
	}
	return float64(c.WritePtrFast+c.WritePtrAncestor) / float64(total)
}

// MeanClimbDepth reports the mean number of heaps write-locked per
// promotion lock climb — the paper's lock-path length, which batching
// amortizes across several promoting writes. Zero when nothing promoted.
func (c *Counters) MeanClimbDepth() float64 {
	if c.PromoteClimbs == 0 {
		return 0
	}
	return float64(c.ClimbLockedHeaps) / float64(c.PromoteClimbs)
}

// Representative returns the name of the dominant mutable-operation class,
// used to regenerate the paper's Figure 9. Immutable reads are pervasive in
// every benchmark (footnote 1 in the paper), so they are reported only when
// no mutation happened at all. Promoting writes are orders of magnitude
// more expensive than the optimistic classes (Figure 8) and serialize
// through heap locks, so they dominate behaviour well before they dominate
// counts: one percent of the mutable operations suffices.
func (c *Counters) Representative() string {
	type cls struct {
		name string
		n    int64
	}
	classes := []cls{
		{"local non-pointer writes", c.WriteNonptrLocal},
		{"local non-promoting writes", c.WritePtrFast},
		{"distant non-pointer writes", c.WriteNonptrDistant + c.WriteNonptrSlow + c.CASFast + c.CASSlow},
		{"distant non-promoting writes", c.WritePtrAncestor + c.WritePtrNonProm + c.WritePtrPinned},
		{"distant promoting writes", c.WritePtrProm},
	}
	var total int64
	best := cls{"immutable reads", 0}
	for _, cl := range classes {
		total += cl.n
		if cl.n > best.n {
			best = cl
		}
	}
	if total == 0 {
		return "immutable reads"
	}
	if c.WritePtrProm > 0 && c.WritePtrProm*100 >= total {
		return "distant promoting writes"
	}
	return best.name
}
