package core

// Counters tallies memory operations by the cost classes of Figure 8.
// Each task owns a Counters and merges it into the runtime total when it
// completes, so hot paths never touch shared cache lines.
type Counters struct {
	Allocs     int64
	AllocWords int64

	ReadImm int64 // immutable reads: single instruction, no barrier

	ReadMutFast int64 // mutable reads that hit the no-forwarding fast path
	ReadMutSlow int64 // mutable reads redirected to a master copy

	WriteNonptrLocal   int64 // optimistic non-pointer writes to the task's own heap
	WriteNonptrDistant int64 // optimistic non-pointer writes to ancestor heaps
	WriteNonptrSlow    int64 // non-pointer writes redirected to a master copy

	WriteInit int64 // initializing writes into fresh objects

	WritePtrFast    int64 // pointer writes to local, unforwarded objects
	WritePtrNonProm int64 // distant pointer writes that did not promote
	WritePtrProm    int64 // pointer writes that triggered promotion

	CASFast int64 // compare-and-swap on unforwarded objects
	CASSlow int64 // compare-and-swap redirected to a master copy

	Promotions        int64 // writePromote invocations
	PromotedObjects   int64 // objects copied upward
	PromotedWords     int64 // words copied upward
	FindMasterRetries int64 // double-checked locking retries
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	c.Allocs += o.Allocs
	c.AllocWords += o.AllocWords
	c.ReadImm += o.ReadImm
	c.ReadMutFast += o.ReadMutFast
	c.ReadMutSlow += o.ReadMutSlow
	c.WriteNonptrLocal += o.WriteNonptrLocal
	c.WriteNonptrDistant += o.WriteNonptrDistant
	c.WriteNonptrSlow += o.WriteNonptrSlow
	c.WriteInit += o.WriteInit
	c.WritePtrFast += o.WritePtrFast
	c.WritePtrNonProm += o.WritePtrNonProm
	c.WritePtrProm += o.WritePtrProm
	c.CASFast += o.CASFast
	c.CASSlow += o.CASSlow
	c.Promotions += o.Promotions
	c.PromotedObjects += o.PromotedObjects
	c.PromotedWords += o.PromotedWords
	c.FindMasterRetries += o.FindMasterRetries
}

// PromotedBytes reports the bytes copied by promotions.
func (c *Counters) PromotedBytes() int64 { return c.PromotedWords * 8 }

// Representative returns the name of the dominant mutable-operation class,
// used to regenerate the paper's Figure 9. Immutable reads are pervasive in
// every benchmark (footnote 1 in the paper), so they are reported only when
// no mutation happened at all. Promoting writes are orders of magnitude
// more expensive than the optimistic classes (Figure 8) and serialize
// through heap locks, so they dominate behaviour well before they dominate
// counts: one percent of the mutable operations suffices.
func (c *Counters) Representative() string {
	type cls struct {
		name string
		n    int64
	}
	classes := []cls{
		{"local non-pointer writes", c.WriteNonptrLocal},
		{"local non-promoting writes", c.WritePtrFast},
		{"distant non-pointer writes", c.WriteNonptrDistant + c.WriteNonptrSlow + c.CASFast + c.CASSlow},
		{"distant non-promoting writes", c.WritePtrNonProm},
		{"distant promoting writes", c.WritePtrProm},
	}
	var total int64
	best := cls{"immutable reads", 0}
	for _, cl := range classes {
		total += cl.n
		if cl.n > best.n {
			best = cl
		}
	}
	if total == 0 {
		return "immutable reads"
	}
	if c.WritePtrProm > 0 && c.WritePtrProm*100 >= total {
		return "distant promoting writes"
	}
	return best.name
}
