package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/mem"
)

// ExampleWritePtr walks a mutable pointer write through its three barrier
// tiers: the local fast path (object in the task's own leaf heap), the
// optimistic ancestor-pointee fast path (the store cannot entangle, no
// lock touched), and the promoting slow path (the pointee's graph is
// copied up to the object's heap under the write-locked climb).
func ExampleWritePtr() {
	root := heap.NewRoot()
	child := heap.NewChild(root) // the task's current (leaf) heap
	defer freeAll(root, child)
	var ops Counters

	cell := Alloc(nil, root, &ops, 1, 0, mem.TagRef) // mutable cell at the root
	localCell := Alloc(nil, child, &ops, 1, 0, mem.TagRef)
	rootVal := Alloc(nil, root, &ops, 0, 1, mem.TagRef)
	deepVal := Alloc(nil, child, &ops, 0, 1, mem.TagRef)
	WriteInitWord(&ops, deepVal, 0, 7)

	WritePtr(nil, child, nil, &ops, localCell, 0, deepVal) // local: plain store
	WritePtr(nil, child, nil, &ops, cell, 0, rootVal)      // ancestor pointee: optimistic store
	WritePtr(nil, child, nil, &ops, cell, 0, deepVal)      // entangling: promotes deepVal

	fmt.Println("fast:", ops.WritePtrFast, "ancestor:", ops.WritePtrAncestor,
		"promoting:", ops.WritePtrProm)
	m := ReadMutPtr(&ops, cell, 0)
	fmt.Println("promoted copy holds", ReadImmWord(&ops, m, 0), "at depth", heap.Of(m).Depth())
	// Output:
	// fast: 1 ancestor: 1 promoting: 1
	// promoted copy holds 7 at depth 0
}

// ExampleWritePtrBatch publishes a chain of locally built records into a
// shared array with one batched write: the task's promote buffer stages
// every entry, one lock climb promotes them all, and the links between the
// records mean each object is copied exactly once.
func ExampleWritePtrBatch() {
	root := heap.NewRoot()
	child := heap.NewChild(root)
	defer freeAll(root, child)
	var ops Counters

	arr := Alloc(nil, root, &ops, 4, 0, mem.TagArrPtr)
	cells := buildChain(child, &ops, 4, 10) // record i links to record i-1

	WritePtrBatch(nil, child, NewPromoteBuf(0), &ops, arr, 0, cells)

	fmt.Println("promoting writes:", ops.WritePtrProm,
		"climbs:", ops.PromoteClimbs, "objects copied:", ops.PromotedObjects)
	fmt.Println("slot 3 holds", ReadImmWord(&ops, ReadMutPtr(&ops, arr, 3), 0))
	// Output:
	// promoting writes: 4 climbs: 1 objects copied: 4
	// slot 3 holds 13
}

// ExampleReadMutWord shows the read barrier's master-copy discipline: an
// unpromoted object is read in place, and after a promotion the same
// handle transparently reads the master copy through its forwarding
// pointer.
func ExampleReadMutWord() {
	root := heap.NewRoot()
	child := heap.NewChild(root)
	defer freeAll(root, child)
	var ops Counters

	obj := Alloc(nil, child, &ops, 0, 1, mem.TagRef)
	WriteInitWord(&ops, obj, 0, 41)
	fmt.Println("before promotion:", ReadMutWord(&ops, obj, 0))

	cell := Alloc(nil, root, &ops, 1, 0, mem.TagRef)
	WritePtr(nil, child, nil, &ops, cell, 0, obj) // promotes obj to the root
	WriteNonptr(child, &ops, obj, 0, 42)          // redirected to the master
	fmt.Println("after promotion: ", ReadMutWord(&ops, obj, 0))
	fmt.Println("fast reads:", ops.ReadMutFast, "master reads:", ops.ReadMutSlow)
	// Output:
	// before promotion: 41
	// after promotion:  42
	// fast reads: 1 master reads: 1
}
