package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/mem"
)

// writePromote implements the promoting pointer write (Figure 7,
// writePromote). Three phases:
//
//  1. Write-lock every heap on the path from heapOf(ptr) up to the heap of
//     obj's master copy, deepest first. If obj gains a forwarding pointer
//     while we climb (a racing promotion moved it higher), keep locking
//     upward to the new master. Locking the intermediate heaps takes
//     ownership of the forwarding words of everything we may copy; locking
//     the target keeps concurrent findMaster calls from returning until the
//     promotion is complete.
//  2. Promote ptr's object graph into the master's heap and store the
//     promoted pointer into the field.
//  3. Unlock the path, shallowest first.
//
// Deadlock freedom: all multi-heap acquisitions in the system climb the
// hierarchy bottom-up — this path, and equally a zone collection's
// heap.LockZone, which write-locks its (disjointly admitted) zone deepest
// first — and lock waits therefore only target heaps strictly shallower
// than any lock held.
func writePromote(cc *mem.ChunkCache, ops *Counters, obj mem.ObjPtr, field int, ptr mem.ObjPtr) {
	src := heap.Of(ptr)
	target := heap.Of(obj)
	if target.Depth() >= src.Depth() {
		panic(fmt.Sprintf("core: writePromote precondition violated: target depth %d >= source depth %d",
			target.Depth(), src.Depth()))
	}

	locked := make([]*heap.Heap, 0, src.Depth()-target.Depth()+1)
	src.Lock(heap.WRITE)
	locked = append(locked, src)
	prevTop := src
	for {
		for h := prevTop.Parent(); ; h = h.Parent() {
			if h == nil {
				panic("core: promotion target is not an ancestor of the pointee's heap")
			}
			h.Lock(heap.WRITE)
			locked = append(locked, h)
			if h == target {
				break
			}
		}
		if !mem.HasFwd(obj) {
			break
		}
		// A racing promotion forwarded obj higher up; follow it and extend
		// the locked path to the new master's heap.
		prevTop = target
		obj = mem.LoadFwd(obj)
		target = heap.Of(obj)
	}

	promoted := promote(cc, ops, target, ptr)
	mem.StorePtrFieldAtomic(obj, field, promoted)
	ops.Promotions++

	for i := len(locked) - 1; i >= 0; i-- {
		locked[i].Unlock()
	}
}

// promote copies the object graph reachable from p into target (or reuses
// copies already at or above target) and returns the promoted pointer
// (Figure 7, promote). The paper presents it recursively; as it notes, the
// forwarding pointer is installed before any children are visited, which
// permits this worklist formulation: chase-and-copy each root, then scan
// the pointer fields of freshly made copies, replacing each with its own
// chased copy.
//
// The caller holds WRITE locks on every heap between (and including) p's
// heap and target, so all forwarding installations and field fix-ups here
// are protected.
func promote(cc *mem.ChunkCache, ops *Counters, target *heap.Heap, p mem.ObjPtr) mem.ObjPtr {
	td := target.Depth()
	var scan []mem.ObjPtr
	res := chaseCopy(cc, ops, target, td, p, &scan)
	for len(scan) > 0 {
		o := scan[len(scan)-1]
		scan = scan[:len(scan)-1]
		for i, n := 0, mem.NumPtrFields(o); i < n; i++ {
			q := mem.LoadPtrField(o, i)
			if q.IsNil() {
				continue
			}
			mem.StorePtrField(o, i, chaseCopy(cc, ops, target, td, q, &scan))
		}
	}
	return res
}

// chaseCopy resolves one object for promotion into target: objects already
// at or above target are used as-is; forwarding chains are followed; and a
// still-deep, unforwarded object is shallow-copied into target with its
// forwarding pointer installed before the copy (so racing optimistic
// writers can detect and redirect their updates).
func chaseCopy(cc *mem.ChunkCache, ops *Counters, target *heap.Heap, td int32, q mem.ObjPtr, scan *[]mem.ObjPtr) mem.ObjPtr {
	for {
		if heap.Of(q).Depth() <= td {
			return q
		}
		if f := mem.LoadFwd(q); !f.IsNil() {
			q = f
			continue
		}
		numPtr, numNonptr, tag := mem.NumPtrFields(q), mem.NumNonptrWords(q), mem.TagOf(q)
		fresh := target.FreshObjVia(cc, numPtr, numNonptr, tag)
		mem.StoreFwd(q, fresh)
		mem.CopyBody(fresh, q)
		ops.PromotedObjects++
		ops.PromotedWords += int64(mem.ObjectWords(numPtr, numNonptr))
		*scan = append(*scan, fresh)
		return fresh
	}
}

// PromoteTo copies the object graph reachable from p into target under the
// target heap's write lock, returning the promoted pointer. This entry
// point serves runtimes that promote eagerly on communication (the
// DLG/Manticore-style baseline), where the source heaps are quiescent and
// only the destination needs mutual exclusion. cc is the CALLING worker's
// chunk cache (nil for none); the target heap may be shared, but the cache
// is private to the goroutine running this call.
func PromoteTo(cc *mem.ChunkCache, ops *Counters, target *heap.Heap, p mem.ObjPtr) mem.ObjPtr {
	if p.IsNil() {
		return p
	}
	target.Lock(heap.WRITE)
	res := promote(cc, ops, target, p)
	target.Unlock()
	return res
}
