package core

import (
	"fmt"
	"time"

	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/trace"
)

// DefaultPromoteBufferObjects is the default capacity of a task's promote
// buffer: how many staged pointees a single WritePtrBatch lock climb may
// promote before a new climb starts. Capacity 1 turns batching off (one
// climb per promoting write — the ablation baseline).
const DefaultPromoteBufferObjects = 32

// climbSpanFloor separates climbs the flight recorder records as individual
// spans from those it coalesces. A promoting climb is often ~100 ns — close
// to the cost of one ring publish — so emitting every climb can tax the
// barrier by double-digit percentages on promotion-heavy mixes. Climbs at or
// above the floor get their own EvClimb complete span (these are the stalls
// worth seeing on a timeline); shorter ones accumulate in the task's
// PromoteBuf and go out as one EvClimb instant per climbCoalesce climbs,
// carrying their count, total time, objects, and max lock depth — the trace
// keeps full climb accounting at ~1/64 the publish rate.
const (
	climbSpanFloor = time.Microsecond
	climbCoalesce  = 64
)

// PromoteBuf is a task-private promotion scratch buffer. It serves two
// jobs on the promoting write path:
//
//   - it stages the (field, pointee) pairs of a WritePtrBatch so that one
//     lock climb — one bottom-up write-lock acquisition of the heap path —
//     promotes up to Cap pointees instead of re-acquiring per object, and
//   - it owns the reusable climb and copy worklists (the locked-heap path
//     and the promotion scan stack), so steady-state promotions allocate
//     nothing in Go.
//
// A PromoteBuf is single-goroutine (each rts.Task embeds one); the zero
// value is ready to use with the default capacity.
type PromoteBuf struct {
	max     int   // flush-group capacity; 0 = default, 1 = per-object climbs
	trackP1 int32 // trace track (worker ID + 1); the zero value is off-worker

	stagedFields []int
	stagedPtrs   []mem.ObjPtr

	locked []*heap.Heap // climb scratch: the write-locked heap path
	scan   []mem.ObjPtr // promotion worklist: fresh copies to field-fix

	// Sub-floor climb coalescing state (see climbSpanFloor / emitClimb).
	// Task-private like the rest of the buffer, so no atomics.
	shortClimbs uint32
	shortObjs   uint32
	shortDepth  uint32
	shortNanos  int64
}

// SetTrack records the worker ID whose timeline trace climb spans from this
// buffer should land on. Transient buffers (the zero value) attribute to
// the shared off-worker track.
func (b *PromoteBuf) SetTrack(worker int) { b.trackP1 = int32(worker) + 1 }

func (b *PromoteBuf) track() int { return int(b.trackP1) - 1 }

// NewPromoteBuf returns a buffer with the given flush capacity (in staged
// objects per climb). n == 0 selects DefaultPromoteBufferObjects; n == 1
// disables batching.
func NewPromoteBuf(n int) *PromoteBuf {
	b := &PromoteBuf{}
	b.SetCapacity(n)
	return b
}

// SetCapacity sets the flush-group capacity (0 = default, 1 = per-object).
func (b *PromoteBuf) SetCapacity(n int) {
	if n < 0 {
		n = 1
	}
	b.max = n
}

func (b *PromoteBuf) capacity() int {
	if b.max == 0 {
		return DefaultPromoteBufferObjects
	}
	return b.max
}

func (b *PromoteBuf) resetStage() {
	b.stagedFields = b.stagedFields[:0]
	b.stagedPtrs = b.stagedPtrs[:0]
}

func (b *PromoteBuf) stage(field int, q mem.ObjPtr) {
	b.stagedFields = append(b.stagedFields, field)
	b.stagedPtrs = append(b.stagedPtrs, q)
}

// lockPath write-locks every heap from src (inclusive, deepest) up to the
// master copy of obj, deepest first, re-extending the path if obj gains a
// forwarding pointer while we climb (a racing promotion moved it higher).
// It returns obj's master and the master's heap; the locked path is left
// in buf.locked for unlockPath. Locking the intermediate heaps takes
// ownership of the forwarding words of everything we may copy; locking the
// target keeps concurrent findMaster calls from returning until the
// promotion is complete.
//
// Deadlock freedom: all multi-heap acquisitions in the system climb the
// hierarchy bottom-up — this path, and equally a zone collection's
// heap.LockZone, which write-locks its (disjointly admitted) zone deepest
// first — and lock waits therefore only target heaps strictly shallower
// than any lock held.
func (b *PromoteBuf) lockPath(ops *Counters, src *heap.Heap, obj mem.ObjPtr) (mem.ObjPtr, *heap.Heap) {
	target := heap.Of(obj)
	b.locked = b.locked[:0]
	src.Lock(heap.WRITE)
	b.locked = append(b.locked, src)
	prevTop := src
	for {
		for h := prevTop.Parent(); ; h = h.Parent() {
			if h == nil {
				panic("core: promotion target is not an ancestor of the pointee's heap")
			}
			h.Lock(heap.WRITE)
			b.locked = append(b.locked, h)
			if h == target {
				break
			}
		}
		if !mem.HasFwd(obj) {
			break
		}
		// A racing promotion forwarded obj higher up; follow it and extend
		// the locked path to the new master's heap.
		prevTop = target
		obj = mem.LoadFwd(obj)
		target = heap.Of(obj)
	}
	ops.PromoteClimbs++
	ops.ClimbLockedHeaps += int64(len(b.locked))
	return obj, target
}

// emitClimb records one finished climb with the flight recorder. Climbs are
// the hottest emit site, so two costs are shaved: the timing reuses the
// start/elapsed the caller already measured for PromoteNanos (no extra clock
// reads), and climbs shorter than climbSpanFloor are coalesced into one
// summary instant per climbCoalesce climbs instead of publishing each.
func (b *PromoteBuf) emitClimb(start time.Time, elapsed time.Duration, batch, depth int) {
	if elapsed >= climbSpanFloor {
		trace.Complete(b.track(), trace.EvClimb, start, elapsed, 0,
			uint64(batch)<<32|uint64(depth))
		return
	}
	b.shortClimbs++
	b.shortObjs += uint32(batch)
	if uint32(depth) > b.shortDepth {
		b.shortDepth = uint32(depth)
	}
	b.shortNanos += elapsed.Nanoseconds()
	if b.shortClimbs >= climbCoalesce {
		b.FlushClimbTrace()
	}
}

// FlushClimbTrace publishes any coalesced sub-floor climbs as one EvClimb
// instant (aux = count<<8 | max lock depth, arg = total nanos<<32 | objects)
// and clears the accumulator. The runtime calls it when a task finishes so
// a task's tail of short climbs is not lost; a transient buffer's tail is
// dropped, which a flight recorder tolerates by design.
func (b *PromoteBuf) FlushClimbTrace() {
	if b.shortClimbs == 0 {
		return
	}
	depth := b.shortDepth
	if depth > 0xff {
		depth = 0xff
	}
	trace.Emit(b.track(), trace.EvClimb, b.shortClimbs<<8|depth,
		uint64(b.shortNanos)<<32|uint64(b.shortObjs))
	b.shortClimbs, b.shortObjs, b.shortDepth, b.shortNanos = 0, 0, 0, 0
}

// unlockPath releases the climb's locks, shallowest first.
func (b *PromoteBuf) unlockPath() {
	for i := len(b.locked) - 1; i >= 0; i-- {
		b.locked[i].Unlock()
		b.locked[i] = nil
	}
	b.locked = b.locked[:0]
}

// writePromote implements the promoting pointer write (Figure 7,
// writePromote). Three phases:
//
//  1. Write-lock every heap on the path from heapOf(ptr) up to the heap of
//     obj's master copy, deepest first (lockPath).
//  2. Promote ptr's object graph into the master's heap and store the
//     promoted pointer into the field.
//  3. Unlock the path, shallowest first.
//
// buf supplies the reusable climb and worklist scratch (nil for a
// transient buffer); the caller has already counted the write in
// WritePtrProm/Promotions.
func writePromote(cc *mem.ChunkCache, buf *PromoteBuf, ops *Counters, obj mem.ObjPtr, field int, ptr mem.ObjPtr) {
	if buf == nil {
		buf = &PromoteBuf{}
	}
	src := heap.Of(ptr)
	target := heap.Of(obj)
	if target.Depth() >= src.Depth() {
		panic(fmt.Sprintf("core: writePromote precondition violated: target depth %d >= source depth %d",
			target.Depth(), src.Depth()))
	}
	start := time.Now()
	obj, target = buf.lockPath(ops, src, obj)
	promoted := promote(cc, buf, ops, target, ptr)
	mem.StorePtrFieldAtomic(obj, field, promoted)
	depth := len(buf.locked)
	buf.unlockPath()
	elapsed := time.Since(start)
	ops.PromoteNanos += elapsed.Nanoseconds()
	if trace.Enabled() {
		buf.emitClimb(start, elapsed, 1, depth)
	}
}

// writePromoteBatch is writePromote amortized over a staged batch: fields
// and ptrs are parallel slices of promoting writes to obj (all pointees
// strictly deeper than obj's master at staging time). ONE lock climb —
// from the deepest staged pointee's heap up to the master — covers every
// staged promotion: all other pointee heaps lie on the writing task's root
// path between the two ends, so their forwarding words are owned by the
// same locked path. Pointees promoted by the same flush share the
// worklist, so a subgraph reachable from several of them is copied exactly
// once and its sharing structure is preserved across the batch.
func writePromoteBatch(cc *mem.ChunkCache, buf *PromoteBuf, ops *Counters, obj mem.ObjPtr, fields []int, ptrs []mem.ObjPtr) {
	src := heap.Of(ptrs[0])
	for _, q := range ptrs[1:] {
		if h := heap.Of(q); h.Depth() > src.Depth() {
			src = h
		}
	}
	target := heap.Of(obj)
	if target.Depth() >= src.Depth() {
		panic(fmt.Sprintf("core: writePromoteBatch precondition violated: target depth %d >= source depth %d",
			target.Depth(), src.Depth()))
	}
	start := time.Now()
	obj, target = buf.lockPath(ops, src, obj)
	for i, q := range ptrs {
		mem.StorePtrFieldAtomic(obj, fields[i], promote(cc, buf, ops, target, q))
	}
	depth := len(buf.locked)
	buf.unlockPath()
	elapsed := time.Since(start)
	ops.PromoteNanos += elapsed.Nanoseconds()
	if trace.Enabled() {
		buf.emitClimb(start, elapsed, len(ptrs), depth)
	}
}

// promote copies the object graph reachable from p into target (or reuses
// copies already at or above target) and returns the promoted pointer
// (Figure 7, promote). The paper presents it recursively; as it notes, the
// forwarding pointer is installed before any children are visited, which
// permits this worklist formulation: chase-and-copy each root, then scan
// the pointer fields of freshly made copies, replacing each with its own
// chased copy. The worklist lives in buf and is reused climb to climb.
//
// The caller holds WRITE locks on every heap between (and including) p's
// heap and target, so all forwarding installations and field fix-ups here
// are protected.
func promote(cc *mem.ChunkCache, buf *PromoteBuf, ops *Counters, target *heap.Heap, p mem.ObjPtr) mem.ObjPtr {
	td := target.Depth()
	buf.scan = buf.scan[:0]
	res := chaseCopy(cc, ops, target, td, p, &buf.scan)
	for len(buf.scan) > 0 {
		o := buf.scan[len(buf.scan)-1]
		buf.scan = buf.scan[:len(buf.scan)-1]
		for i, n := 0, mem.NumPtrFields(o); i < n; i++ {
			q := mem.LoadPtrField(o, i)
			if q.IsNil() {
				continue
			}
			mem.StorePtrField(o, i, chaseCopy(cc, ops, target, td, q, &buf.scan))
		}
	}
	return res
}

// chaseCopy resolves one object for promotion into target: objects already
// at or above target are used as-is; forwarding chains are followed; and a
// still-deep, unforwarded object is shallow-copied into target with its
// forwarding pointer installed before the copy (so racing optimistic
// writers can detect and redirect their updates).
func chaseCopy(cc *mem.ChunkCache, ops *Counters, target *heap.Heap, td int32, q mem.ObjPtr, scan *[]mem.ObjPtr) mem.ObjPtr {
	for {
		if heap.Of(q).Depth() <= td {
			return q
		}
		if f := mem.LoadFwd(q); !f.IsNil() {
			q = f
			continue
		}
		numPtr, numNonptr, tag := mem.NumPtrFields(q), mem.NumNonptrWords(q), mem.TagOf(q)
		fresh := target.FreshObjVia(cc, numPtr, numNonptr, tag)
		mem.StoreFwd(q, fresh)
		mem.CopyBody(fresh, q)
		ops.PromotedObjects++
		ops.PromotedWords += int64(mem.ObjectWords(numPtr, numNonptr))
		*scan = append(*scan, fresh)
		return fresh
	}
}

// PromoteTo copies the object graph reachable from p into target under the
// target heap's write lock, returning the promoted pointer. This entry
// point serves runtimes that promote eagerly on communication (the
// DLG/Manticore-style baseline), where the source heaps are quiescent and
// only the destination needs mutual exclusion. cc is the CALLING worker's
// chunk cache (nil for none); the target heap may be shared, but the cache
// is private to the goroutine running this call.
func PromoteTo(cc *mem.ChunkCache, ops *Counters, target *heap.Heap, p mem.ObjPtr) mem.ObjPtr {
	if p.IsNil() {
		return p
	}
	target.Lock(heap.WRITE)
	res := promote(cc, &PromoteBuf{}, ops, target, p)
	target.Unlock()
	return res
}
