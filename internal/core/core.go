package core
