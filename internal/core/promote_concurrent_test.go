package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/heap"
	"repro/internal/mem"
)

// TestConcurrentPromotionsToSharedAncestor reproduces the paper's central
// race: sibling tasks repeatedly write locally allocated objects into
// mutable cells at the root, forcing concurrent promotions into the same
// heap, while other accesses chase master copies. Run under -race.
func TestConcurrentPromotionsToSharedAncestor(t *testing.T) {
	runConcurrentPromotions(t, func(cur *heap.Heap, ops *Counters, cell mem.ObjPtr, head mem.ObjPtr) {
		WritePtr(nil, cur, nil, ops, cell, 0, head)
	})
}

// TestConcurrentPromotionsSlowPathAblation runs the identical race with
// every write forced through the master-copy lookup (the
// NoBarrierFastPath ablation): the paper-faithful baseline must satisfy
// the same invariants as the fast-pathed barrier.
func TestConcurrentPromotionsSlowPathAblation(t *testing.T) {
	runConcurrentPromotions(t, func(cur *heap.Heap, ops *Counters, cell mem.ObjPtr, head mem.ObjPtr) {
		WritePtrSlow(nil, nil, ops, cell, 0, head)
	})
}

func runConcurrentPromotions(t *testing.T, writePtr func(cur *heap.Heap, ops *Counters, cell, head mem.ObjPtr)) {
	root := heap.NewRoot()
	defer freeAll(root)
	var setup Counters

	const siblings = 4
	const writes = 60

	cells := make([]mem.ObjPtr, siblings)
	for i := range cells {
		cells[i] = Alloc(nil, root, &setup, 1, 0, mem.TagRef)
	}

	children := make([]*heap.Heap, siblings)
	for i := range children {
		children[i] = heap.NewChild(root)
	}
	defer freeAll(children...)

	var wg sync.WaitGroup
	opsPer := make([]Counters, siblings)
	for s := 0; s < siblings; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			cur := children[s]
			ops := &opsPer[s]
			for i := 0; i < writes; i++ {
				// Build a small local list and publish it through a root
				// cell; half the time through a sibling's cell to force
				// promotion contention on the same target heap.
				head := mem.NilPtr
				for j := 0; j < 3; j++ {
					cons := Alloc(nil, cur, ops, 1, 1, mem.TagCons)
					WriteInitWord(ops, cons, 0, uint64(s*1000+i))
					WriteInitPtr(ops, cons, 0, head)
					head = cons
				}
				cell := cells[(s+i)%siblings]
				writePtr(cur, ops, cell, head)

				// Read some other cell through the master discipline.
				got := ReadMutPtr(ops, cells[(s+i+1)%siblings], 0)
				if !got.IsNil() {
					if heap.Of(got).Depth() != 0 {
						t.Error("cell exposed an unpromoted object")
						return
					}
					_ = ReadImmWord(ops, got, 0)
				}
			}
		}(s)
	}
	wg.Wait()

	var total Counters
	total.Add(&setup)
	for i := range opsPer {
		total.Add(&opsPer[i])
	}
	if total.Promotions != siblings*writes {
		t.Fatalf("promotions = %d, want %d", total.Promotions, siblings*writes)
	}
	if err := CheckSubtree(append([]*heap.Heap{root}, children...)...); err != nil {
		t.Fatal(err)
	}
	// Every published list must be fully promoted and intact.
	var ops Counters
	for _, cell := range cells {
		p := ReadMutPtr(&ops, cell, 0)
		n := 0
		for !p.IsNil() {
			if heap.Of(p) != root {
				t.Fatal("published list node below root")
			}
			p = ReadImmPtr(&ops, p, 0)
			n++
		}
		if n != 0 && n != 3 {
			t.Fatalf("published list length %d, want 0 or 3", n)
		}
	}
}

// TestConcurrentWritesDuringPromotion checks the optimistic
// write-then-recheck protocol: a writer updating a non-pointer field while
// another task promotes the object must never lose the update.
func TestConcurrentWritesDuringPromotion(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		root := heap.NewRoot()
		child := heap.NewChild(root)
		var setup Counters
		cell := Alloc(nil, root, &setup, 1, 0, mem.TagRef)
		obj := Alloc(nil, child, &setup, 0, 1, mem.TagRef)
		WriteInitWord(&setup, obj, 0, 1)

		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // promoter (the child task publishing its object)
			defer wg.Done()
			var ops Counters
			WritePtr(nil, child, nil, &ops, cell, 0, obj)
		}()
		go func() { // writer racing the promotion through the old pointer
			defer wg.Done()
			var ops Counters
			WriteNonptr(child, &ops, obj, 0, 2)
		}()
		wg.Wait()

		var ops Counters
		if got := ReadMutWord(&ops, obj, 0); got != 2 {
			t.Fatalf("iter %d: update lost, master holds %d", iter, got)
		}
		freeAll(root, child)
	}
}

// randGraph builds a random object graph (possibly with sharing) of n
// tuples in h, returning the roots. Edges only point to already-created
// nodes, so the graph is acyclic; values are derived from the node index.
func randGraph(h *heap.Heap, ops *Counters, rng *rand.Rand, n int) []mem.ObjPtr {
	nodes := make([]mem.ObjPtr, n)
	for i := 0; i < n; i++ {
		deg := rng.Intn(3)
		if i == 0 {
			deg = 0
		}
		p := Alloc(nil, h, ops, deg, 1, mem.TagTuple)
		WriteInitWord(ops, p, 0, uint64(i)*2654435761)
		for j := 0; j < deg; j++ {
			WriteInitPtr(ops, p, j, nodes[rng.Intn(i)])
		}
		nodes[i] = p
	}
	return nodes
}

// graphChecksum folds values and shape over the reachable graph.
func graphChecksum(p mem.ObjPtr, seen map[uint64]int, order *int) uint64 {
	if p.IsNil() {
		return 11
	}
	if id, ok := seen[uint64(p)]; ok {
		return uint64(id)*31 + 7 // sharing-sensitive
	}
	*order++
	seen[uint64(p)] = *order
	sum := mem.LoadWordField(p, 0)
	for i, n := 0, mem.NumPtrFields(p); i < n; i++ {
		sum = sum*1099511628211 ^ graphChecksum(mem.LoadPtrField(p, i), seen, order)
	}
	return sum
}

// TestPromotionPreservesGraphs is the property test: promoting the root of
// a random object graph yields a copy with identical values, shape, and
// sharing structure, entirely at or above the target heap.
func TestPromotionPreservesGraphs(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz)%60 + 1
		root := heap.NewRoot()
		child := heap.NewChild(root)
		defer freeAll(root, child)
		var ops Counters
		nodes := randGraph(child, &ops, rng, n)
		top := nodes[len(nodes)-1]

		before := graphChecksum(top, map[uint64]int{}, new(int))

		cell := Alloc(nil, root, &ops, 1, 0, mem.TagRef)
		WritePtr(nil, child, nil, &ops, cell, 0, top)
		promoted := ReadMutPtr(&ops, cell, 0)

		after := graphChecksum(promoted, map[uint64]int{}, new(int))
		if before != after {
			t.Logf("checksum mismatch: %x vs %x", before, after)
			return false
		}
		// Verify everything reachable from the promoted root is in root's heap.
		var stack []mem.ObjPtr
		seen := map[mem.ObjPtr]bool{}
		stack = append(stack, promoted)
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if p.IsNil() || seen[p] {
				continue
			}
			seen[p] = true
			if heap.Of(p) != root {
				t.Logf("promoted node %v not in root heap", p)
				return false
			}
			for i, deg := 0, mem.NumPtrFields(p); i < deg; i++ {
				stack = append(stack, mem.LoadPtrField(p, i))
			}
		}
		return CheckSubtree(root, child) == nil
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
