package core

import (
	"repro/internal/heap"
	"repro/internal/mem"
)

// Alloc allocates a fresh object in the task's current heap (Figure 6,
// alloc): the caller passes its current — necessarily leaf — heap, and its
// worker's chunk cache (nil when it runs off-worker) so that the heap's
// chunks are acquired without shared-state operations.
func Alloc(cc *mem.ChunkCache, cur *heap.Heap, ops *Counters, numPtr, numNonptr int, tag mem.Tag) mem.ObjPtr {
	ops.Allocs++
	ops.AllocWords += int64(mem.ObjectWords(numPtr, numNonptr))
	return cur.FreshObjVia(cc, numPtr, numNonptr, tag)
}

// ReadImmWord reads an immutable non-pointer field: a plain load with no
// barrier of any kind. All copies of an object agree on immutable fields,
// so forwarding pointers are irrelevant here (Figure 6, readImmutable).
func ReadImmWord(ops *Counters, p mem.ObjPtr, i int) uint64 {
	ops.ReadImm++
	return mem.LoadWordField(p, i)
}

// ReadImmPtr reads an immutable pointer field with a plain load.
func ReadImmPtr(ops *Counters, p mem.ObjPtr, i int) mem.ObjPtr {
	ops.ReadImm++
	return mem.LoadPtrField(p, i)
}

// FindMaster walks obj's forwarding chain to the master copy and returns it
// with its heap READ-locked; the caller must Unlock the returned heap
// (Figure 6, findMaster). The double-checked pattern walks without locking,
// locks the candidate's heap in shared mode, and retries if a promotion
// installed a forwarding pointer in the meantime.
func FindMaster(ops *Counters, obj mem.ObjPtr) (mem.ObjPtr, *heap.Heap) {
	for {
		for {
			f := mem.LoadFwd(obj)
			if f.IsNil() {
				break
			}
			obj = f
		}
		h := heap.Of(obj)
		h.Lock(heap.READ)
		if !mem.HasFwd(obj) {
			return obj, h
		}
		h.Unlock()
		ops.FindMasterRetries++
	}
}

// ReadMutWord reads a mutable non-pointer field (Figure 6, readMutable).
// Fast path: read optimistically, then check for a forwarding pointer;
// objects that were never promoted pay a couple of instructions.
func ReadMutWord(ops *Counters, p mem.ObjPtr, i int) uint64 {
	res := mem.LoadWordFieldAtomic(p, i)
	if !mem.HasFwd(p) {
		ops.ReadMutFast++
		return res
	}
	ops.ReadMutSlow++
	m, h := FindMaster(ops, p)
	res = mem.LoadWordFieldAtomic(m, i)
	h.Unlock()
	return res
}

// ReadMutPtr reads a mutable pointer field with the same discipline.
func ReadMutPtr(ops *Counters, p mem.ObjPtr, i int) mem.ObjPtr {
	res := mem.LoadPtrFieldAtomic(p, i)
	if !mem.HasFwd(p) {
		ops.ReadMutFast++
		return res
	}
	ops.ReadMutSlow++
	m, h := FindMaster(ops, p)
	res = mem.LoadPtrFieldAtomic(m, i)
	h.Unlock()
	return res
}

// WriteNonptr writes a mutable non-pointer field (Figure 6, writeNonptr).
// Non-pointer data can never entangle the hierarchy, so the write proceeds
// optimistically; if the object turns out to have been promoted, the write
// is repeated on the master copy. The fwd-install-before-copy ordering in
// promotion guarantees no update is lost: either the promotion's copy sees
// our optimistic store, or we see its forwarding pointer and rewrite the
// master (whose heap lock we wait on until the promotion finishes).
func WriteNonptr(cur *heap.Heap, ops *Counters, p mem.ObjPtr, i int, v uint64) {
	mem.StoreWordFieldAtomic(p, i, v)
	if !mem.HasFwd(p) {
		// The local/distant distinction is bookkeeping for the Figure 9
		// taxonomy; the write itself took the same optimistic fast path
		// either way.
		if heap.Of(p) == cur {
			ops.WriteNonptrLocal++
		} else {
			ops.WriteNonptrDistant++
		}
		return
	}
	ops.WriteNonptrSlow++
	m, h := FindMaster(ops, p)
	mem.StoreWordFieldAtomic(m, i, v)
	h.Unlock()
}

// CASWord performs a compare-and-swap on a mutable non-pointer field.
//
// Unlike plain writes, a compare-and-swap cannot use the optimistic
// write-then-recheck pattern: if a promotion snapshots the field between
// the optimistic CAS and its forwarding check, the operation cannot tell
// whether its transition survived on the master, and callers that retry on
// failure would double-apply. Two linearizable paths remain:
//
//   - objects in the hierarchy root (depth 0) can never be promoted —
//     nothing is shallower — so a direct CAS is safe. This covers the
//     benchmarks' usage (visited arrays and counters allocated at the
//     root before the parallel phase), and DLG-style runtimes where all
//     mutable objects live in the global heap.
//   - otherwise the CAS executes on the master copy under its heap's read
//     lock, which excludes in-flight promotions of the master.
func CASWord(ops *Counters, p mem.ObjPtr, i int, old, new uint64) bool {
	if heap.Of(p).Depth() == 0 {
		ops.CASFast++
		return mem.CASWordField(p, i, old, new)
	}
	ops.CASSlow++
	m, h := FindMaster(ops, p)
	ok := mem.CASWordField(m, i, old, new)
	h.Unlock()
	return ok
}

// WriteInitWord performs an initializing store into a freshly allocated
// object that has not yet been shared. Array construction (e.g. parallel
// tabulation of numeric sequences) uses this; it is not mutation, which is
// why the paper's pure benchmarks are all classed as "immutable reads".
func WriteInitWord(ops *Counters, p mem.ObjPtr, i int, v uint64) {
	ops.WriteInit++
	mem.StoreWordField(p, i, v)
}

// WriteInitPtr performs an initializing pointer store. The caller asserts
// that the store cannot entangle the hierarchy (the value lives in the same
// heap as the object, or an ancestor of it). The disentanglement checker
// verifies this in tests.
func WriteInitPtr(ops *Counters, p mem.ObjPtr, i int, q mem.ObjPtr) {
	ops.WriteInit++
	mem.StorePtrField(p, i, q)
}

// WritePtr writes a mutable pointer field (Figure 7, writePtr). Two fast
// paths cover the writes that cannot entangle, in increasing cost:
//
//   - Local: the object is in the current task's own (leaf) heap with no
//     forwarding pointer. Promotion is impossible there (nothing deeper
//     exists), so a plain store suffices.
//   - Ancestor pointee: the object's heap is at least as deep as the
//     pointee's, so the stored pointer goes sideways or upward and cannot
//     create a down-pointer. Since both heaps lie on the writing task's
//     root path, the depth comparison is an ancestry test. The store is
//     optimistic — write first, then check for a forwarding pointer — the
//     same protocol as WriteNonptr: either the racing promotion's copy
//     phase observes our store, or we observe its forwarding pointer and
//     redo the write through the master lookup below.
//
// Neither fast path touches a heap lock; FindMaster's read-lock climb is
// reserved for forwarded objects and for writes that must promote. buf is
// the task's promote buffer (scratch for the climb; nil for a transient
// one) and cc the calling worker's chunk cache, supplying the target
// heap's chunks during promotion (nil for none).
func WritePtr(cc *mem.ChunkCache, cur *heap.Heap, buf *PromoteBuf, ops *Counters, obj mem.ObjPtr, field int, ptr mem.ObjPtr) {
	ho := heap.Of(obj)
	if ho == cur && !mem.HasFwd(obj) {
		ops.WritePtrFast++
		mem.StorePtrFieldAtomic(obj, field, ptr)
		return
	}
	if ptr.IsNil() || ho.Depth() >= heap.Of(ptr).Depth() {
		mem.StorePtrFieldAtomic(obj, field, ptr)
		if !mem.HasFwd(obj) {
			ops.WritePtrAncestor++
			return
		}
		// The object was promoted before or during the store: the write may
		// have hit a stale copy. Fall through and redo it on the master
		// (the forwarding chain is permanent, so the slow path cannot miss).
	}
	WritePtrSlow(cc, buf, ops, obj, field, ptr)
}

// WritePtrSlow is WritePtr without the fast paths: every write goes
// through the master-copy lookup under the heap read lock, the
// paper-faithful baseline. It exists as an ablation knob (the paper's
// implementation "prioritizes the efficiency of updates to local objects";
// this measures what that priority — and the ancestor fast path on top of
// it — buys) and as the write path for contexts with no current-heap
// notion.
func WritePtrSlow(cc *mem.ChunkCache, buf *PromoteBuf, ops *Counters, obj mem.ObjPtr, field int, ptr mem.ObjPtr) {
	m, h := FindMaster(ops, obj)
	if ptr.IsNil() || h.Depth() >= heap.Of(ptr).Depth() {
		ops.WritePtrNonProm++
		mem.StorePtrFieldAtomic(m, field, ptr)
		h.Unlock()
		return
	}
	h.Unlock()
	ops.WritePtrProm++
	ops.Promotions++
	writePromote(cc, buf, ops, m, field, ptr)
}

// WritePtrBatch writes ptrs[j] into pointer field field0+j of obj for
// every j — an array-of-pointers publish (visit lists, env packs, index
// slices). Each field write is individually linearizable, exactly as if
// issued through WritePtr in order; the batch is not atomic as a group.
// What the batch buys is amortization: all writes that need promotion
// share ONE lock climb per buffer flush (up to buf's capacity of staged
// pointees), instead of re-acquiring the heap path per object, and
// pointees promoted by the same flush share the promotion worklist, so a
// subgraph reachable from several of them is copied once.
func WritePtrBatch(cc *mem.ChunkCache, cur *heap.Heap, buf *PromoteBuf, ops *Counters, obj mem.ObjPtr, field0 int, ptrs []mem.ObjPtr) {
	if len(ptrs) == 0 {
		return
	}
	if heap.Of(obj) == cur && !mem.HasFwd(obj) {
		ops.WritePtrFast += int64(len(ptrs))
		mem.StorePtrFieldsAtomic(obj, field0, ptrs)
		return
	}
	if buf == nil {
		buf = &PromoteBuf{}
	}
	m, h := FindMaster(ops, obj)
	d := h.Depth()
	buf.resetStage()
	for j, q := range ptrs {
		if q.IsNil() || d >= heap.Of(q).Depth() {
			ops.WritePtrNonProm++
			mem.StorePtrFieldAtomic(m, field0+j, q)
			continue
		}
		buf.stage(field0+j, q)
	}
	h.Unlock()
	staged := len(buf.stagedFields)
	if staged == 0 {
		return
	}
	ops.WritePtrProm += int64(staged)
	ops.Promotions += int64(staged)
	// Flush the staged promoting writes in groups of the buffer's capacity:
	// one climb per group. Capacity 1 degenerates to per-object promotion
	// (the batching ablation). Only writes that actually shared a climb
	// with another count as batched.
	group := buf.capacity()
	for lo := 0; lo < staged; lo += group {
		hi := lo + group
		if hi > staged {
			hi = staged
		}
		if hi-lo > 1 {
			ops.WritePtrBatched += int64(hi - lo)
		}
		writePromoteBatch(cc, buf, ops, m, buf.stagedFields[lo:hi], buf.stagedPtrs[lo:hi])
	}
}
