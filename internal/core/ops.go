package core

import (
	"repro/internal/heap"
	"repro/internal/mem"
)

// Alloc allocates a fresh object in the task's current heap (Figure 6,
// alloc): the caller passes its current — necessarily leaf — heap, and its
// worker's chunk cache (nil when it runs off-worker) so that the heap's
// chunks are acquired without shared-state operations.
func Alloc(cc *mem.ChunkCache, cur *heap.Heap, ops *Counters, numPtr, numNonptr int, tag mem.Tag) mem.ObjPtr {
	ops.Allocs++
	ops.AllocWords += int64(mem.ObjectWords(numPtr, numNonptr))
	return cur.FreshObjVia(cc, numPtr, numNonptr, tag)
}

// ReadImmWord reads an immutable non-pointer field: a plain load with no
// barrier of any kind. All copies of an object agree on immutable fields,
// so forwarding pointers are irrelevant here (Figure 6, readImmutable).
func ReadImmWord(ops *Counters, p mem.ObjPtr, i int) uint64 {
	ops.ReadImm++
	return mem.LoadWordField(p, i)
}

// ReadImmPtr reads an immutable pointer field with a plain load.
func ReadImmPtr(ops *Counters, p mem.ObjPtr, i int) mem.ObjPtr {
	ops.ReadImm++
	return mem.LoadPtrField(p, i)
}

// FindMaster walks obj's forwarding chain to the master copy and returns it
// with its heap READ-locked; the caller must Unlock the returned heap
// (Figure 6, findMaster). The double-checked pattern walks without locking,
// locks the candidate's heap in shared mode, and retries if a promotion
// installed a forwarding pointer in the meantime.
func FindMaster(ops *Counters, obj mem.ObjPtr) (mem.ObjPtr, *heap.Heap) {
	for {
		for {
			f := mem.LoadFwd(obj)
			if f.IsNil() {
				break
			}
			obj = f
		}
		h := heap.Of(obj)
		h.Lock(heap.READ)
		if !mem.HasFwd(obj) {
			return obj, h
		}
		h.Unlock()
		ops.FindMasterRetries++
	}
}

// ReadMutWord reads a mutable non-pointer field (Figure 6, readMutable).
// Fast path: read optimistically, then check for a forwarding pointer;
// objects that were never promoted pay a couple of instructions.
func ReadMutWord(ops *Counters, p mem.ObjPtr, i int) uint64 {
	res := mem.LoadWordFieldAtomic(p, i)
	if !mem.HasFwd(p) {
		ops.ReadMutFast++
		return res
	}
	ops.ReadMutSlow++
	m, h := FindMaster(ops, p)
	res = mem.LoadWordFieldAtomic(m, i)
	h.Unlock()
	return res
}

// ReadMutPtr reads a mutable pointer field with the same discipline.
func ReadMutPtr(ops *Counters, p mem.ObjPtr, i int) mem.ObjPtr {
	res := mem.LoadPtrFieldAtomic(p, i)
	if !mem.HasFwd(p) {
		ops.ReadMutFast++
		return res
	}
	ops.ReadMutSlow++
	m, h := FindMaster(ops, p)
	res = mem.LoadPtrFieldAtomic(m, i)
	h.Unlock()
	return res
}

// WriteNonptr writes a mutable non-pointer field (Figure 6, writeNonptr).
// Non-pointer data can never entangle the hierarchy, so the write proceeds
// optimistically; if the object turns out to have been promoted, the write
// is repeated on the master copy. The fwd-install-before-copy ordering in
// promotion guarantees no update is lost: either the promotion's copy sees
// our optimistic store, or we see its forwarding pointer and rewrite the
// master (whose heap lock we wait on until the promotion finishes).
func WriteNonptr(cur *heap.Heap, ops *Counters, p mem.ObjPtr, i int, v uint64) {
	mem.StoreWordFieldAtomic(p, i, v)
	if !mem.HasFwd(p) {
		// The local/distant distinction is bookkeeping for the Figure 9
		// taxonomy; the write itself took the same optimistic fast path
		// either way.
		if heap.Of(p) == cur {
			ops.WriteNonptrLocal++
		} else {
			ops.WriteNonptrDistant++
		}
		return
	}
	ops.WriteNonptrSlow++
	m, h := FindMaster(ops, p)
	mem.StoreWordFieldAtomic(m, i, v)
	h.Unlock()
}

// CASWord performs a compare-and-swap on a mutable non-pointer field.
//
// Unlike plain writes, a compare-and-swap cannot use the optimistic
// write-then-recheck pattern: if a promotion snapshots the field between
// the optimistic CAS and its forwarding check, the operation cannot tell
// whether its transition survived on the master, and callers that retry on
// failure would double-apply. Two linearizable paths remain:
//
//   - objects in the hierarchy root (depth 0) can never be promoted —
//     nothing is shallower — so a direct CAS is safe. This covers the
//     benchmarks' usage (visited arrays and counters allocated at the
//     root before the parallel phase), and DLG-style runtimes where all
//     mutable objects live in the global heap.
//   - otherwise the CAS executes on the master copy under its heap's read
//     lock, which excludes in-flight promotions of the master.
func CASWord(ops *Counters, p mem.ObjPtr, i int, old, new uint64) bool {
	if heap.Of(p).Depth() == 0 {
		ops.CASFast++
		return mem.CASWordField(p, i, old, new)
	}
	ops.CASSlow++
	m, h := FindMaster(ops, p)
	ok := mem.CASWordField(m, i, old, new)
	h.Unlock()
	return ok
}

// WriteInitWord performs an initializing store into a freshly allocated
// object that has not yet been shared. Array construction (e.g. parallel
// tabulation of numeric sequences) uses this; it is not mutation, which is
// why the paper's pure benchmarks are all classed as "immutable reads".
func WriteInitWord(ops *Counters, p mem.ObjPtr, i int, v uint64) {
	ops.WriteInit++
	mem.StoreWordField(p, i, v)
}

// WriteInitPtr performs an initializing pointer store. The caller asserts
// that the store cannot entangle the hierarchy (the value lives in the same
// heap as the object, or an ancestor of it). The disentanglement checker
// verifies this in tests.
func WriteInitPtr(ops *Counters, p mem.ObjPtr, i int, q mem.ObjPtr) {
	ops.WriteInit++
	mem.StorePtrField(p, i, q)
}

// WritePtr writes a mutable pointer field (Figure 7, writePtr). The fast
// path covers objects in the current task's own (leaf) heap with no
// forwarding pointer — promotion is impossible there. Otherwise the master
// copy decides: if it is at least as deep as the pointee the write cannot
// entangle and proceeds under the read lock; if it is shallower, the
// pointee must first be promoted into the master's heap — cc, the calling
// worker's chunk cache, supplies the target heap's chunks (nil for none).
func WritePtr(cc *mem.ChunkCache, cur *heap.Heap, ops *Counters, obj mem.ObjPtr, field int, ptr mem.ObjPtr) {
	if heap.Of(obj) == cur && !mem.HasFwd(obj) {
		ops.WritePtrFast++
		mem.StorePtrFieldAtomic(obj, field, ptr)
		return
	}
	WritePtrSlow(cc, ops, obj, field, ptr)
}

// WritePtrSlow is WritePtr without the local fast path: every write goes
// through the master-copy lookup. It exists as an ablation knob (the
// paper's implementation "prioritizes the efficiency of updates to local
// objects"; this measures what that priority buys) and as the write path
// for contexts with no current-heap notion.
func WritePtrSlow(cc *mem.ChunkCache, ops *Counters, obj mem.ObjPtr, field int, ptr mem.ObjPtr) {
	m, h := FindMaster(ops, obj)
	if ptr.IsNil() || h.Depth() >= heap.Of(ptr).Depth() {
		ops.WritePtrNonProm++
		mem.StorePtrFieldAtomic(m, field, ptr)
		h.Unlock()
		return
	}
	h.Unlock()
	ops.WritePtrProm++
	writePromote(cc, ops, m, field, ptr)
}
