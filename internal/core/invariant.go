package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/mem"
)

// IsAncestorOrSelf reports whether anc is h or an ancestor of h in the
// heap hierarchy (both resolved through joins).
func IsAncestorOrSelf(anc, h *heap.Heap) bool {
	return anc.IsAncestorOf(h)
}

// EntanglementError describes a pointer that violates disentanglement.
type EntanglementError struct {
	From, To         mem.ObjPtr
	FromHeap, ToHeap *heap.Heap
	Field            int
}

func (e *EntanglementError) Error() string {
	return fmt.Sprintf("entangled pointer: %v (in %v) field %d -> %v (in %v): target heap is not an ancestor",
		e.From, e.FromHeap, e.Field, e.To, e.ToHeap)
}

// CheckHeap walks every object in h's chunks and verifies that each pointer
// field refers to an object in h or one of h's ancestors — the
// disentanglement invariant (§2). It is a debugging and testing oracle;
// the hierarchy must be quiescent while it runs.
func CheckHeap(h *heap.Heap) error {
	h = h.Resolve()
	for c := h.Chunks(); c != nil; c = c.Next {
		for off := uint32(0); off < c.Used(); {
			p := mem.MakeObjPtr(c.ID(), off)
			for i, n := 0, mem.NumPtrFields(p); i < n; i++ {
				q := mem.LoadPtrFieldAtomic(p, i)
				if q.IsNil() {
					continue
				}
				hq := heap.Of(q)
				if !IsAncestorOrSelf(hq, h) {
					return &EntanglementError{From: p, To: q, FromHeap: h, ToHeap: hq, Field: i}
				}
			}
			off += uint32(mem.SizeWords(p))
		}
	}
	return nil
}

// CheckSubtree verifies disentanglement for a heap and, recursively, the
// given descendant heaps (callers supply the live descendants, since the
// hierarchy does not keep downward links).
func CheckSubtree(heaps ...*heap.Heap) error {
	for _, h := range heaps {
		if !h.IsAlive() {
			continue
		}
		if err := CheckHeap(h); err != nil {
			return err
		}
	}
	return nil
}
