package core

import (
	"testing"

	"repro/internal/heap"
	"repro/internal/mem"
)

// hierarchy builds a root-child-grandchild chain for tests.
func hierarchy() (root, child, grand *heap.Heap) {
	root = heap.NewRoot()
	child = heap.NewChild(root)
	grand = heap.NewChild(child)
	return
}

func freeAll(hs ...*heap.Heap) {
	for _, h := range hs {
		if h.IsAlive() {
			heap.FreeChunkList(h.TakeChunks())
		}
	}
}

func TestAllocCounts(t *testing.T) {
	root := heap.NewRoot()
	defer freeAll(root)
	var ops Counters
	p := Alloc(nil, root, &ops, 1, 2, mem.TagTuple)
	if heap.Of(p) != root {
		t.Fatal("allocation must land in the current heap")
	}
	if ops.Allocs != 1 || ops.AllocWords != int64(mem.ObjectWords(1, 2)) {
		t.Fatalf("counters: %+v", ops)
	}
}

func TestReadImm(t *testing.T) {
	root := heap.NewRoot()
	defer freeAll(root)
	var ops Counters
	p := Alloc(nil, root, &ops, 1, 1, mem.TagTuple)
	q := Alloc(nil, root, &ops, 0, 1, mem.TagRef)
	WriteInitWord(&ops, p, 0, 42)
	WriteInitPtr(&ops, p, 0, q)
	if ReadImmWord(&ops, p, 0) != 42 || ReadImmPtr(&ops, p, 0) != q {
		t.Fatal("immutable read roundtrip failed")
	}
	if ops.ReadImm != 2 || ops.WriteInit != 2 {
		t.Fatalf("counters: %+v", ops)
	}
}

func TestFindMasterNoChain(t *testing.T) {
	root := heap.NewRoot()
	defer freeAll(root)
	var ops Counters
	p := Alloc(nil, root, &ops, 0, 1, mem.TagRef)
	m, h := FindMaster(&ops, p)
	if m != p || h != root {
		t.Fatal("master of unforwarded object is itself")
	}
	h.Unlock()
}

func TestFindMasterFollowsChain(t *testing.T) {
	root, child, grand := hierarchy()
	defer freeAll(root, child, grand)
	var ops Counters
	a := Alloc(nil, grand, &ops, 0, 1, mem.TagRef)
	b := Alloc(nil, child, &ops, 0, 1, mem.TagRef)
	c := Alloc(nil, root, &ops, 0, 1, mem.TagRef)
	mem.StoreFwd(a, b)
	mem.StoreFwd(b, c)
	m, h := FindMaster(&ops, a)
	if m != c || h != root {
		t.Fatalf("master = %v in %v, want %v in root", m, h, c)
	}
	h.Unlock()
}

func TestReadMutFastAndSlow(t *testing.T) {
	root, child, _ := hierarchy()
	defer freeAll(root, child)
	var ops Counters
	p := Alloc(nil, child, &ops, 0, 1, mem.TagRef)
	WriteNonptr(child, &ops, p, 0, 7)
	if ReadMutWord(&ops, p, 0) != 7 {
		t.Fatal("local mutable read failed")
	}
	if ops.ReadMutFast != 1 || ops.ReadMutSlow != 0 {
		t.Fatalf("fast path not taken: %+v", ops)
	}
	// Manually promote: master in root holds a different value.
	m := Alloc(nil, root, &ops, 0, 1, mem.TagRef)
	mem.StoreWordField(m, 0, 99)
	mem.StoreFwd(p, m)
	if ReadMutWord(&ops, p, 0) != 99 {
		t.Fatal("mutable read must come from the master copy")
	}
	if ops.ReadMutSlow != 1 {
		t.Fatalf("slow path not taken: %+v", ops)
	}
}

func TestWriteNonptrUpdatesMaster(t *testing.T) {
	root, child, _ := hierarchy()
	defer freeAll(root, child)
	var ops Counters
	p := Alloc(nil, child, &ops, 0, 1, mem.TagRef)
	m := Alloc(nil, root, &ops, 0, 1, mem.TagRef)
	mem.StoreFwd(p, m)
	WriteNonptr(child, &ops, p, 0, 123)
	if mem.LoadWordField(m, 0) != 123 {
		t.Fatal("write must reach the master copy")
	}
	if ops.WriteNonptrSlow != 1 {
		t.Fatalf("slow path not counted: %+v", ops)
	}
}

func TestCASWord(t *testing.T) {
	root, child, _ := hierarchy()
	defer freeAll(root, child)
	var ops Counters
	p := Alloc(nil, root, &ops, 0, 1, mem.TagRef)
	if !CASWord(&ops, p, 0, 0, 5) {
		t.Fatal("CAS from zero must succeed")
	}
	if CASWord(&ops, p, 0, 0, 6) {
		t.Fatal("stale CAS must fail")
	}
	if ops.CASFast != 2 || ops.CASSlow != 0 {
		t.Fatalf("counters: %+v", ops)
	}
	// Promoted object: CAS settles on the master.
	q := Alloc(nil, child, &ops, 0, 1, mem.TagRef)
	m := Alloc(nil, root, &ops, 0, 1, mem.TagRef)
	mem.StoreWordField(m, 0, 10)
	mem.StoreFwd(q, m)
	if !CASWord(&ops, q, 0, 10, 11) || mem.LoadWordField(m, 0) != 11 {
		t.Fatal("CAS must apply to the master copy")
	}
	if ops.CASSlow != 1 {
		t.Fatalf("slow CAS not counted: %+v", ops)
	}
}

func TestWritePtrFastPathLocal(t *testing.T) {
	root, child, _ := hierarchy()
	defer freeAll(root, child)
	var ops Counters
	obj := Alloc(nil, child, &ops, 1, 0, mem.TagRef)
	val := Alloc(nil, child, &ops, 0, 1, mem.TagRef)
	WritePtr(nil, child, nil, &ops, obj, 0, val)
	if mem.LoadPtrFieldAtomic(obj, 0) != val {
		t.Fatal("local pointer write failed")
	}
	if ops.WritePtrFast != 1 || ops.Promotions != 0 {
		t.Fatalf("fast path not taken: %+v", ops)
	}
}

func TestWritePtrAncestorPointeeFastPath(t *testing.T) {
	// Writing an ancestor's pointer into a deeper object cannot entangle:
	// the optimistic fast path stores without touching any heap lock.
	root, child, _ := hierarchy()
	defer freeAll(root, child)
	var ops Counters
	obj := Alloc(nil, child, &ops, 1, 0, mem.TagRef) // deep object
	val := Alloc(nil, root, &ops, 0, 1, mem.TagRef)  // shallow value
	before := heap.Of(obj).LockStats()
	// Write from a context whose current heap is not child's: not local.
	WritePtr(nil, root, nil, &ops, obj, 0, val)
	if mem.LoadPtrFieldAtomic(obj, 0) != val {
		t.Fatal("distant pointer write failed")
	}
	if ops.WritePtrAncestor != 1 || ops.WritePtrNonProm != 0 || ops.Promotions != 0 {
		t.Fatalf("want ancestor fast path: %+v", ops)
	}
	if after := heap.Of(obj).LockStats(); after != before {
		t.Fatalf("fast path touched the heap lock: %+v -> %+v", before, after)
	}
}

func TestWritePtrNilNeverPromotes(t *testing.T) {
	root, child, _ := hierarchy()
	defer freeAll(root, child)
	var ops Counters
	obj := Alloc(nil, root, &ops, 1, 0, mem.TagRef)
	WritePtr(nil, child, nil, &ops, obj, 0, mem.NilPtr)
	if ops.Promotions != 0 || ops.WritePtrAncestor != 1 {
		t.Fatalf("nil write must not promote: %+v", ops)
	}
}

func TestWritePtrForwardedObjectGoesSlow(t *testing.T) {
	// A forwarded object defeats the optimistic fast path: the write is
	// redone on the master through FindMaster (WritePtrNonProm class).
	root, child, _ := hierarchy()
	defer freeAll(root, child)
	var ops Counters
	obj := Alloc(nil, child, &ops, 1, 0, mem.TagRef)
	master := Alloc(nil, root, &ops, 1, 0, mem.TagRef)
	mem.StoreFwd(obj, master)
	val := Alloc(nil, root, &ops, 0, 1, mem.TagRef)
	WritePtr(nil, root, nil, &ops, obj, 0, val)
	if mem.LoadPtrFieldAtomic(master, 0) != val {
		t.Fatal("write must land on the master copy")
	}
	if ops.WritePtrNonProm != 1 || ops.WritePtrAncestor != 0 {
		t.Fatalf("want FindMaster slow path: %+v", ops)
	}
}

func TestWritePtrPromotes(t *testing.T) {
	root, child, _ := hierarchy()
	defer freeAll(root, child)
	var ops Counters
	cell := Alloc(nil, root, &ops, 1, 0, mem.TagRef) // mutable cell at the root
	local := Alloc(nil, child, &ops, 0, 1, mem.TagRef)
	WriteInitWord(&ops, local, 0, 77)

	WritePtr(nil, child, nil, &ops, cell, 0, local)

	got := ReadMutPtr(&ops, cell, 0)
	if got.IsNil() || got == local {
		t.Fatal("cell must hold a promoted copy, not the original")
	}
	if heap.Of(got) != root {
		t.Fatalf("promoted copy must live in the root heap, got %v", heap.Of(got))
	}
	if mem.LoadWordField(got, 0) != 77 {
		t.Fatal("promoted copy must carry the value")
	}
	if mem.LoadFwd(local) != got {
		t.Fatal("original must forward to the promoted copy")
	}
	if ops.WritePtrProm != 1 || ops.Promotions != 1 || ops.PromotedObjects != 1 {
		t.Fatalf("counters: %+v", ops)
	}
	if err := CheckSubtree(root, child); err != nil {
		t.Fatal(err)
	}
}

func TestPromotionIsTransitive(t *testing.T) {
	// A linked list allocated in the leaf is promoted wholesale.
	root, child, grand := hierarchy()
	defer freeAll(root, child, grand)
	var ops Counters
	cell := Alloc(nil, root, &ops, 1, 0, mem.TagRef)

	const n = 20
	list := mem.NilPtr
	for i := n - 1; i >= 0; i-- {
		cons := Alloc(nil, grand, &ops, 1, 1, mem.TagCons)
		WriteInitWord(&ops, cons, 0, uint64(i))
		WriteInitPtr(&ops, cons, 0, list)
		list = cons
	}

	WritePtr(nil, grand, nil, &ops, cell, 0, list)

	if ops.PromotedObjects != n {
		t.Fatalf("promoted %d objects, want %d", ops.PromotedObjects, n)
	}
	// Walk the promoted list: every cell must be in root with intact values.
	p := ReadMutPtr(&ops, cell, 0)
	for i := 0; i < n; i++ {
		if p.IsNil() {
			t.Fatalf("list truncated at %d", i)
		}
		if heap.Of(p) != root {
			t.Fatalf("promoted cons %d is in %v, want root", i, heap.Of(p))
		}
		if mem.LoadWordField(p, 0) != uint64(i) {
			t.Fatalf("cons %d carries %d", i, mem.LoadWordField(p, 0))
		}
		p = ReadImmPtr(&ops, p, 0)
	}
	if !p.IsNil() {
		t.Fatal("promoted list too long")
	}
	if err := CheckSubtree(root, child, grand); err != nil {
		t.Fatal(err)
	}
}

func TestPromotionSharesAlreadyPromoted(t *testing.T) {
	// Promoting twice must not duplicate: the second promotion follows the
	// forwarding pointer installed by the first.
	root, child, _ := hierarchy()
	defer freeAll(root, child)
	var ops Counters
	cellA := Alloc(nil, root, &ops, 1, 0, mem.TagRef)
	cellB := Alloc(nil, root, &ops, 1, 0, mem.TagRef)
	local := Alloc(nil, child, &ops, 0, 1, mem.TagRef)

	WritePtr(nil, child, nil, &ops, cellA, 0, local)
	first := ReadMutPtr(&ops, cellA, 0)
	WritePtr(nil, child, nil, &ops, cellB, 0, local)
	second := ReadMutPtr(&ops, cellB, 0)

	if first != second {
		t.Fatal("second promotion must reuse the first copy")
	}
	if ops.PromotedObjects != 1 {
		t.Fatalf("object copied %d times, want 1", ops.PromotedObjects)
	}
}

func TestPromotionStopsAtTargetDepth(t *testing.T) {
	// Objects reachable from the pointee that already live at or above the
	// target are not copied.
	root, child, _ := hierarchy()
	defer freeAll(root, child)
	var ops Counters
	cell := Alloc(nil, root, &ops, 1, 0, mem.TagRef)
	shallow := Alloc(nil, root, &ops, 0, 1, mem.TagRef)
	WriteInitWord(&ops, shallow, 0, 5)
	pair := Alloc(nil, child, &ops, 1, 0, mem.TagTuple)
	WriteInitPtr(&ops, pair, 0, shallow)

	WritePtr(nil, child, nil, &ops, cell, 0, pair)

	if ops.PromotedObjects != 1 {
		t.Fatalf("only the pair should be copied, got %d", ops.PromotedObjects)
	}
	promoted := ReadMutPtr(&ops, cell, 0)
	if mem.LoadPtrField(promoted, 0) != shallow {
		t.Fatal("promoted pair must reference the original shallow object")
	}
}

func TestPromotionOfCyclicGraph(t *testing.T) {
	// Mutable objects can form cycles; promotion must terminate and
	// preserve the cycle among the copies.
	root, child, _ := hierarchy()
	defer freeAll(root, child)
	var ops Counters
	cell := Alloc(nil, root, &ops, 1, 0, mem.TagRef)
	a := Alloc(nil, child, &ops, 1, 1, mem.TagTuple)
	b := Alloc(nil, child, &ops, 1, 1, mem.TagTuple)
	WriteInitWord(&ops, a, 0, 1)
	WriteInitWord(&ops, b, 0, 2)
	WriteInitPtr(&ops, a, 0, b)
	WriteInitPtr(&ops, b, 0, a)

	WritePtr(nil, child, nil, &ops, cell, 0, a)

	pa := ReadMutPtr(&ops, cell, 0)
	pb := mem.LoadPtrField(pa, 0)
	if mem.LoadWordField(pa, 0) != 1 || mem.LoadWordField(pb, 0) != 2 {
		t.Fatal("cycle values lost")
	}
	if mem.LoadPtrField(pb, 0) != pa {
		t.Fatal("cycle not preserved among copies")
	}
	if ops.PromotedObjects != 2 {
		t.Fatalf("cycle copied %d objects, want 2", ops.PromotedObjects)
	}
}

func TestRepeatedPromotionBuildsChain(t *testing.T) {
	// Writing the same object into cells at decreasing depth promotes it
	// repeatedly; the master is the shallowest copy and mutable accesses
	// see its state.
	root, child, grand := hierarchy()
	defer freeAll(root, child, grand)
	var ops Counters
	cellMid := Alloc(nil, child, &ops, 1, 0, mem.TagRef)
	cellTop := Alloc(nil, root, &ops, 1, 0, mem.TagRef)
	obj := Alloc(nil, grand, &ops, 0, 1, mem.TagRef)
	WriteInitWord(&ops, obj, 0, 1)

	WritePtr(nil, grand, nil, &ops, cellMid, 0, obj) // promote grand -> child
	WritePtr(nil, grand, nil, &ops, cellTop, 0, obj) // promote child -> root

	if ops.Promotions != 2 || ops.PromotedObjects != 2 {
		t.Fatalf("counters: %+v", ops)
	}
	m, h := FindMaster(&ops, obj)
	if h != root {
		t.Fatalf("master should be in root, got %v", h)
	}
	h.Unlock()

	WriteNonptr(grand, &ops, obj, 0, 42) // write through the original
	if ReadMutWord(&ops, m, 0) != 42 {
		t.Fatal("update did not reach master")
	}
	if ReadMutWord(&ops, obj, 0) != 42 {
		t.Fatal("read through original did not see master state")
	}
}

func TestCheckHeapDetectsEntanglement(t *testing.T) {
	root, child, _ := hierarchy()
	defer freeAll(root, child)
	var ops Counters
	cell := Alloc(nil, root, &ops, 1, 0, mem.TagRef)
	local := Alloc(nil, child, &ops, 0, 1, mem.TagRef)
	// Bypass WritePtr to forge a down-pointer.
	mem.StorePtrField(cell, 0, local)
	if err := CheckHeap(root); err == nil {
		t.Fatal("checker must flag the down-pointer")
	}
	// Repair through the legal path and re-check.
	WritePtr(nil, child, nil, &ops, cell, 0, local)
	if err := CheckSubtree(root, child); err != nil {
		t.Fatal(err)
	}
}

func TestIsAncestorOrSelf(t *testing.T) {
	root, child, grand := hierarchy()
	sib := heap.NewChild(root)
	defer freeAll(root, child, grand, sib)
	if !IsAncestorOrSelf(root, grand) || !IsAncestorOrSelf(child, grand) || !IsAncestorOrSelf(grand, grand) {
		t.Fatal("ancestor chain not recognized")
	}
	if IsAncestorOrSelf(grand, root) {
		t.Fatal("descendant is not an ancestor")
	}
	if IsAncestorOrSelf(sib, grand) || IsAncestorOrSelf(grand, sib) {
		t.Fatal("siblings are unrelated")
	}
}

func TestRepresentative(t *testing.T) {
	var pure Counters
	pure.ReadImm = 1000
	if got := pure.Representative(); got != "immutable reads" {
		t.Fatalf("pure: %q", got)
	}
	var local Counters
	local.WriteNonptrLocal = 500
	if got := local.Representative(); got != "local non-pointer writes" {
		t.Fatalf("local: %q", got)
	}
	var promo Counters
	promo.WriteNonptrSlow = 100
	promo.WritePtrProm = 90
	if got := promo.Representative(); got != "distant promoting writes" {
		t.Fatalf("promoting: %q", got)
	}
}
