package core

import (
	"math/rand"
	"testing"

	"repro/internal/gc"
	"repro/internal/heap"
	"repro/internal/mem"
)

// Differential fuzzing of the three write barriers. A byte-coded schedule
// of allocations, pointer writes, word writes, reads, heap pushes (forks),
// pops (joins), collections, and reference drops is replayed through three
// universes — the eager barrier (WritePtr), the paper-faithful slow path
// (WritePtrSlow), and deferred promotion (WritePtrDeferred) — plus a plain
// Go model that knows nothing about heaps. Every read must observe the
// same value in all four, and after every structural step (push, pop,
// collect, end of schedule) the reachable graphs must fold to the same
// structural checksum. The deferred universe additionally runs the
// remembered-set invariant walker (heap.CheckInvariants) after every
// structural step, and the whole run must leave the package-global pin
// accounting balanced.
//
// Object identity across universes: ObjPtr bit patterns differ per
// universe (different heaps, different promotion histories), so objects
// carry an immutable id in word field 0; reads and checksums observe ids,
// never raw pointers. Word field 1 is the mutable payload.

const (
	fuzzMaxObjs  = 256
	fuzzMaxDepth = 6
	fuzzMaxBytes = 4096
)

// universe kinds
const (
	uEager = iota
	uSlow
	uDeferred
)

type fuzzUniverse struct {
	name  string
	kind  int
	stack []*heap.Heap // stack[0] is the root; top is the current heap
	ops   Counters
	pbuf  PromoteBuf
	objs  []mem.ObjPtr // registry: index = object id; NilPtr = dropped
}

func newFuzzUniverse(name string, kind int) *fuzzUniverse {
	return &fuzzUniverse{name: name, kind: kind, stack: []*heap.Heap{heap.NewRoot()}}
}

func (u *fuzzUniverse) cur() *heap.Heap { return u.stack[len(u.stack)-1] }

func (u *fuzzUniverse) alloc(id int, payload uint64) {
	p := Alloc(nil, u.cur(), &u.ops, 2, 2, mem.TagTuple)
	WriteInitPtr(&u.ops, p, 0, mem.NilPtr)
	WriteInitPtr(&u.ops, p, 1, mem.NilPtr)
	WriteInitWord(&u.ops, p, 0, uint64(id)+1) // ids are 1-based; 0 observes nil
	WriteInitWord(&u.ops, p, 1, payload)
	u.objs = append(u.objs, p)
}

func (u *fuzzUniverse) writePtr(dst int, field int, src mem.ObjPtr) {
	switch u.kind {
	case uEager:
		WritePtr(nil, u.cur(), &u.pbuf, &u.ops, u.objs[dst], field, src)
	case uSlow:
		WritePtrSlow(nil, &u.pbuf, &u.ops, u.objs[dst], field, src)
	case uDeferred:
		WritePtrDeferred(nil, u.cur(), &u.pbuf, &u.ops, u.objs[dst], field, src)
	}
}

// checksum folds the graph reachable from the live registry entries into
// one order-sensitive value: ids, payloads, field structure, and sharing
// (back references fold the target's visit order, so aliasing and cycles
// are part of the shape). Forwarding chains are chased first, so the fold
// is invariant under promotion and collection — exactly the property the
// barriers must preserve.
func (u *fuzzUniverse) checksum() uint64 {
	const prime = 1099511628211
	visited := make(map[mem.ObjPtr]int)
	sum := uint64(14695981039346656037)
	var walk func(p mem.ObjPtr)
	walk = func(p mem.ObjPtr) {
		if p.IsNil() {
			sum = sum*prime + 0x11
			return
		}
		p = chaseFwd(p)
		if n, ok := visited[p]; ok {
			sum = sum*prime + 0x22
			sum = sum*prime + uint64(n)
			return
		}
		visited[p] = len(visited)
		sum = sum*prime + 0x33
		sum = sum*prime + mem.LoadWordField(p, 0) // id
		sum = sum*prime + mem.LoadWordField(p, 1) // payload
		walk(mem.LoadPtrField(p, 0))
		walk(mem.LoadPtrField(p, 1))
	}
	for _, p := range u.objs {
		if p.IsNil() {
			sum = sum*prime + 0x44
			continue
		}
		walk(p)
	}
	return sum
}

// close joins every pushed heap back into the root and frees the root's
// chunks, so one fuzz execution leaves no chunks (and, for the deferred
// universe, no live pins — the top-level joins elide every entry) behind.
func (u *fuzzUniverse) close() {
	for len(u.stack) > 1 {
		child := u.stack[len(u.stack)-1]
		u.stack = u.stack[:len(u.stack)-1]
		heap.Join(u.stack[len(u.stack)-1], child)
	}
	heap.FreeChunkList(u.stack[0].TakeChunks())
}

// model is the oracle: objects with two int fields (registry indices, -1
// for nil), an id, and a payload. No heaps, no barriers, no collector.
type modelObj struct {
	id      uint64
	payload uint64
	f       [2]int
}

type fuzzModel struct {
	objs    []modelObj
	dropped []bool
}

func (m *fuzzModel) alloc(payload uint64) {
	m.objs = append(m.objs, modelObj{id: uint64(len(m.objs)) + 1, payload: payload, f: [2]int{-1, -1}})
	m.dropped = append(m.dropped, false)
}

func (m *fuzzModel) checksum() uint64 {
	const prime = 1099511628211
	visited := make(map[int]int)
	sum := uint64(14695981039346656037)
	var walk func(i int)
	walk = func(i int) {
		if i < 0 {
			sum = sum*prime + 0x11
			return
		}
		if n, ok := visited[i]; ok {
			sum = sum*prime + 0x22
			sum = sum*prime + uint64(n)
			return
		}
		visited[i] = len(visited)
		sum = sum*prime + 0x33
		sum = sum*prime + m.objs[i].id
		sum = sum*prime + m.objs[i].payload
		walk(m.objs[i].f[0])
		walk(m.objs[i].f[1])
	}
	for i := range m.objs {
		if m.dropped[i] {
			sum = sum*prime + 0x44
			continue
		}
		walk(i)
	}
	return sum
}

// runBarrierDifferential interprets one byte-coded schedule. Each op is 4
// bytes [op, a, b, c]; op selects the action modulo 9, a/b/c select
// operands. Unusable ops (no live objects, registry full, stack empty) are
// skipped in every universe alike, so the universes always see identical
// schedules.
//
// Op 6 (pop) is discriminated by its a operand: a == 0xAB ABORTS the
// current heap — the transaction-rollback shape — instead of joining it.
// An abort releases the heap's chunks wholesale with no join; the
// deferred universe must first DrainForRelease its remembered set, so
// pointees an ancestor still holds (pins) are promoted out before their
// chunks are recycled, while subtree-internal entries die unresolved.
// Everything allocated at the aborted depth is then dropped from the
// registry and the model: promotion at write time (eager/slow) or at the
// release drain (deferred) guarantees anything an ancestor can still
// reach has already been copied out, so the post-abort reachable graphs
// must again agree with the model in all three universes.
func runBarrierDifferential(t *testing.T, data []byte) {
	if len(data) > fuzzMaxBytes {
		data = data[:fuzzMaxBytes]
	}
	remBase := heap.RemCounters()
	universes := []*fuzzUniverse{
		newFuzzUniverse("eager", uEager),
		newFuzzUniverse("slow", uSlow),
		newFuzzUniverse("deferred", uDeferred),
	}
	model := &fuzzModel{}
	defer func() {
		for _, u := range universes {
			u.close()
		}
		if d := heap.RemCounters().Live - remBase.Live; d != 0 {
			t.Fatalf("schedule leaked %d live remembered entries", d)
		}
	}()

	// allocDepth[i] is object i's home depth: the stack depth it was
	// allocated at, decremented when that heap joins its parent (the merge
	// moves its objects up a level). An abort kills every object homed at
	// the aborted depth.
	var allocDepth []int

	// pick resolves operand byte b to a live registry index, -1 if none.
	pick := func(b byte) int {
		live := make([]int, 0, len(model.objs))
		for i := range model.objs {
			if !model.dropped[i] {
				live = append(live, i)
			}
		}
		if len(live) == 0 {
			return -1
		}
		return live[int(b)%len(live)]
	}

	checkStructure := func(step int, what string) {
		t.Helper()
		want := model.checksum()
		for _, u := range universes {
			if got := u.checksum(); got != want {
				t.Fatalf("step %d (%s): %s checksum %x, model %x", step, what, u.name, got, want)
			}
		}
		du := universes[2]
		if err := heap.CheckInvariants(du.stack...); err != nil {
			t.Fatalf("step %d (%s): deferred invariants: %v", step, what, err)
		}
	}

	for step := 0; step*4+3 < len(data); step++ {
		op, a, b, c := data[step*4], data[step*4+1], data[step*4+2], data[step*4+3]
		switch op % 9 {
		case 0: // alloc
			if len(model.objs) >= fuzzMaxObjs {
				continue
			}
			payload := uint64(a)
			for _, u := range universes {
				u.alloc(len(model.objs), payload)
			}
			model.alloc(payload)
			allocDepth = append(allocDepth, len(universes[0].stack)-1)
		case 1: // barrier pointer write
			dst := pick(a)
			if dst < 0 {
				continue
			}
			field := int(b) % 2
			srcIdx := -1
			if c != 0xFF {
				srcIdx = pick(c)
			}
			for _, u := range universes {
				src := mem.NilPtr
				if srcIdx >= 0 {
					src = u.objs[srcIdx]
				}
				u.writePtr(dst, field, src)
			}
			model.objs[dst].f[field] = srcIdx
		case 2: // mutable word write
			dst := pick(a)
			if dst < 0 {
				continue
			}
			v := uint64(b) * 2654435761
			for _, u := range universes {
				WriteNonptr(u.cur(), &u.ops, u.objs[dst], 1, v)
			}
			model.objs[dst].payload = v
		case 3: // pointer read: observe the pointee's id
			obj := pick(a)
			if obj < 0 {
				continue
			}
			field := int(b) % 2
			var want uint64
			if fi := model.objs[obj].f[field]; fi >= 0 {
				want = model.objs[fi].id
			}
			for _, u := range universes {
				var got uint64
				if q := ReadMutPtr(&u.ops, u.objs[obj], field); !q.IsNil() {
					got = ReadImmWord(&u.ops, q, 0)
				}
				if got != want {
					t.Fatalf("step %d: %s reads obj %d field %d as id %d, model says %d",
						step, u.name, obj, field, got, want)
				}
			}
		case 4: // word read: observe the payload
			obj := pick(a)
			if obj < 0 {
				continue
			}
			want := model.objs[obj].payload
			for _, u := range universes {
				if got := ReadMutWord(&u.ops, u.objs[obj], 1); got != want {
					t.Fatalf("step %d: %s reads obj %d payload %x, model says %x",
						step, u.name, obj, got, want)
				}
			}
		case 5: // push: fork a child heap and enter it
			if len(universes[0].stack) >= fuzzMaxDepth {
				continue
			}
			for _, u := range universes {
				u.stack = append(u.stack, heap.NewChild(u.cur()))
			}
			checkStructure(step, "push")
		case 6: // pop: join the current heap into its parent — or abort it
			if len(universes[0].stack) == 1 {
				continue
			}
			depth := len(universes[0].stack) - 1
			if a == 0xAB {
				// Abort-unwind: wholesale release, no join. The deferred
				// universe resolves its pins first — exactly the runtime's
				// session-abort path — so ancestor-held pointees survive the
				// chunk recycling; the eager universes promoted them at write
				// time and have nothing to do.
				for _, u := range universes {
					child := u.stack[len(u.stack)-1]
					u.stack = u.stack[:len(u.stack)-1]
					if u.kind == uDeferred {
						DrainForRelease(nil, &u.pbuf, &u.ops, child.Depth(), []*heap.Heap{child})
					}
					heap.FreeChunkList(child.TakeChunks())
				}
				for i := range model.objs {
					if allocDepth[i] != depth || model.dropped[i] {
						continue
					}
					for _, u := range universes {
						u.objs[i] = mem.NilPtr
					}
					model.dropped[i] = true
				}
				checkStructure(step, "abort")
				continue
			}
			for _, u := range universes {
				child := u.stack[len(u.stack)-1]
				u.stack = u.stack[:len(u.stack)-1]
				heap.Join(u.cur(), child)
			}
			for i := range allocDepth {
				if allocDepth[i] == depth {
					allocDepth[i]--
				}
			}
			checkStructure(step, "join")
		case 7: // collect the current heap (always a leaf of the stack)
			for _, u := range universes {
				if u.kind == uDeferred && a%2 == 0 {
					// Runtime-shaped path: drain before collecting. Odd a
					// leaves the set populated so gc's extra-roots pass
					// (Collector.drainRemembered) resolves the pins instead.
					DrainRemembered(nil, &u.pbuf, &u.ops, u.cur())
				}
				var roots []*mem.ObjPtr
				for i := range u.objs {
					if !u.objs[i].IsNil() {
						roots = append(roots, &u.objs[i])
					}
				}
				gc.Collect([]*heap.Heap{u.cur()}, roots)
			}
			checkStructure(step, "collect")
		case 8: // forget: drop a registry reference (creates garbage)
			obj := pick(a)
			if obj < 0 {
				continue
			}
			for _, u := range universes {
				u.objs[obj] = mem.NilPtr
			}
			model.dropped[obj] = true
			_ = c
		}
	}
	checkStructure(len(data)/4, "end")
}

// FuzzBarrier is the native fuzz target; CI runs it with -fuzz=FuzzBarrier
// -fuzztime=60s, and the committed corpus under testdata/fuzz/FuzzBarrier
// replays the structurally interesting schedules on every plain `go test`.
func FuzzBarrier(f *testing.F) {
	f.Add(seedPinSecondTouch())
	f.Add(seedPinDrainPaths())
	f.Add(seedJoinElide())
	f.Add(seedDeepChurn())
	f.Add(seedAbortUnwind())
	f.Add(seedTxnRetry())
	f.Add(seedAbortDeep())
	f.Fuzz(func(t *testing.T, data []byte) {
		runBarrierDifferential(t, data)
	})
}

// TestBarrierDifferentialSchedules is the deterministic property test: it
// replays seeded pseudo-random schedules through the same differential
// harness, so the cross-universe equivalences are exercised on every test
// run even where `go test -fuzz` never runs.
func TestBarrierDifferentialSchedules(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 2048)
		rng.Read(data)
		// Bias toward structural ops: rewrite a slice of op bytes so pushes,
		// pops, and collects appear often enough to matter.
		for i := 0; i+3 < len(data); i += 4 {
			if rng.Intn(4) == 0 {
				data[i] = byte(5 + rng.Intn(3)) // push/pop/collect
			}
		}
		runBarrierDifferential(t, data)
	}
}

// Crafted seeds. Each returns one 4-byte-per-op schedule hitting a
// deferred-promotion lifecycle corner.

// seedPinSecondTouch: pin a child object into a root slot, touch it again
// through a second root slot (eager promotion on second touch), drain via
// a pre-drained collection, then join.
func seedPinSecondTouch() []byte {
	return []byte{
		0, 1, 0, 0, // alloc obj0 (root)
		0, 2, 0, 0, // alloc obj1 (root)
		5, 0, 0, 0, // push
		0, 3, 0, 0, // alloc obj2 (child)
		1, 0, 0, 2, // obj0.f0 = obj2   (pin)
		3, 0, 0, 0, // read obj0.f0
		1, 1, 0, 2, // obj1.f0 = obj2   (second touch → promote)
		3, 1, 0, 0, // read obj1.f0
		7, 0, 0, 0, // collect child, pre-drained
		6, 0, 0, 0, // pop-join
		7, 1, 0, 0, // collect root
	}
}

// seedPinDrainPaths: pin, overwrite the slot (the entry dies at the
// drain), pin another, and collect WITHOUT the pre-drain so gc's
// extra-roots pass resolves the set; then forget and recollect.
func seedPinDrainPaths() []byte {
	return []byte{
		0, 1, 0, 0, // alloc obj0 (root)
		5, 0, 0, 0, // push
		0, 2, 0, 0, // alloc obj1 (child)
		0, 3, 0, 0, // alloc obj2 (child)
		1, 0, 0, 1, // obj0.f0 = obj1   (pin obj1)
		1, 0, 0, 2, // obj0.f0 = obj2   (pin obj2; obj1's entry dies)
		7, 1, 0, 0, // collect child, NO pre-drain (gc drain path)
		3, 0, 0, 0, // read obj0.f0
		8, 1, 0, 0, // forget obj1
		7, 1, 0, 0, // collect child again (obj1 now garbage)
		6, 0, 0, 0, // pop-join
	}
}

// seedJoinElide: pin from the root into a child, then join immediately —
// the entry must elide (depth change ends the entanglement), with no
// drain ever running.
func seedJoinElide() []byte {
	return []byte{
		0, 1, 0, 0, // alloc obj0 (root)
		5, 0, 0, 0, // push
		0, 2, 0, 0, // alloc obj1 (child)
		1, 0, 1, 1, // obj0.f1 = obj1   (pin)
		6, 0, 0, 0, // pop-join (elide)
		3, 0, 1, 0, // read obj0.f1
		7, 0, 0, 0, // collect root
	}
}

// seedAbortUnwind: the basic rollback shape — stage objects in a child,
// publish one into an ancestor slot (pin in the deferred universe), then
// abort. The pinned pointee must be drain-promoted before the chunks are
// recycled; the unpublished sibling must die with the heap.
func seedAbortUnwind() []byte {
	return []byte{
		0, 1, 0, 0, // alloc obj0 (root)
		5, 0, 0, 0, // push
		0, 2, 0, 0, // alloc obj1 (child: published intent)
		0, 3, 0, 0, // alloc obj2 (child: private scratch)
		1, 0, 0, 1, // obj0.f0 = obj1   (publish → promote / pin)
		2, 2, 9, 0, // obj2.payload = ... (scratch mutation)
		6, 0xAB, 0, 0, // ABORT: obj2 dies, obj1 survives via obj0.f0
		3, 0, 0, 0, // read obj0.f0 (must still see obj1's id)
		7, 0, 0, 0, // collect root
	}
}

// seedTxnRetry: a transaction that stages, conflicts, aborts, and then a
// re-forked retry of the same shape commits by joining — fork, conflicting
// writes into the shared ancestor slot, abort-unwind, re-fork, join.
func seedTxnRetry() []byte {
	return []byte{
		0, 1, 0, 0, // alloc obj0 (root: the shared slot array)
		0, 2, 0, 0, // alloc obj1 (root: prior committed value)
		1, 0, 0, 1, // obj0.f0 = obj1 (committed state)
		5, 0, 0, 0, // push: attempt #1
		0, 3, 0, 0, // alloc obj2 (staged intent)
		1, 0, 0, 2, // obj0.f0 = obj2 (conflicting write over obj1)
		1, 0, 1, 1, // obj0.f1 = obj1 (second slot keeps the old value live)
		6, 0xAB, 0, 0, // ABORT attempt #1: staged obj2's home dies
		3, 0, 0, 0, // read obj0.f0 (the promoted intent survived the rollback)
		5, 0, 0, 0, // push: attempt #2 (retry)
		0, 4, 0, 0, // alloc obj3 (restaged intent)
		1, 0, 0, 3, // obj0.f0 = obj3
		6, 0, 0, 0, // pop-join: attempt #2 commits
		3, 0, 0, 0, // read obj0.f0
		7, 1, 0, 0, // collect root
	}
}

// seedAbortDeep: abort an inner level while an outer child survives and
// later joins — the unwind must only kill the aborted depth, and entries
// pinned from the outer child (not the root) must drain to the right heap.
func seedAbortDeep() []byte {
	return []byte{
		0, 1, 0, 0, // alloc obj0 (root)
		5, 0, 0, 0, // push (depth 1)
		0, 2, 0, 0, // alloc obj1 (depth 1)
		5, 0, 0, 0, // push (depth 2)
		0, 3, 0, 0, // alloc obj2 (depth 2)
		0, 4, 0, 0, // alloc obj3 (depth 2, private)
		1, 1, 0, 2, // obj1.f0 = obj2 (pin at depth 1, not root)
		1, 0, 1, 2, // obj0.f1 = obj2 (second touch from the root)
		6, 0xAB, 0, 0, // ABORT depth 2: obj3 dies, obj2 drained out
		3, 1, 0, 0, // read obj1.f0
		7, 0, 0, 0, // collect depth 1, pre-drained
		6, 0, 0, 0, // pop-join depth 1
		3, 0, 1, 0, // read obj0.f1
		7, 1, 0, 0, // collect root, gc drain path
	}
}

// seedDeepChurn: three levels of nesting with cross-level writes, word
// mutation, and collections at each level on the way back up.
func seedDeepChurn() []byte {
	return []byte{
		0, 1, 0, 0, // alloc obj0 (root)
		5, 0, 0, 0, // push (depth 1)
		0, 2, 0, 0, // alloc obj1
		1, 0, 0, 1, // obj0.f0 = obj1 (pin at depth 1)
		5, 0, 0, 0, // push (depth 2)
		0, 3, 0, 0, // alloc obj2
		1, 1, 0, 2, // obj1.f0 = obj2 (pin at depth 2)
		2, 2, 7, 0, // obj2.payload = ...
		7, 0, 0, 0, // collect depth-2 leaf, pre-drained
		6, 0, 0, 0, // pop-join to depth 1
		3, 1, 0, 0, // read obj1.f0
		7, 1, 0, 0, // collect depth-1, gc drain path
		6, 0, 0, 0, // pop-join to root
		3, 0, 0, 0, // read obj0.f0
		7, 0, 0, 0, // collect root
	}
}
