package core

import (
	"repro/internal/heap"
	"repro/internal/mem"
)

// Deferred promotion: the lazy alternative to the paper's eager write
// barrier. WritePtr copies the pointee's whole subtree upward before an
// ancestor→descendant pointer write commits; WritePtrDeferred instead
// stores the down-pointer as-is, PINS the pointee in its leaf heap via a
// remembered-set entry (heap.RememberOrTouch), and lets one of three
// later events resolve the pin:
//
//   - a SECOND cross-heap touch of the same pointee through a DISTINCT
//     slot promotes it eagerly — an object shared twice is escaping, and
//     promoting it now bounds the remembered set. Re-writing the pointee
//     into the slot that already pins it is NOT a second touch: it
//     establishes no new sharing (an in-place list reversal writing the
//     head back is the archetype), so the pin is merely refreshed;
//   - a join migrates or elides the entries (heap.Join): merging the heap
//     upward dissolves entanglement for free;
//   - a wholesale release of the owning subtree drops the entries
//     (DrainForRelease + heap.ReleaseWholesale): the pinned objects died
//     young and were never copied at all — the deferral's payoff.
//
// A zone collection of the owning heap does NOT resolve pins: the
// collector's remembered pass (gc.Collector.drainRemembered) treats the
// entries as extra roots, evacuates surviving pointees within the zone,
// repairs their slots, and re-pins, so a pinned object rides out any
// number of collections in its leaf heap without ever being copied
// upward. DrainRemembered below is the explicit promoting drain for
// callers that want a heap's pins resolved NOW (tests, the differential
// fuzzer's runtime-shaped schedules).
//
// Deferred down-pointers make the hierarchy transiently ENTANGLED: an
// ancestor slot holds a pointer into a descendant heap. That is safe
// under the paper's determinacy-race-free program assumption — between
// the write and the next drain point, only the writing task and its
// descendants dereference the slot, and every drain point (leaf/join
// zone collection, session reclaim) happens-before any other task could
// legitimately observe the slot — but it is a deliberate divergence from
// the paper's always-disentangled invariant; DESIGN.md §9 spells out the
// lifecycle and the safety argument.

// WritePtrDeferred writes a mutable pointer field with promotion
// deferred. The fast paths are identical to WritePtr (local store;
// optimistic ancestor-pointee store); only the would-promote tail
// differs: pin-and-remember on first touch, promote on second.
func WritePtrDeferred(cc *mem.ChunkCache, cur *heap.Heap, buf *PromoteBuf, ops *Counters, obj mem.ObjPtr, field int, ptr mem.ObjPtr) {
	ho := heap.Of(obj)
	if ho == cur && !mem.HasFwd(obj) {
		ops.WritePtrFast++
		mem.StorePtrFieldAtomic(obj, field, ptr)
		return
	}
	if ptr.IsNil() || ho.Depth() >= heap.Of(ptr).Depth() {
		mem.StorePtrFieldAtomic(obj, field, ptr)
		if !mem.HasFwd(obj) {
			ops.WritePtrAncestor++
			return
		}
		// Promoted before or during the store; redo on the master below.
	}
	m, h := FindMaster(ops, obj)
	p := chaseFwd(ptr)
	if p.IsNil() || h.Depth() >= heap.Of(p).Depth() {
		ops.WritePtrNonProm++
		mem.StorePtrFieldAtomic(m, field, p)
		h.Unlock()
		return
	}
	// Down-pointer: pin instead of promote. Store FIRST, register second —
	// a drain that finds the entry must also find the pointer in the slot
	// (registering first would let a drain repair the slot and then have
	// this not-yet-issued store re-insert the deep pointer). Both happen
	// under the slot heap's read lock, which also keeps m from being
	// promoted in between; the remembered set's own mutex is leaf-level
	// (heap lock → remset mutex, never the reverse).
	src := heap.Of(p)
	mem.StorePtrFieldAtomic(m, field, p)
	touch, prev := src.RememberOrTouch(m, field, p)
	h.Unlock()
	switch touch {
	case heap.TouchPinned:
		ops.WritePtrPinned++
		return
	case heap.TouchRefreshed:
		// Same slot, same pointee: the existing entry already describes
		// this down-pointer exactly, so nothing new is shared and nothing
		// is copied. Physically this write was a master-lookup store.
		ops.WritePtrNonProm++
		ops.DeferredRefresh++
		return
	}
	// Second cross-heap touch: the pointee is already pinned through a
	// DIFFERENT slot, so it is genuinely shared — promote it eagerly,
	// exactly the eager barrier's climb. The target is the SHALLOWER of
	// the two pinning slots' heaps: after both writes the eager barrier
	// would have left the pointee at the first slot's depth, and promoting
	// only as far as this write's slot would leave the first slot's
	// down-pointer alive with its pin filed in a heap the pointee no
	// longer inhabits — exactly the misfiled-pin state the invariant
	// walker rejects. Promoting through the first slot repairs it too;
	// its entry then resolves as overwritten at the next drain.
	ops.WritePtrProm++
	ops.Promotions++
	ops.DeferredSecondTouch++
	if ps := chaseFwd(prev.Slot); heap.Of(ps).Depth() < heap.Of(chaseFwd(m)).Depth() &&
		mem.LoadPtrFieldAtomic(ps, prev.Field) == prev.Ptr {
		writePromote(cc, buf, ops, ps, prev.Field, p)
		// Redo this write's store on the (possibly re-promoted) master.
		m2, h2 := FindMaster(ops, m)
		mem.StorePtrFieldAtomic(m2, field, chaseFwd(p))
		h2.Unlock()
		return
	}
	writePromote(cc, buf, ops, m, field, p)
}

// chaseFwd follows p's (permanent) forwarding chain to the master copy.
func chaseFwd(p mem.ObjPtr) mem.ObjPtr {
	if p.IsNil() {
		return p
	}
	for {
		f := mem.LoadFwd(p)
		if f.IsNil() {
			return p
		}
		p = f
	}
}

// DrainRemembered empties h's remembered set, promoting every entry whose
// slot still holds the pinned pointer and discarding the rest (the slot
// moved on, so the pinned object died in place or is covered by a newer
// entry). The caller must be at a safe point where h is quiescent for
// structural changes. The runtime itself never calls this — zone
// collections re-pin instead (gc.Collector.drainRemembered) — but the
// differential fuzzer's runtime-shaped schedules and any embedder that
// wants a heap's pins resolved eagerly do.
func DrainRemembered(cc *mem.ChunkCache, buf *PromoteBuf, ops *Counters, h *heap.Heap) {
	for _, e := range h.TakeRemembered() {
		drainEntry(cc, buf, ops, e)
	}
}

// DrainForRelease sweeps the remembered sets of a dying session subtree
// immediately before its wholesale release. Entries whose slot lives
// INSIDE the subtree (slot heap depth >= baseDepth) die with it — neither
// slot nor pointee survives, and counting them died is the deferral's
// win. Entries whose slot lives outside — a surviving ancestor holds the
// down-pointer — must promote their pointees out NOW, before any chunk of
// the subtree is recycled; that is why the sweep covers EVERY heap of the
// subtree before the first ReleaseWholesale call (a slot could otherwise
// be repaired into an already-released sibling heap).
func DrainForRelease(cc *mem.ChunkCache, buf *PromoteBuf, ops *Counters, baseDepth int32, heaps []*heap.Heap) {
	for _, h := range heaps {
		for _, e := range h.TakeRemembered() {
			if slotHeapDepth(e.Slot) >= baseDepth {
				ops.DeferredDrainDied++
				continue
			}
			drainEntry(cc, buf, ops, e)
		}
	}
}

// slotHeapDepth resolves the live depth of a remembered slot's heap,
// chasing the slot's forwarding chain first (the slot object itself may
// have been promoted since the entry was recorded).
func slotHeapDepth(slot mem.ObjPtr) int32 {
	return heap.Of(chaseFwd(slot)).Depth()
}

// drainEntry resolves one remembered entry at a drain point: skip if the
// slot was overwritten; repair the slot if the pointee was already
// promoted past it; otherwise promote the pointee into the slot's heap.
func drainEntry(cc *mem.ChunkCache, buf *PromoteBuf, ops *Counters, e heap.RemEntry) {
	slot := chaseFwd(e.Slot)
	if mem.LoadPtrFieldAtomic(slot, e.Field) != e.Ptr {
		// The down-pointer was overwritten since the pin: nothing to copy.
		// (A newer pointee in the slot has its own entry.)
		ops.DeferredDrainDied++
		return
	}
	p := chaseFwd(e.Ptr)
	if heap.Of(slot).Depth() >= heap.Of(p).Depth() {
		// Already promoted past the slot (a second touch through another
		// slot, or an earlier drain): just repair the stale slot.
		mem.StorePtrFieldAtomic(slot, e.Field, p)
		ops.DeferredDrainPromoted++
		return
	}
	ops.Promotions++
	ops.DeferredDrainPromoted++
	writePromote(cc, buf, ops, slot, e.Field, p)
}
