package core

import (
	"sync"
	"testing"

	"repro/internal/heap"
	"repro/internal/mem"
)

// buildChain allocates a k-cell chain in h (cell i holds value base+i and
// links to cell i-1) and returns the cells, oldest first.
func buildChain(h *heap.Heap, ops *Counters, k int, base uint64) []mem.ObjPtr {
	cells := make([]mem.ObjPtr, k)
	prev := mem.NilPtr
	for i := 0; i < k; i++ {
		c := Alloc(nil, h, ops, 1, 1, mem.TagCons)
		WriteInitWord(ops, c, 0, base+uint64(i))
		WriteInitPtr(ops, c, 0, prev)
		cells[i] = c
		prev = c
	}
	return cells
}

// TestWritePtrBatchSharedClimb checks the promote buffer's amortization:
// publishing k chained records into a root array with one WritePtrBatch
// costs ONE lock climb, and the chain links mean each record is copied
// exactly once even though every batch entry reaches the whole tail.
func TestWritePtrBatchSharedClimb(t *testing.T) {
	root, child, _ := hierarchy()
	defer freeAll(root, child)
	const k = 8
	var ops Counters
	arr := Alloc(nil, root, &ops, k, 0, mem.TagArrPtr)
	cells := buildChain(child, &ops, k, 100)

	buf := NewPromoteBuf(0) // default capacity (32) — one flush
	WritePtrBatch(nil, child, buf, &ops, arr, 0, cells)

	if ops.WritePtrProm != k || ops.Promotions != k || ops.WritePtrBatched != k {
		t.Fatalf("batch counters: %+v", ops)
	}
	if ops.PromoteClimbs != 1 {
		t.Fatalf("want one shared climb, got %d", ops.PromoteClimbs)
	}
	if ops.ClimbLockedHeaps != 2 { // child + root
		t.Fatalf("locked-path length %d, want 2", ops.ClimbLockedHeaps)
	}
	if ops.PromotedObjects != k {
		t.Fatalf("chain members copied %d times, want %d (shared tail copied once)",
			ops.PromotedObjects, k)
	}
	for i := 0; i < k; i++ {
		got := ReadMutPtr(&ops, arr, i)
		if heap.Of(got) != root {
			t.Fatalf("slot %d not promoted to root", i)
		}
		if v := ReadImmWord(&ops, got, 0); v != 100+uint64(i) {
			t.Fatalf("slot %d value %d, want %d", i, v, 100+i)
		}
	}
	// Sharing preserved: slot i's link must be slot i-1's record.
	for i := 1; i < k; i++ {
		if ReadImmPtr(&ops, ReadMutPtr(&ops, arr, i), 0) != ReadMutPtr(&ops, arr, i-1) {
			t.Fatalf("slot %d lost its shared link", i)
		}
	}
	if err := CheckSubtree(root, child); err != nil {
		t.Fatal(err)
	}
}

// TestWritePtrBatchCapOneEquivalent checks the batching ablation: capacity
// 1 degenerates to one climb per promoting write but produces the
// identical object graph.
func TestWritePtrBatchCapOneEquivalent(t *testing.T) {
	const k = 6
	run := func(capacity int) (Counters, []uint64) {
		root, child, _ := hierarchy()
		defer freeAll(root, child)
		var ops Counters
		arr := Alloc(nil, root, &ops, k, 0, mem.TagArrPtr)
		cells := buildChain(child, &ops, k, 500)
		WritePtrBatch(nil, child, NewPromoteBuf(capacity), &ops, arr, 0, cells)
		vals := make([]uint64, k)
		for i := range vals {
			vals[i] = ReadImmWord(&ops, ReadMutPtr(&ops, arr, i), 0)
		}
		if err := CheckSubtree(root, child); err != nil {
			t.Fatal(err)
		}
		return ops, vals
	}
	batched, bv := run(0)
	perObj, pv := run(1)
	if batched.PromoteClimbs != 1 || perObj.PromoteClimbs != k {
		t.Fatalf("climbs: batched %d, per-object %d (want 1 and %d)",
			batched.PromoteClimbs, perObj.PromoteClimbs, k)
	}
	if batched.PromotedObjects != perObj.PromotedObjects {
		t.Fatalf("copy volume differs: %d vs %d", batched.PromotedObjects, perObj.PromotedObjects)
	}
	for i := range bv {
		if bv[i] != pv[i] {
			t.Fatalf("slot %d: batched %d, per-object %d", i, bv[i], pv[i])
		}
	}
}

// TestWritePtrBatchMixed drives a batch whose entries span every class:
// nil, already-shallow, and promoting pointees.
func TestWritePtrBatchMixed(t *testing.T) {
	root, child, _ := hierarchy()
	defer freeAll(root, child)
	var ops Counters
	arr := Alloc(nil, root, &ops, 3, 0, mem.TagArrPtr)
	shallow := Alloc(nil, root, &ops, 0, 1, mem.TagRef)
	deep := Alloc(nil, child, &ops, 0, 1, mem.TagRef)
	WriteInitWord(&ops, deep, 0, 9)

	WritePtrBatch(nil, child, NewPromoteBuf(0), &ops, arr, 0,
		[]mem.ObjPtr{mem.NilPtr, shallow, deep})

	if ops.WritePtrNonProm != 2 || ops.WritePtrProm != 1 || ops.WritePtrBatched != 0 {
		t.Fatalf("mixed batch counters: %+v", ops)
	}
	if !ReadMutPtr(&ops, arr, 0).IsNil() || ReadMutPtr(&ops, arr, 1) != shallow {
		t.Fatal("non-promoting entries mis-stored")
	}
	if got := ReadMutPtr(&ops, arr, 2); heap.Of(got) != root || ReadImmWord(&ops, got, 0) != 9 {
		t.Fatal("promoting entry not promoted correctly")
	}
	if err := CheckSubtree(root, child); err != nil {
		t.Fatal(err)
	}
}

// TestWritePtrBatchLocalFast checks that a batch into the current leaf
// heap is a pure fast-path store run.
func TestWritePtrBatchLocalFast(t *testing.T) {
	root, child, _ := hierarchy()
	defer freeAll(root, child)
	var ops Counters
	arr := Alloc(nil, child, &ops, 2, 0, mem.TagArrPtr)
	a := Alloc(nil, child, &ops, 0, 1, mem.TagRef)
	WritePtrBatch(nil, child, nil, &ops, arr, 0, []mem.ObjPtr{a, mem.NilPtr})
	if ops.WritePtrFast != 2 || ops.PromoteClimbs != 0 {
		t.Fatalf("local batch counters: %+v", ops)
	}
	if ReadMutPtr(&ops, arr, 0) != a || !ReadMutPtr(&ops, arr, 1).IsNil() {
		t.Fatal("local batch mis-stored")
	}
}

// TestAncestorFastPathNeverLosesToPromotion is the race-clean invariant
// behind the optimistic ancestor-pointee write: while one task promotes an
// object (installing its forwarding pointer and copying the body), another
// task writes a root value into a field of the same object through the
// lock-free fast path. Whatever the interleaving, the master copy must end
// up holding the written value — either the promotion's copy phase
// observed the optimistic store, or the writer observed the forwarding
// pointer and redid the write on the master. Run under -race.
func TestAncestorFastPathNeverLosesToPromotion(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		root := heap.NewRoot()
		child := heap.NewChild(root)
		var setup Counters
		cell := Alloc(nil, root, &setup, 1, 0, mem.TagRef)
		obj := Alloc(nil, child, &setup, 1, 0, mem.TagRef)
		val := Alloc(nil, root, &setup, 0, 1, mem.TagRef)

		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // promoter: publishes obj, forcing its promotion to root
			defer wg.Done()
			var ops Counters
			WritePtr(nil, child, nil, &ops, cell, 0, obj)
		}()
		go func() { // optimistic writer racing the promotion
			defer wg.Done()
			var ops Counters
			// val is at the root: depth(obj's heap) >= depth(val's heap),
			// the ancestor fast path.
			WritePtr(nil, child, nil, &ops, obj, 0, val)
		}()
		wg.Wait()

		var ops Counters
		m, h := FindMaster(&ops, obj)
		got := mem.LoadPtrFieldAtomic(m, 0)
		h.Unlock()
		if got != val {
			t.Fatalf("iter %d: update lost: master field %v, want %v", iter, got, val)
		}
		if err := CheckSubtree(root, child); err != nil {
			t.Fatal(err)
		}
		freeAll(root, child)
	}
}

// TestConcurrentBatchPromotions races sibling tasks batch-publishing into
// disjoint slot ranges of one shared root array: the climbs contend on the
// root heap's write lock, and every slot must come out promoted and
// intact. Run under -race.
func TestConcurrentBatchPromotions(t *testing.T) {
	const siblings = 4
	const perSibling = 16
	const rounds = 20

	root := heap.NewRoot()
	defer freeAll(root)
	var setup Counters
	arr := Alloc(nil, root, &setup, siblings*perSibling, 0, mem.TagArrPtr)

	children := make([]*heap.Heap, siblings)
	for i := range children {
		children[i] = heap.NewChild(root)
	}
	defer freeAll(children...)

	var wg sync.WaitGroup
	opsPer := make([]Counters, siblings)
	for s := 0; s < siblings; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ops := &opsPer[s]
			buf := NewPromoteBuf(0)
			for r := 0; r < rounds; r++ {
				cells := buildChain(children[s], ops, perSibling, uint64(s*1000))
				WritePtrBatch(nil, children[s], buf, ops, arr, s*perSibling, cells)
			}
		}(s)
	}
	wg.Wait()

	var total Counters
	total.Add(&setup)
	for i := range opsPer {
		total.Add(&opsPer[i])
	}
	if want := int64(siblings * perSibling * rounds); total.Promotions != want {
		t.Fatalf("promotions = %d, want %d", total.Promotions, want)
	}
	if total.PromoteClimbs >= total.Promotions {
		t.Fatalf("no climb sharing: %d climbs for %d promotions",
			total.PromoteClimbs, total.Promotions)
	}
	var ops Counters
	for s := 0; s < siblings; s++ {
		for i := 0; i < perSibling; i++ {
			got := ReadMutPtr(&ops, arr, s*perSibling+i)
			if heap.Of(got) != root {
				t.Fatalf("slot %d/%d not at root", s, i)
			}
			if v := ReadImmWord(&ops, got, 0); v != uint64(s*1000+i) {
				t.Fatalf("slot %d/%d value %d", s, i, v)
			}
		}
	}
	if err := CheckSubtree(append([]*heap.Heap{root}, children...)...); err != nil {
		t.Fatal(err)
	}
}
