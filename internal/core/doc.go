// Package core implements the paper's primary contribution: the high-level
// memory operations of Figure 3 realized over hierarchical heaps with
// support for mutable state (Figures 5–7).
//
// The central invariant is disentanglement: a pointer stored in heap h may
// only refer to objects in h or its ancestors. Reads of immutable data are
// plain loads (no barrier). Mutable accesses honor the master-copy
// discipline: when promotion has duplicated an object, its copies form a
// forwarding-pointer chain whose last element — the copy in the shallowest
// heap — is authoritative. FindMaster walks the chain with double-checked
// read locking; reads and non-pointer writes use optimistic fast paths that
// touch the master only when a forwarding pointer is present.
//
// WritePtr is the interesting case: storing a pointer to a deeper object
// into a shallower one would create a down-pointer, so the pointee and
// everything reachable from it is first promoted (copied) into the target
// heap under write locks acquired on the heap path from the pointee's heap
// up to the master's heap, deepest first (deadlock-free by hierarchy).
//
// Promotion vs. in-flight collection: zone collections (package gc) run
// concurrently with these operations. The two machineries never meet on an
// object — a promotion only touches heaps on its own task's root path,
// while a collection zone is a heap with no live descendants, which by
// disentanglement no other task can reference — and never deadlock on a
// lock: both acquire multi-heap locks bottom-up (deepest first), and a
// zone is admitted (gc.ZoneScheduler) before any of its locks are taken,
// so no acquisition ever waits on a heap deeper than one it holds. The
// zone's write locks exist as a second line of defense: if entanglement
// ever leaked a pointer into a zone, findMaster's read locks and the
// promotion path's write locks would serialize against the collection
// instead of observing objects mid-copy.
//
// All operations count themselves into per-task Counters so the evaluation
// can report the Figure 8/9 operation taxonomy.
package core
