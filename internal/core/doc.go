// Package core implements the paper's primary contribution: the high-level
// memory operations of Figure 3 realized over hierarchical heaps with
// support for mutable state (Figures 5–7).
//
// The central invariant is disentanglement: a pointer stored in heap h may
// only refer to objects in h or its ancestors. Reads of immutable data are
// plain loads (no barrier). Mutable accesses honor the master-copy
// discipline: when promotion has duplicated an object, its copies form a
// forwarding-pointer chain whose last element — the copy in the shallowest
// heap — is authoritative. FindMaster walks the chain with double-checked
// read locking.
//
// # Barrier taxonomy
//
// Every mutable access falls into one of three cost tiers (the full
// decision diagram is in DESIGN.md §5, and docs/PAPER-MAP.md maps each
// tier back to the paper's figures):
//
//   - Lock-free fast paths. Reads and non-pointer writes go straight to
//     the object and check for a forwarding pointer afterwards; unpromoted
//     objects pay a couple of instructions. Pointer writes have two such
//     paths: the local path (the object is in the task's own leaf heap,
//     where promotion is impossible) and the ancestor-pointee path (the
//     pointee's heap is no deeper than the object's, so the write cannot
//     entangle; the store is optimistic with a forwarding recheck, exactly
//     like WriteNonptr).
//   - FindMaster under the read lock. Forwarded objects, compare-and-swap
//     (which cannot be optimistic), and non-promoting writes whose object
//     was promoted redirect to the master copy while holding its heap's
//     lock in shared mode.
//   - The promotion climb. A pointer write whose pointee is deeper than
//     the object's master write-locks the heap path from the pointee's
//     heap up to the master's, deepest first, and copies the pointee's
//     reachable graph upward (writePromote). WritePtrBatch amortizes the
//     climb across a batch of writes staged in the task's PromoteBuf: one
//     climb promotes every staged pointee, and pointees flushed together
//     share one copy pass.
//
// Promotion vs. in-flight collection: zone collections (package gc) run
// concurrently with these operations. The two machineries never meet on an
// object — a promotion only touches heaps on its own task's root path,
// while a collection zone is a heap with no live descendants, which by
// disentanglement no other task can reference — and never deadlock on a
// lock: both acquire multi-heap locks bottom-up (deepest first), and a
// zone is admitted (gc.ZoneScheduler) before any of its locks are taken,
// so no acquisition ever waits on a heap deeper than one it holds. The
// zone's write locks exist as a second line of defense: if entanglement
// ever leaked a pointer into a zone, findMaster's read locks and the
// promotion path's write locks would serialize against the collection
// instead of observing objects mid-copy.
//
// All operations count themselves into per-task Counters so the evaluation
// can report the Figure 8/9 operation taxonomy, the barrier fast/slow mix,
// and the lock-climb amortization (hhbench -table promote).
package core
