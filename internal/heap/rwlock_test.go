package heap

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRWLockBasic(t *testing.T) {
	var l RWLock
	l.RLock()
	l.RLock()
	l.Unlock()
	l.Unlock()
	l.WLock()
	l.Unlock()
	l.Lock(READ)
	l.Unlock()
	l.Lock(WRITE)
	l.Unlock()
}

func TestRWLockUnlockUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unheld lock must panic")
		}
	}()
	var l RWLock
	l.Unlock()
}

func TestRWLockWriterExcludesReaders(t *testing.T) {
	var l RWLock
	l.WLock()
	acquired := make(chan struct{})
	go func() {
		l.RLock()
		close(acquired)
		l.Unlock()
	}()
	select {
	case <-acquired:
		t.Fatal("reader acquired while writer held")
	case <-time.After(20 * time.Millisecond):
	}
	l.Unlock()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("reader never acquired after writer release")
	}
}

func TestRWLockMutualExclusionStress(t *testing.T) {
	var l RWLock
	var shared int64
	var inWriter atomic.Int32
	var wg sync.WaitGroup
	const writers, readers, iters = 4, 4, 2000

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.WLock()
				if inWriter.Add(1) != 1 {
					t.Error("two writers inside critical section")
				}
				shared++
				inWriter.Add(-1)
				l.Unlock()
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.RLock()
				if inWriter.Load() != 0 {
					t.Error("reader overlapped a writer")
				}
				_ = shared
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if shared != writers*iters {
		t.Fatalf("lost updates: shared=%d want %d", shared, writers*iters)
	}
	st := l.Stats()
	if st.WriteAcquires != writers*iters || st.ReadAcquires != readers*iters {
		t.Fatalf("acquisition counters wrong: %+v", st)
	}
}

func TestRWLockWriterPreference(t *testing.T) {
	var l RWLock
	l.RLock() // held reader

	writerIn := make(chan struct{})
	go func() {
		l.WLock()
		close(writerIn)
		l.Unlock()
	}()
	// Give the writer time to start waiting.
	for {
		l.mu.Lock()
		waiting := l.waitingWriters
		l.mu.Unlock()
		if waiting == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// A new reader must queue behind the waiting writer.
	readerIn := make(chan struct{})
	go func() {
		l.RLock()
		close(readerIn)
		l.Unlock()
	}()
	select {
	case <-readerIn:
		t.Fatal("reader overtook a waiting writer")
	case <-time.After(20 * time.Millisecond):
	}

	l.Unlock() // release original reader: writer goes first
	<-writerIn
	<-readerIn
}
