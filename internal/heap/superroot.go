package heap

import (
	"sync"

	"repro/internal/mem"
)

// Super-root support: the serving layer runs many simultaneous root-level
// subtrees ("sessions") under one process super-root heap. The super-root
// tracks its attached children so the runtime can enumerate abandoned
// subtrees at shutdown, and a completed subtree can be reclaimed WHOLESALE:
// its chunks are released in bulk without ever being merged into the root,
// the region-style payoff of the hierarchy — reclamation cost proportional
// to the number of chunks, not to the live data.
//
// The registry is STRIPED by child heap ID: every session's attach at
// submit and detach at reclaim used to serialize on one per-parent mutex,
// which at high session churn was a per-request global lock on the serving
// path. With stripes, concurrent sessions touch disjoint stripe locks with
// high probability; enumeration (a shutdown path) locks the stripes one at
// a time.
//
// Lock ordering note: AttachChild / DetachChild touch only one stripe of
// the parent's child registry (leaf-level mutexes, never held while taking
// a heap lock or another stripe), so they compose with the deepest-first
// heap lock order without extending it. ReleaseWholesale takes no heap
// locks at all — its contract is that the subtree's tasks have completed
// and nothing else can reach the subtree (disentanglement keeps other
// sessions' root paths disjoint).

// childStripeCount is the number of stripes in a child registry. Sessions
// hash to stripes by heap ID, so 16 keeps collisions between a handful of
// concurrently attaching/detaching sessions rare while costing one small
// fixed array per super-root (registries are lazily allocated, and only
// heaps that host sessions ever have one).
const (
	childStripeShift = 4
	childStripeCount = 1 << childStripeShift
)

type childStripe struct {
	mu       sync.Mutex
	children map[*Heap]struct{}
	_        [64]byte // keep neighbouring stripe mutexes off one cache line
}

type childRegistry struct {
	stripes [childStripeCount]childStripe
}

// stripeFor maps a child heap to its registry stripe. Heap IDs are
// sequential, so the multiplicative hash spreads the consecutive IDs of a
// burst of new sessions across stripes.
func (r *childRegistry) stripeFor(c *Heap) *childStripe {
	return &r.stripes[(c.id*0x9E3779B97F4A7C15)>>(64-childStripeShift)]
}

// registry returns h's child registry, installing one on first use. The
// CAS makes concurrent first attaches converge on a single registry.
func (h *Heap) registry() *childRegistry {
	if r := h.childReg.Load(); r != nil {
		return r
	}
	fresh := &childRegistry{}
	if h.childReg.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return h.childReg.Load()
}

// AttachChild creates a heap one level below h and records it in h's child
// registry. The serving layer attaches one child per session under the
// process super-root; DetachChild (or ReleaseWholesale via the runtime)
// must be called when the session completes.
func (h *Heap) AttachChild() *Heap {
	c := NewChild(h)
	str := h.registry().stripeFor(c)
	str.mu.Lock()
	if str.children == nil {
		str.children = make(map[*Heap]struct{})
	}
	str.children[c] = struct{}{}
	str.mu.Unlock()
	return c
}

// DetachChild removes c from h's child registry. Detaching a heap that was
// never attached (or was already detached) is a no-op.
func (h *Heap) DetachChild(c *Heap) {
	r := h.childReg.Load()
	if r == nil {
		return
	}
	str := r.stripeFor(c)
	str.mu.Lock()
	delete(str.children, c)
	str.mu.Unlock()
}

// AttachedChildren snapshots the heaps currently attached to h. The
// runtime's Close walks it to release subtrees of sessions that were never
// drained. Stripes are locked one at a time, so the snapshot is per-stripe
// consistent; callers (shutdown, tests) run after session traffic stops.
func (h *Heap) AttachedChildren() []*Heap {
	r := h.childReg.Load()
	if r == nil {
		return nil
	}
	var out []*Heap
	for i := range r.stripes {
		str := &r.stripes[i]
		str.mu.Lock()
		for c := range str.children {
			out = append(out, c)
		}
		str.mu.Unlock()
	}
	return out
}

// AttachedCount reports how many children are currently attached to h.
func (h *Heap) AttachedCount() int {
	r := h.childReg.Load()
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.stripes {
		str := &r.stripes[i]
		str.mu.Lock()
		n += len(str.children)
		str.mu.Unlock()
	}
	return n
}

// ReleaseWholesale releases every chunk of child in bulk — no merge, no
// copy, no per-object work — and aliases child to parent so that any stale
// descriptor reference resolves somewhere live. The chunks go back to the
// recycling allocator, not the OS: cc is the calling worker's chunk cache
// (nil when the caller has none), which takes the slabs first, overflowing
// to the global size-classed pool — so the next request's heaps are built
// from this request's chunks without touching the directory ID lock.
// Every released chunk's directory entry is invalidated before the slab
// can be reused; a surviving ObjPtr into the subtree panics in GetChunk.
// It returns the bytes of chunk capacity released.
//
// The caller must guarantee that every task of child's subtree has
// completed and that no live pointer (from parent or anywhere else) targets
// an object in child: this is the serving layer's unpinned-session
// contract. Heaps that were already merged away resolve to their live
// target and release nothing here.
func ReleaseWholesale(cc *mem.ChunkCache, parent, child *Heap) int64 {
	parent = parent.Resolve()
	child = child.Resolve()
	if child == parent {
		return 0 // already merged into the survivor; nothing separate to free
	}
	if child.isTo || parent.isTo {
		panic("heap: wholesale release of a to-space")
	}
	bytes := child.CapWords() * 8
	// Deferred-promotion pins die with the subtree: drop the remembered set
	// BEFORE the chunks, so no window exists in which an entry references a
	// recycled chunk (the invariant checker would trip on it). The runtime's
	// session path has already swept the set (core.DrainForRelease).
	dropRememberedOnRelease(child)
	RecycleChunkList(cc, child.TakeChunks())
	child.AllocSinceGC, child.LiveWords = 0, 0
	child.merged.Store(parent)
	return bytes
}
