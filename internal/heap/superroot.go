package heap

import "repro/internal/mem"

// Super-root support: the serving layer runs many simultaneous root-level
// subtrees ("sessions") under one process super-root heap. The super-root
// tracks its attached children so the runtime can enumerate abandoned
// subtrees at shutdown, and a completed subtree can be reclaimed WHOLESALE:
// its chunks are released in bulk without ever being merged into the root,
// the region-style payoff of the hierarchy — reclamation cost proportional
// to the number of chunks, not to the live data.
//
// Lock ordering note: AttachChild / DetachChild touch only the parent's
// child registry (its own mutex, leaf-level, never held while taking a heap
// lock), so they compose with the deepest-first heap lock order without
// extending it. ReleaseWholesale takes no heap locks at all — its contract
// is that the subtree's tasks have completed and nothing else can reach the
// subtree (disentanglement keeps other sessions' root paths disjoint).

// AttachChild creates a heap one level below h and records it in h's child
// registry. The serving layer attaches one child per session under the
// process super-root; DetachChild (or ReleaseWholesale via the runtime)
// must be called when the session completes.
func (h *Heap) AttachChild() *Heap {
	c := NewChild(h)
	h.childMu.Lock()
	if h.children == nil {
		h.children = make(map[*Heap]struct{})
	}
	h.children[c] = struct{}{}
	h.childMu.Unlock()
	return c
}

// DetachChild removes c from h's child registry. Detaching a heap that was
// never attached (or was already detached) is a no-op.
func (h *Heap) DetachChild(c *Heap) {
	h.childMu.Lock()
	delete(h.children, c)
	h.childMu.Unlock()
}

// AttachedChildren snapshots the heaps currently attached to h. The
// runtime's Close walks it to release subtrees of sessions that were never
// drained.
func (h *Heap) AttachedChildren() []*Heap {
	h.childMu.Lock()
	defer h.childMu.Unlock()
	out := make([]*Heap, 0, len(h.children))
	for c := range h.children {
		out = append(out, c)
	}
	return out
}

// AttachedCount reports how many children are currently attached to h.
func (h *Heap) AttachedCount() int {
	h.childMu.Lock()
	defer h.childMu.Unlock()
	return len(h.children)
}

// ReleaseWholesale releases every chunk of child in bulk — no merge, no
// copy, no per-object work — and aliases child to parent so that any stale
// descriptor reference resolves somewhere live. The chunks go back to the
// recycling allocator, not the OS: cc is the calling worker's chunk cache
// (nil when the caller has none), which takes the slabs first, overflowing
// to the global size-classed pool — so the next request's heaps are built
// from this request's chunks without touching the directory ID lock.
// Every released chunk's directory entry is invalidated before the slab
// can be reused; a surviving ObjPtr into the subtree panics in GetChunk.
// It returns the bytes of chunk capacity released.
//
// The caller must guarantee that every task of child's subtree has
// completed and that no live pointer (from parent or anywhere else) targets
// an object in child: this is the serving layer's unpinned-session
// contract. Heaps that were already merged away resolve to their live
// target and release nothing here.
func ReleaseWholesale(cc *mem.ChunkCache, parent, child *Heap) int64 {
	parent = parent.Resolve()
	child = child.Resolve()
	if child == parent {
		return 0 // already merged into the survivor; nothing separate to free
	}
	if child.isTo || parent.isTo {
		panic("heap: wholesale release of a to-space")
	}
	bytes := child.CapWords() * 8
	RecycleChunkList(cc, child.TakeChunks())
	child.AllocSinceGC, child.LiveWords = 0, 0
	child.merged.Store(parent)
	return bytes
}
