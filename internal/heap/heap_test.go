package heap

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// freeHeap releases a live heap's chunks for test cleanup.
func freeHeap(h *Heap) { FreeChunkList(h.TakeChunks()) }

func TestHeapAllocAndOwnership(t *testing.T) {
	h := NewRoot()
	defer freeHeap(h)
	p := h.FreshObj(1, 2, mem.TagTuple)
	if Of(p) != h {
		t.Fatal("heapOf must return the allocating heap")
	}
	if mem.NumPtrFields(p) != 1 || mem.NumNonptrWords(p) != 2 {
		t.Fatal("object shape wrong")
	}
	if mem.LoadPtrField(p, 0) != mem.NilPtr || mem.LoadWordField(p, 0) != 0 {
		t.Fatal("fresh object fields must be zero")
	}
	if h.UsedWords() != int64(mem.ObjectWords(1, 2)) {
		t.Fatalf("UsedWords = %d", h.UsedWords())
	}
}

func TestHeapDepthAndParent(t *testing.T) {
	root := NewRoot()
	c1 := NewChild(root)
	c2 := NewChild(c1)
	if root.Depth() != 0 || c1.Depth() != 1 || c2.Depth() != 2 {
		t.Fatalf("depths: %d %d %d", root.Depth(), c1.Depth(), c2.Depth())
	}
	if root.Parent() != nil || c1.Parent() != root || c2.Parent() != c1 {
		t.Fatal("parents wrong")
	}
}

func TestHeapGrowsChunks(t *testing.T) {
	h := NewRoot()
	defer freeHeap(h)
	// Allocate more than one chunk's worth of small objects.
	per := mem.ObjectWords(0, 6)
	n := mem.DefaultChunkWords/per + 10
	for i := 0; i < n; i++ {
		h.FreshObj(0, 6, mem.TagTuple)
	}
	if h.NumChunks() < 2 {
		t.Fatalf("expected chunk growth, got %d chunks", h.NumChunks())
	}
	if h.UsedWords() != int64(n*per) {
		t.Fatalf("UsedWords = %d want %d", h.UsedWords(), n*per)
	}
}

func TestHeapLargeObject(t *testing.T) {
	h := NewRoot()
	defer freeHeap(h)
	big := 3 * mem.DefaultChunkWords
	p := h.FreshObj(0, big, mem.TagArrI64)
	if mem.NumNonptrWords(p) != big {
		t.Fatal("large array shape wrong")
	}
	mem.StoreWordField(p, big-1, 77)
	if mem.LoadWordField(p, big-1) != 77 {
		t.Fatal("large array last word roundtrip failed")
	}
}

func TestJoinMovesOwnership(t *testing.T) {
	parent := NewRoot()
	defer freeHeap(parent)
	child := NewChild(parent)
	p := parent.FreshObj(0, 1, mem.TagRef)
	q := child.FreshObj(0, 1, mem.TagRef)
	Join(parent, child)
	if !parent.IsAlive() || child.IsAlive() {
		t.Fatal("join must merge child into parent")
	}
	if Of(p) != parent || Of(q) != parent {
		t.Fatal("after join both objects belong to the parent")
	}
	if child.Resolve() != parent {
		t.Fatal("child must resolve to parent")
	}
	if child.Depth() != 0 {
		t.Fatal("merged child reports the parent's depth")
	}
}

func TestJoinSplicesChunkCounts(t *testing.T) {
	parent := NewRoot()
	defer freeHeap(parent)
	child := NewChild(parent)
	parent.FreshObj(0, 4, mem.TagTuple)
	child.FreshObj(0, 4, mem.TagTuple)
	child.FreshObj(0, mem.DefaultChunkWords, mem.TagArrI64) // forces 2nd chunk
	pw, cw := parent.UsedWords(), child.UsedWords()
	pc, cc := parent.NumChunks(), child.NumChunks()
	Join(parent, child)
	if parent.UsedWords() != pw+cw {
		t.Fatal("used words not accumulated")
	}
	if parent.NumChunks() != pc+cc {
		t.Fatal("chunk counts not accumulated")
	}
	n := 0
	for c := parent.Chunks(); c != nil; c = c.Next {
		n++
	}
	if n != parent.NumChunks() {
		t.Fatalf("chunk list has %d entries, counter says %d", n, parent.NumChunks())
	}
}

func TestJoinSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-join must panic")
		}
	}()
	h := NewRoot()
	Join(h, h)
}

func TestResolveChainCompression(t *testing.T) {
	// Build a chain root <- a <- b <- c, join bottom-up, check resolution.
	root := NewRoot()
	defer freeHeap(root)
	a := NewChild(root)
	b := NewChild(a)
	c := NewChild(b)
	Join(b, c)
	Join(a, b)
	Join(root, a)
	for _, h := range []*Heap{a, b, c} {
		if h.Resolve() != root {
			t.Fatalf("%v does not resolve to root", h)
		}
	}
}

func TestUnionFindProperty(t *testing.T) {
	// Property: after joining a random tree of heaps bottom-up, every heap
	// resolves to the root and every allocated object is owned by the root.
	f := func(shape []uint8) bool {
		if len(shape) > 40 {
			shape = shape[:40]
		}
		root := NewRoot()
		heaps := []*Heap{root}
		var objs []mem.ObjPtr
		for _, s := range shape {
			parent := heaps[int(s)%len(heaps)]
			if !parent.IsAlive() {
				parent = parent.Resolve()
			}
			h := NewChild(parent)
			heaps = append(heaps, h)
			objs = append(objs, h.FreshObj(0, 1, mem.TagRef))
		}
		// Join children deepest-first.
		for i := len(heaps) - 1; i >= 1; i-- {
			h := heaps[i]
			if h.IsAlive() {
				Join(h.Parent(), h)
			}
		}
		ok := true
		for _, h := range heaps {
			if h.Resolve() != root {
				ok = false
			}
		}
		for _, p := range objs {
			if Of(p) != root {
				ok = false
			}
		}
		freeHeap(root)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTwinAdopt(t *testing.T) {
	h := NewRoot()
	h.FreshObj(0, 3, mem.TagTuple)
	twin := NewTwin(h)
	if !twin.IsTo() || twin.Depth() != h.Depth() {
		t.Fatal("twin must be a to-space at the same depth")
	}
	q := twin.FreshObj(0, 3, mem.TagTuple)
	old := h.TakeChunks()
	h.AdoptFrom(twin)
	FreeChunkList(old)
	defer freeHeap(h)
	if Of(q) != h {
		t.Fatal("adopted object must belong to the original heap")
	}
	if h.IsTo() {
		t.Fatal("heap itself must not become a to-space")
	}
	if h.AllocSinceGC != 0 || h.LiveWords != h.UsedWords() {
		t.Fatal("GC bookkeeping not reset by adoption")
	}
}

func TestSuperheapPushPop(t *testing.T) {
	root := NewRoot()
	defer freeHeap(root)
	sh := NewSuperheap(root)
	if sh.Current() != root || sh.Base() != root || sh.Len() != 1 {
		t.Fatal("fresh superheap state wrong")
	}
	h1 := sh.Push()
	if h1.Depth() != 1 || sh.Current() != h1 {
		t.Fatal("push must create the next depth")
	}
	p := h1.FreshObj(0, 1, mem.TagRef)
	sh.PopJoin()
	if sh.Current() != root || Of(p) != root {
		t.Fatal("pop must join into the base")
	}
}

func TestSuperheapPopBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PopJoin at base must panic")
		}
	}()
	sh := NewSuperheap(NewRoot())
	sh.PopJoin()
}

func TestSuperheapAdoptJoin(t *testing.T) {
	root := NewRoot()
	defer freeHeap(root)
	parent := NewSuperheap(root)
	forkHeap := parent.Push() // depth 1, where the fork happens

	// A thief builds its own superheap as a child of the fork heap.
	stolenBase := NewChild(forkHeap)
	thief := NewSuperheap(stolenBase)
	h2 := thief.Push()
	p := h2.FreshObj(0, 1, mem.TagRef)
	thief.PopJoin()

	parent.AdoptJoin(thief)
	if Of(p) != forkHeap {
		t.Fatal("stolen data must land in the fork-point heap after adoption")
	}
	parent.PopJoin()
	if Of(p) != root {
		t.Fatal("data must reach the root after the final join")
	}
}

func TestOfUnownedPanics(t *testing.T) {
	c := mem.NewChunk(8)
	defer mem.FreeChunk(c)
	off, _ := c.Bump(uint32(mem.ObjectWords(0, 1)))
	p := mem.InitObject(c, off, 0, 1, mem.TagRef)
	defer func() {
		if recover() == nil {
			t.Fatal("Of on unowned chunk must panic")
		}
	}()
	Of(p)
}
