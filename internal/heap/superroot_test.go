package heap

import (
	"testing"

	"repro/internal/mem"
)

func TestAttachDetachChildren(t *testing.T) {
	root := NewRoot()
	a := root.AttachChild()
	b := root.AttachChild()
	if a.Parent() != root || b.Parent() != root {
		t.Fatalf("attached children must parent at the super-root")
	}
	if a.Depth() != 1 || b.Depth() != 1 {
		t.Fatalf("attached children at depth %d/%d, want 1", a.Depth(), b.Depth())
	}
	if n := root.AttachedCount(); n != 2 {
		t.Fatalf("AttachedCount = %d, want 2", n)
	}
	root.DetachChild(a)
	if n := root.AttachedCount(); n != 1 {
		t.Fatalf("AttachedCount after detach = %d, want 1", n)
	}
	root.DetachChild(a) // double detach is a no-op
	kids := root.AttachedChildren()
	if len(kids) != 1 || kids[0] != b {
		t.Fatalf("AttachedChildren = %v, want [%v]", kids, b)
	}
	root.DetachChild(b)
	FreeChunkList(a.TakeChunks())
	FreeChunkList(b.TakeChunks())
}

func TestReleaseWholesaleFreesChunksWithoutMerging(t *testing.T) {
	base := mem.ChunksInUse()
	root := NewRoot()
	child := root.AttachChild()
	for i := 0; i < 64; i++ {
		child.FreshObj(2, 6, mem.TagTuple)
	}
	if child.NumChunks() == 0 {
		t.Fatal("expected the child to own chunks")
	}
	rootChunksBefore := root.NumChunks()
	wantBytes := child.CapWords() * 8

	root.DetachChild(child)
	got := ReleaseWholesale(nil, root, child)
	if got != wantBytes {
		t.Fatalf("ReleaseWholesale returned %d bytes, want %d", got, wantBytes)
	}
	if root.NumChunks() != rootChunksBefore {
		t.Fatalf("wholesale release must not splice chunks into the root (%d -> %d)",
			rootChunksBefore, root.NumChunks())
	}
	if child.IsAlive() {
		t.Fatal("released child should alias its parent")
	}
	if child.Resolve() != root {
		t.Fatal("released child should resolve to the super-root")
	}
	if mem.ChunksInUse() != base {
		t.Fatalf("chunks leaked: %d in use, want %d", mem.ChunksInUse(), base)
	}
	// Releasing again (now an alias of root) frees nothing.
	if again := ReleaseWholesale(nil, root, child); again != 0 {
		t.Fatalf("second release freed %d bytes, want 0", again)
	}
}

func TestReleaseWholesaleAfterJoinIsNoop(t *testing.T) {
	root := NewRoot()
	child := NewChild(root)
	child.FreshObj(0, 4, mem.TagTuple)
	Join(root, child)
	if n := ReleaseWholesale(nil, root, child); n != 0 {
		t.Fatalf("release after join freed %d bytes, want 0 (chunks belong to the root now)", n)
	}
	FreeChunkList(root.TakeChunks())
}
