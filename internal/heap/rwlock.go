package heap

import "sync"

// Mode selects how a heap lock is acquired, following the paper's
// lock(heap, mode) primitive.
type Mode int

// Lock acquisition modes.
const (
	READ Mode = iota
	WRITE
)

// RWLock is a counting readers-writer lock with writer preference.
// Promotions (writers) must not starve behind streams of findMaster calls
// (readers), so arriving readers queue behind waiting writers.
//
// Unlike sync.RWMutex it exposes a mode-less Unlock matching the paper's
// unlock(heap), and it counts acquisitions and contention events so the
// evaluation can report locking behaviour (usp-tree's serialization).
type RWLock struct {
	mu             sync.Mutex
	cond           *sync.Cond
	readers        int
	writer         bool
	waitingWriters int

	// statistics, guarded by mu
	rAcquires  int64
	wAcquires  int64
	rContended int64
	wContended int64
}

// LockStats is a snapshot of a lock's acquisition counters.
type LockStats struct {
	ReadAcquires   int64
	WriteAcquires  int64
	ReadContended  int64
	WriteContended int64
}

func (l *RWLock) init() {
	if l.cond == nil {
		l.cond = sync.NewCond(&l.mu)
	}
}

// Lock acquires the lock in the given mode.
func (l *RWLock) Lock(m Mode) {
	if m == WRITE {
		l.WLock()
	} else {
		l.RLock()
	}
}

// RLock acquires the lock in shared (read) mode.
func (l *RWLock) RLock() {
	l.mu.Lock()
	l.init()
	l.rAcquires++
	if l.writer || l.waitingWriters > 0 {
		l.rContended++
		for l.writer || l.waitingWriters > 0 {
			l.cond.Wait()
		}
	}
	l.readers++
	l.mu.Unlock()
}

// WLock acquires the lock in exclusive (write) mode.
func (l *RWLock) WLock() {
	l.mu.Lock()
	l.init()
	l.wAcquires++
	if l.writer || l.readers > 0 {
		l.wContended++
		l.waitingWriters++
		for l.writer || l.readers > 0 {
			l.cond.Wait()
		}
		l.waitingWriters--
	}
	l.writer = true
	l.mu.Unlock()
}

// Unlock releases the lock, whichever mode it is held in. It panics if the
// lock is not held.
func (l *RWLock) Unlock() {
	l.mu.Lock()
	l.init()
	switch {
	case l.writer:
		l.writer = false
	case l.readers > 0:
		l.readers--
	default:
		l.mu.Unlock()
		panic("heap: Unlock of unlocked RWLock")
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Stats returns a snapshot of the acquisition counters.
func (l *RWLock) Stats() LockStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LockStats{
		ReadAcquires:   l.rAcquires,
		WriteAcquires:  l.wAcquires,
		ReadContended:  l.rContended,
		WriteContended: l.wContended,
	}
}
