package heap

// Superheap is the per-user-level-thread stack of heaps from Appendix B.
// The heap at the top of the stack is where the thread currently
// allocates; forkjoin pushes a child heap and the matching join pops it,
// joining it into the heap below. Both operations are constant-time, which
// keeps the no-steal forkjoin path cheap.
type Superheap struct {
	heaps []*Heap
}

// NewSuperheap creates a superheap whose base is the given heap. For the
// initial task the base is the root heap; for a stolen task the base is a
// fresh child of the victim's heap at the fork point.
func NewSuperheap(base *Heap) *Superheap {
	return &Superheap{heaps: []*Heap{base}}
}

// Current returns the heap the thread is allocating into.
func (s *Superheap) Current() *Heap { return s.heaps[len(s.heaps)-1] }

// Base returns the superheap's bottom heap.
func (s *Superheap) Base() *Heap { return s.heaps[0] }

// Depth returns the number of heaps on the stack.
func (s *Superheap) Len() int { return len(s.heaps) }

// Push creates a child heap of the current heap and makes it current
// (forkjoin's depth increment).
func (s *Superheap) Push() *Heap {
	h := NewChild(s.Current())
	s.heaps = append(s.heaps, h)
	return h
}

// PopJoin joins the current heap into the heap below it and pops the stack
// (forkjoin's depth decrement). It panics at the base.
func (s *Superheap) PopJoin() {
	n := len(s.heaps)
	if n < 2 {
		panic("heap: PopJoin on superheap base")
	}
	Join(s.heaps[n-2], s.heaps[n-1])
	s.heaps[n-1] = nil
	s.heaps = s.heaps[:n-1]
}

// AdoptJoin joins a completed child superheap (fully popped back to its
// base) into the current heap. Used at the join point for stolen tasks.
func (s *Superheap) AdoptJoin(child *Superheap) {
	if child.Len() != 1 {
		panic("heap: adopting a superheap that is not fully popped")
	}
	Join(s.Current(), child.Base())
}
