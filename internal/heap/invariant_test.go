package heap

import (
	"strings"
	"testing"

	"repro/internal/mem"
)

// pin simulates the deferred write barrier at the heap level: store the
// down-pointer (slot, field) → ptr and register the pin on ptr's heap.
func pin(t *testing.T, owner *Heap, slot mem.ObjPtr, field int, ptr mem.ObjPtr) {
	t.Helper()
	mem.StorePtrFieldAtomic(slot, field, ptr)
	if touch, _ := owner.RememberOrTouch(slot, field, ptr); touch != TouchPinned {
		t.Fatalf("first RememberOrTouch of %v = %v, want TouchPinned", ptr, touch)
	}
}

// drainAll empties every given heap's remembered set so a test that
// deliberately violated an invariant leaves the package-global pin
// accounting balanced for the tests that follow.
func drainAll(heaps ...*Heap) {
	for _, h := range heaps {
		h.TakeRemembered()
	}
}

func TestCheckInvariantsCleanPin(t *testing.T) {
	root := NewRoot()
	child := root.AttachChild()
	defer func() {
		drainAll(child)
		root.DetachChild(child)
		FreeChunkList(child.TakeChunks())
		FreeChunkList(root.TakeChunks())
	}()

	slot := root.FreshObj(2, 0, mem.TagTuple)
	ptr := child.FreshObj(0, 2, mem.TagTuple)
	pin(t, child, slot, 0, ptr)

	if err := CheckInvariants(root, child, child, nil); err != nil {
		t.Fatalf("clean pin fails invariants: %v", err)
	}
	if n := child.RemCount(); n != 1 {
		t.Fatalf("RemCount = %d, want 1", n)
	}
	// Re-writing the pointee into the slot that already pins it is only a
	// refresh: no new sharing, no new entry.
	if touch, _ := child.RememberOrTouch(slot, 0, ptr); touch != TouchRefreshed {
		t.Fatalf("same-slot RememberOrTouch = %v, want TouchRefreshed", touch)
	}
	// The same pointee through another slot is a second touch and must not
	// register a second entry; the existing pin comes back so the caller
	// can promote past the shallower slot.
	touch, prevPin := child.RememberOrTouch(slot, 1, ptr)
	if touch != TouchSecond {
		t.Fatalf("distinct-slot RememberOrTouch = %v, want TouchSecond", touch)
	}
	if prevPin.Slot != slot || prevPin.Field != 0 || prevPin.Ptr != ptr {
		t.Fatalf("TouchSecond prev pin = %+v, want {%v 0 %v}", prevPin, slot, ptr)
	}
	if n := child.RemCount(); n != 1 {
		t.Fatalf("RemCount after second touch = %d, want 1", n)
	}
	if err := CheckInvariants(child); err != nil {
		t.Fatalf("second touch broke invariants: %v", err)
	}
}

func TestCheckInvariantsDetectsFreedPinnedChunk(t *testing.T) {
	root := NewRoot()
	child := root.AttachChild()
	defer func() {
		drainAll(child)
		root.DetachChild(child)
		FreeChunkList(root.TakeChunks())
	}()

	slot := root.FreshObj(1, 0, mem.TagTuple)
	ptr := child.FreshObj(0, 2, mem.TagTuple)
	pin(t, child, slot, 0, ptr)

	// Free the pinned chunk out from under the remembered set: the
	// reclaimed-while-pinned bug the checker exists to catch.
	FreeChunkList(child.TakeChunks())
	err := CheckInvariants(child)
	if err == nil || !strings.Contains(err.Error(), "unregistered chunk") {
		t.Fatalf("CheckInvariants = %v, want an unregistered-chunk violation", err)
	}
}

func TestCheckInvariantsDetectsForeignOwner(t *testing.T) {
	root := NewRoot()
	a := root.AttachChild()
	b := root.AttachChild()
	defer func() {
		drainAll(a, b)
		root.DetachChild(a)
		root.DetachChild(b)
		FreeChunkList(a.TakeChunks())
		FreeChunkList(b.TakeChunks())
		FreeChunkList(root.TakeChunks())
	}()

	slot := root.FreshObj(1, 0, mem.TagTuple)
	ptr := a.FreshObj(0, 2, mem.TagTuple)
	// Register a's pointee on b: the entry pins a chunk b does not own, so
	// a release of a would invalidate it without b ever noticing.
	mem.StorePtrFieldAtomic(slot, 0, ptr)
	b.RememberOrTouch(slot, 0, ptr)

	err := CheckInvariants(b)
	if err == nil || !strings.Contains(err.Error(), "not the remembering heap") {
		t.Fatalf("CheckInvariants = %v, want a foreign-owner violation", err)
	}
}

func TestCheckInvariantsDetectsNonAncestorSlot(t *testing.T) {
	root := NewRoot()
	child := root.AttachChild()
	defer func() {
		drainAll(child)
		root.DetachChild(child)
		FreeChunkList(child.TakeChunks())
		FreeChunkList(root.TakeChunks())
	}()

	slot := child.FreshObj(1, 0, mem.TagTuple)
	ptr := child.FreshObj(0, 2, mem.TagTuple)
	// A same-heap write never entangles, so a same-heap entry means the
	// barrier misclassified the write.
	mem.StorePtrFieldAtomic(slot, 0, ptr)
	child.RememberOrTouch(slot, 0, ptr)

	err := CheckInvariants(child)
	if err == nil || !strings.Contains(err.Error(), "strict ancestor") {
		t.Fatalf("CheckInvariants = %v, want a strict-ancestor violation", err)
	}
}

func TestCheckInvariantsDetectsIndexImbalance(t *testing.T) {
	root := NewRoot()
	child := root.AttachChild()
	defer func() {
		drainAll(child)
		root.DetachChild(child)
		FreeChunkList(child.TakeChunks())
		FreeChunkList(root.TakeChunks())
	}()

	slot := root.FreshObj(1, 0, mem.TagTuple)
	ptr := child.FreshObj(0, 2, mem.TagTuple)
	pin(t, child, slot, 0, ptr)

	// Corrupt the pin index directly (internal test): an indexed pointee
	// with no entry means a pin was double-counted or an entry lost.
	other := child.FreshObj(0, 2, mem.TagTuple)
	rs := child.remSet()
	rs.mu.Lock()
	rs.byPtr[other] = remSlot{slot: slot, field: 0}
	rs.mu.Unlock()

	err := CheckInvariants(child)
	if err == nil || !strings.Contains(err.Error(), "do not balance") {
		t.Fatalf("CheckInvariants = %v, want a pin-balance violation", err)
	}
}

func TestCheckInvariantsDetectsMergedAwayRetention(t *testing.T) {
	root := NewRoot()
	child := NewChild(root)
	defer func() {
		drainAll(child, root)
		FreeChunkList(root.TakeChunks())
	}()

	slot := root.FreshObj(1, 0, mem.TagTuple)
	ptr := child.FreshObj(0, 2, mem.TagTuple)
	pin(t, child, slot, 0, ptr)

	// Simulate a Join that forgot to migrate: alias the child away while
	// its set is still populated. CheckInvariants resolves aliases, so the
	// retention check is exercised through the direct walker.
	child.merged.Store(root)
	if err := child.checkRemInvariants(); err == nil || !strings.Contains(err.Error(), "failed to migrate") {
		t.Fatalf("checkRemInvariants = %v, want a merged-away-retention violation", err)
	}
	child.merged.Store(nil)
}

func TestJoinMigratesAndElidesRemembered(t *testing.T) {
	base := RemCounters()
	root := NewRoot()
	mid := NewChild(root) // depth 1
	leaf := NewChild(mid) // depth 2
	defer FreeChunkList(root.TakeChunks())

	slotRoot := root.FreshObj(1, 0, mem.TagTuple)
	slotMid := mid.FreshObj(1, 0, mem.TagTuple)
	p1 := leaf.FreshObj(0, 2, mem.TagTuple)
	p2 := leaf.FreshObj(0, 2, mem.TagTuple)
	pin(t, leaf, slotRoot, 0, p1)
	pin(t, leaf, slotMid, 0, p2)

	// Joining leaf into mid elides the slotMid entry (the pointee now
	// lives AT the slot's depth — the entanglement dissolved) and carries
	// the slotRoot entry, still a down-pointer from depth 0 into depth 1.
	Join(mid, leaf)
	d := RemCounters()
	if got := d.JoinElided - base.JoinElided; got != 1 {
		t.Fatalf("JoinElided diff = %d, want 1", got)
	}
	if got := d.JoinMigrated - base.JoinMigrated; got != 1 {
		t.Fatalf("JoinMigrated diff = %d, want 1", got)
	}
	if n := mid.RemCount(); n != 1 {
		t.Fatalf("mid.RemCount after join = %d, want 1", n)
	}
	if n := leaf.RemCount(); n != 1 { // resolves to mid
		t.Fatalf("leaf.RemCount (alias of mid) = %d, want 1", n)
	}
	if err := CheckInvariants(root, mid, leaf); err != nil {
		t.Fatalf("post-join invariants: %v", err)
	}

	// Joining mid into the root elides the rest: nothing is deeper than
	// the root, so no entanglement can remain.
	Join(root, mid)
	d = RemCounters()
	if got := d.JoinElided - base.JoinElided; got != 2 {
		t.Fatalf("JoinElided diff after top join = %d, want 2", got)
	}
	if got := d.Live - base.Live; got != 0 {
		t.Fatalf("Live diff after top join = %d, want 0", got)
	}
}

func TestReleaseWholesaleDropsRemembered(t *testing.T) {
	base := RemCounters()
	chunksBase := mem.ChunksInUse()
	root := NewRoot()
	child := root.AttachChild()

	slot := root.FreshObj(1, 0, mem.TagTuple)
	ptr := child.FreshObj(0, 2, mem.TagTuple)
	pin(t, child, slot, 0, ptr)

	root.DetachChild(child)
	if n := ReleaseWholesale(nil, root, child); n == 0 {
		t.Fatal("ReleaseWholesale freed nothing")
	}
	d := RemCounters()
	if got := d.ReleaseDropped - base.ReleaseDropped; got != 1 {
		t.Fatalf("ReleaseDropped diff = %d, want 1", got)
	}
	if got := d.Live - base.Live; got != 0 {
		t.Fatalf("Live diff after release = %d, want 0", got)
	}
	if n := child.RemCount(); n != 0 {
		t.Fatalf("released child retains %d entries", n)
	}
	FreeChunkList(root.TakeChunks())
	if got := mem.ChunksInUse(); got != chunksBase {
		t.Fatalf("chunks in use = %d, want baseline %d", got, chunksBase)
	}
}
