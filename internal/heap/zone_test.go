package heap

import "testing"

func TestSortZoneDeepestFirst(t *testing.T) {
	root := NewRoot()
	mid := NewChild(root)
	leafA := NewChild(mid)
	leafB := NewChild(mid)

	zone := []*Heap{root, leafB, mid, leafA}
	SortZone(zone)
	if zone[0].Depth() != 2 || zone[1].Depth() != 2 || zone[2] != mid || zone[3] != root {
		t.Fatalf("bad order: %v", zone)
	}
	if zone[0].ID() > zone[1].ID() {
		t.Fatal("equal-depth heaps must be ordered by ID")
	}
}

func TestLockUnlockZone(t *testing.T) {
	root := NewRoot()
	child := NewChild(root)
	zone := []*Heap{child, root}

	LockZone(zone)
	for _, h := range zone {
		if st := h.LockStats(); st.WriteAcquires != 1 {
			t.Fatalf("heap %v write acquires = %d", h, st.WriteAcquires)
		}
	}
	UnlockZone(zone)
	// Unlocked: a fresh write acquisition must not be contended.
	root.Lock(WRITE)
	root.Unlock()
	if st := root.LockStats(); st.WriteContended != 0 {
		t.Fatal("zone lock leaked")
	}
}

func TestIsAncestorOf(t *testing.T) {
	root := NewRoot()
	mid := NewChild(root)
	leaf := NewChild(mid)
	other := NewChild(root)

	if !root.IsAncestorOf(leaf) || !mid.IsAncestorOf(leaf) || !leaf.IsAncestorOf(leaf) {
		t.Fatal("ancestry chain broken")
	}
	if leaf.IsAncestorOf(mid) || other.IsAncestorOf(leaf) || mid.IsAncestorOf(other) {
		t.Fatal("false ancestry")
	}

	// Joins alias the child into the parent: ancestry must follow.
	Join(mid, leaf)
	if !mid.IsAncestorOf(leaf) || !leaf.IsAncestorOf(mid) {
		t.Fatal("merged heaps must be mutual ancestors")
	}
}
