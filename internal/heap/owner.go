package heap

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mem"
)

// Chunk-ownership registry: maps chunk IDs to their owning heap, giving the
// O(1) heapOf of paper Figure 4. Mirrors the two-level layout of the mem
// chunk directory; entries are atomic so lookups are lock-free.

const (
	ownSegBits = 12
	ownSegSize = 1 << ownSegBits
	ownSegs    = 1 << 16
)

type ownSegment [ownSegSize]atomic.Pointer[Heap]

var ownerDir [ownSegs]atomic.Pointer[ownSegment]

// SetOwner records h as the owner of chunk id.
func SetOwner(id uint32, h *Heap) {
	segIdx := id >> ownSegBits
	seg := ownerDir[segIdx].Load()
	if seg == nil {
		fresh := new(ownSegment)
		if ownerDir[segIdx].CompareAndSwap(nil, fresh) {
			seg = fresh
		} else {
			seg = ownerDir[segIdx].Load()
		}
	}
	seg[id&(ownSegSize-1)].Store(h)
}

// ClearOwner removes the ownership entry for chunk id.
func ClearOwner(id uint32) {
	seg := ownerDir[id>>ownSegBits].Load()
	if seg != nil {
		seg[id&(ownSegSize-1)].Store(nil)
	}
}

// OwnerOfChunk returns the heap owning chunk id, unresolved.
func OwnerOfChunk(id uint32) *Heap {
	seg := ownerDir[id>>ownSegBits].Load()
	if seg == nil {
		return nil
	}
	return seg[id&(ownSegSize-1)].Load()
}

// Of returns the live heap holding the object (paper's heapOf): the chunk's
// recorded owner resolved through any joins.
func Of(p mem.ObjPtr) *Heap {
	h := OwnerOfChunk(p.ChunkID())
	if h == nil {
		panic(fmt.Sprintf("heap: object %v has no owning heap", p))
	}
	return h.Resolve()
}
