package heap

import "sort"

// Zone helpers: a collection zone is a heap plus (optionally) its live
// descendants. Concurrent zone collections must agree on one global lock
// order, and the only order compatible with the promotion path's bottom-up
// climb (core.writePromote locks the pointee's heap first, then ancestors)
// is deepest-first. Every multi-heap acquisition in the system therefore
// acquires locks in strictly non-increasing depth, with heap ID breaking
// ties between siblings, and no acquisition ever waits on a heap deeper
// than one it already holds.

// SortZone orders a zone into the canonical lock-acquisition order:
// deepest heap first, heap ID ascending between heaps of equal depth.
func SortZone(zone []*Heap) {
	sort.Slice(zone, func(i, j int) bool {
		di, dj := zone[i].Depth(), zone[j].Depth()
		if di != dj {
			return di > dj
		}
		return zone[i].id < zone[j].id
	})
}

// LockZone write-locks every heap of a zone in the canonical order. The
// zone must already be sorted with SortZone. Holding the write locks
// excludes findMaster readers and promotions targeting any zone heap for
// the duration of a collection.
func LockZone(zone []*Heap) {
	for _, h := range zone {
		h.Lock(WRITE)
	}
}

// UnlockZone releases a zone's write locks in reverse (shallowest-first)
// order, mirroring the promotion path's unlock discipline.
func UnlockZone(zone []*Heap) {
	for i := len(zone) - 1; i >= 0; i-- {
		zone[i].Unlock()
	}
}

// IsAncestorOf reports whether h is an ancestor of d in the hierarchy,
// counting a heap as an ancestor of itself. Both ends are resolved through
// joins first, so a heap that was merged into h counts as h. It backs the
// disentanglement checker's zone-membership queries (core.CheckHeap).
func (h *Heap) IsAncestorOf(d *Heap) bool {
	h = h.Resolve()
	for a := d.Resolve(); a != nil; a = a.Parent() {
		if a == h {
			return true
		}
		if a.Depth() < h.Depth() {
			return false // climbed above h: can only get shallower
		}
	}
	return false
}
