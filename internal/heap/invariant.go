package heap

import (
	"fmt"

	"repro/internal/mem"
)

// Remembered-set invariant checker. Deferred promotion moves a
// memory-safety-critical invariant — no heap may be reclaimed while a
// remembered pointee is live — out of the eager barrier's control flow and
// into lazily maintained state, so the state gets a walker that proves it
// on demand: from tests, after every zone collection when the runtime's
// CheckInvariants knob is set, and from the differential fuzzer after
// every step.
//
// CheckInvariants must be called at a point where the checked heaps are
// quiescent for structural changes (no concurrent Join or release of
// these heaps); concurrent registration on OTHER heaps is fine, since
// each set is inspected under its own mutex.

// CheckInvariants verifies the remembered-set invariants of every given
// heap (duplicates and merged-away aliases are ignored):
//
//   - a merged-away heap retains no entries (Join migrated or elided them);
//   - the pin index and the entry list agree (pin counts balance, no
//     double-pin of one pointee);
//   - every pinned pointee sits in a chunk that is still REGISTERED and
//     still owned by the remembering heap — a pinned chunk on a pool free
//     list, or recycled into another heap, is the reclaimed-while-pinned
//     bug this checker exists to catch;
//   - every entry's slot sits in a registered chunk of a live heap that is
//     a STRICT ancestor of the remembering heap, i.e. the entry still
//     describes a down-pointer into a live, attached descendant.
//
// It returns the first violation found, nil if all invariants hold.
func CheckInvariants(heaps ...*Heap) error {
	seen := make(map[*Heap]struct{}, len(heaps))
	for _, h := range heaps {
		if h == nil {
			continue
		}
		h = h.Resolve()
		if _, dup := seen[h]; dup {
			continue
		}
		seen[h] = struct{}{}
		if err := h.checkRemInvariants(); err != nil {
			return err
		}
	}
	return nil
}

// checkRemInvariants walks one heap's remembered set under its mutex.
func (h *Heap) checkRemInvariants() error {
	rs := h.rem.Load()
	if rs == nil {
		return nil
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(rs.entries) == 0 {
		if len(rs.byPtr) != 0 {
			return fmt.Errorf("heap: %v: empty remembered set indexes %d pointees", h, len(rs.byPtr))
		}
		return nil
	}
	if !h.IsAlive() {
		return fmt.Errorf("heap: merged-away %v retains %d remembered entries (Join failed to migrate)",
			h, len(rs.entries))
	}
	if len(rs.byPtr) != len(rs.entries) {
		return fmt.Errorf("heap: %v: pin counts do not balance: %d indexed pointees for %d entries",
			h, len(rs.byPtr), len(rs.entries))
	}
	for _, e := range rs.entries {
		if _, ok := rs.byPtr[e.Ptr]; !ok {
			return fmt.Errorf("heap: %v: entry %v not in the pin index", h, e.Ptr)
		}
		id := e.Ptr.ChunkID()
		if mem.LookupChunk(id) == nil {
			return fmt.Errorf("heap: %v: pinned object %v sits in unregistered chunk %d (freed or on a pool free list while pinned)",
				h, e.Ptr, id)
		}
		owner := OwnerOfChunk(id)
		if owner == nil || owner.Resolve() != h {
			return fmt.Errorf("heap: %v: pinned object %v's chunk %d is owned by %v, not the remembering heap",
				h, e.Ptr, id, owner)
		}
		sid := e.Slot.ChunkID()
		if mem.LookupChunk(sid) == nil {
			return fmt.Errorf("heap: %v: remembered slot %v sits in unregistered chunk %d",
				h, e.Slot, sid)
		}
		sh := slotHeapOf(e.Slot)
		if sh == h || !sh.IsAncestorOf(h) {
			return fmt.Errorf("heap: %v: remembered slot %v lives in %v (depth %d), not a strict ancestor",
				h, e.Slot, sh, sh.Depth())
		}
	}
	return nil
}
