// Package heap implements the hierarchy of heaps that mirrors the fork-join
// task tree (paper §3.2, Appendix B).
//
// A Heap owns a linked list of chunks and supports bump allocation. Heaps
// form a tree: forkjoin creates child heaps, and when tasks complete their
// heaps are joined into the parent in O(1) — the child heap descriptor is
// redirected into the parent with a union-find link, so no objects move and
// chunk ownership lookups stay O(1) amortized via path compression. This
// reproduces MLton's constant-time linked-list splice while keeping the
// chunk-metadata heapOf lookup of the paper's implementation.
//
// # Locks and the one global order
//
// Every heap carries a readers-writer lock (paper Figure 4): findMaster
// acquires it in read mode, promotion and zone collection in write mode.
// One global lock order keeps the three composable — every multi-heap
// acquisition climbs the hierarchy bottom-up (deepest heap first, heap ID
// breaking ties between siblings). The zone helpers encode that order:
// SortZone canonicalizes a zone, LockZone/UnlockZone write-lock and
// release it in order, and IsAncestorOf answers zone-membership queries
// through any joins. The promotion path's climb (core.PromoteBuf.lockPath)
// follows the same order from the other end: pointee's heap first, then
// each ancestor up to the promotion target.
//
// Depth is the hierarchy's cheap ancestry oracle: two heaps referenced by
// one task both lie on that task's root path, so comparing Depth values is
// an ancestor test without walking parents. The write barrier's lock-free
// fast paths (core.WritePtr) rely on exactly this — a depth comparison plus
// a forwarding-pointer check decides that a write cannot entangle, without
// touching any lock.
//
// A Superheap is the per-user-level-thread stack of heaps from Appendix B:
// forkjoin pushes a fresh heap (depth+1) and the matching join pops and
// joins it, both constant-time operations, so the common no-steal case
// stays cheap.
//
// Chunk movement goes through the recycling allocator (package mem):
// grow/FreshObjVia acquire through the calling worker's ChunkCache, and
// RecycleChunkList / ReleaseWholesale hand completed heaps' chunks back to
// the cache, the global pool, or the OS.
package heap
