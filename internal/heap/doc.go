// Package heap implements the hierarchy of heaps that mirrors the fork-join
// task tree (paper §3.2, Appendix B).
//
// A Heap owns a linked list of chunks and supports bump allocation. Heaps
// form a tree: forkjoin creates child heaps, and when tasks complete their
// heaps are joined into the parent in O(1) — the child heap descriptor is
// redirected into the parent with a union-find link, so no objects move and
// chunk ownership lookups stay O(1) amortized via path compression. This
// reproduces MLton's constant-time linked-list splice while keeping the
// chunk-metadata heapOf lookup of the paper's implementation.
//
// Every heap carries a readers-writer lock (paper Figure 4): findMaster
// acquires it in read mode, promotion in write mode, deepest heap first.
//
// A Superheap is the per-user-level-thread stack of heaps from Appendix B:
// forkjoin pushes a fresh heap (depth+1) and the matching join pops and
// joins it, both constant-time operations, so the common no-steal case
// stays cheap.
package heap
