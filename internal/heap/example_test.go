package heap

import (
	"fmt"

	"repro/internal/mem"
)

// ExampleSuperheap shows the per-thread heap stack that mirrors forkjoin:
// a fork pushes a child heap (depth + 1), the matching join pops it and
// splices its chunks into the heap below in O(1), with the child handle
// surviving as an alias of the parent.
func ExampleSuperheap() {
	sh := NewSuperheap(NewRoot())
	fmt.Println("base depth:", sh.Current().Depth())

	child := sh.Push() // fork
	obj := child.FreshObj(0, 1, mem.TagRef)
	fmt.Println("forked depth:", sh.Current().Depth(), "— object at depth", Of(obj).Depth())

	sh.PopJoin() // join: child's chunks splice into the base
	fmt.Println("after join: object at depth", Of(obj).Depth(),
		"| child aliases base:", child.Resolve() == sh.Current())

	FreeChunkList(sh.Current().TakeChunks())
	// Output:
	// base depth: 0
	// forked depth: 1 — object at depth 1
	// after join: object at depth 0 | child aliases base: true
}
