package heap

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mem"
)

// Heap is one node of the heap hierarchy: a list of chunks with a bump
// allocator, a depth, a link to its hierarchy parent, and a readers-writer
// lock (paper Figure 4).
//
// Allocation into a heap is never concurrent: the owning task allocates in
// its (deepest) heap without synchronization, and promotions allocate into
// ancestor heaps only while holding the heap's WRITE lock, at which point
// the ancestor's owning task is suspended at a fork. The scheduler's
// synchronization (deque publish on fork/steal, join signal on completion)
// provides the happens-before edges between those phases.
type Heap struct {
	id     uint64
	lk     RWLock
	depth  int32
	parent *Heap                // hierarchy parent at creation; resolve when walking
	merged atomic.Pointer[Heap] // union-find link set by Join

	// Child registry for super-root heaps (superroot.go): session subtrees
	// attach here so shutdown can find abandoned ones. Lazily installed on
	// first attach; nil for every heap that never had a child attached.
	childReg atomic.Pointer[childRegistry]

	// Remembered set for deferred promotion (remset.go): down-pointers into
	// this heap whose pointees are pinned in place instead of eagerly
	// promoted. Lazily installed; nil for every heap that never pinned.
	rem atomic.Pointer[remSet]

	head      *mem.Chunk // oldest chunk
	tail      *mem.Chunk // newest chunk; allocation target
	nChunks   int
	nextWords int // next chunk size (geometric growth)

	usedWords int64 // words handed out to objects
	capWords  int64 // total chunk capacity
	isTo      bool  // true while this heap is a collection to-space

	// GC policy inputs, maintained by the allocator and the collector.
	AllocSinceGC int64 // words allocated since the last collection
	LiveWords    int64 // live estimate from the last collection
}

var heapIDs atomic.Uint64

// NewRoot creates a root heap at depth 0.
func NewRoot() *Heap {
	return &Heap{id: heapIDs.Add(1)}
}

// NewChild creates a heap one level below h in the hierarchy.
func NewChild(h *Heap) *Heap {
	h = h.Resolve()
	return &Heap{id: heapIDs.Add(1), depth: h.depth + 1, parent: h}
}

// NewTwin creates the to-space twin used during a collection of h: same
// depth and parent, marked as a to-space.
func NewTwin(h *Heap) *Heap {
	h = h.Resolve()
	return &Heap{id: heapIDs.Add(1), depth: h.depth, parent: h.parent, isTo: true}
}

// ID returns the heap's debug identifier.
func (h *Heap) ID() uint64 { return h.id }

// Depth returns the heap's depth in the hierarchy (root = 0).
func (h *Heap) Depth() int32 { return h.Resolve().depth }

// Parent returns the heap's hierarchy parent, resolved through joins.
// It returns nil for the root.
func (h *Heap) Parent() *Heap {
	p := h.Resolve().parent
	if p == nil {
		return nil
	}
	return p.Resolve()
}

// IsTo reports whether the heap is currently a collection to-space.
func (h *Heap) IsTo() bool { return h.isTo }

// Lock acquires the heap's lock in the given mode.
func (h *Heap) Lock(m Mode) { h.lk.Lock(m) }

// Unlock releases the heap's lock.
func (h *Heap) Unlock() { h.lk.Unlock() }

// LockStats returns the heap lock's acquisition counters.
func (h *Heap) LockStats() LockStats { return h.lk.Stats() }

// Resolve follows union-find links to the live heap this heap has been
// merged into, compressing the path. A heap that has not been joined
// resolves to itself.
func (h *Heap) Resolve() *Heap {
	m := h.merged.Load()
	if m == nil {
		return h
	}
	root := m.Resolve()
	if root != m {
		h.merged.Store(root)
	}
	return root
}

// IsAlive reports whether the heap has not been merged away.
func (h *Heap) IsAlive() bool { return h.merged.Load() == nil }

// Join merges child into parent (paper's joinHeap): the child's chunks are
// spliced onto the parent's list in O(1) and the child descriptor becomes
// an alias for the parent. The caller must guarantee the child's task has
// completed; Join performs no locking.
func Join(parent, child *Heap) {
	parent = parent.Resolve()
	child = child.Resolve()
	if parent == child {
		panic("heap: joining a heap into itself")
	}
	if child.isTo || parent.isTo {
		panic("heap: joining a to-space")
	}
	if child.head != nil {
		if parent.tail == nil {
			parent.head, parent.tail = child.head, child.tail
		} else {
			parent.tail.Next = child.head
			parent.tail = child.tail
		}
		parent.nChunks += child.nChunks
	}
	parent.usedWords += child.usedWords
	parent.capWords += child.capWords
	parent.AllocSinceGC += child.AllocSinceGC
	parent.LiveWords += child.LiveWords
	child.head, child.tail, child.nChunks = nil, nil, 0
	// Deferred-promotion entries pinned in the child follow its objects to
	// the parent; those whose slot is no longer strictly shallower are
	// elided — the join dissolved the entanglement (remset.go).
	migrateRemembered(parent, child)
	child.merged.Store(parent)
}

// grow appends a chunk able to hold at least need words, acquired through
// the recycling allocator (cc is the calling worker's chunk cache, nil when
// the caller has none). Chunk sizes grow geometrically from MinChunkWords
// to DefaultChunkWords, so short-lived leaf heaps stay tiny while
// allocation-heavy heaps amortize to large chunks (the paper's
// fragmentation/locality trade-off).
func (h *Heap) grow(cc *mem.ChunkCache, need int) *mem.Chunk {
	size := h.nextWords
	if size < mem.MinChunkWords {
		size = mem.MinChunkWords
	}
	if size < mem.DefaultChunkWords {
		h.nextWords = size * 4
	}
	if need > size {
		size = need
	}
	c := mem.AcquireChunk(cc, size)
	SetOwner(c.ID(), h)
	if h.tail == nil {
		h.head, h.tail = c, c
	} else {
		h.tail.Next = c
		h.tail = c
	}
	h.nChunks++
	h.capWords += int64(c.Cap())
	return c
}

// FreshObj allocates an object with the given shape in h (paper's
// freshObj). Fields start zeroed. Chunk acquisition goes straight to the
// global pool; hot paths that run on a worker use FreshObjVia with the
// worker's cache instead.
func (h *Heap) FreshObj(numPtr, numNonptr int, tag mem.Tag) mem.ObjPtr {
	return h.FreshObjVia(nil, numPtr, numNonptr, tag)
}

// FreshObjVia is FreshObj with chunk acquisition routed through cc, the
// CALLING worker's chunk cache (nil for no cache). Passing the caller's —
// not the heap's — cache is what keeps cache access single-goroutine even
// when the heap is a shared ancestor or a collection to-space.
func (h *Heap) FreshObjVia(cc *mem.ChunkCache, numPtr, numNonptr int, tag mem.Tag) mem.ObjPtr {
	need := mem.ObjectWords(numPtr, numNonptr)
	c := h.tail
	if c == nil {
		c = h.grow(cc, need)
	}
	off, ok := c.Bump(uint32(need))
	if !ok {
		c = h.grow(cc, need)
		off, ok = c.Bump(uint32(need))
		if !ok {
			panic(fmt.Sprintf("heap: fresh chunk cannot hold %d words", need))
		}
	}
	h.usedWords += int64(need)
	h.AllocSinceGC += int64(need)
	return mem.InitObject(c, off, numPtr, numNonptr, tag)
}

// UsedWords returns the words handed out to objects in this heap.
func (h *Heap) UsedWords() int64 { return h.usedWords }

// CapWords returns the heap's total chunk capacity in words.
func (h *Heap) CapWords() int64 { return h.capWords }

// NumChunks returns the number of chunks owned by the heap.
func (h *Heap) NumChunks() int { return h.nChunks }

// Chunks returns the head of the heap's chunk list, for collectors.
func (h *Heap) Chunks() *mem.Chunk { return h.head }

// TakeChunks detaches and returns the heap's chunk list, resetting the
// heap's allocation state. Collectors use this to swap semispaces.
func (h *Heap) TakeChunks() *mem.Chunk {
	c := h.head
	h.head, h.tail, h.nChunks = nil, nil, 0
	h.usedWords, h.capWords = 0, 0
	return c
}

// AdoptFrom moves the to-space twin's chunks into h after a collection
// ("switchSemispaces" with a stable heap identity: locks and union-find
// links into h stay valid). Chunk ownership entries are repointed at h and
// the twin is discarded.
func (h *Heap) AdoptFrom(twin *Heap) {
	if !twin.isTo {
		panic("heap: AdoptFrom expects a to-space twin")
	}
	for c := twin.head; c != nil; c = c.Next {
		SetOwner(c.ID(), h)
	}
	h.head, h.tail, h.nChunks = twin.head, twin.tail, twin.nChunks
	h.usedWords, h.capWords = twin.usedWords, twin.capWords
	h.LiveWords = twin.usedWords
	h.AllocSinceGC = 0
	twin.head, twin.tail, twin.nChunks = nil, nil, 0
}

// FreeChunkList releases a detached chunk list (end of run, or the
// from-space after a collection) back to the recycling allocator's global
// pool. Equivalent to RecycleChunkList with no worker cache.
func FreeChunkList(head *mem.Chunk) { RecycleChunkList(nil, head) }

// RecycleChunkList releases a detached chunk list through the recycling
// allocator: each chunk's ownership and directory entries are invalidated
// (stale ObjPtrs into it panic), then the slab is parked in cc — the
// calling worker's cache — overflowing to the global pool and, past the
// pool's high-water mark, to the OS.
func RecycleChunkList(cc *mem.ChunkCache, head *mem.Chunk) {
	for c := head; c != nil; {
		next := c.Next
		ClearOwner(c.ID())
		mem.RecycleChunk(cc, c)
		c = next
	}
}

// String renders the heap for debugging.
func (h *Heap) String() string {
	return fmt.Sprintf("heap#%d(depth=%d,chunks=%d,used=%dw)", h.id, h.depth, h.nChunks, h.usedWords)
}
