package heap

import (
	"sync"
	"sync/atomic"

	"repro/internal/mem"
)

// Per-heap remembered sets for DEFERRED promotion. The paper's write
// barrier promotes eagerly: an ancestor→descendant pointer write copies
// the pointee's whole subtree upward before the write commits. The
// deferred mode instead PINS the pointee in place and records the
// down-pointer here, on the pointee's owning heap; the pin is resolved
// later, by whichever of these happens first:
//
//   - a second cross-heap touch of the same pointee through a DISTINCT
//     slot promotes it eagerly (core.WritePtrDeferred), leaving the entry
//     for slot repair — re-writing the pointee into the slot that already
//     pins it merely refreshes the pin, since it establishes no new
//     sharing;
//   - a join migrates the entries to the surviving heap, eliding those
//     whose entanglement evaporated with the depth change (Join below);
//   - a wholesale release of the subtree drops them — the pinned objects
//     died with their heap and were never copied at all, which is the
//     whole point (core.DrainForRelease first promotes out any entry
//     whose slot survives the release);
//   - an explicit promoting drain (core.DrainRemembered) for callers
//     that want a heap's pins resolved eagerly.
//
// A zone collection of the owning heap resolves only the entries whose
// slot moved on or died: the collector's remembered pass treats the rest
// as extra roots, evacuates their pointees within the zone, and RE-PINS
// (gc.Collector.drainRemembered) — a pinned object is never promoted just
// because its heap collected.
//
// Lock order: a remembered set's mutex is LEAF-LEVEL. It is acquired
// while holding at most heap locks (heapLock → remMu, never the reverse)
// and never while holding another remembered set's mutex, so it composes
// with the deepest-first heap lock order without extending it.

// RemEntry records one deferred down-pointer: heap slot (Slot, Field)
// holds Ptr, whose object is pinned in the remembering heap.
type RemEntry struct {
	Slot  mem.ObjPtr // object containing the down-pointer field (ancestor heap)
	Field int        // pointer field index within Slot
	Ptr   mem.ObjPtr // the pinned pointee, owned by the remembering heap
}

// remSet is one heap's remembered set. byPtr indexes the pinned pointees
// by the slot that pinned them, so the second-touch check — is this write
// a DISTINCT slot from the one already holding the pin? — is O(1).
type remSet struct {
	mu      sync.Mutex
	entries []RemEntry
	byPtr   map[mem.ObjPtr]remSlot
}

// remSlot identifies the down-pointer slot recorded for a pinned pointee.
type remSlot struct {
	slot  mem.ObjPtr
	field int
}

// Package-global deferred-promotion accounting. These live here rather
// than in a Counters struct because Join and ReleaseWholesale run without
// any task context; the runtime snapshots them at startup and reports the
// diff (the same pattern as the mem allocation counters).
var (
	remLive           atomic.Int64 // entries currently registered across all heaps
	remJoinMigrated   atomic.Int64 // entries moved to the surviving heap by Join
	remJoinElided     atomic.Int64 // entries dropped by Join: the depth change ended the entanglement
	remReleaseDropped atomic.Int64 // entries dropped by ReleaseWholesale: pinned objects died wholesale
	remGCResolved     atomic.Int64 // entries resolved by gc's extra-roots pass (slot fixed or stale)
)

// RemSnapshot is a point-in-time copy of the package's remembered-set
// counters; subtract two snapshots to get a runtime's own activity.
type RemSnapshot struct {
	Live           int64
	JoinMigrated   int64
	JoinElided     int64
	ReleaseDropped int64
	GCResolved     int64
}

// RemCounters snapshots the global remembered-set counters.
func RemCounters() RemSnapshot {
	return RemSnapshot{
		Live:           remLive.Load(),
		JoinMigrated:   remJoinMigrated.Load(),
		JoinElided:     remJoinElided.Load(),
		ReleaseDropped: remReleaseDropped.Load(),
		GCResolved:     remGCResolved.Load(),
	}
}

// rem returns the heap's remembered set, installing one on first use
// (same CAS convergence as the child registry).
func (h *Heap) remSet() *remSet {
	if r := h.rem.Load(); r != nil {
		return r
	}
	fresh := &remSet{}
	if h.rem.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return h.rem.Load()
}

// Touch is RememberOrTouch's verdict on a deferred down-pointer write.
type Touch int

const (
	// TouchPinned: first touch — an entry was registered; the caller
	// leaves the pointee in place.
	TouchPinned Touch = iota
	// TouchRefreshed: the write re-established the SAME slot that already
	// pins the pointee (e.g. an in-place list reversal writing the head
	// back). No new sharing, no new entry; the existing entry already
	// describes the slot exactly.
	TouchRefreshed
	// TouchSecond: the pointee is already pinned through a DISTINCT slot —
	// it is genuinely shared, and the caller promotes it eagerly.
	TouchSecond
)

// RememberOrTouch is the deferred write barrier's pin-or-promote decision
// for a down-pointer (slot, field) → ptr whose pointee lives in h: if ptr
// is not yet pinned here, register the entry (TouchPinned); if it is
// pinned by this very slot, refresh (TouchRefreshed); if it is pinned by
// a different slot — a second cross-heap touch — report TouchSecond
// without registering, and the caller promotes eagerly. The existing
// entry is left in place in the touch cases: its slot still physically
// holds the deep pointer and will be repaired by the next drain.
//
// On TouchSecond the returned entry describes the EXISTING pin (its slot,
// field, and the pinned pointer), so the caller can promote past the
// shallower of the two slots; it is the zero RemEntry otherwise.
func (h *Heap) RememberOrTouch(slot mem.ObjPtr, field int, ptr mem.ObjPtr) (Touch, RemEntry) {
	rs := h.Resolve().remSet()
	rs.mu.Lock()
	if prev, dup := rs.byPtr[ptr]; dup {
		rs.mu.Unlock()
		// The recorded slot object may have been promoted since the pin;
		// compare through the forwarding chains.
		if prev.field == field && chaseSlot(prev.slot) == chaseSlot(slot) {
			return TouchRefreshed, RemEntry{}
		}
		return TouchSecond, RemEntry{Slot: prev.slot, Field: prev.field, Ptr: ptr}
	}
	if rs.byPtr == nil {
		rs.byPtr = make(map[mem.ObjPtr]remSlot)
	}
	rs.byPtr[ptr] = remSlot{slot: slot, field: field}
	rs.entries = append(rs.entries, RemEntry{Slot: slot, Field: field, Ptr: ptr})
	rs.mu.Unlock()
	remLive.Add(1)
	return TouchPinned, RemEntry{}
}

// TakeRemembered detaches and returns the heap's remembered entries,
// leaving the set empty. Drains (zone collection, wholesale release) take
// the whole set and account for each entry's outcome themselves.
func (h *Heap) TakeRemembered() []RemEntry {
	h = h.Resolve()
	rs := h.rem.Load()
	if rs == nil {
		return nil
	}
	rs.mu.Lock()
	entries := rs.entries
	rs.entries = nil
	rs.byPtr = nil
	rs.mu.Unlock()
	remLive.Add(-int64(len(entries)))
	return entries
}

// ReinstallRemembered puts entries (typically updated in place by gc's
// extra-roots pass) back into h's remembered set. The entries were taken
// from this heap, so reinstalling them is not a new pin.
func (h *Heap) ReinstallRemembered(entries []RemEntry) {
	if len(entries) == 0 {
		return
	}
	rs := h.Resolve().remSet()
	rs.mu.Lock()
	if rs.byPtr == nil {
		rs.byPtr = make(map[mem.ObjPtr]remSlot, len(entries))
	}
	for _, e := range entries {
		rs.byPtr[e.Ptr] = remSlot{slot: e.Slot, field: e.Field}
		rs.entries = append(rs.entries, e)
	}
	rs.mu.Unlock()
	remLive.Add(int64(len(entries)))
}

// RefilePin files an entry taken from another heap's remembered set into
// h, which now owns the pointee's master copy: the pinned object was
// dragged out of its original heap by a transitive promotion (it rode
// along in some other pointee's copied subgraph), and the pin must live
// where the object does or the next collection of h would not see it as
// a root. The caller has already repaired the entry's slot to the master
// and updated e.Ptr to it. If h already pins the pointee through another
// slot the duplicate is dropped — the repaired slot stays valid, and the
// existing entry keeps the pointee pinned.
func (h *Heap) RefilePin(e RemEntry) {
	rs := h.Resolve().remSet()
	rs.mu.Lock()
	if _, dup := rs.byPtr[e.Ptr]; dup {
		rs.mu.Unlock()
		remGCResolved.Add(1)
		return
	}
	if rs.byPtr == nil {
		rs.byPtr = make(map[mem.ObjPtr]remSlot)
	}
	rs.byPtr[e.Ptr] = remSlot{slot: e.Slot, field: e.Field}
	rs.entries = append(rs.entries, e)
	rs.mu.Unlock()
	remLive.Add(1)
}

// RemEntries returns a copy of the heap's current remembered entries, for
// the invariant checker and tests.
func (h *Heap) RemEntries() []RemEntry {
	rs := h.Resolve().rem.Load()
	if rs == nil {
		return nil
	}
	rs.mu.Lock()
	out := append([]RemEntry(nil), rs.entries...)
	rs.mu.Unlock()
	return out
}

// RemCount reports how many entries the heap's remembered set holds.
func (h *Heap) RemCount() int {
	rs := h.Resolve().rem.Load()
	if rs == nil {
		return 0
	}
	rs.mu.Lock()
	n := len(rs.entries)
	rs.mu.Unlock()
	return n
}

// NoteRemGCResolved counts entries gc's extra-roots pass consumed (slot
// repaired to an already-promoted master, or slot overwritten and the
// entry dropped as stale).
func NoteRemGCResolved(n int64) { remGCResolved.Add(n) }

// migrateRemembered moves the dying child's remembered entries to the
// surviving parent at Join. An entry whose slot heap is no longer
// STRICTLY shallower than the pointee's new (parent) depth is elided: the
// join dissolved the entanglement, so the pin resolves for free — neither
// copied nor leaked, the deferred barrier's best case. The child's task
// has completed (Join's contract), so no new entries race in on the child
// side; the parent's set still takes its mutex against the parent's other
// live descendants.
func migrateRemembered(parent, child *Heap) {
	crs := child.rem.Load()
	if crs == nil {
		return
	}
	crs.mu.Lock()
	entries := crs.entries
	crs.entries = nil
	crs.byPtr = nil
	crs.mu.Unlock()
	if len(entries) == 0 {
		return
	}
	keep := entries[:0]
	for _, e := range entries {
		if slotHeapOf(e.Slot).Depth() >= parent.depth {
			remJoinElided.Add(1)
			remLive.Add(-1)
			continue
		}
		keep = append(keep, e)
	}
	if len(keep) == 0 {
		return
	}
	prs := parent.remSet()
	prs.mu.Lock()
	if prs.byPtr == nil {
		prs.byPtr = make(map[mem.ObjPtr]remSlot, len(keep))
	}
	for _, e := range keep {
		prs.byPtr[e.Ptr] = remSlot{slot: e.Slot, field: e.Field}
		prs.entries = append(prs.entries, e)
	}
	prs.mu.Unlock()
	remJoinMigrated.Add(int64(len(keep)))
}

// slotHeapOf resolves the live heap of a remembered slot, following the
// slot's (permanent) forwarding chain first: the slot object may have
// been promoted since the entry was recorded.
func slotHeapOf(slot mem.ObjPtr) *Heap {
	return Of(chaseSlot(slot))
}

// chaseSlot follows a slot object's (permanent) forwarding chain to its
// master copy.
func chaseSlot(slot mem.ObjPtr) mem.ObjPtr {
	for {
		f := mem.LoadFwd(slot)
		if f.IsNil() {
			return slot
		}
		slot = f
	}
}

// dropRememberedOnRelease discards the heap's remaining entries at
// wholesale release: the pinned objects die with their subtree, never
// having been copied. On the runtime's session path the set is already
// empty — core.DrainForRelease swept it, promoting out every entry whose
// slot survives the release — so entries reaching here belong to the
// shutdown backstop (abandoned sessions) and direct-release tests.
func dropRememberedOnRelease(h *Heap) {
	n := len(h.TakeRemembered())
	if n > 0 {
		remReleaseDropped.Add(int64(n))
	}
}
