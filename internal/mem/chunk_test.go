package mem

import (
	"sync"
	"testing"
)

func TestChunkBump(t *testing.T) {
	c := NewChunk(16)
	defer FreeChunk(c)
	if c.Cap() != MinChunkWords {
		t.Fatalf("small request should round up to the minimum: got %d", c.Cap())
	}
	off, ok := c.Bump(10)
	if !ok || off != 0 {
		t.Fatalf("first bump: off=%d ok=%v", off, ok)
	}
	off, ok = c.Bump(MinChunkWords - 10)
	if !ok || off != 10 {
		t.Fatalf("second bump: off=%d ok=%v", off, ok)
	}
	if _, ok = c.Bump(1); ok {
		t.Fatal("bump past capacity must fail")
	}
}

func TestChunkBumpOverflow(t *testing.T) {
	c := NewChunk(16)
	defer FreeChunk(c)
	if _, ok := c.Bump(^uint32(0)); ok {
		t.Fatal("overflowing bump must fail")
	}
}

func TestChunkDirectory(t *testing.T) {
	c := NewChunk(32)
	got := GetChunk(c.ID())
	if got != c {
		t.Fatalf("directory lookup returned %p, want %p", got, c)
	}
	id := c.ID()
	FreeChunk(c)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("lookup of freed chunk must panic")
			}
		}()
		GetChunk(id)
	}()
}

func TestChunkIDReuse(t *testing.T) {
	a := NewChunk(8)
	id := a.ID()
	FreeChunk(a)
	b := NewChunk(8)
	defer FreeChunk(b)
	if b.ID() != id {
		t.Fatalf("freed ID %d should be reused, got %d", id, b.ID())
	}
}

func TestGetChunkNil(t *testing.T) {
	if GetChunk(0) != nil {
		t.Fatal("GetChunk(0) must return nil")
	}
}

func TestAccounting(t *testing.T) {
	base := LiveBytes()
	ResetHighWater()
	c1 := NewChunk(DefaultChunkWords)
	c2 := NewChunk(4 * DefaultChunkWords)
	wantLive := base + int64(5*DefaultChunkWords*8)
	_ = c1
	if LiveBytes() != wantLive {
		t.Fatalf("LiveBytes = %d, want %d", LiveBytes(), wantLive)
	}
	if HighWaterBytes() < wantLive {
		t.Fatalf("HighWaterBytes = %d, want >= %d", HighWaterBytes(), wantLive)
	}
	FreeChunk(c1)
	FreeChunk(c2)
	if LiveBytes() != base {
		t.Fatalf("LiveBytes after free = %d, want %d", LiveBytes(), base)
	}
	if HighWaterBytes() < wantLive {
		t.Fatal("high water must not shrink on free")
	}
}

func TestConcurrentChunkAllocFree(t *testing.T) {
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c := NewChunk(64)
				if GetChunk(c.ID()) != c {
					t.Error("lost chunk in directory")
					return
				}
				FreeChunk(c)
			}
		}()
	}
	wg.Wait()
}
