package mem

import (
	"testing"
	"testing/quick"
)

// allocTestObj allocates a raw object in a throwaway chunk.
func allocTestObj(t *testing.T, numPtr, numNonptr int, tag Tag) (ObjPtr, *Chunk) {
	t.Helper()
	c := NewChunk(ObjectWords(numPtr, numNonptr))
	off, ok := c.Bump(uint32(ObjectWords(numPtr, numNonptr)))
	if !ok {
		t.Fatal("bump failed")
	}
	return InitObject(c, off, numPtr, numNonptr, tag), c
}

func TestHeaderRoundtrip(t *testing.T) {
	f := func(np, nn uint16, tag uint8) bool {
		h := PackHeader(int(np), int(nn), Tag(tag))
		return headerNumPtr(h) == int(np) &&
			headerNumNonptr(h) == int(nn) &&
			headerTag(h) == Tag(tag)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackHeaderRejectsHugeCounts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PackHeader must reject out-of-range counts")
		}
	}()
	PackHeader(fieldMax+1, 0, TagTuple)
}

func TestObjectLayout(t *testing.T) {
	p, c := allocTestObj(t, 2, 3, TagTuple)
	defer FreeChunk(c)
	if NumPtrFields(p) != 2 || NumNonptrWords(p) != 3 || TagOf(p) != TagTuple {
		t.Fatalf("metadata mismatch: %d ptr, %d words, tag %v",
			NumPtrFields(p), NumNonptrWords(p), TagOf(p))
	}
	if SizeWords(p) != 7 {
		t.Fatalf("SizeWords = %d, want 7", SizeWords(p))
	}
	if HasFwd(p) {
		t.Fatal("fresh object must not be forwarded")
	}
}

func TestFieldReadWrite(t *testing.T) {
	p, c := allocTestObj(t, 2, 2, TagTuple)
	defer FreeChunk(c)
	q := MakeObjPtr(7, 42)
	StorePtrField(p, 0, q)
	StorePtrFieldAtomic(p, 1, q)
	StoreWordField(p, 0, 123)
	StoreWordFieldAtomic(p, 1, 456)
	if LoadPtrField(p, 0) != q || LoadPtrFieldAtomic(p, 1) != q {
		t.Fatal("pointer field roundtrip failed")
	}
	if LoadWordField(p, 0) != 123 || LoadWordFieldAtomic(p, 1) != 456 {
		t.Fatal("word field roundtrip failed")
	}
}

func TestFieldBoundsChecks(t *testing.T) {
	p, c := allocTestObj(t, 1, 1, TagTuple)
	defer FreeChunk(c)
	cases := []func(){
		func() { LoadPtrField(p, 1) },
		func() { StorePtrField(p, -1, NilPtr) },
		func() { LoadWordField(p, 1) },
		func() { StoreWordFieldAtomic(p, 2, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: out-of-range access must panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPtrAndWordFieldsDoNotAlias(t *testing.T) {
	f := func(np, nn uint8, seed uint64) bool {
		numPtr, numNonptr := int(np%8)+1, int(nn%8)+1
		c := NewChunk(ObjectWords(numPtr, numNonptr))
		defer FreeChunk(c)
		off, _ := c.Bump(uint32(ObjectWords(numPtr, numNonptr)))
		p := InitObject(c, off, numPtr, numNonptr, TagTuple)
		for i := 0; i < numPtr; i++ {
			StorePtrField(p, i, MakeObjPtr(uint32(seed)+uint32(i)+1, 0))
		}
		for i := 0; i < numNonptr; i++ {
			StoreWordField(p, i, seed^uint64(i))
		}
		for i := 0; i < numPtr; i++ {
			if LoadPtrField(p, i) != MakeObjPtr(uint32(seed)+uint32(i)+1, 0) {
				return false
			}
		}
		for i := 0; i < numNonptr; i++ {
			if LoadWordField(p, i) != seed^uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForwardingPointer(t *testing.T) {
	p, c := allocTestObj(t, 0, 1, TagRef)
	defer FreeChunk(c)
	q, c2 := allocTestObj(t, 0, 1, TagRef)
	defer FreeChunk(c2)
	if HasFwd(p) {
		t.Fatal("no fwd expected")
	}
	StoreFwd(p, q)
	if !HasFwd(p) || LoadFwd(p) != q {
		t.Fatal("fwd install failed")
	}
	if HasFwd(q) {
		t.Fatal("fwd must not leak to target")
	}
}

func TestCAS(t *testing.T) {
	p, c := allocTestObj(t, 1, 1, TagRef)
	defer FreeChunk(c)
	if !CASWordField(p, 0, 0, 9) || LoadWordField(p, 0) != 9 {
		t.Fatal("word CAS from zero failed")
	}
	if CASWordField(p, 0, 0, 10) {
		t.Fatal("word CAS with stale old must fail")
	}
	q := MakeObjPtr(5, 5)
	if !CASPtrField(p, 0, NilPtr, q) || LoadPtrField(p, 0) != q {
		t.Fatal("ptr CAS from nil failed")
	}
	if CASPtrField(p, 0, NilPtr, q) {
		t.Fatal("ptr CAS with stale old must fail")
	}
}

func TestCopyBody(t *testing.T) {
	src, c1 := allocTestObj(t, 2, 2, TagTuple)
	defer FreeChunk(c1)
	dst, c2 := allocTestObj(t, 2, 2, TagTuple)
	defer FreeChunk(c2)
	StorePtrField(src, 0, MakeObjPtr(9, 9))
	StorePtrField(src, 1, MakeObjPtr(8, 8))
	StoreWordField(src, 0, 111)
	StoreWordField(src, 1, 222)
	StoreFwd(src, MakeObjPtr(1, 1))
	CopyBody(dst, src)
	if LoadPtrField(dst, 0) != MakeObjPtr(9, 9) || LoadPtrField(dst, 1) != MakeObjPtr(8, 8) {
		t.Fatal("pointer fields not copied")
	}
	if LoadWordField(dst, 0) != 111 || LoadWordField(dst, 1) != 222 {
		t.Fatal("word fields not copied")
	}
	if HasFwd(dst) {
		t.Fatal("CopyBody must not copy the forwarding word")
	}
}
