package mem

import (
	"testing"
)

// resetPool drains the global pool and restores the default limit and a
// single free-list shard, so tests that count pool contents do not see
// other tests' slabs (or shard layouts).
func resetPool(t *testing.T) {
	t.Helper()
	SetChunkPoolLimit(DefaultPoolLimitBytes)
	SetChunkPoolShards(1)
	DrainChunkPool()
	t.Cleanup(func() {
		SetChunkPoolLimit(DefaultPoolLimitBytes)
		SetChunkPoolShards(1)
		DrainChunkPool()
	})
}

func TestAcquireRoundsUpToClass(t *testing.T) {
	resetPool(t)
	c := AcquireChunk(nil, 100) // between 64 and 256
	defer RecycleChunk(nil, c)
	if got := int(c.Cap()); got != 4*MinChunkWords {
		t.Fatalf("Cap = %d, want the 256-word class", got)
	}
	if GetChunk(c.ID()) != c {
		t.Fatal("acquired chunk must be registered")
	}
}

func TestRecycleReusesSlabAndID(t *testing.T) {
	resetPool(t)
	c := AcquireChunk(nil, MinChunkWords)
	id := c.ID()
	inUse := ChunksInUse()
	live := LiveBytes()
	RecycleChunk(nil, c)
	if got := ChunksInUse(); got != inUse-1 {
		t.Fatalf("ChunksInUse after recycle = %d, want %d (pooled slabs are unregistered)", got, inUse-1)
	}
	if got := LiveBytes(); got != live-int64(MinChunkWords*8) {
		t.Fatalf("LiveBytes after recycle = %d, want %d", got, live-int64(MinChunkWords*8))
	}
	d := AcquireChunk(nil, MinChunkWords)
	defer RecycleChunk(nil, d)
	if d.ID() != id {
		t.Fatalf("recycled slab should keep its ID: got %d, want %d", d.ID(), id)
	}
	if d == c {
		t.Fatal("a recycled slab must be wrapped in a fresh Chunk object")
	}
}

func TestRecycledSlabIsZeroed(t *testing.T) {
	resetPool(t)
	c := AcquireChunk(nil, MinChunkWords)
	off, _ := c.Bump(8)
	for i := uint32(0); i < 8; i++ {
		c.Data[off+i] = ^uint64(0)
	}
	RecycleChunk(nil, c)
	d := AcquireChunk(nil, MinChunkWords)
	defer RecycleChunk(nil, d)
	if d.Used() != 0 {
		t.Fatalf("recycled chunk Used = %d, want 0", d.Used())
	}
	for i, w := range d.Data {
		if w != 0 {
			t.Fatalf("recycled chunk word %d = %#x, want 0 (objects rely on zeroed chunks)", i, w)
		}
	}
}

func TestDoubleRecyclePanics(t *testing.T) {
	resetPool(t)
	c := AcquireChunk(nil, MinChunkWords)
	RecycleChunk(nil, c)
	defer func() {
		if recover() == nil {
			t.Fatal("double recycle must panic")
		}
	}()
	RecycleChunk(nil, c)
}

// A chunk released and then reacquired gets a fresh Chunk object, so a
// double release by the OLD owner must panic even though the slab (and its
// directory entry) are live again under the new owner.
func TestDoubleRecycleAfterReusePanics(t *testing.T) {
	resetPool(t)
	c := AcquireChunk(nil, MinChunkWords)
	RecycleChunk(nil, c)
	d := AcquireChunk(nil, MinChunkWords) // reuses c's slab and ID
	defer RecycleChunk(nil, d)
	if d.ID() != c.ID() {
		t.Skip("slab was not reused; nothing to test")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("stale double recycle must panic, not steal the new owner's entry")
		}
	}()
	RecycleChunk(nil, c)
}

func TestStaleObjPtrPanicsAfterRecycle(t *testing.T) {
	resetPool(t)
	c := AcquireChunk(nil, MinChunkWords)
	off, _ := c.Bump(uint32(ObjectWords(1, 1)))
	p := InitObject(c, off, 1, 1, TagTuple)
	RecycleChunk(nil, c)
	defer func() {
		if recover() == nil {
			t.Fatal("access through a stale ObjPtr into a recycled chunk must panic")
		}
	}()
	_ = NumPtrFields(p)
}

func TestWorkerCacheBounds(t *testing.T) {
	resetPool(t)
	cc := NewChunkCache(2)
	var chunks []*Chunk
	for i := 0; i < 5; i++ {
		chunks = append(chunks, AcquireChunk(nil, MinChunkWords))
	}
	for _, c := range chunks {
		RecycleChunk(cc, c)
	}
	if got := cc.HeldChunks(); got != 2 {
		t.Fatalf("cache held %d chunks of one class, want its bound 2", got)
	}
	// The overflow went to the pool, not nowhere.
	if PooledBytes() < int64(3*MinChunkWords*8) {
		t.Fatalf("pool holds %d bytes, want at least the 3 overflow chunks", PooledBytes())
	}
	// Cache hits come back without touching the pool.
	before := AllocSnapshot()
	c := AcquireChunk(cc, MinChunkWords)
	delta := AllocSnapshot().Sub(before)
	if delta.CacheHits != 1 || delta.PoolHits != 0 || delta.FreshChunks != 0 {
		t.Fatalf("acquire from warm cache: %+v, want exactly one cache hit", delta)
	}
	RecycleChunk(cc, c)
	cc.Flush()
	if cc.HeldChunks() != 0 || cc.HeldBytes() != 0 {
		t.Fatalf("flushed cache still holds %d chunks / %d bytes", cc.HeldChunks(), cc.HeldBytes())
	}
}

func TestPoolHighWaterReleasesToOS(t *testing.T) {
	resetPool(t)
	// Limit the pool to two minimum-class slabs.
	SetChunkPoolLimit(2 * MinChunkWords * 8)
	var chunks []*Chunk
	for i := 0; i < 4; i++ {
		chunks = append(chunks, AcquireChunk(nil, MinChunkWords))
	}
	before := AllocSnapshot()
	for _, c := range chunks {
		RecycleChunk(nil, c)
	}
	delta := AllocSnapshot().Sub(before)
	if delta.ToPool != 2 || delta.ToOS != 2 {
		t.Fatalf("recycle over high-water: ToPool=%d ToOS=%d, want 2 and 2", delta.ToPool, delta.ToOS)
	}
	if got := PooledBytes(); got > 2*MinChunkWords*8 {
		t.Fatalf("PooledBytes = %d, want <= high-water %d", got, 2*MinChunkWords*8)
	}
	// Lowering the limit trims immediately.
	SetChunkPoolLimit(0)
	if got := PooledBytes(); got != 0 {
		t.Fatalf("PooledBytes after disabling = %d, want 0", got)
	}
}

func TestDrainChunkPool(t *testing.T) {
	resetPool(t)
	var chunks []*Chunk
	for i := 0; i < 3; i++ {
		chunks = append(chunks, AcquireChunk(nil, MinChunkWords))
	}
	for _, c := range chunks {
		RecycleChunk(nil, c)
	}
	if PooledBytes() == 0 {
		t.Fatal("expected slabs in the pool before draining")
	}
	if n := DrainChunkPool(); n != 3 {
		t.Fatalf("drained %d chunks, want 3", n)
	}
	if got := PooledBytes(); got != 0 {
		t.Fatalf("PooledBytes after drain = %d, want 0", got)
	}
}

func TestOversizeBypassesPool(t *testing.T) {
	resetPool(t)
	before := AllocSnapshot()
	c := AcquireChunk(nil, 3*DefaultChunkWords) // beyond the largest class
	if int(c.Cap()) != 3*DefaultChunkWords {
		t.Fatalf("oversize request must be exact: got %d words", c.Cap())
	}
	RecycleChunk(nil, c)
	delta := AllocSnapshot().Sub(before)
	if delta.Oversize != 1 || delta.ToPool != 0 || delta.ToCache != 0 {
		t.Fatalf("oversize chunk must bypass the recycling tiers: %+v", delta)
	}
}

func TestSizeClassesCoverGeometricGrowth(t *testing.T) {
	// heap.grow produces 64, 256, 1024, 4096, 16384 (and DefaultChunkWords
	// for direct requests); every one must be an exact class so the runtime's
	// own chunks always recycle.
	for _, w := range []int{64, 256, 1024, 4096, 8192, 16384} {
		if classOfExact(w) < 0 {
			t.Fatalf("chunk size %d words is not an exact size class", w)
		}
	}
	if classFor(2*DefaultChunkWords+1) != -1 {
		t.Fatal("requests beyond the largest class must be oversize")
	}
}
