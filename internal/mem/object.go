package mem

import (
	"fmt"
	"sync/atomic"
)

// Tag classifies an object's kind. Tags are carried for debugging, GC
// statistics, and the disentanglement checker; the runtime algorithms only
// depend on the pointer/non-pointer field split in the header.
type Tag uint8

// Object kinds used by the runtime and the benchmark substrates.
const (
	TagInvalid Tag = iota
	TagRef         // single mutable cell
	TagTuple       // immutable record
	TagArrI64      // array of raw 64-bit words (ints or floats)
	TagArrPtr      // array of object pointers
	TagCons        // list cell
	TagLeaf        // quadtree / rope leaf
	TagNode        // quadtree / rope interior node
	TagOther
)

func (t Tag) String() string {
	switch t {
	case TagRef:
		return "ref"
	case TagTuple:
		return "tuple"
	case TagArrI64:
		return "arr-i64"
	case TagArrPtr:
		return "arr-ptr"
	case TagCons:
		return "cons"
	case TagLeaf:
		return "leaf"
	case TagNode:
		return "node"
	case TagOther:
		return "other"
	default:
		return fmt.Sprintf("tag(%d)", uint8(t))
	}
}

// Object layout within a chunk, in words:
//
//	+0  header:  numPtr (bits 0..23) | numNonptr (bits 24..47) | tag (48..55)
//	+1  forwarding pointer (an ObjPtr; NilPtr when absent)
//	+2 ..              pointer fields (numPtr words)
//	+2+numPtr ..       non-pointer words (numNonptr words)
const (
	HeaderWords = 2
	hdrOff      = 0
	fwdOff      = 1

	fieldBits = 24
	fieldMax  = 1<<fieldBits - 1
)

// PackHeader builds an object header word.
func PackHeader(numPtr, numNonptr int, tag Tag) uint64 {
	if numPtr < 0 || numPtr > fieldMax || numNonptr < 0 || numNonptr > fieldMax {
		panic(fmt.Sprintf("mem: field counts out of range: %d ptr, %d nonptr", numPtr, numNonptr))
	}
	return uint64(numPtr) | uint64(numNonptr)<<fieldBits | uint64(tag)<<(2*fieldBits)
}

func headerNumPtr(h uint64) int    { return int(h & fieldMax) }
func headerNumNonptr(h uint64) int { return int(h >> fieldBits & fieldMax) }
func headerTag(h uint64) Tag       { return Tag(h >> (2 * fieldBits) & 0xff) }

// ObjectWords returns the total footprint in words of an object with the
// given field counts, including the two metadata words.
func ObjectWords(numPtr, numNonptr int) int { return HeaderWords + numPtr + numNonptr }

// InitObject writes a fresh object's metadata at offset off in chunk c and
// returns its handle. Field words are zero (chunks start zeroed and
// collectors clear recycled space).
func InitObject(c *Chunk, off uint32, numPtr, numNonptr int, tag Tag) ObjPtr {
	c.Data[off+hdrOff] = PackHeader(numPtr, numNonptr, tag)
	c.Data[off+fwdOff] = uint64(NilPtr)
	return MakeObjPtr(c.id, off)
}

func headerOf(p ObjPtr) uint64 {
	return GetChunk(p.ChunkID()).Data[p.Off()+hdrOff]
}

// NumPtrFields returns the number of pointer fields of the object.
func NumPtrFields(p ObjPtr) int { return headerNumPtr(headerOf(p)) }

// NumNonptrWords returns the number of non-pointer words of the object.
func NumNonptrWords(p ObjPtr) int { return headerNumNonptr(headerOf(p)) }

// TagOf returns the object's kind tag.
func TagOf(p ObjPtr) Tag { return headerTag(headerOf(p)) }

// SizeWords returns the object's total footprint in words.
func SizeWords(p ObjPtr) int {
	h := headerOf(p)
	return HeaderWords + headerNumPtr(h) + headerNumNonptr(h)
}

// wordAddr returns the address of word i of the object's body, where the
// body starts at the header.
func wordAddr(p ObjPtr, i uint32) *uint64 {
	c := GetChunk(p.ChunkID())
	return &c.Data[p.Off()+i]
}

// Forwarding pointer access. The forwarding word is always accessed
// atomically: promotions install it while holding the heap's write lock,
// but fast paths read it without any lock (Figure 6's double-checked
// pattern), and atomic store/load pairs give the release/acquire ordering
// that publishes the copied object's fields.

// LoadFwd atomically reads the object's forwarding pointer.
func LoadFwd(p ObjPtr) ObjPtr {
	return ObjPtr(atomic.LoadUint64(wordAddr(p, fwdOff)))
}

// StoreFwd atomically installs a forwarding pointer.
func StoreFwd(p, next ObjPtr) {
	atomic.StoreUint64(wordAddr(p, fwdOff), uint64(next))
}

// HasFwd reports whether the object has a forwarding pointer installed.
func HasFwd(p ObjPtr) bool { return !LoadFwd(p).IsNil() }

func checkPtrField(p ObjPtr, i int) uint32 {
	h := headerOf(p)
	if uint(i) >= uint(headerNumPtr(h)) {
		panic(fmt.Sprintf("mem: pointer field %d out of range on %v (%s, %d ptr fields)",
			i, p, headerTag(h), headerNumPtr(h)))
	}
	return p.Off() + HeaderWords + uint32(i)
}

func checkWordField(p ObjPtr, i int) uint32 {
	h := headerOf(p)
	if uint(i) >= uint(headerNumNonptr(h)) {
		panic(fmt.Sprintf("mem: word field %d out of range on %v (%s, %d words)",
			i, p, headerTag(h), headerNumNonptr(h)))
	}
	return p.Off() + HeaderWords + uint32(headerNumPtr(h)) + uint32(i)
}

// LoadPtrField reads pointer field i with a plain load. Use for immutable
// fields, initialization, and single-owner phases.
func LoadPtrField(p ObjPtr, i int) ObjPtr {
	return ObjPtr(GetChunk(p.ChunkID()).Data[checkPtrField(p, i)])
}

// StorePtrField writes pointer field i with a plain store (initializing
// writes only).
func StorePtrField(p ObjPtr, i int, q ObjPtr) {
	GetChunk(p.ChunkID()).Data[checkPtrField(p, i)] = uint64(q)
}

// LoadPtrFieldAtomic reads mutable pointer field i.
func LoadPtrFieldAtomic(p ObjPtr, i int) ObjPtr {
	return ObjPtr(atomic.LoadUint64(&GetChunk(p.ChunkID()).Data[checkPtrField(p, i)]))
}

// StorePtrFieldAtomic writes mutable pointer field i.
func StorePtrFieldAtomic(p ObjPtr, i int, q ObjPtr) {
	atomic.StoreUint64(&GetChunk(p.ChunkID()).Data[checkPtrField(p, i)], uint64(q))
}

// StorePtrFieldsAtomic writes qs into the consecutive mutable pointer
// fields start, start+1, … of p. Equivalent to a loop of
// StorePtrFieldAtomic (each store individually atomic, in order), but the
// bounds check and chunk lookup are paid once for the whole run — the
// store half of the batched pointer-write barrier (core.WritePtrBatch).
func StorePtrFieldsAtomic(p ObjPtr, start int, qs []ObjPtr) {
	if len(qs) == 0 {
		return
	}
	checkPtrField(p, start)
	checkPtrField(p, start+len(qs)-1) // both ends: the whole run is in range
	base := p.Off() + HeaderWords + uint32(start)
	data := GetChunk(p.ChunkID()).Data
	for j, q := range qs {
		atomic.StoreUint64(&data[base+uint32(j)], uint64(q))
	}
}

// CASPtrField atomically compares-and-swaps mutable pointer field i. It
// backs the benchmarks' compare-and-swap visited marks.
func CASPtrField(p ObjPtr, i int, old, new ObjPtr) bool {
	return atomic.CompareAndSwapUint64(
		&GetChunk(p.ChunkID()).Data[checkPtrField(p, i)], uint64(old), uint64(new))
}

// LoadWordField reads non-pointer word i with a plain load.
func LoadWordField(p ObjPtr, i int) uint64 {
	return GetChunk(p.ChunkID()).Data[checkWordField(p, i)]
}

// StoreWordField writes non-pointer word i with a plain store.
func StoreWordField(p ObjPtr, i int, v uint64) {
	GetChunk(p.ChunkID()).Data[checkWordField(p, i)] = v
}

// LoadWordFieldAtomic reads mutable non-pointer word i.
func LoadWordFieldAtomic(p ObjPtr, i int) uint64 {
	return atomic.LoadUint64(&GetChunk(p.ChunkID()).Data[checkWordField(p, i)])
}

// StoreWordFieldAtomic writes mutable non-pointer word i.
func StoreWordFieldAtomic(p ObjPtr, i int, v uint64) {
	atomic.StoreUint64(&GetChunk(p.ChunkID()).Data[checkWordField(p, i)], v)
}

// CASWordField atomically compares-and-swaps mutable non-pointer word i.
func CASWordField(p ObjPtr, i int, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(
		&GetChunk(p.ChunkID()).Data[checkWordField(p, i)], old, new)
}

// CopyBody copies every field word (pointer and non-pointer alike, but not
// header or forwarding word) from src to a freshly allocated dst of the
// same shape. Used by promotion and collection after dst's metadata is in
// place.
//
// Source words are read atomically: promotion installs the forwarding
// pointer before copying (paper Figure 7, line 33), so optimistic distant
// writers may legitimately race with the copy — their post-write forwarding
// check redirects any missed update to the master copy. The destination is
// private until the promotion's heap locks are released, so plain stores
// suffice there.
func CopyBody(dst, src ObjPtr) {
	h := headerOf(src)
	n := uint32(headerNumPtr(h) + headerNumNonptr(h))
	sc := GetChunk(src.ChunkID())
	dc := GetChunk(dst.ChunkID())
	sw := sc.Data[src.Off()+HeaderWords : src.Off()+HeaderWords+n]
	dw := dc.Data[dst.Off()+HeaderWords : dst.Off()+HeaderWords+n]
	for i := range sw {
		dw[i] = atomic.LoadUint64(&sw[i])
	}
}
