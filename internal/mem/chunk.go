package mem

import (
	"fmt"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Tombstone diagnostics: when MEM_TOMBSTONES=1, FreeChunk records the stack
// that freed each chunk so a later dangling-pointer panic can name its
// killer. Debugging aid only (expensive).
var (
	tombstonesOn = os.Getenv("MEM_TOMBSTONES") == "1"
	tombMu       sync.Mutex
	tombstones   = map[uint32]string{}
)

// DefaultChunkWords is the largest regular chunk payload: 8192 words =
// 64 KiB. Heaps grow geometrically from MinChunkWords up to this size.
const DefaultChunkWords = 8192

// MinChunkWords is the smallest chunk payload: 64 words = 512 B. Small
// first chunks keep leaf heaps cheap — most tasks allocate very little.
const MinChunkWords = 64

// Chunk is a contiguous slab of words in which objects are bump-allocated.
// A chunk is owned by exactly one heap; Next links chunks into the owning
// heap's list and is managed by the heap package.
type Chunk struct {
	id   uint32
	used uint32 // words handed out so far; mutated only by the owner
	Data []uint64
	Next *Chunk
}

// ID returns the chunk's directory ID.
func (c *Chunk) ID() uint32 { return c.id }

// Used returns the number of words allocated so far.
func (c *Chunk) Used() uint32 { return c.used }

// Cap returns the chunk capacity in words.
func (c *Chunk) Cap() uint32 { return uint32(len(c.Data)) }

// Bump reserves n words and returns the offset of the reservation. ok is
// false if the chunk lacks space. Only the owning heap may call Bump.
func (c *Chunk) Bump(n uint32) (off uint32, ok bool) {
	if c.used+n > uint32(len(c.Data)) || c.used+n < c.used {
		return 0, false
	}
	off = c.used
	c.used += n
	return off, true
}

// chunk directory: a two-level table mapping chunk IDs to chunks. Reads are
// two atomic loads; growth installs segments with CAS and never moves
// existing entries, so lookups are lock-free.
const (
	dirSegBits = 12
	dirSegSize = 1 << dirSegBits // 4096 chunks per segment
	dirSegs    = 1 << 16         // up to ~268M chunks
)

type dirSegment [dirSegSize]atomic.Pointer[Chunk]

var (
	chunkDir [dirSegs]atomic.Pointer[dirSegment]

	idMu   sync.Mutex
	idNext uint32 = 1 // chunk ID 0 is reserved for nil
	idFree []uint32

	// idInUse counts registered chunks. Atomic rather than idMu-guarded:
	// the recycling paths (pool.go) register and unregister chunks without
	// touching idMu — the slab keeps its ID — so the gauge must not depend
	// on the lock.
	idInUse atomic.Int64
)

// GetChunk resolves a chunk ID. It returns nil for ID 0 and panics on a
// dangling ID (an ID whose chunk has been freed), which indicates a runtime
// bug — a surviving pointer into reclaimed space.
func GetChunk(id uint32) *Chunk {
	if id == 0 {
		return nil
	}
	seg := chunkDir[id>>dirSegBits].Load()
	if seg == nil {
		panic(fmt.Sprintf("mem: dangling chunk ID %d (unmapped segment)", id))
	}
	c := seg[id&(dirSegSize-1)].Load()
	if c == nil {
		msg := fmt.Sprintf("mem: dangling chunk ID %d (freed chunk)", id)
		if tombstonesOn {
			tombMu.Lock()
			msg += "\nfreed by:\n" + tombstones[id]
			tombMu.Unlock()
		}
		panic(msg)
	}
	return c
}

// LookupChunk resolves a chunk ID without the dangling-ID panic: it
// returns nil for ID 0 and for IDs whose chunk has been freed or
// recycled. Invariant checkers use it to ask "is this chunk still
// registered?" — a pinned object whose chunk fails the lookup is exactly
// the reclaimed-while-pinned bug GetChunk would panic on.
func LookupChunk(id uint32) *Chunk {
	if id == 0 {
		return nil
	}
	seg := chunkDir[id>>dirSegBits].Load()
	if seg == nil {
		return nil
	}
	return seg[id&(dirSegSize-1)].Load()
}

// NewChunk allocates and registers a chunk with the given payload capacity
// in words, rounded up to MinChunkWords. This is the fresh-allocation path:
// it takes a new directory ID under idMu. Hot callers go through
// AcquireChunk (pool.go), which recycles slabs — ID included — and reaches
// here only when both the worker cache and the global pool come up empty.
func NewChunk(words int) *Chunk {
	if words < MinChunkWords {
		words = MinChunkWords
	}
	idMu.Lock()
	var id uint32
	if n := len(idFree); n > 0 {
		id = idFree[n-1]
		idFree = idFree[:n-1]
	} else {
		id = idNext
		idNext++
		if idNext == 0 {
			idMu.Unlock()
			panic("mem: chunk ID space exhausted")
		}
	}
	idMu.Unlock()
	countDirIDOp()
	idInUse.Add(1)

	c := &Chunk{id: id, Data: make([]uint64, words)}
	segIdx := id >> dirSegBits
	seg := chunkDir[segIdx].Load()
	if seg == nil {
		fresh := new(dirSegment)
		if chunkDir[segIdx].CompareAndSwap(nil, fresh) {
			seg = fresh
		} else {
			seg = chunkDir[segIdx].Load()
		}
	}
	seg[id&(dirSegSize-1)].Store(c)
	accountAlloc(id, int64(words)*8)
	return c
}

// unregisterChunk invalidates the chunk's directory entry, so any later
// access through a stale ObjPtr panics in GetChunk, and a second release of
// the same chunk panics here (its CAS finds the entry already invalid — or
// pointing at the slab's NEXT life, which is a different Chunk object).
func unregisterChunk(c *Chunk) {
	seg := chunkDir[c.id>>dirSegBits].Load()
	if seg == nil {
		panic("mem: freeing chunk from unmapped segment")
	}
	if !seg[c.id&(dirSegSize-1)].CompareAndSwap(c, nil) {
		panic(fmt.Sprintf("mem: double free of chunk %d", c.id))
	}
	accountFree(c.id, int64(len(c.Data))*8)
	idInUse.Add(-1)
	if tombstonesOn {
		tombMu.Lock()
		tombstones[c.id] = string(debug.Stack())
		tombMu.Unlock()
	}
}

// releaseChunkID returns a chunk ID to the directory free list (hard frees
// and pool high-water evictions; recycled slabs keep their IDs parked).
func releaseChunkID(id uint32) {
	idMu.Lock()
	idFree = append(idFree, id)
	idMu.Unlock()
	countDirIDOp()
}

// FreeChunk unregisters a chunk and returns its ID to the free list — the
// hard-free path, bypassing the recycling tiers. Any later access through
// a stale ObjPtr into this chunk panics in GetChunk.
func FreeChunk(c *Chunk) {
	unregisterChunk(c)
	releaseChunkID(c.id)
	c.Data = nil
	c.Next = nil
}

// ChunksInUse reports the number of registered chunks (for leak tests).
// Slabs parked in worker caches or the global pool are unregistered and do
// not count.
func ChunksInUse() int64 { return idInUse.Load() }

// Memory accounting tracks bytes in registered chunks; the high-water mark
// is the maximum observed, used for the paper's memory-consumption and
// inflation statistics (Figure 13).
//
// The live counter is STRIPED: each chunk ID maps to one of acctShardCount
// cache-line-padded shards, and since a chunk's allocation and its free
// account against the same shard, the sum over shards is exactly the live
// byte total at any linearization point. The alloc path therefore never
// contends on one global atomic. The high-water mark cannot be maintained
// per-shard (it is a property of the global sum), so it is SAMPLED: each
// shard accumulates a pending-delta gauge, and once a shard has seen
// hwSampleStride bytes of allocation it folds the current global sum into
// the high-water CAS-max. Readers (HighWaterBytes, and Stats paths built
// on it) force a sample first, so the reported mark is never below the
// live total at the time of the read; between reads it may lag the true
// instantaneous peak by at most acctShardCount×hwSampleStride bytes —
// ~2 MiB at the default settings, versus the 100s-of-MiB heaps the
// inflation figures measure.
const (
	acctShardCount = 64 // power of two
	acctShardMask  = acctShardCount - 1

	// hwSampleStride is the per-shard allocation volume between high-water
	// samples. 32 KiB means every other default-size chunk triggers a
	// sample on its shard, while runs of small leaf chunks batch ~64 of
	// them per sample.
	hwSampleStride = 32 << 10
)

type acctShard struct {
	live    atomic.Int64
	pending atomic.Int64 // allocation bytes since this shard's last sample
	_       [112]byte    // pad to 128 B so shards do not share cache lines
}

var (
	acctShards [acctShardCount]acctShard
	highWater  atomic.Int64
)

func accountAlloc(id uint32, n int64) {
	s := &acctShards[id&acctShardMask]
	s.live.Add(n)
	if s.pending.Add(n) >= hwSampleStride {
		s.pending.Store(0)
		sampleHighWater()
	}
}

func accountFree(id uint32, n int64) { acctShards[id&acctShardMask].live.Add(-n) }

// sampleHighWater folds the current live total into the high-water mark.
func sampleHighWater() {
	live := LiveBytes()
	for {
		hw := highWater.Load()
		if live <= hw || highWater.CompareAndSwap(hw, live) {
			return
		}
	}
}

// LiveBytes returns the bytes currently held in registered chunks.
func LiveBytes() int64 {
	var sum int64
	for i := range acctShards {
		sum += acctShards[i].live.Load()
	}
	return sum
}

// HighWaterBytes returns the maximum chunk occupancy observed since the
// last ResetHighWater. The mark is sampled, not exact (see the accounting
// comment above); a sample is forced here so the result is at least the
// live total at the time of the call.
func HighWaterBytes() int64 {
	sampleHighWater()
	return highWater.Load()
}

// ResetHighWater restarts the occupancy high-water mark from the current
// live total. Call between benchmark runs.
func ResetHighWater() { highWater.Store(LiveBytes()) }
