package mem

import "fmt"

// ObjPtr is a packed handle to a managed object: the owning chunk's ID in
// the upper 32 bits and the word offset of the object's header within the
// chunk in the lower 32 bits. The zero value is the nil pointer (chunk ID 0
// is never allocated).
type ObjPtr uint64

// NilPtr is the null object pointer.
const NilPtr ObjPtr = 0

// MakeObjPtr packs a chunk ID and word offset into an ObjPtr.
func MakeObjPtr(chunkID, off uint32) ObjPtr {
	return ObjPtr(uint64(chunkID)<<32 | uint64(off))
}

// ChunkID returns the ID of the chunk holding the object.
func (p ObjPtr) ChunkID() uint32 { return uint32(p >> 32) }

// Off returns the word offset of the object header within its chunk.
func (p ObjPtr) Off() uint32 { return uint32(p) }

// IsNil reports whether p is the nil pointer.
func (p ObjPtr) IsNil() bool { return p == NilPtr }

// String renders the pointer as chunk:offset for debugging.
func (p ObjPtr) String() string {
	if p.IsNil() {
		return "nil"
	}
	return fmt.Sprintf("%d:%d", p.ChunkID(), p.Off())
}
