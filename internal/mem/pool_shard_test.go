package mem

import (
	"sync"
	"testing"
)

// The sharded-pool invariant tests: everything the recycling allocator
// promises — double-release panics, stale-ObjPtr invalidation, used-prefix
// re-zeroing, exact pooled-byte accounting — must keep holding when slabs
// migrate between pool shards under cross-shard steals. Tests build
// ChunkCaches with explicit home shards (same-package access) so the
// migration paths are deterministic.

// cacheAtHome builds a worker cache pinned to a pool shard, bypassing the
// round-robin assignment so tests control exactly which shard each side of
// a steal uses. perClass 0 means the cache holds nothing and every recycle
// overflows straight to its home shard.
func cacheAtHome(home, perClass int) *ChunkCache {
	return &ChunkCache{perClass: perClass, home: home}
}

// parkOnShard recycles n fresh chunks of the smallest class through a
// cache homed on the given shard (capacity 0, so they all land in the
// pool), returning their IDs in park order.
func parkOnShard(t *testing.T, home, n int) []uint32 {
	t.Helper()
	cc := cacheAtHome(home, 0)
	chunks := make([]*Chunk, n)
	for i := range chunks {
		chunks[i] = AcquireChunk(cc, MinChunkWords)
	}
	ids := make([]uint32, n)
	for i, c := range chunks {
		ids[i] = c.ID()
		RecycleChunk(cc, c)
	}
	return ids
}

func TestShardStealServesMiss(t *testing.T) {
	resetPool(t)
	SetChunkPoolShards(2)
	parkOnShard(t, 0, 1)

	before := AllocSnapshot()
	c := AcquireChunk(cacheAtHome(1, 0), MinChunkWords) // home shard 1 is empty
	delta := AllocSnapshot().Sub(before)
	if delta.PoolHits != 1 || delta.FreshChunks != 0 {
		t.Fatalf("miss on home shard must be served by a steal, not a fresh alloc: %+v", delta)
	}
	if delta.ShardSteals == 0 {
		t.Fatalf("cross-shard service not counted as a steal: %+v", delta)
	}
	if GetChunk(c.ID()) != c {
		t.Fatal("stolen slab not re-registered")
	}
	RecycleChunk(nil, c)
}

func TestShardStealMigratesBatchToHome(t *testing.T) {
	resetPool(t)
	SetChunkPoolShards(2)
	parkOnShard(t, 0, poolStealBatch+2)

	home := cacheAtHome(1, 0)
	before := AllocSnapshot()
	c1 := AcquireChunk(home, MinChunkWords) // steal: serves one, migrates extras
	afterSteal := AllocSnapshot().Sub(before)
	if afterSteal.ShardSteals != poolStealBatch {
		t.Fatalf("steal batch = %d slabs, want %d", afterSteal.ShardSteals, poolStealBatch)
	}
	c2 := AcquireChunk(home, MinChunkWords) // must now hit the home shard
	delta := AllocSnapshot().Sub(before)
	if delta.ShardSteals != poolStealBatch {
		t.Fatalf("post-migration acquire stole again: %d steals, want %d", delta.ShardSteals, poolStealBatch)
	}
	if delta.PoolHits != 2 {
		t.Fatalf("pool hits = %d, want 2", delta.PoolHits)
	}
	RecycleChunk(nil, c1)
	RecycleChunk(nil, c2)
}

func TestDoubleRecyclePanicsAfterShardMigration(t *testing.T) {
	resetPool(t)
	SetChunkPoolShards(2)

	ccA := cacheAtHome(0, 0)
	stale := AcquireChunk(ccA, MinChunkWords)
	id := stale.ID()
	RecycleChunk(ccA, stale) // parked on shard 0, entry invalidated

	reborn := AcquireChunk(cacheAtHome(1, 0), MinChunkWords) // stolen into home 1
	if reborn.ID() != id {
		t.Fatalf("steal returned slab %d, want the parked slab %d", reborn.ID(), id)
	}
	// The stale *Chunk from the slab's previous life must not be able to
	// release the slab's next life: its directory CAS sees a different
	// Chunk object and panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double recycle after cross-shard reuse did not panic")
			}
		}()
		RecycleChunk(nil, stale)
	}()
	RecycleChunk(nil, reborn)
}

func TestStaleObjPtrPanicsWhileParkedOnForeignShard(t *testing.T) {
	resetPool(t)
	SetChunkPoolShards(2)
	ids := parkOnShard(t, 0, 3)

	// The steal serves the newest slab and migrates the older ones into
	// shard 1; those stay PARKED — unregistered — on a shard their
	// recycler never touched. A surviving pointer into one must still
	// panic exactly as it did before sharding.
	c := AcquireChunk(cacheAtHome(1, 0), MinChunkWords)
	if c.ID() != ids[2] {
		t.Fatalf("steal returned %d, want newest parked slab %d", c.ID(), ids[2])
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("stale ID into a migrated parked slab did not panic")
			}
		}()
		GetChunk(ids[0])
	}()
	RecycleChunk(nil, c)
}

func TestRecycledSlabZeroedAfterShardMigration(t *testing.T) {
	resetPool(t)
	SetChunkPoolShards(2)

	ccA := cacheAtHome(0, 0)
	c := AcquireChunk(ccA, MinChunkWords)
	if off, ok := c.Bump(8); !ok || off != 0 {
		t.Fatalf("bump failed: %d %v", off, ok)
	}
	for i := 0; i < 8; i++ {
		c.Data[i] = ^uint64(0)
	}
	RecycleChunk(ccA, c)

	reborn := AcquireChunk(cacheAtHome(1, 0), MinChunkWords) // cross-shard steal
	for i := 0; i < 8; i++ {
		if reborn.Data[i] != 0 {
			t.Fatalf("word %d not re-zeroed after cross-shard reuse: %#x", i, reborn.Data[i])
		}
	}
	if reborn.Used() != 0 {
		t.Fatalf("reborn slab Used = %d, want 0", reborn.Used())
	}
	RecycleChunk(nil, reborn)
}

func TestSetChunkPoolShardsMigratesParkedSlabs(t *testing.T) {
	resetPool(t)
	SetChunkPoolShards(4)
	parkOnShard(t, 2, 2)
	parkOnShard(t, 3, 1)
	if got := PooledBytes(); got == 0 {
		t.Fatal("nothing parked")
	}

	// Shrinking the shard count must move slabs parked above the new range
	// into it, so single-shard gets still find all three.
	SetChunkPoolShards(1)
	before := AllocSnapshot()
	for i := 0; i < 3; i++ {
		c := AcquireChunk(nil, MinChunkWords)
		RecycleChunk(nil, c)
	}
	delta := AllocSnapshot().Sub(before)
	if delta.PoolHits != 3 || delta.FreshChunks != 0 {
		t.Fatalf("slabs stranded by shard shrink: %+v", delta)
	}
}

func TestShardedPoolAccountingExactUnderContention(t *testing.T) {
	resetPool(t)
	SetChunkPoolShards(4)
	const (
		workers = 8
		rounds  = 200
	)
	var wg sync.WaitGroup
	liveBefore, pooledBefore := LiveBytes(), PooledBytes()
	inUseBefore := ChunksInUse()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cc := NewChunkCache(2)
			for i := 0; i < rounds; i++ {
				a := AcquireChunk(cc, MinChunkWords)
				b := AcquireChunk(cc, 4*MinChunkWords)
				a.Bump(4)
				a.Data[0] = uint64(w)
				RecycleChunk(cc, a)
				RecycleChunk(cc, b)
			}
			cc.Flush()
		}(w)
	}
	wg.Wait()
	if got := LiveBytes(); got != liveBefore {
		t.Fatalf("LiveBytes = %d after balanced churn, want %d", got, liveBefore)
	}
	if got := ChunksInUse(); got != inUseBefore {
		t.Fatalf("ChunksInUse = %d after balanced churn, want %d", got, inUseBefore)
	}
	if got := PooledBytes(); got < pooledBefore {
		t.Fatalf("PooledBytes = %d, want >= %d", got, pooledBefore)
	}
	if hw, live := HighWaterBytes(), LiveBytes(); hw < live {
		t.Fatalf("high water %d below live %d", hw, live)
	}
	drained := DrainChunkPool()
	if got := PooledBytes(); got != 0 {
		t.Fatalf("PooledBytes = %d after drain (%d slabs), want 0", got, drained)
	}
}
