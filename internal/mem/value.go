package mem

import "math"

// Val is the runtime's uniform 64-bit value representation: either a raw
// machine word (integer or float bits) or an ObjPtr, depending on context.
// The split mirrors the paper's "data" type, with ObjPtr distinguished.
type Val = uint64

// I2W converts an int64 to a raw word.
func I2W(v int64) Val { return uint64(v) }

// W2I converts a raw word back to an int64.
func W2I(w Val) int64 { return int64(w) }

// F2W converts a float64 to a raw word.
func F2W(v float64) Val { return math.Float64bits(v) }

// W2F converts a raw word back to a float64.
func W2F(w Val) float64 { return math.Float64frombits(w) }

// P2W converts an object pointer to a raw word.
func P2W(p ObjPtr) Val { return uint64(p) }

// W2P converts a raw word back to an object pointer.
func W2P(w Val) ObjPtr { return ObjPtr(w) }
