// Package mem implements the simulated managed-memory substrate that the
// rest of the runtime is built on.
//
// Go's garbage collector cannot host the paper's hierarchical heaps
// directly, so this package provides raw material the runtime manages
// itself: memory is carved into chunks (fixed-granularity []uint64 slabs),
// objects are bump-allocated inside chunks, and object pointers are packed
// 64-bit handles (chunk ID in the high word, word offset in the low word).
// A global two-level chunk directory resolves handles to chunks with two
// atomic loads, mirroring MLton's address-masked chunk metadata lookup.
//
// Every object carries two metadata words:
//
//	word 0: header — packs the number of pointer fields, the number of
//	        non-pointer words, and a tag describing the object kind
//	word 1: forwarding pointer — NilPtr, or the next copy of this object
//
// The dedicated forwarding word reproduces the paper's design decision
// (§6): promotion never overwrites object data, so immutable reads need no
// read barrier, and only mutable accesses check the forwarding word.
//
// Pointer fields are stored before non-pointer words so collectors and
// promotion can scan them without per-field type maps.
package mem
