// Package mem implements the simulated managed-memory substrate that the
// rest of the runtime is built on.
//
// Go's garbage collector cannot host the paper's hierarchical heaps
// directly, so this package provides raw material the runtime manages
// itself: memory is carved into chunks (fixed-granularity []uint64 slabs),
// objects are bump-allocated inside chunks, and object pointers are packed
// 64-bit handles (chunk ID in the high word, word offset in the low word).
// A global two-level chunk directory resolves handles to chunks with two
// atomic loads, mirroring MLton's address-masked chunk metadata lookup.
//
// # Chunk lifecycle: alloc → cache → pool → OS
//
// Chunks are recycled, not freed. The allocator (pool.go) has three tiers:
//
//	AcquireChunk:  worker cache → global size-classed pool → fresh OS alloc
//	RecycleChunk:  worker cache → global size-classed pool → OS (high-water)
//
// Each scheduler worker owns a private ChunkCache (a few chunks per size
// class, touched only by the worker's own goroutine), so the common case —
// a leaf heap growing during request work, and a completed request's
// subtree being released wholesale — trades chunks worker-locally with
// ZERO shared-state operations. Overflow and cold flushes land in the
// global pool (one short mutex hold); only when the pool is above its
// high-water mark (SetChunkPoolLimit) does memory go back to the OS.
//
// A recycled slab keeps its directory ID parked with it, so the recycling
// paths never touch the ID free list's lock; its directory ENTRY, however,
// is invalidated on every release and re-asserted empty on every reuse.
// Stale ObjPtrs into released chunks therefore panic in GetChunk exactly
// as they do after a hard free, a double release fails its entry CAS and
// panics, and each reuse wraps the slab in a fresh Chunk object so a stale
// *Chunk cannot alias the slab's next life. Slabs park dirty and are
// re-zeroed (used prefix only) on reuse, preserving the
// objects-start-zeroed contract without charging destroyed slabs for it.
//
// AllocSnapshot reports the traffic of every tier — cache/pool hit rates,
// fresh allocations, release destinations, and the idMu-serialized
// directory ID operations the recycling design exists to avoid; hhbench
// -table alloc turns two snapshots into the allocator's benchmark table.
//
// # Object layout
//
// Every object carries two metadata words:
//
//	word 0: header — packs the number of pointer fields, the number of
//	        non-pointer words, and a tag describing the object kind
//	word 1: forwarding pointer — NilPtr, or the next copy of this object
//
// The dedicated forwarding word reproduces the paper's design decision
// (§6): promotion never overwrites object data, so immutable reads need no
// read barrier, and only mutable accesses check the forwarding word.
//
// Pointer fields are stored before non-pointer words so collectors and
// promotion can scan them without per-field type maps.
package mem
