package mem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Recycling allocator: instead of handing every dead chunk back to the Go
// garbage collector and paying a fresh make (allocation + zeroing + an
// idMu-serialized directory ID operation) for every new one, the runtime
// recycles chunk slabs through two tiers:
//
//	alloc  →  per-worker ChunkCache  →  sharded global pool  →  OS
//
// AcquireChunk serves a request from the calling worker's cache with zero
// shared-state operations, falls back to the global pool (one short mutex
// hold on the worker's HOME SHARD), and only allocates fresh memory when
// every shard is empty. RecycleChunk is the reverse path: the released slab
// is offered to the worker cache, overflowed to the worker's home shard,
// and released to the OS only when the pool is above its high-water limit.
// Slabs park dirty and are re-zeroed (used prefix only) on reuse, so a slab
// that is destroyed instead of reused never pays for clearing.
//
// The pool's free lists are SHARDED: each worker cache is assigned a home
// shard round-robin, so pool traffic from P workers spreads over up to P
// locks instead of serializing on one. A miss on the home shard steals from
// the other shards round-robin — taking a small batch, not one slab, so a
// producer-consumer imbalance between workers rebalances in O(1) amortized
// steals rather than one cross-shard lock hold per chunk. The high-water
// limit stays GLOBAL (one atomic byte counter checked on every put), so
// SetChunkPoolLimit means the same thing at any shard count.
//
// A recycled slab keeps its directory ID, parked with the slab while it
// sits in a cache or the pool, so neither direction touches the idMu free
// list — the only remaining directory work is one atomic entry store on
// acquire and one atomic entry CAS on release. The entry CAS doubles as
// the safety net: releasing invalidates the entry (stale ObjPtrs panic in
// GetChunk exactly as for a hard free), re-registering asserts the entry
// is still invalid, and a double release fails its CAS and panics — all of
// which hold regardless of which shard (or cache) a slab migrated through.

// Size classes. Heap growth (heap.grow) is geometric from MinChunkWords
// with factor 4, so these are the sizes the runtime actually produces;
// requests between classes round up to the next class so the slab is
// reusable. Requests beyond the largest class are allocated exactly and
// never pooled.
var classWords = [...]int{
	MinChunkWords,     // 64 w = 512 B: first chunk of a leaf heap
	4 * MinChunkWords, // 256 w
	16 * MinChunkWords,
	64 * MinChunkWords,
	DefaultChunkWords,     // 8192 w = 64 KiB
	2 * DefaultChunkWords, // 16384 w: top of the geometric growth
}

const numClasses = len(classWords)

// DefaultPoolLimitBytes is the default high-water mark of the global chunk
// pool: recycled slabs beyond it go back to the OS.
const DefaultPoolLimitBytes = 64 << 20

// DefaultCacheChunksPerClass is the default per-worker cache bound, in
// chunks per size class (≈ 1.9 MiB per worker when every class is full).
const DefaultCacheChunksPerClass = 8

// MaxChunkPoolShards is the hard bound on pool shards. Shard structures are
// allocated up front and never freed, so reconfiguring the shard count
// (SetChunkPoolShards) can never strand a slab in a deallocated shard.
const MaxChunkPoolShards = 64

// poolStealBatch is how many slabs a home-shard miss migrates from the
// victim shard in one steal (the returned slab plus up to batch-1 extras).
const poolStealBatch = 4

// NumSizeClasses reports how many size classes the pool manages.
func NumSizeClasses() int { return numClasses }

// SizeClasses returns the pool's size classes in payload words, ascending.
func SizeClasses() []int {
	out := make([]int, numClasses)
	copy(out, classWords[:])
	return out
}

// classFor returns the smallest size class holding words, or -1 when words
// exceeds the largest class (oversize chunks are never pooled).
func classFor(words int) int {
	for i, w := range classWords {
		if words <= w {
			return i
		}
	}
	return -1
}

// classOfExact returns the class whose size is exactly words, or -1. Used
// on the release path: only slabs with exact class capacities re-enter the
// pool (anything else was allocated outside AcquireChunk).
func classOfExact(words int) int {
	for i, w := range classWords {
		if words == w {
			return i
		}
	}
	return -1
}

// slab is a chunk's raw storage parked in a cache or the pool: the backing
// array plus the directory ID that stays assigned to it, and the dirty
// watermark (the released chunk's used prefix) that must be re-zeroed
// before the slab is handed out again. The Chunk object itself is NOT
// reused — every acquisition wraps the slab in a fresh Chunk, so a stale
// *Chunk held past its release can never CAS the directory entry of the
// slab's next life.
type slab struct {
	id    uint32
	dirty uint32
	data  []uint64
}

// allocCounters are the process-global allocator statistics. Single atomic
// counters are deliberate: they are touched once per CHUNK (64–16384
// words), not once per object, so contention is negligible, and
// process-global counters survive runtime restarts the way the chunk
// directory does.
var allocCounters struct {
	acquires    atomic.Int64
	cacheHits   atomic.Int64
	poolHits    atomic.Int64
	fresh       atomic.Int64
	oversize    atomic.Int64
	recycles    atomic.Int64
	toCache     atomic.Int64
	toPool      atomic.Int64
	toOS        atomic.Int64
	shardSteals atomic.Int64
	dirIDOps    atomic.Int64
	zeroedWords atomic.Int64
}

// countDirIDOp is called by chunk.go for every idMu-serialized chunk-ID
// allocation or free — the global serialization point the pool exists to
// bypass.
func countDirIDOp() { allocCounters.dirIDOps.Add(1) }

// AllocStats is a snapshot of the recycling allocator's behaviour.
// Counters are cumulative for the process; subtract two snapshots for a
// per-run delta (Sub). Gauges (PooledChunks, PooledBytes) are point-in-time.
type AllocStats struct {
	Acquires    int64 // chunk acquisitions through AcquireChunk (pooled classes)
	CacheHits   int64 // served by the calling worker's cache (no shared state)
	PoolHits    int64 // served by the sharded global pool (one shard-mutex hold)
	FreshChunks int64 // served by a fresh OS allocation
	Oversize    int64 // beyond the largest class; always fresh, never pooled

	Recycles int64 // chunks released through RecycleChunk
	ToCache  int64 // recycled into a worker cache
	ToPool   int64 // recycled into the global pool
	ToOS     int64 // released to the OS: pool at high-water, oversize
	// hard-frees, and pool-trim evictions (evicted slabs were counted
	// ToPool when first parked, so destination sums can exceed Recycles)

	ShardSteals int64 // slabs served or migrated from a non-home pool shard
	DirIDOps    int64 // idMu-serialized chunk-ID directory operations
	ZeroedWords int64 // dirty words cleared when reusing parked slabs

	PooledChunks int64 // gauge: chunks currently parked in the global pool
	PooledBytes  int64 // gauge: bytes currently parked in the global pool
}

// Sub returns the counter deltas a−b; the gauges keep a's values.
func (a AllocStats) Sub(b AllocStats) AllocStats {
	a.Acquires -= b.Acquires
	a.CacheHits -= b.CacheHits
	a.PoolHits -= b.PoolHits
	a.FreshChunks -= b.FreshChunks
	a.Oversize -= b.Oversize
	a.Recycles -= b.Recycles
	a.ToCache -= b.ToCache
	a.ToPool -= b.ToPool
	a.ToOS -= b.ToOS
	a.ShardSteals -= b.ShardSteals
	a.DirIDOps -= b.DirIDOps
	a.ZeroedWords -= b.ZeroedWords
	return a
}

// CacheHitRate returns the fraction of class-sized acquisitions served by a
// worker cache.
func (a AllocStats) CacheHitRate() float64 {
	if a.Acquires == 0 {
		return 0
	}
	return float64(a.CacheHits) / float64(a.Acquires)
}

// PoolHitRate returns the fraction of class-sized acquisitions served by
// the global pool.
func (a AllocStats) PoolHitRate() float64 {
	if a.Acquires == 0 {
		return 0
	}
	return float64(a.PoolHits) / float64(a.Acquires)
}

// RecycleRate returns the fraction of class-sized acquisitions that did NOT
// need a fresh OS allocation.
func (a AllocStats) RecycleRate() float64 {
	if a.Acquires == 0 {
		return 0
	}
	return float64(a.CacheHits+a.PoolHits) / float64(a.Acquires)
}

// AllocSnapshot returns the allocator statistics so far.
func AllocSnapshot() AllocStats {
	return AllocStats{
		Acquires:     allocCounters.acquires.Load(),
		CacheHits:    allocCounters.cacheHits.Load(),
		PoolHits:     allocCounters.poolHits.Load(),
		FreshChunks:  allocCounters.fresh.Load(),
		Oversize:     allocCounters.oversize.Load(),
		Recycles:     allocCounters.recycles.Load(),
		ToCache:      allocCounters.toCache.Load(),
		ToPool:       allocCounters.toPool.Load(),
		ToOS:         allocCounters.toOS.Load(),
		ShardSteals:  allocCounters.shardSteals.Load(),
		DirIDOps:     allocCounters.dirIDOps.Load(),
		ZeroedWords:  allocCounters.zeroedWords.Load(),
		PooledChunks: poolChunks.Load(),
		PooledBytes:  poolBytes.Load(),
	}
}

// poolShard is one lock's worth of the global pool: a per-class stack of
// parked slabs. Padded so neighbouring shards' mutexes do not share a
// cache line.
type poolShard struct {
	mu   sync.Mutex
	free [numClasses][]slab
	_    [64]byte
}

// The sharded global pool. Shard structures for the maximum count are
// allocated up front; poolShardCount says how many are currently in use
// (trim and drain always sweep all MaxChunkPoolShards, so slabs parked
// under an older, larger count are still found). The byte/chunk gauges and
// the high-water limit are global atomics — one shard-local mutex plus one
// or two global atomic adds per pool operation, versus one global mutex
// serializing every operation before sharding.
var (
	poolShards     [MaxChunkPoolShards]poolShard
	poolShardCount atomic.Int32
	poolChunks     atomic.Int64
	poolBytes      atomic.Int64
	poolLimit      atomic.Int64

	cacheHomes atomic.Int64 // round-robin home-shard assignment for caches
)

func init() {
	poolLimit.Store(DefaultPoolLimitBytes)
	poolShardCount.Store(1)
}

// SetChunkPoolShards sets how many free-list shards the global pool
// spreads over, clamped to [1, MaxChunkPoolShards]. Slabs parked outside
// the new range are migrated into it. Like SetChunkPoolLimit this is a
// process-global configuration point: the runtime calls it at startup
// (one shard per worker), not concurrently with allocator traffic. It
// returns the previous shard count so callers can restore it.
func SetChunkPoolShards(n int) int {
	if n < 1 {
		n = 1
	}
	if n > MaxChunkPoolShards {
		n = MaxChunkPoolShards
	}
	prev := int(poolShardCount.Swap(int32(n)))
	// Migrate slabs stranded above the new count into in-range shards so
	// gets (which scan only active shards) can still find them.
	for i := n; i < MaxChunkPoolShards; i++ {
		src := &poolShards[i]
		src.mu.Lock()
		var moved [numClasses][]slab
		for cls := range src.free {
			moved[cls] = src.free[cls]
			src.free[cls] = nil
		}
		src.mu.Unlock()
		dst := &poolShards[i%n]
		dst.mu.Lock()
		for cls := range moved {
			dst.free[cls] = append(dst.free[cls], moved[cls]...)
		}
		dst.mu.Unlock()
	}
	return prev
}

// ChunkPoolShards returns the number of active pool shards.
func ChunkPoolShards() int { return int(poolShardCount.Load()) }

// SetChunkPoolLimit sets the pool's high-water mark in bytes: recycled
// slabs that would push the pooled total past it are released to the OS
// instead. 0 disables pooling entirely (every release is a hard free) and
// drains anything currently pooled. Lowering the limit trims the surplus
// immediately. Called by the runtime at startup; the limit, like the chunk
// directory, is process-global.
func SetChunkPoolLimit(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	poolLimit.Store(bytes)
	trimPool(bytes)
}

// ChunkPoolLimit returns the pool's current high-water mark in bytes
// (0 = pooling disabled). Runtimes snapshot it so Close can restore the
// state their New overrode.
func ChunkPoolLimit() int64 { return poolLimit.Load() }

// DrainChunkPool releases every pooled slab to the OS and reports how many
// chunks it freed. Leak tests and memory-pressure hooks use it; the pool
// limit is unchanged.
func DrainChunkPool() int {
	return trimPool(0)
}

// trimPool removes slabs (largest classes first, sweeping every shard)
// until the pooled total is at most target bytes, destroying them outside
// the shard locks. Returns the number of slabs destroyed.
func trimPool(target int64) int {
	var out []slab
	for cls := numClasses - 1; cls >= 0 && poolBytes.Load() > target; cls-- {
		for i := 0; i < MaxChunkPoolShards && poolBytes.Load() > target; i++ {
			sh := &poolShards[i]
			sh.mu.Lock()
			for n := len(sh.free[cls]); n > 0 && poolBytes.Load() > target; n-- {
				s := sh.free[cls][n-1]
				sh.free[cls] = sh.free[cls][:n-1]
				poolChunks.Add(-1)
				poolBytes.Add(-int64(len(s.data)) * 8)
				out = append(out, s)
			}
			sh.mu.Unlock()
		}
	}
	for _, s := range out {
		destroySlab(s)
	}
	return len(out)
}

// destroySlab returns a parked slab's ID to the directory free list and
// drops its storage. The slab's directory entry is already nil (it was
// invalidated when the chunk was recycled).
func destroySlab(s slab) {
	releaseChunkID(s.id)
	allocCounters.toOS.Add(1)
}

// PooledBytes reports the bytes currently parked in the global pool.
func PooledBytes() int64 { return poolBytes.Load() }

// ChunkCache is one worker's private chunk cache: a small per-size-class
// stack of recycled slabs owned by exactly one worker goroutine, so
// acquiring from it and releasing into it take no shared-state operations
// at all. Capacity is bounded (perClass chunks per size class); overflow
// goes to the cache's home shard of the global pool. The zero value is
// unusable — use NewChunkCache.
//
// Ownership rule: a ChunkCache may only ever be touched by the goroutine
// of the worker that owns it. The runtime threads the CALLING task's cache
// through allocation and release paths (never the cache of whatever worker
// a heap "belongs" to), which is what makes the no-synchronization access
// safe even when promoting into a shared ancestor or collecting a zone.
type ChunkCache struct {
	perClass int
	home     int // preferred pool shard (mod the active shard count at use)
	owner    int // owning worker ID + 1 for trace attribution; 0 = unowned
	classes  [numClasses][]slab
	held     int
	heldB    int64
}

// NewChunkCache creates a cache bounded at perClass chunks per size class
// (≤ 0 selects DefaultCacheChunksPerClass). Caches are assigned home pool
// shards round-robin, so the pool traffic of P workers spreads over
// min(P, shards) locks.
func NewChunkCache(perClass int) *ChunkCache {
	if perClass <= 0 {
		perClass = DefaultCacheChunksPerClass
	}
	return &ChunkCache{perClass: perClass, home: int(cacheHomes.Add(1) - 1)}
}

// HeldChunks reports how many chunks the cache is holding.
func (cc *ChunkCache) HeldChunks() int { return cc.held }

// HeldBytes reports the bytes the cache is holding.
func (cc *ChunkCache) HeldBytes() int64 { return cc.heldB }

// PerClass returns the cache's bound in chunks per size class.
func (cc *ChunkCache) PerClass() int { return cc.perClass }

// HomeShard returns the pool shard this cache overflows to and acquires
// from first, under the current shard count.
func (cc *ChunkCache) HomeShard() int { return cc.home % ChunkPoolShards() }

// SetOwner records the worker ID that owns this cache, used only to place
// trace events on the owner's timeline track. Callers that never trace can
// skip it; the zero value attributes to the off-worker track.
func (cc *ChunkCache) SetOwner(id int) { cc.owner = id + 1 }

// Owner returns the owning worker ID, or -1 when unowned.
func (cc *ChunkCache) Owner() int { return cc.owner - 1 }

func (cc *ChunkCache) take(cls int) (slab, bool) {
	st := cc.classes[cls]
	n := len(st)
	if n == 0 {
		return slab{}, false
	}
	s := st[n-1]
	cc.classes[cls] = st[:n-1]
	cc.held--
	cc.heldB -= int64(len(s.data)) * 8
	return s, true
}

func (cc *ChunkCache) put(cls int, s slab) bool {
	if len(cc.classes[cls]) >= cc.perClass {
		return false
	}
	cc.classes[cls] = append(cc.classes[cls], s)
	cc.held++
	cc.heldB += int64(len(s.data)) * 8
	return true
}

// Flush returns every cached slab to the cache's home pool shard (or the
// OS, when the pool is at its high-water mark). Workers call it when they
// go cold (sched's idle trim) and the runtime calls it at Close; only the
// owning worker goroutine (or the runtime after the workers have exited)
// may call it.
func (cc *ChunkCache) Flush() {
	for cls := range cc.classes {
		for _, s := range cc.classes[cls] {
			poolPut(cc.home, cls, s)
		}
		cc.classes[cls] = cc.classes[cls][:0]
	}
	cc.held = 0
	cc.heldB = 0
}

// poolPut parks a slab in the given home shard of the global pool, or
// destroys it when the pool is at its high-water mark (or pooling is
// disabled). The limit check is one atomic add-then-test against the
// global byte gauge, so the high-water semantics are independent of the
// shard count.
func poolPut(home, cls int, s slab) {
	bytes := int64(len(s.data)) * 8
	if poolBytes.Add(bytes) > poolLimit.Load() {
		poolBytes.Add(-bytes)
		destroySlab(s)
		return
	}
	sh := &poolShards[home%ChunkPoolShards()]
	sh.mu.Lock()
	sh.free[cls] = append(sh.free[cls], s)
	sh.mu.Unlock()
	poolChunks.Add(1)
	allocCounters.toPool.Add(1)
}

// poolGet serves a slab of class cls, trying the home shard first and then
// stealing round-robin from the other shards. A successful cross-shard
// steal migrates up to poolStealBatch-1 extra slabs into the home shard,
// so a persistent producer-consumer imbalance between workers costs O(1)
// amortized cross-shard locks, not one per chunk.
func poolGet(home, cls int) (s slab, stolen, ok bool) {
	count := ChunkPoolShards()
	home %= count
	for i := 0; i < count; i++ {
		sh := &poolShards[(home+i)%count]
		sh.mu.Lock()
		n := len(sh.free[cls])
		if n == 0 {
			sh.mu.Unlock()
			continue
		}
		s := sh.free[cls][n-1]
		taken := 1
		var extras []slab
		if i != 0 {
			for n-taken > 0 && taken < poolStealBatch {
				extras = append(extras, sh.free[cls][n-taken-1])
				taken++
			}
		}
		sh.free[cls] = sh.free[cls][:n-taken]
		sh.mu.Unlock()
		poolChunks.Add(-1)
		poolBytes.Add(-int64(len(s.data)) * 8)
		if i != 0 {
			allocCounters.shardSteals.Add(int64(taken))
			if len(extras) > 0 {
				dst := &poolShards[home]
				dst.mu.Lock()
				dst.free[cls] = append(dst.free[cls], extras...)
				dst.mu.Unlock()
			}
		}
		return s, i != 0, true
	}
	return slab{}, false, false
}

// AcquireChunk allocates and registers a chunk able to hold words payload
// words, recycling through cc (the calling worker's cache, nil when the
// caller has none) and the sharded global pool before falling back to a
// fresh OS allocation. Class-sized requests round up to their class so the
// slab is reusable; oversize requests (beyond the largest class) are
// allocated exactly and bypass recycling.
func AcquireChunk(cc *ChunkCache, words int) *Chunk {
	if words < MinChunkWords {
		words = MinChunkWords
	}
	cls := classFor(words)
	if cls < 0 {
		allocCounters.oversize.Add(1)
		return NewChunk(words)
	}
	allocCounters.acquires.Add(1)
	home := 0
	if cc != nil {
		if s, ok := cc.take(cls); ok {
			allocCounters.cacheHits.Add(1)
			return registerRecycled(s)
		}
		home = cc.home
	}
	if s, stolen, ok := poolGet(home, cls); ok {
		allocCounters.poolHits.Add(1)
		if trace.Enabled() {
			track := -1
			if cc != nil {
				track = cc.Owner()
			}
			ev := trace.EvPoolRefill
			if stolen {
				ev = trace.EvPoolSteal
			}
			trace.Emit(track, ev, uint32(cls), 0)
		}
		return registerRecycled(s)
	}
	allocCounters.fresh.Add(1)
	return NewChunk(classWords[cls])
}

// registerRecycled re-zeroes a parked slab's dirty prefix (objects rely
// on fresh chunks being zero; slabs park dirty so destroyed ones never
// pay for clearing), wraps it in a fresh Chunk, and re-registers its
// retained ID in the chunk directory, asserting the entry was invalidated
// when the slab was released. The fresh Chunk object means a *Chunk held
// across the slab's previous life cannot alias this one.
func registerRecycled(s slab) *Chunk {
	if s.dirty > 0 {
		clear(s.data[:s.dirty])
		allocCounters.zeroedWords.Add(int64(s.dirty))
	}
	c := &Chunk{id: s.id, Data: s.data}
	seg := chunkDir[s.id>>dirSegBits].Load()
	if seg == nil {
		panic(fmt.Sprintf("mem: recycled chunk %d maps to an unmapped directory segment", s.id))
	}
	if !seg[s.id&(dirSegSize-1)].CompareAndSwap(nil, c) {
		panic(fmt.Sprintf(
			"mem: reusing chunk %d whose directory entry was never invalidated", s.id))
	}
	idInUse.Add(1)
	accountAlloc(s.id, int64(len(s.data))*8)
	return c
}

// RecycleChunk releases a chunk back to the allocator: its directory entry
// is invalidated first (so any surviving ObjPtr into it panics in GetChunk,
// exactly as after FreeChunk, and a double release panics here), and the
// slab is parked dirty — worker cache first, then the cache's home shard
// of the global pool, then released to the OS when the pool is at its
// high-water mark — carrying its used watermark so reuse re-zeroes exactly
// the dirtied prefix. cc may be nil (no cache tier). Oversize and
// non-class chunks are hard-freed.
func RecycleChunk(cc *ChunkCache, c *Chunk) {
	cls := classOfExact(len(c.Data))
	if cls < 0 {
		allocCounters.recycles.Add(1)
		allocCounters.toOS.Add(1)
		FreeChunk(c)
		return
	}
	unregisterChunk(c) // panics on a double release
	allocCounters.recycles.Add(1)
	s := slab{id: c.id, dirty: c.used, data: c.Data}
	c.Data = nil
	c.Next = nil
	c.used = 0
	if cc != nil && cc.put(cls, s) {
		allocCounters.toCache.Add(1)
		return
	}
	home := 0
	if cc != nil {
		home = cc.home
	}
	poolPut(home, cls, s)
}
