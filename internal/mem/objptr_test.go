package mem

import (
	"testing"
	"testing/quick"
)

func TestObjPtrPackRoundtrip(t *testing.T) {
	f := func(chunk, off uint32) bool {
		p := MakeObjPtr(chunk, off)
		return p.ChunkID() == chunk && p.Off() == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNilPtr(t *testing.T) {
	if !NilPtr.IsNil() {
		t.Fatal("NilPtr must be nil")
	}
	if NilPtr.ChunkID() != 0 || NilPtr.Off() != 0 {
		t.Fatal("NilPtr must decode to chunk 0 offset 0")
	}
	if MakeObjPtr(1, 0).IsNil() {
		t.Fatal("chunk 1 offset 0 must not be nil")
	}
	if NilPtr.String() != "nil" {
		t.Fatalf("NilPtr.String() = %q", NilPtr.String())
	}
	if got := MakeObjPtr(3, 7).String(); got != "3:7" {
		t.Fatalf("MakeObjPtr(3,7).String() = %q", got)
	}
}

func TestValueConversions(t *testing.T) {
	ints := func(v int64) bool { return W2I(I2W(v)) == v }
	if err := quick.Check(ints, nil); err != nil {
		t.Fatal(err)
	}
	floats := func(v float64) bool { return v != v || W2F(F2W(v)) == v }
	if err := quick.Check(floats, nil); err != nil {
		t.Fatal(err)
	}
	ptrs := func(c, o uint32) bool {
		p := MakeObjPtr(c, o)
		return W2P(P2W(p)) == p
	}
	if err := quick.Check(ptrs, nil); err != nil {
		t.Fatal(err)
	}
}
