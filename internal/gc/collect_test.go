package gc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/heap"
	"repro/internal/mem"
)

// buildList allocates an n-cell list (value, next) in h, values i at cell i.
func buildList(h *heap.Heap, n int) mem.ObjPtr {
	head := mem.NilPtr
	for i := n - 1; i >= 0; i-- {
		cons := h.FreshObj(1, 1, mem.TagCons)
		mem.StoreWordField(cons, 0, uint64(i))
		mem.StorePtrField(cons, 0, head)
		head = cons
	}
	return head
}

func checkList(t *testing.T, head mem.ObjPtr, n int, want *heap.Heap) {
	t.Helper()
	p := head
	for i := 0; i < n; i++ {
		if p.IsNil() {
			t.Fatalf("list truncated at %d", i)
		}
		if got := mem.LoadWordField(p, 0); got != uint64(i) {
			t.Fatalf("cell %d holds %d", i, got)
		}
		if want != nil && heap.Of(p) != want {
			t.Fatalf("cell %d in heap %v, want %v", i, heap.Of(p), want)
		}
		p = mem.LoadPtrField(p, 0)
	}
	if !p.IsNil() {
		t.Fatal("list too long")
	}
}

func TestLeafCollectionPreservesLiveDropsGarbage(t *testing.T) {
	h := heap.NewRoot()
	defer heap.FreeChunkList(h.TakeChunks())

	live := buildList(h, 50)
	for i := 0; i < 1000; i++ { // garbage
		h.FreshObj(0, 8, mem.TagTuple)
	}
	usedBefore := h.UsedWords()

	stats := Collect([]*heap.Heap{h}, []*mem.ObjPtr{&live})

	checkList(t, live, 50, h)
	if stats.ObjectsCopied != 50 {
		t.Fatalf("copied %d objects, want 50", stats.ObjectsCopied)
	}
	if h.UsedWords() >= usedBefore {
		t.Fatal("collection did not shrink the heap")
	}
	if h.UsedWords() != int64(50*mem.ObjectWords(1, 1)) {
		t.Fatalf("live size %d", h.UsedWords())
	}
	if h.LiveWords != h.UsedWords() || h.AllocSinceGC != 0 {
		t.Fatal("policy bookkeeping not reset")
	}
	if stats.WordsReclaimed <= 0 {
		t.Fatal("no space reclaimed")
	}
}

func TestCollectionUpdatesNilAndForeignRoots(t *testing.T) {
	root := heap.NewRoot()
	leaf := heap.NewChild(root)
	defer heap.FreeChunkList(root.TakeChunks())
	defer heap.FreeChunkList(leaf.TakeChunks())

	above := root.FreshObj(0, 1, mem.TagRef)
	mem.StoreWordField(above, 0, 9)
	var nilRoot mem.ObjPtr
	aboveRoot := above

	Collect([]*heap.Heap{leaf}, []*mem.ObjPtr{&nilRoot, &aboveRoot, nil})

	if !nilRoot.IsNil() {
		t.Fatal("nil root must stay nil")
	}
	if aboveRoot != above {
		t.Fatal("roots above the zone must not move")
	}
}

func TestCollectionSharesCopies(t *testing.T) {
	h := heap.NewRoot()
	defer heap.FreeChunkList(h.TakeChunks())
	shared := h.FreshObj(0, 1, mem.TagRef)
	mem.StoreWordField(shared, 0, 42)
	a := h.FreshObj(1, 0, mem.TagTuple)
	b := h.FreshObj(1, 0, mem.TagTuple)
	mem.StorePtrField(a, 0, shared)
	mem.StorePtrField(b, 0, shared)

	ra, rb := a, b
	stats := Collect([]*heap.Heap{h}, []*mem.ObjPtr{&ra, &rb})

	if stats.ObjectsCopied != 3 {
		t.Fatalf("copied %d, want 3 (sharing preserved)", stats.ObjectsCopied)
	}
	if mem.LoadPtrField(ra, 0) != mem.LoadPtrField(rb, 0) {
		t.Fatal("shared object duplicated by collection")
	}
	if mem.LoadWordField(mem.LoadPtrField(ra, 0), 0) != 42 {
		t.Fatal("shared value lost")
	}
}

func TestCollectionEliminatesPromotionDuplicates(t *testing.T) {
	// An object was promoted from the leaf to the root earlier: the leaf
	// copy has a forwarding pointer upward. Collecting the leaf must drop
	// the duplicate and redirect roots to the promoted copy (case 2).
	root := heap.NewRoot()
	leaf := heap.NewChild(root)
	defer heap.FreeChunkList(root.TakeChunks())
	defer heap.FreeChunkList(leaf.TakeChunks())

	old := leaf.FreshObj(0, 1, mem.TagRef)
	mem.StoreWordField(old, 0, 7)
	promotedCopy := root.FreshObj(0, 1, mem.TagRef)
	mem.StoreWordField(promotedCopy, 0, 7)
	mem.StoreFwd(old, promotedCopy)

	slot := old
	stats := Collect([]*heap.Heap{leaf}, []*mem.ObjPtr{&slot})

	if slot != promotedCopy {
		t.Fatal("root must be redirected to the promoted copy")
	}
	if stats.ObjectsCopied != 0 {
		t.Fatalf("duplicate was recopied (%d objects)", stats.ObjectsCopied)
	}
	if stats.DuplicatesMerged != 1 {
		t.Fatalf("DuplicatesMerged = %d, want 1", stats.DuplicatesMerged)
	}
	if leaf.UsedWords() != 0 {
		t.Fatalf("leaf still holds %d words", leaf.UsedWords())
	}
}

func TestCollectionFollowsInteriorPromotedPointers(t *testing.T) {
	// A live local object references a previously promoted neighbour: the
	// field must be redirected to the promoted copy during the scan.
	root := heap.NewRoot()
	leaf := heap.NewChild(root)
	defer heap.FreeChunkList(root.TakeChunks())
	defer heap.FreeChunkList(leaf.TakeChunks())

	promotedOld := leaf.FreshObj(0, 1, mem.TagRef)
	promotedNew := root.FreshObj(0, 1, mem.TagRef)
	mem.StoreWordField(promotedNew, 0, 13)
	mem.StoreFwd(promotedOld, promotedNew)

	holder := leaf.FreshObj(1, 0, mem.TagTuple)
	mem.StorePtrField(holder, 0, promotedOld)

	slot := holder
	Collect([]*heap.Heap{leaf}, []*mem.ObjPtr{&slot})

	if mem.LoadPtrField(slot, 0) != promotedNew {
		t.Fatal("interior pointer not redirected to the promoted copy")
	}
}

func TestCollectionPreservesCycles(t *testing.T) {
	h := heap.NewRoot()
	defer heap.FreeChunkList(h.TakeChunks())
	a := h.FreshObj(1, 1, mem.TagTuple)
	b := h.FreshObj(1, 1, mem.TagTuple)
	mem.StoreWordField(a, 0, 1)
	mem.StoreWordField(b, 0, 2)
	mem.StorePtrField(a, 0, b)
	mem.StorePtrField(b, 0, a)

	slot := a
	stats := Collect([]*heap.Heap{h}, []*mem.ObjPtr{&slot})
	if stats.ObjectsCopied != 2 {
		t.Fatalf("copied %d, want 2", stats.ObjectsCopied)
	}
	na := slot
	nb := mem.LoadPtrField(na, 0)
	if mem.LoadWordField(na, 0) != 1 || mem.LoadWordField(nb, 0) != 2 {
		t.Fatal("cycle values lost")
	}
	if mem.LoadPtrField(nb, 0) != na {
		t.Fatal("cycle broken")
	}
}

func TestSubtreeCollection(t *testing.T) {
	// Zone = parent + two children; pointers cross within the zone and out
	// of the zone into the root.
	root := heap.NewRoot()
	parent := heap.NewChild(root)
	c1 := heap.NewChild(parent)
	c2 := heap.NewChild(parent)
	defer func() {
		for _, h := range []*heap.Heap{root, parent, c1, c2} {
			if h.IsAlive() {
				heap.FreeChunkList(h.TakeChunks())
			}
		}
	}()

	globalVal := root.FreshObj(0, 1, mem.TagRef)
	mem.StoreWordField(globalVal, 0, 100)

	inParent := parent.FreshObj(0, 1, mem.TagRef)
	mem.StoreWordField(inParent, 0, 55)

	// c1: tuple -> (inParent, globalVal)
	t1 := c1.FreshObj(2, 1, mem.TagTuple)
	mem.StoreWordField(t1, 0, 11)
	mem.StorePtrField(t1, 0, inParent)
	mem.StorePtrField(t1, 1, globalVal)

	// c2: garbage plus a live cell
	c2.FreshObj(0, 64, mem.TagTuple)
	t2 := c2.FreshObj(0, 1, mem.TagRef)
	mem.StoreWordField(t2, 0, 22)

	r1, r2 := t1, t2
	stats := Collect([]*heap.Heap{parent, c1, c2}, []*mem.ObjPtr{&r1, &r2})

	if mem.LoadWordField(r1, 0) != 11 || mem.LoadWordField(r2, 0) != 22 {
		t.Fatal("zone values lost")
	}
	ip := mem.LoadPtrField(r1, 0)
	if heap.Of(ip) != parent || mem.LoadWordField(ip, 0) != 55 {
		t.Fatal("within-zone cross-heap pointer mishandled")
	}
	if mem.LoadPtrField(r1, 1) != globalVal {
		t.Fatal("out-of-zone pointer must be untouched")
	}
	if heap.Of(r1) != c1 || heap.Of(r2) != c2 {
		t.Fatal("objects must stay in their own (collected) heaps")
	}
	// inParent copied once, t1, t2: 3 objects; garbage dropped.
	if stats.ObjectsCopied != 3 {
		t.Fatalf("copied %d, want 3", stats.ObjectsCopied)
	}
}

func TestCollectEmptyZonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty zone must panic")
		}
	}()
	NewCollector(nil)
}

func TestPolicy(t *testing.T) {
	p := Policy{MinWords: 100, Ratio: 2}
	h := heap.NewRoot()
	defer heap.FreeChunkList(h.TakeChunks())
	if p.ShouldCollect(h) {
		t.Fatal("empty heap must not collect")
	}
	for h.UsedWords() < 100 {
		h.FreshObj(0, 6, mem.TagTuple)
	}
	if !p.ShouldCollect(h) {
		t.Fatal("heap past floor with zero live must collect")
	}
	h.LiveWords = h.UsedWords()
	if p.ShouldCollect(h) {
		t.Fatal("freshly collected heap must not recollect")
	}
	for h.UsedWords() < 2*h.LiveWords {
		h.FreshObj(0, 6, mem.TagTuple)
	}
	if !p.ShouldCollect(h) {
		t.Fatal("heap at 2x live must collect")
	}
}

// graph checksum over raw mem (sharing-sensitive), for the property test.
func checksum(p mem.ObjPtr, seen map[mem.ObjPtr]int, order *int) uint64 {
	if p.IsNil() {
		return 11
	}
	if id, ok := seen[p]; ok {
		return uint64(id)*31 + 7
	}
	*order++
	seen[p] = *order
	sum := uint64(mem.TagOf(p))
	for i, n := 0, mem.NumNonptrWords(p); i < n; i++ {
		sum = sum*31 ^ mem.LoadWordField(p, i)
	}
	for i, n := 0, mem.NumPtrFields(p); i < n; i++ {
		sum = sum*1099511628211 ^ checksum(mem.LoadPtrField(p, i), seen, order)
	}
	return sum
}

func TestCollectionPreservesRandomGraphs(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz)%80 + 1
		h := heap.NewRoot()
		defer heap.FreeChunkList(h.TakeChunks())

		nodes := make([]mem.ObjPtr, n)
		for i := range nodes {
			deg := rng.Intn(3)
			if i == 0 {
				deg = 0
			}
			p := h.FreshObj(deg, 1, mem.TagTuple)
			mem.StoreWordField(p, 0, uint64(i)*2654435761)
			for j := 0; j < deg; j++ {
				mem.StorePtrField(p, j, nodes[rng.Intn(i)])
			}
			nodes[i] = p
		}
		// A few random roots (plus garbage: unrooted nodes).
		nRoots := rng.Intn(3) + 1
		roots := make([]mem.ObjPtr, nRoots)
		slots := make([]*mem.ObjPtr, nRoots)
		before := make([]uint64, nRoots)
		for i := range roots {
			roots[i] = nodes[rng.Intn(n)]
			slots[i] = &roots[i]
			before[i] = checksum(roots[i], map[mem.ObjPtr]int{}, new(int))
		}

		Collect([]*heap.Heap{h}, slots)

		for i := range roots {
			if checksum(roots[i], map[mem.ObjPtr]int{}, new(int)) != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedCollections(t *testing.T) {
	// Failure-injection style stress: many rounds of churn + collection on
	// one heap; live set rotates each round.
	h := heap.NewRoot()
	defer heap.FreeChunkList(h.TakeChunks())
	var live mem.ObjPtr
	for round := 0; round < 20; round++ {
		live = buildList(h, 30)
		for i := 0; i < 500; i++ {
			h.FreshObj(0, 10, mem.TagTuple)
		}
		Collect([]*heap.Heap{h}, []*mem.ObjPtr{&live})
		checkList(t, live, 30, h)
		if h.UsedWords() != int64(30*mem.ObjectWords(1, 1)) {
			t.Fatalf("round %d: live size %d", round, h.UsedWords())
		}
	}
}
