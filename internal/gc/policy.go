package gc

import "repro/internal/heap"

// Policy decides when a heap is worth collecting, following the
// size-ratio discipline inherited from the prior hierarchical-heaps work:
// collect once the heap has grown beyond a factor of its last live size,
// with a floor that leaves small heaps alone.
type Policy struct {
	// MinWords is the smallest heap occupancy worth collecting.
	MinWords int64
	// Ratio is the growth factor over the last live size that triggers
	// collection.
	Ratio float64
}

// DefaultPolicy matches a 1 MiB floor with a 2x growth trigger.
func DefaultPolicy() Policy {
	return Policy{MinWords: 128 * 1024, Ratio: 2.0}
}

// ShouldCollect reports whether h has grown enough to collect.
func (p Policy) ShouldCollect(h *heap.Heap) bool {
	used := h.UsedWords()
	if used < p.MinWords {
		return false
	}
	threshold := int64(p.Ratio * float64(h.LiveWords))
	if threshold < p.MinWords {
		threshold = p.MinWords
	}
	return used >= threshold
}
