package gc

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/mem"
)

// Stats describes one collection.
type Stats struct {
	Collections      int64
	ObjectsCopied    int64
	WordsCopied      int64
	DuplicatesMerged int64 // promotion duplicates eliminated (Appendix A case 2)
	WordsReclaimed   int64 // from-space words released
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Collections += o.Collections
	s.ObjectsCopied += o.ObjectsCopied
	s.WordsCopied += o.WordsCopied
	s.DuplicatesMerged += o.DuplicatesMerged
	s.WordsReclaimed += o.WordsReclaimed
}

// Collector performs one collection over a zone of heaps.
type Collector struct {
	topDepth int32
	toSpace  map[*heap.Heap]*heap.Heap
	zone     []*heap.Heap
	scan     []mem.ObjPtr
	stats    Stats

	// cache is the COLLECTING worker's chunk cache (nil when the collector
	// runs off-worker): to-space chunks are acquired from it and from-space
	// chunks are recycled into it, so a collection normally trades chunks
	// with its own worker instead of the global directory.
	cache *mem.ChunkCache
}

// NewCollector prepares a collection of the given zone. The zone must
// consist of live, distinct heaps: a top heap and optionally its live
// descendants (pass just one heap for a leaf collection). Each zone heap
// receives a to-space twin.
func NewCollector(zone []*heap.Heap) *Collector {
	if len(zone) == 0 {
		panic("gc: empty collection zone")
	}
	c := &Collector{
		toSpace:  make(map[*heap.Heap]*heap.Heap, len(zone)),
		zone:     zone,
		topDepth: zone[0].Depth(),
	}
	for _, h := range zone {
		if !h.IsAlive() {
			panic("gc: zone heap has been merged away")
		}
		if _, dup := c.toSpace[h]; dup {
			panic("gc: duplicate heap in zone")
		}
		c.toSpace[h] = heap.NewTwin(h)
		if d := h.Depth(); d < c.topDepth {
			c.topDepth = d
		}
	}
	return c
}

// CopyRoot relocates one root slot into to-space. The slot is only written
// when the pointer actually moves: slots holding pointers outside the zone
// may be concurrently read by other tasks (e.g. a thief reading a frame's
// environment), and such pointers never move.
func (c *Collector) CopyRoot(slot *mem.ObjPtr) {
	if slot == nil || slot.IsNil() {
		return
	}
	if moved := c.copyObj(*slot); moved != *slot {
		*slot = moved
	}
	c.drain()
}

// copyObj implements cheneyCopy's chase (Appendix A): follow the forwarding
// chain applying the three-case rule, copying at most one object.
func (c *Collector) copyObj(q mem.ObjPtr) mem.ObjPtr {
	chased := false
	for {
		h := heap.Of(q)
		if h.Depth() < c.topDepth {
			// Case 2 when reached via a chain: a promotion's copy above the
			// zone supersedes the in-zone duplicates.
			if chased {
				c.stats.DuplicatesMerged++
			}
			return q
		}
		if h.IsTo() {
			return q // case 1: copied earlier in this collection
		}
		if f := mem.LoadFwd(q); !f.IsNil() {
			chased = true
			q = f
			continue
		}
		// Case 3: live and local — copy into this heap's twin.
		to, ok := c.toSpace[h]
		if !ok {
			panic(fmt.Sprintf("gc: reachable object %v in heap %v outside the zone (depth %d >= top %d)",
				q, h, h.Depth(), c.topDepth))
		}
		numPtr, numNonptr, tag := mem.NumPtrFields(q), mem.NumNonptrWords(q), mem.TagOf(q)
		fresh := to.FreshObjVia(c.cache, numPtr, numNonptr, tag)
		mem.StoreFwd(q, fresh)
		mem.CopyBody(fresh, q)
		c.stats.ObjectsCopied++
		c.stats.WordsCopied += int64(mem.ObjectWords(numPtr, numNonptr))
		c.scan = append(c.scan, fresh)
		return fresh
	}
}

// drainRemembered treats the zone heaps' remembered entries (deferred
// promotion, heap/remset.go) as extra roots: a pinned pointee is live as
// long as its remembered slot still holds the down-pointer, even though
// no shadow-stack root reaches it. Each surviving entry's pointee is
// copied into to-space, its slot repaired, and the entry reinstalled with
// the new pointer; entries whose slot was overwritten (or was itself
// in-zone garbage) are dropped, and entries whose pointee ends up at or
// above the slot's depth are resolved — the pin is over.
//
// Surviving entries are deliberately NOT promoted: the pointee is
// evacuated within its own heap and stays pinned, so a collection never
// forces the upward copy the deferral exists to avoid. Promotion happens
// only at a second touch (core.WritePtrDeferred) or when a release sweep
// finds the slot outliving the subtree (core.DrainForRelease); this pass
// is what lets an object ride out any number of zone collections in its
// leaf heap and still die there for free.
func (c *Collector) drainRemembered() {
	for _, h := range c.zone {
		entries := h.TakeRemembered()
		if len(entries) == 0 {
			continue
		}
		kept := entries[:0]
		resolved := int64(0)
		for i := range entries {
			e := entries[i]
			slot := chaseFwd(e.Slot)
			if sh := heap.Of(slot); !sh.IsTo() {
				if _, inZone := c.toSpace[sh]; inZone {
					// The slot lies in the zone and was not reached from the
					// roots: it is garbage, and the pin dies with it.
					resolved++
					continue
				}
			}
			if mem.LoadPtrFieldAtomic(slot, e.Field) != e.Ptr {
				resolved++ // slot moved on since the pin; nothing to keep alive
				continue
			}
			moved := c.copyObj(e.Ptr)
			c.drain()
			if moved != e.Ptr {
				mem.StorePtrFieldAtomic(slot, e.Field, moved)
			}
			if heap.Of(slot).Depth() >= heap.Of(moved).Depth() {
				resolved++ // pointee ended at or above the slot: entanglement over
				continue
			}
			e.Slot, e.Ptr = slot, moved
			if owner := heap.Of(moved); owner != h && owner != c.toSpace[h] {
				// The pointee was dragged out of the zone by an earlier
				// transitive promotion (it rode along in another object's
				// copied subgraph) and this heap no longer owns its master:
				// re-file the pin where the object now lives, or the owner's
				// own collections would never see it as a root. The slot was
				// repaired to the master above, so nothing dangles either way.
				owner.RefilePin(e)
				continue
			}
			kept = append(kept, e)
		}
		if resolved > 0 {
			heap.NoteRemGCResolved(resolved)
		}
		h.ReinstallRemembered(kept)
	}
}

// chaseFwd follows a (permanent) forwarding chain to the master copy.
func chaseFwd(p mem.ObjPtr) mem.ObjPtr {
	for {
		f := mem.LoadFwd(p)
		if f.IsNil() {
			return p
		}
		p = f
	}
}

// drain scans copied objects, relocating their pointer fields.
func (c *Collector) drain() {
	for len(c.scan) > 0 {
		o := c.scan[len(c.scan)-1]
		c.scan = c.scan[:len(c.scan)-1]
		for i, n := 0, mem.NumPtrFields(o); i < n; i++ {
			q := mem.LoadPtrField(o, i)
			if q.IsNil() {
				continue
			}
			mem.StorePtrField(o, i, c.copyObj(q))
		}
	}
}

// Finish swaps semispaces (each zone heap adopts its twin's chunks) and
// frees the from-spaces. It returns the collection's statistics.
func (c *Collector) Finish() Stats {
	for _, h := range c.zone {
		old := h.TakeChunks()
		reclaimed := int64(0)
		for ch := old; ch != nil; ch = ch.Next {
			reclaimed += int64(ch.Cap())
		}
		h.AdoptFrom(c.toSpace[h])
		heap.RecycleChunkList(c.cache, old)
		c.stats.WordsReclaimed += reclaimed
	}
	c.stats.WordsReclaimed -= c.stats.WordsCopied
	c.stats.Collections = 1
	return c.stats
}

// Collect runs a full collection of the zone with the given root slots.
// Each slot is updated in place to the relocated pointer.
func Collect(zone []*heap.Heap, roots []*mem.ObjPtr) Stats {
	return CollectWith(nil, zone, roots)
}

// CollectWith is Collect with the collection's chunk traffic routed
// through cc, the collecting worker's chunk cache: to-space chunks are
// acquired from it and the reclaimed from-space is recycled into it.
func CollectWith(cc *mem.ChunkCache, zone []*heap.Heap, roots []*mem.ObjPtr) Stats {
	c := NewCollector(zone)
	c.cache = cc
	for _, r := range roots {
		c.CopyRoot(r)
	}
	c.drainRemembered()
	return c.Finish()
}
