package gc

import (
	"testing"
	"time"

	"repro/internal/heap"
	"repro/internal/mem"
)

// admitted runs Admit(zone) in a goroutine and returns a channel that
// closes once admission succeeds.
func admitted(s *ZoneScheduler, zone []*heap.Heap) chan struct{} {
	ch := make(chan struct{})
	go func() {
		s.Admit(zone, 0)
		close(ch)
	}()
	return ch
}

func waitAdmitted(t *testing.T, ch chan struct{}, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: admission did not complete", what)
	}
}

func TestZoneSchedulerDisjointZonesOverlap(t *testing.T) {
	root := heap.NewRoot()
	a, b := heap.NewChild(root), heap.NewChild(root)
	s := NewZoneScheduler(0)

	s.Admit([]*heap.Heap{a}, 0)
	// A disjoint zone must be admitted while the first is still in flight.
	waitAdmitted(t, admitted(s, []*heap.Heap{b}), "disjoint zone")
	if got := s.InFlight(); got != 2 {
		t.Fatalf("in flight = %d, want 2", got)
	}
	s.Release([]*heap.Heap{a}, 0)
	s.Release([]*heap.Heap{b}, 0)

	st := s.Snapshot()
	if st.MaxConcurrent != 2 {
		t.Fatalf("MaxConcurrent = %d, want 2", st.MaxConcurrent)
	}
	if st.OverlapNanos <= 0 {
		t.Fatal("overlapping zones recorded no overlap time")
	}
}

func TestZoneSchedulerSerializesSharedHeap(t *testing.T) {
	root := heap.NewRoot()
	parent := heap.NewChild(root)
	child := heap.NewChild(parent)
	s := NewZoneScheduler(0)

	s.Admit([]*heap.Heap{parent, child}, 0)
	// A zone sharing `child` must wait for the first to be released. No
	// interleaving can drive MaxConcurrent to 2, so the property is
	// deterministic even though the blocking itself is timing-dependent.
	ch := admitted(s, []*heap.Heap{child})
	time.Sleep(time.Millisecond)
	s.Release([]*heap.Heap{parent, child}, 0)
	waitAdmitted(t, ch, "overlapping zone after release")
	s.Release([]*heap.Heap{child}, 0)

	if st := s.Snapshot(); st.MaxConcurrent != 1 {
		t.Fatalf("overlapping zones ran concurrently: MaxConcurrent = %d", st.MaxConcurrent)
	}
}

func TestZoneSchedulerRespectsCap(t *testing.T) {
	root := heap.NewRoot()
	a, b := heap.NewChild(root), heap.NewChild(root)
	s := NewZoneScheduler(1)

	s.Admit([]*heap.Heap{a}, 0)
	ch := admitted(s, []*heap.Heap{b}) // disjoint, but over the cap
	time.Sleep(time.Millisecond)
	s.Release([]*heap.Heap{a}, 0)
	waitAdmitted(t, ch, "capped zone after release")
	s.Release([]*heap.Heap{b}, 0)

	if st := s.Snapshot(); st.MaxConcurrent != 1 {
		t.Fatalf("cap of 1 violated: MaxConcurrent = %d", st.MaxConcurrent)
	}
}

func TestCollectZoneCollectsAndCounts(t *testing.T) {
	h := heap.NewRoot()
	defer heap.FreeChunkList(h.TakeChunks())
	live := buildList(h, 40)
	for i := 0; i < 500; i++ {
		h.FreshObj(0, 8, mem.TagTuple) // garbage
	}

	s := NewZoneScheduler(0)
	stats := s.CollectZone(nil, []*heap.Heap{h}, []*mem.ObjPtr{&live}, LeafZone)

	checkList(t, live, 40, h)
	if stats.ObjectsCopied != 40 {
		t.Fatalf("copied %d objects, want 40", stats.ObjectsCopied)
	}
	zs := s.Snapshot()
	if zs.Zones != 1 || zs.LeafZones != 1 || zs.JoinZones != 0 {
		t.Fatalf("zone counts = %+v", zs)
	}
	if zs.WordsCopied != stats.WordsCopied || zs.WordsCopied == 0 {
		t.Fatalf("WordsCopied = %d, want %d", zs.WordsCopied, stats.WordsCopied)
	}
	if zs.ZoneNanos <= 0 {
		t.Fatal("no zone time recorded")
	}
	if s.InFlight() != 0 {
		t.Fatal("zone not released after collection")
	}

	s.CollectZone(nil, []*heap.Heap{h}, []*mem.ObjPtr{&live}, JoinZone)
	if zs := s.Snapshot(); zs.JoinZones != 1 || zs.Zones != 2 {
		t.Fatalf("join zone not counted: %+v", zs)
	}
}

func TestCollectZoneTakesWriteLocks(t *testing.T) {
	h := heap.NewRoot()
	defer heap.FreeChunkList(h.TakeChunks())
	live := buildList(h, 5)
	before := h.LockStats().WriteAcquires

	s := NewZoneScheduler(0)
	s.CollectZone(nil, []*heap.Heap{h}, []*mem.ObjPtr{&live}, LeafZone)

	if after := h.LockStats().WriteAcquires; after != before+1 {
		t.Fatalf("write acquires %d -> %d, want one zone write lock", before, after)
	}
}

func TestZoneSchedulerTracksSessionFamilies(t *testing.T) {
	root := heap.NewRoot()
	a, b, c := heap.NewChild(root), heap.NewChild(root), heap.NewChild(root)
	s := NewZoneScheduler(0)

	// Two zones of DISTINCT sessions in flight: distinct-session peak is 2.
	s.Admit([]*heap.Heap{a}, 7)
	s.Admit([]*heap.Heap{b}, 9)
	// A second zone of an already-collecting session must not raise it.
	s.Admit([]*heap.Heap{c}, 7)
	s.Release([]*heap.Heap{c}, 7)
	s.Release([]*heap.Heap{b}, 9)
	s.Release([]*heap.Heap{a}, 7)

	// An untagged zone never counts as a session.
	s.Admit([]*heap.Heap{a}, 0)
	s.Release([]*heap.Heap{a}, 0)

	st := s.Snapshot()
	if st.MaxConcurrentSessions != 2 {
		t.Fatalf("MaxConcurrentSessions = %d, want 2", st.MaxConcurrentSessions)
	}
	if st.MaxConcurrent != 3 {
		t.Fatalf("MaxConcurrent = %d, want 3", st.MaxConcurrent)
	}
}

func TestCollectSessionZoneCounts(t *testing.T) {
	h := heap.NewRoot()
	defer heap.FreeChunkList(h.TakeChunks())
	live := buildList(h, 8)

	s := NewZoneScheduler(0)
	s.CollectSessionZone(nil, 42, []*heap.Heap{h}, []*mem.ObjPtr{&live}, LeafZone)
	s.CollectZone(nil, []*heap.Heap{h}, []*mem.ObjPtr{&live}, LeafZone)

	zs := s.Snapshot()
	if zs.SessionZones != 1 {
		t.Fatalf("SessionZones = %d, want 1", zs.SessionZones)
	}
	if zs.Zones != 2 {
		t.Fatalf("Zones = %d, want 2", zs.Zones)
	}
}
