package gc

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/heap"
	"repro/internal/mem"
)

// Concurrent zone scheduling (paper §3.4): disjoint subtrees of the heap
// hierarchy — zones — may be collected simultaneously with each other and
// with mutator work. The collector itself (collect.go) is re-entrant: it
// keeps no package-level state, so any number of Collectors can run at
// once as long as their zones share no heap. The ZoneScheduler provides
// that guarantee: it admits a zone only when no in-flight collection holds
// any of its heaps, caps the number of simultaneous collections, and
// measures how much concurrency the runtime actually achieved.
//
// A collecting task never parks the world. It holds exactly its zone's
// write locks (heap.LockZone, deepest first), so tasks in other subtrees
// keep allocating, mutating, promoting, and stealing throughout.

// ZoneKind classifies a zone collection for the statistics.
type ZoneKind int

const (
	// LeafZone is a collection of a task's current leaf heap, triggered at
	// an allocation safe point.
	LeafZone ZoneKind = iota
	// JoinZone is an internal-node collection: at a join, the child heap
	// has been merged into its parent and the merged ancestor — now free
	// of live descendants — is collected as a zone.
	JoinZone
)

func (k ZoneKind) String() string {
	if k == JoinZone {
		return "join"
	}
	return "leaf"
}

// ZoneStats aggregates a scheduler's lifetime zone-collection behaviour.
type ZoneStats struct {
	Zones         int64 // zone collections completed
	LeafZones     int64 // collections of leaf heaps at allocation safe points
	JoinZones     int64 // internal-node collections of merged ancestors at joins
	WordsCopied   int64 // words copied by zone collections
	ZoneNanos     int64 // summed wall time spent inside zone collections
	OverlapNanos  int64 // wall time during which >= 2 zones were in flight
	MaxConcurrent int64 // peak number of zones in flight at once

	// Session-family counters (serving layer): zones tagged with a nonzero
	// family belong to one root-level session subtree. Disjoint sessions
	// collecting at the same time is the cross-request GC concurrency the
	// hierarchy buys, so the scheduler measures it directly.
	SessionZones          int64 // completed zone collections tagged with a session
	MaxConcurrentSessions int64 // peak number of DISTINCT sessions collecting at once
}

// ZoneScheduler admits disjoint zone collections and accounts for their
// overlap. One scheduler serves one runtime.
type ZoneScheduler struct {
	mu   sync.Mutex
	cond *sync.Cond

	maxZones int                     // admission cap; <= 0 means unlimited
	active   map[*heap.Heap]struct{} // heaps of in-flight zones
	nActive  int                     // in-flight zone count
	families map[uint64]int          // in-flight zone count per session family
	overlap  time.Time               // start of the current >=2-zone span

	stats ZoneStats
}

// NewZoneScheduler creates a scheduler admitting at most maxConcurrent
// zones at once (<= 0 for no cap beyond disjointness).
func NewZoneScheduler(maxConcurrent int) *ZoneScheduler {
	s := &ZoneScheduler{
		maxZones: maxConcurrent,
		active:   make(map[*heap.Heap]struct{}),
		families: make(map[uint64]int),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// overlaps reports whether any zone heap is part of an in-flight zone.
// Caller holds s.mu.
func (s *ZoneScheduler) overlaps(zone []*heap.Heap) bool {
	for _, h := range zone {
		if _, busy := s.active[h]; busy {
			return true
		}
	}
	return false
}

// Admit blocks until the zone is disjoint from every in-flight collection
// and an admission slot is free, then marks it in flight. Admission holds
// no heap locks while waiting, so it cannot deadlock against collectors or
// promoters; in a disentangled hierarchy two live tasks never build
// overlapping zones, so waiting here indicates either the admission cap or
// a (tolerated, serialized) zone-construction bug.
//
// family tags the zone with the session subtree it belongs to (0 = not a
// session zone); the scheduler tracks how many distinct sessions collect
// simultaneously.
func (s *ZoneScheduler) Admit(zone []*heap.Heap, family uint64) {
	s.mu.Lock()
	for s.overlaps(zone) || (s.maxZones > 0 && s.nActive >= s.maxZones) {
		s.cond.Wait()
	}
	for _, h := range zone {
		s.active[h] = struct{}{}
	}
	s.nActive++
	if int64(s.nActive) > s.stats.MaxConcurrent {
		s.stats.MaxConcurrent = int64(s.nActive)
	}
	if family != 0 {
		s.families[family]++
		if n := int64(len(s.families)); n > s.stats.MaxConcurrentSessions {
			s.stats.MaxConcurrentSessions = n
		}
	}
	if s.nActive == 2 {
		s.overlap = time.Now()
	}
	s.mu.Unlock()
}

// Release takes the zone out of flight and wakes waiting admissions. The
// family must match the zone's Admit.
func (s *ZoneScheduler) Release(zone []*heap.Heap, family uint64) {
	s.mu.Lock()
	for _, h := range zone {
		if _, busy := s.active[h]; !busy {
			s.mu.Unlock()
			panic(fmt.Sprintf("gc: releasing heap %v that is not in flight", h))
		}
		delete(s.active, h)
	}
	if family != 0 {
		if s.families[family]--; s.families[family] <= 0 {
			delete(s.families, family)
		}
	}
	if s.nActive == 2 {
		s.stats.OverlapNanos += time.Since(s.overlap).Nanoseconds()
	}
	s.nActive--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// CollectZone runs one concurrent zone collection: admission, zone write
// locks (canonical deepest-first order), the promotion-aware copy over the
// given roots, then release. cc is the collecting worker's chunk cache
// (nil when the caller runs off-worker): to-space chunks come from it and
// the swept from-space recycles into it, keeping the collection's chunk
// traffic off the global directory. It returns the collection's
// statistics.
//
// The write locks are what lets this run concurrently with everything
// outside the zone: findMaster read-locks and promotion write-locks target
// only heaps on the *caller's* own root-path, and disentanglement keeps
// other tasks' root-paths disjoint from this zone — so in a correct
// execution the locks are uncontended, and in an incorrect one (an
// entangled pointer into the zone) they serialize instead of corrupting.
func (s *ZoneScheduler) CollectZone(cc *mem.ChunkCache, zone []*heap.Heap, roots []*mem.ObjPtr, kind ZoneKind) Stats {
	return s.CollectSessionZone(cc, 0, zone, roots, kind)
}

// CollectSessionZone is CollectZone for a zone belonging to the root-level
// session subtree identified by family (0 for zones outside any session).
// Zones of distinct sessions are always disjoint, so they admit and run
// concurrently; the scheduler counts how many distinct sessions it actually
// observed collecting at once (ZoneStats.MaxConcurrentSessions).
func (s *ZoneScheduler) CollectSessionZone(cc *mem.ChunkCache, family uint64, zone []*heap.Heap, roots []*mem.ObjPtr, kind ZoneKind) Stats {
	z := make([]*heap.Heap, len(zone))
	copy(z, zone)
	heap.SortZone(z)

	s.Admit(z, family)
	start := time.Now()
	heap.LockZone(z)
	st := CollectWith(cc, z, roots)
	heap.UnlockZone(z)
	dur := time.Since(start).Nanoseconds()
	s.Release(z, family)

	s.mu.Lock()
	s.stats.Zones++
	if kind == JoinZone {
		s.stats.JoinZones++
	} else {
		s.stats.LeafZones++
	}
	if family != 0 {
		s.stats.SessionZones++
	}
	s.stats.WordsCopied += st.WordsCopied
	s.stats.ZoneNanos += dur
	s.mu.Unlock()
	return st
}

// Snapshot returns the scheduler's aggregate statistics so far.
func (s *ZoneScheduler) Snapshot() ZoneStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	if s.nActive >= 2 {
		st.OverlapNanos += time.Since(s.overlap).Nanoseconds()
	}
	return st
}

// InFlight returns the number of zone collections currently admitted.
func (s *ZoneScheduler) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nActive
}
