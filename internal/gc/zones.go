package gc

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Concurrent zone scheduling (paper §3.4): disjoint subtrees of the heap
// hierarchy — zones — may be collected simultaneously with each other and
// with mutator work. The collector itself (collect.go) is re-entrant: it
// keeps no package-level state, so any number of Collectors can run at
// once as long as their zones share no heap. The ZoneScheduler provides
// that guarantee: it admits a zone only when no in-flight collection holds
// any of its heaps, caps the number of simultaneous collections, and
// measures how much concurrency the runtime actually achieved.
//
// A collecting task never parks the world. It holds exactly its zone's
// write locks (heap.LockZone, deepest first), so tasks in other subtrees
// keep allocating, mutating, promoting, and stealing throughout.
//
// Admission is STRIPED: the in-flight heap set is split over stripeCount
// stripes keyed by heap ID, and admitting a zone locks only the stripes
// its heaps map to — in ascending stripe order, so any two admissions
// acquire their common stripes in the same total order and cannot
// deadlock. Disjoint zones whose heaps land on different stripes admit
// and release in parallel; before striping every admission serialized on
// one scheduler-wide mutex even though the zones shared nothing. The
// admission cap is one atomic reservation, and the statistics that are
// inherently global (overlap wall-clock spans, distinct-session tracking)
// live behind a separate short mutex doing constant work per collection —
// never O(zone heaps).

// ZoneKind classifies a zone collection for the statistics.
type ZoneKind int

const (
	// LeafZone is a collection of a task's current leaf heap, triggered at
	// an allocation safe point.
	LeafZone ZoneKind = iota
	// JoinZone is an internal-node collection: at a join, the child heap
	// has been merged into its parent and the merged ancestor — now free
	// of live descendants — is collected as a zone.
	JoinZone
)

func (k ZoneKind) String() string {
	if k == JoinZone {
		return "join"
	}
	return "leaf"
}

// ZoneStats aggregates a scheduler's lifetime zone-collection behaviour.
type ZoneStats struct {
	Zones         int64 // zone collections completed
	LeafZones     int64 // collections of leaf heaps at allocation safe points
	JoinZones     int64 // internal-node collections of merged ancestors at joins
	WordsCopied   int64 // words copied by zone collections
	ZoneNanos     int64 // summed wall time spent inside zone collections
	OverlapNanos  int64 // wall time during which >= 2 zones were in flight
	MaxConcurrent int64 // peak number of zones in flight at once

	// Session-family counters (serving layer): zones tagged with a nonzero
	// family belong to one root-level session subtree. Disjoint sessions
	// collecting at the same time is the cross-request GC concurrency the
	// hierarchy buys, so the scheduler measures it directly.
	SessionZones          int64 // completed zone collections tagged with a session
	MaxConcurrentSessions int64 // peak number of DISTINCT sessions collecting at once
}

// DefaultZoneStripes is the admission stripe count used when the caller
// does not choose one. Sixteen stripes keep the chance of two disjoint
// zones colliding on a stripe low at any plausible worker count while the
// per-zone stripe set still fits a word.
const DefaultZoneStripes = 16

// MaxZoneStripes is the hard bound on admission stripes: stripe sets are
// represented as one 64-bit mask.
const MaxZoneStripes = 64

// admitStripe is one lock's worth of the in-flight heap set, padded so
// neighbouring stripes' mutexes do not share a cache line.
type admitStripe struct {
	mu     sync.Mutex
	active map[*heap.Heap]struct{}
	_      [64]byte
}

// ZoneScheduler admits disjoint zone collections and accounts for their
// overlap. One scheduler serves one runtime.
type ZoneScheduler struct {
	maxZones int  // admission cap; <= 0 means unlimited
	shift    uint // 64 - log2(len(stripes)), for the multiplicative hash
	stripes  []admitStripe

	nActive atomic.Int64 // in-flight zone count (cap reservation + gauge)

	// Waiter wakeup. A failed admission registers in waiters, re-checks
	// (so a release that ran in between is not missed), then sleeps until
	// the generation counter moves. Releases bump the generation only when
	// waiters is nonzero, so the uncontended release path never touches
	// waitMu.
	waitMu  sync.Mutex
	waitGen uint64
	cond    *sync.Cond
	waiters atomic.Int32

	// Inherently global statistics: wall-clock overlap spans and
	// distinct-session tracking need a serialized view of zone-count
	// transitions, and the completed-zone counters are cheapest batched
	// under the same short lock. Constant work per collection.
	statsMu   sync.Mutex
	curActive int            // mirror of in-flight count for span transitions
	families  map[uint64]int // in-flight zone count per session family
	overlap   time.Time      // start of the current >=2-zone span
	stats     ZoneStats
}

// NewZoneScheduler creates a scheduler admitting at most maxConcurrent
// zones at once (<= 0 for no cap beyond disjointness), with the default
// admission stripe count.
func NewZoneScheduler(maxConcurrent int) *ZoneScheduler {
	return NewZoneSchedulerWithStripes(maxConcurrent, DefaultZoneStripes)
}

// NewZoneSchedulerWithStripes creates a scheduler with an explicit
// admission stripe count, rounded up to a power of two and clamped to
// [1, MaxZoneStripes]. One stripe reproduces the pre-striping scheduler's
// fully serialized admission (useful for deterministic tests).
func NewZoneSchedulerWithStripes(maxConcurrent, stripes int) *ZoneScheduler {
	if stripes < 1 {
		stripes = 1
	}
	if stripes > MaxZoneStripes {
		stripes = MaxZoneStripes
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	s := &ZoneScheduler{
		maxZones: maxConcurrent,
		shift:    uint(64 - bits.TrailingZeros(uint(n))),
		stripes:  make([]admitStripe, n),
		families: make(map[uint64]int),
	}
	if n == 1 {
		s.shift = 64
	}
	for i := range s.stripes {
		s.stripes[i].active = make(map[*heap.Heap]struct{})
	}
	s.cond = sync.NewCond(&s.waitMu)
	return s
}

// Stripes returns the scheduler's admission stripe count.
func (s *ZoneScheduler) Stripes() int { return len(s.stripes) }

// stripeFor maps a heap to its admission stripe. Heap IDs are sequential,
// so a multiplicative (Fibonacci) hash spreads consecutive IDs — which are
// exactly the heaps a burst of sibling tasks creates — across stripes.
func (s *ZoneScheduler) stripeFor(h *heap.Heap) int {
	if s.shift >= 64 {
		return 0
	}
	return int((h.ID() * 0x9E3779B97F4A7C15) >> s.shift)
}

// stripeSet returns the zone's stripes as a bitmask; iterating its set
// bits from least significant up IS the ascending lock order.
func (s *ZoneScheduler) stripeSet(zone []*heap.Heap) uint64 {
	var set uint64
	for _, h := range zone {
		set |= 1 << uint(s.stripeFor(h))
	}
	return set
}

// lockStripes acquires the stripes in set in ascending index order — the
// total order that makes striped admission deadlock-free (two admissions
// contending for the same stripes always take their first common stripe
// first).
func (s *ZoneScheduler) lockStripes(set uint64) {
	for m := set; m != 0; m &= m - 1 {
		s.stripes[bits.TrailingZeros64(m)].mu.Lock()
	}
}

func (s *ZoneScheduler) unlockStripes(set uint64) {
	for m := set; m != 0; m &= m - 1 {
		s.stripes[bits.TrailingZeros64(m)].mu.Unlock()
	}
}

// tryAdmit attempts one admission: reserve a cap slot, lock the zone's
// stripes, verify disjointness from every in-flight zone, and mark the
// zone's heaps. Returns false (with the reservation rolled back) when the
// cap is full or the zone intersects an in-flight collection.
func (s *ZoneScheduler) tryAdmit(zone []*heap.Heap, set uint64, family uint64) bool {
	if s.maxZones > 0 {
		for {
			n := s.nActive.Load()
			if int(n) >= s.maxZones {
				return false
			}
			if s.nActive.CompareAndSwap(n, n+1) {
				break
			}
		}
	} else {
		s.nActive.Add(1)
	}
	s.lockStripes(set)
	for _, h := range zone {
		if _, busy := s.stripes[s.stripeFor(h)].active[h]; busy {
			s.unlockStripes(set)
			s.nActive.Add(-1)
			return false
		}
	}
	for _, h := range zone {
		s.stripes[s.stripeFor(h)].active[h] = struct{}{}
	}
	s.unlockStripes(set)

	s.statsMu.Lock()
	s.curActive++
	if int64(s.curActive) > s.stats.MaxConcurrent {
		s.stats.MaxConcurrent = int64(s.curActive)
	}
	if family != 0 {
		s.families[family]++
		if n := int64(len(s.families)); n > s.stats.MaxConcurrentSessions {
			s.stats.MaxConcurrentSessions = n
		}
	}
	if s.curActive == 2 {
		s.overlap = time.Now()
	}
	s.statsMu.Unlock()
	return true
}

// Admit blocks until the zone is disjoint from every in-flight collection
// and an admission slot is free, then marks it in flight. Admission holds
// no heap locks while waiting, so it cannot deadlock against collectors or
// promoters; in a disentangled hierarchy two live tasks never build
// overlapping zones, so waiting here indicates either the admission cap or
// a (tolerated, serialized) zone-construction bug.
//
// family tags the zone with the session subtree it belongs to (0 = not a
// session zone); the scheduler tracks how many distinct sessions collect
// simultaneously.
func (s *ZoneScheduler) Admit(zone []*heap.Heap, family uint64) {
	set := s.stripeSet(zone)
	for {
		if s.tryAdmit(zone, set, family) {
			return
		}
		// Register as a waiter, then re-check: a release between the
		// failed attempt above and the registration would otherwise have
		// run before anyone it could wake (the classic lost wakeup).
		s.waitMu.Lock()
		gen := s.waitGen
		s.waiters.Add(1)
		s.waitMu.Unlock()
		if s.tryAdmit(zone, set, family) {
			s.waiters.Add(-1)
			return
		}
		s.waitMu.Lock()
		for s.waitGen == gen {
			s.cond.Wait()
		}
		s.waitMu.Unlock()
		s.waiters.Add(-1)
	}
}

// Release takes the zone out of flight and wakes waiting admissions. The
// family must match the zone's Admit.
func (s *ZoneScheduler) Release(zone []*heap.Heap, family uint64) {
	set := s.stripeSet(zone)
	s.lockStripes(set)
	for _, h := range zone {
		str := &s.stripes[s.stripeFor(h)]
		if _, busy := str.active[h]; !busy {
			s.unlockStripes(set)
			panic(fmt.Sprintf("gc: releasing heap %v that is not in flight", h))
		}
		delete(str.active, h)
	}
	s.unlockStripes(set)

	s.statsMu.Lock()
	if family != 0 {
		if s.families[family]--; s.families[family] <= 0 {
			delete(s.families, family)
		}
	}
	if s.curActive == 2 {
		s.stats.OverlapNanos += time.Since(s.overlap).Nanoseconds()
	}
	s.curActive--
	s.statsMu.Unlock()
	s.nActive.Add(-1)

	if s.waiters.Load() > 0 {
		s.waitMu.Lock()
		s.waitGen++
		s.waitMu.Unlock()
		s.cond.Broadcast()
	}
}

// CollectZone runs one concurrent zone collection: admission, zone write
// locks (canonical deepest-first order), the promotion-aware copy over the
// given roots, then release. cc is the collecting worker's chunk cache
// (nil when the caller runs off-worker): to-space chunks come from it and
// the swept from-space recycles into it, keeping the collection's chunk
// traffic off the global directory. It returns the collection's
// statistics.
//
// The write locks are what lets this run concurrently with everything
// outside the zone: findMaster read-locks and promotion write-locks target
// only heaps on the *caller's* own root-path, and disentanglement keeps
// other tasks' root-paths disjoint from this zone — so in a correct
// execution the locks are uncontended, and in an incorrect one (an
// entangled pointer into the zone) they serialize instead of corrupting.
func (s *ZoneScheduler) CollectZone(cc *mem.ChunkCache, zone []*heap.Heap, roots []*mem.ObjPtr, kind ZoneKind) Stats {
	return s.CollectSessionZone(cc, 0, zone, roots, kind)
}

// CollectSessionZone is CollectZone for a zone belonging to the root-level
// session subtree identified by family (0 for zones outside any session).
// Zones of distinct sessions are always disjoint, so they admit and run
// concurrently; the scheduler counts how many distinct sessions it actually
// observed collecting at once (ZoneStats.MaxConcurrentSessions).
func (s *ZoneScheduler) CollectSessionZone(cc *mem.ChunkCache, family uint64, zone []*heap.Heap, roots []*mem.ObjPtr, kind ZoneKind) Stats {
	z := make([]*heap.Heap, len(zone))
	copy(z, zone)
	heap.SortZone(z)

	// The span opens BEFORE admission so an admission stall (a conflicting
	// in-flight zone, or the concurrency cap) is visible as the gap between
	// this zone's span start and its copy work — exactly the signal the
	// zones table's aggregate counters cannot show.
	track := -1
	if cc != nil {
		track = cc.Owner()
	}
	var span uint64
	if trace.Enabled() && len(z) > 0 {
		aux := uint32(kind)&0xff | uint32(s.stripeFor(z[0]))<<8
		span = trace.Begin(track, trace.EvZone, aux, z[0].ID())
	}
	s.Admit(z, family)
	start := time.Now()
	heap.LockZone(z)
	st := CollectWith(cc, z, roots)
	heap.UnlockZone(z)
	dur := time.Since(start).Nanoseconds()
	s.Release(z, family)
	if span != 0 {
		trace.End(track, trace.EvZone, span, 0, uint64(st.WordsCopied))
	}

	s.statsMu.Lock()
	s.stats.Zones++
	if kind == JoinZone {
		s.stats.JoinZones++
	} else {
		s.stats.LeafZones++
	}
	if family != 0 {
		s.stats.SessionZones++
	}
	s.stats.WordsCopied += st.WordsCopied
	s.stats.ZoneNanos += dur
	s.statsMu.Unlock()
	return st
}

// Snapshot returns the scheduler's aggregate statistics so far.
func (s *ZoneScheduler) Snapshot() ZoneStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	st := s.stats
	if s.curActive >= 2 {
		st.OverlapNanos += time.Since(s.overlap).Nanoseconds()
	}
	return st
}

// InFlight returns the number of zone collections currently admitted.
func (s *ZoneScheduler) InFlight() int {
	return int(s.nActive.Load())
}
