// Package gc implements the promotion-aware semispace collection of the
// paper's Appendix A and the concurrent zone scheduling of §3.4.
//
// A collection targets a zone: a heap and (optionally) its live
// descendants, each of which gets a to-space twin. Objects reachable from
// the registered roots are copied Cheney-style into the twins. The
// promotion-awareness is in how forwarding chains are treated:
//
//  1. a chain leading into a to-space is a copy made by this collection —
//     reuse it;
//  2. a chain leading into a from-space strictly above the zone is a copy
//     made by an earlier promotion — reuse it, thereby eliminating the
//     duplicate left behind in the zone;
//  3. a chain ending at an unforwarded object inside the zone means the
//     object is live and still local — copy it into its heap's twin.
//
// The Collector keeps no package-level state, so collections of disjoint
// zones are free to run concurrently — with each other and with mutator
// work outside their zones. The ZoneScheduler turns that freedom into a
// discipline: it admits a zone only while no in-flight collection holds
// any of its heaps, enforces the configured concurrency cap, and records
// how many zones actually overlapped (ZoneStats: counts by kind, peak
// concurrency, overlap wall time).
//
// Lock ordering: a zone collection write-locks its heaps deepest-first
// (heap.LockZone) before copying and releases them shallowest-first — the
// same bottom-up climb the promotion path uses — so collections,
// promotions, and findMaster readers compose without deadlock. In a
// disentangled execution no other task can even reference into a zone
// (the zone has no live descendants), so the locks are uncontended; they
// exist to serialize, rather than corrupt, should entanglement ever leak
// a pointer inside.
//
// The package also provides the collection trigger policy and the
// stop-the-world whole-heap collection used by the sequential and
// Spoonhower-style baseline runtimes, which is the same copier with a zone
// covering every allocation region.
package gc
