// Package gc implements the promotion-aware semispace collection of the
// paper's Appendix A.
//
// A collection targets a zone: a heap and (optionally) its live
// descendants, each of which gets a to-space twin. Objects reachable from
// the registered roots are copied Cheney-style into the twins. The
// promotion-awareness is in how forwarding chains are treated:
//
//  1. a chain leading into a to-space is a copy made by this collection —
//     reuse it;
//  2. a chain leading into a from-space strictly above the zone is a copy
//     made by an earlier promotion — reuse it, thereby eliminating the
//     duplicate left behind in the zone;
//  3. a chain ending at an unforwarded object inside the zone means the
//     object is live and still local — copy it into its heap's twin.
//
// Because the collector never follows forwarding pointers of objects
// outside the zone, no heap locks are required: disentanglement guarantees
// nothing outside the zone references into it, and the zone's tasks are
// suspended (a leaf collection is run by the leaf's own task at an
// allocation safe point).
//
// The package also provides the collection trigger policy and the
// stop-the-world whole-heap collection used by the sequential and
// Spoonhower-style baseline runtimes, which is the same copier with a zone
// covering every allocation region.
package gc
