package gc

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/heap"
)

// Striped-admission tests: the scheduler's contract — disjoint zones
// overlap, intersecting zones serialize, the cap holds, Release panics on
// a zone that was never admitted — must be independent of how many lock
// stripes the bookkeeping is spread over, and admission under contention
// must not starve anyone.

func TestZoneSchedulerStripeClamps(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {3, 4}, {16, 16}, {33, 64}, {1000, 64},
	} {
		if got := NewZoneSchedulerWithStripes(0, tc.in).Stripes(); got != tc.want {
			t.Errorf("stripes(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := NewZoneScheduler(0).Stripes(); got != DefaultZoneStripes {
		t.Errorf("default stripes = %d, want %d", got, DefaultZoneStripes)
	}
}

// TestStripedDisjointZonesAllAdmit: with no cap, N disjoint single-heap
// zones must all be in flight simultaneously — admission never blocks a
// zone on stripe traffic alone, only on genuine heap overlap or the cap.
func TestStripedDisjointZonesAllAdmit(t *testing.T) {
	for _, stripes := range []int{1, 4, 64} {
		t.Run(fmt.Sprintf("stripes=%d", stripes), func(t *testing.T) {
			root := heap.NewRoot()
			s := NewZoneSchedulerWithStripes(0, stripes)
			const n = 16
			zones := make([][]*heap.Heap, n)
			for i := range zones {
				zones[i] = []*heap.Heap{heap.NewChild(root)}
			}
			var wg sync.WaitGroup
			for _, z := range zones {
				wg.Add(1)
				go func(z []*heap.Heap) {
					defer wg.Done()
					s.Admit(z, 0)
				}(z)
			}
			wg.Wait() // every Admit returned: nothing serialized on a stripe
			if got := s.InFlight(); got != n {
				t.Fatalf("in flight = %d, want %d", got, n)
			}
			for _, z := range zones {
				s.Release(z, 0)
			}
			if st := s.Snapshot(); st.MaxConcurrent != n {
				t.Fatalf("MaxConcurrent = %d, want %d", st.MaxConcurrent, n)
			}
		})
	}
}

// TestStripedIntersectingZonesSerialize: two zones sharing one heap must
// serialize even when their other heaps spread over different stripes.
// Deterministic: no interleaving can drive MaxConcurrent to 2.
func TestStripedIntersectingZonesSerialize(t *testing.T) {
	root := heap.NewRoot()
	shared := heap.NewChild(root)
	zoneA := []*heap.Heap{shared}
	zoneB := []*heap.Heap{shared}
	for i := 0; i < 8; i++ { // spread each zone over many stripes
		zoneA = append(zoneA, heap.NewChild(shared))
		zoneB = append(zoneB, heap.NewChild(shared))
	}
	s := NewZoneSchedulerWithStripes(0, 64)

	s.Admit(zoneA, 0)
	ch := admitted(s, zoneB)
	time.Sleep(time.Millisecond)
	select {
	case <-ch:
		t.Fatal("intersecting zone admitted while the first was in flight")
	default:
	}
	s.Release(zoneA, 0)
	waitAdmitted(t, ch, "intersecting zone after release")
	s.Release(zoneB, 0)

	if st := s.Snapshot(); st.MaxConcurrent != 1 {
		t.Fatalf("intersecting zones ran concurrently: MaxConcurrent = %d", st.MaxConcurrent)
	}
}

// TestStripedAdmissionFairness: N workers with pairwise-disjoint zones
// contending on a tight admission cap must ALL complete their collections
// within a bound — the generation-based wakeup may not strand a waiter
// (lost wakeup) or starve one arbitrarily long.
func TestStripedAdmissionFairness(t *testing.T) {
	const (
		workers = 24
		rounds  = 50
		cap     = 3
	)
	root := heap.NewRoot()
	s := NewZoneSchedulerWithStripes(cap, 16)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < workers; i++ {
		zone := []*heap.Heap{heap.NewChild(root)}
		wg.Add(1)
		go func(zone []*heap.Heap) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				s.Admit(zone, 0)
				if got := s.InFlight(); got > cap {
					t.Errorf("cap %d violated: %d in flight", cap, got)
				}
				s.Release(zone, 0)
			}
		}(zone)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("admission starved: %d zones still in flight after 60s", s.InFlight())
	}
	if st := s.Snapshot(); st.MaxConcurrent > cap {
		t.Fatalf("MaxConcurrent = %d, want <= cap %d", st.MaxConcurrent, cap)
	}
}

// TestStripedReleasePanicsOnUnadmittedZone: the not-in-flight panic is the
// scheduler's defense against release/admit pairing bugs; striping must
// not soften it.
func TestStripedReleasePanicsOnUnadmittedZone(t *testing.T) {
	root := heap.NewRoot()
	s := NewZoneSchedulerWithStripes(0, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("releasing a never-admitted zone did not panic")
		}
	}()
	s.Release([]*heap.Heap{heap.NewChild(root)}, 0)
}
