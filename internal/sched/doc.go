// Package sched implements the work-stealing fork-join scheduler the
// runtime couples with the memory manager (paper Appendix B).
//
// The design follows the lazy-task-creation discipline the paper inherits:
// forkjoin is cheap — the right-hand thunk is pushed onto the calling
// worker's Chase–Lev deque as a frame, the left-hand thunk runs inline, and
// if nobody stole the frame it is popped and also run inline. Only a steal
// pays for task creation: the thief runs the frame in a fresh context (a
// new "user-level thread"), and the victim, upon reaching the join, helps —
// it executes other stealable frames while it waits.
//
// The scheduler is memory-manager agnostic: the runtime layer (rts) builds
// fork-join-with-heaps on top of Push/PopBottom/WaitHelp, and installs a
// SafePoint hook so that idle and waiting workers participate in
// stop-the-world rendezvous when a baseline collector needs one.
//
// Only the stop-the-world baseline installs a parking hook. The
// hierarchical runtime's zone collections (leaf heaps at allocation safe
// points, merged ancestors at joins) run inline on the collecting worker
// and park nobody: while one worker collects, the others keep executing
// frames and stealing — including from the collecting worker's deque,
// whose published frames stay stealable throughout the collection.
//
// # Worker chunk caches
//
// Each Worker optionally owns a private mem.ChunkCache (WithChunkCaches),
// the fast tier of the runtime's chunk lifecycle (alloc → cache → pool →
// OS, see package mem): heap growth on this worker acquires chunks from it
// and completed work releases chunks into it, with no synchronization,
// because only the worker's own goroutine ever touches its cache. The
// runtime threads the cache of the worker a task is CURRENTLY running on
// through allocation, collection, and release paths — a frame that is
// stolen simply starts trading chunks with its thief's cache instead. A
// worker that stays idle past a threshold flushes its cache back to the
// shared pool, so a drained server's chunks migrate to whichever workers
// take the next burst of load.
package sched
