// Package sched implements the work-stealing fork-join scheduler the
// runtime couples with the memory manager (paper Appendix B).
//
// The design follows the lazy-task-creation discipline the paper inherits:
// forkjoin is cheap — the right-hand thunk is pushed onto the calling
// worker's Chase–Lev deque as a frame, the left-hand thunk runs inline, and
// if nobody stole the frame it is popped and also run inline. Only a steal
// pays for task creation: the thief runs the frame in a fresh context (a
// new "user-level thread"), and the victim, upon reaching the join, helps —
// it executes other stealable frames while it waits.
//
// The scheduler is memory-manager agnostic: the runtime layer (rts) builds
// fork-join-with-heaps on top of Push/PopBottom/WaitHelp, and installs a
// SafePoint hook so that idle and waiting workers participate in
// stop-the-world rendezvous when a baseline collector needs one.
//
// Only the stop-the-world baseline installs a parking hook. The
// hierarchical runtime's zone collections (leaf heaps at allocation safe
// points, merged ancestors at joins) run inline on the collecting worker
// and park nobody: while one worker collects, the others keep executing
// frames and stealing — including from the collecting worker's deque,
// whose published frames stay stealable throughout the collection.
package sched
