package sched

import "sync/atomic"

// Deque is a Chase–Lev work-stealing deque of frames. The owning worker
// pushes and pops at the bottom; thieves steal from the top. All operations
// are lock-free.
type Deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    atomic.Pointer[dequeBuf]
}

type dequeBuf struct {
	mask  uint64
	items []atomic.Pointer[Frame]
}

func newDequeBuf(size int) *dequeBuf {
	return &dequeBuf{mask: uint64(size - 1), items: make([]atomic.Pointer[Frame], size)}
}

const initialDequeSize = 256

func (d *Deque) init() {
	if d.buf.Load() == nil {
		d.buf.Store(newDequeBuf(initialDequeSize))
	}
}

// Push adds a frame at the bottom. Owner only.
func (d *Deque) Push(f *Frame) {
	d.init()
	b := d.bottom.Load()
	t := d.top.Load()
	buf := d.buf.Load()
	if b-t >= int64(len(buf.items)) {
		// Grow: copy live range into a buffer twice the size.
		bigger := newDequeBuf(2 * len(buf.items))
		for i := t; i < b; i++ {
			bigger.items[uint64(i)&bigger.mask].Store(buf.items[uint64(i)&buf.mask].Load())
		}
		d.buf.Store(bigger)
		buf = bigger
	}
	buf.items[uint64(b)&buf.mask].Store(f)
	d.bottom.Store(b + 1)
}

// PopBottom removes and returns the bottom frame, or nil if the deque is
// empty or the frame was (or is being) stolen. Owner only.
func (d *Deque) PopBottom() *Frame {
	d.init()
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Already empty.
		d.bottom.Store(t)
		return nil
	}
	f := buf.items[uint64(b)&buf.mask].Load()
	if t == b {
		// Last frame: race against thieves for it.
		if !d.top.CompareAndSwap(t, t+1) {
			f = nil // a thief won
		}
		d.bottom.Store(t + 1)
	}
	return f
}

// Steal takes the top frame. It returns nil with retry=true when it lost a
// race and the caller may try again; nil with retry=false when the deque
// is empty.
func (d *Deque) Steal() (f *Frame, retry bool) {
	buf := d.buf.Load()
	if buf == nil {
		return nil, false
	}
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	buf = d.buf.Load()
	f = buf.items[uint64(t)&buf.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, true
	}
	return f, false
}

// Size reports an instantaneous (racy) element count, for tests and stats.
func (d *Deque) Size() int64 {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return n
}
