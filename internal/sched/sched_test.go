package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDequeLIFOForOwner(t *testing.T) {
	var d Deque
	frames := make([]*Frame, 10)
	for i := range frames {
		frames[i] = NewFrame(func(*Worker) {})
		d.Push(frames[i])
	}
	if d.Size() != 10 {
		t.Fatalf("size = %d", d.Size())
	}
	for i := 9; i >= 0; i-- {
		if got := d.PopBottom(); got != frames[i] {
			t.Fatalf("pop %d: got %p want %p", i, got, frames[i])
		}
	}
	if d.PopBottom() != nil {
		t.Fatal("empty deque must pop nil")
	}
}

func TestDequeFIFOForThief(t *testing.T) {
	var d Deque
	frames := make([]*Frame, 5)
	for i := range frames {
		frames[i] = NewFrame(func(*Worker) {})
		d.Push(frames[i])
	}
	for i := 0; i < 5; i++ {
		f, retry := d.Steal()
		if retry || f != frames[i] {
			t.Fatalf("steal %d: got %p retry=%v", i, f, retry)
		}
	}
	if f, retry := d.Steal(); f != nil || retry {
		t.Fatal("empty deque must steal nil")
	}
}

func TestDequeGrowth(t *testing.T) {
	var d Deque
	n := initialDequeSize*4 + 3
	frames := make([]*Frame, n)
	for i := range frames {
		frames[i] = NewFrame(func(*Worker) {})
		d.Push(frames[i])
	}
	for i := n - 1; i >= 0; i-- {
		if got := d.PopBottom(); got != frames[i] {
			t.Fatalf("pop %d lost after growth", i)
		}
	}
}

func TestDequeConcurrentStealers(t *testing.T) {
	// Owner pushes/pops while thieves steal; every frame must be executed
	// exactly once across all parties.
	var d Deque
	const total = 20000
	var executed atomic.Int64
	var claimed [total]atomic.Int32

	mk := func(i int) *Frame {
		return NewFrame(func(*Worker) {
			if claimed[i].Add(1) != 1 {
				t.Errorf("frame %d claimed twice", i)
			}
			executed.Add(1)
		})
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < 3; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				f, retry := d.Steal()
				if f != nil {
					f.exec(nil)
					continue
				}
				if !retry {
					select {
					case <-stop:
						return
					default:
					}
				}
			}
		}()
	}

	// Owner: push bursts, pop some.
	pushed := 0
	for pushed < total {
		burst := 37
		if total-pushed < burst {
			burst = total - pushed
		}
		for i := 0; i < burst; i++ {
			d.Push(mk(pushed))
			pushed++
		}
		for i := 0; i < burst/2; i++ {
			if f := d.PopBottom(); f != nil {
				f.exec(nil)
			}
		}
	}
	for {
		f := d.PopBottom()
		if f == nil {
			break
		}
		f.exec(nil)
	}
	// Drain stragglers via steal until all executed.
	for executed.Load() < total {
		if f, _ := d.Steal(); f != nil {
			f.exec(nil)
		}
	}
	close(stop)
	wg.Wait()
	if executed.Load() != total {
		t.Fatalf("executed %d of %d", executed.Load(), total)
	}
}

func TestPoolRunRoot(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var ran atomic.Bool
	var onWorker atomic.Bool
	p.RunRoot(func(w *Worker) {
		onWorker.Store(w != nil && w.pool == p)
		ran.Store(true)
	})
	if !ran.Load() || !onWorker.Load() {
		t.Fatal("root frame did not run on a pool worker")
	}
}

// testForkJoin implements a bare fork-join over the scheduler (no heaps) to
// exercise push/pop/steal/WaitHelp end to end.
func testForkJoin(w *Worker, depth int, counter *atomic.Int64) {
	if depth == 0 {
		counter.Add(1)
		return
	}
	fr := NewFrame(func(thief *Worker) {
		testForkJoin(thief, depth-1, counter)
	})
	w.Push(fr)
	testForkJoin(w, depth-1, counter)
	if got := w.PopBottom(); got == fr {
		fr.exec(w) // inline; not "stolen", run directly
	} else {
		w.WaitHelp(fr)
	}
}

func TestPoolForkJoinTree(t *testing.T) {
	for _, procs := range []int{1, 2, 4} {
		p := NewPool(procs)
		var leaves atomic.Int64
		const depth = 12
		p.RunRoot(func(w *Worker) {
			testForkJoin(w, depth, &leaves)
		})
		p.Close()
		if leaves.Load() != 1<<depth {
			t.Fatalf("procs=%d: %d leaves, want %d", procs, leaves.Load(), 1<<depth)
		}
	}
}

// testForkJoinSpin is testForkJoin with leaves that burn a few
// microseconds of CPU, so the tree outlives the thieves' idle backoff
// (up to 100µs of sleep) and published frames are actually observable.
func testForkJoinSpin(w *Worker, depth int, counter *atomic.Int64) {
	if depth == 0 {
		spin := uint64(1)
		for i := 0; i < 2000; i++ {
			spin = spin*6364136223846793005 + 1442695040888963407
		}
		counter.Add(int64(spin>>63) + 1) // data-dependent: the spin cannot be elided
		return
	}
	fr := NewFrame(func(thief *Worker) {
		testForkJoinSpin(thief, depth-1, counter)
	})
	w.Push(fr)
	testForkJoinSpin(w, depth-1, counter)
	if got := w.PopBottom(); got == fr {
		fr.exec(w)
	} else {
		w.WaitHelp(fr)
	}
}

func TestPoolStealsHappen(t *testing.T) {
	// A tree of trivial leaves can finish before any thief wakes from its
	// idle sleep, so steals are not guaranteed by one run. Seed the pool
	// with a long-enough imbalanced tree and retry under a deadline: each
	// round publishes thousands of frames over several milliseconds, so a
	// 4-worker pool observes a steal deterministically in practice.
	p := NewPool(4)
	defer p.Close()
	deadline := time.Now().Add(30 * time.Second)
	for round := 0; p.TotalSteals() == 0; round++ {
		if time.Now().After(deadline) {
			t.Fatalf("no steal on a 4-worker pool after %d rounds", round)
		}
		var leaves atomic.Int64
		p.RunRoot(func(w *Worker) {
			testForkJoinSpin(w, 12, &leaves)
		})
		if leaves.Load() < 1<<12 {
			t.Fatalf("round %d: %d leaves, want >= %d", round, leaves.Load(), 1<<12)
		}
	}
}

func TestSafePointHookRuns(t *testing.T) {
	p := NewPool(2)
	var hits atomic.Int64
	p.SetSafePoint(func(w *Worker) { hits.Add(1) })
	var leaves atomic.Int64
	p.RunRoot(func(w *Worker) { testForkJoin(w, 8, &leaves) })
	p.Close()
	if hits.Load() == 0 {
		t.Fatal("safe point hook never invoked")
	}
}
