package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mem"
)

// Frame is one stealable unit of work: the right-hand side of a forkjoin
// (or a root task). The runtime layer stores the thunk, its context, and
// its result in the closure; the scheduler only needs to run it once and
// publish completion.
type Frame struct {
	exec func(w *Worker)
	done atomic.Bool
}

// NewFrame wraps a closure as a stealable frame.
func NewFrame(exec func(w *Worker)) *Frame { return &Frame{exec: exec} }

// Done reports whether the frame has finished executing.
func (f *Frame) Done() bool { return f.done.Load() }

// runOn executes the frame on the given worker and publishes completion.
func (f *Frame) runOn(w *Worker) {
	f.exec(w)
	f.done.Store(true)
}

// Worker is one scheduler participant, usually pinned 1:1 to a processor.
type Worker struct {
	ID    int
	pool  *Pool
	deque Deque
	rng   uint64

	// Steals counts successful steals by this worker.
	Steals int64
	// Local is runtime-layer per-worker state (allocation heap, etc.).
	Local any

	// Chunks is this worker's private chunk cache (nil when the pool was
	// built without caches). Only this worker's goroutine may touch it —
	// the runtime threads it through allocation, promotion, collection,
	// and wholesale-release paths executing ON this worker, which is what
	// makes leaf-heap chunk acquisition free of shared-state operations.
	// A worker that stays idle long enough flushes it back to the global
	// pool so cold workers do not sit on warm chunks.
	Chunks *mem.ChunkCache
}

// Pool runs a fixed set of workers.
type Pool struct {
	workers []*Worker
	inbox   chan *Frame
	closed  atomic.Bool
	wg      sync.WaitGroup

	safePoint atomic.Pointer[func(w *Worker)]
}

// SetSafePoint installs a hook invoked by idle and waiting workers so the
// runtime can run stop-the-world rendezvous or bookkeeping. Only
// whole-world collectors need it (the STW baseline); hierarchical zone
// collections never park workers, so the hierarchical modes install no
// hook and leaf/join collections proceed while every worker keeps
// running.
func (p *Pool) SetSafePoint(fn func(w *Worker)) { p.safePoint.Store(&fn) }

func (p *Pool) callSafePoint(w *Worker) {
	if fn := p.safePoint.Load(); fn != nil {
		(*fn)(w)
	}
}

// PoolOption configures a Pool under construction.
type PoolOption func(*Pool)

// WithChunkCaches gives every worker a private chunk cache bounded at
// perClass chunks per size class (≤ 0 selects the mem package default).
// The caches are installed before the workers start, so no synchronization
// guards the field.
func WithChunkCaches(perClass int) PoolOption {
	return func(p *Pool) {
		for _, w := range p.workers {
			w.Chunks = mem.NewChunkCache(perClass)
			w.Chunks.SetOwner(w.ID)
		}
	}
}

// NewPool creates and starts p workers.
func NewPool(p int, opts ...PoolOption) *Pool {
	if p < 1 {
		p = 1
	}
	pool := &Pool{inbox: make(chan *Frame, 1024)}
	pool.workers = make([]*Worker, p)
	for i := range pool.workers {
		pool.workers[i] = &Worker{ID: i, pool: pool, rng: uint64(i)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D}
	}
	for _, opt := range opts {
		opt(pool)
	}
	for _, w := range pool.workers {
		pool.wg.Add(1)
		go func(w *Worker) {
			defer pool.wg.Done()
			w.loop()
		}(w)
	}
	return pool
}

// Workers returns the pool's workers.
func (p *Pool) Workers() []*Worker { return p.workers }

// NumWorkers returns the pool size.
func (p *Pool) NumWorkers() int { return len(p.workers) }

// Submit queues a root frame for any worker.
func (p *Pool) Submit(f *Frame) { p.inbox <- f }

// RunRoot submits a root frame and blocks the calling (non-worker)
// goroutine until it completes.
func (p *Pool) RunRoot(exec func(w *Worker)) {
	f := NewFrame(exec)
	p.Submit(f)
	for spin := 0; !f.Done(); spin++ {
		if spin < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// Close stops all workers and waits for them to exit. Outstanding frames
// are abandoned; callers should only close an idle pool.
func (p *Pool) Close() {
	p.closed.Store(true)
	p.wg.Wait()
}

// TotalSteals sums the workers' steal counters.
func (p *Pool) TotalSteals() int64 {
	var n int64
	for _, w := range p.workers {
		n += w.Steals
	}
	return n
}

func (w *Worker) loop() {
	idle := 0
	for !w.pool.closed.Load() {
		w.pool.callSafePoint(w)
		if f := w.findWork(); f != nil {
			idle = 0
			f.runOn(w)
			continue
		}
		idle++
		w.idleWait(idle)
	}
}

// SafePoint invokes the pool's safe-point hook on this worker, if one is
// installed. Runtime code that parks a worker outside the scheduler loops
// (e.g. a session waiting out its orphaned frames) must call it so a
// stop-the-world rendezvous can count the worker as stopped.
func (w *Worker) SafePoint() { w.pool.callSafePoint(w) }

// Push makes a frame stealable on this worker's deque.
func (w *Worker) Push(f *Frame) { w.deque.Push(f) }

// PopBottom tries to take back the most recently pushed frame.
func (w *Worker) PopBottom() *Frame { return w.deque.PopBottom() }

// WaitHelp blocks until fr completes, executing other stealable work in the
// meantime (join with helping / leapfrogging).
func (w *Worker) WaitHelp(fr *Frame) {
	idle := 0
	for !fr.Done() {
		w.pool.callSafePoint(w)
		if f := w.findWork(); f != nil {
			idle = 0
			f.runOn(w)
			continue
		}
		idle++
		w.idleWait(idle)
	}
}

// findWork looks for a frame: the shared inbox first, then steal attempts
// against random victims (including this worker's own deque top, which
// enables leapfrogging during joins).
func (w *Worker) findWork() *Frame {
	select {
	case f := <-w.pool.inbox:
		return f
	default:
	}
	n := len(w.pool.workers)
	for attempt := 0; attempt < 2*n; attempt++ {
		victim := w.pool.workers[w.nextRand()%uint64(n)]
		f, retry := victim.deque.Steal()
		for retry {
			f, retry = victim.deque.Steal()
		}
		if f != nil {
			if victim != w {
				w.Steals++
			}
			return f
		}
	}
	return nil
}

func (w *Worker) nextRand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// coldTrimRounds is how many consecutive empty find-work rounds a worker
// tolerates before flushing its chunk cache back to the global pool: long
// enough that a worker briefly between frames keeps its chunks, short
// enough (~100 ms of deep idling) that a drained server's chunks become
// available to whichever workers take the next burst.
const coldTrimRounds = 1024

func (w *Worker) idleWait(rounds int) {
	switch {
	case rounds < 32:
		runtime.Gosched()
	case rounds < 64:
		time.Sleep(time.Microsecond)
	default:
		if rounds == coldTrimRounds && w.Chunks != nil {
			w.Chunks.Flush() // cold: return cached chunks to the shared pool
		}
		time.Sleep(100 * time.Microsecond)
	}
}
