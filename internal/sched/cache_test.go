package sched

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mem"
)

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for frames to complete")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestWorkerChunkCacheBoundsUnderSteals churns chunks through every
// worker's cache while frames are being stolen, asserting — from the
// owning worker's goroutine, which is the only legal reader — that no
// cache ever exceeds its per-class bound. This is the steal-heavy shape of
// the serving runtime: frames migrate between workers, each releasing
// chunks into whatever worker it lands on.
func TestWorkerChunkCacheBoundsUnderSteals(t *testing.T) {
	const perClass = 2
	const frames = 64
	maxHeld := perClass * mem.NumSizeClasses()

	p := NewPool(4, WithChunkCaches(perClass))
	defer p.Close()
	var violations atomic.Int64
	var done atomic.Int64

	churn := func(w *Worker) {
		var held []*mem.Chunk
		for _, words := range []int{64, 64, 256, 1024, 64, 256} {
			held = append(held, mem.AcquireChunk(w.Chunks, words))
		}
		for _, c := range held {
			mem.RecycleChunk(w.Chunks, c)
		}
		if w.Chunks.HeldChunks() > maxHeld {
			violations.Add(1)
		}
	}

	for i := 0; i < frames; i++ {
		p.Submit(NewFrame(func(w *Worker) {
			// A stealable child per root frame keeps the thieves busy.
			child := NewFrame(func(w *Worker) { churn(w) })
			w.Push(child)
			churn(w)
			w.WaitHelp(child)
			done.Add(1)
		}))
	}
	waitFor(t, func() bool { return done.Load() == frames })
	if n := violations.Load(); n > 0 {
		t.Fatalf("%d cache-bound violations (bound %d chunks per worker)", n, maxHeld)
	}
}
